"""Shared fixtures: small simulated datasets and prebuilt pipeline artifacts.

Session-scoped so the (seconds-long) simulations and pipeline runs execute
once per test session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.overlap import align_candidates, build_a_matrix, \
    candidate_overlaps
from repro.core.string_graph import StringGraph
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.kmer_counter import count_kmers


@pytest.fixture(scope="session")
def clean_dataset():
    """Error-free reads over a 10 kb genome (both strands)."""
    return simulate_reads(
        ReadSimSpec(GenomeSpec(length=10_000, seed=3), depth=12,
                    mean_len=700, min_len=400, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=5))


@pytest.fixture(scope="session")
def noisy_dataset():
    """Reads with 5% CLR-style errors over a 12 kb genome."""
    return simulate_reads(
        ReadSimSpec(GenomeSpec(length=12_000, seed=11), depth=12,
                    mean_len=700, min_len=400, sigma_len=0.25,
                    error=ErrorModel(rate=0.05), seed=13))


def build_overlap_graph(reads, k=17, nprocs=1, mode="chain", fuzz=20,
                        upper=40):
    """Overlap graph R (pre-reduction) for a read set."""
    comm = SimComm(nprocs, CommTracker(nprocs))
    timer = StageTimer()
    grid = ProcessGrid2D(nprocs)
    table = count_kmers(reads, k, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, grid, comm, timer)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, k, comm, timer, mode=mode, fuzz=fuzz)
    return StringGraph.from_coomat(R.to_global()), R, comm, timer


@pytest.fixture(scope="session")
def clean_overlap_graph(clean_dataset):
    _genome, reads, _layout = clean_dataset
    graph, R, comm, timer = build_overlap_graph(reads)
    return graph


@pytest.fixture(scope="session")
def noisy_overlap_graph(noisy_dataset):
    _genome, reads, _layout = noisy_dataset
    graph, R, comm, timer = build_overlap_graph(reads, fuzz=100)
    return graph
