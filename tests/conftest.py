"""Shared fixtures: small simulated datasets and prebuilt pipeline artifacts.

Session-scoped so the (seconds-long) simulations and pipeline runs execute
once per test session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads

# Used by the session fixtures below; test files import it from
# ``overlap_helpers`` directly (see that module's docstring for why).
from overlap_helpers import build_overlap_graph


@pytest.fixture(scope="session")
def clean_dataset():
    """Error-free reads over a 10 kb genome (both strands)."""
    return simulate_reads(
        ReadSimSpec(GenomeSpec(length=10_000, seed=3), depth=12,
                    mean_len=700, min_len=400, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=5))


@pytest.fixture(scope="session")
def noisy_dataset():
    """Reads with 5% CLR-style errors over a 12 kb genome."""
    return simulate_reads(
        ReadSimSpec(GenomeSpec(length=12_000, seed=11), depth=12,
                    mean_len=700, min_len=400, sigma_len=0.25,
                    error=ErrorModel(rate=0.05), seed=13))


@pytest.fixture(scope="session")
def clean_overlap_graph(clean_dataset):
    _genome, reads, _layout = clean_dataset
    graph, R, comm, timer = build_overlap_graph(reads)
    return graph


@pytest.fixture(scope="session")
def noisy_overlap_graph(noisy_dataset):
    _genome, reads, _layout = noisy_dataset
    graph, R, comm, timer = build_overlap_graph(reads, fuzz=100)
    return graph
