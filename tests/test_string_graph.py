"""Tests for the bidirected string graph model (Figs. 1–2 semantics)."""

import numpy as np
import pytest

from repro.core.string_graph import StringGraph
from repro.dsparse.coomat import CooMat


def _chain_graph():
    """Three collinear forward reads 0-1-2 plus the transitive edge 0-2."""
    src = [0, 1, 1, 2, 0, 2]
    dst = [1, 0, 2, 1, 2, 0]
    suffix = [4, 6, 3, 5, 7, 11]
    end_src = [1, 0, 1, 0, 1, 0]
    end_dst = [0, 1, 0, 1, 0, 1]
    return StringGraph(3, np.array(src), np.array(dst), np.array(suffix),
                       np.array(end_src), np.array(end_dst))


def test_coomat_roundtrip():
    g = _chain_graph()
    back = StringGraph.from_coomat(g.to_coomat())
    assert back.edge_set() == g.edge_set()
    assert back.n_edges == g.n_edges


def test_valid_walk_chain():
    g = _chain_graph()
    e01 = int(np.flatnonzero((g.src == 0) & (g.dst == 1))[0])
    e12 = int(np.flatnonzero((g.src == 1) & (g.dst == 2))[0])
    assert g.is_valid_walk([e01, e12])


def test_invalid_walk_same_end():
    # Two edges both attached to read 1's B end cannot be chained through 1.
    g = StringGraph(3, np.array([0, 1]), np.array([1, 2]),
                    np.array([4, 3]), np.array([1, 0]), np.array([0, 0]))
    # edge 0: 0->1 enters at B(0); edge 1: 1->2 leaves from B(0): invalid.
    assert not g.is_valid_walk([0, 1])


def test_disconnected_walk():
    g = _chain_graph()
    e01 = int(np.flatnonzero((g.src == 0) & (g.dst == 1))[0])
    e21 = int(np.flatnonzero((g.src == 2) & (g.dst == 1))[0])
    assert not g.is_valid_walk([e01, e21])


def test_bruteforce_marks_transitive_edge():
    g = _chain_graph()
    marked = g.transitive_edges_bruteforce(fuzz=0, use_rowmax=False)
    assert (0, 2) in marked
    assert (2, 0) in marked
    assert (0, 1) not in marked


def test_bruteforce_respects_end_mismatch():
    # Same chain but the direct edge 0->2 has the wrong end at 0: not
    # transitive (it represents a different physical overlap geometry).
    g = _chain_graph()
    idx = int(np.flatnonzero((g.src == 0) & (g.dst == 2))[0])
    g.end_src[idx] = 0  # flip
    marked = g.transitive_edges_bruteforce(fuzz=0, use_rowmax=False)
    assert (0, 2) not in marked


def test_bruteforce_fuzz_bound():
    g = _chain_graph()
    # Direct suffix 7 == path sum 4+3: marked even at fuzz 0; shrink the
    # direct edge's suffix so the path exceeds it and check fuzz rescues it.
    idx = int(np.flatnonzero((g.src == 0) & (g.dst == 2))[0])
    g.suffix[idx] = 5
    assert (0, 2) not in g.transitive_edges_bruteforce(fuzz=0,
                                                       use_rowmax=False)
    assert (0, 2) in g.transitive_edges_bruteforce(fuzz=2, use_rowmax=False)


def test_subgraph_without():
    g = _chain_graph()
    g2 = g.subgraph_without({(0, 2), (2, 0)})
    assert g2.n_edges == g.n_edges - 2
    assert (0, 2) not in g2.edge_set()


def test_density_and_degree():
    g = _chain_graph()
    assert g.density() == 2.0
    hist = g.degree_histogram()
    assert hist == {2: 3}


def test_out_edges():
    g = _chain_graph()
    assert set(g.dst[g.out_edges(0)].tolist()) == {1, 2}


def test_square_matrix_required():
    with pytest.raises(ValueError):
        StringGraph.from_coomat(CooMat.empty((3, 4), 4))
