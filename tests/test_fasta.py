"""Unit tests for FASTA I/O and the parallel-I/O record partitioning."""

import io

import numpy as np
import pytest

from repro.seqs.dna import decode, encode
from repro.seqs.fasta import (ReadSet, chunked_read_ranges, read_fasta,
                              write_fasta)


def _toy_reads():
    return ReadSet(["r0", "r1", "r2"],
                   [encode("ACGTACGTAA"), encode("TTTTGGGGCCCCAAAA"),
                    encode("ACGT")])


def test_write_read_roundtrip(tmp_path):
    reads = _toy_reads()
    path = tmp_path / "toy.fa"
    write_fasta(path, reads, width=7)  # exercise wrapping
    back = read_fasta(path)
    assert back.names == reads.names
    for a, b in zip(back.seqs, reads.seqs):
        assert np.array_equal(a, b)


def test_read_fasta_from_handle():
    text = ">a desc ignored\nACGT\nACGT\n>b\nTTT\n"
    rs = read_fasta(io.StringIO(text))
    assert rs.names == ["a", "b"]
    assert decode(rs.seqs[0]) == "ACGTACGT"
    assert decode(rs.seqs[1]) == "TTT"


def test_read_fasta_blank_lines_and_case():
    rs = read_fasta(io.StringIO(">x\n\nacgt\n\nACGT\n"))
    assert decode(rs.seqs[0]) == "ACGTACGT"


def test_readset_helpers():
    reads = _toy_reads()
    assert len(reads) == 3
    assert reads.total_bases() == 10 + 16 + 4
    assert np.array_equal(reads.lengths, [10, 16, 4])
    sub = reads.subset(np.array([2, 0]))
    assert sub.names == ["r2", "r0"]


def test_readset_validation():
    with pytest.raises(ValueError):
        ReadSet(["a"], [])


def test_chunked_read_ranges_cover_all_records():
    starts = np.array([0, 100, 220, 300, 480, 600])
    ranges = chunked_read_ranges(starts, file_size=700, nprocs=4)
    covered = []
    for lo, hi in ranges:
        covered.extend(range(lo, hi))
    assert covered == list(range(6))


def test_chunked_read_ranges_record_owned_by_chunk_containing_start():
    # Chunk boundaries at 0, 175, 350, 525, 700 for P=4.
    starts = np.array([0, 100, 220, 300, 480, 600])
    ranges = chunked_read_ranges(starts, file_size=700, nprocs=4)
    assert ranges[0] == (0, 2)   # starts 0, 100 < 175
    assert ranges[1] == (2, 4)   # 220, 300 < 350
    assert ranges[2] == (4, 5)   # 480 < 525
    assert ranges[3] == (5, 6)   # 600


def test_chunked_read_ranges_more_procs_than_records():
    starts = np.array([0, 50])
    ranges = chunked_read_ranges(starts, file_size=100, nprocs=8)
    total = sum(hi - lo for lo, hi in ranges)
    assert total == 2


def test_readset_extend_invalidates_soa_cache():
    """Regression: extend() must drop the cached SoA view.

    The (codes, offsets, lengths) tuple is built lazily and cached; before
    the invalidation, appending reads kept serving the stale buffers and
    the batched engines silently ignored every read added after the first
    soa() call.
    """
    rs = _toy_reads()
    codes0, offsets0, lengths0 = rs.soa()     # prime the cache
    n0, total0 = len(rs), codes0.shape[0]

    extra = np.array([0, 1, 2, 3, 3, 2], dtype=np.uint8)
    rs.extend(["late"], [extra])

    codes1, offsets1, lengths1 = rs.soa()
    assert len(rs) == n0 + 1
    assert lengths1.shape[0] == n0 + 1
    assert codes1.shape[0] == total0 + extra.shape[0]
    assert lengths1[-1] == extra.shape[0]
    assert np.array_equal(codes1[offsets1[-1]:], extra)
    # Pre-existing reads keep their indices and bytes.
    assert np.array_equal(codes1[:total0], codes0)
    assert np.array_equal(lengths1[:n0], lengths0)
    assert np.array_equal(offsets1[:n0], offsets0)
    # Length mismatch is rejected before any mutation.
    with pytest.raises(ValueError):
        rs.extend(["a", "b"], [extra])
    assert len(rs) == n0 + 1


def test_readset_concat_is_copy_on_write():
    """concat() builds fresh lists; extending either set never leaks into
    the other (the versioned-snapshot property the service relies on)."""
    a = _toy_reads()
    n_a = len(a)
    b = ReadSet(["x"], [np.array([1, 2, 3], dtype=np.uint8)])
    both = a.concat(b)
    assert len(both) == len(a) + len(b)
    assert both.names == a.names + b.names

    both.extend(["y"], [np.array([0], dtype=np.uint8)])
    assert len(a) == n_a and len(b) == 1
    a.extend(["z"], [np.array([2], dtype=np.uint8)])
    assert len(both) == n_a + 2  # unaffected by a's growth
