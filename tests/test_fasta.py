"""Unit tests for FASTA I/O and the parallel-I/O record partitioning."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seqs.dna import decode, encode
from repro.seqs.fasta import (ReadSet, chunked_read_ranges, read_fasta,
                              write_fasta)


def _toy_reads():
    return ReadSet(["r0", "r1", "r2"],
                   [encode("ACGTACGTAA"), encode("TTTTGGGGCCCCAAAA"),
                    encode("ACGT")])


def test_write_read_roundtrip(tmp_path):
    reads = _toy_reads()
    path = tmp_path / "toy.fa"
    write_fasta(path, reads, width=7)  # exercise wrapping
    back = read_fasta(path)
    assert back.names == reads.names
    for a, b in zip(back.seqs, reads.seqs):
        assert np.array_equal(a, b)


def test_read_fasta_from_handle():
    text = ">a desc ignored\nACGT\nACGT\n>b\nTTT\n"
    rs = read_fasta(io.StringIO(text))
    assert rs.names == ["a", "b"]
    assert decode(rs.seqs[0]) == "ACGTACGT"
    assert decode(rs.seqs[1]) == "TTT"


def test_read_fasta_blank_lines_and_case():
    rs = read_fasta(io.StringIO(">x\n\nacgt\n\nACGT\n"))
    assert decode(rs.seqs[0]) == "ACGTACGT"


def test_readset_helpers():
    reads = _toy_reads()
    assert len(reads) == 3
    assert reads.total_bases() == 10 + 16 + 4
    assert np.array_equal(reads.lengths, [10, 16, 4])
    sub = reads.subset(np.array([2, 0]))
    assert sub.names == ["r2", "r0"]


def test_readset_validation():
    with pytest.raises(ValueError):
        ReadSet(["a"], [])


def test_chunked_read_ranges_cover_all_records():
    starts = np.array([0, 100, 220, 300, 480, 600])
    ranges = chunked_read_ranges(starts, file_size=700, nprocs=4)
    covered = []
    for lo, hi in ranges:
        covered.extend(range(lo, hi))
    assert covered == list(range(6))


def test_chunked_read_ranges_record_owned_by_chunk_containing_start():
    # Chunk boundaries at 0, 175, 350, 525, 700 for P=4.
    starts = np.array([0, 100, 220, 300, 480, 600])
    ranges = chunked_read_ranges(starts, file_size=700, nprocs=4)
    assert ranges[0] == (0, 2)   # starts 0, 100 < 175
    assert ranges[1] == (2, 4)   # 220, 300 < 350
    assert ranges[2] == (4, 5)   # 480 < 525
    assert ranges[3] == (5, 6)   # 600


def test_chunked_read_ranges_more_procs_than_records():
    starts = np.array([0, 50])
    ranges = chunked_read_ranges(starts, file_size=100, nprocs=8)
    total = sum(hi - lo for lo, hi in ranges)
    assert total == 2


def test_readset_extend_invalidates_soa_cache():
    """Regression: extend() must drop the cached SoA view.

    The (codes, offsets, lengths) tuple is built lazily and cached; before
    the invalidation, appending reads kept serving the stale buffers and
    the batched engines silently ignored every read added after the first
    soa() call.
    """
    rs = _toy_reads()
    codes0, offsets0, lengths0 = rs.soa()     # prime the cache
    n0, total0 = len(rs), codes0.shape[0]

    extra = np.array([0, 1, 2, 3, 3, 2], dtype=np.uint8)
    rs.extend(["late"], [extra])

    codes1, offsets1, lengths1 = rs.soa()
    assert len(rs) == n0 + 1
    assert lengths1.shape[0] == n0 + 1
    assert codes1.shape[0] == total0 + extra.shape[0]
    assert lengths1[-1] == extra.shape[0]
    assert np.array_equal(codes1[offsets1[-1]:], extra)
    # Pre-existing reads keep their indices and bytes.
    assert np.array_equal(codes1[:total0], codes0)
    assert np.array_equal(lengths1[:n0], lengths0)
    assert np.array_equal(offsets1[:n0], offsets0)
    # Length mismatch is rejected before any mutation.
    with pytest.raises(ValueError):
        rs.extend(["a", "b"], [extra])
    assert len(rs) == n0 + 1


# -- malformed-input rejection ---------------------------------------------
#
# Regression: read_fasta validated `len(seqs) != len(names)` after the
# parse loop, but the loop appended an empty array for a sequence-less
# record, so the check could never fire and zero-length reads flowed
# straight into k-mer extraction.

def test_read_fasta_rejects_empty_record_issue_repro():
    # The exact shape from the issue: three headers, one sequence.
    # Previously parsed as 3 reads of lengths 0 / 4 / 0.
    with pytest.raises(ValueError, match="'a'"):
        read_fasta(io.StringIO(">a\n>b\nACGT\n>c\n"))


def test_read_fasta_rejects_trailing_empty_record():
    with pytest.raises(ValueError, match="'c'"):
        read_fasta(io.StringIO(">b\nACGT\n>c\n"))


def test_read_fasta_rejects_duplicate_names():
    with pytest.raises(ValueError, match="duplicate record name 'x'"):
        read_fasta(io.StringIO(">x\nACGT\n>x\nTTTT\n"))


def test_read_fasta_rejects_nameless_header():
    with pytest.raises(ValueError, match="header with no name"):
        read_fasta(io.StringIO(">\nACGT\n"))


def test_read_fasta_rejects_data_before_header():
    with pytest.raises(ValueError, match="before any '>' header"):
        read_fasta(io.StringIO("ACGT\n>a\nACGT\n"))


def test_read_fasta_empty_file_is_empty_readset():
    rs = read_fasta(io.StringIO(""))
    assert len(rs) == 0


def test_pipeline_guard_rejects_zero_length_reads():
    """Defence in depth: even a hand-built ReadSet with an empty read is
    refused by run_pipeline before k-mer extraction, naming the read."""
    from repro.core.pipeline import PipelineConfig, run_pipeline
    rs = ReadSet(["ok", "empty"],
                 [encode("ACGTACGTACGTACGTACGT"),
                  np.zeros(0, dtype=np.uint8)])
    with pytest.raises(ValueError, match="'empty'"):
        run_pipeline(rs, PipelineConfig(k=5, nprocs=1))


# -- property: write/read round trip ----------------------------------------

_NAME = st.from_regex(r"[A-Za-z0-9_.-]{1,12}", fullmatch=True)
_SEQ = st.text(alphabet="ACGT", min_size=1, max_size=200)


@settings(max_examples=50, deadline=None)
@given(records=st.lists(st.tuples(_NAME, _SEQ), min_size=0, max_size=8,
                        unique_by=lambda r: r[0]),
       width=st.integers(min_value=1, max_value=100))
def test_write_read_roundtrip_property(records, width):
    rs = ReadSet([n for n, _ in records], [encode(s) for _, s in records])
    buf = io.StringIO()
    write_fasta(buf, rs, width=width)
    back = read_fasta(io.StringIO(buf.getvalue()))
    assert back.names == rs.names
    for a, b in zip(back.seqs, rs.seqs):
        assert np.array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(records=st.lists(st.tuples(_NAME, _SEQ), min_size=1, max_size=5,
                        unique_by=lambda r: r[0]),
       data=st.data())
def test_read_fasta_ignores_blank_lines_and_descriptions(records, data):
    lines = []
    for name, seq in records:
        desc = data.draw(st.sampled_from(["", " description words"]))
        lines.append(f">{name}{desc}")
        pos = 0
        while pos < len(seq):
            step = data.draw(st.integers(min_value=1, max_value=len(seq)))
            lines.append(seq[pos:pos + step])
            pos += step
            if data.draw(st.booleans()):
                lines.append("")  # stray blank line
    rs = read_fasta(io.StringIO("\n".join(lines) + "\n"))
    assert rs.names == [n for n, _ in records]
    for arr, (_, seq) in zip(rs.seqs, records):
        assert decode(arr) == seq


def test_readset_concat_is_copy_on_write():
    """concat() builds fresh lists; extending either set never leaks into
    the other (the versioned-snapshot property the service relies on)."""
    a = _toy_reads()
    n_a = len(a)
    b = ReadSet(["x"], [np.array([1, 2, 3], dtype=np.uint8)])
    both = a.concat(b)
    assert len(both) == len(a) + len(b)
    assert both.names == a.names + b.names

    both.extend(["y"], [np.array([0], dtype=np.uint8)])
    assert len(a) == n_a and len(b) == 1
    a.extend(["z"], [np.array([2], dtype=np.uint8)])
    assert len(both) == n_a + 2  # unaffected by a's growth
