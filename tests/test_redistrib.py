"""Tests for 1D block-row <-> 2D grid redistribution."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dsparse.coomat import CooMat
from repro.dsparse.distmat import DistMat
from repro.dsparse.redistrib import to_2d_grid, to_block_rows
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, block_bounds


def _random_parts(rng, shape, P, density=0.15, nfields=2):
    """Random global matrix split into P block-row CooMat pieces."""
    s = sp.random(*shape, density=density, format="coo", random_state=rng,
                  data_rvs=lambda n: rng.integers(1, 40, n))
    vals = np.stack([s.data.astype(np.int64),
                     rng.integers(0, 5, s.nnz)], axis=1)[:, :nfields]
    G = CooMat(shape, s.row.astype(np.int64), s.col.astype(np.int64), vals)
    bounds = block_bounds(shape[0], P)
    parts = []
    for p in range(P):
        m = (G.row >= bounds[p]) & (G.row < bounds[p + 1])
        parts.append(CooMat((int(bounds[p + 1] - bounds[p]), shape[1]),
                            G.row[m] - bounds[p], G.col[m], G.vals[m],
                            checked=True))
    return G, parts


def test_to_2d_roundtrip_values():
    rng = np.random.default_rng(0)
    P = 4
    shape = (22, 17)
    G, parts = _random_parts(rng, shape, P)
    comm = SimComm(P, CommTracker(P))
    D = to_2d_grid(parts, shape, ProcessGrid2D(P), comm)
    back = D.to_global()
    assert np.array_equal(back.row, G.row)
    assert np.array_equal(back.col, G.col)
    assert np.array_equal(back.vals, G.vals)


def test_to_block_rows_roundtrip():
    rng = np.random.default_rng(1)
    P = 4
    shape = (20, 20)
    G, parts = _random_parts(rng, shape, P)
    comm = SimComm(P, CommTracker(P))
    D = to_2d_grid(parts, shape, ProcessGrid2D(P), comm)
    back_parts = to_block_rows(D, comm)
    assert len(back_parts) == P
    for orig, back in zip(parts, back_parts):
        assert np.array_equal(orig.row, back.row)
        assert np.array_equal(orig.col, back.col)
        assert np.array_equal(orig.vals, back.vals)


def test_redistribution_charges_traffic():
    rng = np.random.default_rng(2)
    P = 4
    G, parts = _random_parts(rng, (40, 40), P)
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    to_2d_grid(parts, (40, 40), ProcessGrid2D(P), comm, stage="redist")
    rec = tracker.records["redist"]
    assert rec.total_bytes > 0
    assert rec.total_messages > 0


def test_empty_matrix():
    P = 4
    bounds = block_bounds(10, P)
    parts = [CooMat.empty((int(bounds[p + 1] - bounds[p]), 10), 1)
             for p in range(P)]
    comm = SimComm(P, CommTracker(P))
    D = to_2d_grid(parts, (10, 10), ProcessGrid2D(P), comm)
    assert D.nnz() == 0
    back = to_block_rows(D, comm)
    assert all(b.nnz == 0 for b in back)


def test_all_empty_parts_keep_field_count():
    """Regression: all-empty 4-field parts used to collapse to 1 field.

    ``nfields`` was inferred only from parts with nonzeros, so an empty
    read set (or an empty strip) silently turned a 4-field matrix into a
    1-field one.  Empty parts carry their field count; explicit ``nfields``
    pins it regardless.
    """
    P = 4
    bounds = block_bounds(10, P)
    parts = [CooMat.empty((int(bounds[p + 1] - bounds[p]), 10), 4)
             for p in range(P)]
    comm = SimComm(P, CommTracker(P))

    # Inference now sees the empty parts' own field counts.
    D = to_2d_grid(parts, (10, 10), ProcessGrid2D(P), comm)
    assert D.nnz() == 0
    assert D.nfields == 4

    # The explicit argument pins it unconditionally.
    D = to_2d_grid(parts, (10, 10), ProcessGrid2D(P), comm, nfields=4)
    assert D.nfields == 4
    for b in to_block_rows(D, comm):
        assert b.nfields == 4


def test_explicit_nfields_roundtrip():
    rng = np.random.default_rng(7)
    P = 4
    shape = (22, 17)
    G, parts = _random_parts(rng, shape, P)
    comm = SimComm(P, CommTracker(P))
    D = to_2d_grid(parts, shape, ProcessGrid2D(P), comm, nfields=2)
    back = D.to_global()
    assert np.array_equal(back.vals, G.vals)


def test_explicit_nfields_mismatch_rejected():
    rng = np.random.default_rng(8)
    P = 4
    _G, parts = _random_parts(rng, (20, 20), P)  # 2-field parts
    comm = SimComm(P, CommTracker(P))
    with pytest.raises(ValueError):
        to_2d_grid(parts, (20, 20), ProcessGrid2D(P), comm, nfields=3)


def test_part_count_validation():
    comm = SimComm(4, CommTracker(4))
    with pytest.raises(ValueError):
        to_2d_grid([CooMat.empty((5, 5))], (5, 5), ProcessGrid2D(4), comm)
