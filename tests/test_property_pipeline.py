"""Property-based tests on pipeline-level invariants.

Hypothesis drives small random genomes/read sets through overlap detection
and checks the structural invariants that every downstream consumer relies
on: R's symmetry and suffix-pair consistency, C's superset relation to R,
determinism, and the monotone effect of the score threshold.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.overlap import (AlignmentFilter, align_candidates,
                                build_a_matrix, candidate_overlaps)
from repro.core.semirings import R_END_I, R_END_J, R_SUFFIX
from repro.core.string_graph import StringGraph
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.dna import GenomeSpec
from repro.seqs.kmer_counter import count_kmers
from repro.seqs.simulator import ErrorModel, ReadSimSpec, simulate_reads

SETTINGS = settings(max_examples=8, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def _small_reads(seed: int, err: float):
    _genome, reads, layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=6_000, seed=seed), depth=8,
                    mean_len=500, min_len=300, sigma_len=0.2,
                    error=ErrorModel(rate=err), seed=seed + 1))
    return reads, layout


def _build(reads, filt=None):
    comm = SimComm(1, CommTracker(1))
    timer = StageTimer()
    table = count_kmers(reads, 17, comm, timer, upper=40)
    A = build_a_matrix(reads, table, ProcessGrid2D(1), comm, timer)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain", fuzz=30,
                         filt=filt)
    return C.to_global(), R.to_global()


@SETTINGS
@given(st.integers(0, 1000), st.sampled_from([0.0, 0.03]))
def test_r_symmetry_and_suffix_consistency(seed, err):
    reads, _layout = _small_reads(seed, err)
    _C, R = _build(reads)
    entries = {(int(r), int(c)): v for r, c, v in zip(R.row, R.col, R.vals)}
    for (i, j), v in entries.items():
        assert (j, i) in entries, "R must be structurally symmetric"
        w = entries[(j, i)]
        # The two directions of one physical overlap share swapped ends.
        assert v[R_END_I] == w[R_END_J]
        assert v[R_END_J] == w[R_END_I]
        assert v[R_SUFFIX] >= 1 and w[R_SUFFIX] >= 1


@SETTINGS
@given(st.integers(0, 1000))
def test_r_pairs_subset_of_c_pairs(seed):
    reads, _layout = _small_reads(seed, 0.0)
    C, R = _build(reads)
    c_pairs = set(zip(C.row.tolist(), C.col.tolist()))
    r_pairs = {(min(int(a), int(b)), max(int(a), int(b)))
               for a, b in zip(R.row, R.col)}
    assert r_pairs <= c_pairs


@SETTINGS
@given(st.integers(0, 1000))
def test_determinism(seed):
    reads, _layout = _small_reads(seed, 0.03)
    _, R1 = _build(reads)
    _, R2 = _build(reads)
    assert np.array_equal(R1.row, R2.row)
    assert np.array_equal(R1.vals, R2.vals)


@SETTINGS
@given(st.integers(0, 1000))
def test_stricter_filter_monotone(seed):
    reads, _layout = _small_reads(seed, 0.0)
    _, loose = _build(reads, AlignmentFilter(min_score=10, min_overlap=100,
                                             ratio=0.2))
    _, strict = _build(reads, AlignmentFilter(min_score=10, min_overlap=300,
                                              ratio=0.2))
    loose_pairs = set(zip(loose.row.tolist(), loose.col.tolist()))
    strict_pairs = set(zip(strict.row.tolist(), strict.col.tolist()))
    assert strict_pairs <= loose_pairs
