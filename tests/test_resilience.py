"""Fault-tolerance chaos suite.

Every recovery path must uphold the repo-wide contract: a run that
*survives* injected faults — worker exceptions, killed pool processes,
mid-checkpoint crashes, failed service refreshes — produces output
byte-identical to a fault-free run.  This suite injects deterministic
fault schedules (:mod:`repro.resilience.faults`) across the executor ×
overlap-mode matrix and compares S/R/contig/tracker digests against
fault-free baselines, plus kill-and-resume checkpoint tests and
service rollback-at-every-version tests.
"""

import hashlib
import json
import os
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocked import candidate_overlaps_blocked
from repro.core.contigs import extract_contigs
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.exec import (ProcessExecutor, SerialExecutor, ThreadExecutor,
                        get_executor)
from repro.resilience import (DEFAULT_RETRY, CheckpointMismatch,
                              FaultInjected, FaultPlan, InjectedWorkerCrash,
                              RetryPolicy, StripCheckpoint, active_plan,
                              current_plan, resolve_fault_plan)
from repro.resilience.checkpoint import MANIFEST_VERSION
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.dna import decode
from repro.service import (AssemblyService, RefreshFailed, ServiceConfig,
                           make_server)

K = 17
NPROCS = 4
KMER_UPPER = 12


# ---------------------------------------------------------------------------
# digest helpers (mirroring tests/test_golden_pipeline.py)

def _sha(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a, dtype=np.int64)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _sha_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _contig_digest(graph) -> str:
    canon = sorted((tuple(c.reads), tuple(c.orientations))
                   for c in extract_contigs(graph))
    return _sha_text(repr(canon))


def _tracker_digest(tracker) -> str:
    summary = tracker.summary()
    lines = [f"{stage}:{rec['total_bytes']:.0f}:{rec['max_bytes']:.0f}:"
             f"{rec['total_messages']}:{rec['max_messages']}"
             for stage, rec in sorted(summary.items())]
    return _sha_text("|".join(lines))


def _digests(result) -> dict:
    return {
        "S": _sha(result.S.row, result.S.col, result.S.vals),
        "R": _sha(result.R.row, result.R.col, result.R.vals),
        "contigs": _contig_digest(result.string_graph),
        "tracker": _tracker_digest(result.tracker),
        "counts": (result.nnz_a, result.nnz_c, result.nnz_r, result.nnz_s),
    }


@pytest.fixture(scope="module")
def chaos_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=4_500, seed=31), depth=8,
                    mean_len=600, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=32))
    return reads


def _config(executor="serial", workers=1, overlap_mode="monolithic",
            fault_plan="", fuzz=60, **kw):
    # fault_plan="" pins fault-free even under a global REPRO_FAULT_SPEC
    # (the chaos CI leg) — the baseline must stay clean.
    return PipelineConfig(k=K, nprocs=NPROCS, align_mode="xdrop", fuzz=fuzz,
                          kmer_upper=KMER_UPPER, executor=executor,
                          workers=workers, overlap_mode=overlap_mode,
                          n_strips=3 if overlap_mode == "blocked" else None,
                          fault_plan=fault_plan, **kw)


@pytest.fixture(scope="module")
def baseline(chaos_reads):
    """Fault-free digests per overlap mode (the chaos oracle)."""
    return {mode: _digests(run_pipeline(chaos_reads,
                                        _config(overlap_mode=mode)))
            for mode in ("monolithic", "blocked")}


# ---------------------------------------------------------------------------
# fault-plan grammar

def test_fault_plan_parses_and_counts():
    plan = FaultPlan("exec.chunk:crash@3;summa.block:exc@2,5;"
                     "service.refresh:exc@4+")
    assert plan.sites() == ["exec.chunk", "service.refresh", "summa.block"]
    assert bool(plan)
    assert [plan.check("exec.chunk") for _ in range(4)] == \
        [None, None, "crash", None]
    assert [plan.check("summa.block") for _ in range(5)] == \
        [None, "exc", None, None, "exc"]
    assert [plan.check("service.refresh") for _ in range(5)] == \
        [None, None, None, "exc", "exc"]
    assert plan.check("unknown.site") is None
    assert ("exec.chunk", "crash", 3) in plan.fired


def test_fault_plan_star_and_empty():
    assert not FaultPlan("")
    assert FaultPlan("").check("exec.chunk") is None
    star = FaultPlan("exec.chunk:exc@*")
    assert all(star.check("exec.chunk") == "exc" for _ in range(5))


@pytest.mark.parametrize("bad", [
    "exec.chunk", "exec.chunk:exc", "exec.chunk:boom@1",
    "exec.chunk:exc@0", "exec.chunk:exc@0+", "exec.chunk:exc@x",
])
def test_fault_plan_rejects_bad_clauses(bad):
    with pytest.raises(ValueError):
        FaultPlan(bad)


def test_resolve_fault_plan_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    assert resolve_fault_plan(None) is None
    monkeypatch.setenv("REPRO_FAULT_SPEC", "exec.chunk:exc@1")
    assert resolve_fault_plan(None).sites() == ["exec.chunk"]
    # An explicit spec wins over the environment.
    assert resolve_fault_plan("summa.block:exc@2").sites() == ["summa.block"]


def test_active_plan_nesting():
    outer = FaultPlan("exec.chunk:exc@1")
    with active_plan(outer):
        assert current_plan() is outer
        with active_plan(None):        # None leaves the armed plan alone
            assert current_plan() is outer
        inner = FaultPlan("")
        with active_plan(inner):       # empty plan shadows the armed one
            assert current_plan() is inner
        assert current_plan() is outer
    assert current_plan() is not outer


# ---------------------------------------------------------------------------
# retry policy

def test_retry_policy_schedule():
    policy = RetryPolicy(max_attempts=4, backoff_base=0.1,
                         backoff_factor=2.0, backoff_max=0.3)
    assert policy.schedule() == [0.1, 0.2, 0.3]
    assert policy.delay(10) == 0.3
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        policy.delay(0)


# ---------------------------------------------------------------------------
# executor recovery units

def _double(ctx, x):
    return x * 2


def _fail_on_three(ctx, x):
    if x == 3:
        raise ValueError("exploded")
    return x


TASKS = list(range(12))
WANT = [x * 2 for x in TASKS]


@pytest.mark.parametrize("make", [
    lambda: SerialExecutor(1),
    lambda: ThreadExecutor(3),
    lambda: ProcessExecutor(2),
], ids=["serial", "thread", "process"])
@pytest.mark.parametrize("kind", ["exc", "crash"])
def test_executor_survives_single_fault(make, kind):
    # @1 fires on the very first chunk check of every executor (the serial
    # executor makes exactly one check per run call).
    with make() as ex, active_plan(FaultPlan(f"exec.chunk:{kind}@1")):
        assert ex.run(_double, TASKS) == WANT
    assert any(e["event"] in ("retry", "respawn") for e in ex.recovery)


def test_process_pool_respawns_after_crash():
    with ProcessExecutor(2) as ex:
        with active_plan(FaultPlan("exec.chunk:crash@1")):
            assert ex.run(_double, TASKS) == WANT
        assert any(e["event"] == "respawn" for e in ex.recovery)
        # The respawned pool keeps serving fault-free calls.
        assert ex.run(_double, TASKS) == WANT


def test_thread_executor_degrades_to_serial_under_persistent_faults():
    with ThreadExecutor(3) as ex, \
            active_plan(FaultPlan("exec.chunk:exc@*")):
        assert ex.run(_double, TASKS) == WANT
    events = [e["event"] for e in ex.recovery]
    assert "downgrade" in events
    downgrades = [e for e in ex.recovery if e["event"] == "downgrade"]
    assert downgrades[-1]["tier"] == "serial"


def test_process_executor_degrades_through_thread_to_serial():
    with ProcessExecutor(2) as ex, \
            active_plan(FaultPlan("exec.chunk:exc@*")):
        assert ex.run(_double, TASKS) == WANT
    tiers = [e["tier"] for e in ex.recovery if e["event"] == "downgrade"]
    assert tiers == ["thread", "serial"]


def test_backoff_is_recorded_not_slept():
    assert DEFAULT_RETRY.sleep is False
    with ThreadExecutor(2) as ex, \
            active_plan(FaultPlan("exec.chunk:exc@1,2")):
        ex.run(_double, TASKS)
    retries = [e for e in ex.recovery if e["event"] == "retry"]
    assert retries, "expected recorded retry events"
    for e in retries:
        assert e["delay"] == DEFAULT_RETRY.delay(e["attempt"])


def test_real_task_exception_still_propagates_everywhere():
    # Bounded retry must not swallow genuine, deterministic task bugs.
    for make in (lambda: SerialExecutor(1), lambda: ThreadExecutor(3),
                 lambda: ProcessExecutor(2)):
        with make() as ex:
            with pytest.raises(ValueError, match="exploded"):
                ex.run(_fail_on_three, [1, 2, 3, 4])


def test_serial_executor_retries_injected_crash_in_parent():
    ex = SerialExecutor(1)
    with active_plan(FaultPlan("exec.chunk:crash@1")):
        assert ex.run(_double, TASKS) == WANT
    assert [e["event"] for e in ex.recovery] == ["retry"]
    # In the parent process a crash injection degenerates to an exception
    # (the parent must survive to recover) …
    with active_plan(FaultPlan("exec.chunk:crash@1,2,3,4")):
        with pytest.raises(InjectedWorkerCrash):
            SerialExecutor(1).run(_double, TASKS)


def test_close_is_idempotent_and_reusable_via_context():
    ex = ProcessExecutor(2)
    assert ex.run(_double, TASKS) == WANT
    ex.close()
    ex.close()  # second close is a no-op, not an error
    with ThreadExecutor(2) as ex2:
        assert ex2.run(_double, TASKS) == WANT
    ex2.close()


def test_custom_retry_policy_is_honored():
    policy = RetryPolicy(max_attempts=1)
    ex = ThreadExecutor(3, retry=policy)
    with active_plan(FaultPlan("exec.chunk:exc@1")):
        # One attempt per tier: thread fails once, serial finishes.
        assert ex.run(_double, TASKS) == WANT
    assert [e["event"] for e in ex.recovery] == ["downgrade"]
    ex.close()


# ---------------------------------------------------------------------------
# chaos: injected faults leave pipeline output byte-identical

CHAOS_SPECS = [
    "exec.chunk:exc@2",
    "exec.chunk:crash@3",
    "summa.block:exc@1",
    "exec.chunk:exc@1;summa.block:exc@2",
]
CHAOS_EXECUTORS = [("serial", 1), ("thread", 3), ("process", 2)]


@pytest.mark.parametrize("executor,workers", CHAOS_EXECUTORS,
                         ids=[f"{e}{w}" for e, w in CHAOS_EXECUTORS])
@pytest.mark.parametrize("overlap_mode", ["monolithic", "blocked"])
@pytest.mark.parametrize("spec", CHAOS_SPECS)
def test_chaos_pipeline_byte_identical(chaos_reads, baseline, spec,
                                       overlap_mode, executor, workers):
    result = run_pipeline(chaos_reads,
                          _config(executor, workers, overlap_mode,
                                  fault_plan=spec))
    assert _digests(result) == baseline[overlap_mode], (
        f"faulted run drifted under spec={spec!r} executor={executor}/"
        f"{workers} overlap={overlap_mode}")


@settings(max_examples=5, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["exec.chunk", "summa.block"]),
              st.sampled_from(["exc", "crash"]),
              st.integers(min_value=1, max_value=4)),
    min_size=1, max_size=3))
def test_chaos_hypothesis_schedules(chaos_reads, baseline, clauses):
    spec = ";".join(f"{site}:{kind}@{count}"
                    for site, kind, count in clauses)
    result = run_pipeline(chaos_reads,
                          _config("thread", 3, "blocked", fault_plan=spec))
    assert _digests(result) == baseline["blocked"], (
        f"faulted run drifted under generated spec {spec!r}")


def test_fault_spec_env_is_honored(chaos_reads, baseline, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "exec.chunk:exc@2")
    result = run_pipeline(chaos_reads,
                          _config("thread", 2, fault_plan=None))
    assert _digests(result) == baseline["monolithic"]


# ---------------------------------------------------------------------------
# strip checkpoint / resume

def test_strip_checkpoint_store_roundtrip(tmp_path):
    ckpt = StripCheckpoint(str(tmp_path / "ck"), "fp", 4).open()
    assert ckpt.completed() == []
    payload = (np.arange(5), {"a": 1})
    ckpt.save(2, payload)
    assert ckpt.has(2) and not ckpt.has(0)
    assert ckpt.completed() == [2]
    loaded = ckpt.load(2)
    np.testing.assert_array_equal(loaded[0], payload[0])
    assert loaded[1] == payload[1]
    # Reopening with the same fingerprint resumes; a different one refuses.
    StripCheckpoint(str(tmp_path / "ck"), "fp", 4).open()
    with pytest.raises(CheckpointMismatch):
        StripCheckpoint(str(tmp_path / "ck"), "other", 4).open()
    with pytest.raises(CheckpointMismatch):
        StripCheckpoint(str(tmp_path / "ck"), "fp", 5).open()


def test_strip_checkpoint_rejects_future_manifest(tmp_path):
    d = tmp_path / "ck"
    StripCheckpoint(str(d), "fp", 2).open()
    manifest = json.loads((d / "manifest.json").read_text())
    manifest["format"] = MANIFEST_VERSION + 1
    (d / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointMismatch):
        StripCheckpoint(str(d), "fp", 2).open()


def test_checkpointed_run_matches_plain_run(chaos_reads, baseline, tmp_path):
    result = run_pipeline(chaos_reads,
                          _config(overlap_mode="blocked",
                                  checkpoint_dir=str(tmp_path / "ck")))
    assert _digests(result) == baseline["blocked"]
    saved = [p for p in os.listdir(tmp_path / "ck")
             if p.startswith("strip_")]
    assert len(saved) == result.n_strips


def test_kill_and_resume_is_byte_identical(chaos_reads, baseline, tmp_path):
    ckdir = str(tmp_path / "ck")
    cfg_killed = _config(overlap_mode="blocked", checkpoint_dir=ckdir,
                         fault_plan="strip.checkpoint:exc@2")
    with pytest.raises(FaultInjected):
        run_pipeline(chaos_reads, cfg_killed)
    # The crash landed after at least one strip was persisted …
    done = [p for p in os.listdir(ckdir) if p.startswith("strip_")]
    assert 1 <= len(done) < 3
    # … and a fault-free re-run against the same directory resumes the
    # missing strips and produces byte-identical output.
    resumed = run_pipeline(chaos_reads,
                           _config(overlap_mode="blocked",
                                   checkpoint_dir=ckdir))
    assert _digests(resumed) == baseline["blocked"]
    # A second resume loads every strip from disk — still identical.
    again = run_pipeline(chaos_reads,
                         _config(overlap_mode="blocked",
                                 checkpoint_dir=ckdir))
    assert _digests(again) == baseline["blocked"]


def test_checkpoint_refuses_mismatched_config(chaos_reads, tmp_path):
    ckdir = str(tmp_path / "ck")
    run_pipeline(chaos_reads, _config(overlap_mode="blocked",
                                      checkpoint_dir=ckdir))
    with pytest.raises(CheckpointMismatch):
        run_pipeline(chaos_reads, _config(overlap_mode="blocked",
                                          checkpoint_dir=ckdir, fuzz=61))


def test_checkpoint_dir_env_is_honored(chaos_reads, baseline, tmp_path,
                                       monkeypatch):
    ckdir = str(tmp_path / "ck-env")
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", ckdir)
    result = run_pipeline(chaos_reads, _config(overlap_mode="blocked"))
    assert _digests(result) == baseline["blocked"]
    assert os.path.isdir(ckdir)


def test_checkpoint_resume_under_executor(chaos_reads, baseline, tmp_path):
    """A parallel run killed mid-checkpoint resumes under a different
    executor with identical bytes (strips are executor-independent)."""
    ckdir = str(tmp_path / "ck")
    with pytest.raises(FaultInjected):
        run_pipeline(chaos_reads,
                     _config("thread", 2, "blocked", checkpoint_dir=ckdir,
                             fault_plan="strip.checkpoint:exc@1"))
    resumed = run_pipeline(chaos_reads,
                           _config("process", 2, "blocked",
                                   checkpoint_dir=ckdir))
    assert _digests(resumed) == baseline["blocked"]


# ---------------------------------------------------------------------------
# crash-safe service commits

@pytest.fixture(scope="module")
def service_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=4_000, seed=41), depth=8,
                    mean_len=550, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=42))
    return reads


def _service(fault_spec=""):
    return AssemblyService(ServiceConfig(
        refresh_mode="incremental",
        pipeline=PipelineConfig(k=K, nprocs=NPROCS, kmer_upper=KMER_UPPER,
                                fuzz=60, fault_plan="")),
        fault_spec=fault_spec)


def _batches(reads, n=3):
    bounds = np.linspace(0, len(reads), n + 1).astype(int)
    out = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        sub = reads.subset(np.arange(lo, hi))
        out.append((list(sub.names), [decode(s) for s in sub.seqs]))
    return out


def _service_digests(service):
    state = service.store.current()
    return {
        "version": state.version,
        "R": _sha(state.R.row, state.R.col, state.R.vals),
        "S": _sha(state.S.row, state.S.col, state.S.vals),
        "contigs": _contig_digest(state.graph),
    }


@pytest.fixture(scope="module")
def service_golden(service_reads):
    """Fault-free final state after ingesting all batches in order."""
    svc = _service()
    for names, seqs in _batches(service_reads):
        svc.ingest(names, seqs)
    return _service_digests(svc)


@pytest.mark.parametrize("fail_at", [1, 2, 3])
def test_service_rollback_at_every_version(service_reads, service_golden,
                                           fail_at):
    svc = _service(fault_spec=f"service.refresh:exc@{fail_at}")
    batches = _batches(service_reads)
    for i, (names, seqs) in enumerate(batches, start=1):
        if i == fail_at:
            before_version = svc.store.current().version
            cache_entries = svc.cache.stats()["entries"]
            with pytest.raises(RefreshFailed) as err:
                svc.ingest(names, seqs)
            # Nothing committed: old version, cache unswept.
            assert svc.store.current().version == before_version
            assert err.value.version == before_version
            assert svc.cache.stats()["entries"] == cache_entries
            svc.ingest(names, seqs)  # the retry succeeds …
        else:
            svc.ingest(names, seqs)
    # … and the final state is byte-identical to the never-faulted run.
    assert _service_digests(svc) == service_golden


def test_service_cache_survives_failed_refresh(service_reads):
    svc = _service(fault_spec="service.refresh:exc@2")
    names, seqs = _batches(service_reads, n=1)[0]
    svc.ingest(names, seqs)
    svc.contigs()                              # fills the v1 cache
    hits_before = svc.cache.stats()["hits"]
    with pytest.raises(RefreshFailed):
        svc.ingest(names, seqs)
    svc.contigs()                              # still served from cache
    assert svc.cache.stats()["hits"] == hits_before + 1


def test_service_http_503_then_retry(service_reads):
    svc = _service(fault_spec="service.refresh:exc@2")
    server = make_server(svc, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        names, seqs = _batches(service_reads, n=1)[0]
        payload = {"reads": [{"name": n, "seq": s}
                             for n, s in zip(names, seqs)]}
        req = urllib.request.Request(
            f"{base}/reads", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(req) as resp:
            assert json.loads(resp.read())["version"] == 1
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(urllib.request.Request(
                f"{base}/reads", data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
                method="POST"))
        assert err.value.code == 503
        body = json.loads(err.value.read())
        assert body["code"] == "refresh-failed"
        assert body["retryable"] is True
        assert body["version"] == 1
        with urllib.request.urlopen(f"{base}/version") as resp:
            assert json.loads(resp.read())["version"] == 1
        with urllib.request.urlopen(req) as resp:  # retry commits v2
            assert json.loads(resp.read())["version"] == 2
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_service_bad_batch_is_client_error(service_reads):
    # A structurally invalid batch (mismatched names/seqs) is the client's
    # fault — BadBatch (HTTP 400), and nothing is committed.  (Non-ACGT
    # characters are *not* an error: encode() substitutes them, matching
    # long-read N handling.)
    svc = _service()
    from repro.service import BadBatch
    with pytest.raises(BadBatch):
        svc.ingest(["r0", "r1"], ["ACGT"])
    assert svc.store.current().version == 0


# ---------------------------------------------------------------------------
# blocked path: checkpoint + injected executor faults together

def test_chaos_checkpoint_and_executor_faults(chaos_reads, baseline,
                                              tmp_path):
    """The full gauntlet: a parallel checkpointed run survives chunk
    faults, dies mid-checkpoint, resumes, and still matches the golden."""
    ckdir = str(tmp_path / "ck")
    with pytest.raises(FaultInjected):
        run_pipeline(chaos_reads,
                     _config("thread", 2, "blocked", checkpoint_dir=ckdir,
                             fault_plan="exec.chunk:exc@1;"
                                        "strip.checkpoint:exc@2"))
    resumed = run_pipeline(chaos_reads,
                           _config("thread", 2, "blocked",
                                   checkpoint_dir=ckdir,
                                   fault_plan="exec.chunk:exc@2"))
    assert _digests(resumed) == baseline["blocked"]
