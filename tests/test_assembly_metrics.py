"""Tests for assembly-quality metrics and the end-to-end assembly check."""

import numpy as np
import pytest

from repro.core.contigs import Contig, extract_contigs
from repro.eval.assembly_metrics import (contig_spans, genome_coverage,
                                         misjoin_count, n50)
from repro.seqs.simulator import TrueLayout


def _layout():
    return TrueLayout(np.array([0, 80, 160, 500]),
                      np.array([100, 180, 260, 600]),
                      np.array([0, 0, 0, 0]))


def test_n50_basic():
    assert n50([100]) == 100
    assert n50([50, 50, 100]) == 100  # 100 covers half of 200
    assert n50([10, 10, 10, 10]) == 10
    assert n50([]) == 0


def test_n50_skewed():
    # total 150; 100 >= 75 at the first element.
    assert n50([100, 30, 20]) == 100


def test_contig_spans():
    contigs = [Contig([0, 1, 2], [0, 0, 0]), Contig([3], [0])]
    spans = contig_spans(contigs, _layout())
    assert spans == [(0, 260), (500, 600)]


def test_genome_coverage():
    contigs = [Contig([0, 1, 2], [0, 0, 0]), Contig([3], [0])]
    cov = genome_coverage(contigs, _layout(), genome_length=600,
                          min_reads=2)
    assert cov == pytest.approx(260 / 600)
    cov_all = genome_coverage(contigs, _layout(), genome_length=600,
                              min_reads=1)
    assert cov_all == pytest.approx(360 / 600)


def test_misjoin_count():
    good = Contig([0, 1, 2], [0, 0, 0])   # consecutive overlaps exist
    bad = Contig([0, 3], [0, 0])           # 0 and 3 are disjoint
    assert misjoin_count([good], _layout()) == 0
    assert misjoin_count([bad], _layout()) == 1


def test_pipeline_assembly_quality(clean_dataset):
    """End to end on clean reads: contigs must be misjoin-free and cover a
    large fraction of the genome."""
    from repro import PipelineConfig, run_pipeline
    genome, reads, layout = clean_dataset
    res = run_pipeline(reads, PipelineConfig(
        k=17, nprocs=1, align_mode="chain", depth_hint=12, error_hint=0.0,
        fuzz=20))
    contigs = extract_contigs(res.string_graph)
    assert misjoin_count(contigs, layout) == 0
    cov = genome_coverage(contigs, layout, genome.shape[0], min_reads=2)
    assert cov > 0.5
    spans = [hi - lo for lo, hi in contig_spans(contigs, layout)]
    # Contigs must be substantially longer than single reads (mean 700 bp).
    assert n50(spans) > 750
