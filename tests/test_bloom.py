"""Unit and property tests for the Bloom filter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seqs.bloom import BloomFilter
from repro.seqs.kmer_counter import KmerTable

keys_arrays = st.lists(st.integers(0, 2 ** 62), min_size=0,
                       max_size=200).map(
    lambda xs: np.array(xs, dtype=np.uint64))


def test_no_false_negatives():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 2 ** 62, size=5000, dtype=np.uint64)
    bf = BloomFilter(capacity=5000, fp_rate=0.01)
    bf.add(keys)
    assert bf.contains(keys).all()


def test_false_positive_rate_near_target():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2 ** 62, size=20_000, dtype=np.uint64)
    others = rng.integers(2 ** 62, 2 ** 63, size=20_000, dtype=np.uint64)
    bf = BloomFilter(capacity=20_000, fp_rate=0.01)
    bf.add(keys)
    fp = bf.contains(others).mean()
    assert fp < 0.05  # generous bound over the 1% target


def test_add_and_test_marks_second_occurrence():
    bf = BloomFilter(capacity=100)
    keys = np.array([1, 2, 3], dtype=np.uint64)
    first = bf.add_and_test(keys)
    assert not first.any()
    second = bf.add_and_test(keys)
    assert second.all()


def test_add_and_test_intra_batch_duplicates():
    bf = BloomFilter(capacity=100)
    keys = np.array([7, 8, 7, 9, 7], dtype=np.uint64)
    seen = bf.add_and_test(keys)
    # First occurrence of 7 is new; later duplicates are seen.
    assert not seen[0]
    assert seen[2] and seen[4]
    assert not seen[1] and not seen[3]


def test_empty_batch():
    bf = BloomFilter(capacity=10)
    assert bf.contains(np.empty(0, dtype=np.uint64)).shape == (0,)
    assert bf.add_and_test(np.empty(0, dtype=np.uint64)).shape == (0,)
    bf.add(np.empty(0, dtype=np.uint64))  # no crash


def test_fill_ratio_increases():
    bf = BloomFilter(capacity=1000)
    assert bf.fill_ratio == 0.0
    bf.add(np.arange(500, dtype=np.uint64))
    assert 0.0 < bf.fill_ratio < 1.0


def test_invalid_params():
    with pytest.raises(ValueError):
        BloomFilter(capacity=0)
    with pytest.raises(ValueError):
        BloomFilter(capacity=10, fp_rate=1.5)


# -- property tests ----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(keys_arrays, keys_arrays)
def test_property_no_false_negatives_ever(added, probed):
    """Whatever was inserted — in any batch mix — always tests present."""
    bf = BloomFilter(capacity=max(1, added.size + probed.size))
    bf.add(added)
    bf.add_and_test(probed)
    assert bf.contains(added).all()
    assert bf.contains(probed).all()


@settings(max_examples=60, deadline=None)
@given(keys_arrays, keys_arrays)
def test_property_second_occurrence_always_admitted(pre, batch):
    """``add_and_test`` never reports an actually-seen key as new:
    any key inserted earlier, or duplicated within the batch, is seen."""
    bf = BloomFilter(capacity=max(1, pre.size + batch.size))
    bf.add(pre)
    seen = bf.add_and_test(batch)
    in_pre = np.isin(batch, pre)
    assert seen[in_pre].all()
    first_occurrence = np.zeros(batch.shape[0], dtype=bool)
    first_occurrence[np.unique(batch, return_index=True)[1]] = True
    assert seen[~first_occurrence].all()


@settings(max_examples=60, deadline=None)
@given(keys_arrays, keys_arrays)
def test_property_test_and_set_matches_add_and_test(pre, batch):
    """The batch engine's single-probe primitive equals the reference on
    distinct keys: same pre-state answers, same final filter state."""
    uniq = np.unique(batch)
    ref, fast = (BloomFilter(capacity=max(1, pre.size + batch.size))
                 for _ in range(2))
    ref.add(pre)
    fast.add(pre)
    assert np.array_equal(ref._slots, fast._slots)
    assert np.array_equal(ref.add_and_test(uniq), fast.test_and_set(uniq))
    assert np.array_equal(ref._slots, fast._slots)


@settings(max_examples=40, deadline=None)
@given(keys_arrays)
def test_property_intra_batch_duplicates(batch):
    """Occurrences 2..n of a key inside one batch are admitted; the whole
    batch is inserted afterwards."""
    bf = BloomFilter(capacity=max(1, batch.size), fp_rate=0.001)
    seen = bf.add_and_test(batch)
    order = np.argsort(batch, kind="stable")
    sb = batch[order]
    dup_of_prev = np.zeros(sb.shape[0], dtype=bool)
    dup_of_prev[1:] = sb[1:] == sb[:-1]
    # Duplicates must be seen regardless of the filter's false positives.
    assert seen[order][dup_of_prev].all()
    assert bf.contains(batch).all()


def test_test_and_set_empty():
    bf = BloomFilter(capacity=10)
    assert bf.test_and_set(np.empty(0, dtype=np.uint64)).shape == (0,)


def test_n_bits_power_of_two():
    for cap in (1, 7, 100, 12345):
        bf = BloomFilter(capacity=cap)
        assert bf.n_bits & (bf.n_bits - 1) == 0


# -- KmerTable.lookup edge cases --------------------------------------------

def _table(keys):
    keys = np.array(sorted(keys), dtype=np.uint64)
    return KmerTable(k=17, kmers=keys,
                     counts=np.full(keys.shape[0], 2, dtype=np.int64),
                     lower=2, upper=4)


def test_lookup_empty_table():
    table = _table([])
    ids = table.lookup(np.array([0, 5, 2 ** 62], dtype=np.uint64))
    assert (ids == -1).all()
    assert table.lookup(np.empty(0, dtype=np.uint64)).shape == (0,)


def test_lookup_below_and_above_all_entries():
    table = _table([100, 200, 300])
    ids = table.lookup(np.array([0, 99, 301, 2 ** 62], dtype=np.uint64))
    assert (ids == -1).all()
    ids = table.lookup(np.array([100, 300, 200], dtype=np.uint64))
    assert ids.tolist() == [0, 2, 1]


def test_lookup_single_entry_table():
    table = _table([42])
    ids = table.lookup(np.array([41, 42, 43], dtype=np.uint64))
    assert ids.tolist() == [-1, 0, -1]
