"""Unit tests for the Bloom filter."""

import numpy as np
import pytest

from repro.seqs.bloom import BloomFilter


def test_no_false_negatives():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 2 ** 62, size=5000, dtype=np.uint64)
    bf = BloomFilter(capacity=5000, fp_rate=0.01)
    bf.add(keys)
    assert bf.contains(keys).all()


def test_false_positive_rate_near_target():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2 ** 62, size=20_000, dtype=np.uint64)
    others = rng.integers(2 ** 62, 2 ** 63, size=20_000, dtype=np.uint64)
    bf = BloomFilter(capacity=20_000, fp_rate=0.01)
    bf.add(keys)
    fp = bf.contains(others).mean()
    assert fp < 0.05  # generous bound over the 1% target


def test_add_and_test_marks_second_occurrence():
    bf = BloomFilter(capacity=100)
    keys = np.array([1, 2, 3], dtype=np.uint64)
    first = bf.add_and_test(keys)
    assert not first.any()
    second = bf.add_and_test(keys)
    assert second.all()


def test_add_and_test_intra_batch_duplicates():
    bf = BloomFilter(capacity=100)
    keys = np.array([7, 8, 7, 9, 7], dtype=np.uint64)
    seen = bf.add_and_test(keys)
    # First occurrence of 7 is new; later duplicates are seen.
    assert not seen[0]
    assert seen[2] and seen[4]
    assert not seen[1] and not seen[3]


def test_empty_batch():
    bf = BloomFilter(capacity=10)
    assert bf.contains(np.empty(0, dtype=np.uint64)).shape == (0,)
    assert bf.add_and_test(np.empty(0, dtype=np.uint64)).shape == (0,)
    bf.add(np.empty(0, dtype=np.uint64))  # no crash


def test_fill_ratio_increases():
    bf = BloomFilter(capacity=1000)
    assert bf.fill_ratio == 0.0
    bf.add(np.arange(500, dtype=np.uint64))
    assert 0.0 < bf.fill_ratio < 1.0


def test_invalid_params():
    with pytest.raises(ValueError):
        BloomFilter(capacity=0)
    with pytest.raises(ValueError):
        BloomFilter(capacity=10, fp_rate=1.5)
