"""Tests for the two-pass distributed k-mer counter."""

import numpy as np
import pytest

from repro.mpisim import CommTracker, SimComm, StageTimer
from repro.seqs.dna import encode
from repro.seqs.fasta import ReadSet
from repro.seqs.kmer_counter import (count_kmers, reliable_upper_bound)
from repro.seqs.kmers import read_kmers


def _exact_counts(reads, k):
    """Reference: exact canonical k-mer multiplicities."""
    from collections import Counter
    counts: Counter = Counter()
    for i in range(len(reads)):
        km, _ = read_kmers(reads[i], k)
        counts.update(km.tolist())
    return counts


def _counts_match(reads, k, P, lower=2, upper=10):
    comm = SimComm(P, CommTracker(P))
    table = count_kmers(reads, k, comm, StageTimer(), lower=lower,
                        upper=upper)
    exact = _exact_counts(reads, k)
    expected = {km: c for km, c in exact.items() if lower <= c <= upper}
    got = dict(zip(table.kmers.tolist(), table.counts.tolist()))
    return expected, got


@pytest.mark.parametrize("P", [1, 2, 4])
def test_counts_exact_vs_reference(clean_dataset, P):
    _genome, reads, _layout = clean_dataset
    sub = reads.subset(np.arange(30))
    expected, got = _counts_match(sub, 17, P)
    assert got == expected


def test_singletons_eliminated():
    # Two identical reads plus one unique read: the unique read's k-mers are
    # singletons (modulo chance collisions) and must not appear.
    rng = np.random.default_rng(0)
    a = rng.integers(0, 4, 100).astype(np.uint8)
    b = rng.integers(0, 4, 100).astype(np.uint8)
    reads = ReadSet(["a1", "a2", "b"], [a.copy(), a.copy(), b])
    comm = SimComm(2, CommTracker(2))
    table = count_kmers(reads, 21, comm, StageTimer(), upper=50)
    assert (table.counts >= 2).all()
    # All reliable k-mers come from the duplicated read.
    km_a, _ = read_kmers(a, 21)
    assert set(table.kmers.tolist()) <= set(km_a.tolist())


def test_high_frequency_kmers_dropped():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 4, 60).astype(np.uint8)
    reads = ReadSet([f"r{i}" for i in range(20)], [a.copy() for _ in range(20)])
    comm = SimComm(1, CommTracker(1))
    table = count_kmers(reads, 21, comm, StageTimer(), upper=10)
    assert len(table) == 0  # every k-mer occurs 20 > 10 times


def test_lookup():
    rng = np.random.default_rng(2)
    a = rng.integers(0, 4, 80).astype(np.uint8)
    reads = ReadSet(["x", "y"], [a.copy(), a.copy()])
    comm = SimComm(1, CommTracker(1))
    table = count_kmers(reads, 15, comm, StageTimer(), upper=50)
    km, _ = read_kmers(a, 15)
    ids = table.lookup(km)
    assert (ids >= 0).all()
    missing = table.lookup(np.array([np.uint64(2**61 - 1)]))
    assert missing[0] == -1


def test_batches_increase_latency_not_volume(clean_dataset):
    _genome, reads, _layout = clean_dataset
    sub = reads.subset(np.arange(40))
    vols, msgs = [], []
    for b in (1, 3):
        tracker = CommTracker(4)
        comm = SimComm(4, tracker)
        count_kmers(sub, 17, comm, StageTimer(), batches=b, upper=40)
        rec = tracker.records["CountKmer"]
        vols.append(rec.total_bytes)
        msgs.append(rec.total_messages)
    assert vols[0] == pytest.approx(vols[1], rel=0.01)
    assert msgs[1] > msgs[0]


def test_p_invariance(clean_dataset):
    _genome, reads, _layout = clean_dataset
    sub = reads.subset(np.arange(40))
    tables = []
    for P in (1, 3, 5):
        comm = SimComm(P, CommTracker(P))
        t = count_kmers(sub, 17, comm, StageTimer(), upper=40)
        tables.append(dict(zip(t.kmers.tolist(), t.counts.tolist())))
    assert tables[0] == tables[1] == tables[2]


def test_reliable_upper_bound_matches_paper_regime():
    """With the paper's CLR parameters (k=17, 15% error, depth 10) the BELLA
    model lands at a small cutoff — the paper used max frequency 4."""
    assert reliable_upper_bound(10, 0.15, 17) == 4
    # Higher depth / lower error raises the ceiling.
    assert reliable_upper_bound(40, 0.13, 17) > 4


def test_empty_reads():
    reads = ReadSet(["e"], [encode("ACG")])  # shorter than k
    comm = SimComm(1, CommTracker(1))
    table = count_kmers(reads, 17, comm, StageTimer())
    assert len(table) == 0
