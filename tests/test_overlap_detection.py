"""Integration tests for overlap detection (A, C = A·Aᵀ, alignment, R)."""

import numpy as np
import pytest

from repro.core.overlap import (AlignmentFilter, align_candidates,
                                build_a_matrix, candidate_overlaps,
                                exchange_reads)
from repro.core.semirings import C_COUNT, R_SUFFIX
from repro.core.string_graph import StringGraph
from repro.eval.metrics import graph_edge_recall, overlap_recall_precision
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.kmer_counter import count_kmers


def _stack(reads, k=17, P=1, upper=40):
    comm = SimComm(P, CommTracker(P))
    timer = StageTimer()
    grid = ProcessGrid2D(P)
    table = count_kmers(reads, k, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, grid, comm, timer)
    return table, A, grid, comm, timer


def test_a_matrix_entries_are_kmer_positions(clean_dataset):
    from repro.seqs.kmers import canonical_kmers, pack_kmers
    _genome, reads, _layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads)
    G = A.to_global()
    # Spot-check 50 entries: the k-mer at the stored position must hash to
    # the stored column.
    rng = np.random.default_rng(0)
    for t in rng.integers(0, G.nnz, size=50):
        read_id, col, pos = int(G.row[t]), int(G.col[t]), int(G.vals[t, 0])
        fwd = pack_kmers(reads[read_id][pos:pos + 17], 17)
        can = canonical_kmers(fwd, 17)
        assert int(table.kmers[col]) == int(can[0])


def test_a_matrix_dims(clean_dataset):
    _genome, reads, _layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads)
    assert A.shape == (len(reads), len(table))


@pytest.mark.parametrize("P", [1, 4])
def test_candidate_overlaps_upper_triangle(clean_dataset, P):
    _genome, reads, _layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads, P=P)
    C = candidate_overlaps(A, comm, timer)
    G = C.to_global()
    assert (G.row < G.col).all()
    assert (G.vals[:, C_COUNT] >= 1).all()


def test_candidate_overlaps_p_invariant(clean_dataset):
    _genome, reads, _layout = clean_dataset
    pats = []
    for P in (1, 4):
        table, A, grid, comm, timer = _stack(reads, P=P)
        C = candidate_overlaps(A, comm, timer)
        G = C.to_global()
        pats.append(set(zip(G.row.tolist(), G.col.tolist())))
    assert pats[0] == pats[1]


def test_overlap_recall_on_clean_reads(clean_dataset):
    """Candidate detection must find nearly all true overlaps ≥ 500 bp on
    error-free reads (every shared 17-mer is exact)."""
    _genome, reads, layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads)
    C = candidate_overlaps(A, comm, timer)
    G = C.to_global()
    found = set(zip(G.row.tolist(), G.col.tolist()))
    recall, _prec = overlap_recall_precision(found, layout, min_overlap=500)
    assert recall > 0.98


def test_r_matrix_symmetric_pattern(clean_dataset):
    _genome, reads, _layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain", fuzz=20)
    G = R.to_global()
    entries = set(zip(G.row.tolist(), G.col.tolist()))
    assert all((j, i) in entries for i, j in entries)
    assert all(i != j for i, j in entries)


def test_r_suffixes_positive(clean_dataset):
    _genome, reads, _layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain", fuzz=20)
    G = R.to_global()
    assert (G.vals[:, R_SUFFIX] >= 1).all()


def test_r_graph_recall_vs_truth(clean_dataset):
    _genome, reads, layout = clean_dataset
    table, A, grid, comm, timer = _stack(reads)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain", fuzz=20)
    g = StringGraph.from_coomat(R.to_global())
    # R keeps dovetails only (contained overlaps are dropped by design,
    # Section IV-D, and near-containments within the fuzz margin classify
    # the same way), so measure recall over true *proper* pairs: overlap
    # >= 500 and each read extends beyond the other by more than the fuzz.
    fuzz = 20
    truth = layout.overlap_pairs(500)

    def containedish(i, j):
        return (layout.start[i] >= layout.start[j] - fuzz
                and layout.end[i] <= layout.end[j] + fuzz)

    proper = {(i, j) for i, j in truth
              if not containedish(i, j) and not containedish(j, i)}
    found = {(min(int(s), int(d)), max(int(s), int(d)))
             for s, d in zip(g.src, g.dst)}
    recall = len(found & proper) / len(proper)
    assert recall > 0.9


def test_xdrop_mode_on_small_subset(noisy_dataset):
    """x-drop alignment agrees with chain mode on which pairs are real
    (sampled subset to keep DP time bounded)."""
    _genome, reads, _layout = noisy_dataset
    sub = reads.subset(np.arange(40))
    table, A, grid, comm, timer = _stack(sub, upper=40)
    C = candidate_overlaps(A, comm, timer)
    R_chain = align_candidates(C, sub, 17, comm, timer, mode="chain",
                               fuzz=100)
    R_xdrop = align_candidates(C, sub, 17, comm, timer, mode="xdrop",
                               fuzz=100)
    pc = set(zip(*(a.tolist() for a in
                   (R_chain.to_global().row, R_chain.to_global().col))))
    px = set(zip(*(a.tolist() for a in
                   (R_xdrop.to_global().row, R_xdrop.to_global().col))))
    # x-drop is stricter (real alignment scores); it should be a subset of
    # the optimistic chain estimate, modulo boundary effects.
    if px:
        assert len(px & pc) / len(px) > 0.9


def test_alignment_filter():
    f = AlignmentFilter(min_score=50, min_overlap=200, ratio=0.4)
    assert not f.passes(100, 150)      # too short
    assert not f.passes(40, 300)       # below min score
    assert not f.passes(100, 300)      # below ratio (0.4*300=120)
    assert f.passes(130, 300)


def test_exchange_reads_volume(clean_dataset):
    """2D read exchange: each rank needs its block-row plus block-column
    range (2nl/√P bytes); rank-local reads are not charged.

    For P=4 (q=2) the gross demand is P · 2nl/√P = 4nl; ranks on the grid
    diagonal own a 1D block inside *both* their ranges (2·nl/4 skipped
    each) and off-diagonal ranks skip one (nl/4), so the charged total is
    4nl − 1.5nl = 2.5nl.
    """
    _genome, reads, _layout = clean_dataset
    P = 4
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    grid = ProcessGrid2D(P)
    exchange_reads(reads, grid, comm)
    rec = tracker.records["ExchangeRead"]
    nl = reads.total_bases()
    assert rec.total_bytes == pytest.approx(2.5 * nl, rel=0.05)
    # Per-rank received volume bound: 2nl/√P.
    assert rec.max_bytes <= 2 * nl / np.sqrt(P) * 1.1
