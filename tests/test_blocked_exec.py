"""Blocked mode × execution engine cross-product determinism.

The contract of the memory-budget pipeline mode: for every strip count and
every executor, ``overlap_mode="blocked"`` produces a string matrix S and a
contig layout byte-identical to the monolithic path — strip-mining and
parallel strip scheduling are pure memory/performance axes.
"""

import numpy as np
import pytest

from repro import PipelineConfig, extract_contigs, run_pipeline

STRIP_COUNTS = (1, 2, 4, 7)
EXECUTORS = (("serial", 1), ("thread", 2), ("process", 2))


def _cfg(**kw):
    base = dict(k=17, nprocs=4, align_mode="chain", depth_hint=12,
                error_hint=0.0, fuzz=20)
    base.update(kw)
    return PipelineConfig(**base)


def _layout(result):
    """Contig layout as comparable tuples (read order + orientations)."""
    return [(tuple(c.reads), tuple(c.orientations))
            for c in extract_contigs(result.string_graph)]


@pytest.fixture(scope="module")
def monolithic_reference(clean_dataset):
    _genome, reads, _layout_ = clean_dataset
    res = run_pipeline(reads, _cfg(overlap_mode="monolithic"))
    return res, _layout(res)


@pytest.mark.parametrize("executor,workers", EXECUTORS)
@pytest.mark.parametrize("n_strips", STRIP_COUNTS)
def test_blocked_cross_product_matches_monolithic(clean_dataset,
                                                  monolithic_reference,
                                                  n_strips, executor,
                                                  workers):
    _genome, reads, _layout_ = clean_dataset
    ref, ref_layout = monolithic_reference
    res = run_pipeline(reads, _cfg(overlap_mode="blocked",
                                   n_strips=n_strips, executor=executor,
                                   workers=workers))
    assert res.overlap_mode == "blocked"
    assert res.n_strips == n_strips
    assert np.array_equal(res.S.row, ref.S.row)
    assert np.array_equal(res.S.col, ref.S.col)
    assert np.array_equal(res.S.vals, ref.S.vals)
    assert res.nnz_c == ref.nnz_c
    assert _layout(res) == ref_layout


def test_blocked_pipeline_memory_accounting(clean_dataset,
                                            monolithic_reference):
    """The e2e acceptance bar: >= 3x lower candidate peak at 4 strips."""
    _genome, reads, _layout_ = clean_dataset
    ref, _ = monolithic_reference
    res = run_pipeline(reads, _cfg(overlap_mode="blocked", n_strips=4))
    assert ref.peak_candidate_bytes > 0
    assert res.peak_candidate_bytes * 3 <= ref.peak_candidate_bytes
    # Stages outside the overlap step are untouched by strip-mining.
    assert res.peak_bytes["CreateSpMat"] == ref.peak_bytes["CreateSpMat"]
    # The assembled R is the same matrix either way — blocked mode must
    # not under-report the Alignment-stage high-water mark.
    assert res.peak_bytes["Alignment"] == ref.peak_bytes["Alignment"]


def test_blocked_budget_driven_pipeline(clean_dataset, monolithic_reference):
    """A byte budget alone picks a strip count and honors the peak."""
    _genome, reads, _layout_ = clean_dataset
    ref, ref_layout = monolithic_reference
    budget = max(1, ref.peak_candidate_bytes // 3)
    res = run_pipeline(reads, _cfg(overlap_mode="blocked",
                                   memory_budget=budget))
    assert res.n_strips > 1
    assert res.peak_candidate_bytes <= budget
    assert np.array_equal(res.S.vals, ref.S.vals)
    assert _layout(res) == ref_layout
