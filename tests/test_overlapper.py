"""Tests for overlap classification (dovetail/contained, ends, suffixes)."""

import pytest

from repro.align.overlapper import B_END, E_END, classify_overlap
from repro.align.xdrop import AlignmentResult


def _aln(ba, ea, bb, eb, strand=0, score=100):
    return AlignmentResult(score=score, ba=ba, ea=ea, bb=bb, eb=eb,
                           strand=strand)


def test_forward_forward_i_first():
    # i: [0, 100), j: [60, 180) on the genome; overlap 40.
    # On i: aligned [60, 100); on j: [0, 40).
    oc = classify_overlap(100, 120, _aln(60, 100, 0, 40), fuzz=5)
    assert oc.kind == "dovetail"
    assert oc.end_i == E_END and oc.end_j == B_END
    assert oc.suffix_ij == 80   # part of j beyond the overlap
    assert oc.suffix_ji == 60   # prefix of i before the overlap


def test_forward_forward_j_first():
    # j: [0, 120), i: [80, 180): aligned on i [0, 40), on j [80, 120).
    oc = classify_overlap(100, 120, _aln(0, 40, 80, 120), fuzz=5)
    assert oc.kind == "dovetail"
    assert oc.end_i == B_END and oc.end_j == E_END
    assert oc.suffix_ij == 80
    assert oc.suffix_ji == 60


def test_reverse_complement_i_first():
    # Same geometry as i-first but j aligned in reverse orientation.
    oc = classify_overlap(100, 120, _aln(60, 100, 0, 40, strand=1), fuzz=5)
    assert oc.kind == "dovetail"
    assert oc.end_i == E_END and oc.end_j == E_END


def test_reverse_complement_j_first():
    oc = classify_overlap(100, 120, _aln(0, 40, 80, 120, strand=1), fuzz=5)
    assert oc.kind == "dovetail"
    assert oc.end_i == B_END and oc.end_j == B_END


def test_contained_i():
    # i fully aligned inside j.
    oc = classify_overlap(100, 300, _aln(0, 100, 50, 150), fuzz=5)
    assert oc.kind == "contained_i"


def test_contained_j():
    oc = classify_overlap(300, 100, _aln(50, 150, 0, 100), fuzz=5)
    assert oc.kind == "contained_j"


def test_near_equal_reads_shorter_contained():
    oc = classify_overlap(100, 102, _aln(0, 100, 1, 101), fuzz=5)
    assert oc.kind == "contained_i"


def test_internal_alignment_rejected():
    # Alignment stops mid-read on both i's right and j's left: not a
    # dovetail (likely a repeat-induced false overlap).
    oc = classify_overlap(300, 300, _aln(50, 150, 120, 220), fuzz=5)
    assert oc.kind == "internal"


def test_fuzz_tolerates_ragged_tips():
    # i-first dovetail but with 3 unaligned bases at the joint tips.
    oc = classify_overlap(100, 120, _aln(60, 97, 3, 40), fuzz=5)
    assert oc.kind == "dovetail"
    assert oc.end_i == E_END and oc.end_j == B_END


def test_suffix_never_below_one():
    # Degenerate near-equal spans still yield positive suffixes.
    oc = classify_overlap(100, 100, _aln(1, 100, 0, 99), fuzz=5)
    if oc.kind == "dovetail":
        assert oc.suffix_ij >= 1 and oc.suffix_ji >= 1


def test_suffix_additivity_three_collinear_reads():
    """suffix(i→k) + suffix(k→j) == suffix(i→j) for error-free collinear
    reads — the invariant the MinPlus transitivity test relies on."""
    # Reads i=[0,100), k=[40,140), j=[80,180); all forward, length 100.
    def dovetail(si, sj):
        # overlap [max(si,sj), min(si,sj)+100)
        lo = max(si, sj)
        hi = min(si, sj) + 100
        return _aln(lo - si, hi - si, lo - sj, hi - sj)

    ik = classify_overlap(100, 100, dovetail(0, 40), fuzz=5)
    kj = classify_overlap(100, 100, dovetail(40, 80), fuzz=5)
    ij = classify_overlap(100, 100, dovetail(0, 80), fuzz=5)
    assert ik.suffix_ij + kj.suffix_ij == ij.suffix_ij
    assert kj.suffix_ji + ik.suffix_ji == ij.suffix_ji
