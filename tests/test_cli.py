"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.pipeline import PipelineConfig


def test_simulate_writes_fasta(tmp_path, capsys):
    out = tmp_path / "reads.fa"
    rc = main(["simulate", str(out), "--genome-length", "5000",
               "--depth", "5", "--error-rate", "0.0", "--seed", "3"])
    assert rc == 0
    assert out.exists()
    text = out.read_text()
    assert text.startswith(">")
    assert "wrote" in capsys.readouterr().out


def test_assemble_end_to_end(tmp_path, capsys):
    reads = tmp_path / "reads.fa"
    layout = tmp_path / "layout.tsv"
    main(["simulate", str(reads), "--genome-length", "8000",
          "--depth", "10", "--error-rate", "0.0", "--seed", "1"])
    rc = main(["assemble", str(reads), "--nprocs", "4", "--fuzz", "20",
               "--depth-hint", "10", "--error-hint", "0.0",
               "--layout", str(layout)])
    assert rc == 0
    lines = layout.read_text().splitlines()
    assert lines[0] == "contig\tposition\tread\torientation"
    assert len(lines) > 1
    out = capsys.readouterr().out
    assert "nnz(S)" in out and "contigs" in out


def test_stats_command(tmp_path, capsys):
    reads = tmp_path / "reads.fa"
    main(["simulate", str(reads), "--genome-length", "6000",
          "--depth", "8", "--error-rate", "0.0", "--seed", "2"])
    rc = main(["stats", str(reads), "--nprocs", "1", "--fuzz", "20",
               "--machine", "summit", "--depth-hint", "8",
               "--error-hint", "0.0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Summit CPU" in out
    assert "TrReduction" in out


def test_stats_blocked_mode(tmp_path, capsys):
    reads = tmp_path / "reads.fa"
    main(["simulate", str(reads), "--genome-length", "6000",
          "--depth", "8", "--error-rate", "0.0", "--seed", "2"])
    rc = main(["stats", str(reads), "--nprocs", "4", "--fuzz", "20",
               "--align-mode", "chain", "--depth-hint", "8",
               "--error-hint", "0.0", "--overlap-mode", "blocked",
               "--n-strips", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "overlap mode: blocked (3 strips)" in out
    assert "peak live matrix bytes per stage:" in out
    assert "SpGEMM" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_defaults():
    args = build_parser().parse_args(["assemble", "x.fa"])
    assert args.k == 17 and args.nprocs == 1
    assert args.align_mode == "xdrop"  # the PipelineConfig default


def test_parser_defaults_match_pipeline_config():
    """One source of truth: argparse defaults are PipelineConfig's.

    Regression: the CLI had drifted to depth_hint 20 (config: 30),
    error_hint 0.1 (config: 0.15), and align_mode 'chain' (config:
    'xdrop'); now every shared knob reads its default from the config
    dataclass, so drift is structurally impossible.
    """
    cfg = PipelineConfig()
    for command in ("assemble", "stats"):
        args = build_parser().parse_args([command, "x.fa"])
        assert args.k == cfg.k
        assert args.nprocs == cfg.nprocs
        assert args.align_mode == cfg.align_mode
        assert args.align_impl == cfg.align_impl
        assert args.kmer_impl == cfg.kmer_impl
        assert args.spgemm_impl == cfg.spgemm_impl
        assert args.fuzz == cfg.fuzz
        assert args.depth_hint == cfg.depth_hint
        assert args.error_hint == cfg.error_hint
        assert args.backend == cfg.backend
        assert args.workers == cfg.workers
        assert args.executor == cfg.executor
        assert args.overlap_mode == cfg.overlap_mode
        assert args.n_strips == cfg.n_strips
        assert args.memory_budget == cfg.memory_budget
        assert args.seed_mode == cfg.seed_mode
        assert args.seed_w == cfg.seed_w
        assert args.read_store == cfg.read_store
        assert args.store_dir == cfg.store_dir


def test_stats_prints_kmer_engine(tmp_path, capsys):
    reads = tmp_path / "reads.fa"
    main(["simulate", str(reads), "--genome-length", "6000",
          "--depth", "8", "--error-rate", "0.0", "--seed", "2"])
    rc = main(["stats", str(reads), "--nprocs", "1", "--fuzz", "20",
               "--depth-hint", "8", "--error-hint", "0.0",
               "--kmer-impl", "loop"])
    assert rc == 0
    assert "k-mer counting: loop engine" in capsys.readouterr().out


def test_parser_memory_budget_suffixes():
    args = build_parser().parse_args(
        ["stats", "x.fa", "--memory-budget", "64M"])
    assert args.memory_budget == 64 * 2**20
    args = build_parser().parse_args(
        ["stats", "x.fa", "--memory-budget", "123456"])
    assert args.memory_budget == 123456
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["stats", "x.fa", "--memory-budget", "lots"])
    # Nonpositive values die at the parser, not deep inside run_pipeline.
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["stats", "x.fa", "--memory-budget", "0"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["stats", "x.fa", "--n-strips", "0"])


def test_serve_parser_defaults_match_config():
    """The serve subcommand reads every default from ServiceConfig /
    PipelineConfig, so the CLI cannot drift from the library defaults."""
    from repro.service import ServiceConfig

    scfg = ServiceConfig()
    cfg = PipelineConfig()
    args = build_parser().parse_args(["serve"])
    assert args.host == scfg.host
    assert args.port == scfg.port
    assert args.refresh_mode == scfg.refresh_mode
    assert args.cache_entries == scfg.cache_entries
    assert args.initial is None
    assert args.k == cfg.k
    assert args.nprocs == cfg.nprocs
    assert args.align_mode == cfg.align_mode
    assert args.align_impl == cfg.align_impl
    assert args.kmer_impl == cfg.kmer_impl
    assert args.spgemm_impl == cfg.spgemm_impl
    assert args.fuzz == cfg.fuzz
    assert args.depth_hint == cfg.depth_hint
    assert args.error_hint == cfg.error_hint
    assert args.backend == cfg.backend
    assert args.workers == cfg.workers
    assert args.executor == cfg.executor
    assert args.seed_mode == cfg.seed_mode
    assert args.seed_w == cfg.seed_w
