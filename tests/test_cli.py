"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_simulate_writes_fasta(tmp_path, capsys):
    out = tmp_path / "reads.fa"
    rc = main(["simulate", str(out), "--genome-length", "5000",
               "--depth", "5", "--error-rate", "0.0", "--seed", "3"])
    assert rc == 0
    assert out.exists()
    text = out.read_text()
    assert text.startswith(">")
    assert "wrote" in capsys.readouterr().out


def test_assemble_end_to_end(tmp_path, capsys):
    reads = tmp_path / "reads.fa"
    layout = tmp_path / "layout.tsv"
    main(["simulate", str(reads), "--genome-length", "8000",
          "--depth", "10", "--error-rate", "0.0", "--seed", "1"])
    rc = main(["assemble", str(reads), "--nprocs", "4", "--fuzz", "20",
               "--depth-hint", "10", "--error-hint", "0.0",
               "--layout", str(layout)])
    assert rc == 0
    lines = layout.read_text().splitlines()
    assert lines[0] == "contig\tposition\tread\torientation"
    assert len(lines) > 1
    out = capsys.readouterr().out
    assert "nnz(S)" in out and "contigs" in out


def test_stats_command(tmp_path, capsys):
    reads = tmp_path / "reads.fa"
    main(["simulate", str(reads), "--genome-length", "6000",
          "--depth", "8", "--error-rate", "0.0", "--seed", "2"])
    rc = main(["stats", str(reads), "--nprocs", "1", "--fuzz", "20",
               "--machine", "summit", "--depth-hint", "8",
               "--error-hint", "0.0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Summit CPU" in out
    assert "TrReduction" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_defaults():
    args = build_parser().parse_args(["assemble", "x.fa"])
    assert args.k == 17 and args.nprocs == 1
    assert args.align_mode == "chain"
