"""Importable test helpers for building overlap graphs.

Lives in its own module (not ``conftest.py``) so test files can import it
explicitly: ``from conftest import ...`` resolves whichever ``conftest.py``
pytest imported first, and with both ``tests/`` and ``benchmarks/`` on the
path the benchmark one used to win, breaking the import.  No other
directory defines an ``overlap_helpers`` module, so this name is
unambiguous regardless of what else is collected.
"""

from __future__ import annotations

from repro.core.overlap import align_candidates, build_a_matrix, \
    candidate_overlaps
from repro.core.string_graph import StringGraph
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.kmer_counter import count_kmers


def build_overlap_graph(reads, k=17, nprocs=1, mode="chain", fuzz=20,
                        upper=40, backend=None):
    """Overlap graph R (pre-reduction) for a read set."""
    comm = SimComm(nprocs, CommTracker(nprocs))
    timer = StageTimer()
    grid = ProcessGrid2D(nprocs)
    table = count_kmers(reads, k, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, grid, comm, timer)
    C = candidate_overlaps(A, comm, timer, backend=backend)
    R = align_candidates(C, reads, k, comm, timer, mode=mode, fuzz=fuzz)
    return StringGraph.from_coomat(R.to_global()), R, comm, timer
