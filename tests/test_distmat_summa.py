"""Tests for 2D distributed matrices and Sparse SUMMA."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.dsparse.coomat import CooMat
from repro.dsparse.distmat import DistMat
from repro.dsparse.semiring import MinPlus, PlusTimes
from repro.dsparse.spgemm import spgemm_esc
from repro.dsparse.summa import summa
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm


def _rand_dist(rng, shape, density, grid):
    s = sp.random(*shape, density=density, format="coo", random_state=rng,
                  data_rvs=lambda n: rng.integers(1, 50, n))
    return DistMat.from_coo(shape, grid, s.row, s.col, s.data), \
        CooMat.from_scipy(s)


def test_from_coo_to_global_roundtrip():
    rng = np.random.default_rng(0)
    grid = ProcessGrid2D(4)
    D, G = _rand_dist(rng, (23, 17), 0.15, grid)
    back = D.to_global()
    assert np.array_equal(back.row, G.row)
    assert np.array_equal(back.col, G.col)
    assert np.array_equal(back.vals, G.vals)


def test_blocks_cover_dimensions():
    grid = ProcessGrid2D(9)
    D = DistMat.empty((10, 7), grid)
    assert sum(D.blocks[i][0].shape[0] for i in range(3)) == 10
    assert sum(D.blocks[0][j].shape[1] for j in range(3)) == 7


def test_transpose_matches_global_transpose():
    rng = np.random.default_rng(1)
    grid = ProcessGrid2D(4)
    D, G = _rand_dist(rng, (15, 21), 0.2, grid)
    T = D.transpose().to_global()
    GT = G.transpose()
    assert np.array_equal(T.row, GT.row)
    assert np.array_equal(T.col, GT.col)


def test_nnz_and_copy_independent():
    rng = np.random.default_rng(2)
    grid = ProcessGrid2D(1)
    D, G = _rand_dist(rng, (10, 10), 0.2, grid)
    D2 = D.copy()
    D2.blocks[0][0].vals[:] = 0
    assert D.to_global().vals.sum() == G.vals.sum()
    assert D.nnz() == G.nnz


@pytest.mark.parametrize("P", [1, 4, 9])
def test_summa_matches_local_spgemm(P):
    rng = np.random.default_rng(P)
    grid = ProcessGrid2D(P)
    comm = SimComm(P, CommTracker(P))
    A, GA = _rand_dist(rng, (20, 30), 0.15, grid)
    B, GB = _rand_dist(rng, (30, 12), 0.15, grid)
    C = summa(A, B, PlusTimes(), comm, stage="t")
    expect = spgemm_esc(GA, GB, PlusTimes())
    got = C.to_global()
    assert np.array_equal(got.row, expect.row)
    assert np.array_equal(got.col, expect.col)
    assert np.array_equal(got.vals, expect.vals)


def test_summa_minplus_matches_local():
    rng = np.random.default_rng(7)
    grid = ProcessGrid2D(4)
    comm = SimComm(4, CommTracker(4))
    A, GA = _rand_dist(rng, (25, 25), 0.1, grid)
    C = summa(A, A, MinPlus(), comm, stage="t")
    expect = spgemm_esc(GA, GA, MinPlus())
    got = C.to_global()
    assert np.array_equal(got.row, expect.row)
    assert np.array_equal(got.vals, expect.vals)


def test_summa_charges_sqrtP_messages_per_rank():
    """Latency per rank is 2(√P−1) broadcasts' worth at the roots; the max
    per-rank message count over the whole product is O(√P) (Table I)."""
    rng = np.random.default_rng(3)
    P = 16
    grid = ProcessGrid2D(P)
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    A, _ = _rand_dist(rng, (64, 64), 0.2, grid)
    summa(A, A, PlusTimes(), comm, stage="sp")
    rec = tracker.records["sp"]
    q = 4
    # Each rank is a row-bcast root q times... no: over all k stages, rank
    # (i, j) roots the row broadcast when k == j and the col broadcast when
    # k == i — each costs q-1 messages, so max messages per rank = 2(q-1).
    assert rec.max_messages == 2 * (q - 1)


def test_summa_grid_mismatch():
    gridA = ProcessGrid2D(4)
    gridB = ProcessGrid2D(9)
    A = DistMat.empty((8, 8), gridA)
    B = DistMat.empty((8, 8), gridB)
    comm = SimComm(4, CommTracker(4))
    with pytest.raises(ValueError):
        summa(A, B, PlusTimes(), comm, stage="t")


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2 ** 31))
def test_property_summa_equals_scipy(seed):
    rng = np.random.default_rng(seed)
    grid = ProcessGrid2D(4)
    comm = SimComm(4, CommTracker(4))
    A, GA = _rand_dist(rng, (18, 22), 0.12, grid)
    B, GB = _rand_dist(rng, (22, 16), 0.12, grid)
    C = summa(A, B, PlusTimes(), comm, stage="t").to_global()
    expect = (GA.to_scipy().tocsr() @ GB.to_scipy().tocsr())
    assert (abs(C.to_scipy().tocsr() - expect) > 1e-9).nnz == 0
