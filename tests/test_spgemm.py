"""Tests for local semiring SpGEMM: ESC kernel vs Gustavson vs scipy."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.dsparse.coomat import CooMat
from repro.dsparse.semiring import INF, BoolOr, MinPlus, PlusTimes
from repro.dsparse.spgemm import multiway_merge, spgemm_esc, spgemm_gustavson


def _rand_coo(rng, rows, cols, density):
    s = sp.random(rows, cols, density=density, format="coo", random_state=rng,
                  data_rvs=lambda n: rng.integers(1, 50, n))
    return CooMat.from_scipy(s)


def test_plustimes_matches_scipy():
    rng = np.random.default_rng(0)
    A = _rand_coo(rng, 30, 40, 0.1)
    B = _rand_coo(rng, 40, 25, 0.1)
    C = spgemm_esc(A, B, PlusTimes())
    expect = (A.to_scipy().tocsr() @ B.to_scipy().tocsr()).tocoo()
    got = C.to_scipy().tocsr()
    assert (abs(got - expect.tocsr()) > 1e-9).nnz == 0


def test_esc_equals_gustavson_plustimes():
    rng = np.random.default_rng(1)
    A = _rand_coo(rng, 20, 20, 0.15)
    B = _rand_coo(rng, 20, 20, 0.15)
    c1 = spgemm_esc(A, B, PlusTimes())
    c2 = spgemm_gustavson(A, B, PlusTimes())
    assert np.array_equal(c1.row, c2.row)
    assert np.array_equal(c1.col, c2.col)
    assert np.array_equal(c1.vals, c2.vals)


def test_esc_equals_gustavson_minplus():
    rng = np.random.default_rng(2)
    A = _rand_coo(rng, 25, 25, 0.12)
    c1 = spgemm_esc(A, A, MinPlus())
    c2 = spgemm_gustavson(A, A, MinPlus())
    assert np.array_equal(c1.row, c2.row)
    assert np.array_equal(c1.vals, c2.vals)


def test_minplus_shortest_two_hop():
    # Path graph 0-1-2 with weights 3 and 4: two-hop 0->2 costs 7.
    A = CooMat((3, 3), [0, 1], [1, 2], [[3], [4]])
    C = spgemm_esc(A, A, MinPlus())
    assert C.nnz == 1
    assert (int(C.row[0]), int(C.col[0])) == (0, 2)
    assert int(C.vals[0, 0]) == 7


def test_minplus_takes_minimum_over_paths():
    # 0->1->3 (2+2=4) and 0->2->3 (1+1=2): min is 2.
    A = CooMat((4, 4), [0, 0, 1, 2], [1, 2, 3, 3], [[2], [1], [2], [1]])
    C = spgemm_esc(A, A, MinPlus())
    at = {(int(r), int(c)): int(v) for r, c, v in
          zip(C.row, C.col, C.vals[:, 0])}
    assert at[(0, 3)] == 2


def test_boolor_pattern():
    A = CooMat((3, 3), [0, 1], [1, 2], [[9], [9]])
    C = spgemm_esc(A, A, BoolOr())
    assert C.vals[:, 0].tolist() == [1]


def test_dimension_mismatch():
    A = CooMat.empty((3, 4))
    B = CooMat.empty((5, 3))
    with pytest.raises(ValueError):
        spgemm_esc(A, B, PlusTimes())


def test_empty_operands():
    A = CooMat.empty((3, 4))
    B = CooMat.empty((4, 2))
    C = spgemm_esc(A, B, PlusTimes())
    assert C.nnz == 0 and C.shape == (3, 2)


def test_multiway_merge_plustimes():
    p1 = CooMat((2, 2), [0], [0], [[3]])
    p2 = CooMat((2, 2), [0, 1], [0, 1], [[4], [5]])
    merged = multiway_merge([p1, p2], PlusTimes(), (2, 2))
    at = {(int(r), int(c)): int(v) for r, c, v in
          zip(merged.row, merged.col, merged.vals[:, 0])}
    assert at == {(0, 0): 7, (1, 1): 5}


def test_multiway_merge_empty():
    merged = multiway_merge([], PlusTimes(), (3, 3))
    assert merged.nnz == 0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 31), st.floats(0.02, 0.2), st.floats(0.02, 0.2))
def test_property_esc_matches_scipy(seed, da, db):
    rng = np.random.default_rng(seed)
    A = _rand_coo(rng, 15, 18, da)
    B = _rand_coo(rng, 18, 12, db)
    C = spgemm_esc(A, B, PlusTimes())
    expect = (A.to_scipy().tocsr() @ B.to_scipy().tocsr())
    assert (abs(C.to_scipy().tocsr() - expect) > 1e-9).nnz == 0
