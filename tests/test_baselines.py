"""Tests for the baselines (Myers, SORA-like, diBELLA 1D, minimap-like)."""

import numpy as np
import pytest

from repro.baselines import (myers_transitive_reduction, run_dibella1d,
                             run_minimap_like, sora_transitive_reduction)
from repro.core.string_graph import StringGraph
from repro.eval.metrics import overlap_recall_precision


# -- Myers ------------------------------------------------------------------

def test_myers_removes_chain_transitive():
    src = np.array([0, 1, 1, 2, 0, 2])
    dst = np.array([1, 0, 2, 1, 2, 0])
    suffix = np.array([4, 6, 3, 5, 7, 11])
    end_src = np.array([1, 0, 1, 0, 1, 0])
    end_dst = np.array([0, 1, 0, 1, 0, 1])
    g = StringGraph(3, src, dst, suffix, end_src, end_dst)
    out = myers_transitive_reduction(g, fuzz=0)
    assert (0, 2) not in out.edge_set()
    assert (0, 1) in out.edge_set()


def test_myers_fixed_point(clean_overlap_graph):
    out = myers_transitive_reduction(clean_overlap_graph, fuzz=20)
    again = myers_transitive_reduction(out, fuzz=20)
    assert out.edge_set() == again.edge_set()


def test_myers_rowmax_at_least_as_aggressive(clean_overlap_graph):
    """rowmax bound (the paper's) removes a superset of Myers' per-edge
    bound removals."""
    g = clean_overlap_graph
    rowmax = myers_transitive_reduction(g, fuzz=20, use_rowmax=True)
    peredge = myers_transitive_reduction(g, fuzz=20, use_rowmax=False)
    assert rowmax.edge_set() <= peredge.edge_set()


# -- SORA ------------------------------------------------------------------

def test_sora_matches_myers(clean_overlap_graph):
    g = clean_overlap_graph
    sora = sora_transitive_reduction(g, nodes=2)
    myers = myers_transitive_reduction(g, fuzz=150)
    assert sora.graph.edge_set() == myers.edge_set()


def test_sora_runtime_flat_in_nodes(clean_overlap_graph):
    """Table VI's signature: SORA's modeled time is nearly constant in the
    node count (framework-overhead dominated)."""
    g = clean_overlap_graph
    t = [sora_transitive_reduction(g, nodes=n).modeled_seconds
         for n in (2, 8, 32)]
    assert max(t) / min(t) < 2.0


def test_sora_counts_supersteps_and_shuffle(clean_overlap_graph):
    res = sora_transitive_reduction(clean_overlap_graph, nodes=2)
    assert res.supersteps >= 2  # work + quiescence check
    assert res.shuffle_bytes > 0


# -- diBELLA 1D ----------------------------------------------------------------

@pytest.fixture(scope="module")
def oned_run(clean_dataset):
    _genome, reads, _layout = clean_dataset
    return run_dibella1d(reads, k=17, nprocs=4, align_mode="chain",
                         depth_hint=12, error_hint=0.0, kmer_upper=40)


def test_1d_finds_overlaps(clean_dataset, oned_run):
    _genome, reads, layout = clean_dataset
    assert oned_run.n_overlaps > 0
    assert oned_run.n_candidate_pairs >= oned_run.n_overlaps


def test_1d_candidates_match_2d(clean_dataset, oned_run):
    """1D and 2D compute the same candidate pair set (they are the same
    outer product, differently distributed)."""
    from overlap_helpers import build_overlap_graph
    from repro.core.overlap import build_a_matrix, candidate_overlaps
    from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
    from repro.seqs.kmer_counter import count_kmers

    _genome, reads, _layout = clean_dataset
    comm = SimComm(1, CommTracker(1))
    timer = StageTimer()
    table = count_kmers(reads, 17, comm, timer, upper=40)
    A = build_a_matrix(reads, table, ProcessGrid2D(1), comm, timer)
    C = candidate_overlaps(A, comm, timer)
    assert oned_run.n_candidate_pairs == C.nnz()


def test_1d_comm_exceeds_2d_at_moderate_p(clean_dataset):
    """Table I's point: at moderate P the 1D overlap exchange moves more
    words per rank than the 2D SpGEMM broadcasts (a²m/P vs am/√P with the
    duplicated-candidate constant)."""
    from repro.eval.experiments import _CACHE
    from repro.core.overlap import build_a_matrix, candidate_overlaps
    from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
    from repro.seqs.kmer_counter import count_kmers

    _genome, reads, _layout = clean_dataset
    P = 4
    oned = run_dibella1d(reads, k=17, nprocs=P, align_mode="chain",
                         depth_hint=12, error_hint=0.0, kmer_upper=40)
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    timer = StageTimer()
    table = count_kmers(reads, 17, comm, timer, upper=40)
    A = build_a_matrix(reads, table, ProcessGrid2D(P), comm, timer)
    candidate_overlaps(A, comm, timer)
    w_1d = oned.tracker.words("Overlap1D")
    w_2d = tracker.words("SpGEMM")
    assert w_1d > 0 and w_2d > 0
    assert w_1d > 0.5 * w_2d  # the duplicated-pair volume is substantial


# -- minimap-like -----------------------------------------------------------------

def test_minimap_like_recall(clean_dataset):
    _genome, reads, layout = clean_dataset
    res = run_minimap_like(reads, k=15, w=8, min_shared=3, min_span=150)
    recall, _ = overlap_recall_precision(res.pairs, layout, min_overlap=500)
    assert recall > 0.9
    # Precision must be judged against the overlapper's own span threshold:
    # pairs with 150–500 bp true overlaps are correct detections.
    _, precision = overlap_recall_precision(res.pairs, layout,
                                            min_overlap=100)
    assert precision > 0.8


def test_minimap_like_times_recorded(clean_dataset):
    _genome, reads, _layout = clean_dataset
    res = run_minimap_like(reads)
    assert res.index_seconds > 0 and res.query_seconds > 0
    assert res.modeled_threads_time(32) < res.total_seconds()
