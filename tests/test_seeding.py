"""Pluggable seeding layer: scheme parity, determinism, and service guards.

The :mod:`repro.seqs.seeding` contract has three legs:

* **Full-k is a passthrough** — ``FullKScheme`` must reproduce
  ``read_kmers_batch`` byte-for-byte (the golden digests of
  ``test_golden_pipeline.py`` enforce the end-to-end version of this).
* **Sketches are pure per-read functions** — minimizer and syncmer seeds
  depend only on each read's bases, so any partition of a block (executor
  workers, strips, service batches) yields identical seeds, and a read and
  its reverse complement select the same canonical seeds (strand
  symmetry, including hash ties on homopolymers).
* **Schemes are session state** — the incremental service refuses deltas
  whose config resolves to a different scheme than the one the cached
  occurrence table was built with (HTTP 409 at the server), and
  ``recompute`` re-tags the state under the new scheme.

This file is also the tier-1 payload of the ``seed-minimizer`` /
``seed-syncmer`` CI legs (``REPRO_SEED_MODE``), so one test runs the full
pipeline with ``seed_mode="auto"`` and asserts the env-resolved mode took
effect end to end.
"""

import hashlib
import os
import pickle

import numpy as np
import pytest

from repro.core.memory import estimate_a_nnz
from repro.core.overlap import _dedup_second_seeds
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.semirings import (C_COUNT, C_NFIELDS, C_PA1, C_PA2, C_PB1,
                                  C_PB2, C_STRAND1, C_STRAND2)
from repro.seqs import (ErrorModel, GenomeSpec, ReadSet, ReadSimSpec,
                        simulate_reads)
from repro.seqs.dna import revcomp_codes
from repro.seqs.kmers import read_kmers_batch
from repro.seqs.minimizers import minimizers, minimizers_batch
from repro.seqs.seeding import (DEFAULT_SEED_W, SEED_MODE_ENV, SEED_MODES,
                                FullKScheme, MinimizerScheme, SyncmerScheme,
                                make_scheme, resolve_seed_mode)
from repro.service import AssemblyState, ServiceConfig, refresh

K = 17
W = 8

SCHEMES = [
    FullKScheme(K),
    MinimizerScheme(K, W),
    SyncmerScheme(K, W),
]


def _random_reads(rng, n_reads, max_len=120, min_len=1) -> ReadSet:
    lengths = rng.integers(min_len, max_len + 1, size=n_reads)
    seqs = [rng.integers(0, 4, size=int(L)).astype(np.uint8)
            for L in lengths]
    return ReadSet([f"r{i}" for i in range(n_reads)], seqs)


def _seed_digest(arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Resolver + config plumbing
# ---------------------------------------------------------------------------

def test_resolve_seed_mode_defaults(monkeypatch):
    monkeypatch.delenv(SEED_MODE_ENV, raising=False)
    assert resolve_seed_mode(None) == "full"
    assert resolve_seed_mode("auto") == "full"
    for mode in SEED_MODES:
        assert resolve_seed_mode(mode) == mode


def test_resolve_seed_mode_env(monkeypatch):
    monkeypatch.setenv(SEED_MODE_ENV, "minimizer")
    assert resolve_seed_mode("auto") == "minimizer"
    assert resolve_seed_mode(None) == "minimizer"
    # Explicit modes beat the environment.
    assert resolve_seed_mode("syncmer") == "syncmer"
    monkeypatch.setenv(SEED_MODE_ENV, "auto")
    assert resolve_seed_mode("auto") == "full"


def test_resolve_seed_mode_rejects_unknown():
    with pytest.raises(ValueError, match="seed mode"):
        resolve_seed_mode("minimiser")


def test_make_scheme_ids_and_validation():
    assert make_scheme("full", K, W).scheme_id == f"full:k={K}"
    assert make_scheme("minimizer", K, W).scheme_id == \
        f"minimizer:k={K},w={W}"
    s = make_scheme("syncmer", K, W)
    assert s.scheme_id == f"syncmer:k={K},s={K - W + 1}"
    with pytest.raises(ValueError):
        MinimizerScheme(K, 0)
    with pytest.raises(ValueError):
        SyncmerScheme(K, K + 1)


def test_schemes_pickle_roundtrip():
    for scheme in SCHEMES:
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone == scheme
        assert clone.scheme_id == scheme.scheme_id


def test_expected_seed_fraction_ordering():
    full, mini, sync = SCHEMES
    assert full.expected_seed_fraction == 1.0
    assert 0.0 < sync.expected_seed_fraction \
        < mini.expected_seed_fraction < 1.0
    lengths = np.array([100, 40, 3], dtype=np.int64)
    assert full.estimate_seed_count(lengths) == 84 + 24
    assert mini.estimate_seed_count(lengths) <= full.estimate_seed_count(
        lengths)


def test_estimate_a_nnz_density_model():
    lengths = np.array([100, 50, K - 1], dtype=np.int64)
    windows = (100 - K + 1) + (50 - K + 1)
    assert estimate_a_nnz(lengths, K) == windows
    assert estimate_a_nnz(lengths, K, seed_fraction=0.25) == \
        -(-windows // 4)
    assert estimate_a_nnz(lengths, K, seed_fraction=0.0) == 0


# ---------------------------------------------------------------------------
# Full-k passthrough + batched-minimizer parity
# ---------------------------------------------------------------------------

def test_fullk_block_is_read_kmers_batch():
    rng = np.random.default_rng(101)
    scheme = FullKScheme(K)
    for trial in range(10):
        reads = _random_reads(rng, int(rng.integers(1, 30)))
        got = scheme.seeds_of_block(*reads.soa())
        want = read_kmers_batch(*reads.soa(), K)
        for g, w_ in zip(got, want):
            np.testing.assert_array_equal(g, w_)


def test_minimizers_batch_matches_per_read():
    rng = np.random.default_rng(202)
    for trial in range(25):
        k = int(rng.integers(3, 21))
        w = int(rng.integers(1, 12))
        reads = _random_reads(rng, int(rng.integers(1, 25)), max_len=90)
        km, ridx, pos, _flip = minimizers_batch(*reads.soa(), k, w)
        exp_km, exp_ridx, exp_pos = [], [], []
        for i in range(len(reads)):
            kv, pv = minimizers(reads[i], k, w)
            exp_km.append(kv)
            exp_pos.append(pv)
            exp_ridx.append(np.full(kv.shape[0], i, dtype=np.int64))
        np.testing.assert_array_equal(km, np.concatenate(exp_km))
        np.testing.assert_array_equal(ridx, np.concatenate(exp_ridx))
        np.testing.assert_array_equal(pos, np.concatenate(exp_pos))


def test_seeds_of_read_matches_block():
    rng = np.random.default_rng(303)
    for scheme in SCHEMES:
        reads = _random_reads(rng, 20, max_len=100)
        keys, ridx, pos, flip = scheme.seeds_of_block(*reads.soa())
        for i in range(len(reads)):
            sel = ridx == i
            k_i, p_i, f_i = scheme.seeds_of_read(reads[i])
            np.testing.assert_array_equal(k_i, keys[sel])
            np.testing.assert_array_equal(p_i, pos[sel])
            np.testing.assert_array_equal(f_i, flip[sel])


def test_block_partition_independence():
    """Seeds are per-read functions: any block split concatenates back."""
    rng = np.random.default_rng(404)
    for scheme in SCHEMES:
        reads = _random_reads(rng, 23, max_len=100)
        whole = scheme.seeds_of_block(*reads.soa())
        cuts = sorted(rng.choice(len(reads), size=3, replace=False).tolist())
        bounds = [0, *cuts, len(reads)]
        parts = []
        for lo, hi in zip(bounds, bounds[1:]):
            keys, ridx, pos, flip = scheme.seeds_of_block(
                *reads.soa_block(lo, hi))
            parts.append((keys, ridx + lo, pos, flip))
        for got, want in zip((np.concatenate([p[i] for p in parts])
                              for i in range(4)), whole):
            np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# Strand symmetry (sketches must pick the same canonical seeds on either
# strand, including under hash ties)
# ---------------------------------------------------------------------------

def _strand_seed_multisets(scheme, codes):
    fwd = scheme.seeds_of_read(codes)
    rev = scheme.seeds_of_read(revcomp_codes(codes))
    k = scheme.k
    # A seed at position p on the forward read sits at L - k - p on the
    # reverse complement.
    mirror = codes.shape[0] - k - rev[1]
    fwd_set = sorted(zip(fwd[0].tolist(), fwd[1].tolist()))
    rev_set = sorted(zip(rev[0].tolist(), mirror.tolist()))
    return fwd_set, rev_set


@pytest.mark.parametrize("scheme", SCHEMES[1:],
                         ids=["minimizer", "syncmer"])
def test_sketch_strand_symmetry(scheme):
    rng = np.random.default_rng(505)
    for trial in range(40):
        codes = rng.integers(
            0, 4, size=int(rng.integers(K, 120))).astype(np.uint8)
        fwd_set, rev_set = _strand_seed_multisets(scheme, codes)
        assert fwd_set == rev_set


@pytest.mark.parametrize("scheme,positional",
                         [(SCHEMES[1], False), (SCHEMES[2], True)],
                         ids=["minimizer", "syncmer"])
def test_sketch_strand_symmetry_homopolymer_ties(scheme, positional):
    """All-equal hashes are the worst tie case.  Syncmer selection is
    value-based (a window keeps a k-mer when its end s-mer *attains* the
    window minimum), so even seed positions mirror exactly; minimizer
    argmin tie-breaking is direction-dependent, so only the selected key
    multiset is strand-stable under total ties."""
    for base in (0, 3):
        for length in (K, K + 3, K + W - 1, 60):
            codes = np.full(length, base, dtype=np.uint8)
            fwd_set, rev_set = _strand_seed_multisets(scheme, codes)
            if positional:
                assert fwd_set == rev_set
            else:
                assert sorted(k for k, _ in fwd_set) == \
                    sorted(k for k, _ in rev_set)
            assert fwd_set  # a homopolymer read still yields seeds


def test_sketch_densities_near_expectation():
    rng = np.random.default_rng(606)
    codes = rng.integers(0, 4, size=200_000).astype(np.uint8)
    reads = ReadSet(["g"], [codes])
    windows = codes.shape[0] - K + 1
    for scheme in SCHEMES[1:]:
        keys = scheme.seeds_of_block(*reads.soa())[0]
        measured = keys.shape[0] / windows
        expected = scheme.expected_seed_fraction
        assert abs(measured - expected) < 0.25 * expected


# ---------------------------------------------------------------------------
# Seed dedup on sparse positions
# ---------------------------------------------------------------------------

def _cvals(rows):
    out = np.full((len(rows), C_NFIELDS), -1, dtype=np.int64)
    out[:, C_COUNT] = 2
    for i, (pa1, pb1, s1, pa2, pb2, s2) in enumerate(rows):
        out[i, [C_PA1, C_PB1, C_STRAND1]] = (pa1, pb1, s1)
        out[i, [C_PA2, C_PB2, C_STRAND2]] = (pa2, pb2, s2)
    return out


def test_dedup_second_seeds_sparse_positions():
    """Sketched seeds land on arbitrary offsets; the dedup rules must key
    on values, not on dense-window assumptions."""
    b_len = np.array([500, 500, 500, 500], dtype=np.int64)
    cvals = _cvals([
        (37, 141, 0, 37, 141, 0),     # identical seeds -> redundant
        (37, 141, 0, 98, 202, 0),     # same diagonal (chain) -> redundant
        (37, 141, 0, 98, 210, 0),     # different diagonal -> kept
        (37, 141, 0, 98, 202, 1),     # different strand -> kept
    ])
    chain = _dedup_second_seeds(cvals, b_len, K, "chain")
    assert chain[0, C_PA2] == -1
    assert chain[1, C_PA2] == -1
    assert chain[2, C_PA2] == 98 and chain[3, C_PA2] == 98
    # X-drop may only drop the exact duplicate: extensions from different
    # positions on one diagonal can differ.
    xdrop = _dedup_second_seeds(cvals, b_len, K, "xdrop")
    assert xdrop[0, C_PA2] == -1
    assert xdrop[1, C_PA2] == 98


def test_dedup_second_seeds_flipped_diagonal():
    # Strand-1 seeds compare on the oriented diagonal pa - (b_len - k - pb):
    # pb2 chosen so both seeds share it.
    b_len = np.array([300], dtype=np.int64)
    pb1, pa1, pa2 = 40, 10, 60
    pb2 = pb1 - (pa2 - pa1)
    cvals = _cvals([(pa1, pb1, 1, pa2, pb2, 1)])
    chain = _dedup_second_seeds(cvals, b_len, K, "chain")
    assert chain[0, C_PA2] == -1


# ---------------------------------------------------------------------------
# Pipeline integration: auto resolution, full-mode identity, determinism
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def seeding_dataset():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=8_000, seed=31), depth=10,
                    mean_len=600, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=32))
    return reads


def _result_digest(res) -> str:
    h = hashlib.sha256()
    for a in (res.S.row, res.S.col, res.S.vals,
              res.R.row, res.R.col, res.R.vals):
        h.update(np.ascontiguousarray(a, dtype=np.int64).tobytes())
    h.update(f"{res.nnz_a}:{res.nnz_c}:{res.n_kmers}".encode())
    return h.hexdigest()


def test_pipeline_auto_follows_environment(seeding_dataset):
    """The CI seed-mode legs run exactly this: ``auto`` must resolve
    through ``REPRO_SEED_MODE`` and drive the whole pipeline."""
    expected = resolve_seed_mode("auto")
    res = run_pipeline(seeding_dataset,
                       PipelineConfig(k=K, nprocs=4, seed_mode="auto"))
    assert res.seed_mode == expected
    assert res.config.seed_w == DEFAULT_SEED_W
    assert res.nnz_a > 0 and res.nnz_c > 0 and res.nnz_s > 0
    if expected != "full":
        full = run_pipeline(seeding_dataset,
                            PipelineConfig(k=K, nprocs=4, seed_mode="full"))
        assert res.nnz_a < full.nnz_a


def test_pipeline_full_equals_auto_without_env(seeding_dataset,
                                               monkeypatch):
    monkeypatch.delenv(SEED_MODE_ENV, raising=False)
    auto = run_pipeline(seeding_dataset,
                        PipelineConfig(k=K, nprocs=4, seed_mode="auto"))
    full = run_pipeline(seeding_dataset,
                        PipelineConfig(k=K, nprocs=4, seed_mode="full"))
    assert auto.seed_mode == "full"
    assert _result_digest(auto) == _result_digest(full)


@pytest.mark.parametrize("mode", ["minimizer", "syncmer"])
def test_sketch_pipeline_deterministic_across_executors(seeding_dataset,
                                                        mode):
    digests = set()
    for executor, workers in (("serial", 1), ("thread", 3), ("process", 2)):
        res = run_pipeline(seeding_dataset, PipelineConfig(
            k=K, nprocs=4, seed_mode=mode, seed_w=W,
            executor=executor, workers=workers))
        assert res.seed_mode == mode
        digests.add(_result_digest(res))
    assert len(digests) == 1


# ---------------------------------------------------------------------------
# Service: scheme_id tagging and cross-scheme refusal
# ---------------------------------------------------------------------------

def _service_config(seed_mode: str) -> ServiceConfig:
    return ServiceConfig(pipeline=PipelineConfig(
        k=K, nprocs=4, kmer_upper=12, fuzz=60, seed_mode=seed_mode,
        seed_w=W))


def test_service_tags_and_refuses_cross_scheme(seeding_dataset):
    half = len(seeding_dataset) // 2
    first = seeding_dataset.subset(np.arange(half))
    second = seeding_dataset.subset(np.arange(half, len(seeding_dataset)))

    state = refresh(AssemblyState.initial(), first,
                    _service_config("minimizer"))
    assert state.scheme_id == f"minimizer:k={K},w={W}"

    # Same scheme: the incremental path accepts the delta.
    state2 = refresh(state, second, _service_config("minimizer"),
                     mode="incremental")
    assert state2.version == state.version + 1
    assert state2.scheme_id == state.scheme_id

    # Different scheme: incremental splice would mix seed streams.
    with pytest.raises(ValueError, match="cross-scheme"):
        refresh(state, second, _service_config("syncmer"),
                mode="incremental")
    with pytest.raises(ValueError, match="cross-scheme"):
        refresh(state, second, _service_config("full"), mode="incremental")

    # Recompute rebuilds from scratch and re-tags the session.
    rebuilt = refresh(state, second, _service_config("full"),
                      mode="recompute")
    assert rebuilt.scheme_id == f"full:k={K}"
    assert rebuilt.version == state.version + 1


def test_server_rejects_cross_scheme_with_409(seeding_dataset):
    import json
    import threading
    import urllib.error
    import urllib.request

    from repro.seqs.dna import decode
    from repro.service import AssemblyService, make_server

    service = AssemblyService(ServiceConfig(
        refresh_mode="incremental",
        pipeline=PipelineConfig(k=K, nprocs=4, kmer_upper=12, fuzz=60,
                                seed_mode="minimizer", seed_w=W)))
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"

    def post_batch(lo, hi):
        sub = seeding_dataset.subset(np.arange(lo, hi))
        payload = {"reads": [{"name": n, "seq": decode(s)}
                             for n, s in zip(sub.names, sub.seqs)]}
        req = urllib.request.Request(
            f"{url}/reads", data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    try:
        half = len(seeding_dataset) // 2
        status, body = post_batch(0, half)
        assert status == 200 and body["version"] == 1

        with urllib.request.urlopen(f"{url}/stats") as resp:
            stats = json.loads(resp.read())
        assert stats["scheme"] == f"minimizer:k={K},w={W}"

        # Flip the service's scheme under the live session: the next
        # incremental delta must be refused as a conflict, not a crash.
        service.config = ServiceConfig(
            refresh_mode="incremental",
            pipeline=PipelineConfig(k=K, nprocs=4, kmer_upper=12, fuzz=60,
                                    seed_mode="syncmer", seed_w=W))
        with pytest.raises(urllib.error.HTTPError) as err:
            post_batch(half, len(seeding_dataset))
        assert err.value.code == 409
        assert "cross-scheme" in json.loads(err.value.read())["error"]

        # The session is untouched by the refused ingest.
        with urllib.request.urlopen(f"{url}/version") as resp:
            version = json.loads(resp.read())
        assert version == {"version": 1, "n_reads": half}
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
