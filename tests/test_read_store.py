"""Out-of-core read store: mmap backend ≡ in-memory ReadSet, everywhere.

The contract: ``read_store="mmap"`` is a pure memory axis.  SoA views,
block slices, per-read access, pickling across process workers, strip
checkpointing, and the full pipeline must be byte-identical to the
in-memory backend — only the residency of the bases changes.
"""

import os
import pickle

import numpy as np
import pytest

from repro import PipelineConfig, run_pipeline
from repro.exec.executor import ProcessExecutor
from repro.seqs import (MmapReadStore, ReadSet, StoreMismatch,
                        content_digest, read_fasta, read_fasta_to_store,
                        resolve_read_store, resolve_store_dir, write_fasta)
from repro.seqs.dna import encode
from repro.seqs.read_store import READ_STORE_ENV, STORE_DIR_ENV


def _toy_reads():
    return ReadSet(["r0", "r1", "r2", "r3"],
                   [encode("ACGTACGTAATTGGCC"), encode("TTTTGGGGCCCCAAAA"),
                    encode("ACGT"), encode("GGGGGGGGGGGGGGGGGGGGGGGG")])


@pytest.fixture()
def stored(tmp_path):
    inmem = _toy_reads()
    return inmem, inmem.to_store(str(tmp_path / "store"))


# -- equivalence with the in-memory backend ---------------------------------

def test_store_soa_matches_inmem(stored):
    inmem, rs = stored
    for a, b in zip(inmem.soa(), rs.soa()):
        assert np.array_equal(a, b)
    assert rs.names == inmem.names
    assert len(rs) == len(inmem)
    assert rs.total_bases() == inmem.total_bases()


def test_store_soa_block_rebases_like_inmem(stored):
    inmem, rs = stored
    for lo, hi in ((0, 4), (1, 3), (2, 2), (0, 1), (3, 4)):
        got = rs.soa_block(lo, hi)
        want = inmem.soa_block(lo, hi)
        for a, b in zip(got, want):
            assert np.array_equal(a, b)
        if hi > lo:
            assert got[1][0] == 0  # offsets rebased to the block


def test_store_per_read_views(stored):
    inmem, rs = stored
    assert len(rs.seqs) == len(inmem.seqs)
    for a, b in zip(rs.seqs, inmem.seqs):
        assert np.array_equal(np.asarray(a), b)
    assert np.array_equal(np.asarray(rs.seqs[2]), inmem.seqs[2])


def test_store_fingerprint_matches_inmem(stored):
    inmem, rs = stored
    assert rs.content_fingerprint() == inmem.content_fingerprint()
    codes, _offsets, lengths = inmem.soa()
    assert rs.store.fingerprint == content_digest(codes, lengths)


def test_empty_store_roundtrip(tmp_path):
    empty = ReadSet([], [])
    rs = empty.to_store(str(tmp_path / "empty"))
    assert len(rs) == 0
    codes, offsets, lengths = rs.soa()
    assert codes.shape == (0,) and offsets.shape == (0,)
    rs.store.verify()


def test_store_backed_readset_refuses_extend(stored):
    _inmem, rs = stored
    with pytest.raises(ValueError, match="sealed"):
        rs.extend(["x"], [np.zeros(3, dtype=np.uint8)])


def test_read_fasta_to_store_matches_read_fasta(tmp_path):
    inmem = _toy_reads()
    fa = tmp_path / "reads.fa"
    write_fasta(fa, inmem, width=7)
    direct = read_fasta(fa)
    stored = read_fasta_to_store(fa, str(tmp_path / "store"))
    assert stored.names == direct.names
    for a, b in zip(stored.soa(), direct.soa()):
        assert np.array_equal(a, b)
    assert stored.content_fingerprint() == direct.content_fingerprint()


# -- pickling / process fan-out ----------------------------------------------

def _block_checksum(ctx, span):
    reads = ctx
    lo, hi = span
    codes, offsets, lengths = reads.soa_block(lo, hi)
    return int(codes.sum()) + int(lengths.sum())


def test_store_pickle_roundtrip(stored):
    inmem, rs = stored
    back = pickle.loads(pickle.dumps(rs))
    assert back.names == inmem.names
    for a, b in zip(back.soa(), inmem.soa()):
        assert np.array_equal(a, b)
    # The pickle payload carries the path, not the bases.
    assert len(pickle.dumps(rs.store)) < 4096


def test_store_pickles_across_process_workers(stored):
    inmem, rs = stored
    spans = [(0, 2), (2, 4)]
    with ProcessExecutor(2) as ex:
        got = ex.run(_block_checksum, spans, context=rs)
        want = [_block_checksum(inmem, s) for s in spans]
    assert got == want


def test_stale_store_unpickle_refused(tmp_path):
    rs = _toy_reads().to_store(str(tmp_path / "store"))
    payload = pickle.dumps(rs.store)
    # Rewrite the directory with different content after pickling.
    other = ReadSet(["z"], [encode("TTTT")])
    MmapReadStore.create(str(tmp_path / "store"), other.seqs)
    with pytest.raises(StoreMismatch, match="rewritten"):
        pickle.loads(payload)


def test_verify_detects_tampering(tmp_path):
    rs = _toy_reads().to_store(str(tmp_path / "store"))
    rs.store.verify()  # pristine store passes
    path = os.path.join(rs.store.directory, "codes.bin")
    data = bytearray(open(path, "rb").read())
    data[0] ^= 1
    with open(path, "wb") as fh:
        fh.write(data)
    with pytest.raises(StoreMismatch, match="content hash"):
        MmapReadStore(rs.store.directory).verify()


def test_torn_store_refused(tmp_path):
    rs = _toy_reads().to_store(str(tmp_path / "store"))
    path = os.path.join(rs.store.directory, "codes.bin")
    with open(path, "ab") as fh:
        fh.write(b"\0")  # size no longer matches the manifest
    with pytest.raises(StoreMismatch, match="stale or torn"):
        MmapReadStore(rs.store.directory)
    with pytest.raises(StoreMismatch, match="missing"):
        MmapReadStore(str(tmp_path / "nowhere"))


# -- resolution ---------------------------------------------------------------

def test_resolve_read_store_defaults(monkeypatch):
    monkeypatch.delenv(READ_STORE_ENV, raising=False)
    assert resolve_read_store(None) == "inmem"
    assert resolve_read_store("auto") == "inmem"
    assert resolve_read_store("mmap") == "mmap"
    assert resolve_read_store("inmem") == "inmem"


def test_resolve_read_store_env(monkeypatch):
    monkeypatch.setenv(READ_STORE_ENV, "mmap")
    assert resolve_read_store("auto") == "mmap"
    # Explicit names beat the environment.
    assert resolve_read_store("inmem") == "inmem"
    monkeypatch.setenv(READ_STORE_ENV, "bogus")
    with pytest.raises(ValueError):
        resolve_read_store("auto")


def test_resolve_store_dir(monkeypatch, tmp_path):
    monkeypatch.delenv(STORE_DIR_ENV, raising=False)
    assert resolve_store_dir(None) is None
    assert resolve_store_dir(str(tmp_path)) == str(tmp_path)
    monkeypatch.setenv(STORE_DIR_ENV, "/some/dir")
    assert resolve_store_dir(None) == "/some/dir"
    assert resolve_store_dir(str(tmp_path)) == str(tmp_path)


# -- pipeline parity ----------------------------------------------------------

def _cfg(**kw):
    base = dict(k=17, nprocs=4, align_mode="chain", depth_hint=12,
                error_hint=0.0, fuzz=20)
    base.update(kw)
    return PipelineConfig(**base)


@pytest.fixture(scope="module")
def inmem_reference(clean_dataset):
    _genome, reads, _layout = clean_dataset
    return run_pipeline(reads, _cfg())


def _assert_identical(res, ref):
    assert np.array_equal(res.S.row, ref.S.row)
    assert np.array_equal(res.S.col, ref.S.col)
    assert np.array_equal(res.S.vals, ref.S.vals)
    assert res.n_kmers == ref.n_kmers
    assert res.tracker.summary() == ref.tracker.summary()


@pytest.mark.parametrize("executor,workers",
                         [("serial", 1), ("process", 2)])
def test_pipeline_mmap_store_byte_identical(clean_dataset, inmem_reference,
                                            tmp_path, executor, workers):
    _genome, reads, _layout = clean_dataset
    res = run_pipeline(reads, _cfg(read_store="mmap",
                                   store_dir=str(tmp_path),
                                   executor=executor, workers=workers))
    assert res.read_store == "mmap"
    _assert_identical(res, inmem_reference)
    # The store was built where we asked.
    assert os.path.exists(tmp_path / "reads" / "store.json")


def test_pipeline_mmap_with_memory_budget(clean_dataset, inmem_reference):
    """mmap store + budget (spillable tables + strip-mining) together
    still reproduce the unconstrained run byte-for-byte."""
    _genome, reads, _layout = clean_dataset
    res = run_pipeline(reads, _cfg(read_store="mmap",
                                   overlap_mode="blocked",
                                   memory_budget=1 << 20))
    assert res.read_store == "mmap"
    assert np.array_equal(res.S.vals, inmem_reference.S.vals)
    assert np.array_equal(res.S.row, inmem_reference.S.row)
    assert res.n_kmers == inmem_reference.n_kmers


def test_pipeline_auto_uses_env(clean_dataset, monkeypatch, tmp_path):
    _genome, reads, _layout = clean_dataset
    monkeypatch.setenv(READ_STORE_ENV, "mmap")
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
    res = run_pipeline(reads, _cfg())
    assert res.read_store == "mmap"
    assert os.path.exists(tmp_path / "reads" / "store.json")
