"""Tests for the element-wise / row-wise distributed kernels."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dsparse.coomat import CooMat
from repro.dsparse.distmat import DistMat
from repro.dsparse.elementwise import (apply_entries, apply_vector,
                                       dimapply_rows, ewise_compare_mask,
                                       prune_entries, prune_mask, reduce_rows)
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm


def _dist_from_dense(dense, grid):
    coo = sp.coo_matrix(dense)
    return DistMat.from_coo(dense.shape, grid, coo.row, coo.col, coo.data)


@pytest.fixture
def sample():
    grid = ProcessGrid2D(4)
    dense = np.array([
        [0, 5, 2, 0],
        [1, 0, 0, 7],
        [0, 0, 3, 0],
        [4, 0, 0, 9],
    ])
    return _dist_from_dense(dense, grid), dense, grid


def test_reduce_rows_max(sample):
    D, dense, grid = sample
    v = reduce_rows(D, 0, np.maximum, 0)
    assert v.tolist() == [5, 7, 3, 9]


def test_reduce_rows_with_comm_charges(sample):
    D, dense, grid = sample
    tracker = CommTracker(4)
    comm = SimComm(4, tracker)
    v = reduce_rows(D, 0, np.maximum, 0, comm=comm, stage="red")
    assert v.tolist() == [5, 7, 3, 9]
    assert tracker.records["red"].total_messages > 0


def test_reduce_rows_identity_for_empty_rows():
    grid = ProcessGrid2D(1)
    D = _dist_from_dense(np.array([[0, 1], [0, 0]]), grid)
    v = reduce_rows(D, 0, np.maximum, -99)
    assert v.tolist() == [1, -99]


def test_apply_vector():
    v = np.array([1, 2, 3])
    assert apply_vector(v, lambda x: x + 10).tolist() == [11, 12, 13]


def test_dimapply_rows(sample):
    D, dense, grid = sample
    v = np.array([10, 20, 30, 40], dtype=np.int64)
    M = dimapply_rows(D, v)
    G = M.to_global()
    for r, val in zip(G.row, G.vals[:, 0]):
        assert val == v[r]
    # Pattern unchanged.
    assert G.nnz == (dense != 0).sum()


def test_ewise_compare_mask_intersection_only(sample):
    D, dense, grid = sample
    v = np.array([10, 20, 30, 40], dtype=np.int64)
    M = dimapply_rows(D, v)
    # N: same pattern as D on a subset (rows 0 and 2 entries only).
    sub = dense.copy()
    sub[1] = 0
    sub[3] = 0
    N = _dist_from_dense(sub, grid)
    I = ewise_compare_mask(M, N, lambda mv, nv: mv[:, 0] >= nv[:, 0])
    G = I.to_global()
    got = set(zip(G.row.tolist(), G.col.tolist()))
    assert got == {(0, 1), (0, 2), (2, 2)}


def test_prune_mask(sample):
    D, dense, grid = sample
    mask_dense = np.zeros_like(dense)
    mask_dense[0, 1] = 1
    mask_dense[3, 3] = 1
    I = _dist_from_dense(mask_dense, grid)
    R = prune_mask(D, I)
    G = R.to_global()
    got = set(zip(G.row.tolist(), G.col.tolist()))
    assert (0, 1) not in got and (3, 3) not in got
    assert (0, 2) in got and (1, 0) in got
    assert R.nnz() == D.nnz() - 2


def test_prune_mask_shape_mismatch(sample):
    D, dense, grid = sample
    other = DistMat.empty((5, 5), ProcessGrid2D(4))
    with pytest.raises(ValueError):
        prune_mask(D, other)


def test_apply_entries(sample):
    D, dense, grid = sample
    doubled = apply_entries(D, lambda v: v * 2)
    assert np.array_equal(doubled.to_global().vals,
                          D.to_global().vals * 2)


def test_prune_entries(sample):
    D, dense, grid = sample
    kept = prune_entries(D, lambda v: v[:, 0] > 4)
    G = kept.to_global()
    assert sorted(G.vals[:, 0].tolist()) == [5, 7, 9]
