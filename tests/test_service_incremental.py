"""Incremental-refresh equivalence: delta updates vs from-scratch runs.

The service's contract is byte-identity: after any sequence of ingested
batches, the state produced by ``refresh_mode="incremental"`` must match a
from-scratch :func:`~repro.core.pipeline.run_pipeline` on the concatenated
reads — same S, same R, same contig layout, same sparsity counts, and the
same per-stage communication records — for every executor.  The dataset
uses a deliberately low ``kmer_upper`` so that later batches push k-mer
multiplicities *past* the reliable ceiling: the hard case where columns
leave the reliable set and previously-aligned pairs must be re-examined
(guarded by an explicit churn assertion below).
"""

import hashlib

import numpy as np
import pytest

from repro.core.contigs import extract_contigs
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.service import (REFRESH_MODE_ENV, AssemblyState, ServiceConfig,
                           refresh, resolve_refresh_mode)

K = 17
NPROCS = 4
#: Low ceiling on purpose: as coverage accumulates across batches, k-mer
#: counts cross it and reliable columns get *removed* between versions.
KMER_UPPER = 12
FUZZ = 60

EXECUTORS = [("serial", 1), ("thread", 3), ("process", 2)]

#: Uneven batch boundaries (as fractions of the read count): a bulk load,
#: a mid-sized follow-up, and a small trailing batch.
SPLIT_FRACTIONS = (0.0, 0.4, 0.8, 1.0)


@pytest.fixture(scope="module")
def service_reads():
    """Fixed-seed error-free dataset (PCG64 streams are version-stable)."""
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=9_000, seed=21), depth=10,
                    mean_len=650, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=22))
    return reads


def _sha(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a, dtype=np.int64)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _sha_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _contig_digest(contigs) -> str:
    canon = sorted((tuple(c.reads), tuple(c.orientations)) for c in contigs)
    return _sha_text(repr(canon))


def _tracker_digest(tracker) -> str:
    summary = tracker.summary()
    lines = [f"{stage}:{rec['total_bytes']:.0f}:{rec['max_bytes']:.0f}:"
             f"{rec['total_messages']}:{rec['max_messages']}"
             for stage, rec in sorted(summary.items())]
    return _sha_text("|".join(lines))


def _pipeline_config(executor="serial", workers=1) -> PipelineConfig:
    return PipelineConfig(k=K, nprocs=NPROCS, fuzz=FUZZ,
                          kmer_upper=KMER_UPPER,
                          overlap_mode="monolithic",
                          executor=executor, workers=workers)


def _splits(n: int) -> list[int]:
    return [int(round(f * n)) for f in SPLIT_FRACTIONS]


def _scratch_digests(result) -> dict:
    return {
        "S": _sha(result.S.row, result.S.col, result.S.vals),
        "R": _sha(result.R.row, result.R.col, result.R.vals),
        "contigs": _contig_digest(extract_contigs(result.string_graph)),
        "counts": (result.n_reads, result.n_kmers, result.nnz_a,
                   result.nnz_c, result.nnz_r, result.nnz_s,
                   result.tr_rounds),
        "tracker": _tracker_digest(result.tracker),
    }


def _state_digests(state: AssemblyState) -> dict:
    c = state.counts
    return {
        "S": _sha(state.S.row, state.S.col, state.S.vals),
        "R": _sha(state.R.row, state.R.col, state.R.vals),
        "contigs": _contig_digest(state.contigs),
        "counts": (c["n_reads"], c["n_kmers"], c["nnz_a"], c["nnz_c"],
                   c["nnz_r"], c["nnz_s"], c["tr_rounds"]),
        "tracker": _tracker_digest(state.tracker),
    }


@pytest.fixture(scope="module")
def scratch_refs(service_reads):
    """From-scratch digests at every batch boundary (the oracle runs)."""
    splits = _splits(len(service_reads))
    refs = []
    for hi in splits[1:]:
        prefix = service_reads.subset(np.arange(hi))
        refs.append(_scratch_digests(run_pipeline(prefix,
                                                  _pipeline_config())))
    return refs


def _run_batches(reads, config, mode=None) -> list[AssemblyState]:
    splits = _splits(len(reads))
    state = AssemblyState.initial()
    states = []
    for lo, hi in zip(splits[:-1], splits[1:]):
        batch = reads.subset(np.arange(lo, hi))
        state = refresh(state, batch, config, mode=mode)
        states.append(state)
    return states


@pytest.mark.parametrize("executor,workers", EXECUTORS)
def test_incremental_matches_scratch(service_reads, scratch_refs, executor,
                                     workers):
    """Every version's S, R, contigs, counts, and comm records match the
    from-scratch pipeline on the concatenated prefix — for every executor."""
    config = ServiceConfig(refresh_mode="incremental",
                           pipeline=_pipeline_config(executor, workers))
    states = _run_batches(service_reads, config)
    assert [s.version for s in states] == [1, 2, 3]
    assert states[0].refresh_mode == "recompute"  # bootstrap
    assert all(s.refresh_mode == "incremental" for s in states[1:])
    for state, ref in zip(states, scratch_refs):
        assert _state_digests(state) == ref


def test_recompute_mode_matches_incremental(service_reads, scratch_refs):
    """The oracle engine produces the identical versioned states."""
    config = ServiceConfig(refresh_mode="recompute",
                           pipeline=_pipeline_config())
    states = _run_batches(service_reads, config)
    assert all(s.refresh_mode == "recompute" for s in states)
    for state, ref in zip(states, scratch_refs):
        assert _state_digests(state) == ref


def test_reliability_churn_actually_exercised(service_reads):
    """The dataset must remove reliable columns between versions — else the
    suite isn't covering the admission-churn path (P2) at all."""
    config = ServiceConfig(refresh_mode="incremental",
                           pipeline=_pipeline_config())
    states = _run_batches(service_reads, config)
    removed_any = False
    for prev, cur in zip(states[:-1], states[1:]):
        removed = prev.table.kmers[cur.table.lookup(prev.table.kmers) < 0]
        removed_any = removed_any or removed.shape[0] > 0
    assert removed_any, (
        "no reliable k-mer ever crossed the upper bound; lower KMER_UPPER "
        "so the removed-column delta path is actually tested")


def test_empty_batch_bumps_version_only(service_reads):
    """An empty batch is a no-op refresh: new version, identical products."""
    config = ServiceConfig(refresh_mode="incremental",
                           pipeline=_pipeline_config())
    state = refresh(AssemblyState.initial(),
                    service_reads.subset(np.arange(40)), config)
    bumped = refresh(state, service_reads.subset(np.arange(0)), config)
    assert bumped.version == state.version + 1
    assert _state_digests(bumped) == _state_digests(state)


def test_refresh_mode_resolution(monkeypatch):
    monkeypatch.delenv(REFRESH_MODE_ENV, raising=False)
    assert resolve_refresh_mode() == "incremental"
    assert resolve_refresh_mode("auto") == "incremental"
    assert resolve_refresh_mode("recompute") == "recompute"
    monkeypatch.setenv(REFRESH_MODE_ENV, "recompute")
    assert resolve_refresh_mode("auto") == "recompute"
    assert resolve_refresh_mode("incremental") == "incremental"
    with pytest.raises(ValueError, match="unknown refresh mode"):
        resolve_refresh_mode("eager")
