"""Tests for the distributed transitive reduction (Algorithm 2).

Correctness is pinned three ways:

* hand-built graphs with known transitive edges;
* equality with Myers' sequential reduction on pipeline-produced graphs
  (clean and noisy);
* equality with the brute-force two-hop enumeration, per round.
"""

import numpy as np
import pytest

from repro.baselines.myers import myers_transitive_reduction
from repro.core.string_graph import StringGraph
from repro.core.transitive_reduction import transitive_reduction
from repro.dsparse.distmat import DistMat
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm

from overlap_helpers import build_overlap_graph


def _to_dist(graph: StringGraph, P: int) -> tuple[DistMat, SimComm]:
    grid = ProcessGrid2D(P)
    comm = SimComm(P, CommTracker(P))
    mat = graph.to_coomat()
    D = DistMat.from_coo(mat.shape, grid, mat.row, mat.col, mat.vals)
    return D, comm


def _chain_with_transitive():
    src = [0, 1, 1, 2, 0, 2]
    dst = [1, 0, 2, 1, 2, 0]
    suffix = [4, 6, 3, 5, 7, 11]
    end_src = [1, 0, 1, 0, 1, 0]
    end_dst = [0, 1, 0, 1, 0, 1]
    return StringGraph(3, np.array(src), np.array(dst), np.array(suffix),
                       np.array(end_src), np.array(end_dst))


@pytest.mark.parametrize("P", [1, 4])
def test_removes_transitive_edge_in_chain(P):
    g = _chain_with_transitive()
    D, comm = _to_dist(g, P)
    res = transitive_reduction(D, comm, fuzz=0)
    out = StringGraph.from_coomat(res.S.to_global())
    assert (0, 2) not in out.edge_set()
    assert (2, 0) not in out.edge_set()
    assert (0, 1) in out.edge_set() and (1, 2) in out.edge_set()
    assert res.removed == 2


def test_end_mismatch_protects_edge():
    g = _chain_with_transitive()
    idx = int(np.flatnonzero((g.src == 0) & (g.dst == 2))[0])
    g.end_src[idx] = 0  # direct edge's geometry no longer matches the path
    D, comm = _to_dist(g, 1)
    res = transitive_reduction(D, comm, fuzz=0)
    out = StringGraph.from_coomat(res.S.to_global())
    assert (0, 2) in out.edge_set()


def test_invalid_middle_walk_protects_edge():
    g = _chain_with_transitive()
    # Make both edges attach to the same end of read 1: path 0->1->2 is no
    # longer a valid walk, so 0->2 must survive.
    e12 = int(np.flatnonzero((g.src == 1) & (g.dst == 2))[0])
    e01 = int(np.flatnonzero((g.src == 0) & (g.dst == 1))[0])
    g.end_src[e12] = g.end_dst[e01]
    D, comm = _to_dist(g, 1)
    res = transitive_reduction(D, comm, fuzz=0)
    out = StringGraph.from_coomat(res.S.to_global())
    assert (0, 2) in out.edge_set()


def test_multi_hop_needs_multiple_rounds():
    """A 5-chain with a 0->4 long edge: removing it requires the
    intermediate transitive edges to be handled across rounds (the paper's
    'several rounds' observation)."""
    # Chain 0-1-2-3-4 plus skip edges (0,2),(0,3),(0,4) and reverses.
    edges = []
    for i in range(4):
        edges.append((i, i + 1, 10))
        edges.append((i + 1, i, 10))
    for j, s in [(2, 20), (3, 30), (4, 40)]:
        edges.append((0, j, s))
        edges.append((j, 0, 10))
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    suf = np.array([e[2] for e in edges])
    # Collinear forward reads: ends E->B in ascending direction.
    end_src = np.where(src < dst, 1, 0)
    end_dst = np.where(src < dst, 0, 1)
    g = StringGraph(5, src, dst, suf, end_src, end_dst)
    D, comm = _to_dist(g, 1)
    res = transitive_reduction(D, comm, fuzz=0)
    out = StringGraph.from_coomat(res.S.to_global())
    for j in (2, 3, 4):
        assert (0, j) not in out.edge_set()
    assert res.rounds >= 2


@pytest.mark.parametrize("P", [1, 4])
def test_matches_myers_on_clean_pipeline_graph(clean_overlap_graph, P):
    g = clean_overlap_graph
    D, comm = _to_dist(g, P)
    res = transitive_reduction(D, comm, fuzz=20)
    ours = StringGraph.from_coomat(res.S.to_global()).edge_set()
    myers = myers_transitive_reduction(g, fuzz=20).edge_set()
    assert ours == myers


def test_matches_myers_on_noisy_pipeline_graph(noisy_overlap_graph):
    g = noisy_overlap_graph
    D, comm = _to_dist(g, 4)
    res = transitive_reduction(D, comm, fuzz=150)
    ours = StringGraph.from_coomat(res.S.to_global()).edge_set()
    myers = myers_transitive_reduction(g, fuzz=150).edge_set()
    assert ours == myers


def test_single_round_matches_bruteforce(clean_overlap_graph):
    """One loop iteration removes exactly the brute-force two-hop set."""
    g = clean_overlap_graph
    D, comm = _to_dist(g, 1)
    res = transitive_reduction(D, comm, fuzz=20, max_rounds=1)
    out = StringGraph.from_coomat(res.S.to_global()).edge_set()
    expected = g.edge_set() - g.transitive_edges_bruteforce(fuzz=20,
                                                            use_rowmax=True)
    assert out == expected


def test_p_invariance(clean_overlap_graph):
    """The reduction result is independent of the process grid size."""
    g = clean_overlap_graph
    results = []
    for P in (1, 4, 9):
        D, comm = _to_dist(g, P)
        res = transitive_reduction(D, comm, fuzz=20)
        results.append(StringGraph.from_coomat(res.S.to_global()).edge_set())
    assert results[0] == results[1] == results[2]


def test_empty_graph():
    g = StringGraph(4, np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty(0, np.int64))
    D, comm = _to_dist(g, 1)
    res = transitive_reduction(D, comm)
    assert res.S.nnz() == 0 and res.removed == 0


def test_charges_communication():
    g = _chain_with_transitive()
    D, comm = _to_dist(g, 4)
    transitive_reduction(D, comm, fuzz=0)
    assert comm.tracker.records["TrReduction"].total_messages > 0
