"""Tests for strip-mined overlap detection (the future-work memory mode)."""

import numpy as np
import pytest

from repro.core.blocked import candidate_overlaps_blocked
from repro.core.overlap import align_candidates, build_a_matrix, \
    candidate_overlaps
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.kmer_counter import count_kmers


def _setup(reads, P=1):
    comm = SimComm(P, CommTracker(P))
    timer = StageTimer()
    grid = ProcessGrid2D(P)
    table = count_kmers(reads, 17, comm, timer, upper=40)
    A = build_a_matrix(reads, table, grid, comm, timer)
    return A, comm, timer


@pytest.mark.parametrize("P,strips", [(1, 3), (4, 2), (4, 5)])
def test_blocked_matches_monolithic(clean_dataset, P, strips):
    """The strip-mined path must produce a bit-identical R."""
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads, P)
    C = candidate_overlaps(A, comm, timer)
    R_mono = align_candidates(C, reads, 17, comm, timer, mode="chain",
                              fuzz=20).to_global()
    res = candidate_overlaps_blocked(A, reads, 17, comm, strips, timer,
                                     mode="chain", fuzz=20)
    R_blk = res.R.to_global()
    assert np.array_equal(R_blk.row, R_mono.row)
    assert np.array_equal(R_blk.col, R_mono.col)
    assert np.array_equal(R_blk.vals, R_mono.vals)


def test_blocked_counts_match_monolithic(clean_dataset):
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    C = candidate_overlaps(A, comm, timer)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 4, timer,
                                     mode="chain", fuzz=20)
    assert res.nnz_c == C.nnz()
    assert res.n_strips == 4


def test_blocked_reduces_peak_memory(clean_dataset):
    """More strips => smaller candidate-matrix high-water mark."""
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    res1 = candidate_overlaps_blocked(A, reads, 17, comm, 1, timer,
                                      mode="chain", fuzz=20)
    res8 = candidate_overlaps_blocked(A, reads, 17, comm, 8, timer,
                                      mode="chain", fuzz=20)
    assert res8.peak_strip_nnz < res1.peak_strip_nnz
    # Roughly proportional to the strip count (within 3x slack for skew).
    assert res8.peak_strip_nnz < res1.peak_strip_nnz / 8 * 3


def test_blocked_single_strip_equals_candidate_overlaps(clean_dataset):
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 1, timer,
                                     mode="chain", fuzz=20)
    assert res.peak_strip_nnz == res.nnz_c


def test_blocked_more_strips_than_reads_ok():
    """Degenerate: empty strips are skipped without error."""
    from repro.seqs.dna import encode
    from repro.seqs.fasta import ReadSet
    rng = np.random.default_rng(0)
    base = rng.integers(0, 4, 400).astype(np.uint8)
    reads = ReadSet(["a", "b"], [base[:300].copy(), base[100:].copy()])
    A, comm, timer = _setup(reads)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 10, timer,
                                     mode="chain", fuzz=20)
    assert res.R.shape == (2, 2)
