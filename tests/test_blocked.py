"""Tests for strip-mined overlap detection (the future-work memory mode)."""

import numpy as np
import pytest

from repro.core.blocked import candidate_overlaps_blocked
from repro.core.memory import coo_nbytes
from repro.core.overlap import AlignmentFilter, align_candidates, \
    build_a_matrix, candidate_overlaps
from repro.core.semirings import R_NFIELDS
from repro.core.transitive_reduction import transitive_reduction
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.kmer_counter import count_kmers


def _setup(reads, P=1):
    comm = SimComm(P, CommTracker(P))
    timer = StageTimer()
    grid = ProcessGrid2D(P)
    table = count_kmers(reads, 17, comm, timer, upper=40)
    A = build_a_matrix(reads, table, grid, comm, timer)
    return A, comm, timer


@pytest.mark.parametrize("P,strips", [(1, 3), (4, 2), (4, 5)])
def test_blocked_matches_monolithic(clean_dataset, P, strips):
    """The strip-mined path must produce a bit-identical R."""
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads, P)
    C = candidate_overlaps(A, comm, timer)
    R_mono = align_candidates(C, reads, 17, comm, timer, mode="chain",
                              fuzz=20).to_global()
    res = candidate_overlaps_blocked(A, reads, 17, comm, strips, timer,
                                     mode="chain", fuzz=20)
    R_blk = res.R.to_global()
    assert np.array_equal(R_blk.row, R_mono.row)
    assert np.array_equal(R_blk.col, R_mono.col)
    assert np.array_equal(R_blk.vals, R_mono.vals)


def test_blocked_counts_match_monolithic(clean_dataset):
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    C = candidate_overlaps(A, comm, timer)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 4, timer,
                                     mode="chain", fuzz=20)
    assert res.nnz_c == C.nnz()
    assert res.n_strips == 4


def test_blocked_reduces_peak_memory(clean_dataset):
    """More strips => smaller candidate-matrix high-water mark."""
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    res1 = candidate_overlaps_blocked(A, reads, 17, comm, 1, timer,
                                      mode="chain", fuzz=20)
    res8 = candidate_overlaps_blocked(A, reads, 17, comm, 8, timer,
                                      mode="chain", fuzz=20)
    assert res8.peak_strip_nnz < res1.peak_strip_nnz
    # Roughly proportional to the strip count (within 3x slack for skew).
    assert res8.peak_strip_nnz < res1.peak_strip_nnz / 8 * 3


def test_blocked_single_strip_equals_candidate_overlaps(clean_dataset):
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 1, timer,
                                     mode="chain", fuzz=20)
    assert res.peak_strip_nnz == res.nnz_c


def test_blocked_records_strip_peak_bytes(clean_dataset):
    """The timer's SpGEMM high-water mark is the largest live strip."""
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    t1, t4 = StageTimer(), StageTimer()
    res1 = candidate_overlaps_blocked(A, reads, 17, comm, 1, t1,
                                      mode="chain", fuzz=20)
    res4 = candidate_overlaps_blocked(A, reads, 17, comm, 4, t4,
                                      mode="chain", fuzz=20)
    assert res1.peak_strip_bytes == t1.peak_bytes()["SpGEMM"]
    assert res4.peak_strip_bytes == t4.peak_bytes()["SpGEMM"]
    # Four strips cut the recorded live-bytes peak by ~4 (3x slack for skew).
    assert res4.peak_strip_bytes < res1.peak_strip_bytes / 4 * 3
    # The recorded peak covers the pre-prune expansion, so it is at least
    # the post-prune strip payload.
    assert res4.peak_strip_bytes >= coo_nbytes(res4.peak_strip_nnz, 7)


def test_blocked_empty_r_keeps_semiring_field_count(clean_dataset):
    """Zero surviving overlaps must still yield an R_NFIELDS-field R.

    Regression: the empty-R branch used to hardcode ``np.empty((0, 4))``,
    silently desyncing from the R semiring layout if a field were added.
    A filter nothing can pass forces every strip (and the monolithic
    aligner) to produce an empty R.
    """
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads)
    impossible = AlignmentFilter(min_overlap=10**9)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 3, timer,
                                     mode="chain", fuzz=20, filt=impossible)
    assert res.R.nnz() == 0
    assert res.nnz_c > 0                      # candidates existed...
    assert res.R.nfields == R_NFIELDS         # ...but R stayed well-typed
    g = res.R.to_global()
    assert g.vals.shape == (0, R_NFIELDS)
    # The empty R must remain consumable downstream.
    tr = transitive_reduction(res.R, comm, timer, fuzz=20)
    assert tr.S.nnz() == 0

    # Same guarantee on the monolithic path's empty branch.
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain", fuzz=20,
                         filt=impossible)
    assert R.nnz() == 0
    assert R.to_global().vals.shape == (0, R_NFIELDS)


@pytest.mark.parametrize("executor,workers", [("thread", 2), ("process", 2)])
def test_blocked_parallel_strips_identical(clean_dataset, executor, workers):
    """Strips on a pool: R, tracker records, and peaks match serial."""
    from repro.exec import get_executor
    _genome, reads, _layout = clean_dataset
    A, comm, timer = _setup(reads, P=4)
    res_ref = candidate_overlaps_blocked(A, reads, 17, comm, 4, timer,
                                         mode="chain", fuzz=20)
    ref_tracker = CommTracker(4)
    comm_ref = SimComm(4, ref_tracker)
    timer_ref = StageTimer()
    res_serial = candidate_overlaps_blocked(A, reads, 17, comm_ref, 4,
                                            timer_ref, mode="chain", fuzz=20)
    par_tracker = CommTracker(4)
    comm_par = SimComm(4, par_tracker)
    timer_par = StageTimer()
    with get_executor(executor, workers) as ex:
        res_par = candidate_overlaps_blocked(A, reads, 17, comm_par, 4,
                                             timer_par, mode="chain",
                                             fuzz=20, executor=ex)
    ref, par = res_serial.R.to_global(), res_par.R.to_global()
    assert np.array_equal(par.row, ref.row)
    assert np.array_equal(par.col, ref.col)
    assert np.array_equal(par.vals, ref.vals)
    assert res_par.nnz_c == res_serial.nnz_c == res_ref.nnz_c
    assert res_par.peak_strip_nnz == res_serial.peak_strip_nnz
    assert res_par.peak_strip_bytes == res_serial.peak_strip_bytes
    assert par_tracker.summary() == ref_tracker.summary()
    assert timer_par.peak_bytes() == timer_ref.peak_bytes()
    assert timer_par.stage_supersteps == timer_ref.stage_supersteps


def test_blocked_more_strips_than_reads_ok():
    """Degenerate: empty strips are skipped without error."""
    from repro.seqs.dna import encode
    from repro.seqs.fasta import ReadSet
    rng = np.random.default_rng(0)
    base = rng.integers(0, 4, 400).astype(np.uint8)
    reads = ReadSet(["a", "b"], [base[:300].copy(), base[100:].copy()])
    A, comm, timer = _setup(reads)
    res = candidate_overlaps_blocked(A, reads, 17, comm, 10, timer,
                                     mode="chain", fuzz=20)
    assert res.R.shape == (2, 2)
