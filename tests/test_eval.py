"""Tests for the evaluation harness (metrics, datasets, reporting)."""

import numpy as np
import pytest

from repro.eval.datasets import PRESETS, load_preset
from repro.eval.metrics import parallel_efficiency, speedup_series
from repro.eval.report import format_table, format_value
from repro.seqs.simulator import TrueLayout


def test_parallel_efficiency_perfect_scaling():
    eff = parallel_efficiency([1, 4, 16], [16.0, 4.0, 1.0])
    assert eff == pytest.approx([1.0, 1.0, 1.0])


def test_parallel_efficiency_sublinear():
    eff = parallel_efficiency([1, 4], [8.0, 4.0])
    assert eff == pytest.approx([1.0, 0.5])


def test_parallel_efficiency_validation():
    with pytest.raises(ValueError):
        parallel_efficiency([], [])
    with pytest.raises(ValueError):
        parallel_efficiency([1], [1.0, 2.0])


def test_speedup_series():
    assert speedup_series([10.0, 20.0], [2.0, 4.0]) == [5.0, 5.0]
    with pytest.raises(ValueError):
        speedup_series([1.0], [1.0, 2.0])


def test_presets_have_paper_depths():
    assert PRESETS["ecoli_like"].depth == 30
    assert PRESETS["celegans_like"].depth == 40
    assert PRESETS["hsapiens_like"].depth == 10
    assert PRESETS["celegans_like"].error_rate == pytest.approx(0.13)
    assert PRESETS["hsapiens_like"].error_rate == pytest.approx(0.15)


def test_preset_genome_ordering():
    g = {n: PRESETS[n].spec.genome.length
         for n in ("ecoli_like", "celegans_like", "hsapiens_like")}
    assert g["ecoli_like"] < g["celegans_like"] < g["hsapiens_like"]


def test_load_toy_preset():
    preset, genome, reads, layout = load_preset("toy")
    assert genome.shape[0] == 20_000
    assert len(reads) == len(layout.start)
    assert reads.total_bases() >= 15 * 20_000


def test_format_value():
    assert format_value(3.14159) == "3.142"
    assert format_value(0.000123) == "0.000123"
    assert format_value(123456.0) == "1.23e+05"
    assert format_value(7) == "7"
    assert format_value(float("nan")) == "nan"
    assert format_value(0.0) == "0"


def test_format_table():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
    out = format_table(rows, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([])
