"""Cross-executor determinism: the execution engine is a pure perf axis.

``run_pipeline`` must produce byte-identical output — string matrix S,
every nnz count, and the tracker's communication accounting — for every
executor kind and worker count.  This is the contract that makes
``--workers`` safe to flip on in production: the ordered reduction inside
:mod:`repro.exec` guarantees task results are reassembled in task order no
matter how chunks land on workers.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.exec import get_executor
from repro.mpisim import CommTracker, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.kmer_counter import count_kmers

COMBOS = [("serial", 1), ("serial", 4), ("thread", 1), ("thread", 4),
          ("process", 1), ("process", 4)]


def _simulate(length=8_000, depth=10, err=0.05, seed=11):
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=length, seed=seed), depth=depth,
                    mean_len=700, min_len=300,
                    error=ErrorModel(rate=err), seed=seed + 1))
    return reads


def _assert_identical(res, ref):
    assert np.array_equal(res.S.row, ref.S.row)
    assert np.array_equal(res.S.col, ref.S.col)
    assert np.array_equal(res.S.vals, ref.S.vals)
    assert (res.nnz_a, res.nnz_c, res.nnz_r, res.nnz_s) == \
        (ref.nnz_a, ref.nnz_c, ref.nnz_r, ref.nnz_s)
    assert res.n_kmers == ref.n_kmers
    assert res.tr_rounds == ref.tr_rounds
    # Tracker accounting (bytes and messages, totals and criticals) must
    # match to the byte: parallel execution moves no extra simulated data.
    assert res.tracker.summary() == ref.tracker.summary()
    # Compute time *values* differ, but the charged stages must agree.
    assert set(res.timer.stage_seconds) == set(ref.timer.stage_seconds)


@pytest.fixture(scope="module")
def chain_reads():
    return _simulate()


@pytest.fixture(scope="module")
def chain_ref(chain_reads):
    return run_pipeline(chain_reads, _chain_cfg("serial", 1))


def _chain_cfg(executor, workers):
    return PipelineConfig(k=17, nprocs=4, align_mode="chain",
                          depth_hint=10, error_hint=0.05,
                          executor=executor, workers=workers)


@pytest.mark.parametrize("executor,workers", COMBOS)
def test_pipeline_identical_across_executors_chain(chain_reads, chain_ref,
                                                   executor, workers):
    res = run_pipeline(chain_reads, _chain_cfg(executor, workers))
    _assert_identical(res, chain_ref)


@pytest.mark.parametrize("executor,workers",
                         [("thread", 4), ("process", 4)])
def test_pipeline_identical_across_executors_xdrop(executor, workers):
    """x-drop mode exercises the parallel alignment loop end to end."""
    reads = _simulate(length=4_000, depth=8, seed=23)

    def cfg(ex, w):
        return PipelineConfig(k=17, nprocs=4, align_mode="xdrop",
                              depth_hint=8, error_hint=0.05,
                              executor=ex, workers=w)

    ref = run_pipeline(reads, cfg("serial", 1))
    _assert_identical(run_pipeline(reads, cfg(executor, workers)), ref)


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1000))
def test_kmer_counting_identical_thread_vs_serial(seed):
    """Hypothesis: counting matches serially for random tiny read sets."""
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=3_000, seed=seed), depth=6,
                    mean_len=400, min_len=200,
                    error=ErrorModel(rate=0.03), seed=seed + 1))

    def count(executor):
        comm = SimComm(4, CommTracker(4))
        with executor as ex:
            table = count_kmers(reads, 17, comm, StageTimer(), upper=40,
                                executor=ex)
        return table, comm.tracker.summary()

    ref_table, ref_comm = count(get_executor("serial", 1))
    tab, com = count(get_executor("thread", 4))
    assert np.array_equal(tab.kmers, ref_table.kmers)
    assert np.array_equal(tab.counts, ref_table.counts)
    assert com == ref_comm
