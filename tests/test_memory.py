"""Tests for the memory-budget strip scheduler (repro.core.memory)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.memory import (DEFAULT_N_STRIPS, OVERLAP_MODE_ENV,
                               apportion_budget, coo_nbytes,
                               estimate_candidate_nnz, format_bytes,
                               parse_bytes, plan_strips, resolve_overlap_mode)
from repro.core.semirings import C_NFIELDS


# -- byte parsing -----------------------------------------------------------

@pytest.mark.parametrize("text,expected", [
    ("0", 0),
    ("123", 123),
    ("64k", 64 * 2**10),
    ("64K", 64 * 2**10),
    ("64KiB", 64 * 2**10),
    ("64kb", 64 * 2**10),
    ("2M", 2 * 2**20),
    ("1.5G", int(1.5 * 2**30)),
    ("3T", 3 * 2**40),
    (" 10 m ", 10 * 2**20),
    (4096, 4096),
])
def test_parse_bytes(text, expected):
    assert parse_bytes(text) == expected


@pytest.mark.parametrize("bad", ["", "M", "ten", "1..5G", "-5M", "64X"])
def test_parse_bytes_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_bytes(bad)


def test_format_bytes_roundtrips_magnitude():
    assert format_bytes(512) == "512 B"
    assert format_bytes(64 * 2**10) == "64.0 KiB"
    assert format_bytes(int(2.5 * 2**20)) == "2.5 MiB"
    assert format_bytes(3 * 2**30) == "3.0 GiB"


def test_format_bytes_has_tebibyte_tier():
    # Regression: parse_bytes accepted "1.5T" but format_bytes topped out
    # at GiB, so the round trip printed "1536.0 GiB".
    assert format_bytes(parse_bytes("1.5T")) == "1.5 TiB"
    assert format_bytes(2**40) == "1.0 TiB"
    assert format_bytes(2048 * 2**40) == "2048.0 TiB"  # TiB is terminal


@given(st.integers(min_value=0, max_value=2**52))
def test_format_bytes_parse_roundtrip(n):
    """parse_bytes(format_bytes(n)) recovers n up to the one-decimal
    rendering precision of the printed unit."""
    text = format_bytes(n)
    back = parse_bytes(text.replace(" ", ""))
    unit = 1
    for suffix, mult in (("KiB", 2**10), ("MiB", 2**20),
                         ("GiB", 2**30), ("TiB", 2**40)):
        if text.endswith(suffix):
            unit = mult
    assert abs(back - n) <= unit // 10 + 1


# -- budget apportionment ---------------------------------------------------

def test_apportion_budget_shares():
    plan = apportion_budget(1024)
    assert plan.total == 1024
    assert plan.candidate == 512
    assert plan.tables == 256
    assert plan.headroom == 256
    assert plan.candidate + plan.tables + plan.headroom == plan.total


def test_apportion_budget_tiny_budgets_stay_positive():
    for total in (1, 2, 3, 5):
        plan = apportion_budget(total)
        assert plan.candidate >= 1 and plan.tables >= 1


def test_apportion_budget_rejects_nonpositive():
    with pytest.raises(ValueError):
        apportion_budget(0)
    with pytest.raises(ValueError):
        apportion_budget(-64)


# -- the density estimate ---------------------------------------------------

def test_estimate_candidate_nnz_matches_model():
    # m columns of density a contribute m*a^2/2 upper-triangle products:
    # a = 1000/100 = 10, so 100 * 10^2 / 2.
    assert estimate_candidate_nnz(nnz_a=1000, n_kmers=100) == 5000
    assert estimate_candidate_nnz(0, 100) == 0
    assert estimate_candidate_nnz(100, 0) == 0


def test_coo_nbytes_counts_coordinates_and_fields():
    # row + col + nfields payload columns, all int64.
    assert coo_nbytes(10, 4) == 10 * 8 * 6
    assert coo_nbytes(0, 7) == 0


# -- strip planning ---------------------------------------------------------

def test_plan_explicit_n_strips_wins():
    plan = plan_strips(10_000, 1_000, 500, memory_budget=1, n_strips=3)
    assert plan.n_strips == 3
    assert plan.memory_budget is None


def test_plan_budget_drives_strip_count():
    est_bytes = coo_nbytes(estimate_candidate_nnz(10_000, 1_000), C_NFIELDS)
    plan = plan_strips(10_000, 1_000, 10**6, memory_budget=est_bytes // 4)
    assert plan.n_strips == 4
    assert plan.est_candidate_bytes == est_bytes
    assert plan.est_strip_bytes <= est_bytes // 4


def test_plan_smaller_budget_more_strips():
    strips = [plan_strips(10_000, 1_000, 10**6, memory_budget=b).n_strips
              for b in (2**24, 2**20, 2**16)]
    assert strips == sorted(strips)
    assert strips[0] < strips[-1]


def test_plan_generous_budget_single_strip():
    plan = plan_strips(1_000, 1_000, 500, memory_budget=2**40)
    assert plan.n_strips == 1


def test_plan_clamps_to_read_count():
    plan = plan_strips(10**6, 10, 7, memory_budget=1)
    assert plan.n_strips == 7
    plan = plan_strips(10**6, 10, 7, n_strips=1_000)
    assert plan.n_strips == 7


def test_plan_default_without_budget():
    assert plan_strips(1000, 100, 500).n_strips == DEFAULT_N_STRIPS


def test_plan_empty_matrix():
    assert plan_strips(0, 0, 0, memory_budget=1).n_strips == 1


def test_plan_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        plan_strips(1000, 100, 500, memory_budget=0)


# -- mode resolution --------------------------------------------------------

def test_resolve_overlap_mode_defaults(monkeypatch):
    monkeypatch.delenv(OVERLAP_MODE_ENV, raising=False)
    assert resolve_overlap_mode(None) == "monolithic"
    assert resolve_overlap_mode("auto") == "monolithic"
    assert resolve_overlap_mode("blocked") == "blocked"
    assert resolve_overlap_mode("monolithic") == "monolithic"


def test_resolve_overlap_mode_env(monkeypatch):
    monkeypatch.setenv(OVERLAP_MODE_ENV, "blocked")
    assert resolve_overlap_mode("auto") == "blocked"
    # Explicit names beat the environment.
    assert resolve_overlap_mode("monolithic") == "monolithic"


def test_resolve_overlap_mode_rejects_unknown(monkeypatch):
    monkeypatch.delenv(OVERLAP_MODE_ENV, raising=False)
    with pytest.raises(ValueError):
        resolve_overlap_mode("strip-mined")
    monkeypatch.setenv(OVERLAP_MODE_ENV, "bogus")
    with pytest.raises(ValueError):
        resolve_overlap_mode("auto")
