"""Unit tests for the CooMat local sparse container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dsparse.coomat import CooMat


def test_canonical_sorting():
    m = CooMat((3, 3), [2, 0, 1], [1, 2, 0], [[10], [20], [30]])
    assert m.row.tolist() == [0, 1, 2]
    assert m.col.tolist() == [2, 0, 1]
    assert m.vals[:, 0].tolist() == [20, 30, 10]


def test_duplicate_coordinates_rejected():
    with pytest.raises(ValueError):
        CooMat((2, 2), [0, 0], [1, 1], [[1], [2]])


def test_from_to_scipy_roundtrip():
    rng = np.random.default_rng(0)
    s = sp.random(20, 30, density=0.1, format="coo",
                  data_rvs=lambda n: rng.integers(1, 100, n))
    m = CooMat.from_scipy(s)
    back = m.to_scipy()
    assert (abs(back - s.tocsr()) > 0).nnz == 0


def test_keys_unique_sorted():
    m = CooMat((4, 5), [0, 1, 3], [4, 0, 2], [[1], [1], [1]])
    keys = m.keys()
    assert np.all(np.diff(keys) > 0)


def test_csr_indptr():
    m = CooMat((4, 3), [0, 0, 2], [0, 2, 1], [[1], [2], [3]])
    assert m.csr_indptr().tolist() == [0, 2, 2, 3, 3]


def test_csr_indptr_cached():
    m = CooMat((4, 3), [0, 0, 2], [0, 2, 1], [[1], [2], [3]])
    assert m.csr_indptr() is m.csr_indptr()


def test_to_csr_zero_copy_view():
    m = CooMat((4, 3), [0, 0, 2], [0, 2, 1], [[1], [2], [3]])
    csr = m.to_csr()
    # Cached, and sharing the COO storage rather than copying it.
    assert m.to_csr() is csr
    assert csr.indices is m.col
    assert np.shares_memory(csr.data, m.vals)
    dense = np.zeros((4, 3), dtype=np.int64)
    dense[0, 0], dense[0, 2], dense[2, 1] = 1, 2, 3
    assert np.array_equal(csr.toarray(), dense)


def test_to_csr_selects_field():
    m = CooMat((2, 2), [0, 1], [1, 0], [[1, 10], [2, 20]])
    assert m.to_csr(1).toarray().sum() == 30


def test_from_csr_rejects_duplicates():
    # Raw scipy CSR may carry unsummed duplicates; the canonical invariant
    # must hold here just like in the constructor.
    dup = sp.csr_matrix((np.array([1, 2], dtype=np.int64),
                         np.array([0, 0]), np.array([0, 2, 2])),
                        shape=(2, 2))
    with pytest.raises(ValueError, match="duplicate"):
        CooMat.from_csr(dup)


def test_from_csr_roundtrip():
    rng = np.random.default_rng(5)
    s = sp.random(25, 18, density=0.15, format="coo",
                  data_rvs=lambda n: rng.integers(1, 100, n))
    m = CooMat.from_scipy(s)
    back = CooMat.from_csr(m.to_csr())
    assert np.array_equal(back.row, m.row)
    assert np.array_equal(back.col, m.col)
    assert np.array_equal(back.vals, m.vals)


def test_transpose():
    m = CooMat((2, 3), [0, 1], [2, 0], [[5], [6]])
    t = m.transpose()
    assert t.shape == (3, 2)
    assert (int(t.row[0]), int(t.col[0])) in {(0, 1), (2, 0)}
    assert t.nnz == 2


def test_submatrix_local_coords():
    m = CooMat((4, 4), [0, 1, 2, 3], [0, 1, 2, 3], [[1], [2], [3], [4]])
    b = m.submatrix(1, 3, 1, 3)
    assert b.shape == (2, 2)
    assert b.row.tolist() == [0, 1]
    assert b.vals[:, 0].tolist() == [2, 3]


def test_select_and_empty():
    m = CooMat((2, 2), [0, 1], [1, 0], [[7], [8]])
    s = m.select(np.array([True, False]))
    assert s.nnz == 1 and s.vals[0, 0] == 7
    e = CooMat.empty((5, 5), nfields=3)
    assert e.nnz == 0 and e.nfields == 3


def test_multifield_values():
    m = CooMat((2, 2), [0], [1], [[1, 2, 3]])
    assert m.nfields == 3
    assert m.vals.shape == (1, 3)


def test_1d_values_promoted():
    m = CooMat((2, 2), [0, 1], [0, 1], np.array([4, 5]))
    assert m.vals.shape == (2, 1)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        CooMat((2, 2), [0], [0, 1], [[1], [2]])
