"""Unit tests for the repro.exec subsystem (partitioner + executors)."""

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import (ProcessExecutor, SERIAL, SerialExecutor,
                        ThreadExecutor, available_executors, get_executor,
                        register_executor, resolve_workers, weighted_chunks)
from repro.exec.executor import Executor


# -- partitioner -------------------------------------------------------------

def test_weighted_chunks_basic():
    assert weighted_chunks([], 4) == []
    assert weighted_chunks([5.0], 4) == [(0, 1)]
    assert weighted_chunks([1, 1, 1, 1], 1) == [(0, 4)]
    # Even weights, even split.
    assert weighted_chunks([1, 1, 1, 1], 2) == [(0, 2), (2, 4)]


def test_weighted_chunks_skewed_weights_balance():
    # One huge task up front: it gets its own chunk, the tail is shared.
    ranges = weighted_chunks([100, 1, 1, 1, 1], 2)
    assert ranges[0] == (0, 1)
    assert ranges[-1][1] == 5


def test_weighted_chunks_zero_weights_fall_back_to_count_split():
    ranges = weighted_chunks([0, 0, 0, 0], 2)
    assert ranges == [(0, 2), (2, 4)]


def test_weighted_chunks_rejects_negative():
    with pytest.raises(ValueError):
        weighted_chunks([1, -1], 2)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=0, max_size=60),
       st.integers(1, 12))
def test_weighted_chunks_exact_cover(weights, n_chunks):
    """Every index appears in exactly one chunk, in ascending order."""
    ranges = weighted_chunks(weights, n_chunks)
    covered = [i for lo, hi in ranges for i in range(lo, hi)]
    assert covered == list(range(len(weights)))
    assert len(ranges) <= max(1, n_chunks)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=100, allow_nan=False),
                min_size=8, max_size=60),
       st.integers(2, 6))
def test_weighted_chunks_no_chunk_exceeds_max_task_plus_share(weights,
                                                             n_chunks):
    """Chunk loads stay near total/n plus one task (quantile-cut bound)."""
    ranges = weighted_chunks(weights, n_chunks)
    total = sum(weights)
    bound = total / n_chunks + max(weights)
    for lo, hi in ranges:
        assert sum(weights[lo:hi]) <= bound + 1e-9


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=0, max_size=60),
       st.integers(1, 12), st.integers(1, 10))
def test_weighted_chunks_max_items_cap(weights, n_chunks, max_items):
    """The item cap subdivides long quantile ranges; cover stays exact."""
    ranges = weighted_chunks(weights, n_chunks, max_items=max_items)
    covered = [i for lo, hi in ranges for i in range(lo, hi)]
    assert covered == list(range(len(weights)))
    for lo, hi in ranges:
        assert hi - lo <= max_items


def test_weighted_chunks_max_items_even_subdivision():
    # One chunk of 10 under a cap of 4 -> even 3/3/4, not 4/4/2.
    assert weighted_chunks([1] * 10, 1, max_items=4) == \
        [(0, 3), (3, 6), (6, 10)]
    with pytest.raises(ValueError):
        weighted_chunks([1, 2], 1, max_items=0)


# -- executors ---------------------------------------------------------------

def _square(ctx, x):
    return (ctx or 0) + x * x


def _fail_on_three(ctx, x):
    if x == 3:
        raise ValueError("task 3 exploded")
    return x


EXECUTORS = [SerialExecutor(4), ThreadExecutor(4), ProcessExecutor(2)]


@pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
def test_run_ordered_results_and_context(ex):
    with ex:
        tasks = list(range(23))
        assert ex.run(_square, tasks, context=100) == \
            [100 + x * x for x in tasks]


@pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
def test_run_timed_returns_per_task_seconds(ex):
    with ex:
        results, secs = ex.run_timed(_square, [1, 2, 3],
                                     weights=[1, 2, 3])
        assert results == [1, 4, 9]
        assert len(secs) == 3 and all(s >= 0.0 for s in secs)


@pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
def test_task_exception_propagates(ex):
    with ex:
        with pytest.raises(ValueError, match="exploded"):
            ex.run(_fail_on_three, [1, 2, 3, 4])


@pytest.mark.parametrize("ex", EXECUTORS, ids=lambda e: e.name)
def test_empty_task_list(ex):
    with ex:
        assert ex.run(_square, []) == []


def test_results_identical_across_executors_and_worker_counts():
    tasks = list(np.arange(97))
    weights = list(np.arange(97) % 7 + 1)
    ref = SERIAL.run(_square, tasks, weights=weights)
    for cls in (SerialExecutor, ThreadExecutor, ProcessExecutor):
        for w in (1, 3, 8):
            with cls(w) as ex:
                assert ex.run(_square, tasks, weights=weights) == ref


def test_pool_reuse_across_calls():
    with ThreadExecutor(2) as ex:
        assert ex.run(_square, [1, 2]) == [1, 4]
        assert ex.run(_square, [3]) == [9]


# -- registry / resolution ----------------------------------------------------

def test_available_and_get_executor(monkeypatch):
    # Env overrides off: this test pins the *default* resolution rules.
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    names = available_executors()
    assert {"serial", "thread", "process", "auto"} <= set(names)
    assert isinstance(get_executor("serial", 1), SerialExecutor)
    assert isinstance(get_executor("thread", 2), ThreadExecutor)
    ex = get_executor("process", 2)
    assert isinstance(ex, ProcessExecutor) and ex.workers == 2
    # auto: serial for 1 worker, process pool beyond.
    assert isinstance(get_executor("auto", 1), SerialExecutor)
    assert isinstance(get_executor("auto", 4), ProcessExecutor)
    # pass-through of built instances.
    assert get_executor(SERIAL) is SERIAL
    with pytest.raises(KeyError, match="unknown executor"):
        get_executor("gpu")


def test_register_executor_validates():
    with pytest.raises(TypeError):
        register_executor("bogus", object)  # not an Executor subclass

    class Custom(SerialExecutor):
        name = "custom-test"

    register_executor("custom-test", Custom)
    try:
        assert isinstance(get_executor("custom-test", 1), Custom)
    finally:
        from repro.exec.executor import _REGISTRY
        _REGISTRY.pop("custom-test", None)


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) == 1
    monkeypatch.setenv("REPRO_WORKERS", "5")
    assert resolve_workers(None) == 5
    assert resolve_workers(2) == 2  # explicit beats env


def test_get_executor_env_name(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "thread")
    monkeypatch.setenv("REPRO_WORKERS", "3")
    ex = get_executor(None)
    assert isinstance(ex, ThreadExecutor) and ex.workers == 3
