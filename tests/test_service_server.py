"""HTTP layer: endpoints, cache behaviour, ingest → version bump."""

import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.dna import decode
from repro.service import AssemblyService, ServiceConfig, make_server

K = 17
NPROCS = 4


@pytest.fixture(scope="module")
def server_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=5_000, seed=7), depth=8,
                    mean_len=600, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=8))
    return reads


@pytest.fixture()
def service():
    return AssemblyService(ServiceConfig(
        refresh_mode="incremental",
        pipeline=PipelineConfig(k=K, nprocs=NPROCS, kmer_upper=12, fuzz=60)))


@pytest.fixture()
def base_url(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str):
    with urllib.request.urlopen(url) as resp:
        return resp.status, json.loads(resp.read())


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.loads(resp.read())


def _batch_payload(reads, lo: int, hi: int) -> dict:
    sub = reads.subset(np.arange(lo, hi))
    return {"reads": [{"name": name, "seq": decode(seq)}
                      for name, seq in zip(sub.names, sub.seqs)]}


def test_version_starts_at_zero(base_url):
    status, body = _get(f"{base_url}/version")
    assert status == 200
    assert body == {"version": 0, "n_reads": 0}


def test_ingest_then_query(base_url, service, server_reads):
    half = len(server_reads) // 2
    status, body = _post(f"{base_url}/reads",
                         _batch_payload(server_reads, 0, half))
    assert status == 200
    assert body["version"] == 1
    assert body["ingested"] == half
    assert body["refresh_mode"] == "recompute"  # bootstrap from empty

    status, body = _post(f"{base_url}/reads",
                         _batch_payload(server_reads, half,
                                        len(server_reads)))
    assert status == 200
    assert body["version"] == 2
    assert body["refresh_mode"] == "incremental"

    status, body = _get(f"{base_url}/version")
    assert body == {"version": 2, "n_reads": len(server_reads)}

    # Overlap payload mirrors the R matrix row for that read.
    state = service.store.current()
    read = int(state.R.row[0])
    status, body = _get(f"{base_url}/overlaps/{read}")
    assert status == 200
    assert body["version"] == 2
    assert len(body["overlaps"]) == int((state.R.row == read).sum())
    partners = sorted(o["read"] for o in body["overlaps"])
    assert partners == sorted(state.R.col[state.R.row == read].tolist())
    for o in body["overlaps"]:
        assert o["overlap_len"] > 0

    # Contigs arrive largest-first and cover the graph's layout.
    status, body = _get(f"{base_url}/contigs")
    assert status == 200
    sizes = [len(c["reads"]) for c in body["contigs"]]
    assert sizes == sorted(sizes, reverse=True)
    assert sum(sizes) > 0
    for c in body["contigs"]:
        assert len(c["reads"]) == len(c["orientations"])

    status, body = _get(f"{base_url}/stats")
    assert body["counts"]["n_reads"] == len(server_reads)
    assert set(body["comm"]) == {"CountKmer", "CreateSpMat", "ExchangeRead",
                                 "SpGEMM", "TrReduction"}
    for rec in body["comm"].values():
        assert rec["bytes"] > 0 and rec["messages"] > 0


def test_query_cache_hits_and_invalidation(base_url, service, server_reads):
    third = len(server_reads) // 3
    _post(f"{base_url}/reads", _batch_payload(server_reads, 0, third))

    _get(f"{base_url}/contigs")               # miss, fills cache
    _get(f"{base_url}/contigs")               # hit
    stats = service.cache.stats()
    assert stats["hits"] >= 1

    before = service.cache.stats()["entries"]
    assert before >= 1
    _post(f"{base_url}/reads",
          _batch_payload(server_reads, third, 2 * third))
    stats = service.cache.stats()
    assert stats["invalidations"] >= before   # old-version entries swept
    assert stats["entries"] == 0

    # Same query against the new version recomputes (a miss, not a hit).
    misses_before = stats["misses"]
    _get(f"{base_url}/contigs")
    assert service.cache.stats()["misses"] == misses_before + 1


def test_error_paths(base_url):
    with pytest.raises(urllib.error.HTTPError) as e:
        _get(f"{base_url}/nope")
    assert e.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as e:
        _get(f"{base_url}/overlaps/banana")
    assert e.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as e:
        _post(f"{base_url}/reads", {"reads": [{"name": "x"}]})  # no seq
    assert e.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as e:
        _post(f"{base_url}/nope", {})
    assert e.value.code == 404


def test_overlaps_unknown_read_is_empty(base_url, server_reads):
    _post(f"{base_url}/reads", _batch_payload(server_reads, 0, 20))
    status, body = _get(f"{base_url}/overlaps/999999")
    assert status == 200
    assert body["overlaps"] == []


def _raw_request(base_url: str, request: bytes):
    """Send raw bytes over a socket; parse the status + JSON body back.

    Drives malformations urllib cannot produce (missing or lying
    Content-Length headers, truncated bodies)."""
    host, port = base_url[len("http://"):].rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as s:
        s.sendall(request)
        s.shutdown(socket.SHUT_WR)
        resp = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            resp += chunk
    status = int(resp.split(b" ", 2)[1])
    return status, json.loads(resp.split(b"\r\n\r\n", 1)[1])


def test_post_missing_content_length_is_411(base_url):
    status, body = _raw_request(
        base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\n\r\n")
    assert status == 411
    assert body["code"] == "length-required"


def test_post_bad_content_length_is_400(base_url):
    for raw in (b"banana", b"-5"):
        status, body = _raw_request(
            base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\n"
                      b"Content-Length: " + raw + b"\r\n\r\n{}")
        assert status == 400
        assert body["code"] == "bad-content-length"


def test_post_oversized_content_length_is_413(base_url):
    status, body = _raw_request(
        base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\n"
                  b"Content-Length: 999999999999\r\n\r\n")
    assert status == 413
    assert body["code"] == "payload-too-large"


def test_post_truncated_body_is_400(base_url):
    # Client promises 500 bytes, sends 11, hangs up: structured 400, no
    # hang, no stack trace.
    status, body = _raw_request(
        base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\n"
                  b"Content-Length: 500\r\n\r\n{\"reads\": [")
    assert status == 400
    assert body["code"] == "truncated-body"


def test_post_malformed_json_is_structured_400(base_url):
    payload = b"{not json"
    status, body = _raw_request(
        base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        str(len(payload)).encode() + b"\r\n\r\n" + payload)
    assert status == 400
    assert body["code"] == "bad-json"
    # A JSON body that isn't an object is equally a 400, not a 500.
    payload = b"[1, 2]"
    status, body = _raw_request(
        base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\nContent-Length: " +
        str(len(payload)).encode() + b"\r\n\r\n" + payload)
    assert status == 400
    assert body["code"] == "bad-batch"


def test_malformed_posts_leave_version_untouched(base_url):
    _raw_request(base_url, b"POST /reads HTTP/1.1\r\nHost: t\r\n"
                           b"Content-Length: 500\r\n\r\n{\"reads\": [")
    status, body = _get(f"{base_url}/version")
    assert status == 200
    assert body["version"] == 0
