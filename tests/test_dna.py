"""Unit tests for DNA primitives (encode/decode, revcomp, genomes)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.seqs.dna import (GenomeSpec, canonical, decode, encode,
                            random_genome, revcomp, revcomp_codes)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=200)


def test_encode_decode_roundtrip():
    s = "ACGTACGTTTGGCA"
    assert decode(encode(s)) == s


def test_encode_lowercase():
    assert decode(encode("acgt")) == "ACGT"


def test_encode_n_replacement_deterministic_without_rng():
    codes = encode("ANNA")
    assert decode(codes) == "AAAA"


def test_encode_n_replacement_with_rng():
    rng = np.random.default_rng(0)
    codes = encode("N" * 100, rng)
    # Random fill should produce a mix of bases, not all A.
    assert len(set(codes.tolist())) > 1


def test_revcomp_known():
    assert revcomp("ATTCG") == "CGAAT"  # the paper's Section II example


def test_revcomp_codes_matches_string():
    s = "ACGGTTAC"
    assert decode(revcomp_codes(encode(s))) == revcomp(s)


@given(dna_strings)
def test_revcomp_involution(s):
    assert revcomp(revcomp(s)) == s


@given(dna_strings)
def test_canonical_idempotent_and_minimal(s):
    c = canonical(s)
    assert c == canonical(c)
    assert c <= s and c <= revcomp(s)
    assert c in (s, revcomp(s))


def test_canonical_example():
    # v = ATTCG with revcomp CGAAT: canonical is ATTCG (paper Section II).
    assert canonical("ATTCG") == "ATTCG"


def test_random_genome_length_and_alphabet():
    g = random_genome(GenomeSpec(length=1000, seed=1))
    assert g.shape == (1000,)
    assert g.min() >= 0 and g.max() <= 3


def test_random_genome_deterministic():
    a = random_genome(GenomeSpec(length=500, seed=7))
    b = random_genome(GenomeSpec(length=500, seed=7))
    assert np.array_equal(a, b)


def test_random_genome_repeats_increase_duplicate_kmers():
    from repro.seqs.kmers import canonical_kmers, pack_kmers
    plain = random_genome(GenomeSpec(length=20_000, seed=2))
    repeated = random_genome(GenomeSpec(length=20_000, n_repeats=10,
                                        repeat_len=2_000, seed=2))
    k = 21

    def dup_fraction(g):
        km = canonical_kmers(pack_kmers(g, k), k)
        _, counts = np.unique(km, return_counts=True)
        return (counts > 1).sum() / counts.shape[0]

    assert dup_fraction(repeated) > dup_fraction(plain)


def test_genome_spec_validation():
    with pytest.raises(ValueError):
        GenomeSpec(length=0)
    with pytest.raises(ValueError):
        GenomeSpec(length=100, n_repeats=1, repeat_len=0)
    with pytest.raises(ValueError):
        GenomeSpec(length=100, n_repeats=1, repeat_len=101)
