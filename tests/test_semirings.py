"""Tests for the paper's custom semirings (positions and MinPlus)."""

import numpy as np

from repro.core.semirings import (BidirectedMinPlus, PositionsSemiring,
                                  C_COUNT, C_PA1, C_PA2, C_PB1, C_PB2,
                                  C_STRAND1, n_slot)
from repro.dsparse.coomat import CooMat
from repro.dsparse.semiring import INF
from repro.dsparse.spgemm import spgemm_esc


def test_positions_multiply_strand_xor():
    sr = PositionsSemiring()
    avals = np.array([[5, 0], [9, 1]], dtype=np.int64)
    bvals = np.array([[7, 1], [2, 1]], dtype=np.int64)
    out, mask = sr.multiply(avals, bvals)
    assert mask is None
    assert out[0, C_COUNT] == 1
    assert out[0, C_PA1] == 5 and out[0, C_PB1] == 7
    assert out[0, C_STRAND1] == 1      # 0 xor 1
    assert out[1, C_STRAND1] == 0      # 1 xor 1
    assert out[0, C_PA2] == -1          # second seed empty


def test_positions_reduce_counts_and_two_seeds():
    sr = PositionsSemiring()
    # One group of three raw products.
    vals = np.full((3, 7), -1, dtype=np.int64)
    vals[:, C_COUNT] = 1
    vals[:, C_PA1] = [10, 20, 30]
    vals[:, C_PB1] = [11, 21, 31]
    vals[:, C_STRAND1] = [0, 1, 0]
    out = sr.reduce(vals, np.array([0]), np.array([3]))
    assert out[0, C_COUNT] == 3
    assert out[0, C_PA1] == 10 and out[0, C_PA2] == 20
    assert out[0, C_PB2] == 21


def test_positions_reduce_composable_with_partials():
    """Merging already-reduced partials (SUMMA stages) keeps counts exact."""
    sr = PositionsSemiring()
    partial1 = np.array([[2, 1, 1, 0, 3, 3, 0]], dtype=np.int64)  # 2 kmers
    partial2 = np.array([[3, 9, 9, 1, -1, -1, -1]], dtype=np.int64)
    vals = np.vstack([partial1, partial2])
    out = sr.reduce(vals, np.array([0]), np.array([2]))
    assert out[0, C_COUNT] == 5
    assert out[0, C_PA2] == 3  # kept partial1's second seed


def test_positions_via_spgemm_counts_common_kmers():
    """AAᵀ under the positions semiring counts shared k-mers per pair."""
    # A: 3 reads x 4 kmers; reads 0,1 share kmers 0 and 2.
    row = [0, 0, 1, 1, 2]
    col = [0, 2, 0, 2, 3]
    vals = np.array([[5, 0], [9, 0], [1, 0], [4, 1], [7, 0]], dtype=np.int64)
    A = CooMat((3, 4), row, col, vals)
    C = spgemm_esc(A, A.transpose(), PositionsSemiring())
    at = {(int(r), int(c)): v for r, c, v in zip(C.row, C.col, C.vals)}
    assert at[(0, 1)][C_COUNT] == 2
    assert at[(0, 1)][C_PA2] != -1  # both seeds recorded
    assert (2, 0) not in at and (0, 2) not in at  # no shared k-mers


def test_bidirected_minplus_validity_mask():
    sr = BidirectedMinPlus()
    # Edge i->k ends (E at k) then k->j (B at k): valid (opposite ends).
    a = np.array([[10, 1, 1, 0]], dtype=np.int64)
    b = np.array([[20, 0, 0, 0]], dtype=np.int64)
    out, mask = sr.multiply(a, b)
    assert mask[0]
    assert out[0, n_slot(1, 0)] == 30
    assert out[0, n_slot(0, 0)] == INF
    # Same ends at middle: invalid walk.
    b_bad = np.array([[20, 1, 0, 0]], dtype=np.int64)
    _, mask = sr.multiply(a, b_bad)
    assert not mask[0]


def test_bidirected_minplus_reduce_per_slot():
    sr = BidirectedMinPlus()
    vals = np.array([
        [INF, 7, INF, INF],
        [3, INF, INF, INF],
        [INF, 5, INF, INF],
    ], dtype=np.int64)
    out = sr.reduce(vals, np.array([0]), np.array([3]))
    assert out[0].tolist() == [3, 5, INF, INF]


def test_minplus_squaring_three_node_path():
    """R² over a bidirected 3-path finds the valid two-hop with the right
    slot and suffix sum."""
    # Reads 0,1,2 collinear forward: edges (0,1),(1,2) with E->B ends, plus
    # their reverse direction entries (B->E).
    rows = [0, 1, 1, 2]
    cols = [1, 0, 2, 1]
    vals = np.array([
        [4, 1, 0, 50],   # 0->1 suffix 4, E at 0, B at 1
        [6, 0, 1, 50],   # 1->0 suffix 6
        [3, 1, 0, 50],   # 1->2 suffix 3
        [5, 0, 1, 50],   # 2->1 suffix 5
    ], dtype=np.int64)
    R = CooMat((3, 3), rows, cols, vals)
    N = spgemm_esc(R, R, BidirectedMinPlus())
    at = {(int(r), int(c)): v for r, c, v in zip(N.row, N.col, N.vals)}
    # Valid: 0->1->2 (arrive B at 1, leave E at 1): slot (E at 0, B at 2).
    assert at[(0, 2)][n_slot(1, 0)] == 7
    # Reverse: 2->1->0: slot (E at 2... ends: 2->1 has end_2=0? entry
    # (2,1) ends (0,1): path 2->1->0 arrives at 1 via E(1), leaves via B:
    # entry (1,0) ends (0,1): valid; slot (0, 1) sum 6+5=11.
    assert at[(2, 0)][n_slot(0, 1)] == 11
