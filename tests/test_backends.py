"""Backend registry + numpy/scipy kernel parity.

The contract under test: for every shipped semiring and any sparsity
pattern, every registered backend produces **byte-identical** ``CooMat``
results (same coordinates, same int64 values, same entry order) — the
scipy backend's CSR lowerings either match the ESC reference exactly or
decline to lower.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.semirings import BidirectedMinPlus, PositionsSemiring
from repro.dsparse.backend import (AutoBackend, NumpyBackend, ScipyBackend,
                                   available_backends, get_backend,
                                   register_backend)
from repro.dsparse.coomat import CooMat
from repro.dsparse.semiring import BoolOr, MinPlus, PlusTimes
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads

NUMPY = get_backend("numpy")
SCIPY = get_backend("scipy")

#: semiring name -> (factory, operand nfields)
SEMIRINGS = {
    "plus_times": (PlusTimes, 1),
    "min_plus": (MinPlus, 1),
    "bool_or": (BoolOr, 1),
    "positions": (PositionsSemiring, 2),
    "bidirected_min_plus": (BidirectedMinPlus, 4),
}


def _rand_mat(rng, rows, cols, density, nfields, lo=1, hi=50):
    """Random canonical CooMat with semiring-appropriate value fields."""
    s = sp.random(rows, cols, density=density, format="coo", random_state=rng,
                  data_rvs=lambda n: rng.integers(1, 50, n))
    nnz = s.nnz
    if nfields == 1:
        vals = rng.integers(lo, hi, (nnz, 1))
    elif nfields == 2:   # A-typed: [pos, flip]
        vals = np.stack([rng.integers(0, 500, nnz),
                         rng.integers(0, 2, nnz)], axis=1)
    else:                # R-typed: [suffix, end_i, end_j, olen]
        vals = np.stack([rng.integers(1, 500, nnz),
                         rng.integers(0, 2, nnz),
                         rng.integers(0, 2, nnz),
                         rng.integers(100, 400, nnz)], axis=1)
    return CooMat((rows, cols), s.row.astype(np.int64),
                  s.col.astype(np.int64), vals.astype(np.int64))


def _assert_identical(a: CooMat, b: CooMat):
    assert a.shape == b.shape
    assert a.nfields == b.nfields
    assert np.array_equal(a.row, b.row)
    assert np.array_equal(a.col, b.col)
    assert np.array_equal(a.vals, b.vals)
    assert a.vals.dtype == b.vals.dtype == np.int64


# -- registry ----------------------------------------------------------------

def test_registry_ships_three_backends():
    assert {"numpy", "scipy", "auto"} <= set(available_backends())
    assert isinstance(get_backend("numpy"), NumpyBackend)
    assert isinstance(get_backend("scipy"), ScipyBackend)
    assert isinstance(get_backend("auto"), AutoBackend)


def test_get_backend_default_and_passthrough():
    assert isinstance(get_backend(None), AutoBackend)
    bk = get_backend("numpy")
    assert get_backend(bk) is bk


def test_get_backend_unknown_name():
    with pytest.raises(KeyError, match="unknown backend"):
        get_backend("cuda")


def test_register_backend_roundtrip():
    class _Probe(NumpyBackend):
        name = "probe"

    probe = _Probe()
    register_backend("probe", probe)
    try:
        assert get_backend("probe") is probe
        assert "probe" in available_backends()
    finally:
        from repro.dsparse import backend as backend_mod
        del backend_mod._REGISTRY["probe"]


def test_register_backend_rejects_non_backend():
    with pytest.raises(TypeError):
        register_backend("bogus", object())


# -- lowering policy ---------------------------------------------------------

def test_scipy_lowers_scalar_semirings():
    rng = np.random.default_rng(0)
    A = _rand_mat(rng, 10, 10, 0.2, 1)
    assert ScipyBackend.can_lower(A, A, PlusTimes()) == "plus_times"
    assert ScipyBackend.can_lower(A, A, BoolOr()) == "bool_or"
    # No native tropical product, no multi-field lowering.
    assert ScipyBackend.can_lower(A, A, MinPlus()) is None
    R = _rand_mat(rng, 10, 10, 0.2, 4)
    assert ScipyBackend.can_lower(R, R, BidirectedMinPlus()) is None


def test_scipy_declines_cancelling_inputs():
    """scipy prunes accumulated zeros that ESC keeps, so values that could
    cancel (or zero products) must fall back to the reference kernel —
    and the results still match because both run ESC."""
    A = CooMat((2, 2), [0, 0], [0, 1], [[1], [-1]])
    B = CooMat((2, 2), [0, 1], [0, 0], [[5], [5]])
    assert ScipyBackend.can_lower(A, B, PlusTimes()) is None
    _assert_identical(SCIPY.spgemm(A, B, PlusTimes()),
                      NUMPY.spgemm(A, B, PlusTimes()))
    # The ESC reference keeps the cancelled structural entry as explicit 0.
    C = NUMPY.spgemm(A, B, PlusTimes())
    assert C.nnz == 1 and C.vals[0, 0] == 0


def test_scipy_spgemm_dimension_mismatch():
    with pytest.raises(ValueError):
        SCIPY.spgemm(CooMat.empty((3, 4)), CooMat.empty((5, 3)), PlusTimes())


# -- kernel parity (property) -------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2 ** 31), st.sampled_from(sorted(SEMIRINGS)),
       st.floats(0.0, 0.25), st.floats(0.0, 0.25), st.booleans())
def test_property_spgemm_parity(seed, semiring_name, da, db, negatives):
    rng = np.random.default_rng(seed)
    cls, nf = SEMIRINGS[semiring_name]
    lo = -5 if negatives else 1  # negatives force the cancellation fallback
    A = _rand_mat(rng, 17, 23, da, nf, lo=lo)
    B = NUMPY.transpose(A) if semiring_name in ("positions",
                                                "bidirected_min_plus") \
        else _rand_mat(rng, 23, 14, db, nf, lo=lo)
    semiring = cls()
    _assert_identical(SCIPY.spgemm(A, B, semiring),
                      NUMPY.spgemm(A, B, semiring))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 31), st.sampled_from(["plus_times", "bool_or",
                                                 "min_plus"]),
       st.integers(2, 5), st.booleans())
def test_property_merge_parity(seed, semiring_name, nparts, negatives):
    rng = np.random.default_rng(seed)
    cls, nf = SEMIRINGS[semiring_name]
    lo = -5 if negatives else 1
    parts = [_rand_mat(rng, 12, 12, rng.uniform(0.0, 0.3), nf, lo=lo)
             for _ in range(nparts)]
    semiring = cls()
    _assert_identical(SCIPY.merge(parts, semiring, (12, 12)),
                      NUMPY.merge(parts, semiring, (12, 12)))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 31), st.floats(0.0, 0.3),
       st.integers(1, 4))
def test_property_transpose_parity(seed, density, nfields):
    rng = np.random.default_rng(seed)
    A = _rand_mat(rng, 19, 11, density, nfields)
    _assert_identical(SCIPY.transpose(A), NUMPY.transpose(A))


def test_merge_into_larger_frame_parity():
    """merge() must honor the requested output shape on every backend,
    including when it exceeds the parts' own shape (CSR fast path must
    decline rather than return a parts-shaped block)."""
    a = CooMat((12, 12), [0], [3], [[2]])
    b = CooMat((12, 12), [5], [3], [[4]])
    for semiring in (PlusTimes(), BoolOr()):
        m1 = NUMPY.merge([a, b], semiring, (100, 100))
        m2 = SCIPY.merge([a, b], semiring, (100, 100))
        assert m1.shape == m2.shape == (100, 100)
        _assert_identical(m1, m2)


def test_row_reduce_matches_dense():
    rng = np.random.default_rng(7)
    A = _rand_mat(rng, 15, 9, 0.3, 1)
    dense = A.to_scipy().toarray()
    out = NUMPY.row_reduce(A, 0, np.maximum, 0)
    expect = dense.max(axis=1).astype(np.int64)
    assert np.array_equal(out, np.maximum(expect, 0))
    assert np.array_equal(out, SCIPY.row_reduce(A, 0, np.maximum, 0))


def test_scipy_plustimes_matches_scipy_reference():
    """The lowered product agrees with scipy computed the ordinary way."""
    rng = np.random.default_rng(3)
    A = _rand_mat(rng, 40, 30, 0.1, 1)
    B = _rand_mat(rng, 30, 35, 0.1, 1)
    C = SCIPY.spgemm(A, B, PlusTimes())
    expect = (A.to_scipy().tocsr() @ B.to_scipy().tocsr()).tocoo()
    got = C.to_scipy().tocsr()
    assert (abs(got - expect.tocsr()) > 1e-9).nnz == 0


# -- empty/edge cases ---------------------------------------------------------

@pytest.mark.parametrize("name", ["numpy", "scipy"])
def test_empty_operands(name):
    bk = get_backend(name)
    C = bk.spgemm(CooMat.empty((3, 4)), CooMat.empty((4, 2)), PlusTimes())
    assert C.nnz == 0 and C.shape == (3, 2) and C.nfields == 1
    assert bk.merge([], PlusTimes(), (3, 3)).nnz == 0
    assert bk.transpose(CooMat.empty((3, 4))).shape == (4, 3)


# -- end-to-end: pipeline output is backend-independent -----------------------

@pytest.fixture(scope="module")
def tiny_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=6_000, seed=41), depth=8,
                    mean_len=600, min_len=300, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=43))
    return reads


def test_pipeline_byte_identical_across_backends(tiny_reads):
    results = {}
    for name in ("numpy", "scipy", "auto"):
        cfg = PipelineConfig(nprocs=4, align_mode="chain", fuzz=20,
                             depth_hint=8, error_hint=0.0, backend=name)
        results[name] = run_pipeline(tiny_reads, cfg)
    ref = results["numpy"]
    for name in ("scipy", "auto"):
        res = results[name]
        _assert_identical(ref.S, res.S)
        assert (ref.nnz_a, ref.nnz_c, ref.nnz_r, ref.nnz_s) == \
               (res.nnz_a, res.nnz_c, res.nnz_r, res.nnz_s)
        assert ref.tr_rounds == res.tr_rounds


def test_pipeline_rejects_unknown_backend(tiny_reads):
    cfg = PipelineConfig(nprocs=1, backend="nope")
    with pytest.raises(KeyError):
        run_pipeline(tiny_reads, cfg)


def test_cli_exposes_backend_flag():
    from repro.cli import build_parser
    args = build_parser().parse_args(["stats", "x.fa", "--backend", "scipy"])
    assert args.backend == "scipy"
    assert build_parser().parse_args(["stats", "x.fa"]).backend == "auto"
