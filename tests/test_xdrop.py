"""Tests for x-drop alignment (fast LV engine vs exact DP reference)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seqs.dna import encode, revcomp
from repro.align.xdrop import (Scoring, chain_extend, seed_extend_align,
                               xdrop_extend, xdrop_extend_dp)

SC = Scoring()


def test_identical_sequences_full_extension():
    s = encode("ACGTACGTACGTACGT")
    score, ei, ej = xdrop_extend(s, s, SC)
    assert (score, ei, ej) == (16, 16, 16)


def test_empty_inputs():
    s = encode("ACGT")
    assert xdrop_extend(s, encode(""), SC) == (0, 0, 0)
    assert xdrop_extend(encode(""), s, SC) == (0, 0, 0)


def test_single_mismatch_mid():
    s = encode("AAAAAAAAAA")
    t = encode("AAAAACAAAA")
    score, ei, ej = xdrop_extend(s, t, SC)
    assert score == 8  # 9 matches - 1 mismatch
    assert ei == 10 and ej == 10


def test_single_insertion():
    s = encode("AAAATTTT")
    t = encode("AAAAGTTTT")  # one inserted G
    score, ei, ej = xdrop_extend(s, t, SC)
    assert score == 7  # 8 matches - 1 gap
    assert (ei, ej) == (8, 9)


def test_xdrop_stops_on_divergence():
    # After a matching prefix the sequences become unrelated: the reported
    # best must be (approximately) the prefix score.  With the permissive
    # 1/-1/-1 scheme, 25%-identity random DNA sits near the x-drop
    # percolation threshold, so use the stricter penalties (as BLAST does)
    # to assert early termination of the scan.
    rng = np.random.default_rng(0)
    prefix = rng.integers(0, 4, 40).astype(np.uint8)
    s = np.concatenate([prefix, rng.integers(0, 4, 200).astype(np.uint8)])
    t = np.concatenate([prefix, rng.integers(0, 4, 200).astype(np.uint8)])
    sc = Scoring(mismatch=-2, gap=-2, xdrop=20)
    score, ei, ej = xdrop_extend(s, t, sc)
    assert 30 <= score <= 60
    score_dp, ei_dp, _ = xdrop_extend_dp(s, t, sc)
    assert 30 <= score_dp <= 60
    assert ei_dp < 150  # the exact DP band dies in the random tail
    assert ei < 150     # so does the greedy engine


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(0, 6))
def test_property_lv_close_to_exact_dp(seed, n_mut):
    """The greedy engine's score is within a small additive gap of exact DP
    and never exceeds it by more than the gap (both are admissible
    heuristics of the same objective)."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, size=50).astype(np.uint8)
    b = a.copy()
    for _ in range(n_mut):
        p = int(rng.integers(0, 50))
        b[p] = (b[p] + int(rng.integers(1, 4))) % 4
    f = xdrop_extend(a, b, SC)
    d = xdrop_extend_dp(a, b, SC)
    assert abs(f[0] - d[0]) <= 2


def test_seed_extend_align_forward():
    genome = np.random.default_rng(1).integers(0, 4, 500).astype(np.uint8)
    a = genome[0:300]
    b = genome[200:500]
    # Shared k-mer at a[210], which is b[10].
    res = seed_extend_align(a, b, 210, 10, 17, strand=0)
    assert res.score >= 95
    assert res.ba <= 205 and res.ea >= 295
    assert res.bb <= 5 and res.eb >= 95


def test_seed_extend_align_revcomp():
    from repro.seqs.dna import revcomp_codes
    genome = np.random.default_rng(2).integers(0, 4, 400).astype(np.uint8)
    a = genome[0:250]
    b = revcomp_codes(genome[150:400])  # b is the reverse strand
    # Shared 17-mer: a[200:217] == genome[200:217]; within b (forward form)
    # it sits at revcomp position: b_fwd = revcomp(b) = genome[150:400], so
    # the k-mer's position on the *forward* b is 200-150 = 50.
    res = seed_extend_align(a, b, 200, b.shape[0] - 17 - 50, 17, strand=1)
    assert res.strand == 1
    assert res.score >= 90


def test_chain_extend_projects_to_ends():
    res = chain_extend(a_len=300, b_len=300, seed_a=210, seed_b=10, k=17,
                       strand=0)
    assert res.ba == 200 and res.bb == 0
    assert res.ea == 300 and res.eb == 100
    assert res.score > 0


def test_chain_extend_strand_mapping():
    res = chain_extend(a_len=100, b_len=100, seed_a=50,
                       seed_b=100 - 17 - 50, k=17, strand=1)
    # After mapping, the oriented-b seed is at 50 = seed_a: full co-linear.
    assert res.ba == 0 and res.bb == 0
    assert res.ea == 100 and res.eb == 100
