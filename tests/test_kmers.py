"""Unit tests for packed k-mer extraction, revcomp and hashing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.seqs.dna import encode, revcomp
from repro.seqs.kmers import (canonical_kmers, kmer_to_string, pack_kmers,
                              read_kmers, revcomp_kmers, splitmix64,
                              string_to_kmer)

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=120)
ks = st.integers(min_value=1, max_value=31)


def test_pack_kmers_simple():
    codes = encode("ACGT")
    km = pack_kmers(codes, 2)
    assert [kmer_to_string(v, 2) for v in km] == ["AC", "CG", "GT"]


def test_pack_kmers_short_read():
    assert pack_kmers(encode("ACG"), 5).shape == (0,)


def test_pack_matches_string_to_kmer():
    s = "ACGTTGCAAC"
    km = pack_kmers(encode(s), 4)
    for i in range(len(s) - 3):
        assert int(km[i]) == string_to_kmer(s[i:i + 4])


@given(dna_strings, ks)
def test_pack_window_count(s, k):
    km = pack_kmers(encode(s), k)
    assert km.shape[0] == max(0, len(s) - k + 1)


@given(st.text(alphabet="ACGT", min_size=5, max_size=31))
def test_revcomp_kmers_matches_string_revcomp(s):
    k = len(s)
    km = np.array([string_to_kmer(s)], dtype=np.uint64)
    rc = revcomp_kmers(km, k)
    assert kmer_to_string(int(rc[0]), k) == revcomp(s)


@given(st.text(alphabet="ACGT", min_size=3, max_size=31))
def test_revcomp_kmers_involution(s):
    k = len(s)
    km = np.array([string_to_kmer(s)], dtype=np.uint64)
    assert int(revcomp_kmers(revcomp_kmers(km, k), k)[0]) == int(km[0])


@given(st.text(alphabet="ACGT", min_size=3, max_size=31))
def test_canonical_packed_matches_string_canonical(s):
    from repro.seqs.dna import canonical as str_canonical
    k = len(s)
    km = np.array([string_to_kmer(s)], dtype=np.uint64)
    can = canonical_kmers(km, k)
    assert kmer_to_string(int(can[0]), k) == str_canonical(s)


def test_read_kmers_positions():
    km, pos = read_kmers(encode("ACGTAC"), 3, canonical=False)
    assert np.array_equal(pos, np.arange(4))
    assert kmer_to_string(int(km[0]), 3) == "ACG"


def test_read_kmers_canonical_invariant_under_revcomp():
    """A read and its reverse complement share the same canonical k-mer set."""
    s = "ACGTTGCAACCGGTATAT"
    k = 5
    km_f, _ = read_kmers(encode(s), k)
    km_r, _ = read_kmers(encode(revcomp(s)), k)
    assert set(km_f.tolist()) == set(km_r.tolist())


def test_k_bounds():
    with pytest.raises(ValueError):
        pack_kmers(encode("ACGT"), 0)
    with pytest.raises(ValueError):
        pack_kmers(encode("ACGT"), 32)


def test_splitmix64_deterministic_and_spread():
    x = np.arange(1000, dtype=np.uint64)
    h1, h2 = splitmix64(x), splitmix64(x)
    assert np.array_equal(h1, h2)
    assert np.unique(h1).shape[0] == 1000
    # Rough uniformity: destination buckets over 8 ranks all populated.
    buckets = np.bincount((h1 % np.uint64(8)).astype(int), minlength=8)
    assert buckets.min() > 0
