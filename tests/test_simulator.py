"""Unit tests for the CLR read simulator and ground-truth layout."""

import numpy as np
import pytest

from repro.seqs.dna import GenomeSpec, revcomp_codes
from repro.seqs.simulator import (ErrorModel, ReadSimSpec, TrueLayout,
                                  _apply_errors, simulate_reads)


def test_error_model_validation():
    with pytest.raises(ValueError):
        ErrorModel(rate=1.5)
    with pytest.raises(ValueError):
        ErrorModel(rate=0.1, sub_frac=0.5, ins_frac=0.5, del_frac=0.5)


def test_zero_error_reads_match_genome():
    spec = ReadSimSpec(GenomeSpec(length=5000, seed=0), depth=5,
                       mean_len=500, min_len=200,
                       error=ErrorModel(rate=0.0), seed=1)
    genome, reads, layout = simulate_reads(spec)
    for i in range(len(reads)):
        clean = genome[layout.start[i]:layout.end[i]]
        if layout.strand[i]:
            clean = revcomp_codes(clean)
        assert np.array_equal(reads[i], clean)


def test_depth_reached():
    spec = ReadSimSpec(GenomeSpec(length=10_000, seed=0), depth=8,
                       mean_len=600, seed=2)
    genome, reads, layout = simulate_reads(spec)
    # Sampled *clean* interval lengths hit the depth target.
    sampled = int((layout.end - layout.start).sum())
    assert sampled >= 8 * 10_000


def test_both_strands_sampled():
    spec = ReadSimSpec(GenomeSpec(length=10_000, seed=0), depth=10, seed=3)
    _genome, _reads, layout = simulate_reads(spec)
    assert 0 < layout.strand.mean() < 1


def test_apply_errors_rate_scales_length_change():
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 4, size=20_000, dtype=np.uint8)
    model = ErrorModel(rate=0.2, sub_frac=0.0, ins_frac=1.0, del_frac=0.0)
    out = _apply_errors(codes, model, np.random.default_rng(1))
    # Pure insertions: expected +20% length.
    assert out.shape[0] == pytest.approx(24_000, rel=0.05)
    model = ErrorModel(rate=0.2, sub_frac=0.0, ins_frac=0.0, del_frac=1.0)
    out = _apply_errors(codes, model, np.random.default_rng(2))
    assert out.shape[0] == pytest.approx(16_000, rel=0.05)


def test_apply_errors_substitutions_change_bases_only():
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 4, size=10_000, dtype=np.uint8)
    model = ErrorModel(rate=0.1, sub_frac=1.0, ins_frac=0.0, del_frac=0.0)
    out = _apply_errors(codes, model, np.random.default_rng(3))
    assert out.shape[0] == codes.shape[0]
    diff = (out != codes).mean()
    assert diff == pytest.approx(0.1, rel=0.15)


def test_apply_errors_zero_rate_is_identity():
    codes = np.array([0, 1, 2, 3], dtype=np.uint8)
    out = _apply_errors(codes, ErrorModel(rate=0.0),
                        np.random.default_rng(0))
    assert np.array_equal(out, codes)


def test_true_overlap():
    layout = TrueLayout(np.array([0, 50, 200]), np.array([100, 180, 300]),
                        np.array([0, 0, 0]))
    assert layout.true_overlap(0, 1) == 50
    assert layout.true_overlap(0, 2) == 0


def test_overlap_pairs_sweep_matches_bruteforce():
    rng = np.random.default_rng(4)
    starts = rng.integers(0, 1000, size=60)
    lengths = rng.integers(50, 300, size=60)
    layout = TrueLayout(starts.astype(np.int64),
                        (starts + lengths).astype(np.int64),
                        np.zeros(60, dtype=np.int64))
    got = layout.overlap_pairs(min_overlap=40)
    expect = set()
    for i in range(60):
        for j in range(i + 1, 60):
            if layout.true_overlap(i, j) >= 40:
                expect.add((i, j))
    assert got == expect
