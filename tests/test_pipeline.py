"""End-to-end pipeline integration tests."""

import numpy as np
import pytest

from repro import CORI_HASWELL, PipelineConfig, SUMMIT_CPU, run_pipeline, \
    run_pipeline_from_fasta
from repro.core.pipeline import STAGES
from repro.seqs.fasta import write_fasta


def _cfg(P=1, **kw):
    base = dict(k=17, nprocs=P, align_mode="chain", depth_hint=12,
                error_hint=0.0, fuzz=20)
    base.update(kw)
    return PipelineConfig(**base)


@pytest.fixture(scope="module")
def clean_run(clean_dataset):
    _genome, reads, _layout = clean_dataset
    return run_pipeline(reads, _cfg(P=4))


def test_pipeline_produces_string_graph(clean_run):
    res = clean_run
    assert res.nnz_s > 0
    assert res.nnz_s <= res.nnz_r
    assert res.string_graph.n_edges == res.nnz_s


def test_pipeline_densities_ordered(clean_run):
    # c >= r >= s (pruning at every step).
    assert clean_run.c_density >= clean_run.r_density >= clean_run.s_density


def test_pipeline_c_density_near_2d(clean_dataset, clean_run):
    """On a repeat-free genome, c should approach the ideal 2·depth
    (Ellis et al.'s perfect-overlapper bound, Section V-C)."""
    c = clean_run.c_density
    assert 0.8 * 2 * 12 < c < 3.0 * 2 * 12


def test_pipeline_stage_accounting_present(clean_run):
    comp = clean_run.stage_compute()
    for stage in ("CountKmer", "SpGEMM", "Alignment", "TrReduction"):
        assert comp.get(stage, 0) > 0
    comm = clean_run.tracker.summary()
    for stage in ("CountKmer", "SpGEMM", "ExchangeRead", "TrReduction"):
        assert stage in comm


def test_modeled_times_positive_and_orderable(clean_run):
    for machine in (CORI_HASWELL, SUMMIT_CPU):
        t = clean_run.modeled_time(machine)
        assert all(v >= 0 for v in t.values())
        assert clean_run.modeled_total(machine) == pytest.approx(
            sum(t.values()))
    no_align = clean_run.modeled_time(CORI_HASWELL, include_alignment=False)
    assert "Alignment" not in no_align


def test_pipeline_p_invariance(clean_dataset):
    """The string graph is identical for any process-grid size."""
    _genome, reads, _layout = clean_dataset
    edges = []
    for P in (1, 9):
        res = run_pipeline(reads, _cfg(P=P))
        edges.append(res.string_graph.edge_set())
    assert edges[0] == edges[1]


def test_pipeline_from_fasta(tmp_path, clean_dataset):
    _genome, reads, _layout = clean_dataset
    path = tmp_path / "reads.fa"
    write_fasta(path, reads)
    res = run_pipeline_from_fasta(path, _cfg(P=1))
    assert res.timer.stage_seconds.get("ReadFastq", 0) > 0
    assert res.nnz_s > 0


def test_pipeline_noisy_chain(noisy_dataset):
    _genome, reads, _layout = noisy_dataset
    res = run_pipeline(reads, PipelineConfig(
        k=17, nprocs=4, align_mode="chain", depth_hint=12, error_hint=0.05,
        fuzz=150))
    assert res.nnz_s > 0
    assert res.tr_rounds >= 1


def test_kmer_upper_override(clean_dataset):
    _genome, reads, _layout = clean_dataset
    res = run_pipeline(reads, _cfg(P=1, kmer_upper=3))
    res2 = run_pipeline(reads, _cfg(P=1, kmer_upper=40))
    assert res.n_kmers < res2.n_kmers


def test_stage_names_match_paper():
    assert set(STAGES) == {"Alignment", "ReadFastq", "CountKmer",
                           "CreateSpMat", "SpGEMM", "ExchangeRead",
                           "TrReduction"}
