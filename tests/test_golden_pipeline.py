"""Golden end-to-end snapshot suite.

Every PR so far has *claimed* "byte-identical output" along some axis —
backends (PR 1), executors (PR 2), blocked overlap (PR 3), alignment
engines (PR 4), k-mer engines (PR 5).  This suite finally pins the claim
globally: one fixed-seed dataset runs through the full pipeline across the
``executor × overlap-mode × align-impl × kmer-impl`` cross-product, and the
digests of S, R, the contig layout, the communication records, and the
peak-memory marks must all equal the stored golden values.

If a future PR *intentionally* changes pipeline output, it must update the
``GOLDEN`` constants below (the assertion message prints the new digests) —
making every silent behavioral drift a test failure instead of a footnote.

Everything digested is integer-valued and RNG-stream-stable (fixed PCG64
seeds, integer alignment scores, explicit ``kmer_upper`` so no float model
sits on the critical path), so the digests are platform-independent.
"""

import hashlib
import itertools

import numpy as np
import pytest

from repro.core.contigs import extract_contigs
from repro.core.overlap import (align_candidates, build_a_matrix,
                                candidate_overlaps)
from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.dsparse.masked import resolve_spgemm_impl
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.kmer_counter import count_kmers

K = 17
NPROCS = 4
KMER_UPPER = 24

EXECUTORS = [("serial", 1), ("thread", 3), ("process", 2)]
OVERLAP_MODES = ["monolithic", "blocked"]
ALIGN_IMPLS = ["loop", "batch"]
KMER_IMPLS = ["loop", "batch"]

#: Golden digests of the fixed-seed run.  S and the contig layout are
#: invariant across *every* axis; the communication records and peak marks
#: are invariant across executors and engines but legitimately differ
#: between monolithic and blocked candidate formation (blocked runs one
#: SUMMA per strip and holds smaller candidate peaks — that is its point).
#:
#: PR 6 (masked SpGEMM engine) updated only the two ``peaks`` digests:
#: under the now-default masked engine the transitive reduction squares R
#: within R's own pattern, so the recorded ``TrReduction`` live set
#: (R + N) genuinely shrinks (180288 → 93600 bytes here).  Every other
#: digest — S, R, contigs, counts, both trackers, and the ``SpGEMM``
#: peak inside the peaks dicts — is byte-identical to the PR 5 values;
#: ``test_golden_pipeline_esc_engine`` still pins the full pre-PR-6 peaks
#: through the ESC oracle.
GOLDEN = {
    "S": "bce02a9f21bd33e20a0a076940bb08a6c1e628435f6bd9fe8301ea8e43211ad2",
    "R": "50d4eaa5a0aa3dc9fd206419f558d12b2fe60398c87b566fada2cf168afbe93a",
    "contigs": "3c6ae1b223e149e8d8cbd24c9f57923bb7da71a9a125d775575210eb9d80bf6a",
    "counts": (88231, 1334, 1338, 726),  # nnz A, C, R, S
    "tracker": {
        "monolithic":
            "4dbd7670092db728b0f2868a88731a4d34366e051ec330ea6ab0684af4ecf35c",
        "blocked":
            "84581ee8562fb7bbc8c791e1dcdcc6ff3b4f57bca1a78e2f0b2cabe99fae073a",
    },
    "peaks": {
        "monolithic":
            "710cc8a302621b111d4e9087898d7e42bdad01381eaefa2e4df29ae81bec82da",
        "blocked":
            "0caa120861bd85567e14156e31e075a72fc03717fef79215330fc538e5f5bcea",
    },
    # The monolithic/blocked peaks of the ESC (pre-PR-6 default) engine,
    # whose TrReduction live set is the full unmasked N.
    "peaks_esc": {
        "monolithic":
            "8f1c6d1424630f3b0ed71e3f125dd77e3f488c3072400deab3e413934365692d",
        "blocked":
            "a3076683323e2272c31b93bf693cd39c4571d67c31e861a99e3f5f079685ea17",
    },
}


@pytest.fixture(scope="module")
def golden_reads():
    """Fixed-seed error-free dataset (PCG64 streams are version-stable)."""
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=9_000, seed=21), depth=10,
                    mean_len=650, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=22))
    return reads


def _sha(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a, dtype=np.int64)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _sha_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _contig_digest(graph) -> str:
    contigs = extract_contigs(graph)
    # Canonical form: every maximal walk as (reads, orientations) tuples,
    # sorted — independent of extraction order.
    canon = sorted((tuple(c.reads), tuple(c.orientations)) for c in contigs)
    return _sha_text(repr(canon))


def _tracker_digest(tracker) -> str:
    summary = tracker.summary()
    lines = [f"{stage}:{rec['total_bytes']:.0f}:{rec['max_bytes']:.0f}:"
             f"{rec['total_messages']}:{rec['max_messages']}"
             for stage, rec in sorted(summary.items())]
    return _sha_text("|".join(lines))


def _peaks_digest(timer) -> str:
    peaks = timer.peak_bytes()
    return _sha_text(repr(sorted(peaks.items())))


def _config(executor, workers, overlap_mode, align_impl, kmer_impl,
            spgemm_impl="auto"):
    return PipelineConfig(
        k=K, nprocs=NPROCS, align_mode="xdrop", fuzz=60,
        kmer_upper=KMER_UPPER, executor=executor, workers=workers,
        overlap_mode=overlap_mode, n_strips=3 if overlap_mode == "blocked"
        else None, align_impl=align_impl, kmer_impl=kmer_impl,
        spgemm_impl=spgemm_impl)


COMBOS = list(itertools.product(EXECUTORS, OVERLAP_MODES, ALIGN_IMPLS,
                                KMER_IMPLS))


@pytest.mark.parametrize(
    "executor_workers,overlap_mode,align_impl,kmer_impl", COMBOS,
    ids=[f"{e[0]}{e[1]}-{o}-a{a}-k{km}" for e, o, a, km in COMBOS])
def test_golden_pipeline(golden_reads, executor_workers, overlap_mode,
                         align_impl, kmer_impl):
    executor, workers = executor_workers
    result = run_pipeline(golden_reads,
                          _config(executor, workers, overlap_mode,
                                  align_impl, kmer_impl))
    got = {
        "S": _sha(result.S.row, result.S.col, result.S.vals),
        "contigs": _contig_digest(result.string_graph),
        "counts": (result.nnz_a, result.nnz_c, result.nnz_r, result.nnz_s),
        "tracker": _tracker_digest(result.tracker),
        "peaks": _peaks_digest(result.timer),
    }
    # Both SpGEMM engines are golden (the CI matrix pins each); only the
    # TrReduction live-set peak legitimately differs between them.
    peaks_key = "peaks" if resolve_spgemm_impl("auto") == "masked" \
        else "peaks_esc"
    expect = {
        "S": GOLDEN["S"],
        "contigs": GOLDEN["contigs"],
        "counts": GOLDEN["counts"],
        "tracker": GOLDEN["tracker"][overlap_mode],
        "peaks": GOLDEN[peaks_key][overlap_mode],
    }
    assert got == expect, (
        f"golden pipeline drift under executor={executor}/{workers} "
        f"overlap={overlap_mode} align={align_impl} kmer={kmer_impl}.\n"
        f"If this change is intentional, update GOLDEN to:\n{got!r}")


@pytest.mark.parametrize("overlap_mode", OVERLAP_MODES)
def test_golden_pipeline_esc_engine(golden_reads, overlap_mode):
    """The ESC oracle engine still reproduces the full pre-PR-6 goldens,
    including the unmasked TrReduction peak."""
    result = run_pipeline(golden_reads,
                          _config("serial", 1, overlap_mode, "batch",
                                  "batch", spgemm_impl="esc"))
    got = {
        "S": _sha(result.S.row, result.S.col, result.S.vals),
        "contigs": _contig_digest(result.string_graph),
        "counts": (result.nnz_a, result.nnz_c, result.nnz_r, result.nnz_s),
        "tracker": _tracker_digest(result.tracker),
        "peaks": _peaks_digest(result.timer),
    }
    expect = {
        "S": GOLDEN["S"],
        "contigs": GOLDEN["contigs"],
        "counts": GOLDEN["counts"],
        "tracker": GOLDEN["tracker"][overlap_mode],
        "peaks": GOLDEN["peaks_esc"][overlap_mode],
    }
    assert got == expect, (
        f"golden pipeline drift under spgemm_impl=esc "
        f"overlap={overlap_mode}.\nIf intentional, update GOLDEN to:\n"
        f"{got!r}")


@pytest.mark.parametrize("align_impl", ALIGN_IMPLS)
@pytest.mark.parametrize("kmer_impl", KMER_IMPLS)
def test_golden_overlap_r(golden_reads, align_impl, kmer_impl):
    """R itself (not just its cardinality) matches the stored digest for
    every engine combination."""
    comm = SimComm(NPROCS, CommTracker(NPROCS))
    timer = StageTimer()
    table = count_kmers(golden_reads, K, comm, timer, upper=KMER_UPPER,
                        impl=kmer_impl)
    A = build_a_matrix(golden_reads, table, ProcessGrid2D(NPROCS), comm,
                       timer, impl=kmer_impl)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, golden_reads, K, comm, timer, mode="xdrop",
                         fuzz=60, impl=align_impl)
    g = R.to_global()
    got = _sha(g.row, g.col, g.vals)
    assert got == GOLDEN["R"], (
        f"golden R drift under align={align_impl} kmer={kmer_impl}; "
        f"new digest {got}")
