"""Masked SpGEMM engine: kernel parity, dispatch, and pipeline identity.

The contract under test (PR 6): for every shipped semiring, any sparsity
pattern, and any mask pattern, ``spgemm_esc_masked(A, B, sr, mask)`` is
**byte-identical** to ``mask_select(spgemm_esc(A, B, sr), mask)`` — same
coordinates, same int64 values, same entry order — and the mask threads
through every layer (Backend.spgemm, SUMMA, the transitive-reduction
squaring, the full pipeline) without changing a single output byte.  The
only observable differences are performance artifacts: kernel-dispatch
counters and the recorded ``TrReduction`` live-set peak.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.core.semirings import BidirectedMinPlus, PositionsSemiring
from repro.dsparse.backend import get_backend
from repro.dsparse.coomat import CooMat
from repro.dsparse.distmat import DistMat
from repro.dsparse.masked import (DEFAULT_SPGEMM_IMPL, SPGEMM_IMPL_ENV,
                                  SPGEMM_IMPLS, mask_select,
                                  resolve_spgemm_impl, spgemm_esc_masked)
from repro.dsparse.semiring import BoolOr, MinPlus, PlusTimes
from repro.dsparse.spgemm import packed_order, spgemm_esc
from repro.dsparse.summa import summa
from repro.exec import SERIAL, ThreadExecutor
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads

NUMPY = get_backend("numpy")
SCIPY = get_backend("scipy")
AUTO = get_backend("auto")

#: semiring name -> (factory, operand nfields) — same table as
#: tests/test_backends.py, so the masked kernel is pinned against exactly
#: the algebra the pipeline ships.
SEMIRINGS = {
    "plus_times": (PlusTimes, 1),
    "min_plus": (MinPlus, 1),
    "bool_or": (BoolOr, 1),
    "positions": (PositionsSemiring, 2),
    "bidirected_min_plus": (BidirectedMinPlus, 4),
}


def _rand_mat(rng, rows, cols, density, nfields, lo=1, hi=50):
    """Random canonical CooMat with semiring-appropriate value fields."""
    s = sp.random(rows, cols, density=density, format="coo", random_state=rng,
                  data_rvs=lambda n: rng.integers(1, 50, n))
    nnz = s.nnz
    if nfields == 1:
        vals = rng.integers(lo, hi, (nnz, 1))
    elif nfields == 2:   # A-typed: [pos, flip]
        vals = np.stack([rng.integers(0, 500, nnz),
                         rng.integers(0, 2, nnz)], axis=1)
    else:                # R-typed: [suffix, end_i, end_j, olen]
        vals = np.stack([rng.integers(1, 500, nnz),
                         rng.integers(0, 2, nnz),
                         rng.integers(0, 2, nnz),
                         rng.integers(100, 400, nnz)], axis=1)
    return CooMat((rows, cols), s.row.astype(np.int64),
                  s.col.astype(np.int64), vals.astype(np.int64))


def _assert_identical(a: CooMat, b: CooMat):
    assert a.shape == b.shape
    assert a.nfields == b.nfields
    assert np.array_equal(a.row, b.row)
    assert np.array_equal(a.col, b.col)
    assert np.array_equal(a.vals, b.vals)
    assert a.vals.dtype == b.vals.dtype == np.int64


# -- engine resolution ---------------------------------------------------------

def test_resolve_defaults_to_masked(monkeypatch):
    monkeypatch.delenv(SPGEMM_IMPL_ENV, raising=False)
    assert DEFAULT_SPGEMM_IMPL == "masked"
    assert resolve_spgemm_impl(None) == "masked"
    assert resolve_spgemm_impl("auto") == "masked"


def test_resolve_explicit_passthrough():
    for impl in SPGEMM_IMPLS:
        assert resolve_spgemm_impl(impl) == impl


def test_resolve_honors_environment(monkeypatch):
    monkeypatch.setenv(SPGEMM_IMPL_ENV, "esc")
    assert resolve_spgemm_impl("auto") == "esc"
    assert resolve_spgemm_impl(None) == "esc"
    # Explicit names beat the environment.
    assert resolve_spgemm_impl("masked") == "masked"
    # env "auto" (or garbage whitespace) falls back to the default.
    monkeypatch.setenv(SPGEMM_IMPL_ENV, "  AUTO ")
    assert resolve_spgemm_impl("auto") == DEFAULT_SPGEMM_IMPL


def test_resolve_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="unknown spgemm impl"):
        resolve_spgemm_impl("gustavson-masked")
    monkeypatch.setenv(SPGEMM_IMPL_ENV, "bogus")
    with pytest.raises(ValueError, match="unknown spgemm impl"):
        resolve_spgemm_impl("auto")


# -- mask_select ---------------------------------------------------------------

def test_mask_select_basic_and_order_preserving():
    rng = np.random.default_rng(0)
    A = _rand_mat(rng, 20, 20, 0.3, 4)
    mask = _rand_mat(rng, 20, 20, 0.3, 1)
    out = mask_select(A, mask)
    in_mask = np.isin(A.keys(), mask.keys(), assume_unique=True)
    assert out.nnz == int(in_mask.sum())
    _assert_identical(out, A.select(in_mask))


def test_mask_select_shape_mismatch():
    with pytest.raises(ValueError, match="mask shape"):
        mask_select(CooMat.empty((3, 4)), CooMat.empty((4, 3)))


def test_mask_select_empty_cases():
    rng = np.random.default_rng(1)
    A = _rand_mat(rng, 10, 10, 0.3, 1)
    empty = CooMat.empty((10, 10))
    assert mask_select(A, empty).nnz == 0
    assert mask_select(empty, A).nnz == 0
    assert mask_select(A, empty).nfields == A.nfields


# -- masked kernel: byte-identity with compute-then-filter ---------------------

@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 31), st.sampled_from(sorted(SEMIRINGS)),
       st.floats(0.0, 0.3), st.floats(0.0, 0.3), st.floats(0.0, 0.4),
       st.booleans())
def test_property_masked_kernel_identity(seed, semiring_name, da, db,
                                         dmask, negatives):
    """masked ESC ≡ unmasked ESC ∩ mask, for every semiring and pattern."""
    rng = np.random.default_rng(seed)
    cls, nf = SEMIRINGS[semiring_name]
    lo = -5 if negatives else 1
    A = _rand_mat(rng, 17, 23, da, nf, lo=lo)
    B = NUMPY.transpose(A) if semiring_name in ("positions",
                                                "bidirected_min_plus") \
        else _rand_mat(rng, 23, 14, db, nf, lo=lo)
    out_shape = (A.shape[0], B.shape[1])
    mask = _rand_mat(rng, *out_shape, dmask, 1)
    semiring = cls()
    oracle = mask_select(spgemm_esc(A, B, semiring), mask)
    _assert_identical(spgemm_esc_masked(A, B, semiring, mask), oracle)
    # The backend seam agrees too, on every backend.
    for bk in (NUMPY, SCIPY, AUTO):
        _assert_identical(bk.spgemm(A, B, semiring, mask=mask), oracle)


def test_masked_with_full_product_mask_is_unmasked():
    """A mask covering the whole product pattern changes nothing."""
    rng = np.random.default_rng(5)
    A = _rand_mat(rng, 15, 15, 0.25, 2)
    At = NUMPY.transpose(A)
    semiring = PositionsSemiring()
    full = spgemm_esc(A, At, semiring)
    mask = CooMat((15, 15), full.row, full.col,
                  np.ones((full.nnz, 1), dtype=np.int64))
    _assert_identical(spgemm_esc_masked(A, At, semiring, mask), full)


def test_masked_empty_operands_and_mask():
    semiring = PlusTimes()
    rng = np.random.default_rng(6)
    A = _rand_mat(rng, 8, 9, 0.3, 1)
    B = _rand_mat(rng, 9, 7, 0.3, 1)
    empty_mask = CooMat.empty((8, 7))
    out = spgemm_esc_masked(A, B, semiring, empty_mask)
    assert out.nnz == 0 and out.shape == (8, 7)
    mask = _rand_mat(rng, 8, 7, 0.4, 1)
    assert spgemm_esc_masked(CooMat.empty((8, 9)), B, semiring,
                             mask).nnz == 0
    assert spgemm_esc_masked(A, CooMat.empty((9, 7)), semiring,
                             mask).nnz == 0


def test_masked_shape_validation():
    semiring = PlusTimes()
    with pytest.raises(ValueError, match="inner dimensions"):
        spgemm_esc_masked(CooMat.empty((3, 4)), CooMat.empty((5, 3)),
                          semiring, CooMat.empty((3, 3)))
    with pytest.raises(ValueError, match="mask shape"):
        spgemm_esc_masked(CooMat.empty((3, 4)), CooMat.empty((4, 2)),
                          semiring, CooMat.empty((3, 3)))


def test_masked_unpackable_shape_falls_back():
    """Shapes whose coordinates overflow the packed int64 key still give
    the compute-then-filter answer (no silent key wraparound)."""
    rows = 2 ** 40
    cols = 2 ** 40  # rows * cols >> 2**63: packed keys would wrap
    A = CooMat((rows, 8), [0, 5], [1, 3], [[2], [3]])
    B = CooMat((8, cols), [1, 3], [0, 7], [[4], [5]])
    # The mask keeps (0, 0) — one of the two product coordinates — and a
    # coordinate with no product, so the fallback really filters.
    mask = CooMat((rows, cols), [0, 5], [0, 0], [[1], [1]])
    semiring = PlusTimes()
    oracle = mask_select(spgemm_esc(A, B, semiring), mask)
    _assert_identical(spgemm_esc_masked(A, B, semiring, mask), oracle)
    assert oracle.nnz == 1 and oracle.row[0] == 0 and oracle.col[0] == 0


def test_packed_order_overflow_guard_matches_lexsort():
    rng = np.random.default_rng(9)
    rows = rng.integers(0, 2 ** 62, 50)
    cols = rng.integers(0, 2 ** 62, 50)
    huge = (2 ** 62, 2 ** 62)
    order = packed_order(rows, cols, huge)
    assert np.array_equal(order, np.lexsort((cols, rows)))
    # And the packable branch agrees with lexsort on small frames.
    small_r = rng.integers(0, 40, 80)
    small_c = rng.integers(0, 30, 80)
    assert np.array_equal(packed_order(small_r, small_c, (40, 30)),
                          np.lexsort((small_c, small_r)))


# -- reduce truncation (product_reduce_depth) ----------------------------------

def test_positions_declares_truncation_depth():
    """Only the positions semiring opts into the truncated seed pass; the
    MinPlus-style reduces need every product and must stay off it."""
    assert PositionsSemiring.product_reduce_depth == 2
    for cls in (BidirectedMinPlus, PlusTimes, MinPlus, BoolOr):
        assert cls.product_reduce_depth is None


def test_positions_reduce_truncated_matches_reduce():
    """reduce_truncated over clipped groups == reduce over full groups,
    including the count field (true group size) and seed-2 backfill."""
    rng = np.random.default_rng(13)
    semiring = PositionsSemiring()
    counts = np.array([1, 2, 5, 3, 1], dtype=np.int64)
    starts = np.cumsum(counts) - counts
    avals = np.stack([rng.integers(0, 500, int(counts.sum())),
                      rng.integers(0, 2, int(counts.sum()))], axis=1)
    bvals = np.stack([rng.integers(0, 500, int(counts.sum())),
                      rng.integers(0, 2, int(counts.sum()))], axis=1)
    full, valid = semiring.multiply(avals, bvals)
    assert valid is None
    expect = semiring.reduce(full, starts, counts)
    clipped = np.minimum(counts, 2)
    tstarts = np.cumsum(clipped) - clipped
    sel = np.concatenate([np.arange(s, s + c)
                          for s, c in zip(starts, clipped)])
    got = semiring.reduce_truncated(full[sel], tstarts, counts)
    assert np.array_equal(got, expect)


def test_truncation_contract_rejects_validity_masks():
    """A semiring claiming a truncation depth while emitting validity masks
    would silently truncate the wrong products — the kernel refuses."""
    class _Liar(BidirectedMinPlus):
        product_reduce_depth = 2

    rng = np.random.default_rng(14)
    A = _rand_mat(rng, 10, 10, 0.3, 4)
    mask = _rand_mat(rng, 10, 10, 0.5, 1)
    with pytest.raises(ValueError, match="product_reduce_depth"):
        spgemm_esc_masked(A, NUMPY.transpose(A), _Liar(), mask)


# -- backend dispatch paths ----------------------------------------------------

def test_spgemm_with_path_labels():
    rng = np.random.default_rng(11)
    A1 = _rand_mat(rng, 12, 12, 0.25, 1)
    mask1 = _rand_mat(rng, 12, 12, 0.25, 1)
    A2 = _rand_mat(rng, 12, 12, 0.25, 2)
    At2 = NUMPY.transpose(A2)
    mask2 = _rand_mat(rng, 12, 12, 0.25, 1)

    _, path = NUMPY.spgemm_with_path(A1, A1, PlusTimes())
    assert path == "esc"
    _, path = NUMPY.spgemm_with_path(A1, A1, PlusTimes(), mask=mask1)
    assert path == "masked_esc"
    _, path = SCIPY.spgemm_with_path(A1, A1, PlusTimes())
    assert path == "csr"
    _, path = SCIPY.spgemm_with_path(A1, A1, PlusTimes(), mask=mask1)
    assert path == "masked_csr"
    # Multi-field semirings never lower: scipy/auto run the (masked) ESC.
    for bk in (SCIPY, AUTO):
        _, path = bk.spgemm_with_path(A2, At2, PositionsSemiring(),
                                      mask=mask2)
        assert path == "masked_esc"
        _, path = bk.spgemm_with_path(A2, At2, PositionsSemiring())
        assert path == "esc"


# -- masked SUMMA --------------------------------------------------------------

def _rand_dist(rng, shape, density, grid, nfields=1):
    g = _rand_mat(rng, *shape, density, nfields)
    return DistMat.from_coo(shape, grid, g.row, g.col, g.vals), g


@pytest.mark.parametrize("P", [1, 4, 9])
@pytest.mark.parametrize("make_executor",
                         [lambda: SERIAL, lambda: ThreadExecutor(3)],
                         ids=["serial", "thread3"])
def test_summa_masked_matches_filtered(P, make_executor):
    rng = np.random.default_rng(P)
    grid = ProcessGrid2D(P)
    A, GA = _rand_dist(rng, (21, 30), 0.15, grid)
    B, GB = _rand_dist(rng, (30, 13), 0.15, grid)
    mask, gmask = _rand_dist(rng, (21, 13), 0.3, grid)
    comm = SimComm(P, CommTracker(P))
    C = summa(A, B, PlusTimes(), comm, "t", executor=make_executor(),
              mask=mask)
    expect = mask_select(spgemm_esc(GA, GB, PlusTimes()), gmask)
    _assert_identical(C.to_global(), expect)


def test_summa_mask_validation():
    grid = ProcessGrid2D(4)
    rng = np.random.default_rng(3)
    A, _ = _rand_dist(rng, (10, 10), 0.2, grid)
    comm = SimComm(4, CommTracker(4))
    bad_shape, _ = _rand_dist(rng, (10, 9), 0.2, grid)
    with pytest.raises(ValueError, match="mask shape"):
        summa(A, A, PlusTimes(), comm, "t", mask=bad_shape)
    bad_grid, _ = _rand_dist(rng, (10, 10), 0.2, ProcessGrid2D(1))
    with pytest.raises(ValueError, match="process grid"):
        summa(A, A, PlusTimes(), comm, "t", mask=bad_grid)


def test_summa_counts_kernel_paths():
    grid = ProcessGrid2D(4)
    rng = np.random.default_rng(4)
    A, _ = _rand_dist(rng, (16, 16), 0.3, grid)
    mask, _ = _rand_dist(rng, (16, 16), 0.3, grid)
    comm = SimComm(4, CommTracker(4))
    timer = StageTimer()
    summa(A, A, PlusTimes(), comm, "Stage", timer, backend="auto", mask=mask)
    counts = timer.kernel_counts()
    # q=2 SUMMA: 2 stages x 4 block products, every one mask-pruned CSR.
    assert counts == {"Stage": {"masked_csr": 8}}


# -- end-to-end: pipeline output is engine-independent -------------------------

@pytest.fixture(scope="module")
def tiny_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=7_000, seed=31), depth=9,
                    mean_len=600, min_len=300, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=33))
    return reads


@pytest.mark.parametrize("overlap_mode", ["monolithic", "blocked"])
def test_pipeline_byte_identical_across_engines(tiny_reads, overlap_mode):
    results = {}
    for impl in SPGEMM_IMPLS:
        cfg = PipelineConfig(nprocs=4, align_mode="chain", fuzz=20,
                             depth_hint=9, error_hint=0.0,
                             overlap_mode=overlap_mode,
                             n_strips=3 if overlap_mode == "blocked"
                             else None, spgemm_impl=impl)
        results[impl] = run_pipeline(tiny_reads, cfg)
    esc, masked = results["esc"], results["masked"]
    _assert_identical(esc.S, masked.S)
    assert (esc.nnz_a, esc.nnz_c, esc.nnz_r, esc.nnz_s) == \
           (masked.nnz_a, masked.nnz_c, masked.nnz_r, masked.nnz_s)
    assert esc.tr_rounds == masked.tr_rounds
    # Identical communication: the decomposed count product runs on an
    # untracked shadow communicator, so the tracker records match bytewise.
    assert esc.tracker.summary() == masked.tracker.summary()
    # The one intended divergence: the masked TrReduction live set (R + the
    # pattern-pruned N) can only be smaller than the unmasked one.
    peaks_esc = esc.timer.peak_bytes()
    peaks_masked = masked.timer.peak_bytes()
    assert peaks_masked["TrReduction"] < peaks_esc["TrReduction"]
    assert peaks_masked["SpGEMM"] == peaks_esc["SpGEMM"]


def test_pipeline_reports_engine_and_paths(tiny_reads):
    cfg = PipelineConfig(nprocs=4, align_mode="chain", fuzz=20,
                         depth_hint=9, error_hint=0.0, spgemm_impl="masked")
    result = run_pipeline(tiny_reads, cfg)
    assert result.spgemm_impl == "masked"
    paths = result.spgemm_paths
    # The overlap product splits into a native count pass + a masked ESC
    # seed pass; the TR squaring is masked ESC throughout.
    assert set(paths["SpGEMM"]) == {"csr", "masked_esc"}
    assert set(paths["TrReduction"]) == {"masked_esc"}
    esc = run_pipeline(tiny_reads,
                       PipelineConfig(nprocs=4, align_mode="chain", fuzz=20,
                                      depth_hint=9, error_hint=0.0,
                                      spgemm_impl="esc"))
    assert esc.spgemm_impl == "esc"
    assert set(esc.spgemm_paths["SpGEMM"]) == {"esc"}
    assert set(esc.spgemm_paths["TrReduction"]) == {"esc"}


def test_pipeline_rejects_unknown_engine(tiny_reads):
    cfg = PipelineConfig(nprocs=1, spgemm_impl="nope")
    with pytest.raises(ValueError, match="unknown spgemm impl"):
        run_pipeline(tiny_reads, cfg)


def test_cli_exposes_spgemm_flag():
    from repro.cli import build_parser
    args = build_parser().parse_args(["stats", "x.fa",
                                      "--spgemm-impl", "esc"])
    assert args.spgemm_impl == "esc"
    assert build_parser().parse_args(["stats", "x.fa"]).spgemm_impl == "auto"
