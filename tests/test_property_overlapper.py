"""Property-based tests for overlap classification geometry.

Hypothesis places reads on a virtual genome with random positions, lengths
and strands; for every overlapping pair the classifier's output must be
consistent with the geometry: correct containment calls, end attachments
matching the strand/order table, suffix values equal to the coordinate
differences, and — for collinear triples — walk validity through the middle
read.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.align.overlapper import B_END, E_END, classify_overlap
from repro.align.xdrop import AlignmentResult


def _true_alignment(si, li, fi, sj, lj, fj):
    """Exact alignment coordinates for genome-placed reads i and j.

    Read i spans [si, si+li) with strand fi; similarly j.  Returns an
    AlignmentResult in the classifier's convention (coordinates on i and on
    the *oriented* j) or None if they don't overlap.
    """
    lo = max(si, sj)
    hi = min(si + li, sj + lj)
    if hi <= lo:
        return None
    strand = fi ^ fj
    # Region on read i (in i's stored orientation).
    if fi == 0:
        ba, ea = lo - si, hi - si
    else:
        ba, ea = si + li - hi, si + li - lo
    # The aligner orients j to match i's stored orientation, so j* is the
    # genome-forward segment iff fi == 0 — regardless of how j was stored.
    if fi == 0:
        bb, eb = lo - sj, hi - sj
    else:
        bb, eb = sj + lj - hi, sj + lj - lo
    return AlignmentResult(score=hi - lo, ba=ba, ea=ea, bb=bb, eb=eb,
                           strand=strand)


reads_strategy = st.tuples(
    st.integers(0, 500),      # start i
    st.integers(100, 400),    # len i
    st.integers(0, 1),        # strand i
    st.integers(0, 500),      # start j
    st.integers(100, 400),    # len j
    st.integers(0, 1),        # strand j
)


@settings(max_examples=300, deadline=None)
@given(reads_strategy)
def test_classification_matches_geometry(params):
    """Clean geometries (distinct endpoints, gap > fuzz) classify exactly.

    Reverse-strand pairs with tied endpoints leave unalignable 1-bp tips on
    both sides of the joint; those are legitimately 'internal' at small
    fuzz, so the property restricts itself to unambiguous placements.
    """
    si, li, fi, sj, lj, fj = params
    fuzz = 2
    # Require clearly distinct interval endpoints.
    if abs(si - sj) <= fuzz or abs((si + li) - (sj + lj)) <= fuzz:
        return
    aln = _true_alignment(si, li, fi, sj, lj, fj)
    if aln is None:
        return
    oc = classify_overlap(li, lj, aln, fuzz=fuzz)
    i_in_j = si >= sj and si + li <= sj + lj
    j_in_i = sj >= si and sj + lj <= si + li
    if i_in_j:
        assert oc.kind == "contained_i"
    elif j_in_i:
        assert oc.kind == "contained_j"
    else:
        assert oc.kind == "dovetail"
        # The two suffixes are the interval-endpoint differences (one per
        # walk direction), in some order.
        diffs = {abs((sj + lj) - (si + li)), abs(sj - si)}
        assert {int(oc.suffix_ij), int(oc.suffix_ji)} <= diffs


@settings(max_examples=300, deadline=None)
@given(reads_strategy)
def test_dovetail_end_attachments_follow_strand_table(params):
    si, li, fi, sj, lj, fj = params
    aln = _true_alignment(si, li, fi, sj, lj, fj)
    if aln is None:
        return
    oc = classify_overlap(li, lj, aln, fuzz=0)
    if oc.kind != "dovetail":
        return
    # In read i's oriented frame (i is "forward"), "i first" means i's
    # oriented start precedes j*'s: equivalently ba > bb.
    i_first = aln.ba >= aln.bb
    if i_first:
        assert oc.end_i == (E_END if fi == 0 else B_END) or fi == 1
    # Strand relation: same-strand pairs attach opposite end *types* at the
    # two reads; reverse-strand pairs attach the same end type.
    if aln.strand == 0:
        assert oc.end_i != oc.end_j
    else:
        assert oc.end_i == oc.end_j


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 200), st.integers(60, 150), st.integers(0, 1),
       st.integers(30, 90), st.integers(0, 1), st.integers(30, 90),
       st.integers(0, 1))
def test_collinear_triple_walkable(s0, length, f0, gap1, f1, gap2, f2):
    """Three overlapping collinear reads: the classified edges (0,1) and
    (1,2) must form a valid walk through read 1 (opposite attachments)."""
    li = length * 2
    s1 = s0 + gap1
    s2 = s1 + gap2
    # Ensure pairwise overlap.
    if s2 + 10 >= s0 + li:
        return
    placements = [(s0, li, f0), (s1, li, f1), (s2, li, f2)]

    def edge(a, b):
        sa, la, fa = placements[a]
        sb, lb, fb = placements[b]
        aln = _true_alignment(sa, la, fa, sb, lb, fb)
        oc = classify_overlap(la, lb, aln, fuzz=0)
        return oc

    e01 = edge(0, 1)
    e12 = edge(1, 2)
    if e01.kind != "dovetail" or e12.kind != "dovetail":
        return
    # end of edge (0,1) at read 1 is e01.end_j; edge (1,2) leaves read 1
    # via e12.end_i: a genome-collinear chain must attach at opposite ends.
    assert e01.end_j != e12.end_i
