"""Parity suite: the batched SoA k-mer engine vs the dict-loop oracle.

``kmer_impl="batch"`` must be a pure performance axis: the reliable
:class:`~repro.seqs.kmer_counter.KmerTable`, the A matrix, and the
communication records have to be byte-identical to the per-read / per-key
reference for every process count, batch count, multiplicity window,
executor, and adversarial input shape (intra-batch duplicates, canonical
self-complement k-mers, empty ranks, all-unreliable tables).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.overlap import build_a_matrix
from repro.exec import get_executor
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.dna import encode
from repro.seqs.fasta import ReadSet
from repro.seqs.kmer_counter import (KmerTable, count_kmers,
                                     resolve_kmer_impl)
from repro.seqs.kmers import read_kmers, read_kmers_batch

def _readset(arrays):
    return ReadSet([f"r{i}" for i in range(len(arrays))],
                   [np.asarray(a, dtype=np.uint8) for a in arrays])


def _count(reads, impl, *, P=1, batches=1, lower=2, upper=10, executor=None):
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    table = count_kmers(reads, 5, comm, StageTimer(), batches=batches,
                        lower=lower, upper=upper, executor=executor,
                        impl=impl)
    return table, tracker


def _assert_tables_equal(a: KmerTable, b: KmerTable):
    assert np.array_equal(a.kmers, b.kmers)
    assert np.array_equal(a.counts, b.counts)
    assert a.kmers.dtype == b.kmers.dtype
    assert a.counts.dtype == b.counts.dtype


# -- read_kmers_batch vs per-read extraction --------------------------------

@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(st.integers(0, 3), min_size=0, max_size=40),
                min_size=0, max_size=12),
       st.sampled_from([3, 4, 5, 17, 31]),
       st.booleans())
def test_read_kmers_batch_matches_per_read(read_lists, k, canonical):
    reads = _readset(read_lists)
    codes, offsets, lengths = reads.soa()
    km, ridx, pos, flip = read_kmers_batch(codes, offsets, lengths, k,
                                           canonical=canonical)
    exp_km, exp_ridx, exp_pos = [], [], []
    for i in range(len(reads)):
        one_km, one_pos = read_kmers(reads[i], k, canonical=canonical)
        exp_km.append(one_km)
        exp_pos.append(one_pos)
        exp_ridx.append(np.full(one_km.shape[0], i, dtype=np.int64))
    exp_km = np.concatenate(exp_km) if exp_km else np.empty(0, np.uint64)
    assert np.array_equal(km, exp_km)
    assert np.array_equal(ridx, np.concatenate(exp_ridx)
                          if exp_ridx else np.empty(0, np.int64))
    assert np.array_equal(pos, np.concatenate(exp_pos)
                          if exp_pos else np.empty(0, np.int64))
    if canonical:
        fwd = read_kmers_batch(codes, offsets, lengths, k,
                               canonical=False)[0]
        assert np.array_equal(flip, km != fwd)
    else:
        assert not flip.any()


def test_read_kmers_batch_noncontiguous_subset():
    """Arbitrary read subsets (gather path) must match the fast path."""
    rng = np.random.default_rng(7)
    reads = _readset([rng.integers(0, 4, n) for n in (30, 3, 25, 40, 12)])
    codes, offsets, lengths = reads.soa()
    sel = np.array([4, 0, 2])
    km, ridx, pos, _ = read_kmers_batch(codes, offsets[sel], lengths[sel], 5)
    exp = [read_kmers(reads[int(i)], 5)[0] for i in sel]
    assert np.array_equal(km, np.concatenate(exp))
    assert np.array_equal(
        ridx, np.repeat(np.arange(3), [e.shape[0] for e in exp]))


# -- counting parity ---------------------------------------------------------

@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(st.integers(0, 3), min_size=0, max_size=30),
                min_size=1, max_size=10),
       st.integers(1, 4),      # P
       st.integers(1, 3),      # batches
       st.integers(1, 2),      # lower
       st.integers(2, 6))      # upper
def test_count_parity_hypothesis(read_lists, P, batches, lower, upper):
    reads = _readset(read_lists)
    tl, trl = _count(reads, "loop", P=P, batches=batches, lower=lower,
                     upper=upper)
    tb, trb = _count(reads, "batch", P=P, batches=batches, lower=lower,
                     upper=upper)
    _assert_tables_equal(tl, tb)
    assert trl.summary() == trb.summary()


@pytest.mark.parametrize("executor,workers", [("serial", 1), ("thread", 3),
                                              ("process", 2)])
def test_count_parity_across_executors(clean_dataset, executor, workers):
    _genome, reads, _layout = clean_dataset
    sub = reads.subset(np.arange(30))
    ref, _ = _count(sub, "loop", P=4, batches=2, upper=30)
    with get_executor(executor, workers) as ex:
        got, tr = _count(sub, "batch", P=4, batches=2, upper=30,
                         executor=ex)
    _assert_tables_equal(ref, got)


def test_intra_batch_duplicate_keys():
    """A read that is one k-mer repeated floods each round with duplicates."""
    reads = _readset([[0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1],  # ACACAC...
                      [0, 1, 0, 1, 0],
                      [2, 3, 2, 3, 2, 3, 2, 3]])
    for batches in (1, 2, 3):
        tl, _ = _count(reads, "loop", P=2, batches=batches, upper=50)
        tb, _ = _count(reads, "batch", P=2, batches=batches, upper=50)
        _assert_tables_equal(tl, tb)
        assert len(tb) > 0


def test_canonical_self_complement_kmers():
    """Even k admits palindromic k-mers (revcomp == self, flip bit 0)."""
    # ACGT's reverse complement is ACGT.
    pal = encode("ACGT")
    reads = ReadSet(["p1", "p2"], [pal.copy(), pal.copy()])
    for impl in ("loop", "batch"):
        comm = SimComm(1, CommTracker(1))
        table = count_kmers(reads, 4, comm, StageTimer(), upper=10,
                            impl=impl)
        km, _ = read_kmers(pal, 4)
        assert set(km.tolist()) == set(table.kmers.tolist())


def test_empty_ranks():
    """More ranks than distinct k-mers leaves some ranks with no traffic."""
    reads = _readset([[0, 0, 0, 0, 0, 0], [0, 0, 0, 0, 0, 0]])
    for impl in ("loop", "batch"):
        table, _ = _count(reads, impl, P=7, upper=50)
        assert len(table) == 1  # only AAAAA
    tl, _ = _count(reads, "loop", P=7, upper=50)
    tb, _ = _count(reads, "batch", P=7, upper=50)
    _assert_tables_equal(tl, tb)


def test_all_unreliable_tables():
    """Every k-mer outside [lower, upper] → empty table on both engines."""
    rng = np.random.default_rng(3)
    a = rng.integers(0, 4, 40)
    reads = _readset([a, a.copy(), a.copy()])  # every k-mer count 3
    for impl in ("loop", "batch"):
        table, _ = _count(reads, impl, P=2, lower=2, upper=2)
        assert len(table) == 0


def test_multi_batch_matches_single_batch():
    """Regression for the per-batch sorted-key rebuild: batching is a pure
    latency knob, so any round count yields the identical table."""
    rng = np.random.default_rng(9)
    reads = _readset([rng.integers(0, 4, 60) for _ in range(9)])
    for impl in ("loop", "batch"):
        ref, _ = _count(reads, impl, P=3, batches=1, upper=30)
        for batches in (2, 3, 5):
            got, _ = _count(reads, impl, P=3, batches=batches, upper=30)
            _assert_tables_equal(ref, got)


# -- A-matrix parity ---------------------------------------------------------

def _build_a(reads, table, impl, P=4, executor=None):
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    timer = StageTimer()
    A = build_a_matrix(reads, table, ProcessGrid2D(P), comm, timer,
                       executor=executor, impl=impl)
    return A.to_global(), tracker, timer


def test_a_matrix_parity(clean_dataset):
    _genome, reads, _layout = clean_dataset
    sub = reads.subset(np.arange(40))
    comm = SimComm(1, CommTracker(1))
    table = count_kmers(sub, 17, comm, StageTimer(), upper=40)
    ga, tra, tma = _build_a(sub, table, "loop")
    gb, trb, tmb = _build_a(sub, table, "batch")
    assert np.array_equal(ga.row, gb.row)
    assert np.array_equal(ga.col, gb.col)
    assert np.array_equal(ga.vals, gb.vals)
    assert tra.summary() == trb.summary()
    assert tma.peak_bytes() == tmb.peak_bytes()


def test_a_matrix_parity_palindromes_and_executors():
    """Flip bits for self-complement k-mers, under a thread pool too."""
    rng = np.random.default_rng(5)
    base = rng.integers(0, 4, 50)
    reads = _readset([base, base.copy(), np.array([0, 1, 2, 3] * 5)])
    comm = SimComm(1, CommTracker(1))
    table = count_kmers(reads, 4, comm, StageTimer(), upper=100)
    ga, _, _ = _build_a(reads, table, "loop", P=1)
    with get_executor("thread", 2) as ex:
        gb, _, _ = _build_a(reads, table, "batch", P=1, executor=ex)
    assert np.array_equal(ga.row, gb.row)
    assert np.array_equal(ga.col, gb.col)
    assert np.array_equal(ga.vals, gb.vals)


def test_a_matrix_empty_table():
    reads = _readset([[0, 1, 2, 3, 0, 1]])
    table = KmerTable(k=5, kmers=np.empty(0, np.uint64),
                      counts=np.empty(0, np.int64), lower=2, upper=4)
    for impl in ("loop", "batch"):
        g, _, _ = _build_a(reads, table, impl, P=1)
        assert g.nnz == 0


# -- resolver ----------------------------------------------------------------

def test_resolve_kmer_impl(monkeypatch):
    assert resolve_kmer_impl("loop") == "loop"
    assert resolve_kmer_impl("batch") == "batch"
    monkeypatch.delenv("REPRO_KMER_IMPL", raising=False)
    assert resolve_kmer_impl(None) == "batch"
    assert resolve_kmer_impl("auto") == "batch"
    monkeypatch.setenv("REPRO_KMER_IMPL", "loop")
    assert resolve_kmer_impl("auto") == "loop"
    assert resolve_kmer_impl("batch") == "batch"  # explicit beats env
    with pytest.raises(ValueError):
        resolve_kmer_impl("vectorized")
