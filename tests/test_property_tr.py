"""Property-based tests: transitive reduction on random bidirected graphs.

Hypothesis generates random symmetric bidirected overlap graphs (arbitrary
suffixes and end attachments); the distributed matrix reduction must

* always match Myers' sequential reduction (the correctness oracle),
* never create edges,
* be idempotent (a second run removes nothing),
* and be invariant to the process-grid size.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.myers import myers_transitive_reduction
from repro.core.string_graph import StringGraph
from repro.core.transitive_reduction import transitive_reduction
from repro.dsparse.distmat import DistMat
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm


@st.composite
def bidirected_graphs(draw):
    """Random symmetric bidirected graph on up to 12 vertices."""
    n = draw(st.integers(3, 12))
    n_overlaps = draw(st.integers(0, 2 * n))
    edges = {}
    for _ in range(n_overlaps):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i == j or (i, j) in edges or (j, i) in edges:
            continue
        sij = draw(st.integers(1, 60))
        sji = draw(st.integers(1, 60))
        ei = draw(st.integers(0, 1))
        ej = draw(st.integers(0, 1))
        edges[(i, j)] = (sij, ei, ej)
        edges[(j, i)] = (sji, ej, ei)
    if not edges:
        return StringGraph(n, *(np.empty(0, np.int64) for _ in range(5)))
    src = np.array([k[0] for k in edges], dtype=np.int64)
    dst = np.array([k[1] for k in edges], dtype=np.int64)
    suf = np.array([v[0] for v in edges.values()], dtype=np.int64)
    es = np.array([v[1] for v in edges.values()], dtype=np.int64)
    ed = np.array([v[2] for v in edges.values()], dtype=np.int64)
    return StringGraph(n, src, dst, suf, es, ed)


def _reduce(graph: StringGraph, P: int, fuzz: int) -> set:
    mat = graph.to_coomat()
    D = DistMat.from_coo(mat.shape, ProcessGrid2D(P), mat.row, mat.col,
                         mat.vals)
    res = transitive_reduction(D, SimComm(P, CommTracker(P)), fuzz=fuzz)
    return StringGraph.from_coomat(res.S.to_global()).edge_set()


@settings(max_examples=40, deadline=None)
@given(bidirected_graphs(), st.integers(0, 30))
def test_matches_myers_oracle(graph, fuzz):
    ours = _reduce(graph, 1, fuzz)
    oracle = myers_transitive_reduction(graph, fuzz=fuzz).edge_set()
    assert ours == oracle


@settings(max_examples=25, deadline=None)
@given(bidirected_graphs(), st.integers(0, 30))
def test_never_creates_edges_and_idempotent(graph, fuzz):
    once = _reduce(graph, 1, fuzz)
    assert once <= graph.edge_set()
    reduced_graph = graph.subgraph_without(graph.edge_set() - once)
    twice = _reduce(reduced_graph, 1, fuzz)
    assert twice == once


@settings(max_examples=15, deadline=None)
@given(bidirected_graphs(), st.integers(0, 30))
def test_grid_invariance(graph, fuzz):
    assert _reduce(graph, 1, fuzz) == _reduce(graph, 4, fuzz)
