"""Unit tests for the simulated MPI runtime (comm, grid, tracker, machine)."""

import numpy as np
import pytest

from repro.mpisim import (CORI_HASWELL, SUMMIT_CPU, CommTracker,
                          MachineModel, ProcessGrid2D, SimComm, StageTimer,
                          block_bounds, nbytes_of)


# -- nbytes_of --------------------------------------------------------------

def test_nbytes_of_arrays_and_containers():
    a = np.zeros(10, dtype=np.int64)
    assert nbytes_of(a) == 80
    assert nbytes_of([a, a]) == 160
    assert nbytes_of(None) == 0
    assert nbytes_of({"x": a}) == 80
    assert nbytes_of(b"abc") == 3


def test_nbytes_of_bytes_and_str_true_payload():
    # bytes/str are charged their encoded length, not the 8-byte catch-all.
    assert nbytes_of(b"x" * 1000) == 1000
    assert nbytes_of(bytearray(17)) == 17
    assert nbytes_of("hello") == 5
    assert nbytes_of("né") == 3           # UTF-8 multi-byte characters count
    assert nbytes_of("") == 0
    assert nbytes_of(memoryview(np.zeros(4, dtype=np.int32))) == 16
    assert nbytes_of(["ab", b"cd"]) == 4  # containers recurse into them
    assert nbytes_of(object()) == 8       # catch-all is unchanged


def test_nbytes_of_scipy():
    import scipy.sparse as sp
    m = sp.random(50, 50, density=0.1, format="csr")
    expected = m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
    assert nbytes_of(m) == expected


# -- SimComm ------------------------------------------------------------------

def test_alltoallv_moves_data_and_charges_offrank_only():
    tracker = CommTracker(3)
    comm = SimComm(3, tracker)
    send = [[np.full(2, 10 * p + q, dtype=np.int64) for q in range(3)]
            for p in range(3)]
    recv = comm.alltoallv(send, stage="x")
    # recv[q][p] is what p sent to q.
    for p in range(3):
        for q in range(3):
            assert np.array_equal(recv[q][p], send[p][q])
    rec = tracker.records["x"]
    # Each rank sends 2 off-rank payloads of 16 bytes each.
    assert np.allclose(rec.bytes_per_rank, 32.0)
    assert np.allclose(rec.messages_per_rank, 2.0)


def test_alltoallv_empty_payloads_no_messages():
    tracker = CommTracker(2)
    comm = SimComm(2, tracker)
    send = [[np.empty(0, dtype=np.int64) for _ in range(2)] for _ in range(2)]
    comm.alltoallv(send, stage="x")
    assert tracker.records["x"].total_messages == 0


def test_bcast_charges_root():
    tracker = CommTracker(4)
    comm = SimComm(4, tracker)
    out = comm.bcast(np.zeros(4, dtype=np.int64), root=1, stage="b")
    assert len(out) == 4
    rec = tracker.records["b"]
    assert rec.bytes_per_rank[1] == 32 * 3
    assert rec.bytes_per_rank[0] == 0
    assert rec.messages_per_rank[1] == 3


def test_allreduce_reduces_and_charges():
    tracker = CommTracker(4)
    comm = SimComm(4, tracker)
    total = comm.allreduce([1, 2, 3, 4], lambda a, b: a + b, stage="r",
                           item_bytes=8)
    assert total == 10
    assert tracker.records["r"].messages_per_rank.sum() == 4


def test_single_rank_collectives_charge_nothing():
    tracker = CommTracker(1)
    comm = SimComm(1, tracker)
    comm.bcast(np.zeros(10), root=0, stage="s")
    comm.allreduce([5], lambda a, b: a + b, stage="s")
    assert "s" not in tracker.records or \
        tracker.records["s"].total_bytes == 0


def test_sub_communicator_accounting_lands_on_global_ranks():
    tracker = CommTracker(4)
    comm = SimComm(4, tracker)
    sub = comm.sub([2, 3])
    sub.bcast(np.zeros(2, dtype=np.int64), root=0, stage="s")
    rec = tracker.records["s"]
    assert rec.bytes_per_rank[2] == 16  # sub-root = global rank 2
    assert rec.bytes_per_rank[0] == 0


def test_gather_and_allgather():
    tracker = CommTracker(3)
    comm = SimComm(3, tracker)
    vals = [np.full(1, p, dtype=np.int64) for p in range(3)]
    g = comm.gather(vals, root=0, stage="g")
    assert [int(v[0]) for v in g] == [0, 1, 2]
    ag = comm.allgather(vals, stage="ag")
    assert len(ag) == 3 and len(ag[0]) == 3


# -- grid -------------------------------------------------------------------

def test_grid_requires_square():
    with pytest.raises(ValueError):
        ProcessGrid2D(6)


def test_grid_rank_coords_roundtrip():
    g = ProcessGrid2D(9)
    for r in range(9):
        i, j = g.coords_of(r)
        assert g.rank_of(i, j) == r


def test_grid_row_col_ranks():
    g = ProcessGrid2D(4)
    assert g.row_ranks(0) == [0, 1]
    assert g.col_ranks(1) == [1, 3]


def test_block_bounds_balanced():
    b = block_bounds(10, 3)
    assert list(b) == [0, 4, 7, 10]
    assert list(block_bounds(4, 4)) == [0, 1, 2, 3, 4]


def test_owner_of():
    g = ProcessGrid2D(4)
    assert g.owner_of(0, 0, 10, 10) == 0
    assert g.owner_of(9, 9, 10, 10) == 3


# -- tracker / timer -----------------------------------------------------------

def test_tracker_words_and_messages():
    t = CommTracker(2)
    t.record("s", 0, 80, 3)
    t.record("s", 1, 160, 1)
    assert t.words("s") == 20.0  # max bytes per rank / 8
    assert t.messages("s") == 3.0
    assert t.stage_comm_time("s", CORI_HASWELL) == pytest.approx(
        CORI_HASWELL.alpha * 3 + 160 / CORI_HASWELL.beta)


def test_stage_timer_max_over_ranks():
    import time
    timer = StageTimer()
    with timer.superstep("s") as step:
        with step.rank(0):
            time.sleep(0.01)
        with step.rank(1):
            pass
    assert 0.005 < timer.stage_seconds["s"] < 0.5
    assert timer.stage_supersteps["s"] == 1


def test_stage_timer_charge():
    timer = StageTimer()
    with timer.superstep("s") as step:
        step.charge(0, 1.0)
        step.charge(1, 2.0)
    assert timer.stage_seconds["s"] == 2.0


def test_machine_models():
    assert CORI_HASWELL.comm_time(1e9, 0) == pytest.approx(0.1)
    assert SUMMIT_CPU.cores_per_node == 42
    assert CORI_HASWELL.nodes_for(64, ranks_per_node=32) == 2.0
    assert CORI_HASWELL.nodes_for(1) == 1.0


# -- peak-byte accounting and merge (the blocked mode's accounting seam) ----

def test_stage_timer_peak_bytes_max_wins():
    t = StageTimer()
    assert t.peak_bytes() == {}
    t.record_peak_bytes("SpGEMM", 100)
    t.record_peak_bytes("SpGEMM", 40)       # smaller: ignored
    t.record_peak_bytes("SpGEMM", 250)
    t.record_peak_bytes("Alignment", 7)
    assert t.peak_bytes() == {"SpGEMM": 250, "Alignment": 7}


def test_stage_timer_merge():
    a, b = StageTimer(), StageTimer()
    a.add("SpGEMM", 1.0)
    a.record_peak_bytes("SpGEMM", 100)
    a.stage_supersteps["SpGEMM"] += 2
    b.add("SpGEMM", 0.5)
    b.add("Alignment", 2.0)
    b.record_peak_bytes("SpGEMM", 300)
    b.stage_supersteps["SpGEMM"] += 1
    a.merge(b)
    assert a.stage_seconds["SpGEMM"] == pytest.approx(1.5)
    assert a.stage_seconds["Alignment"] == pytest.approx(2.0)
    assert a.stage_supersteps["SpGEMM"] == 3
    assert a.peak_bytes()["SpGEMM"] == 300  # max, not sum


def test_comm_tracker_merge_sums_per_rank():
    a, b = CommTracker(4), CommTracker(4)
    a.record("S", 0, 100, 2)
    b.record("S", 0, 50, 1)
    b.record("S", 3, 10, 1)
    b.record("T", 1, 7, 1)
    a.merge(b)
    assert a.records["S"].bytes_per_rank[0] == 150
    assert a.records["S"].messages_per_rank[0] == 3
    assert a.records["S"].bytes_per_rank[3] == 10
    assert a.records["T"].bytes_per_rank[1] == 7


def test_comm_tracker_merge_rejects_size_mismatch():
    with pytest.raises(ValueError):
        CommTracker(4).merge(CommTracker(9))
