"""Edge-case and failure-injection tests across the stack."""

import io

import numpy as np
import pytest

from repro import PipelineConfig, run_pipeline
from repro.core.overlap import build_a_matrix, candidate_overlaps
from repro.core.string_graph import StringGraph
from repro.dsparse.coomat import CooMat
from repro.dsparse.distmat import DistMat
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.dna import encode
from repro.seqs.fasta import ReadSet, read_fasta
from repro.seqs.kmer_counter import KmerTable, count_kmers


def test_pipeline_rejects_nonsquare_grid():
    reads = ReadSet(["a"], [encode("ACGT" * 30)])
    with pytest.raises(ValueError):
        run_pipeline(reads, PipelineConfig(nprocs=6))


def test_pipeline_single_read():
    reads = ReadSet(["a"], [encode("ACGT" * 100)])
    res = run_pipeline(reads, PipelineConfig(k=17, nprocs=1,
                                             align_mode="chain"))
    assert res.nnz_c == 0 and res.nnz_s == 0
    assert res.tr_rounds <= 1


def test_pipeline_identical_reads_all_contained():
    """Identical reads are mutual near-containments: no dovetail edges."""
    rng = np.random.default_rng(0)
    base = rng.integers(0, 4, 500).astype(np.uint8)
    reads = ReadSet([f"r{i}" for i in range(4)],
                    [base.copy() for _ in range(4)])
    res = run_pipeline(reads, PipelineConfig(
        k=17, nprocs=1, align_mode="chain", kmer_upper=20, fuzz=20))
    assert res.nnz_c > 0      # candidates found
    assert res.nnz_r == 0     # but all classified contained


def test_pipeline_reads_shorter_than_k():
    reads = ReadSet(["tiny1", "tiny2"], [encode("ACGTA"), encode("TTTT")])
    res = run_pipeline(reads, PipelineConfig(k=17, nprocs=1))
    assert res.n_kmers == 0 and res.nnz_s == 0


def test_pipeline_no_overlaps_between_disjoint_genomes():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 4, 800).astype(np.uint8)
    b = rng.integers(0, 4, 800).astype(np.uint8)
    # Two copies each so k-mers pass the singleton filter, but the two
    # groups share nothing.
    reads = ReadSet(["a1", "a2", "b1", "b2"],
                    [a.copy(), a.copy(), b.copy(), b.copy()])
    comm = SimComm(1, CommTracker(1))
    timer = StageTimer()
    table = count_kmers(reads, 17, comm, timer, upper=20)
    A = build_a_matrix(reads, table, ProcessGrid2D(1), comm, timer)
    C = candidate_overlaps(A, comm, timer).to_global()
    pairs = set(zip(C.row.tolist(), C.col.tolist()))
    assert (0, 2) not in pairs and (0, 3) not in pairs
    assert (1, 2) not in pairs and (1, 3) not in pairs


def test_kmer_table_lookup_on_empty_table():
    table = KmerTable(k=17, kmers=np.empty(0, np.uint64),
                      counts=np.empty(0, np.int64), lower=2, upper=4)
    out = table.lookup(np.array([123], dtype=np.uint64))
    assert out[0] == -1


def test_fasta_headers_without_sequences_are_rejected():
    """Empty-bodied records are malformed input, refused by name.

    (They used to parse as zero-length reads: the post-loop
    ``len(seqs) != len(names)`` check was dead code because the empty
    record *was* appended, and zero-length reads then leaked into k-mer
    extraction.)"""
    with pytest.raises(ValueError, match="'only_header'"):
        read_fasta(io.StringIO(">only_header\n>another\nACGT\n"))
    with pytest.raises(ValueError, match="'x'"):
        read_fasta(io.StringIO(">x\n\n"))


def test_string_graph_empty_walk_is_valid():
    g = StringGraph(2, np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty(0, np.int64))
    assert g.is_valid_walk([])


def test_distmat_single_entry_matrix():
    grid = ProcessGrid2D(4)
    D = DistMat.from_coo((5, 5), grid, np.array([4]), np.array([4]),
                         np.array([[7]]))
    assert D.nnz() == 1
    g = D.to_global()
    assert int(g.row[0]) == 4 and int(g.vals[0, 0]) == 7


def test_coomat_zero_by_zero():
    m = CooMat.empty((0, 0))
    assert m.nnz == 0
    assert m.csr_indptr().shape == (1,)


def test_transitive_reduction_two_node_graph_untouched():
    from repro.core.transitive_reduction import transitive_reduction
    g = StringGraph(2, np.array([0, 1]), np.array([1, 0]),
                    np.array([5, 7]), np.array([1, 0]), np.array([0, 1]))
    mat = g.to_coomat()
    D = DistMat.from_coo(mat.shape, ProcessGrid2D(1), mat.row, mat.col,
                         mat.vals)
    res = transitive_reduction(D, SimComm(1, CommTracker(1)), fuzz=1000)
    assert res.S.nnz() == 2  # nothing to reduce without a 2-hop path


def test_pipeline_with_n_bases_in_input():
    rs = read_fasta(io.StringIO(
        ">a\n" + "ACGTN" * 60 + "\n>b\n" + "ACGTN" * 60 + "\n"))
    res = run_pipeline(rs, PipelineConfig(k=17, nprocs=1, kmer_upper=20))
    assert res.n_reads == 2  # no crash; Ns replaced at encode time
