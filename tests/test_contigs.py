"""Tests for contig extraction from string graphs."""

import numpy as np

from repro.core.contigs import extract_contigs
from repro.core.string_graph import StringGraph


def _linear_chain(n):
    """n collinear forward reads: edges i<->i+1 with E->B attachments."""
    src, dst, suf, es, ed = [], [], [], [], []
    for i in range(n - 1):
        src += [i, i + 1]
        dst += [i + 1, i]
        suf += [10, 10]
        es += [1, 0]
        ed += [0, 1]
    return StringGraph(n, np.array(src), np.array(dst), np.array(suf),
                       np.array(es), np.array(ed))


def test_linear_chain_single_contig():
    g = _linear_chain(6)
    contigs = extract_contigs(g)
    assert len(contigs) == 1
    assert sorted(contigs[0].reads) == list(range(6))
    # Reads appear in path order (possibly reversed).
    r = contigs[0].reads
    assert r == list(range(6)) or r == list(range(5, -1, -1))


def test_every_read_in_exactly_one_contig():
    g = _linear_chain(9)
    contigs = extract_contigs(g)
    seen = [r for c in contigs for r in c.reads]
    assert sorted(seen) == list(range(9))


def test_isolated_reads_are_singletons():
    g = StringGraph(4, np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty(0, np.int64))
    contigs = extract_contigs(g)
    assert len(contigs) == 4
    assert all(len(c) == 1 for c in contigs)


def test_branch_stops_walk():
    # Chain 0-1-2 plus a branch 1-3 attached at the same end of 1 as the
    # edge to 2: read 1's E end has two attachments -> walks must stop.
    g = _linear_chain(3)
    src = np.concatenate([g.src, [1, 3]])
    dst = np.concatenate([g.dst, [3, 1]])
    suf = np.concatenate([g.suffix, [10, 10]])
    es = np.concatenate([g.end_src, [1, 0]])
    ed = np.concatenate([g.end_dst, [0, 1]])
    g2 = StringGraph(4, src, dst, suf, es, ed)
    contigs = extract_contigs(g2)
    seen = sorted(r for c in contigs for r in c.reads)
    assert seen == [0, 1, 2, 3]
    # No contig may contain both 2 and 3 (they're on conflicting branches);
    # and every contig must be a valid unbranched walk.
    for c in contigs:
        assert not ({2, 3} <= set(c.reads))


def test_orientation_flip_on_reverse_entry():
    # Two reads overlapping in reverse-complement: 0's E meets 1's E.
    g = StringGraph(2, np.array([0, 1]), np.array([1, 0]),
                    np.array([10, 10]), np.array([1, 1]), np.array([1, 1]))
    contigs = extract_contigs(g)
    assert len(contigs) == 1
    c = contigs[0]
    assert len(c) == 2
    # The second read is traversed reversed (entered at its E end).
    assert c.orientations[0] != c.orientations[1]


def test_pipeline_string_graph_yields_long_contigs(clean_dataset):
    from repro import PipelineConfig, run_pipeline
    _genome, reads, _layout = clean_dataset
    res = run_pipeline(reads, PipelineConfig(
        k=17, nprocs=1, align_mode="chain", depth_hint=12, error_hint=0.0,
        fuzz=20))
    contigs = extract_contigs(res.string_graph)
    # The genome is one molecule: the largest contig should cover a
    # meaningful fraction of the reads.
    largest = max(len(c) for c in contigs)
    assert largest >= max(3, len(reads) // 20)
