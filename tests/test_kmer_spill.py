"""Spillable sorted-run k-mer tables ≡ the resident batch engine.

``table_budget`` must be a pure memory axis: the reliable table (keys AND
counts), the per-rank communication record, and the seeding-scheme
interaction have to be byte-identical to the resident two-pass engine for
every process count, batch count, and executor — the spill engine flushes
sorted ``(key, count)`` runs to disk when a rank's buffered histogram
exceeds its share of the budget and k-way merges them at selection time.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import get_executor
from repro.mpisim import CommTracker, SimComm, StageTimer
from repro.seqs import (ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads)
from repro.seqs.kmer_counter import count_kmers
from repro.seqs.spill import (PAIR_DTYPE, combine_histograms,
                              merge_pair_runs, write_pair_run)


@pytest.fixture(scope="module")
def spill_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=9_000, seed=7), depth=10,
                    mean_len=650, min_len=400, sigma_len=0.2,
                    error=ErrorModel(rate=0.02), seed=9))
    return reads


def _count(reads, *, P=1, batches=1, scheme=None, executor=None,
           table_budget=None, spill_dir=None):
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    table = count_kmers(reads, 17, comm, StageTimer(), batches=batches,
                        lower=2, upper=40, executor=executor,
                        impl="batch", scheme=scheme,
                        table_budget=table_budget, spill_dir=spill_dir)
    return table, tracker


@pytest.mark.parametrize("P", (1, 4))
@pytest.mark.parametrize("batches", (1, 3))
def test_spill_table_byte_identical(spill_reads, tmp_path, P, batches):
    ref, ref_tracker = _count(spill_reads, P=P, batches=batches)
    # 4 KiB budget: far below the table footprint, so every rank spills
    # multiple runs per pass.
    res, res_tracker = _count(spill_reads, P=P, batches=batches,
                              table_budget=4096, spill_dir=str(tmp_path))
    assert np.array_equal(res.kmers, ref.kmers)
    assert np.array_equal(res.counts, ref.counts)
    assert res_tracker.summary() == ref_tracker.summary()


def test_spill_with_syncmer_scheme(spill_reads, tmp_path):
    from repro.seqs.seeding import make_scheme
    scheme = make_scheme("syncmer", 17, w=8)
    ref, ref_tracker = _count(spill_reads, P=4, batches=2, scheme=scheme)
    res, res_tracker = _count(spill_reads, P=4, batches=2, scheme=scheme,
                              table_budget=4096, spill_dir=str(tmp_path))
    assert np.array_equal(res.kmers, ref.kmers)
    assert np.array_equal(res.counts, ref.counts)
    assert res_tracker.summary() == ref_tracker.summary()


def test_spill_with_process_executor(spill_reads, tmp_path):
    ref, ref_tracker = _count(spill_reads, P=4, batches=2)
    with get_executor("process", 2) as ex:
        res, res_tracker = _count(spill_reads, P=4, batches=2, executor=ex,
                                  table_budget=4096,
                                  spill_dir=str(tmp_path))
    assert np.array_equal(res.kmers, ref.kmers)
    assert np.array_equal(res.counts, ref.counts)
    assert res_tracker.summary() == ref_tracker.summary()


def test_spill_dir_left_clean(spill_reads, tmp_path):
    """The spill scratch directory is removed even on success."""
    _count(spill_reads, P=2, table_budget=4096, spill_dir=str(tmp_path))
    assert list(tmp_path.iterdir()) == []


def test_generous_budget_never_spills_but_still_matches(spill_reads):
    ref, ref_tracker = _count(spill_reads, P=2)
    res, res_tracker = _count(spill_reads, P=2, table_budget=1 << 30)
    assert np.array_equal(res.kmers, ref.kmers)
    assert np.array_equal(res.counts, ref.counts)
    assert res_tracker.summary() == ref_tracker.summary()


# -- the merge kernel, property-tested against a dict oracle ------------------

_KEYS = st.integers(min_value=0, max_value=2**64 - 1)


@settings(max_examples=60, deadline=None)
@given(runs=st.lists(st.dictionaries(_KEYS, st.integers(1, 100),
                                     min_size=0, max_size=40),
                     min_size=1, max_size=6),
       chunk_items=st.integers(min_value=1, max_value=16))
def test_merge_pair_runs_matches_dict_oracle(tmp_path_factory, runs,
                                             chunk_items):
    tmp = tmp_path_factory.mktemp("runs")
    oracle = {}
    run_objs = []
    for i, d in enumerate(runs):
        keys = np.sort(np.fromiter(d.keys(), dtype=np.uint64, count=len(d)))
        counts = np.asarray([d[int(k)] for k in keys], dtype=np.int64)
        run_objs.append(write_pair_run(str(tmp / f"run{i}.bin"),
                                       keys, counts))
        for k, v in d.items():
            oracle[k] = oracle.get(k, 0) + v
    got_k, got_c = [], []
    prev_last = None
    for keys, counts in merge_pair_runs(run_objs, chunk_items=chunk_items):
        assert keys.shape == counts.shape and keys.shape[0] > 0
        assert np.all(np.diff(keys.astype(np.uint64)) > 0)
        if prev_last is not None:
            assert int(keys[0]) > prev_last  # strictly increasing ranges
        prev_last = int(keys[-1])
        got_k.extend(int(k) for k in keys)
        got_c.extend(int(c) for c in counts)
    assert dict(zip(got_k, got_c)) == oracle
    assert got_k == sorted(oracle)


def test_combine_histograms_merges_duplicates():
    k1 = np.array([5, 1, 9], dtype=np.uint64)
    c1 = np.array([2, 1, 4], dtype=np.int64)
    k2 = np.array([9, 5], dtype=np.uint64)
    c2 = np.array([1, 10], dtype=np.int64)
    keys, counts = combine_histograms([(k1, c1), (k2, c2)])
    assert keys.tolist() == [1, 5, 9]
    assert counts.tolist() == [1, 12, 5]
    empty_k, empty_c = combine_histograms([])
    assert empty_k.shape == (0,) and empty_c.shape == (0,)


def test_pair_run_round_trip(tmp_path):
    keys = np.array([1, 2, 3], dtype=np.uint64)
    counts = np.array([7, 8, 9], dtype=np.int64)
    run = write_pair_run(str(tmp_path / "r.bin"), keys, counts)
    assert run.n == 3
    k, c = run.read(1, 3)
    assert k.tolist() == [2, 3] and c.tolist() == [8, 9]
    assert PAIR_DTYPE.itemsize == 16
