"""Session-store semantics: copy-on-write versions, commit discipline,
and the version-keyed query cache.
"""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.service import (AssemblyState, QueryCache, ServiceConfig,
                           SessionStore, refresh)

K = 17
NPROCS = 4


@pytest.fixture(scope="module")
def small_reads():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=5_000, seed=3), depth=8,
                    mean_len=600, min_len=350, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=4))
    return reads


def _config() -> ServiceConfig:
    return ServiceConfig(refresh_mode="incremental",
                         pipeline=PipelineConfig(k=K, nprocs=NPROCS,
                                                 kmer_upper=12, fuzz=60))


def test_refresh_is_copy_on_write(small_reads):
    """A refresh never mutates the prior version's snapshot."""
    config = _config()
    half = len(small_reads) // 2
    v1 = refresh(AssemblyState.initial(),
                 small_reads.subset(np.arange(half)), config)
    held = {
        "n_reads": len(v1.reads),
        "hist_keys": v1.hist_keys.copy(),
        "hist_counts": v1.hist_counts.copy(),
        "occ_key": v1.occ_key.copy(),
        "R": (v1.R.row.copy(), v1.R.col.copy(), v1.R.vals.copy()),
        "S": (v1.S.row.copy(), v1.S.col.copy(), v1.S.vals.copy()),
        "contigs": [(tuple(c.reads), tuple(c.orientations))
                    for c in v1.contigs],
    }
    v2 = refresh(v1, small_reads.subset(np.arange(half, len(small_reads))),
                 config)
    assert v2.version == v1.version + 1
    assert len(v2.reads) == len(small_reads)
    # v1 is untouched: same read count, same arrays, same products.
    assert len(v1.reads) == held["n_reads"]
    assert np.array_equal(v1.hist_keys, held["hist_keys"])
    assert np.array_equal(v1.hist_counts, held["hist_counts"])
    assert np.array_equal(v1.occ_key, held["occ_key"])
    for got, want in zip((v1.R.row, v1.R.col, v1.R.vals), held["R"]):
        assert np.array_equal(got, want)
    for got, want in zip((v1.S.row, v1.S.col, v1.S.vals), held["S"]):
        assert np.array_equal(got, want)
    assert [(tuple(c.reads), tuple(c.orientations))
            for c in v1.contigs] == held["contigs"]


def test_store_commit_discipline():
    store = SessionStore()
    assert store.current().version == 0
    from dataclasses import replace
    v1 = replace(AssemblyState.initial(), version=1)
    store.commit(v1)
    assert store.current() is v1
    # Committing the same version again (a racing refresh that started from
    # version 0) is rejected instead of silently dropping a batch.
    with pytest.raises(ValueError, match="stale commit"):
        store.commit(replace(AssemblyState.initial(), version=1))
    with pytest.raises(ValueError, match="stale commit"):
        store.commit(replace(AssemblyState.initial(), version=5))


def test_store_history_retention():
    from dataclasses import replace
    store = SessionStore(keep_versions=3)
    for v in range(1, 6):
        store.commit(replace(AssemblyState.initial(), version=v))
    kept = [s.version for s in store.history()]
    assert kept == [3, 4, 5]
    assert store.current().version == 5


def test_query_cache_lru_and_stats():
    cache = QueryCache(max_entries=2)
    k1 = cache.key("overlaps", {"read": 1}, version=1)
    k2 = cache.key("overlaps", {"read": 2}, version=1)
    k3 = cache.key("contigs", {}, version=1)
    assert cache.get(k1) is None          # miss
    cache.put(k1, "a")
    assert cache.get(k1) == "a"           # hit
    cache.put(k2, "b")
    cache.put(k3, "c")                    # evicts k1 (LRU)
    assert cache.get(k1) is None
    stats = cache.stats()
    assert stats["entries"] == 2
    assert stats["hits"] == 1
    assert stats["misses"] == 2
    assert stats["evictions"] == 1


def test_query_cache_version_invalidation():
    cache = QueryCache()
    old = cache.key("contigs", {}, version=3)
    new = cache.key("contigs", {}, version=4)
    cache.put(old, "stale")
    cache.put(new, "fresh")
    # The stale entry is unreachable under version-4 keys even before the
    # sweep; the sweep just frees its slot.
    assert cache.invalidate_stale(current_version=4) == 1
    assert cache.get(new) == "fresh"
    assert cache.stats()["invalidations"] == 1
    assert cache.stats()["entries"] == 1


def test_query_cache_key_param_order_independent():
    a = QueryCache.key("x", {"p": 1, "q": 2}, 7)
    b = QueryCache.key("x", {"q": 2, "p": 1}, 7)
    assert a == b
