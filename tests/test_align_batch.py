"""Parity suite: batched alignment engine vs per-pair loop vs DP oracle.

The batch engine's contract is *byte identity* with the per-pair reference
for every input — same R entries, same coordinates, same payloads — since
``align_impl`` must be a pure performance axis.  These tests pin that
contract with hypothesis-driven random read sets (both strands, both
alignment modes, boundary seeds) plus the edge cases a lockstep sweep can
get wrong: empty batches, empty extension sides, pairs that all retire in
round 0, and filters that prune everything.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.align.batch import (chain_extend_batch, extend_seeds_xdrop_batch,
                               resolve_align_impl, xdrop_extend_batch)
from repro.align.xdrop import (Scoring, chain_extend, seed_extend_align,
                               xdrop_extend, xdrop_extend_dp)
from repro.core.overlap import AlignmentFilter, align_candidates
from repro.core.semirings import C_NFIELDS
from repro.dsparse.distmat import DistMat
from repro.exec import get_executor
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.fasta import ReadSet

SC = Scoring()
K = 11


# ---------------------------------------------------------------------------
# Low-level kernel: xdrop_extend_batch vs xdrop_extend vs the exact DP.
# ---------------------------------------------------------------------------

def _run_batch_single(s, t, sc=SC):
    codes = np.concatenate([s, t]) if s.size or t.size else \
        np.empty(0, np.uint8)
    one = np.array([1], np.int64)
    best, ei, ej = xdrop_extend_batch(
        codes, np.array([0], np.int64), one, np.array([s.size], np.int64),
        np.array([s.size], np.int64), one.copy(),
        np.array([t.size], np.int64), np.zeros(1, np.int64), sc)
    return int(best[0]), int(ei[0]), int(ej[0])


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(0, 8), st.integers(0, 90))
def test_batch_kernel_matches_serial_lv(seed, n_mut, length):
    """One-problem batch == the 1D LV engine, element for element."""
    rng = np.random.default_rng(seed)
    s = rng.integers(0, 4, size=length).astype(np.uint8)
    t = s.copy()
    for _ in range(n_mut):
        if t.size == 0:
            break
        p = int(rng.integers(0, t.size))
        op = int(rng.integers(0, 3))
        if op == 0:
            t[p] = (t[p] + int(rng.integers(1, 4))) % 4
        elif op == 1:
            t = np.delete(t, p)
        else:
            t = np.insert(t, p, int(rng.integers(0, 4)))
    t = t.astype(np.uint8)
    assert _run_batch_single(s, t) == xdrop_extend(s, t, SC)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2 ** 31), st.integers(0, 6))
def test_batch_kernel_close_to_exact_dp(seed, n_mut):
    """Like the LV engine, the batch sweep is a tight admissible heuristic
    of the exact antidiagonal DP (small additive gap both ways)."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, size=50).astype(np.uint8)
    b = a.copy()
    for _ in range(n_mut):
        p = int(rng.integers(0, 50))
        b[p] = (b[p] + int(rng.integers(1, 4))) % 4
    got = _run_batch_single(a, b)
    ref = xdrop_extend_dp(a, b, SC)
    assert abs(got[0] - ref[0]) <= 2


def test_batch_kernel_empty_sides():
    s = np.array([0, 1, 2, 3], np.uint8)
    empty = np.empty(0, np.uint8)
    assert _run_batch_single(s, empty) == (0, 0, 0)
    assert _run_batch_single(empty, s) == (0, 0, 0)
    assert _run_batch_single(empty, empty) == (0, 0, 0)


def test_batch_kernel_empty_problem_set():
    e = np.empty(0, np.int64)
    best, ei, ej = xdrop_extend_batch(np.empty(0, np.uint8), e, e, e, e, e,
                                      e, e, SC)
    assert best.shape == ei.shape == ej.shape == (0,)


def test_batch_kernel_mixed_lifetimes():
    """Problems retiring at different rounds must not disturb survivors:
    mix round-0 full matches, instant x-drop deaths, and long extensions."""
    rng = np.random.default_rng(5)
    long_a = rng.integers(0, 4, 300).astype(np.uint8)
    long_b = long_a.copy()
    long_b[::31] = (long_b[::31] + 1) % 4  # sparse mutations: long survivor
    probs = [
        (long_a, long_b),
        (long_a[:40], long_a[:40]),                  # round-0 retirement
        (np.zeros(60, np.uint8), np.full(60, 3, np.uint8)),  # instant death
        (long_a[:1], long_b[:1]),
    ]
    bufs, meta = [], []
    off = 0
    for s, t in probs:
        bufs += [s, t]
        meta.append((off, s.size, off + s.size, t.size))
        off += s.size + t.size
    codes = np.concatenate(bufs)
    sb = np.array([m[0] for m in meta], np.int64)
    sl = np.array([m[1] for m in meta], np.int64)
    tb = np.array([m[2] for m in meta], np.int64)
    tl = np.array([m[3] for m in meta], np.int64)
    ones = np.ones(len(probs), np.int64)
    best, ei, ej = xdrop_extend_batch(codes, sb, ones, sl, tb, ones.copy(),
                                      tl, np.zeros(len(probs), np.int64), SC)
    for p, (s, t) in enumerate(probs):
        assert (int(best[p]), int(ei[p]), int(ej[p])) == \
            xdrop_extend(s, t, SC)


# ---------------------------------------------------------------------------
# Seed-level parity: batched seed extension vs seed_extend_align /
# chain_extend, including strand-1 strided views and boundary seeds.
# ---------------------------------------------------------------------------

def _random_readset(rng, n_reads, min_len=K, max_len=120):
    seqs = [rng.integers(0, 4, int(rng.integers(min_len, max_len + 1))
                         ).astype(np.uint8) for _ in range(n_reads)]
    return ReadSet([f"r{i}" for i in range(n_reads)], seqs)


def _soa(reads):
    lengths = reads.lengths
    offsets = np.zeros(len(reads), np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    return np.concatenate(reads.seqs), offsets, lengths


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2 ** 31))
def test_seed_extension_parity_random(seed):
    rng = np.random.default_rng(seed)
    reads = _random_readset(rng, 6)
    codes, offsets, lengths = _soa(reads)
    cases = []
    for _ in range(25):
        i, j = int(rng.integers(0, 6)), int(rng.integers(0, 6))
        pa = int(rng.integers(0, lengths[i] - K + 1))
        pb = int(rng.integers(0, lengths[j] - K + 1))
        cases.append((i, j, pa, pb, int(rng.integers(0, 2))))
    # Boundary seeds: first and last k-mer on both reads, both strands.
    for strand in (0, 1):
        cases.append((0, 1, 0, 0, strand))
        cases.append((0, 1, int(lengths[0]) - K, int(lengths[1]) - K,
                      strand))
    arr = np.array(cases, np.int64)
    gi, gj, pa, pb, strand = arr.T
    got = extend_seeds_xdrop_batch(codes, offsets[gi], lengths[gi],
                                   offsets[gj], lengths[gj], pa, pb, strand,
                                   K, SC)
    chain_got = chain_extend_batch(lengths[gi], lengths[gj], pa, pb, strand,
                                   K)
    for t, (i, j, p_a, p_b, s_) in enumerate(cases):
        ref = seed_extend_align(reads[i], reads[j], p_a, p_b, K, s_, SC)
        assert tuple(int(col[t]) for col in got) == \
            (ref.score, ref.ba, ref.ea, ref.bb, ref.eb)
        cref = chain_extend(int(lengths[i]), int(lengths[j]), p_a, p_b, K,
                            s_)
        assert tuple(int(col[t]) for col in chain_got) == \
            (cref.score, cref.ba, cref.ea, cref.bb, cref.eb)


# ---------------------------------------------------------------------------
# align_candidates parity: impl="loop" vs impl="batch" on synthetic C.
# ---------------------------------------------------------------------------

def _make_candidates(reads, entries, nprocs=4):
    """Build a C-typed DistMat from (i, j, seed1, seed2 | None) tuples."""
    n = len(reads)
    rows, cols, vals = [], [], []
    for i, j, seed1, seed2 in entries:
        v = np.full(C_NFIELDS, -1, np.int64)
        v[0] = 1 if seed2 is None else 2
        v[1:4] = seed1
        if seed2 is not None:
            v[4:7] = seed2
        rows.append(i)
        cols.append(j)
        vals.append(v)
    grid = ProcessGrid2D(nprocs)
    if rows:
        return DistMat.from_coo((n, n), grid, np.array(rows, np.int64),
                                np.array(cols, np.int64), np.vstack(vals))
    return DistMat.empty((n, n), grid, C_NFIELDS)


def _align_both(reads, C, mode="xdrop", filt=None, fuzz=10, executor=None):
    out = []
    for impl in ("loop", "batch"):
        comm = SimComm(C.grid.nprocs, CommTracker(C.grid.nprocs))
        R = align_candidates(C, reads, K, comm, StageTimer(), mode=mode,
                             filt=filt, fuzz=fuzz, executor=executor,
                             impl=impl)
        out.append(R.to_global())
    return out


def _assert_same(gl, gb):
    assert np.array_equal(gl.row, gb.row)
    assert np.array_equal(gl.col, gb.col)
    assert np.array_equal(gl.vals, gb.vals)


def _overlapping_readset(rng, n_reads=8, glen=600, rlen=150):
    """Reads cut from one genome so candidates carry real shared k-mers."""
    genome = rng.integers(0, 4, glen).astype(np.uint8)
    seqs = []
    for _ in range(n_reads):
        start = int(rng.integers(0, glen - rlen))
        s = genome[start:start + rlen].copy()
        mut = rng.random(rlen) < 0.03
        s[mut] = (s[mut] + rng.integers(1, 4, int(mut.sum()))) % 4
        if rng.random() < 0.4:
            s = (np.uint8(3) - s)[::-1].copy()
        seqs.append(s)
    return ReadSet([f"r{i}" for i in range(n_reads)], seqs)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2 ** 31), st.sampled_from(["xdrop", "chain"]))
def test_align_candidates_parity_random(seed, mode):
    rng = np.random.default_rng(seed)
    reads = _overlapping_readset(rng)
    lengths = reads.lengths
    entries = {}
    for _ in range(12):
        i, j = sorted(rng.integers(0, len(reads), 2))
        if i == j:
            continue
        def s():
            return (int(rng.integers(0, lengths[i] - K + 1)),
                    int(rng.integers(0, lengths[j] - K + 1)),
                    int(rng.integers(0, 2)))
        entries[(int(i), int(j))] = (int(i), int(j), s(),
                                     s() if rng.random() < 0.6 else None)
    C = _make_candidates(reads, list(entries.values()))
    filt = AlignmentFilter(min_score=5, min_overlap=20, ratio=0.1)
    gl, gb = _align_both(reads, C, mode=mode, filt=filt, fuzz=30)
    _assert_same(gl, gb)


def test_align_candidates_empty_batch():
    rng = np.random.default_rng(0)
    reads = _random_readset(rng, 4)
    C = _make_candidates(reads, [])
    for mode in ("xdrop", "chain"):
        gl, gb = _align_both(reads, C, mode=mode)
        _assert_same(gl, gb)
        assert gb.nnz == 0
        assert gb.vals.shape == (0, 4)


def test_align_candidates_all_pairs_pruned():
    rng = np.random.default_rng(1)
    reads = _overlapping_readset(rng)
    lengths = reads.lengths
    entries = [(0, 1, (0, 0, 0), None),
               (1, 2, (int(lengths[1]) - K, int(lengths[2]) - K, 1), None)]
    C = _make_candidates(reads, entries)
    filt = AlignmentFilter(min_score=10 ** 6, min_overlap=10 ** 6)
    for mode in ("xdrop", "chain"):
        gl, gb = _align_both(reads, C, mode=mode, filt=filt)
        _assert_same(gl, gb)
        assert gb.nnz == 0


@pytest.mark.parametrize("executor,workers",
                         [("thread", 4), ("process", 4)])
def test_batch_impl_identical_across_executors(executor, workers):
    """Chunked batch tasks reassemble in order on every executor."""
    rng = np.random.default_rng(9)
    reads = _overlapping_readset(rng, n_reads=12)
    lengths = reads.lengths
    entries = {}
    for _ in range(30):
        i, j = sorted(rng.integers(0, len(reads), 2))
        if i == j:
            continue
        entries[(int(i), int(j))] = (
            int(i), int(j),
            (int(rng.integers(0, lengths[i] - K + 1)),
             int(rng.integers(0, lengths[j] - K + 1)),
             int(rng.integers(0, 2))), None)
    C = _make_candidates(reads, list(entries.values()))
    filt = AlignmentFilter(min_score=5, min_overlap=20, ratio=0.1)

    def run(ex):
        comm = SimComm(C.grid.nprocs, CommTracker(C.grid.nprocs))
        with ex:
            R = align_candidates(C, reads, K, comm, StageTimer(),
                                 mode="xdrop", filt=filt, fuzz=30,
                                 executor=ex, impl="batch")
        return R.to_global()

    ref = run(get_executor("serial", 1))
    got = run(get_executor(executor, workers))
    _assert_same(ref, got)


# ---------------------------------------------------------------------------
# Seed dedup: redundant second seeds are skipped with R unchanged.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["xdrop", "chain"])
def test_duplicate_second_seed_leaves_r_unchanged(mode):
    """A second seed equal to the first must yield exactly the R of a
    single-seed entry (the dedup path extends once)."""
    rng = np.random.default_rng(3)
    reads = _overlapping_readset(rng, n_reads=4)
    lengths = reads.lengths
    filt = AlignmentFilter(min_score=5, min_overlap=20, ratio=0.1)
    for strand in (0, 1):
        seed = (int(lengths[0]) // 3, int(lengths[1]) // 3, strand)
        dup = _make_candidates(reads, [(0, 1, seed, seed)])
        single = _make_candidates(reads, [(0, 1, seed, None)])
        for impl in ("loop", "batch"):
            out = []
            for C in (dup, single):
                comm = SimComm(C.grid.nprocs, CommTracker(C.grid.nprocs))
                R = align_candidates(C, reads, K, comm, StageTimer(),
                                     mode=mode, filt=filt, fuzz=30,
                                     impl=impl)
                out.append(R.to_global())
            _assert_same(out[0], out[1])


def test_same_diagonal_second_seed_chain_mode():
    """Chain mode: a second seed on the first's oriented diagonal is
    redundant (the estimate depends only on the diagonal), so R matches the
    single-seed entry; different-diagonal seeds still differ from it."""
    rng = np.random.default_rng(4)
    reads = _overlapping_readset(rng, n_reads=4)
    filt = AlignmentFilter(min_score=5, min_overlap=20, ratio=0.1)

    def r_of(entries):
        C = _make_candidates(reads, entries)
        comm = SimComm(C.grid.nprocs, CommTracker(C.grid.nprocs))
        return align_candidates(C, reads, K, comm, StageTimer(),
                                mode="chain", filt=filt, fuzz=30,
                                impl="batch").to_global()

    seed1 = (30, 10, 0)
    same_diag = (45, 25, 0)       # pa - pb identical -> same diagonal
    ref = r_of([(0, 1, seed1, None)])
    _assert_same(r_of([(0, 1, seed1, same_diag)]), ref)


# ---------------------------------------------------------------------------
# The impl switch.
# ---------------------------------------------------------------------------

def test_resolve_align_impl(monkeypatch):
    monkeypatch.delenv("REPRO_ALIGN_IMPL", raising=False)
    assert resolve_align_impl(None) == "batch"
    assert resolve_align_impl("auto") == "batch"
    assert resolve_align_impl("loop") == "loop"
    assert resolve_align_impl("batch") == "batch"
    monkeypatch.setenv("REPRO_ALIGN_IMPL", "loop")
    assert resolve_align_impl("auto") == "loop"
    assert resolve_align_impl(None) == "loop"
    assert resolve_align_impl("batch") == "batch"  # explicit beats env
    with pytest.raises(ValueError):
        resolve_align_impl("vectorized")
