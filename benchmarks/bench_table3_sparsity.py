"""Table III — experimental sparsity values.

Regenerates the C density ``c``, the overlapper inefficiency ``c/2d`` and
the overlap-matrix density ``r`` for the three (scaled) datasets.  The shape
to hold is the *ordering*: inefficiency grows with genome repetitiveness
(E. coli < C. elegans < H. sapiens — the paper reports 2.4 / 19.7 / 60.4),
and ``r ≤ c`` everywhere since alignment pruning only removes entries.
"""

from repro.eval.experiments import table3_sparsity
from repro.eval.report import format_table


def test_table3_sparsity(benchmark):
    rows = benchmark.pedantic(
        lambda: table3_sparsity(("ecoli_like", "celegans_like",
                                 "hsapiens_like"), nprocs=4),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=["dataset", "depth", "c_density", "inefficiency",
                 "r_density", "s_density"],
        title="Table III: sparsity (c, inefficiency c/2d, r)"))

    by = {r["dataset"]: r for r in rows}
    # Repeat-driven inefficiency ordering (the paper's central observation).
    assert by["E. coli"]["inefficiency"] < by["C. elegans"]["inefficiency"]
    assert by["C. elegans"]["inefficiency"] <= \
        by["H. sapiens"]["inefficiency"] * 1.5
    for r in rows:
        assert r["r_density"] <= r["c_density"]
        assert r["s_density"] <= r["r_density"]
