"""Fault-tolerance overhead and recovery cost.

The resilience layer (PR 9) must be free when unused: with no fault plan
armed, every injection hook is a single module-global ``is None`` test,
and the executors' recovery bookkeeping never runs.  This bench measures
exactly that — the same pipeline run three ways:

* **off** — no plan armed (the production fault-free path);
* **armed** — a plan armed whose clauses never fire (hooks pay the full
  counter-advance cost on every check);
* **faulted** — a plan that kills chunks and blocks mid-run, exercising
  chunk retry and pool respawn end to end.

Gates (medians over ``ROUNDS`` alternating rounds, fixed seeds):

* armed-but-silent overhead stays under ``MAX_OVERHEAD`` (1.05 = the
  <5 % acceptance bar; ``REPRO_BENCH_MAX_RESILIENCE_OVERHEAD`` overrides,
  0 records without gating);
* the faulted run's output digests equal the fault-free run's — recovery
  never trades correctness for availability.

Results land in ``BENCH_resilience.json`` at the repo root.
"""

import hashlib
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.eval.report import format_table
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_resilience.json"

GENOME_LENGTH = 60_000
DEPTH = 10
MEAN_LEN = 1_200
K = 17
NPROCS = 4
WORKERS = 3
ROUNDS = 5

#: Armed-but-silent plan: real sites, counts the run never reaches.
SILENT_SPEC = "exec.chunk:exc@1000000;summa.block:exc@1000000"
#: Recovery workout: a worker exception and a crash on the chunk site plus
#: a block-product exception, all early enough to actually fire.
FAULT_SPEC = "exec.chunk:exc@2;exec.chunk:crash@5;summa.block:exc@3"

#: <5 % fault-free overhead — the PR's acceptance bar.
MAX_OVERHEAD = 1.05

VARIANTS = ("off", "armed", "faulted")
SPECS = {"off": "", "armed": SILENT_SPEC, "faulted": FAULT_SPEC}


def _dataset():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=17), depth=DEPTH,
                    mean_len=MEAN_LEN, min_len=600, sigma_len=0.2,
                    error=ErrorModel(rate=0.02), seed=18))
    reads.soa()
    return reads


def _sha(*arrays) -> str:
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a, dtype=np.int64)
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _run(reads, spec):
    cfg = PipelineConfig(k=K, nprocs=NPROCS, align_mode="chain",
                         depth_hint=DEPTH, error_hint=0.02,
                         executor="thread", workers=WORKERS,
                         fault_plan=spec)
    t0 = time.perf_counter()
    res = run_pipeline(reads, cfg)
    wall = time.perf_counter() - t0
    return wall, {"S": _sha(res.S.row, res.S.col, res.S.vals),
                  "R": _sha(res.R.row, res.R.col, res.R.vals),
                  "counts": (res.nnz_a, res.nnz_c, res.nnz_r, res.nnz_s)}


def test_resilience_overhead(benchmark):
    reads = _dataset()

    def run():
        # Alternate variants within each round so drift (cache warmth,
        # frequency scaling) hits all three equally.
        times = {v: [] for v in VARIANTS}
        digests = {}
        for _ in range(ROUNDS):
            for variant in VARIANTS:
                wall, dig = _run(reads, SPECS[variant])
                times[variant].append(wall)
                digests[variant] = dig
        return times, digests

    times, digests = benchmark.pedantic(run, rounds=1, iterations=1)

    med = {v: statistics.median(times[v]) for v in VARIANTS}
    overhead = med["armed"] / med["off"]
    recovery_cost = med["faulted"] / med["off"]

    rows = [{"variant": v, "spec": SPECS[v] or "(none)",
             "median s": f"{med[v]:.3f}",
             "vs off": f"{med[v] / med['off']:.3f}x"} for v in VARIANTS]
    print()
    print(format_table(rows, title=(
        f"Resilience overhead ({len(reads)} reads, thread x{WORKERS}, "
        f"{ROUNDS} rounds)")))
    print(f"armed-but-silent overhead {overhead:.3f}x, "
          f"recovery cost {recovery_cost:.3f}x")

    record = {
        "bench": "resilience",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "mean_len": MEAN_LEN, "n_reads": len(reads), "k": K,
                    "nprocs": NPROCS, "workers": WORKERS,
                    "rounds": ROUNDS},
        "specs": SPECS,
        "median_seconds": {v: round(med[v], 4) for v in VARIANTS},
        "armed_overhead": round(overhead, 4),
        "recovery_cost": round(recovery_cost, 4),
        "faulted_matches_off": digests["faulted"] == digests["off"],
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name}")

    # Correctness is never gated off: recovery must be byte-identical.
    assert digests["armed"] == digests["off"]
    assert digests["faulted"] == digests["off"], (
        "recovered run's output drifted from the fault-free run")

    max_overhead = float(os.environ.get(
        "REPRO_BENCH_MAX_RESILIENCE_OVERHEAD", str(MAX_OVERHEAD)))
    if max_overhead > 0.0:
        assert overhead <= max_overhead, (
            f"armed-but-silent fault hooks cost {overhead:.3f}x "
            f"(gate {max_overhead}x) on the fault-free path")
