"""Accuracy evaluation — overlap recall/precision and layout quality.

The paper defers accuracy to the BELLA paper ("the accuracy of our tool for
CLR input is reported in the single node BELLA paper", Section VI).  With
simulated reads the ground truth is available, so this bench scores the
pipeline directly: recall/precision of the overlap graph against true
overlapping pairs, and contiguity/misjoin statistics of the final layout.
Expected shapes: recall > 0.9 on the dovetail-proper pairs, zero misjoins
on the contig walks.

The second test scores the sketched seeding modes (minimizer / syncmer,
``--seed-mode``) against the full-k oracle on the same reads — recall of
full-k's correctly-detected true overlaps, contig N50, genome coverage,
misjoins — and records the per-mode rows in ``BENCH_accuracy.json`` at
the repo root.  Two error regimes on purpose: at ``toy``'s 2% error,
true overlaps share long exact runs and sketching is nearly lossless; at
``ecoli_like``'s 13% CLR-style error, shared k-mers are scattered
singletons and sketching pays a real recall tax — the regime dependence
the seeding layer exists to expose (the hard nnz/recall gates live in
``bench_seed_mode.py`` on a low-error dataset).
"""

import json
import math
from pathlib import Path

from repro.eval.experiments import accuracy_table, seed_mode_table
from repro.eval.report import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_accuracy.json"


def test_accuracy(benchmark):
    rows = benchmark.pedantic(
        lambda: accuracy_table(("toy", "ecoli_like")),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=["dataset", "recall", "precision", "contig_n50_bp",
                 "genome_coverage", "misjoins"],
        title="Accuracy: overlap detection + layout vs ground truth"))
    for r in rows:
        assert r["recall"] > 0.6       # dovetail-only graph vs all pairs
        assert r["precision"] > 0.7
        assert r["genome_coverage"] > 0.5


#: Per-dataset floor on sketched recall of full-k's true overlaps: near
#: lossless at 2% error, a real but bounded tax at 13% CLR error.
SEED_RECALL_FLOORS = {"toy": 0.9, "ecoli_like": 0.6}


def test_seed_mode_accuracy(benchmark):
    def run():
        return {name: seed_mode_table(name, seed_w=8)
                for name in SEED_RECALL_FLOORS}

    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    all_rows = []
    for name, rows in tables.items():
        print()
        print(format_table(
            rows,
            columns=["seed_mode", "seed_w", "nnz_a", "nnz_c",
                     "recall_truth", "recall_vs_full", "contig_n50_bp",
                     "genome_coverage", "misjoins"],
            title=f"Seeding modes vs full-k oracle ({name}, w=8)"))
        all_rows.extend(rows)

        by_mode = {r["seed_mode"]: r for r in rows}
        full = by_mode["full"]
        assert math.isclose(full["recall_vs_full"], 1.0)
        for mode in ("minimizer", "syncmer"):
            r = by_mode[mode]
            # Sketching must shrink the seed and candidate matrices...
            assert r["nnz_a"] < full["nnz_a"]
            assert r["nnz_c"] <= full["nnz_c"]
            # ...while keeping the oracle's true overlaps within the
            # regime's floor and the layout usable.
            assert r["recall_vs_full"] > SEED_RECALL_FLOORS[name]
            assert r["genome_coverage"] > 0.5

    record = {
        "bench": "seed_mode_accuracy",
        "seed_w": 8,
        "rows": [{k: (None if isinstance(v, float) and math.isnan(v)
                      else v) for k, v in r.items()} for r in all_rows],
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name} ({len(all_rows)} seed-mode rows)")
