"""Accuracy evaluation — overlap recall/precision and layout quality.

The paper defers accuracy to the BELLA paper ("the accuracy of our tool for
CLR input is reported in the single node BELLA paper", Section VI).  With
simulated reads the ground truth is available, so this bench scores the
pipeline directly: recall/precision of the overlap graph against true
overlapping pairs, and contiguity/misjoin statistics of the final layout.
Expected shapes: recall > 0.9 on the dovetail-proper pairs, zero misjoins
on the contig walks.
"""

from repro.eval.experiments import accuracy_table
from repro.eval.report import format_table


def test_accuracy(benchmark):
    rows = benchmark.pedantic(
        lambda: accuracy_table(("toy", "ecoli_like")),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=["dataset", "recall", "precision", "contig_n50_bp",
                 "genome_coverage", "misjoins"],
        title="Accuracy: overlap detection + layout vs ground truth"))
    for r in rows:
        assert r["recall"] > 0.6       # dovetail-only graph vs all pairs
        assert r["precision"] > 0.7
        assert r["genome_coverage"] > 0.5
