"""Overlap product + transitive reduction: masked engine vs ESC reference.

With the k-mer and alignment stages batched (PRs 4–5), the semiring SpGEMMs
became the dominant serial cost: the monolithic ESC overlap product expands
every elementary k-mer pairing, materializes a 7-field positions value for
each, and sorts the full product — diagonal and lower triangle included —
only to throw half of it away in the triangle prune; the transitive
reduction squares R into the full two-hop matrix although the mask step
only ever reads N at R's own nonzeros.

The masked engine (PR 6) decomposes the overlap product into a native CSR
count pass plus a mask-pruned, reduce-truncated ESC seed pass restricted to
the strict upper triangle, and squares R under R's own pattern.

This micro-benchmark isolates the two stages on an overlap-heavy dataset
(deep coverage, error-free so every shared k-mer survives — the shape that
maximizes elementary products per output nonzero), times
``candidate_overlaps`` + ``transitive_reduction`` under both engines,
asserts the byte-identity contract (the full C and S matrices and the
round count), and writes ``BENCH_spgemm.json`` at the repo root for the
cross-PR perf record.

Acceptance gate: the masked engine must be ≥ ``MIN_SPGEMM_SPEEDUP``× faster
serially on the combined two stages (best-of-``ROUNDS`` per engine, one
core, so the gate holds on any host); ``REPRO_BENCH_MIN_SPGEMM_SPEEDUP``
overrides the threshold (``0`` records without gating).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.overlap import (align_candidates, build_a_matrix,
                                candidate_overlaps)
from repro.core.transitive_reduction import transitive_reduction
from repro.eval.report import format_table
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.kmer_counter import count_kmers, reliable_upper_bound

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_spgemm.json"

#: Overlap-heavy dataset: deep error-free coverage of a small genome packs
#: many reads onto every locus, so each reliable k-mer column is near its
#: occurrence cap and the ESC expansion per output nonzero is maximal.
GENOME_LENGTH = 40_000
DEPTH = 30
MEAN_LEN = 800
MIN_LEN = 400
ERROR_RATE = 0.0
K = 17
NPROCS = 4
TR_FUZZ = 150

#: Timed rounds per engine (best-of to shed scheduler noise).
ROUNDS = 2

#: The PR's acceptance gate: masked vs esc, serial, 1 core.
MIN_SPGEMM_SPEEDUP = 3.0


def _prepare():
    """Simulate reads and build A + R once — shared, untimed setup."""
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=42),
                    depth=DEPTH, mean_len=MEAN_LEN, min_len=MIN_LEN,
                    error=ErrorModel(rate=ERROR_RATE), seed=1))
    reads.soa()
    comm = SimComm(NPROCS, CommTracker(NPROCS))
    timer = StageTimer()
    table = count_kmers(reads, K, comm, timer,
                        upper=reliable_upper_bound(DEPTH, ERROR_RATE, K))
    A = build_a_matrix(reads, table, ProcessGrid2D(NPROCS), comm, timer)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, K, comm, timer, mode="chain",
                         fuzz=TR_FUZZ)
    return reads, A, R


def _run_stages(A, R, impl):
    comm = SimComm(NPROCS, CommTracker(NPROCS))
    timer = StageTimer()
    t0 = time.perf_counter()
    C = candidate_overlaps(A, comm, timer, spgemm_impl=impl)
    t_overlap = time.perf_counter()
    tr = transitive_reduction(R, comm, timer, fuzz=TR_FUZZ,
                              spgemm_impl=impl)
    t_tr = time.perf_counter()
    return (t_overlap - t0, t_tr - t_overlap), C.to_global(), \
        tr.S.to_global(), tr.rounds


def test_spgemm_masked_speedup(benchmark):
    reads, A, R = _prepare()

    def run():
        walls: dict[str, tuple[float, float]] = {}
        results: dict[str, tuple] = {}
        for _r in range(ROUNDS):
            for impl in ("esc", "masked"):
                secs, g_c, g_s, rounds = _run_stages(A, R, impl)
                prev = walls.get(impl)
                if prev is None or sum(secs) < sum(prev):
                    walls[impl] = secs
                results[impl] = (g_c, g_s, rounds)
        return walls, results

    walls, results = benchmark.pedantic(run, rounds=1, iterations=1)

    c_e, s_e, rounds_e = results["esc"]
    c_m, s_m, rounds_m = results["masked"]
    identical = (np.array_equal(c_e.row, c_m.row) and
                 np.array_equal(c_e.col, c_m.col) and
                 np.array_equal(c_e.vals, c_m.vals) and
                 np.array_equal(s_e.row, s_m.row) and
                 np.array_equal(s_e.col, s_m.col) and
                 np.array_equal(s_e.vals, s_m.vals) and
                 rounds_e == rounds_m)
    assert identical, "masked SpGEMM engine diverged from the ESC oracle"

    total = {impl: sum(walls[impl]) for impl in ("esc", "masked")}
    speedup = total["esc"] / max(total["masked"], 1e-9)
    rows = [{
        "stage": stage,
        "esc (s)": f"{walls['esc'][i]:.2f}",
        "masked (s)": f"{walls['masked'][i]:.2f}",
        "speedup": f"{walls['esc'][i] / max(walls['masked'][i], 1e-9):.2f}x",
    } for i, stage in enumerate(("SpGEMM", "TrReduction"))]
    rows.append({"stage": "total", "esc (s)": f"{total['esc']:.2f}",
                 "masked (s)": f"{total['masked']:.2f}",
                 "speedup": f"{speedup:.2f}x"})
    print(format_table(rows, title=(
        f"Overlap product + TR: esc vs masked engine ({len(reads)} reads, "
        f"nnz(A)={A.nnz()}, nnz(C)={c_m.nnz}, nnz(R)={R.nnz()}, "
        f"nnz(S)={s_m.nnz}, serial)")))

    record = {
        "bench": "spgemm_tr",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "mean_len": MEAN_LEN, "min_len": MIN_LEN,
                    "error_rate": ERROR_RATE, "n_reads": len(reads),
                    "k": K, "nprocs": NPROCS, "tr_fuzz": TR_FUZZ,
                    "nnz_a": int(A.nnz()), "nnz_c": int(c_m.nnz),
                    "nnz_r": int(R.nnz()), "nnz_s": int(s_m.nnz),
                    "tr_rounds": int(rounds_m)},
        "spgemm": {"esc_seconds": round(walls["esc"][0], 4),
                   "masked_seconds": round(walls["masked"][0], 4)},
        "tr_reduction": {"esc_seconds": round(walls["esc"][1], 4),
                         "masked_seconds": round(walls["masked"][1], 4)},
        "total": {"esc_seconds": round(total["esc"], 4),
                  "masked_seconds": round(total["masked"], 4),
                  "speedup": round(speedup, 3)},
        "identical_to_esc": True,
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name} (SpGEMM+TrReduction speedup "
          f"{speedup:.2f}x)")

    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPGEMM_SPEEDUP",
                                       str(MIN_SPGEMM_SPEEDUP)))
    if min_speedup > 0.0:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x SpGEMM+TrReduction speedup "
            f"(masked vs esc, serial), measured {speedup:.2f}x")
