"""Out-of-core acceptance gate: bounded RSS under a memory budget.

The PR's contract, measured end to end in fresh interpreter processes:
with ``read_store="mmap"`` and a ``memory_budget`` several times smaller
than the dataset (read bases + k-mer table), the pipeline

* completes **byte-identically** to the in-memory run (S digest and the
  communication-tracker summary digest match), and
* keeps its peak RSS within ``budget + SLACK`` of an import-only python
  baseline — the bases live in page cache behind ``np.memmap``, spilled
  k-mer runs live on disk, and the candidate matrix is strip-mined.

Each measurement runs in a subprocess (``--child``) so ``ru_maxrss`` —
a high-water mark, unresettable within a process — reflects exactly one
configuration.  The slack covers the python/numpy runtime beyond the
baseline plus transient per-strip working arrays; override with
``REPRO_BENCH_OUTOFCORE_SLACK`` (bytes) on hosts with unusual allocators.

Results are merged into ``BENCH_pipeline.json`` under ``"outofcore"``.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
JSON_PATH = REPO_ROOT / "BENCH_pipeline.json"

#: Dataset: ~2.9 MiB of bases + a k-mer table, several times the budget.
GENOME_LENGTH = 480_000
DEPTH = 6
MEAN_LEN = 2_000
ERROR_RATE = 0.02

BUDGET = 1 << 20  # 1 MiB

#: RSS allowance over the import-only baseline: interpreter growth from
#: the extra imports, numpy scratch, and per-superstep transients.
DEFAULT_SLACK = 256 << 20


def _slack() -> int:
    return int(os.environ.get("REPRO_BENCH_OUTOFCORE_SLACK", DEFAULT_SLACK))


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    # The child measures the *configured* store/budget path only.
    for var in ("REPRO_READ_STORE", "REPRO_STORE_DIR", "REPRO_OVERLAP_MODE"):
        env.pop(var, None)
    return env


def _run_child(mode: str, fasta: str, workdir: str) -> dict:
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", mode,
         fasta, workdir],
        capture_output=True, text=True, env=_child_env(), timeout=1800)
    assert proc.returncode == 0, \
        f"child {mode} failed:\n{proc.stdout}\n{proc.stderr}"
    return json.loads(proc.stdout.splitlines()[-1])


def _child_main(mode: str, fasta: str, workdir: str) -> None:
    import resource

    def rss() -> int:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

    if mode == "baseline":
        # Import everything the measured children import, run nothing:
        # the RSS floor of the python + numpy + repro runtime itself.
        from repro.core.pipeline import (PipelineConfig,  # noqa: F401
                                         run_pipeline_from_fasta)
        print(json.dumps({"mode": mode, "peak_rss": rss()}))
        return

    from repro.core.pipeline import PipelineConfig, run_pipeline_from_fasta
    cfg = PipelineConfig(k=17, nprocs=4, align_mode="chain",
                         depth_hint=DEPTH, error_hint=ERROR_RATE, fuzz=30,
                         kmer_batches=8, kmer_upper=24,
                         seed_mode="syncmer", seed_w=8,
                         overlap_mode="blocked", memory_budget=BUDGET,
                         read_store=mode, store_dir=workdir)
    result = run_pipeline_from_fasta(fasta, cfg)
    h = hashlib.sha256()
    for arr in (result.S.row, result.S.col, result.S.vals):
        h.update(arr.tobytes())
    tracker = hashlib.sha256(json.dumps(
        result.tracker.summary(), sort_keys=True).encode()).hexdigest()
    print(json.dumps({
        "mode": mode, "peak_rss": rss(),
        "s_digest": h.hexdigest(), "tracker_digest": tracker,
        "n_reads": result.n_reads, "n_kmers": result.n_kmers,
        "nnz_s": result.nnz_s, "n_strips": result.n_strips,
        "read_store": result.read_store,
    }))


def test_outofcore_bounded_rss_and_identity(tmp_path):
    from repro.eval.report import format_table
    from repro.seqs import (ErrorModel, GenomeSpec, ReadSimSpec,
                            simulate_reads, write_fasta)

    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=17), depth=DEPTH,
                    mean_len=MEAN_LEN, min_len=800,
                    error=ErrorModel(rate=ERROR_RATE), seed=23))
    fasta = str(tmp_path / "reads.fa")
    write_fasta(fasta, reads)
    total_bases = int(reads.total_bases())

    baseline = _run_child("baseline", fasta, str(tmp_path / "b"))
    inmem = _run_child("inmem", fasta, str(tmp_path / "inmem"))
    mmap = _run_child("mmap", fasta, str(tmp_path / "mmap"))

    # The dataset genuinely exceeds the budget (bases alone, and again
    # with the 16-byte-per-entry k-mer pairs on top).
    dataset_bytes = total_bases + mmap["n_kmers"] * 16
    assert dataset_bytes > 3 * BUDGET, \
        f"dataset {dataset_bytes} B does not exceed budget {BUDGET} B"

    # Byte-identity across backends: same S, same communication record.
    assert mmap["s_digest"] == inmem["s_digest"]
    assert mmap["tracker_digest"] == inmem["tracker_digest"]
    assert mmap["read_store"] == "mmap" and inmem["read_store"] == "inmem"
    assert mmap["n_strips"] > 1  # the budget actually drove strip-mining

    # The RSS gate: the mmap run's growth over the import-only baseline
    # stays within budget + slack.
    delta = mmap["peak_rss"] - baseline["peak_rss"]
    limit = BUDGET + _slack()
    assert delta <= limit, \
        (f"mmap run RSS delta {delta >> 20} MiB exceeds budget+slack "
         f"{limit >> 20} MiB")

    rows = [{"run": m["mode"],
             "peak RSS (MiB)": f"{m['peak_rss'] >> 20}",
             "delta vs baseline (MiB)":
                 f"{(m['peak_rss'] - baseline['peak_rss']) >> 20}"}
            for m in (baseline, inmem, mmap)]
    print(format_table(rows, title=(
        f"Out-of-core pipeline RSS ({len(reads)} reads, "
        f"{total_bases >> 20} MiB bases, budget {BUDGET >> 20} MiB, "
        f"slack {_slack() >> 20} MiB)")))
    print(f"byte-identical S + tracker across backends: yes "
          f"({mmap['nnz_s']} string edges, {mmap['n_strips']} strips)")

    record = {
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "mean_len": MEAN_LEN, "error_rate": ERROR_RATE,
                    "n_reads": len(reads), "total_bases": total_bases,
                    "n_kmers": mmap["n_kmers"]},
        "budget_bytes": BUDGET,
        "slack_bytes": _slack(),
        "baseline_rss": baseline["peak_rss"],
        "inmem_rss": inmem["peak_rss"],
        "mmap_rss": mmap["peak_rss"],
        "mmap_rss_delta": delta,
        "identical": True,
        "n_strips": mmap["n_strips"],
    }
    data = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else {}
    data["outofcore"] = record
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")


if __name__ == "__main__":
    if len(sys.argv) == 5 and sys.argv[1] == "--child":
        _child_main(sys.argv[2], sys.argv[3], sys.argv[4])
    else:  # pragma: no cover
        sys.exit("run via pytest, or --child <mode> <fasta> <workdir>")
