"""Figs. 5–8 — runtime breakdown per pipeline stage.

Regenerates the stacked-bar data: per-stage modeled seconds for each process
count, per machine model and dataset, with and without the alignment layer
(the paper shows both because alignment dominates).  Paper shapes: SpGEMM is
the largest non-alignment stage; CreateSpMat is negligible; every stage
shrinks as P grows except the (comm-bound) exchanges, which flatten.
"""

from repro.eval.experiments import fig5to8_breakdown, pipeline_for_preset
from repro.eval.report import format_table
from repro.mpisim.machine import MACHINES

PROCS = (4, 16, 36)


def _run(dataset: str, machine: str, fig: str):
    rows = fig5to8_breakdown(dataset, procs=PROCS, machine_name=machine)
    print()
    print(format_table(
        rows, columns=["dataset", "machine", "P", "stage", "seconds"],
        title=f"Fig. {fig}: runtime breakdown ({dataset} on {machine})"))
    # Also print the no-alignment view (the right-hand plots of Figs. 5–8).
    noalign = [r for r in rows if r["stage"] != "Alignment"]
    print(format_table(
        noalign, columns=["dataset", "machine", "P", "stage", "seconds"],
        title=f"Fig. {fig} (right): excluding pairwise alignment"))
    return rows


def test_fig5_breakdown_cori_celegans(benchmark):
    rows = benchmark.pedantic(lambda: _run("celegans_like", "cori", "5"),
                              rounds=1, iterations=1)
    _assert_breakdown(rows)


def test_fig6_breakdown_summit_celegans(benchmark):
    rows = benchmark.pedantic(lambda: _run("celegans_like", "summit", "6"),
                              rounds=1, iterations=1)
    _assert_breakdown(rows)


def test_fig7_breakdown_cori_hsapiens(benchmark):
    rows = benchmark.pedantic(lambda: _run("hsapiens_like", "cori", "7"),
                              rounds=1, iterations=1)
    _assert_breakdown(rows)


def test_fig8_breakdown_summit_hsapiens(benchmark):
    rows = benchmark.pedantic(lambda: _run("hsapiens_like", "summit", "8"),
                              rounds=1, iterations=1)
    _assert_breakdown(rows)


def _assert_breakdown(rows):
    stages_at = {}
    for r in rows:
        stages_at.setdefault(r["P"], {})[r["stage"]] = r["seconds"]
    for P, st in stages_at.items():
        assert st.get("SpGEMM", 0) > 0
        assert st.get("TrReduction", 0) > 0
    # Total (ex-alignment) shrinks with P.
    totals = {P: sum(v for k, v in st.items() if k != "Alignment")
              for P, st in stages_at.items()}
    ps = sorted(totals)
    assert totals[ps[-1]] < totals[ps[0]]
