"""Table IV — dataset statistics.

Regenerates the dataset summary (depth, reads, mean length, input size,
genome size, error rate) for the scaled presets standing in for the paper's
PacBio CLR read sets.  The scaling rules (DESIGN.md §2) keep depth, error
rate and the H. sapiens/C. elegans ratios; absolute sizes shrink ~10³×.
"""

from repro.eval.experiments import table4_datasets
from repro.eval.report import format_table


def test_table4_datasets(benchmark):
    rows = benchmark.pedantic(
        lambda: table4_datasets(("ecoli_like", "celegans_like",
                                 "hsapiens_like")),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=["label", "depth", "reads_K", "mean_length", "input_MB",
                 "genome_size_Kb", "error"],
        title="Table IV: datasets (scaled presets)"))

    by = {r["label"]: r for r in rows}
    assert by["C. elegans"]["depth"] == 40
    assert by["H. sapiens"]["depth"] == 10
    assert by["H. sapiens"]["error"] == 0.15
    # H. sapiens is the largest genome, C. elegans the deepest coverage.
    assert by["H. sapiens"]["genome_size_Kb"] > \
        by["C. elegans"]["genome_size_Kb"]
    assert by["C. elegans"]["input_MB"] > by["E. coli"]["input_MB"]
