"""Ablation — pluggable local-kernel backends (ESC vs native CSR).

The paper's Section IV-D point, reproduced at the Python level: the local
SpGEMM kernel dominates SUMMA runtime, so swapping it per workload matters.
This ablation times the ``numpy`` (expand-sort-compress) and ``scipy``
(native CSR matmul) backends on scalar-semiring products across sizes, and
checks that backend choice is *purely* a performance axis: pipeline output
is byte-identical under every backend.

Acceptance gate: at the largest size, the scipy backend must be ≥2× faster
than ESC on the scalar (PlusTimes) SpGEMM.
"""

import time

import numpy as np
import scipy.sparse as sp

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.dsparse.backend import get_backend
from repro.dsparse.coomat import CooMat
from repro.dsparse.semiring import BoolOr, PlusTimes
from repro.eval.report import format_table
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads


def _rand_coo(seed, n, density):
    rng = np.random.default_rng(seed)
    s = sp.random(n, n, density=density, format="coo", random_state=rng,
                  data_rvs=lambda k: rng.integers(1, 50, k))
    return CooMat.from_scipy(s)


def _best_of(fn, reps=3):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


# ~40 nonzeros per row at the largest size: the regime where ESC's
# product-sort cost separates from scipy's C-level row accumulation.
SIZES = [1000, 2000, 4000]
DENSITY = 0.01


def test_backend_spgemm_speedup(benchmark):
    """scipy CSR lowering vs ESC on scalar semirings, sweep of sizes."""
    numpy_bk = get_backend("numpy")
    scipy_bk = get_backend("scipy")

    def run():
        rows = []
        for semiring in (PlusTimes(), BoolOr()):
            sr_name = type(semiring).__name__
            for n in SIZES:
                A = _rand_coo(n, n, DENSITY)
                t_np, c_np = _best_of(lambda: numpy_bk.spgemm(A, A, semiring))
                t_sp, c_sp = _best_of(lambda: scipy_bk.spgemm(A, A, semiring))
                assert np.array_equal(c_np.row, c_sp.row)
                assert np.array_equal(c_np.col, c_sp.col)
                assert np.array_equal(c_np.vals, c_sp.vals)
                rows.append({"semiring": sr_name, "n": n,
                             "nnz_out": c_np.nnz,
                             "esc_ms": round(t_np * 1e3, 3),
                             "csr_ms": round(t_sp * 1e3, 3),
                             "speedup": round(t_np / t_sp, 1)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: local SpGEMM backend "
                                   "(ESC vs native CSR)"))
    largest = [r for r in rows if r["semiring"] == "PlusTimes"
               and r["n"] == max(SIZES)][0]
    assert largest["speedup"] >= 2.0, \
        f"scipy backend only {largest['speedup']}x faster at n={max(SIZES)}"


def test_backend_pipeline_identical_output(benchmark):
    """Backend choice never changes pipeline results, only runtime."""
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=10_000, seed=51), depth=10,
                    mean_len=700, min_len=400, sigma_len=0.2,
                    error=ErrorModel(rate=0.0), seed=53))

    def run():
        out = {}
        for name in ("numpy", "scipy", "auto"):
            cfg = PipelineConfig(nprocs=4, align_mode="chain", fuzz=20,
                                 depth_hint=10, error_hint=0.0, backend=name)
            t0 = time.perf_counter()
            res = run_pipeline(reads, cfg)
            out[name] = (res, time.perf_counter() - t0)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    ref = out["numpy"][0]
    rows = []
    for name, (res, secs) in out.items():
        assert np.array_equal(ref.S.row, res.S.row)
        assert np.array_equal(ref.S.col, res.S.col)
        assert np.array_equal(ref.S.vals, res.S.vals)
        rows.append({"backend": name, "nnz_S": res.nnz_s,
                     "tr_rounds": res.tr_rounds,
                     "wall_s": round(secs, 3), "identical_S": True})
    print()
    print(format_table(rows, title="Backend ablation: pipeline output "
                                   "parity"))
