"""CountKmer + CreateSpMat wall-clock: dict-loop vs batched SoA engine.

With the alignment stage batched (PR 4), the k-mer stages became the
dominant serial cost: the loop engine dispatches one ``read_kmers`` call
per read, folds every admitted key through a Python ``dict``, and scans
reads one by one when building A.  The batch engine runs each rank's
extraction, admission, counting, and A scan as whole-array column
operations over the ReadSet's structure-of-arrays view.

This micro-benchmark isolates those two stages on a read-count-heavy
dataset (many short reads — the shape that stresses per-read dispatch,
which is exactly what the batch engine vectorizes away), times
``count_kmers`` + ``build_a_matrix`` under both engines, asserts the
byte-identity contract (table, counts, and the full A matrix), and writes
``BENCH_kmer.json`` at the repo root for the cross-PR perf record.

Acceptance gate: the batch engine must be ≥ ``MIN_KMER_SPEEDUP``× faster
serially (best-of-``ROUNDS`` per engine, one core, so the gate holds on
any host); ``REPRO_BENCH_MIN_KMER_SPEEDUP`` overrides the threshold
(``0`` records without gating).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.overlap import build_a_matrix
from repro.eval.report import format_table
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.kmer_counter import count_kmers, reliable_upper_bound

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_kmer.json"

#: Read-count-heavy dataset: deep coverage of short fragments maximizes the
#: per-read / per-key dispatch the loop engine pays and the batch engine
#: amortizes.  (The e2e bench keeps the paper-like long-read shape.)
GENOME_LENGTH = 100_000
DEPTH = 35
MEAN_LEN = 150
MIN_LEN = 75
ERROR_RATE = 0.10
K = 17
NPROCS = 4

#: Timed rounds per engine (best-of to shed scheduler noise).
ROUNDS = 2

#: The PR's acceptance gate: batch vs loop, serial, 1 core.
MIN_KMER_SPEEDUP = 3.0


def _dataset():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=42),
                    depth=DEPTH, mean_len=MEAN_LEN, min_len=MIN_LEN,
                    error=ErrorModel(rate=ERROR_RATE), seed=1))
    reads.soa()  # build the SoA cache outside the timed region
    return reads


def _run_stages(reads, impl):
    comm = SimComm(NPROCS, CommTracker(NPROCS))
    timer = StageTimer()
    t0 = time.perf_counter()
    table = count_kmers(reads, K, comm, timer,
                        upper=reliable_upper_bound(DEPTH, ERROR_RATE, K),
                        impl=impl)
    t_count = time.perf_counter()
    A = build_a_matrix(reads, table, ProcessGrid2D(NPROCS), comm, timer,
                       impl=impl)
    t_a = time.perf_counter()
    return (t_count - t0, t_a - t_count), table, A.to_global()


def test_kmer_batch_speedup(benchmark):
    reads = _dataset()

    def run():
        walls: dict[str, tuple[float, float]] = {}
        results: dict[str, tuple] = {}
        for r in range(ROUNDS):
            for impl in ("loop", "batch"):
                secs, table, g = _run_stages(reads, impl)
                prev = walls.get(impl)
                if prev is None or sum(secs) < sum(prev):
                    walls[impl] = secs
                results[impl] = (table, g)
        return walls, results

    walls, results = benchmark.pedantic(run, rounds=1, iterations=1)

    table_l, g_l = results["loop"]
    table_b, g_b = results["batch"]
    identical = (np.array_equal(table_l.kmers, table_b.kmers) and
                 np.array_equal(table_l.counts, table_b.counts) and
                 np.array_equal(g_l.row, g_b.row) and
                 np.array_equal(g_l.col, g_b.col) and
                 np.array_equal(g_l.vals, g_b.vals))
    assert identical, "batch k-mer engine diverged from the loop oracle"

    total = {impl: sum(walls[impl]) for impl in ("loop", "batch")}
    speedup = total["loop"] / max(total["batch"], 1e-9)
    rows = [{
        "stage": stage,
        "loop (s)": f"{walls['loop'][i]:.2f}",
        "batch (s)": f"{walls['batch'][i]:.2f}",
        "speedup": f"{walls['loop'][i] / max(walls['batch'][i], 1e-9):.2f}x",
    } for i, stage in enumerate(("CountKmer", "CreateSpMat"))]
    rows.append({"stage": "total", "loop (s)": f"{total['loop']:.2f}",
                 "batch (s)": f"{total['batch']:.2f}",
                 "speedup": f"{speedup:.2f}x"})
    print(format_table(rows, title=(
        f"K-mer stages: loop vs batch engine ({len(reads)} reads, "
        f"{len(table_b)} reliable k-mers, nnz(A)={g_b.nnz}, serial)")))

    record = {
        "bench": "kmer_batch",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "mean_len": MEAN_LEN, "min_len": MIN_LEN,
                    "error_rate": ERROR_RATE, "n_reads": len(reads),
                    "k": K, "nprocs": NPROCS,
                    "n_kmers": len(table_b), "nnz_a": int(g_b.nnz)},
        "count_kmers": {"loop_seconds": round(walls["loop"][0], 4),
                        "batch_seconds": round(walls["batch"][0], 4)},
        "create_spmat": {"loop_seconds": round(walls["loop"][1], 4),
                         "batch_seconds": round(walls["batch"][1], 4)},
        "total": {"loop_seconds": round(total["loop"], 4),
                  "batch_seconds": round(total["batch"], 4),
                  "speedup": round(speedup, 3)},
        "identical_to_loop": True,
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name} (CountKmer+CreateSpMat speedup "
          f"{speedup:.2f}x)")

    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_KMER_SPEEDUP",
                                       str(MIN_KMER_SPEEDUP)))
    if min_speedup > 0.0:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x CountKmer+CreateSpMat speedup "
            f"(batch vs loop, serial), measured {speedup:.2f}x")
