"""Ablation — strip-mined candidate matrix (Section VIII future work).

The paper's proposed memory reduction: form only one strip of ``C`` at a
time, align it, prune it, move on.  This bench measures the trade-off the
paper anticipates: peak candidate-matrix entries fall ~linearly with the
strip count while total work (and the exchanged volume) stays constant, at
the cost of more SUMMA launches (latency).
"""

from repro.core.blocked import candidate_overlaps_blocked
from repro.core.overlap import build_a_matrix
from repro.eval.datasets import load_preset
from repro.eval.report import format_table
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.kmer_counter import count_kmers, reliable_upper_bound


def test_ablation_blocked_memory(benchmark):
    preset, _genome, reads, _layout = load_preset("toy")
    P = 4
    comm = SimComm(P, CommTracker(P))
    timer = StageTimer()
    upper = reliable_upper_bound(preset.depth, preset.error_rate, 17)
    table = count_kmers(reads, 17, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, ProcessGrid2D(P), comm, timer)

    def run():
        out = []
        for strips in (1, 2, 4, 8):
            res = candidate_overlaps_blocked(A, reads, 17, comm, strips,
                                             timer, mode="chain")
            out.append({
                "strips": strips,
                "total_nnz_C": res.nnz_c,
                "peak_strip_nnz": res.peak_strip_nnz,
                "peak_fraction": res.peak_strip_nnz / max(1, res.nnz_c),
                "peak_strip_bytes": res.peak_strip_bytes,
                "R_entries": res.R.nnz(),
            })
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: strip-mined C (Section VIII)"))

    # Result identical regardless of strip count; peak memory shrinks.
    assert len({r["R_entries"] for r in rows}) == 1
    assert len({r["total_nnz_C"] for r in rows}) == 1
    peaks = [r["peak_strip_nnz"] for r in rows]
    assert all(b <= a for a, b in zip(peaks, peaks[1:]))
    assert peaks[-1] < peaks[0] / 3
