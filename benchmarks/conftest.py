"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one table or figure of the paper: it runs
the corresponding experiment driver, prints the same rows/series the paper
reports, and times the driving computation via pytest-benchmark.

Two conveniences here:

* every benchmark's stdout is replayed to the real terminal after the test
  (so the regenerated tables are visible without ``-s``), and
* the same text is appended to ``benchmarks/results/<bench>.txt`` for a
  durable record (EXPERIMENTS.md references these files).

Expensive pipeline runs are memoized in ``repro.eval.experiments._CACHE``,
so drivers that share runs (e.g. Fig. 4 and Figs. 5–8) pay for them once per
session.
"""

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _replay_and_record(request, capsys):
    yield
    captured = capsys.readouterr()
    if not captured.out.strip():
        return
    sys.__stdout__.write(captured.out)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.node.name
    out_file = RESULTS_DIR / f"{Path(request.node.fspath).stem}.txt"
    with open(out_file, "a") as fh:
        fh.write(f"== {name} ==\n{captured.out}\n")
