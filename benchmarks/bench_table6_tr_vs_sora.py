"""Table VI — transitive reduction: diBELLA 2D vs SORA.

Regenerates the paper's comparison on the same overlap graph: SORA's
modeled Spark/GraphX runtime (framework-overhead dominated, nearly flat in
the node count) against diBELLA's sparse-matrix reduction (Cori model).
Paper shapes: speedups of one to two orders of magnitude (18–29× C. elegans,
10.5–13.3× H. sapiens), SORA flat across node counts.
"""

from repro.eval.experiments import table6_tr_vs_sora
from repro.eval.report import format_table


def test_table6_tr_vs_sora(benchmark):
    rows = benchmark.pedantic(
        lambda: table6_tr_vs_sora(("celegans_like", "hsapiens_like"),
                                  node_counts=(4, 9, 16), ranks_per_node=4),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=["dataset", "nodes", "sora_seconds", "dibella_seconds",
                 "speedup", "edges"],
        title="Table VI: transitive reduction, SORA vs diBELLA 2D"))

    # diBELLA wins by a large factor at every configuration.
    for r in rows:
        assert r["speedup"] > 5.0, r
    # SORA's runtime is nearly flat in node count.
    for ds in ("C. elegans", "H. sapiens"):
        ts = [r["sora_seconds"] for r in rows if r["dataset"] == ds]
        assert max(ts) / min(ts) < 2.0
