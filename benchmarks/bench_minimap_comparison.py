"""§VII-B — minimap2-like single-node overlapper vs diBELLA 2D at scale.

Regenerates the crossover the paper describes: minimap2 (no base-level
alignment, shared memory only) beats diBELLA 2D at one node, but diBELLA
overtakes it at higher concurrency because minimap2 cannot scale out
(paper: 2× slower at P=8, then 1.6×/3.2×/5× faster on C. elegans).
"""

from repro.eval.experiments import minimap_comparison
from repro.eval.report import format_table


def test_minimap_crossover(benchmark):
    rows = benchmark.pedantic(
        lambda: minimap_comparison("celegans_like", procs=(1, 4, 16, 36)),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows, columns=["dataset", "system", "P", "seconds", "pairs"],
        title="§VII-B: minimap2-like (1 node) vs diBELLA 2D"))

    mm = [r for r in rows if r["system"] == "minimap2-like"][0]
    di = sorted((r for r in rows if r["system"] == "diBELLA 2D"),
                key=lambda r: r["P"])
    # minimap-like is competitive with (or beats) small-P diBELLA...
    assert mm["seconds"] < di[0]["seconds"] * 3
    # ...but diBELLA at its largest P beats diBELLA at P=1 by a wide margin
    # (it scales; minimap-like's time is fixed).
    assert di[-1]["seconds"] < di[0]["seconds"]
    # Both find a comparable candidate set.
    assert di[0]["pairs"] > 0 and mm["pairs"] > 0
