"""Ablation — design choices of the transitive-reduction semiring.

Two ablations the paper's design motivates (DESIGN.md §5):

1. **Orientation slots.**  ``N = R²`` must keep the minimum path suffix per
   (end_i, end_j) combination.  A single-slot min (ignoring path-end
   orientations in the comparison) either over-removes (marks edges whose
   matching-orientation path is actually longer) or, with the validity check
   also dropped, removes genome-inconsistent edges.  We count the divergence
   against Myers' reduction.
2. **Fuzz x.**  Sweeping the endpoint tolerance on noisy data shows the
   robustness trade-off: tiny fuzz leaves error-shifted transitive edges in
   the graph; huge fuzz starts removing real alternatives.
"""

import numpy as np

from repro.baselines.myers import myers_transitive_reduction
from repro.core.string_graph import StringGraph
from repro.core.semirings import R_END_I, R_END_J, R_SUFFIX, n_slot
from repro.core.transitive_reduction import transitive_reduction
from repro.dsparse.coomat import CooMat
from repro.dsparse.distmat import DistMat
from repro.dsparse.elementwise import prune_mask, reduce_rows
from repro.dsparse.semiring import INF, Semiring
from repro.dsparse.spgemm import spgemm_esc
from repro.eval.report import format_table
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads


class _SingleSlotMinPlus(Semiring):
    """Ablated MinPlus: one min per coordinate, no per-orientation slots.

    Keeps the middle-node validity check but collapses the four end
    combinations into a single minimum — the straightforward-but-wrong
    formulation the 4-slot design guards against.
    """

    out_nfields = 1

    def multiply(self, avals, bvals):
        valid = avals[:, R_END_J] != bvals[:, R_END_I]
        out = (avals[:, R_SUFFIX] + bvals[:, R_SUFFIX])[:, None]
        return out, valid

    def reduce(self, vals, starts, counts):
        return np.minimum.reduceat(vals[:, 0], starts)[:, None]


def _ablated_reduction(graph: StringGraph, fuzz: int) -> StringGraph:
    """Algorithm 2 with the single-slot semiring (no end-orientation match
    in the comparison step)."""
    mat = graph.to_coomat()
    R = mat
    while True:
        prev = R.nnz
        if prev == 0:
            break
        N = spgemm_esc(R, R, _SingleSlotMinPlus())
        # Row max + fuzz.
        v = np.zeros(R.shape[0], dtype=np.int64)
        for t in range(R.nnz):
            r = int(R.row[t])
            v[r] = max(v[r], int(R.vals[t, R_SUFFIX]))
        v += fuzz
        rk, nk = R.keys(), N.keys()
        common = np.intersect1d(rk, nk, assume_unique=True)
        ir = np.searchsorted(rk, common)
        im = np.searchsorted(nk, common)
        transitive = N.vals[im, 0] <= v[R.row[ir]]
        drop = set(zip(R.row[ir[transitive]].tolist(),
                       R.col[ir[transitive]].tolist()))
        keep = np.array([(int(r), int(c)) not in drop
                         for r, c in zip(R.row, R.col)], dtype=bool)
        R = R.select(keep)
        if R.nnz == prev:
            break
    return StringGraph.from_coomat(R)


def _noisy_graph():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=12_000, seed=21), depth=12,
                    mean_len=700, min_len=400, sigma_len=0.25,
                    error=ErrorModel(rate=0.05), seed=23))
    from repro.core.overlap import (align_candidates, build_a_matrix,
                                    candidate_overlaps)
    from repro.mpisim import StageTimer
    from repro.seqs.kmer_counter import count_kmers
    comm = SimComm(1, CommTracker(1))
    timer = StageTimer()
    table = count_kmers(reads, 17, comm, timer, upper=40)
    A = build_a_matrix(reads, table, ProcessGrid2D(1), comm, timer)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain", fuzz=100)
    return StringGraph.from_coomat(R.to_global())


def _reduce(graph: StringGraph, fuzz: int) -> StringGraph:
    mat = graph.to_coomat()
    D = DistMat.from_coo(mat.shape, ProcessGrid2D(1), mat.row, mat.col,
                         mat.vals)
    res = transitive_reduction(D, SimComm(1, CommTracker(1)), fuzz=fuzz)
    return StringGraph.from_coomat(res.S.to_global())


def _inverted_repeat_graph() -> StringGraph:
    """A graph where orientation slots decide correctness.

    Read 1 bridges reads 0 and 2 through *flipped* attachments (the geometry
    an inverted repeat produces): the walk 0→1→2 is valid but its end pair
    at (0, 2) is (B, B), while the direct overlap 0–2 attaches (E, B).  A
    slot-blind minimum treats the 8-suffix path as a witness and wrongly
    removes the direct edge; the 4-slot semiring sees slot (E, B) = ∞ and
    keeps it.
    """
    src = np.array([0, 1, 1, 2, 0, 2])
    dst = np.array([1, 0, 2, 1, 2, 0])
    suffix = np.array([4, 6, 4, 5, 10, 9])
    end_src = np.array([0, 1, 0, 0, 1, 0])   # (0,1) attaches B at 0
    end_dst = np.array([1, 0, 0, 0, 0, 1])   # (1,2) attaches B at 2
    return StringGraph(3, src, dst, suffix, end_src, end_dst)


def test_ablation_orientation_slots(benchmark):
    noisy = _noisy_graph()
    synth = _inverted_repeat_graph()
    myers_noisy = myers_transitive_reduction(noisy, fuzz=150).edge_set()
    myers_synth = myers_transitive_reduction(synth, fuzz=0).edge_set()

    def run():
        return (
            _reduce(noisy, fuzz=150).edge_set(),
            _ablated_reduction(noisy, fuzz=150).edge_set(),
            _reduce(synth, fuzz=0).edge_set(),
            _ablated_reduction(synth, fuzz=0).edge_set(),
        )

    full_n, abl_n, full_s, abl_s = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    rows = [
        {"graph": "noisy pipeline", "variant": "4-slot (paper)",
         "edges": len(full_n), "divergence_vs_myers": len(full_n ^ myers_noisy)},
        {"graph": "noisy pipeline", "variant": "single-slot (ablated)",
         "edges": len(abl_n), "divergence_vs_myers": len(abl_n ^ myers_noisy)},
        {"graph": "inverted repeat", "variant": "4-slot (paper)",
         "edges": len(full_s), "divergence_vs_myers": len(full_s ^ myers_synth)},
        {"graph": "inverted repeat", "variant": "single-slot (ablated)",
         "edges": len(abl_s), "divergence_vs_myers": len(abl_s ^ myers_synth)},
    ]
    print()
    print(format_table(rows, title="Ablation: N-value orientation slots"))
    # The paper's semiring always matches Myers.
    assert full_n == myers_noisy
    assert full_s == myers_synth
    # The slot-blind ablation wrongly removes the inverted-repeat edge.
    assert abl_s != myers_synth
    assert (0, 2) in full_s and (0, 2) not in abl_s


def test_ablation_fuzz_sweep(benchmark):
    graph = _noisy_graph()

    def run():
        return [(x, _reduce(graph, fuzz=x).n_edges)
                for x in (0, 50, 150, 500, 2000)]

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"fuzz_x": x, "string_graph_edges": e} for x, e in series]
    print()
    print(format_table(rows, title="Ablation: fuzz scalar x (Alg. 2 line 6)"))
    edges = [e for _, e in series]
    # More fuzz removes (weakly) more edges, and the extremes differ.
    assert all(b <= a for a, b in zip(edges, edges[1:]))
    assert edges[-1] < edges[0]
