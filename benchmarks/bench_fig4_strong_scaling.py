"""Fig. 4 — strong scaling of diBELLA 2D on both machine models.

Regenerates the scaling series (modeled total runtime vs process count) for
the C. elegans-like and H. sapiens-like datasets on the Cori Haswell and
Summit CPU models.  Paper shapes: near-linear scaling with parallel
efficiency above ~50% at the largest scaled concurrency (the paper reports
68–92% at its node counts; the scaled datasets are far smaller, so per-rank
work — and thus efficiency at the top end — is proportionally lower).
"""

from repro.eval.experiments import fig4_strong_scaling
from repro.eval.report import format_table

PROCS = (1, 4, 16, 36)


def test_fig4_strong_scaling_celegans(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_strong_scaling("celegans_like", procs=PROCS),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows, columns=["dataset", "machine", "P", "seconds", "efficiency"],
        title="Fig. 4 (left): strong scaling, C. elegans-like"))
    _assert_scaling(rows)


def test_fig4_strong_scaling_hsapiens(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_strong_scaling("hsapiens_like", procs=PROCS),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows, columns=["dataset", "machine", "P", "seconds", "efficiency"],
        title="Fig. 4 (right): strong scaling, H. sapiens-like"))
    _assert_scaling(rows)


def _assert_scaling(rows):
    for machine in {r["machine"] for r in rows}:
        series = sorted((r for r in rows if r["machine"] == machine),
                        key=lambda r: r["P"])
        times = [r["seconds"] for r in series]
        # Monotone decrease through the sweep (strong scaling holds).
        assert times[-1] < times[0]
        assert all(b <= a * 1.1 for a, b in zip(times, times[1:]))
        # Meaningful efficiency at moderate scale.
        eff_at_16 = [r["efficiency"] for r in series if r["P"] == 16][0]
        assert eff_at_16 > 0.25
