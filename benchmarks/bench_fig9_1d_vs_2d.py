"""Fig. 9 — diBELLA 2D vs diBELLA 1D (Summit model, TR excluded).

Two views, because the driving effect is density-dependent:

1. **Measured, scaled datasets.**  Both pipelines execute on the simulated
   runtime.  At laptop scale the scaled genomes have near-ideal densities
   (c/2d ≈ 0.9 versus the paper's 19.7–60.4), so the 1D design's penalty —
   the ``cnl/P`` read exchange and ``a²m/P`` duplicated candidates — barely
   bites and the two implementations sit near parity.  The paper itself
   notes 1D wins on volume only beyond ``P > c²/4`` (Section V-C); with
   c ≈ 70 that crossover is ~1200 ranks, far above this sweep.
2. **Projected at paper scale.**  The Table I formulas evaluated with the
   paper's own dataset constants (n, l, c from Tables III–IV) at the
   paper's concurrencies on the Summit α–β model, with measured-order
   processing and alignment rates.  This reproduces the paper's reported
   bands: 1.5–1.9× (C. elegans) and 1.2–1.3× (H. sapiens).
"""

from repro.eval.experiments import fig9_1d_vs_2d, fig9_paper_scale_projection
from repro.eval.report import format_table

PROCS = (4, 16)


def test_fig9_measured_scaled(benchmark):
    def run():
        rows = []
        rows += fig9_1d_vs_2d("celegans_like", procs=PROCS)
        rows += fig9_1d_vs_2d("hsapiens_like", procs=PROCS)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        rows, columns=["dataset", "P", "dibella1d_seconds",
                       "dibella2d_seconds", "speedup_2d_over_1d"],
        title="Fig. 9 (measured, scaled datasets; comm negligible at this "
              "scale)"))
    for r in rows:
        # Parity band: neither implementation collapses at laptop scale.
        assert 0.5 < r["speedup_2d_over_1d"] < 2.5, r
    # Both systems strong-scale.
    for ds in {r["dataset"] for r in rows}:
        series = sorted((r for r in rows if r["dataset"] == ds),
                        key=lambda r: r["P"])
        assert series[-1]["dibella1d_seconds"] < series[0]["dibella1d_seconds"]
        assert series[-1]["dibella2d_seconds"] < series[0]["dibella2d_seconds"]


def test_fig9_paper_scale_projection(benchmark):
    rows = benchmark.pedantic(lambda: fig9_paper_scale_projection(),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        rows, columns=["dataset", "P", "dibella1d_seconds",
                       "dibella2d_seconds", "speedup_2d_over_1d"],
        title="Fig. 9 (projected at the paper's dataset constants and "
              "concurrencies)"))
    for r in rows:
        assert r["speedup_2d_over_1d"] > 1.1, r
    # Paper bands: C. elegans gap larger than H. sapiens gap.
    ce = [r["speedup_2d_over_1d"] for r in rows
          if r["dataset"] == "C. elegans"]
    hs = [r["speedup_2d_over_1d"] for r in rows
          if r["dataset"] == "H. sapiens"]
    assert min(ce) > max(hs) * 0.9
    assert 1.1 < min(hs) and max(ce) < 2.5
