"""Micro-benchmarks of the computational kernels.

Times the hot paths the pipeline is built from (these are the
pytest-benchmark entries with real statistics): ESC semiring SpGEMM vs the
Gustavson reference, the MinPlus squaring, k-mer extraction/hashing, Bloom
filter throughput, and the two x-drop engines.
"""

import numpy as np
import scipy.sparse as sp

from repro.align.xdrop import Scoring, xdrop_extend, xdrop_extend_dp
from repro.core.semirings import BidirectedMinPlus
from repro.dsparse.coomat import CooMat
from repro.dsparse.semiring import PlusTimes
from repro.dsparse.spgemm import spgemm_esc, spgemm_gustavson
from repro.seqs.bloom import BloomFilter
from repro.seqs.kmers import canonical_kmers, pack_kmers, splitmix64


def _rand_coo(seed, n, density, nfields=1):
    rng = np.random.default_rng(seed)
    s = sp.random(n, n, density=density, format="coo", random_state=rng,
                  data_rvs=lambda k: rng.integers(1, 50, k))
    m = CooMat.from_scipy(s)
    if nfields > 1:
        vals = np.tile(m.vals, (1, nfields))
        m = CooMat(m.shape, m.row, m.col, vals, checked=True)
    return m


def test_spgemm_esc_plustimes(benchmark):
    A = _rand_coo(0, 2000, 0.005)
    out = benchmark(lambda: spgemm_esc(A, A, PlusTimes()))
    assert out.nnz > 0


def test_spgemm_scipy_backend_plustimes(benchmark):
    """Same product as the ESC entry above, on the CSR-lowering backend."""
    from repro.dsparse.backend import get_backend
    bk = get_backend("scipy")
    A = _rand_coo(0, 2000, 0.005)
    out = benchmark(lambda: bk.spgemm(A, A, PlusTimes()))
    assert out.nnz > 0


def test_spgemm_gustavson_plustimes(benchmark):
    A = _rand_coo(0, 400, 0.01)
    out = benchmark(lambda: spgemm_gustavson(A, A, PlusTimes()))
    assert out.nnz > 0


def test_spgemm_esc_bidirected_minplus(benchmark):
    rng = np.random.default_rng(1)
    A = _rand_coo(1, 2000, 0.004)
    vals = np.stack([A.vals[:, 0],
                     rng.integers(0, 2, A.nnz),
                     rng.integers(0, 2, A.nnz),
                     np.full(A.nnz, 100)], axis=1)
    R = CooMat(A.shape, A.row, A.col, vals, checked=True)
    out = benchmark(lambda: spgemm_esc(R, R, BidirectedMinPlus()))
    assert out.shape == A.shape


def test_kmer_extraction(benchmark):
    rng = np.random.default_rng(2)
    read = rng.integers(0, 4, 50_000).astype(np.uint8)
    km = benchmark(lambda: canonical_kmers(pack_kmers(read, 17), 17))
    assert km.shape[0] == 50_000 - 16


def test_splitmix_hash(benchmark):
    keys = np.arange(1_000_000, dtype=np.uint64)
    out = benchmark(lambda: splitmix64(keys))
    assert out.shape == keys.shape


def test_bloom_filter_throughput(benchmark):
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2 ** 62, 200_000, dtype=np.uint64)

    def run():
        bf = BloomFilter(200_000, 0.01)
        bf.add(keys)
        return bf.contains(keys)

    hit = benchmark(run)
    assert hit.all()


def _mutated_pair(seed, n, div):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 4, n).astype(np.uint8)
    b = a.copy()
    k = int(n * div)
    pos = rng.choice(n, size=k, replace=False)
    b[pos] = (b[pos] + rng.integers(1, 4, k)) % 4
    return a, b


def test_xdrop_lv_engine(benchmark):
    a, b = _mutated_pair(4, 2000, 0.10)
    score, ei, ej = benchmark(lambda: xdrop_extend(a, b, Scoring()))
    assert score > 0


def test_xdrop_dp_reference(benchmark):
    a, b = _mutated_pair(4, 300, 0.10)
    score, ei, ej = benchmark(lambda: xdrop_extend_dp(a, b, Scoring()))
    assert score > 0
