"""Incremental refresh vs full recompute: amortized per-batch wall-clock.

The service's value claim is that folding a small batch of new reads into
a live assembly costs a fraction of rerunning the pipeline on the whole
read set.  This benchmark replays the intended serving pattern — one bulk
initial load followed by a stream of small batches — under both refresh
engines, asserts the byte-identity contract at every version (S, R,
contig layout, and sparsity counts all match), and writes
``BENCH_service.json`` at the repo root for the cross-PR perf record.

The amortized metric is the mean per-batch refresh wall over the small
batches only (the bootstrap load is a recompute under both modes and is
excluded).  Acceptance gate: incremental must be ≥ ``MIN_SERVICE_SPEEDUP``×
faster per batch than recompute; ``REPRO_BENCH_MIN_SERVICE_SPEEDUP``
overrides the threshold (``0`` records without gating).
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.core.pipeline import PipelineConfig
from repro.eval.report import format_table
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.service import AssemblyState, ServiceConfig, refresh

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_service.json"

#: Long-read, paper-like dataset, big enough that a full recompute has
#: real SpGEMM/alignment cost for every trailing batch to amortize against.
GENOME_LENGTH = 60_000
DEPTH = 12
MEAN_LEN = 2_500
MIN_LEN = 1_200
ERROR_RATE = 0.0
K = 17
NPROCS = 4
FUZZ = 150

#: Serving pattern: one bulk load, then a stream of small delta batches.
INITIAL_FRACTION = 0.8
N_DELTA_BATCHES = 6

#: The PR's acceptance gate: amortized per-batch incremental vs recompute.
MIN_SERVICE_SPEEDUP = 3.0


def _dataset():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=42),
                    depth=DEPTH, mean_len=MEAN_LEN, min_len=MIN_LEN,
                    error=ErrorModel(rate=ERROR_RATE), seed=1))
    reads.soa()
    return reads


def _batches(reads):
    n = len(reads)
    bulk = int(round(INITIAL_FRACTION * n))
    splits = [0, bulk] + list(
        np.linspace(bulk, n, N_DELTA_BATCHES + 1).round().astype(int)[1:])
    return [reads.subset(np.arange(lo, hi))
            for lo, hi in zip(splits[:-1], splits[1:])]


def _config(mode: str) -> ServiceConfig:
    return ServiceConfig(refresh_mode=mode,
                         pipeline=PipelineConfig(k=K, nprocs=NPROCS,
                                                 fuzz=FUZZ))


def _run(batches, mode: str):
    state = AssemblyState.initial()
    config = _config(mode)
    states, walls = [], []
    for batch in batches:
        state = refresh(state, batch, config)
        states.append(state)
        walls.append(state.refresh_seconds)
    return states, walls


def _digest(state: AssemblyState):
    c = state.counts
    return ((c["n_reads"], c["n_kmers"], c["nnz_a"], c["nnz_c"],
             c["nnz_r"], c["nnz_s"], c["tr_rounds"]),
            state.S.row.tobytes(), state.S.col.tobytes(),
            state.S.vals.tobytes(),
            state.R.row.tobytes(), state.R.col.tobytes(),
            state.R.vals.tobytes(),
            tuple(sorted((tuple(k.reads), tuple(k.orientations))
                         for k in state.contigs)))


def test_service_incremental_speedup(benchmark):
    reads = _dataset()
    batches = _batches(reads)

    def run():
        inc_states, inc_walls = _run(batches, "incremental")
        rec_states, rec_walls = _run(batches, "recompute")
        return inc_states, inc_walls, rec_states, rec_walls

    inc_states, inc_walls, rec_states, rec_walls = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # Byte-identity at every version: the delta engine is only a speedup
    # if it is also exactly the recompute oracle.
    for inc, rec in zip(inc_states, rec_states):
        assert _digest(inc) == _digest(rec), \
            f"incremental diverged from recompute at version {inc.version}"

    # Amortize over the small delta batches; the bootstrap bulk load is a
    # recompute under both modes and carries no incremental signal.
    inc_delta = inc_walls[1:]
    rec_delta = rec_walls[1:]
    inc_mean = sum(inc_delta) / len(inc_delta)
    rec_mean = sum(rec_delta) / len(rec_delta)
    speedup = rec_mean / max(inc_mean, 1e-9)

    final = inc_states[-1].counts
    rows = [{
        "batch": f"v{i + 2} (+{len(batches[i + 1])} reads)",
        "incremental (s)": f"{inc_delta[i]:.2f}",
        "recompute (s)": f"{rec_delta[i]:.2f}",
        "speedup": f"{rec_delta[i] / max(inc_delta[i], 1e-9):.2f}x",
    } for i in range(len(inc_delta))]
    rows.append({"batch": "amortized mean",
                 "incremental (s)": f"{inc_mean:.2f}",
                 "recompute (s)": f"{rec_mean:.2f}",
                 "speedup": f"{speedup:.2f}x"})
    print(format_table(rows, title=(
        f"Service refresh: incremental vs recompute ({len(reads)} reads, "
        f"bulk load {len(batches[0])}, {len(inc_delta)} delta batches, "
        f"nnz(S)={final['nnz_s']})")))

    record = {
        "bench": "service",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "mean_len": MEAN_LEN, "min_len": MIN_LEN,
                    "error_rate": ERROR_RATE, "n_reads": len(reads),
                    "k": K, "nprocs": NPROCS, "fuzz": FUZZ,
                    "bulk_reads": len(batches[0]),
                    "n_delta_batches": len(inc_delta)},
        "bootstrap": {"incremental_seconds": round(inc_walls[0], 4),
                      "recompute_seconds": round(rec_walls[0], 4)},
        "per_batch": [{"version": i + 2,
                       "batch_reads": len(batches[i + 1]),
                       "incremental_seconds": round(inc_delta[i], 4),
                       "recompute_seconds": round(rec_delta[i], 4)}
                      for i in range(len(inc_delta))],
        "amortized": {"incremental_seconds": round(inc_mean, 4),
                      "recompute_seconds": round(rec_mean, 4),
                      "speedup": round(speedup, 3)},
        "final_counts": final,
        "identical_to_recompute": True,
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name} (amortized per-batch refresh speedup "
          f"{speedup:.2f}x)")

    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SERVICE_SPEEDUP",
                                       str(MIN_SERVICE_SPEEDUP)))
    if min_speedup > 0.0:
        assert speedup >= min_speedup, (
            f"expected >= {min_speedup}x amortized per-batch refresh "
            f"speedup (incremental vs recompute), measured {speedup:.2f}x")
