"""Alignment-stage wall-clock: per-pair loop vs batched SoA engine.

The pipeline's hottest stage is the seed-and-extend x-drop alignment of
every C nonzero (paper Section IV-D; our e2e bench spends most of its
serial runtime there).  This micro-benchmark isolates that stage on the e2e
bench dataset: it forms the candidate matrix once, then times
``align_candidates`` under ``align_impl="loop"`` (one Python dispatch per
pair — the reference oracle) against ``align_impl="batch"`` (one vectorized
lockstep sweep per nnz-weighted chunk of pairs), for both alignment modes.

Beyond the timing table it asserts the engines' byte-identity contract and
writes ``BENCH_align.json`` at the repo root for the cross-PR perf record.

Acceptance gate: the batch engine must be ≥ ``MIN_ALIGN_SPEEDUP``× faster
than the loop engine in x-drop mode.  The comparison is serial-vs-serial on
one core, so the gate holds on any host; ``REPRO_BENCH_MIN_ALIGN_SPEEDUP``
overrides the threshold (``0`` records without gating).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.overlap import (align_candidates, build_a_matrix,
                                candidate_overlaps)
from repro.eval.report import format_table
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.kmer_counter import count_kmers, reliable_upper_bound

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_align.json"

#: Same simulated dataset as bench_pipeline_e2e.py, so the stage numbers
#: here decompose the end-to-end record.
GENOME_LENGTH = 12_000
DEPTH = 12
ERROR_RATE = 0.05
K = 17
NPROCS = 4

#: The PR's acceptance gate: batch vs loop in x-drop mode, serial, 1 core.
MIN_ALIGN_SPEEDUP = 3.0


def _candidates():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=42),
                    depth=DEPTH, mean_len=800, min_len=400,
                    error=ErrorModel(rate=ERROR_RATE), seed=1))
    comm = SimComm(NPROCS, CommTracker(NPROCS))
    grid = ProcessGrid2D(NPROCS)
    timer = StageTimer()
    upper = reliable_upper_bound(DEPTH, ERROR_RATE, K)
    table = count_kmers(reads, K, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, grid, comm, timer)
    C = candidate_overlaps(A, comm, timer)
    return reads, C, comm


def test_align_batch_speedup(benchmark):
    reads, C, comm = _candidates()

    def run():
        walls: dict[tuple[str, str], float] = {}
        results: dict[tuple[str, str], object] = {}
        for mode in ("xdrop", "chain"):
            for impl in ("loop", "batch"):
                t0 = time.perf_counter()
                R = align_candidates(C, reads, K, comm, StageTimer(),
                                     mode=mode, impl=impl)
                walls[(mode, impl)] = time.perf_counter() - t0
                results[(mode, impl)] = R.to_global()
        return walls, results

    walls, results = benchmark.pedantic(run, rounds=1, iterations=1)

    record = {
        "bench": "align_batch",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "error_rate": ERROR_RATE, "n_reads": len(reads),
                    "nnz_c": C.nnz(), "k": K, "nprocs": NPROCS},
        "modes": {},
    }
    rows = []
    for mode in ("xdrop", "chain"):
        gl = results[(mode, "loop")]
        gb = results[(mode, "batch")]
        identical = (np.array_equal(gl.row, gb.row) and
                     np.array_equal(gl.col, gb.col) and
                     np.array_equal(gl.vals, gb.vals))
        assert identical, f"{mode}: batch R diverged from loop R"
        speedup = walls[(mode, "loop")] / max(walls[(mode, "batch")], 1e-9)
        rows.append({"mode": mode,
                     "loop (s)": f"{walls[(mode, 'loop')]:.2f}",
                     "batch (s)": f"{walls[(mode, 'batch')]:.2f}",
                     "speedup": f"{speedup:.2f}x",
                     "byte-identical": "yes"})
        record["modes"][mode] = {
            "loop_seconds": round(walls[(mode, "loop")], 4),
            "batch_seconds": round(walls[(mode, "batch")], 4),
            "speedup": round(speedup, 3),
            "nnz_r": int(gb.nnz),
            "identical_to_loop": True,
        }

    print(format_table(rows, title=(
        f"Alignment stage: loop vs batch engine ({len(reads)} reads, "
        f"{C.nnz()} candidate pairs, serial)")))
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name} (xdrop speedup "
          f"{record['modes']['xdrop']['speedup']:.2f}x)")

    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_ALIGN_SPEEDUP",
                                       str(MIN_ALIGN_SPEEDUP)))
    if min_speedup > 0.0:
        got = record["modes"]["xdrop"]["speedup"]
        assert got >= min_speedup, (
            f"expected >= {min_speedup}x alignment speedup (batch vs loop, "
            f"x-drop mode), measured {got:.2f}x")
