"""End-to-end pipeline wall-clock: serial vs. parallel executors.

PR 1 made the local kernels fast; this benchmark starts the *wall-clock*
trajectory for the whole pipeline by measuring ``run_pipeline`` end to end
under the repro.exec engine: the serial reference against thread and
process pools with ``--workers 4``, on the default simulated CLR dataset in
x-drop mode (the alignment-dominated regime the paper's Figs. 5–8 show).

Beyond the timing table, it asserts the executor contract — every parallel
run must be byte-identical to serial — and writes ``BENCH_pipeline.json``
at the repo root so the perf trajectory is machine-readable across PRs.

It also records the **memory trajectory**: the per-stage live-matrix peaks
of the monolithic run against the blocked (strip-mined) overlap mode at
``N_STRIPS`` strips, gating that the candidate-matrix high-water mark drops
at least ``MIN_MEMORY_REDUCTION``-fold while S stays byte-identical — the
paper's Section VIII memory-reduction plan, measured end to end.

Acceptance gate: with ≥ 4 usable cores, the best parallel run must be
≥ 2× faster than serial.  Hosts without that parallelism (CI containers
pinned to one core) still record results; the determinism assertions hold
everywhere.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.eval.report import format_table
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_pipeline.json"

#: The default simulated dataset: quickstart's genome at benchmark scale.
GENOME_LENGTH = 12_000
DEPTH = 12
ERROR_RATE = 0.05

WORKERS = 4
RUNS = [("serial", 1), ("thread", WORKERS), ("process", WORKERS)]

#: Strip count for the blocked-mode memory run, and the factor by which it
#: must cut the candidate-matrix peak (the PR's acceptance gate).
N_STRIPS = 4
MIN_MEMORY_REDUCTION = 3.0


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _dataset():
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=42),
                    depth=DEPTH, mean_len=800, min_len=400,
                    error=ErrorModel(rate=ERROR_RATE), seed=1))
    return reads


def _config(executor: str, workers: int, **kw) -> PipelineConfig:
    # Pin the mode so the monolithic-vs-blocked memory comparison stays
    # meaningful even when REPRO_OVERLAP_MODE forces blocked elsewhere.
    kw.setdefault("overlap_mode", "monolithic")
    return PipelineConfig(k=17, nprocs=4, align_mode="xdrop",
                          depth_hint=DEPTH, error_hint=ERROR_RATE,
                          executor=executor, workers=workers, **kw)


def test_pipeline_e2e_speedup(benchmark):
    reads = _dataset()
    cpus = _usable_cpus()

    def run():
        results, walls = {}, {}
        for executor, workers in RUNS:
            t0 = time.perf_counter()
            results[executor] = run_pipeline(reads,
                                             _config(executor, workers))
            walls[executor] = time.perf_counter() - t0
        t0 = time.perf_counter()
        results["blocked"] = run_pipeline(
            reads, _config("serial", 1, overlap_mode="blocked",
                           n_strips=N_STRIPS))
        walls["blocked"] = time.perf_counter() - t0
        return results, walls

    results, walls = benchmark.pedantic(run, rounds=1, iterations=1)

    ref = results["serial"]
    rows = []
    record = {
        "bench": "pipeline_e2e",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "error_rate": ERROR_RATE, "n_reads": len(reads),
                    "align_mode": "xdrop", "align_impl": ref.align_impl,
                    "nprocs": 4},
        "host_cpus": cpus,
        "workers": WORKERS,
        "runs": [],
    }
    for executor, workers in RUNS:
        res = results[executor]
        identical = (np.array_equal(res.S.row, ref.S.row) and
                     np.array_equal(res.S.col, ref.S.col) and
                     np.array_equal(res.S.vals, ref.S.vals) and
                     res.tracker.summary() == ref.tracker.summary())
        assert identical, f"{executor} output diverged from serial"
        speedup = walls["serial"] / walls[executor]
        rows.append({"executor/workers": f"{executor}/{workers}",
                     "wall (s)": f"{walls[executor]:.2f}",
                     "speedup": f"{speedup:.2f}x",
                     "byte-identical": "yes"})
        record["runs"].append({
            "executor": executor, "workers": workers,
            "wall_seconds": round(walls[executor], 4),
            "speedup_vs_serial": round(speedup, 3),
            "identical_to_serial": True,
        })

    print(format_table(rows, title=(
        f"End-to-end pipeline wall-clock ({len(reads)} reads, x-drop, "
        f"{cpus} usable cores)")))

    best = max(r["speedup_vs_serial"] for r in record["runs"][1:])
    record["best_parallel_speedup"] = best

    # -- memory trajectory: monolithic vs. blocked at N_STRIPS strips ------
    blk = results["blocked"]
    assert (np.array_equal(blk.S.row, ref.S.row) and
            np.array_equal(blk.S.col, ref.S.col) and
            np.array_equal(blk.S.vals, ref.S.vals)), \
        "blocked mode output diverged from monolithic"
    mono_peak = ref.peak_candidate_bytes
    blk_peak = blk.peak_candidate_bytes
    reduction = mono_peak / max(1, blk_peak)
    record["memory"] = {
        "monolithic_peak_bytes_per_stage": ref.peak_bytes,
        "blocked_peak_bytes_per_stage": blk.peak_bytes,
        "monolithic_peak_candidate_bytes": mono_peak,
        "blocked_n_strips": N_STRIPS,
        "blocked_peak_candidate_bytes": blk_peak,
        "blocked_wall_seconds": round(walls["blocked"], 4),
        "candidate_memory_reduction": round(reduction, 3),
        "blocked_identical_to_monolithic": True,
    }
    print(f"peak candidate memory: monolithic {mono_peak:,} B, blocked "
          f"({N_STRIPS} strips) {blk_peak:,} B -> {reduction:.2f}x lower")
    assert reduction >= MIN_MEMORY_REDUCTION, (
        f"expected >= {MIN_MEMORY_REDUCTION}x lower candidate-memory peak "
        f"at {N_STRIPS} strips, measured {reduction:.2f}x")

    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name} (best parallel speedup {best:.2f}x)")

    # Gate only where the hardware can deliver; REPRO_BENCH_MIN_SPEEDUP
    # overrides the threshold ("0" records without gating — e.g. noisy
    # shared runners).
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))
    if cpus >= WORKERS and min_speedup > 0.0:
        assert best >= min_speedup, (
            f"expected >= {min_speedup}x end-to-end speedup with {WORKERS} "
            f"workers on {cpus} cores, measured {best:.2f}x")
