"""Sketched seeding vs full-k: matrix-size reduction and overlap recall.

Full-k seeding puts every reliable k-mer window into A, so nnz(A) — and
through C = A·Aᵀ every downstream stage — scales with total read length.
The ``--seed-mode`` sketches (minimizer / open syncmer, PR 8) keep a
density-``~1/w`` subset of windows chosen so that any sufficiently long
shared substring still yields a shared seed: true overlaps survive, while
candidate pairs that share only short, scattered repeat seeds are pruned
from C before alignment ever sees them.

The dataset makes that separation measurable: a repeat-dense genome (k=13
on a 800 kb random genome ≈ one natural 2-copy 13-mer every ~100 bp —
birthday-collision repeats, each an *isolated* shared seed) under
long-ish reads, so the full-k candidate matrix is dominated by
single-seed repeat pairs exactly as real repetitive genomes produce.

Measured per mode: nnz(A), nnz(C), wall-clock, and recall of the full-k
pipeline's *true* overlap pairs (ground-truth overlap >= 500 bp — the
BELLA criterion).  Gates (the PR's acceptance bar, on fixed seeds, so the
counts are deterministic):

* minimizer at w=8 shrinks nnz(A) and nnz(C) >= ``MIN_SEED_REDUCTION``×;
* recall of full-k's true pairs stays >= ``MIN_SEED_RECALL``.

``REPRO_BENCH_MIN_SEED_REDUCTION`` overrides the reduction bar (``0``
records without gating, which also disables the recall gate).  Results
land in ``BENCH_seed.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

from repro.core.pipeline import PipelineConfig, run_pipeline
from repro.eval.assembly_metrics import pair_recall
from repro.eval.report import format_table
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_seed.json"

#: Repeat-dense long-read dataset.  k=13 over 800 kb gives ~4800 natural
#: two-copy k-mers; each is an isolated shared seed planting spurious
#: candidate pairs that sketching prunes, while 5 kb reads at depth 8 share
#: long exact runs (error 3% → mean exact stretch ~17 bp, frequent >= k+w-1
#: runs) that guarantee shared sketch seeds for true overlaps.
GENOME_LENGTH = 800_000
DEPTH = 8
MEAN_LEN = 5_000
MIN_LEN = 2_500
ERROR_RATE = 0.03
K = 13
SEED_W = 8
NPROCS = 4
MIN_OVERLAP = 500  # BELLA's "true overlap" threshold (bases)

#: The PR's acceptance gates (deterministic on the fixed-seed dataset).
MIN_SEED_REDUCTION = 3.0
MIN_SEED_RECALL = 0.95

MODES = ("full", "minimizer", "syncmer")


def _dataset():
    _genome, reads, layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=GENOME_LENGTH, seed=7),
                    depth=DEPTH, mean_len=MEAN_LEN, min_len=MIN_LEN,
                    error=ErrorModel(rate=ERROR_RATE), seed=3))
    reads.soa()  # build the SoA cache outside the timed region
    return reads, layout


def _run_mode(reads, mode):
    cfg = PipelineConfig(k=K, nprocs=NPROCS, align_mode="chain",
                         depth_hint=DEPTH, error_hint=ERROR_RATE,
                         seed_mode=mode, seed_w=SEED_W)
    t0 = time.perf_counter()
    res = run_pipeline(reads, cfg)
    wall = time.perf_counter() - t0
    pairs = {(min(a, b), max(a, b))
             for a, b in zip(res.R.row.tolist(), res.R.col.tolist())}
    return {"mode": mode, "nnz_a": res.nnz_a, "nnz_c": res.nnz_c,
            "pairs": pairs, "seconds": wall}


def test_seed_mode_reduction(benchmark):
    reads, layout = _dataset()
    truth = layout.overlap_pairs(MIN_OVERLAP)

    def run():
        return {mode: _run_mode(reads, mode) for mode in MODES}

    by_mode = benchmark.pedantic(run, rounds=1, iterations=1)

    full = by_mode["full"]
    # Full-k's correctly-detected true overlaps: the oracle pair set the
    # sketched modes must preserve.
    full_true = full["pairs"] & truth

    rows = []
    for mode in MODES:
        r = by_mode[mode]
        r["a_reduction"] = full["nnz_a"] / max(1, r["nnz_a"])
        r["c_reduction"] = full["nnz_c"] / max(1, r["nnz_c"])
        r["recall_vs_full"] = pair_recall(r["pairs"], full_true)
        rows.append({
            "mode": mode, "nnz_a": r["nnz_a"], "nnz_c": r["nnz_c"],
            "A reduction": f"{r['a_reduction']:.2f}x",
            "C reduction": f"{r['c_reduction']:.2f}x",
            "recall vs full": f"{r['recall_vs_full']:.4f}",
            "seconds": f"{r['seconds']:.2f}",
        })
    print()
    print(format_table(rows, title=(
        f"Seeding modes ({len(reads)} reads, k={K}, w={SEED_W}, "
        f"|full true pairs|={len(full_true)})")))

    record = {
        "bench": "seed_mode",
        "dataset": {"genome_length": GENOME_LENGTH, "depth": DEPTH,
                    "mean_len": MEAN_LEN, "min_len": MIN_LEN,
                    "error_rate": ERROR_RATE, "n_reads": len(reads),
                    "k": K, "seed_w": SEED_W, "nprocs": NPROCS,
                    "min_overlap": MIN_OVERLAP,
                    "n_full_true_pairs": len(full_true)},
        "modes": {mode: {
            "nnz_a": int(by_mode[mode]["nnz_a"]),
            "nnz_c": int(by_mode[mode]["nnz_c"]),
            "a_reduction": round(by_mode[mode]["a_reduction"], 3),
            "c_reduction": round(by_mode[mode]["c_reduction"], 3),
            "recall_vs_full": round(by_mode[mode]["recall_vs_full"], 5),
            "seconds": round(by_mode[mode]["seconds"], 3),
        } for mode in MODES},
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    mini = by_mode["minimizer"]
    print(f"wrote {JSON_PATH.name} (minimizer w={SEED_W}: "
          f"nnz(A) {mini['a_reduction']:.2f}x, "
          f"nnz(C) {mini['c_reduction']:.2f}x, "
          f"recall {mini['recall_vs_full']:.4f})")

    min_reduction = float(os.environ.get("REPRO_BENCH_MIN_SEED_REDUCTION",
                                         str(MIN_SEED_REDUCTION)))
    if min_reduction > 0.0:
        for mode in ("minimizer", "syncmer"):
            r = by_mode[mode]
            assert r["a_reduction"] >= min_reduction, (
                f"{mode}: expected >= {min_reduction}x nnz(A) reduction, "
                f"measured {r['a_reduction']:.2f}x")
            assert r["c_reduction"] >= min_reduction, (
                f"{mode}: expected >= {min_reduction}x nnz(C) reduction, "
                f"measured {r['c_reduction']:.2f}x")
            assert r["recall_vs_full"] >= MIN_SEED_RECALL, (
                f"{mode}: expected >= {MIN_SEED_RECALL} recall of full-k's "
                f"true overlaps, measured {r['recall_vs_full']:.4f}")
