"""Table I — communication costs of diBELLA 1D vs 2D.

Regenerates the paper's per-stage bandwidth (W, words) and latency (Y,
messages) costs, reporting the **measured** per-rank maxima from executed
collectives next to the analytic predictions of Section V evaluated with the
run's own dataset parameters.  The shape to verify: 2D overlap detection
moves ~am/√P words in √P messages, 1D moves ~a²m/P words in P messages, and
the 1D read exchange is smaller than the 2D one (cnl/P vs 2nl/√P) — the 2D
algorithm wins overall because the a²m/P term dominates at these
concurrencies (Section V-B).
"""

from repro.eval.experiments import table1_comm_costs
from repro.eval.report import format_table
from repro.mpisim.machine import CORI_HASWELL, SUMMIT_CPU


def test_table1_comm_costs(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_comm_costs("ecoli_like", procs=(4, 16)),
        rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=["P", "task", "measured_W_2d", "predicted_W",
                 "measured_Y_2d", "predicted_Y_2d", "measured_W_1d",
                 "predicted_W_1d", "measured_Y_1d", "predicted_Y_1d"],
        title="Table I: per-rank communication costs (words W / messages Y)"))
    print()
    print("Table V machine models used throughout:")
    for m in (CORI_HASWELL, SUMMIT_CPU):
        print(f"  {m.name}: {m.cores_per_node} cores/node, "
              f"alpha={m.alpha:.2e}s, beta={m.beta:.2e}B/s, "
              f"compute_scale={m.compute_scale}")

    # Shape assertions: measured quantities follow the analytic scaling.
    by = {(r["P"], r["task"]): r for r in rows}
    for P in (4, 16):
        ov = by[(P, "Overlap Detection")]
        assert ov["measured_Y_2d"] <= 2 * P ** 0.5  # O(sqrt P) messages
        assert ov["measured_Y_1d"] >= ov["measured_Y_2d"]
    # Bandwidth: 2D SpGEMM volume shrinks ~1/sqrtP as P grows.
    w4 = by[(4, "Overlap Detection")]["measured_W_2d"]
    w16 = by[(16, "Overlap Detection")]["measured_W_2d"]
    assert w16 < w4
