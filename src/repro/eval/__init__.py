"""Evaluation harness: scaled datasets, metrics, per-table/figure experiment
drivers, and plain-text reporting."""

from .datasets import PRESETS, DatasetPreset, load_preset
from .metrics import (graph_edge_recall, overlap_recall_precision,
                      parallel_efficiency, speedup_series)
from .experiments import (fig4_strong_scaling, fig5to8_breakdown,
                          fig9_1d_vs_2d, minimap_comparison,
                          pipeline_for_preset, table1_comm_costs,
                          table3_sparsity, table4_datasets,
                          table6_tr_vs_sora)
from .report import format_table, format_value, print_table
from .assembly_metrics import (contig_spans, genome_coverage, misjoin_count,
                               n50)

__all__ = [
    "PRESETS", "DatasetPreset", "load_preset",
    "graph_edge_recall", "overlap_recall_precision", "parallel_efficiency",
    "speedup_series",
    "fig4_strong_scaling", "fig5to8_breakdown", "fig9_1d_vs_2d",
    "minimap_comparison", "pipeline_for_preset", "table1_comm_costs",
    "table3_sparsity", "table4_datasets", "table6_tr_vs_sora",
    "format_table", "format_value", "print_table",
    "contig_spans", "genome_coverage", "misjoin_count", "n50",
]
