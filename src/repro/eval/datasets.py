"""Scaled dataset presets standing in for the paper's read sets.

Table IV evaluates on PacBio CLR C. elegans (100 Mb genome, depth 40, 13%
error) and H. sapiens (3 Gb, depth 10, 15% error); Table III additionally
reports E. coli (depth 30).  Those inputs are 5–33 GB; the presets here are
**scale models**: genome lengths shrink ~10³× and read lengths ~10× while the
quantities that drive every measured effect are preserved —

* depth ``d`` (30 / 40 / 10) — sets the ideal density ``c = 2d``;
* error rate (0.13–0.15) — sets k-mer survival and endpoint fuzz;
* relative repeat content — E. coli low, C. elegans moderate, H. sapiens
  high, which reproduces Table III's *ordering* of the inefficiency factor
  ``c/2d``;
* read length ≫ k — so ``l − k + 1 ≈ l`` holds as in Section V-A.

``toy`` is a seconds-fast preset for tests and the quickstart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..seqs.dna import GenomeSpec
from ..seqs.simulator import ErrorModel, ReadSimSpec, ReadSet, TrueLayout, \
    simulate_reads

__all__ = ["DatasetPreset", "PRESETS", "load_preset"]


@dataclass(frozen=True)
class DatasetPreset:
    """A named scaled dataset (see module docstring for the scaling rules)."""

    name: str
    paper_name: str
    spec: ReadSimSpec

    @property
    def depth(self) -> float:
        return self.spec.depth

    @property
    def error_rate(self) -> float:
        return self.spec.error.rate


def _preset(name: str, paper: str, glen: int, repeats: int, rep_len: int,
            depth: float, err: float, mean_len: float, seed: int
            ) -> DatasetPreset:
    return DatasetPreset(
        name=name, paper_name=paper,
        spec=ReadSimSpec(
            genome=GenomeSpec(length=glen, n_repeats=repeats,
                              repeat_len=rep_len, seed=seed),
            depth=depth, mean_len=mean_len, sigma_len=0.35,
            min_len=max(200, int(mean_len * 0.3)),
            error=ErrorModel(rate=err), seed=seed + 1))


#: Named presets.  Genome sizes keep the paper's ordering (E. coli <
#: C. elegans < H. sapiens) at tractable scale; repeat counts grow with
#: genome complexity to reproduce Table III's inefficiency ordering.
PRESETS: dict[str, DatasetPreset] = {
    "toy": _preset("toy", "toy", 20_000, 0, 0, 15.0, 0.05, 800.0, 7),
    "ecoli_like": _preset("ecoli_like", "E. coli", 120_000, 2, 2_000,
                          30.0, 0.13, 1_100.0, 11),
    "celegans_like": _preset("celegans_like", "C. elegans", 200_000, 14,
                             2_500, 40.0, 0.13, 1_100.0, 13),
    "hsapiens_like": _preset("hsapiens_like", "H. sapiens", 400_000, 60,
                             3_000, 10.0, 0.15, 1_000.0, 17),
}


def load_preset(name: str):
    """Simulate a preset; returns ``(preset, genome, reads, layout)``."""
    preset = PRESETS[name]
    genome, reads, layout = simulate_reads(preset.spec)
    return preset, genome, reads, layout
