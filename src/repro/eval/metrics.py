"""Evaluation metrics: scaling efficiency, speedups, and graph accuracy.

The paper reports strong-scaling parallel efficiency (Fig. 4), per-stage
efficiencies (Section VII-A), speedups over baselines (Fig. 9, Table VI),
and — implicitly via BELLA — overlap detection recall/precision.  These
helpers compute all of them from runtimes and ground-truth layouts.
"""

from __future__ import annotations

import numpy as np

from ..core.string_graph import StringGraph
from ..seqs.simulator import TrueLayout

__all__ = [
    "parallel_efficiency",
    "speedup_series",
    "overlap_recall_precision",
    "graph_edge_recall",
]


def parallel_efficiency(procs: list[int], times: list[float]) -> list[float]:
    """Strong-scaling efficiency relative to the smallest run.

    ``eff(P) = T(P0)·P0 / (T(P)·P)``; the paper quotes ≥80% for H. sapiens.
    """
    if len(procs) != len(times) or not procs:
        raise ValueError("procs and times must be equal-length, non-empty")
    p0, t0 = procs[0], times[0]
    return [(t0 * p0) / (t * p) if t > 0 else float("nan")
            for p, t in zip(procs, times)]


def speedup_series(base_times: list[float], new_times: list[float]
                   ) -> list[float]:
    """Pointwise speedup of ``new`` over ``base`` (Table VI's last column)."""
    if len(base_times) != len(new_times):
        raise ValueError("series must be equal length")
    return [b / n if n > 0 else float("inf")
            for b, n in zip(base_times, new_times)]


def overlap_recall_precision(found_pairs: set[tuple[int, int]],
                             layout: TrueLayout, min_overlap: int = 500
                             ) -> tuple[float, float]:
    """Recall/precision of detected read pairs against the true layout.

    A pair is *true* when the source genome intervals of the two reads share
    at least ``min_overlap`` bases (the BELLA evaluation criterion).
    """
    truth = layout.overlap_pairs(min_overlap)
    if not truth:
        return float("nan"), float("nan")
    norm_found = {(min(a, b), max(a, b)) for a, b in found_pairs}
    tp = len(norm_found & truth)
    recall = tp / len(truth)
    precision = tp / len(norm_found) if norm_found else float("nan")
    return recall, precision


def graph_edge_recall(graph: StringGraph, layout: TrueLayout,
                      min_overlap: int = 500) -> float:
    """Fraction of true overlapping pairs retained as string-graph edges.

    After transitive reduction most true pairs are *intentionally* removed;
    this metric is used on the overlap graph R (before reduction) and for
    sanity bounds on S (reads adjacent on the genome should mostly remain
    connected).
    """
    pairs = {(min(int(s), int(d)), max(int(s), int(d)))
             for s, d in zip(graph.src, graph.dst)}
    truth = layout.overlap_pairs(min_overlap)
    if not truth:
        return float("nan")
    return len(pairs & truth) / len(truth)
