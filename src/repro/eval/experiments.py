"""Experiment drivers — one function per paper table/figure.

Each driver returns plain row dictionaries so benchmarks, tests and
EXPERIMENTS.md generation share one code path.  The mapping to the paper:

==========================  ====================================
driver                      paper artifact
==========================  ====================================
:func:`table1_comm_costs`   Table I  (communication costs 1D vs 2D)
:func:`table3_sparsity`     Table III (densities c, c/2d, r)
:func:`table4_datasets`     Table IV (dataset statistics)
:func:`table6_tr_vs_sora`   Table VI (TR: diBELLA 2D vs SORA)
:func:`fig4_strong_scaling` Fig. 4  (strong scaling, 2 machines)
:func:`fig5to8_breakdown`   Figs. 5–8 (runtime breakdowns)
:func:`fig9_1d_vs_2d`       Fig. 9  (diBELLA 2D vs 1D)
:func:`minimap_comparison`  §VII-B  (minimap2 crossover)
==========================  ====================================
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from ..baselines.dibella1d import run_dibella1d
from ..baselines.sora import sora_transitive_reduction
from ..baselines.minimap_like import run_minimap_like
from ..core.pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..mpisim.machine import CORI_HASWELL, MACHINES, SUMMIT_CPU
from ..seqs.fasta import ReadSet
from .datasets import PRESETS, load_preset
from .metrics import parallel_efficiency, speedup_series

__all__ = [
    "pipeline_for_preset", "table1_comm_costs", "table3_sparsity",
    "table4_datasets", "table6_tr_vs_sora", "fig4_strong_scaling",
    "fig5to8_breakdown", "fig9_1d_vs_2d", "minimap_comparison",
    "accuracy_table", "seed_mode_table",
]

_CACHE: dict = {}


def _dataset(name: str):
    """Simulate (and memoize) a preset's reads within one process."""
    if name not in _CACHE:
        _CACHE[name] = load_preset(name)
    return _CACHE[name]


def pipeline_for_preset(name: str, nprocs: int, align_mode: str = "chain",
                        **overrides) -> tuple[PipelineResult, ReadSet]:
    """Run diBELLA 2D on a preset (chain alignment by default for speed)."""
    preset, _genome, reads, _layout = _dataset(name)
    cfg = PipelineConfig(k=17, nprocs=nprocs, align_mode=align_mode,
                         depth_hint=preset.depth,
                         error_hint=preset.error_rate, **overrides)
    key = ("pipe", name, nprocs, align_mode, tuple(sorted(overrides.items())))
    if key not in _CACHE:
        _CACHE[key] = run_pipeline(reads, cfg)
    return _CACHE[key], reads


# ---------------------------------------------------------------------------
# Table I — communication costs
# ---------------------------------------------------------------------------

def table1_comm_costs(name: str = "ecoli_like",
                      procs: tuple[int, ...] = (4, 16)) -> list[dict]:
    """Measured per-rank words/messages vs the paper's analytic formulas.

    For each P, runs both pipelines and reports, per stage, the measured
    max-per-rank word count ``W`` and message count ``Y`` next to the
    Table I prediction evaluated with the run's own dataset parameters
    (n, l, k, a, m, c, r).
    """
    preset, _genome, reads, _layout = _dataset(name)
    rows: list[dict] = []
    n = len(reads)
    l = float(np.mean(reads.lengths))
    k = 17
    for P in procs:
        res, _ = pipeline_for_preset(name, P)
        oned = _dibella1d_for(name, P)
        m = res.n_kmers
        a = _a_density(res)
        c = res.c_density
        r = res.r_density
        sq = math.sqrt(P)
        word = 8.0

        def w(stage, tracker):
            return tracker.words(stage, word_bytes=8)

        rows.append({
            "P": P, "task": "K-mer Counting",
            "measured_W_2d": w("CountKmer", res.tracker),
            "predicted_W": n * l * k / 4 / P / word,
            "measured_Y_2d": res.tracker.messages("CountKmer"),
            "predicted_Y_2d": 2 * P,  # two passes, b=1 each
        })
        rows.append({
            "P": P, "task": "Overlap Detection",
            "measured_W_2d": w("SpGEMM", res.tracker),
            "predicted_W": a * m / sq * _spgemm_entry_words(),
            "measured_Y_2d": res.tracker.messages("SpGEMM"),
            "predicted_Y_2d": sq,
            "measured_W_1d": oned.tracker.words("Overlap1D"),
            "predicted_W_1d": a * a * m / P * _pair_entry_words(),
            "measured_Y_1d": oned.tracker.messages("Overlap1D"),
            "predicted_Y_1d": P,
        })
        rows.append({
            "P": P, "task": "Read Exchange",
            "measured_W_2d": w("ExchangeRead", res.tracker),
            "predicted_W": 2 * n * l / sq / word,
            "measured_Y_2d": res.tracker.messages("ExchangeRead"),
            "predicted_Y_2d": sq,
            "measured_W_1d": oned.tracker.words("ExchangeRead1D"),
            "predicted_W_1d": c * n * l / P / word,
            "measured_Y_1d": oned.tracker.messages("ExchangeRead1D"),
            "predicted_Y_1d": min(c * n * l / P, P),
        })
        rows.append({
            "P": P, "task": "Transitive Reduction",
            "measured_W_2d": w("TrReduction", res.tracker),
            "predicted_W": r * n / sq * 4,  # 4-field R payload words
            "measured_Y_2d": res.tracker.messages("TrReduction"),
            "predicted_Y_2d": res.tr_rounds * sq,
        })
    return rows


def _spgemm_entry_words() -> int:
    """Words per shipped A entry (row, col, pos, flip as int64)."""
    return 4


def _pair_entry_words() -> int:
    """Words per shipped 1D candidate pair tuple."""
    return 5


def _a_density(res: PipelineResult) -> float:
    """A's density ``a = nnz(A)/m`` (Table II)."""
    return res.a_density


def _dibella1d_for(name: str, P: int):
    preset, _genome, reads, _layout = _dataset(name)
    key = ("1d", name, P)
    if key not in _CACHE:
        _CACHE[key] = run_dibella1d(
            reads, k=17, nprocs=P, align_mode="chain",
            depth_hint=preset.depth, error_hint=preset.error_rate)
    return _CACHE[key]


# ---------------------------------------------------------------------------
# Table III / Table IV
# ---------------------------------------------------------------------------

def table3_sparsity(names: tuple[str, ...] = ("ecoli_like", "celegans_like",
                                              "hsapiens_like"),
                    nprocs: int = 4) -> list[dict]:
    """Densities c, inefficiency c/2d, and r for each dataset (Table III)."""
    rows = []
    for name in names:
        preset, _genome, reads, _layout = _dataset(name)
        res, _ = pipeline_for_preset(name, nprocs)
        rows.append({
            "dataset": preset.paper_name,
            "depth": preset.depth,
            "c_density": res.c_density,
            "inefficiency": res.inefficiency(preset.depth),
            "r_density": res.r_density,
            "s_density": res.s_density,
        })
    return rows


def table4_datasets(names: tuple[str, ...] = ("celegans_like",
                                              "hsapiens_like")) -> list[dict]:
    """Dataset statistics (Table IV) for the scaled presets."""
    rows = []
    for name in names:
        preset, genome, reads, _layout = _dataset(name)
        rows.append({
            "label": preset.paper_name,
            "depth": preset.depth,
            "reads_K": len(reads) / 1e3,
            "mean_length": float(np.mean(reads.lengths)),
            "input_MB": reads.total_bases() / 1e6,
            "genome_size_Kb": genome.shape[0] / 1e3,
            "error": preset.error_rate,
        })
    return rows


# ---------------------------------------------------------------------------
# Table VI — transitive reduction vs SORA
# ---------------------------------------------------------------------------

def table6_tr_vs_sora(names: tuple[str, ...] = ("celegans_like",
                                                "hsapiens_like"),
                      node_counts: tuple[int, ...] = (4, 9, 16),
                      ranks_per_node: int = 4) -> list[dict]:
    """diBELLA 2D TR vs SORA runtimes and speedups (Table VI).

    ``node_counts × ranks_per_node`` gives the P grid (paper: 32 ranks/node
    at 32–338 nodes; scaled here).  SORA consumes diBELLA's overlap graph R,
    exactly as the paper feeds SORA the 2D pipeline's output.
    """
    rows = []
    for name in names:
        for nodes in node_counts:
            P = nodes * ranks_per_node
            res, _reads = pipeline_for_preset(name, P)
            # diBELLA TR modeled time on Cori (Table VI is Cori-only).
            tr_time = (res.timer.stage_seconds.get("TrReduction", 0.0)
                       * CORI_HASWELL.compute_scale
                       + res.tracker.stage_comm_time("TrReduction",
                                                     CORI_HASWELL))
            # SORA gets the same overlap graph (pre-reduction R is not
            # retained; its string graph input in the paper is the overlap
            # graph, which we re-derive by re-running TR's input stage).
            graph = _overlap_graph_for(name, P)
            sora = sora_transitive_reduction(graph, nodes=nodes,
                                             cores_per_node=32)
            rows.append({
                "dataset": PRESETS[name].paper_name,
                "nodes": nodes,
                "sora_seconds": sora.modeled_seconds,
                "dibella_seconds": tr_time,
                "speedup": sora.modeled_seconds / tr_time if tr_time else
                float("inf"),
                "edges": graph.n_edges,
            })
    return rows


def _overlap_graph_for(name: str, P: int = 1):
    """The overlap graph R (TR input) as a StringGraph.

    The graph is P-invariant (tested), so it is built once per dataset on a
    single-rank grid and cached by name.
    """
    P = 1  # P-invariant; always build on the trivial grid
    from ..core.overlap import align_candidates, build_a_matrix, \
        candidate_overlaps
    from ..core.string_graph import StringGraph
    from ..mpisim.comm import SimComm
    from ..mpisim.grid import ProcessGrid2D
    from ..mpisim.tracker import CommTracker, StageTimer
    from ..seqs.kmer_counter import count_kmers, reliable_upper_bound

    key = ("rgraph", name, P)
    if key in _CACHE:
        return _CACHE[key]
    preset, _genome, reads, _layout = _dataset(name)
    comm = SimComm(P, CommTracker(P))
    timer = StageTimer()
    grid = ProcessGrid2D(P)
    upper = reliable_upper_bound(preset.depth, preset.error_rate, 17)
    table = count_kmers(reads, 17, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, grid, comm, timer)
    C = candidate_overlaps(A, comm, timer)
    R = align_candidates(C, reads, 17, comm, timer, mode="chain")
    graph = StringGraph.from_coomat(R.to_global())
    _CACHE[key] = graph
    return graph


# ---------------------------------------------------------------------------
# Fig. 4 — strong scaling; Figs. 5–8 — breakdowns
# ---------------------------------------------------------------------------

def fig4_strong_scaling(name: str = "celegans_like",
                        procs: tuple[int, ...] = (1, 4, 16, 64),
                        machines: tuple[str, ...] = ("cori", "summit")
                        ) -> list[dict]:
    """Strong scaling of the full pipeline on both machine models (Fig. 4)."""
    rows = []
    for mname in machines:
        machine = MACHINES[mname]
        times = []
        for P in procs:
            res, _ = pipeline_for_preset(name, P)
            times.append(res.modeled_total(machine))
        effs = parallel_efficiency(list(procs), times)
        for P, t, e in zip(procs, times, effs):
            rows.append({"dataset": PRESETS[name].paper_name,
                         "machine": machine.name, "P": P,
                         "seconds": t, "efficiency": e})
    return rows


def fig5to8_breakdown(name: str = "celegans_like",
                      procs: tuple[int, ...] = (4, 16, 64),
                      machine_name: str = "cori") -> list[dict]:
    """Per-stage runtime breakdown with and without alignment (Figs. 5–8)."""
    machine = MACHINES[machine_name]
    rows = []
    for P in procs:
        res, _ = pipeline_for_preset(name, P)
        stages = res.modeled_time(machine, include_alignment=True)
        for stage, secs in stages.items():
            rows.append({"dataset": PRESETS[name].paper_name,
                         "machine": machine.name, "P": P,
                         "stage": stage, "seconds": secs})
    return rows


# ---------------------------------------------------------------------------
# Fig. 9 — 2D vs 1D; §VII-B — minimap comparison
# ---------------------------------------------------------------------------

def fig9_1d_vs_2d(name: str = "celegans_like",
                  procs: tuple[int, ...] = (4, 16, 64),
                  machine_name: str = "summit") -> list[dict]:
    """diBELLA 2D vs 1D total runtime minus TR (Fig. 9's Summit setup).

    At laptop scale the communication terms are negligible and the two
    implementations sit near parity; the paper's 1.2–1.9× gap comes from
    the exchange volumes at real-data densities (see
    :func:`fig9_paper_scale_projection`).
    """
    machine = MACHINES[machine_name]
    rows = []
    for P in procs:
        res2d, _ = pipeline_for_preset(name, P)
        res1d = _dibella1d_for(name, P)
        t2d = res2d.modeled_total(machine) - res2d.modeled_time(
            machine).get("TrReduction", 0.0)
        t1d = res1d.modeled_total(machine)
        rows.append({"dataset": PRESETS[name].paper_name, "P": P,
                     "dibella2d_seconds": t2d, "dibella1d_seconds": t1d,
                     "speedup_2d_over_1d": t1d / t2d if t2d else float("inf")})
    return rows


#: The paper's dataset constants (Tables III–IV) used by the projection.
PAPER_DATASETS = {
    "C. elegans": {"n": 420_700, "l": 11_241, "c": 1_579.7, "a": 2.5},
    "H. sapiens": {"n": 4_421_600, "l": 7_401, "c": 1_207.7, "a": 2.5},
}


def fig9_paper_scale_projection(machine_name: str = "summit",
                                procs: tuple[int, ...] = (1024, 4096, 10816),
                                align_rate: float = 1e4,
                                proc_rate: float = 5e7) -> list[dict]:
    """Fig. 9's regime projected with the paper's dataset constants.

    Evaluates the Table I volume formulas with the *paper's* n, l, c (and a
    reliable-k-mer density a ≈ 2.5, the BELLA multiplicity window) at the
    paper's concurrencies, on the α–β machine model, adding a per-word
    processing cost (``proc_rate`` words/s for dedup/merge work — measured
    numpy throughput order) and a common alignment term (``align_rate``
    pairs/s/rank).  This is where the 1D read exchange's ``cnl/P`` with
    c ≈ 1200–1600 — versus 2D's ``2nl/√P`` — puts diBELLA 2D ahead until
    the ``P > c²/4`` crossover (Section V-C), reproducing the paper's
    1.2–1.9× shape from its own cost analysis.
    """
    machine = MACHINES[machine_name]
    rows = []
    for ds, p in PAPER_DATASETS.items():
        n, l, c, a = p["n"], p["l"], p["c"], p["a"]
        m = c * n / (a * a)  # from nnz(C) = m·a²/2 = c·n/2
        for P in procs:
            sq = P ** 0.5
            # --- 1D: candidate pairs (5 words each) + read exchange cnl/P.
            w1_pairs = c * n / (2 * P) * 5
            w1_reads = c * n * l / P / 8  # bytes -> words
            t1 = (machine.comm_time((w1_pairs + w1_reads) * 8, 2 * P)
                  + (w1_pairs + w1_reads) / proc_rate
                  + c * n / (2 * P) / align_rate)
            # --- 2D: SUMMA input blocks (4 words/entry) + 2nl/√P reads.
            w2_spgemm = a * m / sq * 4
            w2_reads = 2 * n * l / sq / 8
            t2 = (machine.comm_time((w2_spgemm + w2_reads) * 8, 2 * sq)
                  + (w2_spgemm + w2_reads) / proc_rate
                  + c * n / (2 * P) / align_rate)
            rows.append({"dataset": ds, "P": P,
                         "dibella1d_seconds": t1, "dibella2d_seconds": t2,
                         "speedup_2d_over_1d": t1 / t2})
    return rows


def accuracy_table(names: tuple[str, ...] = ("toy", "ecoli_like"),
                   min_overlap: int = 500, nprocs: int = 4) -> list[dict]:
    """Overlap-detection accuracy vs ground truth (BELLA-style evaluation).

    The paper defers accuracy numbers to the single-node BELLA paper
    (Section VI); with simulated reads we can score the candidate set
    directly: recall/precision of nnz(C) pairs against true pairs
    overlapping >= ``min_overlap`` bp, plus the string-graph contiguity
    metrics of the final layout.
    """
    from ..core.contigs import extract_contigs
    from .assembly_metrics import (contig_spans, genome_coverage,
                                   misjoin_count, n50)
    from .metrics import overlap_recall_precision

    rows = []
    for name in names:
        preset, genome, reads, layout = _dataset(name)
        res, _ = pipeline_for_preset(name, nprocs)
        found = _candidate_pairs_for(name)
        # BELLA's convention: recall against long true overlaps, precision
        # judged with a permissive truth (short true overlaps found by the
        # detector are correct detections, not false positives).
        recall, _ = overlap_recall_precision(found, layout, min_overlap)
        _, precision = overlap_recall_precision(found, layout, 100)
        contigs = extract_contigs(res.string_graph)
        spans = [hi - lo for lo, hi in contig_spans(contigs, layout)]
        rows.append({
            "dataset": preset.paper_name,
            "recall": recall,
            "precision": precision,
            "contig_n50_bp": n50(spans),
            "genome_coverage": genome_coverage(contigs, layout,
                                               genome.shape[0]),
            "misjoins": misjoin_count(contigs, layout),
        })
    return rows


def seed_mode_table(name: str = "ecoli_like",
                    modes: tuple[str, ...] = ("full", "minimizer", "syncmer"),
                    seed_w: int = 8, min_overlap: int = 500,
                    nprocs: int = 4) -> list[dict]:
    """Sketched seeding modes scored against the full-k oracle.

    Runs the pipeline once per seeding mode on the same reads and reports,
    per mode: the seed matrix / candidate matrix sizes (nnz(A), nnz(C) —
    the quantities sketching exists to shrink), recall of true overlaps
    (overlap-graph pairs vs layout pairs >= ``min_overlap`` bp), recall of
    the *full-k* mode's correctly-detected true overlaps (what sketching
    loses relative to every-window seeding, scored on the pairs that
    matter — full-k also finds shallow sub-``min_overlap`` pairs whose
    loss is the point of sketching), and the downstream layout quality
    (contig N50, genome coverage, misjoins).  ``modes`` must start with
    ``"full"`` so the oracle row exists before the sketched rows
    reference it.
    """
    from ..core.contigs import extract_contigs
    from .assembly_metrics import (contig_spans, genome_coverage,
                                   misjoin_count, n50, pair_recall)

    preset, genome, _reads, layout = _dataset(name)
    truth = layout.overlap_pairs(min_overlap)
    rows: list[dict] = []
    full_true: set[tuple[int, int]] = set()
    for mode in modes:
        res, _ = pipeline_for_preset(name, nprocs, seed_mode=mode,
                                     seed_w=seed_w)
        R = res.R
        pairs = {(min(a, b), max(a, b))
                 for a, b in zip(R.row.tolist(), R.col.tolist())}
        if mode == "full":
            full_true = pairs & {(min(a, b), max(a, b)) for a, b in truth}
        contigs = extract_contigs(res.string_graph)
        spans = [hi - lo for lo, hi in contig_spans(contigs, layout)]
        rows.append({
            "dataset": preset.paper_name,
            "seed_mode": mode,
            "seed_w": seed_w if mode != "full" else "-",
            "nnz_a": res.nnz_a,
            "nnz_c": res.nnz_c,
            "recall_truth": pair_recall(pairs, truth),
            "recall_vs_full": (pair_recall(pairs, full_true)
                               if full_true else float("nan")),
            "contig_n50_bp": n50(spans),
            "genome_coverage": genome_coverage(contigs, layout,
                                               genome.shape[0]),
            "misjoins": misjoin_count(contigs, layout),
        })
    return rows


def _candidate_pairs_for(name: str) -> set[tuple[int, int]]:
    """Candidate pair set nnz(C) for a dataset (cached)."""
    from ..core.overlap import build_a_matrix, candidate_overlaps
    from ..mpisim.comm import SimComm
    from ..mpisim.grid import ProcessGrid2D
    from ..mpisim.tracker import CommTracker, StageTimer
    from ..seqs.kmer_counter import count_kmers, reliable_upper_bound

    key = ("cpairs", name)
    if key in _CACHE:
        return _CACHE[key]
    preset, _genome, reads, _layout = _dataset(name)
    comm = SimComm(1, CommTracker(1))
    timer = StageTimer()
    upper = reliable_upper_bound(preset.depth, preset.error_rate, 17)
    table = count_kmers(reads, 17, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, ProcessGrid2D(1), comm, timer)
    C = candidate_overlaps(A, comm, timer).to_global()
    pairs = set(zip(C.row.tolist(), C.col.tolist()))
    _CACHE[key] = pairs
    return pairs


def minimap_comparison(name: str = "celegans_like",
                       procs: tuple[int, ...] = (1, 4, 16, 64),
                       machine_name: str = "cori") -> list[dict]:
    """minimap2-like single node vs diBELLA 2D at scale (§VII-B)."""
    machine = MACHINES[machine_name]
    _preset, _genome, reads, _layout = _dataset(name)
    mm = run_minimap_like(reads)
    mm_time = mm.modeled_threads_time(threads=32)
    rows = [{"dataset": PRESETS[name].paper_name, "system": "minimap2-like",
             "P": 1, "seconds": mm_time, "pairs": mm.n_pairs}]
    for P in procs:
        res, _ = pipeline_for_preset(name, P)
        rows.append({"dataset": PRESETS[name].paper_name,
                     "system": "diBELLA 2D", "P": P,
                     "seconds": res.modeled_total(machine),
                     "pairs": res.nnz_c})
    return rows
