"""Assembly-quality metrics for contig sets.

The paper stops at the layout stage, but the purpose of a good string graph
is a good assembly; these metrics quantify that downstream quality against
the simulator's ground truth:

* :func:`contig_spans` — genomic interval each contig covers (via the true
  layout of its reads) plus a consistency check that consecutive reads in
  the contig really are genome neighbours;
* :func:`n50` — the standard contiguity statistic;
* :func:`genome_coverage` — fraction of the genome covered by contigs of a
  minimum read count;
* :func:`misjoin_count` — contigs whose consecutive reads are *not*
  overlapping on the genome (layout errors);
* :func:`pair_recall` — fraction of a reference pair set recovered by a
  detected pair set (used to score sketched seeding modes against the
  full-k oracle).
"""

from __future__ import annotations

import numpy as np

from ..core.contigs import Contig
from ..seqs.simulator import TrueLayout

__all__ = ["contig_spans", "n50", "genome_coverage", "misjoin_count",
           "pair_recall"]


def pair_recall(found: set[tuple[int, int]],
                reference: set[tuple[int, int]]) -> float:
    """Fraction of ``reference`` read pairs present in ``found``.

    Pairs are unordered: both sets are normalized to ``(min, max)`` before
    intersecting.  Returns ``nan`` for an empty reference.  With the true
    layout's overlap pairs as the reference this is overlap recall; with the
    full-k pipeline's pairs as the reference it measures what a sketched
    seeding mode (minimizer/syncmer) loses relative to every-window seeding.
    """
    ref = {(min(a, b), max(a, b)) for a, b in reference}
    if not ref:
        return float("nan")
    norm = {(min(a, b), max(a, b)) for a, b in found}
    return len(norm & ref) / len(ref)


def contig_spans(contigs: list[Contig], layout: TrueLayout
                 ) -> list[tuple[int, int]]:
    """Genomic (start, end) interval spanned by each contig's reads."""
    spans = []
    for c in contigs:
        starts = layout.start[np.array(c.reads)]
        ends = layout.end[np.array(c.reads)]
        spans.append((int(starts.min()), int(ends.max())))
    return spans


def n50(lengths: list[int]) -> int:
    """N50 of a set of lengths: the length L such that intervals of length
    >= L cover at least half the total."""
    if not lengths:
        return 0
    ordered = sorted(lengths, reverse=True)
    total = sum(ordered)
    acc = 0
    for L in ordered:
        acc += L
        if 2 * acc >= total:
            return L
    return ordered[-1]  # pragma: no cover


def genome_coverage(contigs: list[Contig], layout: TrueLayout,
                    genome_length: int, min_reads: int = 2) -> float:
    """Fraction of genome positions covered by contigs with >= ``min_reads``
    reads (union of their true spans)."""
    covered = np.zeros(genome_length, dtype=bool)
    for c, (lo, hi) in zip(contigs, contig_spans(contigs, layout)):
        if len(c) >= min_reads:
            covered[lo:hi] = True
    return float(covered.mean())


def misjoin_count(contigs: list[Contig], layout: TrueLayout,
                  min_overlap: int = 1) -> int:
    """Number of adjacent read pairs inside contigs that do **not** overlap
    on the genome — each is a layout error (misjoin)."""
    bad = 0
    for c in contigs:
        for a, b in zip(c.reads, c.reads[1:]):
            if layout.true_overlap(a, b) < min_overlap:
                bad += 1
    return bad
