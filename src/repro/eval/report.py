"""Plain-text table/series formatting for benchmark output.

The evaluation scripts print the same rows/series the paper reports; these
helpers keep the formatting consistent (fixed-width columns, 3 significant
digits for floats) so bench output is diff-able run to run.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_value", "print_table"]


def format_value(v) -> str:
    """Human formatting: 3-significant-digit floats, plain ints/strings."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render row dicts as a fixed-width text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[format_value(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                title: str | None = None) -> None:
    print(format_table(rows, columns, title))
