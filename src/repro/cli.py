"""Command-line interface.

Four subcommands cover the library's main workflows::

    python -m repro simulate --genome-length 50000 --depth 20 out.fa
    python -m repro assemble reads.fa --nprocs 4 --layout layout.tsv
    python -m repro stats reads.fa --nprocs 4
    python -m repro serve --port 8765 --nprocs 4 --initial reads.fa

``simulate`` writes a synthetic CLR-like read set (with the ground-truth
interval encoded in each read name), ``assemble`` runs the diBELLA 2D
pipeline and writes the contig layout, ``stats`` prints the matrix
statistics and stage breakdown without writing outputs, and ``serve``
starts the long-running incremental assembly service (versioned delta
updates over HTTP, see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import sys

from .align.batch import ALIGN_IMPLS
from .core.contigs import extract_contigs
from .core.memory import (OVERLAP_MODES, apportion_budget, format_bytes,
                          parse_bytes)
from .core.pipeline import STAGES, PipelineConfig, run_pipeline_from_fasta
from .dsparse.backend import available_backends
from .dsparse.masked import SPGEMM_IMPLS
from .exec import available_executors
from .mpisim.machine import MACHINES
from .seqs.dna import GenomeSpec, decode
from .seqs.kmer_counter import KMER_IMPLS
from .seqs.read_store import READ_STORES
from .seqs.seeding import SEED_MODES
from .seqs.fasta import read_fasta, write_fasta
from .seqs.simulator import ErrorModel, ReadSimSpec, simulate_reads
from .service import REFRESH_MODES, AssemblyService, ServiceConfig, \
    make_server

__all__ = ["main", "build_parser"]


def _budget_bytes(text: str) -> int:
    """argparse type for --memory-budget: parse_bytes, must be positive."""
    try:
        value = parse_bytes(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"memory budget must be positive, got {text!r}")
    return value


def _strip_count(text: str) -> int:
    """argparse type for --n-strips: integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"strip count must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="diBELLA 2D reproduction: parallel string graph "
                    "construction and transitive reduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="write a synthetic CLR read set")
    sim.add_argument("output", help="output FASTA path")
    sim.add_argument("--genome-length", type=int, default=50_000)
    sim.add_argument("--depth", type=float, default=20.0)
    sim.add_argument("--mean-read-length", type=float, default=1_000.0)
    sim.add_argument("--error-rate", type=float, default=0.1)
    sim.add_argument("--repeats", type=int, default=0,
                     help="number of planted repeat copies")
    sim.add_argument("--repeat-length", type=int, default=2_000)
    sim.add_argument("--seed", type=int, default=0)

    # argparse defaults come straight from PipelineConfig so the two can
    # never drift apart (the parity test in tests/test_cli.py pins this).
    cfg = PipelineConfig()

    def add_pipeline_args(p):
        p.add_argument("reads", help="input FASTA")
        p.add_argument("--k", type=int, default=cfg.k)
        p.add_argument("--nprocs", type=int, default=cfg.nprocs,
                       help="simulated process count (perfect square)")
        p.add_argument("--align-mode", choices=("xdrop", "chain"),
                       default=cfg.align_mode)
        p.add_argument("--align-impl", choices=("auto",) + ALIGN_IMPLS,
                       default=cfg.align_impl,
                       help="alignment engine: 'batch' runs one vectorized "
                            "x-drop sweep over whole chunks of candidate "
                            "pairs, 'loop' aligns pair by pair (the "
                            "reference oracle); 'auto' honors "
                            "REPRO_ALIGN_IMPL, else batch (results are "
                            "engine-independent)")
        p.add_argument("--kmer-impl", choices=("auto",) + KMER_IMPLS,
                       default=cfg.kmer_impl,
                       help="k-mer engine: 'batch' extracts and counts "
                            "through vectorized sorted-array SoA tables "
                            "(one sweep per rank for CountKmer and the "
                            "CreateSpMat scan), 'loop' runs the per-read / "
                            "per-key dict reference oracle; 'auto' honors "
                            "REPRO_KMER_IMPL, else batch (results are "
                            "engine-independent)")
        p.add_argument("--spgemm-impl", choices=("auto",) + SPGEMM_IMPLS,
                       default=cfg.spgemm_impl,
                       help="SpGEMM engine for the multi-field semiring "
                            "products: 'masked' decomposes C = A*At into a "
                            "native count product plus a mask-pruned ESC "
                            "seed pass and squares R under its own pattern "
                            "in transitive reduction, 'esc' runs the "
                            "monolithic expand-sort-compress reference "
                            "oracle; 'auto' honors REPRO_SPGEMM_IMPL, else "
                            "masked (results are engine-independent)")
        p.add_argument("--fuzz", type=int, default=cfg.fuzz)
        p.add_argument("--depth-hint", type=float, default=cfg.depth_hint)
        p.add_argument("--error-hint", type=float, default=cfg.error_hint)
        p.add_argument("--machine", choices=sorted(MACHINES), default="cori")
        p.add_argument("--backend", choices=available_backends(),
                       default=cfg.backend,
                       help="local sparse-kernel backend: 'auto' lowers "
                            "scalar semirings to scipy CSR kernels and "
                            "runs multi-field semirings on the numpy ESC "
                            "reference (results are backend-independent)")
        p.add_argument("--workers", type=int, default=cfg.workers,
                       help="parallel workers for the simulated ranks' "
                            "local compute (default: the REPRO_WORKERS "
                            "environment variable, else 1)")
        p.add_argument("--executor", choices=available_executors(),
                       default=cfg.executor,
                       help="execution engine: 'auto' runs serial for one "
                            "worker and a fork-safe process pool otherwise "
                            "(results are executor-independent)")
        p.add_argument("--overlap-mode",
                       choices=("auto",) + OVERLAP_MODES,
                       default=cfg.overlap_mode,
                       help="candidate-formation path: 'blocked' strip-"
                            "mines C = A*At (paper Section VIII) so peak "
                            "candidate memory drops ~n_strips-fold with "
                            "byte-identical output; 'auto' honors "
                            "REPRO_OVERLAP_MODE, else monolithic")
        p.add_argument("--n-strips", type=_strip_count,
                       default=cfg.n_strips,
                       help="explicit strip count for blocked mode "
                            "(default: derived from --memory-budget, "
                            "else 4)")
        p.add_argument("--memory-budget", type=_budget_bytes,
                       default=cfg.memory_budget, metavar="BYTES",
                       help="byte budget for the run's big consumers, e.g. "
                            "64M or 2G: half drives blocked mode's strip "
                            "count, a quarter caps the k-mer counter's "
                            "resident tables (sorted runs spill to disk "
                            "beyond it), the rest is headroom")
        p.add_argument("--read-store", choices=("auto",) + READ_STORES,
                       default=cfg.read_store,
                       help="read-base backend: 'inmem' keeps per-read "
                            "arrays resident, 'mmap' persists the 2-bit "
                            "code buffer to disk once and serves all SoA "
                            "views as read-only memmaps (workers reopen by "
                            "path; RSS stops scaling with input size); "
                            "'auto' honors REPRO_READ_STORE, else inmem "
                            "(results are backend-independent)")
        p.add_argument("--store-dir", default=cfg.store_dir, metavar="DIR",
                       help="directory for the mmap read store and k-mer "
                            "spill runs (default: honors REPRO_STORE_DIR, "
                            "else a self-cleaning temporary directory)")
        p.add_argument("--seed-mode", choices=("auto",) + SEED_MODES,
                       default=cfg.seed_mode,
                       help="seeding scheme: 'full' seeds with every "
                            "reliable k-mer window (the paper's behavior), "
                            "'minimizer'/'syncmer' sketch reads to "
                            "~2/(w+1) / 1/w of their windows before "
                            "counting and A construction — shrinking "
                            "nnz(A)/nnz(C) ~w-fold at a small recall "
                            "cost; 'auto' honors REPRO_SEED_MODE, else "
                            "full")
        p.add_argument("--seed-w", type=int, default=cfg.seed_w,
                       help="window parameter of the sketched seed modes "
                            "(k-mers per minimizer window; syncmer submer "
                            "length is k - w + 1); ignored by --seed-mode "
                            "full")
        p.add_argument("--fault-spec", dest="fault_plan",
                       default=cfg.fault_plan, metavar="SPEC",
                       help="deterministic fault injection spec, e.g. "
                            "'exec.chunk:crash@3;summa.block:exc@2' "
                            "(site:kind@counts clauses joined by ';'); "
                            "the default honors REPRO_FAULT_SPEC, and '' "
                            "pins the run fault-free — either way output "
                            "is byte-identical to a fault-free run")
        p.add_argument("--checkpoint-dir", default=cfg.checkpoint_dir,
                       metavar="DIR",
                       help="crash-safe per-strip checkpoint directory for "
                            "--overlap-mode blocked: completed strips "
                            "persist there, and re-running a killed "
                            "command with the same DIR resumes at the "
                            "last completed strip (default: honors "
                            "REPRO_CHECKPOINT_DIR, else off)")

    asm = sub.add_parser("assemble", help="run the pipeline, write contigs")
    add_pipeline_args(asm)
    asm.add_argument("--layout", default="layout.tsv",
                     help="output contig layout TSV")

    st = sub.add_parser("stats", help="run the pipeline, print statistics")
    add_pipeline_args(st)

    # Serve defaults come from ServiceConfig / PipelineConfig the same way
    # (pinned by the same parity test).
    scfg = ServiceConfig()
    srv = sub.add_parser("serve",
                         help="run the incremental assembly HTTP service")
    srv.add_argument("--host", default=scfg.host)
    srv.add_argument("--port", type=int, default=scfg.port)
    srv.add_argument("--refresh-mode",
                     choices=("auto",) + REFRESH_MODES,
                     default=scfg.refresh_mode,
                     help="refresh engine: 'incremental' folds each batch "
                          "into the live state via delta products, "
                          "'recompute' reruns the pipeline from scratch "
                          "(the byte-identical oracle); 'auto' honors "
                          "REPRO_REFRESH_MODE, else incremental")
    srv.add_argument("--cache-entries", type=int,
                     default=scfg.cache_entries,
                     help="query cache LRU capacity")
    srv.add_argument("--initial", default=None, metavar="FASTA",
                     help="optional FASTA ingested as the first batch "
                          "before serving")
    srv.add_argument("--k", type=int, default=cfg.k)
    srv.add_argument("--nprocs", type=int, default=cfg.nprocs,
                     help="simulated process count (perfect square)")
    srv.add_argument("--align-mode", choices=("xdrop", "chain"),
                     default=cfg.align_mode)
    srv.add_argument("--align-impl", choices=("auto",) + ALIGN_IMPLS,
                     default=cfg.align_impl)
    srv.add_argument("--kmer-impl", choices=("auto",) + KMER_IMPLS,
                     default=cfg.kmer_impl)
    srv.add_argument("--spgemm-impl", choices=("auto",) + SPGEMM_IMPLS,
                     default=cfg.spgemm_impl)
    srv.add_argument("--seed-mode", choices=("auto",) + SEED_MODES,
                     default=cfg.seed_mode,
                     help="seeding scheme of the session (full, minimizer, "
                          "or syncmer); incremental refreshes refuse "
                          "batches under a different scheme")
    srv.add_argument("--seed-w", type=int, default=cfg.seed_w)
    srv.add_argument("--fuzz", type=int, default=cfg.fuzz)
    srv.add_argument("--depth-hint", type=float, default=cfg.depth_hint)
    srv.add_argument("--error-hint", type=float, default=cfg.error_hint)
    srv.add_argument("--backend", choices=available_backends(),
                     default=cfg.backend)
    srv.add_argument("--workers", type=int, default=cfg.workers)
    srv.add_argument("--executor", choices=available_executors(),
                     default=cfg.executor)
    srv.add_argument("--fault-spec", dest="fault_plan",
                     default=cfg.fault_plan, metavar="SPEC",
                     help="persistent fault-injection plan for the service "
                          "(counters span ingests, so 'service.refresh:"
                          "exc@3' fails exactly the third ingest); failed "
                          "refreshes commit nothing and return 503")
    return parser


def _cmd_simulate(args) -> int:
    spec = ReadSimSpec(
        genome=GenomeSpec(length=args.genome_length,
                          n_repeats=args.repeats,
                          repeat_len=args.repeat_length if args.repeats else 0,
                          seed=args.seed),
        depth=args.depth, mean_len=args.mean_read_length,
        error=ErrorModel(rate=args.error_rate), seed=args.seed + 1)
    _genome, reads, _layout = simulate_reads(spec)
    write_fasta(args.output, reads)
    print(f"wrote {args.output}: {len(reads)} reads, "
          f"{reads.total_bases():,} bases")
    return 0


def _run(args):
    cfg = PipelineConfig(k=args.k, nprocs=args.nprocs,
                         align_mode=args.align_mode,
                         align_impl=args.align_impl,
                         kmer_impl=args.kmer_impl,
                         spgemm_impl=args.spgemm_impl, fuzz=args.fuzz,
                         depth_hint=args.depth_hint,
                         error_hint=args.error_hint,
                         backend=args.backend,
                         workers=args.workers, executor=args.executor,
                         overlap_mode=args.overlap_mode,
                         n_strips=args.n_strips,
                         memory_budget=args.memory_budget,
                         seed_mode=args.seed_mode, seed_w=args.seed_w,
                         fault_plan=args.fault_plan,
                         checkpoint_dir=args.checkpoint_dir,
                         read_store=args.read_store,
                         store_dir=args.store_dir)
    return run_pipeline_from_fasta(args.reads, cfg)


def _print_stats(result, machine_name: str) -> None:
    machine = MACHINES[machine_name]
    print(f"reads: {result.n_reads}   reliable k-mers: {result.n_kmers}")
    print(f"alignment: {result.config.align_mode} mode, "
          f"{result.align_impl} engine")
    print(f"k-mer counting: {result.kmer_impl} engine")
    print(f"spgemm: {result.spgemm_impl} engine")
    if result.seed_mode == "full":
        print("seeding: full (every k-mer window)")
    else:
        print(f"seeding: {result.seed_mode} scheme "
              f"(w = {result.config.seed_w})")
    if result.overlap_mode == "blocked":
        print(f"overlap mode: blocked ({result.n_strips} strips)")
    if result.read_store != "inmem":
        print(f"read store: {result.read_store}")
    if result.config.memory_budget is not None:
        bp = apportion_budget(result.config.memory_budget)
        print(f"memory budget: {format_bytes(bp.total)} "
              f"(candidate {format_bytes(bp.candidate)}, "
              f"tables {format_bytes(bp.tables)}, "
              f"headroom {format_bytes(bp.headroom)})")
    print(f"nnz(C) = {result.nnz_c}  (c = {result.c_density:.1f})")
    print(f"nnz(R) = {result.nnz_r}  (r = {result.r_density:.1f})")
    print(f"nnz(S) = {result.nnz_s}  (s = {result.s_density:.1f}), "
          f"{result.tr_rounds} reduction rounds")
    paths = result.spgemm_paths
    if paths:
        print("spgemm kernel dispatch per stage (block products):")
        for stage in STAGES:
            if stage in paths:
                breakdown = "  ".join(f"{path}={n}" for path, n in
                                      sorted(paths[stage].items()))
                print(f"  {stage:13s} {breakdown}")
    peaks = result.peak_bytes
    if peaks:
        print("peak live matrix bytes per stage:")
        for stage in STAGES:
            if stage in peaks:
                print(f"  {stage:13s} {format_bytes(peaks[stage]):>12s}")
    print(f"modeled stage times on {machine.name}:")
    for stage, secs in result.modeled_time(machine).items():
        print(f"  {stage:13s} {secs:10.4f} s")


def _cmd_assemble(args) -> int:
    result = _run(args)
    _print_stats(result, args.machine)
    contigs = extract_contigs(result.string_graph)
    contigs.sort(key=len, reverse=True)
    with open(args.layout, "w") as fh:
        fh.write("contig\tposition\tread\torientation\n")
        for cid, contig in enumerate(contigs):
            for t, (rid, orient) in enumerate(zip(contig.reads,
                                                  contig.orientations)):
                fh.write(f"contig{cid}\t{t}\t{rid}\t"
                         f"{'-' if orient else '+'}\n")
    print(f"wrote {args.layout}: {len(contigs)} contigs "
          f"(largest {len(contigs[0])} reads)")
    return 0


def _cmd_stats(args) -> int:
    _print_stats(_run(args), args.machine)
    return 0


def _cmd_serve(args) -> int:
    pcfg = PipelineConfig(k=args.k, nprocs=args.nprocs,
                          align_mode=args.align_mode,
                          align_impl=args.align_impl,
                          kmer_impl=args.kmer_impl,
                          spgemm_impl=args.spgemm_impl, fuzz=args.fuzz,
                          depth_hint=args.depth_hint,
                          error_hint=args.error_hint,
                          backend=args.backend, workers=args.workers,
                          executor=args.executor,
                          seed_mode=args.seed_mode, seed_w=args.seed_w)
    service = AssemblyService(ServiceConfig(
        host=args.host, port=args.port, refresh_mode=args.refresh_mode,
        cache_entries=args.cache_entries, pipeline=pcfg),
        fault_spec=args.fault_plan)
    if args.initial is not None:
        reads = read_fasta(args.initial)
        summary = service.ingest(reads.names,
                                 [decode(s) for s in reads.seqs])
        print(f"ingested {summary['ingested']} reads from {args.initial} "
              f"(version {summary['version']}, "
              f"{summary['refresh_seconds']:.2f}s)")
    server = make_server(service)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} "
          f"(POST /reads, GET /version /stats /contigs /overlaps/<id>)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "assemble":
        return _cmd_assemble(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
