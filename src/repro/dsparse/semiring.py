"""Semiring abstraction for sparse matrix algebra.

The paper's central design device is overloading SpGEMM's scalar ``add`` and
``multiply`` with custom operations (Algorithms 1 and 3): a *positions*
semiring builds the candidate-overlap matrix ``C = A·Aᵀ`` and a *MinPlus*
semiring with bidirected-walk validity checks computes the two-hop matrix
``N = R²`` of the transitive reduction.

Because the local SpGEMM kernel is the vectorized expand-sort-compress (ESC)
algorithm (:mod:`repro.dsparse.spgemm`), a semiring here is expressed in
**batch form**:

* :meth:`Semiring.multiply` maps two aligned ``(n, nf)`` value arrays (the
  expanded products) to output values plus an optional validity mask — this
  is where "return ID()" of Algorithm 3 line 6 becomes "mask the product
  out";
* :meth:`Semiring.reduce` folds each sorted group of products that share an
  output coordinate into a single value row — ``np.minimum.reduceat`` for
  MinPlus, segment sums for PlusTimes, etc.

Matrix values are 2D ``int64`` arrays of shape ``(nnz, nfields)`` so that a
single container covers plain numbers (``nfields=1``) and structured payloads
(k-mer positions, overhang+orientations) without object arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Semiring", "PlusTimes", "MinPlus", "BoolOr", "INF"]

#: "Infinity" for MinPlus-style semirings; large enough that no genomic
#: suffix sum approaches it, small enough that sums of two never overflow.
INF = np.int64(2 ** 60)


class Semiring:
    """Base class: batch multiply + segmented reduce over int64 field arrays.

    Subclasses set :attr:`out_nfields` (the width of result value rows) and
    implement the two batch methods.
    """

    #: Number of int64 fields in this semiring's *output* values.
    out_nfields: int = 1

    #: Optional scalar lowering the ``scipy`` backend can execute with native
    #: CSR arithmetic (:mod:`repro.dsparse.backend`): ``"plus_times"`` or
    #: ``"bool_or"``.  ``None`` (the default) means the semiring only runs on
    #: the ESC kernel — multi-field semirings and MinPlus (scipy has no
    #: tropical product) stay here.
    lowering: str | None = None

    #: Optional ESC truncation capability.  When set to ``k``, the semiring
    #: promises that (a) :meth:`multiply` never returns a validity mask and
    #: (b) :meth:`reduce` applied to a sorted group of *freshly multiplied*
    #: products depends only on the group's first ``k`` products plus the
    #: true group size — so the masked ESC kernel may multiply just those
    #: ``k`` per group and fold them with :meth:`reduce_truncated` instead of
    #: materializing every product value.  ``None`` (default) disables the
    #: fast path; reduces that consume every product (MinPlus-style minima,
    #: sums of non-constant values) must leave it off.
    product_reduce_depth: int | None = None

    def multiply(self, avals: np.ndarray, bvals: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray | None]:
        """Elementwise products of aligned A/B value rows.

        Returns ``(cvals, mask)`` where ``cvals`` has shape
        ``(n, out_nfields)`` and ``mask`` (optional boolean) marks the valid
        products; ``None`` means all valid.
        """
        raise NotImplementedError

    def reduce(self, vals: np.ndarray, starts: np.ndarray, counts: np.ndarray
               ) -> np.ndarray:
        """Fold sorted product groups into one value row per group.

        ``vals`` holds all products sorted so each output nonzero's
        contributions are contiguous; group ``g`` spans
        ``vals[starts[g] : starts[g] + counts[g]]``.
        """
        raise NotImplementedError

    def reduce_truncated(self, vals: np.ndarray, starts: np.ndarray,
                         counts: np.ndarray) -> np.ndarray:
        """Fold groups truncated to :attr:`product_reduce_depth` products.

        ``vals`` holds only the first ``min(depth, counts[g])`` freshly
        multiplied products of each group (``starts`` indexes into this
        truncated array); ``counts`` carries the **true** group sizes.  Must
        be byte-identical to :meth:`reduce` over the full groups — the
        contract that makes the masked kernel's truncation invisible.
        Required iff :attr:`product_reduce_depth` is set.
        """
        raise NotImplementedError


class PlusTimes(Semiring):
    """The ordinary (+, ×) semiring on single-field integer values.

    Used for structural tests (it must agree with ``scipy.sparse`` matrix
    multiplication) and for nnz/counting style products.
    """

    out_nfields = 1
    lowering = "plus_times"

    def multiply(self, avals, bvals):
        return avals[:, :1] * bvals[:, :1], None

    def reduce(self, vals, starts, counts):
        sums = np.add.reduceat(vals[:, 0], starts)
        return sums[:, None]


class MinPlus(Semiring):
    """Plain tropical (min, +) semiring on single-field values.

    The direction-checked MinPlus of Algorithm 3 lives in
    :class:`repro.core.semirings.BidirectedMinPlus`; this numeric version
    backs shortest-path style tests.
    """

    out_nfields = 1

    def multiply(self, avals, bvals):
        return avals[:, :1] + bvals[:, :1], None

    def reduce(self, vals, starts, counts):
        mins = np.minimum.reduceat(vals[:, 0], starts)
        return mins[:, None]


class BoolOr(Semiring):
    """Boolean (or, and) semiring: structural product (pattern of A·B)."""

    out_nfields = 1
    lowering = "bool_or"

    def multiply(self, avals, bvals):
        out = ((avals[:, :1] != 0) & (bvals[:, :1] != 0)).astype(np.int64)
        return out, None

    def reduce(self, vals, starts, counts):
        anys = np.maximum.reduceat(vals[:, 0], starts)
        return np.minimum(anys, 1)[:, None]
