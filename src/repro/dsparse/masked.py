"""Masked semiring SpGEMM — output-pattern-pruned ESC.

CombBLAS's masked SpGEMM (paper Section IV-D) never materializes products
that fall outside a known output pattern.  :func:`spgemm_esc_masked` is the
reproduction's equivalent for the ESC kernel: after expansion, every
elementary product whose output coordinate is absent from the mask is
dropped **before** the semiring multiply and the sort/compress — the two
superlinear steps of ESC — so the kernel's cost tracks the mask's nnz, not
the full product's.

Byte-identity with ``unmasked ∩ mask`` is structural, not numeric: the
coordinate filter removes only *whole* output groups (a coordinate is either
in the mask or not) and the surviving products keep their expansion order,
so the stable sort produces exactly the groups — in exactly the within-group
order — that the unmasked kernel produces for those coordinates.  Order-
sensitive reduces (``PositionsSemiring``'s first-two-seeds backfill) are
therefore preserved verbatim.

Semirings that declare ``product_reduce_depth = k`` (the positions semiring:
its reduce reads a group's first two products plus the group size) get a
second pruning stage: after the stable key sort, only ``k`` products per
surviving group are gathered through the operand values and the semiring
multiply (:func:`_truncated_sort_reduce`), so the wide output-value arrays
never exist at elementary-product scale.

The module also owns the ``spgemm_impl`` pipeline axis (``esc | masked |
auto``, mirroring ``align_impl``/``kmer_impl``): :func:`resolve_spgemm_impl`
is consulted by the pipeline/CLI plumbing, and ``masked`` is what ``auto``
resolves to — the ESC path stays available as the byte-identical oracle.
"""

from __future__ import annotations

import os

import numpy as np

from .coomat import CooMat
from .semiring import Semiring
from .spgemm import _sort_reduce, expand_products, spgemm_esc

__all__ = [
    "SPGEMM_IMPLS", "SPGEMM_IMPL_ENV", "DEFAULT_SPGEMM_IMPL",
    "resolve_spgemm_impl", "mask_select", "spgemm_esc_masked",
]

#: SpGEMM-engine names accepted by ``PipelineConfig.spgemm_impl`` (plus
#: ``"auto"``, which resolves through :func:`resolve_spgemm_impl`).
SPGEMM_IMPLS = ("esc", "masked")

#: Environment variable consulted by ``spgemm_impl="auto"``.
SPGEMM_IMPL_ENV = "REPRO_SPGEMM_IMPL"

#: What ``"auto"`` resolves to when the environment does not override it.
DEFAULT_SPGEMM_IMPL = "masked"


def resolve_spgemm_impl(impl: str | None = None) -> str:
    """Resolve an SpGEMM-engine name to ``"esc"`` or ``"masked"``.

    ``None`` and ``"auto"`` defer to the :data:`SPGEMM_IMPL_ENV` environment
    variable when set (mirroring ``REPRO_ALIGN_IMPL`` / ``REPRO_KMER_IMPL``),
    else pick :data:`DEFAULT_SPGEMM_IMPL`; explicit names pass through
    validated.  Both engines produce byte-identical pipeline output — the
    switch is a pure performance axis, with ``esc`` kept as the oracle.
    """
    if impl is None:
        impl = "auto"
    if impl == "auto":
        env = os.environ.get(SPGEMM_IMPL_ENV, "").strip().lower()
        impl = env if env and env != "auto" else DEFAULT_SPGEMM_IMPL
    if impl not in SPGEMM_IMPLS:
        raise ValueError(f"unknown spgemm impl {impl!r}; expected one of "
                         f"{', '.join(SPGEMM_IMPLS + ('auto',))}")
    return impl


def _packable(shape: tuple[int, int]) -> bool:
    """Whether (row, col) coordinates of ``shape`` pack into one int64 key."""
    return not shape[0] or shape[0] <= (2 ** 63 - 1) // max(1, shape[1])


def mask_select(A: CooMat, mask: CooMat) -> CooMat:
    """Entries of ``A`` whose coordinates appear in ``mask`` (order kept).

    Both operands are canonical, so their packed key arrays are sorted and
    unique — membership is a single ``np.isin`` over int64 keys.
    """
    if A.shape != mask.shape:
        raise ValueError(f"mask shape {mask.shape} != matrix shape {A.shape}")
    if A.nnz == 0 or mask.nnz == 0:
        return CooMat.empty(A.shape, A.nfields)
    keep = np.isin(A.keys(), mask.keys(), assume_unique=True)
    return A.select(keep)


def spgemm_esc_masked(A: CooMat, B: CooMat, semiring: Semiring,
                      mask: CooMat) -> CooMat:
    """``(A ⊗ B) ∩ mask`` without materializing the unmasked product.

    ``mask`` is consulted for its coordinate pattern only (values ignored).
    Byte-identical to ``mask_select(spgemm_esc(A, B, semiring), mask)`` —
    see the module docstring for why.  Shapes whose coordinates cannot pack
    into int64 keys (beyond ~9.2e18 cells) fall back to exactly that
    compute-then-filter form rather than wrapping keys silently.
    """
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    out_shape = (A.shape[0], B.shape[1])
    if mask.shape != out_shape:
        raise ValueError(f"mask shape {mask.shape} != output shape "
                         f"{out_shape}")
    if not _packable(out_shape):
        return mask_select(spgemm_esc(A, B, semiring), mask)
    if mask.nnz == 0 or A.nnz == 0 or B.nnz == 0:
        return CooMat.empty(out_shape, semiring.out_nfields)
    a_idx, b_idx = expand_products(A, B)
    if a_idx.shape[0] == 0:
        return CooMat.empty(out_shape, semiring.out_nfields)
    ci = A.row[a_idx]
    cj = B.col[b_idx]
    # Coordinate prune FIRST: products outside the mask never reach the
    # semiring multiply or the sort.  Product keys repeat per group, so only
    # the mask side is assume_unique.
    keys = ci * np.int64(out_shape[1]) + cj
    keep = np.isin(keys, mask.keys())
    if not keep.all():
        a_idx, b_idx, keys = a_idx[keep], b_idx[keep], keys[keep]
        ci, cj = ci[keep], cj[keep]
    if keys.shape[0] == 0:
        return CooMat.empty(out_shape, semiring.out_nfields)
    depth = semiring.product_reduce_depth
    if depth is not None:
        return _truncated_sort_reduce(out_shape, keys, ci, cj, a_idx, b_idx,
                                      A, B, semiring, depth)
    cvals, valid = semiring.multiply(A.vals[a_idx], B.vals[b_idx])
    if valid is not None:
        ci, cj, cvals = ci[valid], cj[valid], cvals[valid]
        if ci.shape[0] == 0:
            return CooMat.empty(out_shape, semiring.out_nfields)
    return _sort_reduce(out_shape, ci, cj, cvals, semiring)


def _truncated_sort_reduce(out_shape, keys, ci, cj, a_idx, b_idx, A, B,
                           semiring, depth):
    """Sort-compress that multiplies only ``depth`` products per group.

    The semiring declared (``product_reduce_depth``) that a fresh group's
    reduce reads only its first ``depth`` products plus the group size, so
    after the stable key sort only those products are gathered through the
    operand values and the semiring multiply — the wide value arrays never
    exist at elementary-product scale.  Byte-identical to the full
    multiply + :func:`~repro.dsparse.spgemm._sort_reduce` by the
    ``reduce_truncated`` contract (groups keep expansion order under the
    stable sort, exactly as in the full path).
    """
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    new_group = np.ones(sk.shape[0], dtype=bool)
    new_group[1:] = sk[1:] != sk[:-1]
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, sk.shape[0]))
    clipped = np.minimum(counts, depth)
    tstarts = np.cumsum(clipped) - clipped
    within = np.arange(int(clipped.sum()), dtype=np.int64) - \
        np.repeat(tstarts, clipped)
    sel = order[np.repeat(starts, clipped) + within]
    cvals, valid = semiring.multiply(A.vals[a_idx[sel]], B.vals[b_idx[sel]])
    if valid is not None:  # the depth contract forbids validity masks
        raise ValueError(f"{type(semiring).__name__} sets "
                         f"product_reduce_depth but multiply returned a "
                         f"validity mask")
    reduced = semiring.reduce_truncated(cvals, tstarts, counts)
    lead = order[starts]
    return CooMat(out_shape, ci[lead], cj[lead], reduced, checked=True)
