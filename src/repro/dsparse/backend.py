"""Pluggable local sparse-kernel backends.

The paper's performance argument (Section IV-D) is that the *local multiply
kernel* inside Sparse SUMMA dominates runtime, and CombBLAS swaps hash /
heap / hybrid kernels per block to keep it fast.  This module is the
reproduction's equivalent seam: every local kernel the distributed layer
needs — SpGEMM, product expansion, element-wise merge and filter, row
reduction, transpose — is a method of a :class:`Backend`, and callers select
an implementation by name through :func:`get_backend`.

Shipped backends
----------------

``numpy``
    The reference implementation: the vectorized expand-sort-compress
    SpGEMM (:func:`~repro.dsparse.spgemm.spgemm_esc`, or its masked
    variant :func:`~repro.dsparse.masked.spgemm_esc_masked` when the caller
    supplies an output-pattern mask) and pure-numpy element-wise kernels.
    Handles every semiring, including the multi-field ones
    (:class:`~repro.core.semirings.PositionsSemiring`,
    :class:`~repro.core.semirings.BidirectedMinPlus`).

``scipy``
    Lowers *scalar* semirings (single value field, a declared
    :attr:`~repro.dsparse.semiring.Semiring.lowering`) onto native
    ``scipy.sparse`` CSR matmul / addition, using the zero-copy CSR views
    cached on :class:`~repro.dsparse.coomat.CooMat`.  The C kernels run
    2–4x faster than the ESC path on counting/structural products at
    realistic sizes (see ``benchmarks/bench_ablation_backend.py``), and the
    gap widens as products densify.  Masked scalar products run native
    first, then intersect with the mask (``masked_csr``).
    Everything it cannot lower *byte-identically* falls back to the numpy
    kernels: multi-field semirings, MinPlus (scipy has no tropical product),
    and scalar operands whose values could cancel or vanish (scipy prunes
    explicit zeros that ESC keeps, so PlusTimes requires strictly positive
    values and BoolOr all-nonzero values to lower).

Multi-field semirings always execute on the ESC kernels, but since the
masked engine (``spgemm_impl="masked"``, PR 6) the *consumers* decompose
them: the overlap stage computes the scalar count field natively and feeds
the surviving pattern back as a mask for the multi-field seed pass, and
transitive reduction squares ``R`` under its own pattern — so the ESC work
left is proportional to the masked output, not the full product.  Every
product still reports which path it took through :meth:`Backend.
spgemm_with_path` (``"esc" | "masked_esc" | "csr" | "masked_csr"``), the
hook the per-stage kernel-dispatch counters are built on.

``auto``
    The default: per-call dispatch with exactly the ``scipy`` policy —
    scalar lowerable products take the CSR fast path, everything else the
    numpy reference.  Because fallback is bitwise-exact, results never
    depend on the backend choice.

Third parties can plug in alternatives (e.g. a GraphBLAS or GPU kernel set)
with :func:`register_backend`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .coomat import CooMat
from .masked import mask_select, spgemm_esc_masked
from .semiring import Semiring
from .spgemm import expand_products, multiway_merge, spgemm_esc

__all__ = [
    "Backend", "NumpyBackend", "ScipyBackend", "AutoBackend",
    "get_backend", "register_backend", "available_backends",
    "DEFAULT_BACKEND",
]

#: Name resolved by ``get_backend(None)``.
DEFAULT_BACKEND = "auto"


class Backend:
    """Abstract kernel surface every local sparse operation goes through.

    All methods take and return :class:`CooMat` blocks (canonical COO with
    ``(nnz, nf)`` int64 values); distributed layers (SUMMA, element-wise
    ops, transpose) call these per block and never touch kernel internals.
    """

    #: Registry name; set by subclasses.
    name: str = "abstract"

    # -- SpGEMM -------------------------------------------------------------
    def spgemm(self, A: CooMat, B: CooMat, semiring: Semiring,
               mask: CooMat | None = None) -> CooMat:
        """Local semiring product ``C = A ⊗ B``.

        With ``mask`` (a :class:`CooMat` consulted for pattern only), the
        result is ``(A ⊗ B) ∩ mask`` — byte-identical to computing the full
        product and intersecting, but implementations prune early.
        """
        return self.spgemm_with_path(A, B, semiring, mask)[0]

    def spgemm_with_path(self, A: CooMat, B: CooMat, semiring: Semiring,
                         mask: CooMat | None = None
                         ) -> tuple[CooMat, str]:
        """Like :meth:`spgemm`, also naming the kernel path taken.

        The path string (``"esc"``, ``"masked_esc"``, ``"csr"``,
        ``"masked_csr"``) feeds the per-stage dispatch counters
        (:meth:`repro.mpisim.StageTimer.count_kernel`); executor tasks carry
        it back to the parent alongside the block product.
        """
        raise NotImplementedError

    def expand(self, A: CooMat, B: CooMat):
        """All elementary products of A entries with matching B rows.

        Returns index arrays ``(a_idx, b_idx)`` into the operands' storage
        (the expansion half of ESC; also the 1D baseline's per-k-mer outer
        product).
        """
        return expand_products(A, B)

    # -- element-wise merge -------------------------------------------------
    def merge(self, parts: list[CooMat], semiring: Semiring,
              shape: tuple[int, int]) -> CooMat:
        """Fold partial results coordinate-wise (SUMMA accumulation)."""
        return multiway_merge(parts, semiring, shape)

    # -- element-wise filter --------------------------------------------------
    def select(self, A: CooMat, mask: np.ndarray) -> CooMat:
        """Entries of ``A`` where ``mask`` is true (order preserved)."""
        return A.select(mask)

    # -- reduction ------------------------------------------------------------
    def row_reduce(self, A: CooMat, field: int, op_reduceat,
                   identity: int) -> np.ndarray:
        """Per-row fold of one value field into a dense length-rows vector.

        ``op_reduceat`` is a numpy ufunc (``np.maximum``, ``np.add``, ...);
        rows without nonzeros hold ``identity``.
        """
        out = np.full(A.shape[0], identity, dtype=np.int64)
        if A.nnz:
            indptr = A.csr_indptr()
            counts = np.diff(indptr)
            nz = counts > 0
            starts = indptr[:-1][nz]
            out[np.flatnonzero(nz)] = op_reduceat.reduceat(
                A.vals[:, field], starts)
        return out

    # -- transpose ------------------------------------------------------------
    def transpose(self, A: CooMat) -> CooMat:
        """``Aᵀ``, re-canonicalized."""
        return A.transpose()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(Backend):
    """Reference backend: ESC SpGEMM + pure-numpy element-wise kernels."""

    name = "numpy"

    def spgemm_with_path(self, A, B, semiring, mask=None):
        if mask is not None:
            return spgemm_esc_masked(A, B, semiring, mask), "masked_esc"
        return spgemm_esc(A, B, semiring), "esc"


def _canonical(C: sp.csr_matrix) -> sp.csr_matrix:
    """Sort a CSR matmul result's row segments by column index.

    scipy's SpGEMM emits unsorted columns within each row; the two
    linear-time conversion passes of a CSC round-trip re-order them faster
    than the per-row comparison sort of ``sort_indices``.
    """
    if C.has_sorted_indices:
        return C
    return C.tocsc().tocsr()


def _pattern_csr(A: CooMat) -> sp.csr_matrix:
    """A's pattern with unit weights, sharing its cached CSR index arrays."""
    base = A.to_csr(0)
    out = sp.csr_matrix(A.shape, dtype=np.int64)
    out.indptr = base.indptr
    out.indices = base.indices
    out.data = np.ones(A.nnz, dtype=np.int64)
    return out


class ScipyBackend(NumpyBackend):
    """CSR-native backend: scalar semirings run on scipy's C kernels.

    Lowering is attempted only when it is provably byte-identical to the ESC
    reference (see the guards in :meth:`can_lower`); anything else delegates
    to the inherited numpy kernels, so this backend is safe as a drop-in for
    every workload.
    """

    name = "scipy"

    @staticmethod
    def can_lower(A: CooMat, B: CooMat, semiring: Semiring) -> str | None:
        """The lowering to use for this product, or ``None`` for ESC.

        scipy's CSR arithmetic prunes entries whose accumulated value is
        zero, while ESC keeps every structural nonzero; the value guards
        exclude exactly the inputs where that difference could show (zero or
        cancelling products).
        """
        lowering = semiring.lowering
        if lowering is None or A.nfields != 1 or B.nfields != 1:
            return None
        if lowering == "plus_times":
            # Strictly positive values: no zero products, no cancellation.
            if (A.vals > 0).all() and (B.vals > 0).all():
                return lowering
            return None
        if lowering == "bool_or":
            # All-nonzero values: every product contributes a 1.
            if A.vals.all() and B.vals.all():
                return lowering
            return None
        return None

    def spgemm_with_path(self, A, B, semiring, mask=None):
        if A.shape[1] != B.shape[0]:
            raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
        lowering = self.can_lower(A, B, semiring)
        if lowering == "plus_times":
            C = CooMat.from_csr(_canonical(A.to_csr(0) @ B.to_csr(0)),
                                checked=True)
        elif lowering == "bool_or":
            raw = _canonical(_pattern_csr(A) @ _pattern_csr(B))
            np.minimum(raw.data, 1, out=raw.data)
            C = CooMat.from_csr(raw, checked=True)
        else:
            return super().spgemm_with_path(A, B, semiring, mask)
        if mask is not None:
            # Native product first, then intersect: byte-identical to the
            # masked ESC chain (masked_csr = csr ∩ mask = esc ∩ mask).
            return mask_select(C, mask), "masked_csr"
        return C, "csr"

    def merge(self, parts, semiring, shape):
        parts = [p for p in parts if p.nnz > 0]
        lowering = semiring.lowering
        # Strictly positive single-field values: union-add never prunes and
        # (for bool_or) clamping the counts reproduces ESC's max-based OR.
        # Parts must already live in the requested frame — CSR addition
        # cannot re-embed into a larger output shape.
        if len(parts) < 2 or lowering not in ("plus_times", "bool_or") or \
                not all(p.shape == shape and p.nfields == 1 and
                        (p.vals > 0).all() for p in parts):
            return super().merge(parts, semiring, shape)
        acc = parts[0].to_csr(0)
        for p in parts[1:]:
            acc = acc + p.to_csr(0)
        acc = _canonical(acc)
        if lowering == "bool_or":
            np.minimum(acc.data, 1, out=acc.data)
        return CooMat.from_csr(acc, checked=True)

    def transpose(self, A):
        if A.nfields != 1 or A.nnz == 0:
            return A.transpose()
        # CSR -> CSC is the transpose for free; the CSC -> CSR conversion is
        # a single C-level counting pass, beating the numpy lexsort.
        return CooMat.from_csr(_canonical(A.to_csr(0).T.tocsr()),
                               checked=True)


class AutoBackend(ScipyBackend):
    """Per-call auto-selection (the default).

    Scalar lowerable semirings take the scipy CSR fast path; multi-field
    semirings take the numpy ESC reference — which is precisely
    :class:`ScipyBackend`'s dispatch, registered under its own name so the
    policy reads as a deliberate choice at call sites.
    """

    name = "auto"


_REGISTRY: dict[str, Backend] = {}


def register_backend(name: str, backend: Backend) -> None:
    """Register (or replace) a backend under ``name``."""
    if not isinstance(backend, Backend):
        raise TypeError(f"expected a Backend instance, got {backend!r}")
    _REGISTRY[name] = backend


def available_backends() -> list[str]:
    """Sorted names accepted by :func:`get_backend` (and the CLI flag)."""
    return sorted(_REGISTRY)


def get_backend(name: "str | Backend | None" = None) -> Backend:
    """Resolve a backend by name (``None`` → :data:`DEFAULT_BACKEND`).

    Accepts an already-resolved :class:`Backend` unchanged, so plumbing
    layers can pass either form through.
    """
    if isinstance(name, Backend):
        return name
    if name is None:
        name = DEFAULT_BACKEND
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown backend {name!r}; available: "
                       f"{', '.join(available_backends())}") from None


register_backend("numpy", NumpyBackend())
register_backend("scipy", ScipyBackend())
register_backend("auto", AutoBackend())
