"""Redistribution between 1D block-row and 2D grid layouts.

The pipeline's inputs arrive in a 1D block-row distribution (parallel FASTA
I/O assigns contiguous read ranges to ranks, Section IV-B) while the matrix
algebra runs on the 2D grid — "immediately thereafter, processors begin
communicating sequences to create a 2D grid that is consistent with the way
the matrices are partitioned" (paper Section IV-B).  These kernels perform
that conversion for sparse matrices with full traffic accounting, and the
reverse for result harvesting.

diBELLA 1D's output matrix ``C`` is block-row distributed, so
:func:`to_block_rows` also models the layout its reduction step lands in.
"""

from __future__ import annotations

import numpy as np

from ..mpisim.comm import SimComm
from ..mpisim.grid import ProcessGrid2D, block_bounds
from .coomat import CooMat
from .distmat import DistMat

__all__ = ["to_2d_grid", "to_block_rows"]


def to_2d_grid(parts: list[CooMat], shape: tuple[int, int],
               grid: ProcessGrid2D, comm: SimComm,
               stage: str = "Redistribute",
               nfields: int | None = None) -> DistMat:
    """Convert 1D block-row pieces into a 2D grid distribution.

    ``parts[p]`` holds rank p's block of rows in *local* coordinates (its
    global row offset is the balanced 1D bound).  Every entry is routed to
    the 2D owner of its (row, col); off-rank routing is charged as an
    alltoallv under ``stage``.

    ``nfields`` fixes the value-field count explicitly; when omitted it is
    inferred from the parts themselves — including empty ones, so an
    all-empty 4-field input yields a 4-field (not 1-field) matrix.
    """
    P = comm.nprocs
    if len(parts) != P:
        raise ValueError("one part per rank required")
    bounds = block_bounds(shape[0], P)
    if nfields is None:
        nfields = max((p.nfields for p in parts if p.nnz),
                      default=max((p.nfields for p in parts), default=1))
    else:
        nfields = int(nfields)
        bad = [p.nfields for p in parts if p.nnz and p.nfields != nfields]
        if bad:
            raise ValueError(f"parts carry {bad[0]} value fields, caller "
                             f"requested {nfields}")
    rb = grid.row_bounds(shape[0])
    cb = grid.col_bounds(shape[1])

    send: list[list[np.ndarray | None]] = [[None] * P for _ in range(P)]
    for p in range(P):
        part = parts[p]
        grow = part.row + bounds[p]
        bi = np.searchsorted(rb, grow, side="right") - 1
        bj = np.searchsorted(cb, part.col, side="right") - 1
        dest = bi * grid.q + bj
        for d in range(P):
            sel = dest == d
            if sel.any():
                send[p][d] = np.concatenate([
                    grow[sel], part.col[sel], part.vals[sel].ravel()])
    recv = comm.alltoallv(send, stage=stage)

    rows, cols, vals = [], [], []
    for d in range(P):
        for arr in recv[d]:
            if arr is None or arr.size == 0:
                continue
            k = arr.shape[0] // (2 + nfields)
            rows.append(arr[:k])
            cols.append(arr[k:2 * k])
            vals.append(arr[2 * k:].reshape(k, nfields))
    if rows:
        return DistMat.from_coo(shape, grid, np.concatenate(rows),
                                np.concatenate(cols), np.vstack(vals))
    return DistMat.empty(shape, grid, nfields)


def to_block_rows(D: DistMat, comm: SimComm,
                  stage: str = "Redistribute") -> list[CooMat]:
    """Convert a 2D-distributed matrix into 1D block-row pieces.

    Returns one :class:`CooMat` per rank holding its balanced row range in
    local coordinates; the routing is charged as an alltoallv.
    """
    P = comm.nprocs
    bounds = block_bounds(D.shape[0], P)
    q = D.grid.q
    send: list[list[np.ndarray | None]] = [[None] * P for _ in range(P)]
    for i in range(q):
        for j in range(q):
            src = D.grid.rank_of(i, j)
            b = D.blocks[i][j]
            if b.nnz == 0:
                continue
            grow = b.row + D.row_bounds[i]
            gcol = b.col + D.col_bounds[j]
            dest = np.searchsorted(bounds, grow, side="right") - 1
            for d in range(P):
                sel = dest == d
                if sel.any():
                    send[src][d] = np.concatenate([
                        grow[sel], gcol[sel], b.vals[sel].ravel()])
    recv = comm.alltoallv(send, stage=stage)

    out: list[CooMat] = []
    nf = D.nfields
    for d in range(P):
        rows, cols, vals = [], [], []
        for arr in recv[d]:
            if arr is None or arr.size == 0:
                continue
            k = arr.shape[0] // (2 + nf)
            rows.append(arr[:k] - bounds[d])
            cols.append(arr[k:2 * k])
            vals.append(arr[2 * k:].reshape(k, nf))
        local_shape = (int(bounds[d + 1] - bounds[d]), D.shape[1])
        if rows:
            out.append(CooMat(local_shape, np.concatenate(rows),
                              np.concatenate(cols), np.vstack(vals)))
        else:
            out.append(CooMat.empty(local_shape, nf))
    return out
