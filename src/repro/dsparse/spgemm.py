"""Local semiring SpGEMM kernels.

Two implementations of ``C = A ⊗ B`` over a :class:`~repro.dsparse.semiring.
Semiring`:

* :func:`spgemm_esc` — **expand-sort-compress**, the default.  All products
  are materialized with numpy repeat/gather arithmetic, masked by the
  semiring's validity check, lexsorted by output coordinate, and folded with
  the semiring's segmented reduce.  No Python-level loop over nonzeros.
* :func:`spgemm_gustavson` — a dict-accumulator row-by-row reference used to
  cross-check ESC in tests and in the kernel micro-benchmarks
  (``benchmarks/bench_kernels.py``); the semiring-design ablations live in
  ``benchmarks/bench_ablation_semiring.py`` and the backend ablation in
  ``benchmarks/bench_ablation_backend.py``.

CombBLAS uses a hybrid hash/heap local multiply inside Sparse SUMMA (paper
Section IV-D); ESC is the vectorized equivalent appropriate for numpy.
Kernel *selection* lives one layer up: :mod:`repro.dsparse.backend` routes
scalar semirings onto native scipy CSR matmul and everything else here.
"""

from __future__ import annotations

import numpy as np

from .coomat import CooMat
from .semiring import Semiring

__all__ = ["expand_products", "packed_order", "spgemm_esc",
           "spgemm_gustavson", "multiway_merge"]


def packed_order(rows: np.ndarray, cols: np.ndarray,
                 shape: tuple[int, int]) -> np.ndarray:
    """Stable row-major sort order over (row, col) coordinate pairs.

    Packs both coordinates into one int64 key (``row * ncols + col``) and
    argsorts it — the same ordering as ``np.lexsort((cols, rows))`` at
    roughly half the sort work.  Packing requires ``rows * ncols`` to fit
    int64; shapes whose coordinate product would overflow (possible only
    for matrices beyond ~9.2e18 cells, far past any genomic workload) fall
    back to the two-key lexsort instead of wrapping silently.
    """
    if shape[0] and shape[0] > (2 ** 63 - 1) // max(1, shape[1]):
        return np.lexsort((cols, rows))
    return np.argsort(rows * np.int64(shape[1]) + cols, kind="stable")


def _sort_reduce(out_shape: tuple[int, int], ci: np.ndarray, cj: np.ndarray,
                 cvals: np.ndarray, semiring: Semiring) -> CooMat:
    """The sort-compress tail of ESC: group products by output coordinate
    (stable, so each group keeps expansion order) and fold each group with
    the semiring's segmented reduce."""
    order = packed_order(ci, cj, out_shape)
    ci, cj, cvals = ci[order], cj[order], cvals[order]
    new_group = np.ones(ci.shape[0], dtype=bool)
    new_group[1:] = (ci[1:] != ci[:-1]) | (cj[1:] != cj[:-1])
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, ci.shape[0]))
    reduced = semiring.reduce(cvals, starts, counts)
    return CooMat(out_shape, ci[starts], cj[starts], reduced, checked=True)


def expand_products(A: CooMat, B: CooMat):
    """Materialize all elementary products of A's nnz with B's rows.

    For each A-nonzero ``(i, k)``, pair it with every B-nonzero in row ``k``.
    Returns aligned index arrays ``(a_idx, b_idx)`` into A's and B's storage,
    ordered by A's canonical entry order (so the implied output rows are
    non-decreasing).  This is the expansion half of ESC, also reused by the
    1D baseline's per-owner outer product.
    """
    b_indptr = B.csr_indptr()
    counts = b_indptr[A.col + 1] - b_indptr[A.col]
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, np.int64),) * 2
    a_idx = np.repeat(np.arange(A.nnz, dtype=np.int64), counts)
    # Vectorized concatenation of the ranges [indptr[k], indptr[k]+count):
    # within-group offsets are a global arange minus each group's start.
    group_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(group_starts, counts)
    b_idx = np.repeat(b_indptr[A.col], counts) + within
    return a_idx, b_idx


def spgemm_esc(A: CooMat, B: CooMat, semiring: Semiring) -> CooMat:
    """Expand-sort-compress semiring SpGEMM (vectorized)."""
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    out_shape = (A.shape[0], B.shape[1])
    a_idx, b_idx = expand_products(A, B)
    if a_idx.shape[0] == 0:
        return CooMat.empty(out_shape, semiring.out_nfields)
    ci = A.row[a_idx]
    cj = B.col[b_idx]
    cvals, mask = semiring.multiply(A.vals[a_idx], B.vals[b_idx])
    if mask is not None:
        ci, cj, cvals = ci[mask], cj[mask], cvals[mask]
        if ci.shape[0] == 0:
            return CooMat.empty(out_shape, semiring.out_nfields)
    return _sort_reduce(out_shape, ci, cj, cvals, semiring)


def spgemm_gustavson(A: CooMat, B: CooMat, semiring: Semiring) -> CooMat:
    """Row-by-row dict-accumulator reference SpGEMM.

    Semantically identical to :func:`spgemm_esc` (products are accumulated
    per output coordinate with the semiring's reduce applied to the collected
    group), but uses Python dictionaries — easy to audit, slow, and kept as
    the correctness oracle.
    """
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    out_shape = (A.shape[0], B.shape[1])
    b_indptr = B.csr_indptr()
    acc: dict[tuple[int, int], list[np.ndarray]] = {}
    for t in range(A.nnz):
        i = int(A.row[t]); k = int(A.col[t])
        lo, hi = int(b_indptr[k]), int(b_indptr[k + 1])
        if lo == hi:
            continue
        bidx = np.arange(lo, hi)
        cvals, mask = semiring.multiply(
            np.broadcast_to(A.vals[t], (hi - lo, A.nfields)), B.vals[bidx])
        for s in range(hi - lo):
            if mask is not None and not mask[s]:
                continue
            acc.setdefault((i, int(B.col[lo + s])), []).append(cvals[s])
    if not acc:
        return CooMat.empty(out_shape, semiring.out_nfields)
    keys = sorted(acc.keys())
    rows = np.array([k[0] for k in keys], dtype=np.int64)
    cols = np.array([k[1] for k in keys], dtype=np.int64)
    stacked = []
    starts = []
    counts = []
    off = 0
    for k in keys:
        group = acc[k]
        stacked.extend(group)
        starts.append(off)
        counts.append(len(group))
        off += len(group)
    vals = np.vstack(stacked)
    reduced = semiring.reduce(vals, np.array(starts, dtype=np.int64),
                              np.array(counts, dtype=np.int64))
    return CooMat(out_shape, rows, cols, reduced, checked=True)


def multiway_merge(parts: list[CooMat], semiring: Semiring,
                   shape: tuple[int, int]) -> CooMat:
    """Reduce several partial-result matrices into one (SUMMA accumulation).

    SUMMA produces ``√P`` partial products per block; their union is folded
    coordinate-wise with the semiring's reduce (the same "addition" the
    products would have met inside a single local multiply).
    """
    parts = [p for p in parts if p.nnz > 0]
    if not parts:
        return CooMat.empty(shape, semiring.out_nfields)
    rows = np.concatenate([p.row for p in parts])
    cols = np.concatenate([p.col for p in parts])
    vals = np.vstack([p.vals for p in parts])
    return _sort_reduce(shape, rows, cols, vals, semiring)
