"""Local sparse matrix container with multi-field integer values.

:class:`CooMat` is the per-block storage of the distributed matrices: COO
coordinates plus an ``(nnz, nfields)`` ``int64`` value array (see
:mod:`repro.dsparse.semiring` for why values are field arrays).  Entries are
kept in canonical row-major order with unique coordinates, which every kernel
(SpGEMM, element-wise ops, reductions) relies on.

Because the canonical order *is* CSR order, a ``CooMat`` doubles as CSR
storage: :meth:`csr_indptr` is computed once and cached, and
:meth:`to_csr` exposes one value field as a :class:`scipy.sparse.csr_matrix`
**view** that shares the column-index and (for single-field matrices) value
arrays with the COO storage — no conversion pass.  The CSR side is what the
``scipy`` backend (:mod:`repro.dsparse.backend`) lowers scalar semirings
onto, and what the ESC kernel's expansion step indexes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["CooMat"]


class CooMat:
    """Sorted, duplicate-free COO matrix with ``(nnz, nf)`` int64 values."""

    def __init__(self, shape: tuple[int, int], row: np.ndarray,
                 col: np.ndarray, vals: np.ndarray, *,
                 checked: bool = False) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.row = np.asarray(row, dtype=np.int64)
        self.col = np.asarray(col, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.int64)
        if vals.ndim == 1:
            vals = vals[:, None]
        self.vals = vals
        if self.row.shape[0] != self.col.shape[0] or \
                self.row.shape[0] != self.vals.shape[0]:
            raise ValueError("row/col/vals length mismatch")
        if not checked:
            self._canonicalize()
        # Lazily-built CSR derivatives (valid because entries are immutable
        # once canonical): the row pointer and per-field scipy CSR views.
        self._indptr: np.ndarray | None = None
        self._csr: dict[int, sp.csr_matrix] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int], nfields: int = 1) -> "CooMat":
        return cls(shape, np.empty(0, np.int64), np.empty(0, np.int64),
                   np.empty((0, nfields), np.int64), checked=True)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix | sp.sparray) -> "CooMat":
        """Build from a scipy sparse matrix (values cast to int64)."""
        coo = sp.coo_matrix(mat)
        return cls(coo.shape, coo.row.astype(np.int64),
                   coo.col.astype(np.int64), coo.data.astype(np.int64))

    def to_scipy(self, field: int = 0) -> sp.coo_matrix:
        """Export one value field as a scipy COO matrix (tests/inspection)."""
        return sp.coo_matrix((self.vals[:, field].astype(np.float64),
                              (self.row, self.col)), shape=self.shape)

    # -- invariants ---------------------------------------------------------
    def _canonicalize(self) -> None:
        if self.row.shape[0] == 0:
            return
        key = self.keys()
        # Builders that emit entries in row-major order (the batched A scan,
        # kernel outputs) skip the sort: strict monotonicity certifies both
        # canonical order and coordinate uniqueness in one linear pass.
        if bool(np.all(key[1:] > key[:-1])):
            return
        order = np.lexsort((self.col, self.row))
        self.row = self.row[order]
        self.col = self.col[order]
        self.vals = self.vals[order]
        key_same = np.zeros(self.row.shape[0], dtype=bool)
        key_same[1:] = (self.row[1:] == self.row[:-1]) & \
                       (self.col[1:] == self.col[:-1])
        if key_same.any():
            raise ValueError("duplicate coordinates; reduce with a semiring first")

    # -- basic properties ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.row.shape[0])

    @property
    def nfields(self) -> int:
        return int(self.vals.shape[1])

    def keys(self) -> np.ndarray:
        """Packed (row, col) keys — unique per entry, row-major sorted."""
        return self.row * np.int64(self.shape[1]) + self.col

    # -- derived forms --------------------------------------------------------
    def csr_indptr(self) -> np.ndarray:
        """CSR row pointer over the sorted COO data (computed once, cached)."""
        if self._indptr is None:
            counts = np.bincount(self.row, minlength=self.shape[0])
            indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._indptr = indptr
        return self._indptr

    def to_csr(self, field: int = 0) -> sp.csr_matrix:
        """One value field as a CSR matrix sharing this matrix's storage.

        The canonical row-major order means ``col`` already *is* the CSR
        index array; the returned matrix aliases it (and, for single-field
        matrices, the value column) rather than copying.  Callers must treat
        the result as read-only.  Built once per field and cached.
        """
        csr = self._csr.get(field)
        if csr is None:
            data = self.vals[:, field]
            if not data.flags.c_contiguous:
                data = np.ascontiguousarray(data)
            csr = sp.csr_matrix(self.shape, dtype=np.int64)
            csr.indptr = self.csr_indptr()
            csr.indices = self.col
            csr.data = data
            self._csr[field] = csr
        return csr

    @classmethod
    def from_csr(cls, mat: sp.csr_matrix, *, checked: bool = False
                 ) -> "CooMat":
        """Build from a duplicate-free CSR matrix without re-sorting.

        CSR with sorted indices is already canonical COO order, so the only
        work is expanding ``indptr`` back into a row array; the produced
        matrix inherits the row pointer into its cache.  Duplicate
        coordinates (legal in raw scipy CSR) are rejected unless
        ``checked=True`` asserts the input has none — as with the
        constructor, only for callers that can prove it (scipy matmul /
        binop / conversion outputs cannot carry duplicates).

        The result takes ownership of ``mat``'s arrays where dtypes allow
        (no copy) and sorting may happen in place — do not mutate ``mat``
        or its buffers afterwards.
        """
        if not mat.has_sorted_indices:
            mat.sort_indices()
        indptr = mat.indptr.astype(np.int64, copy=False)
        col = mat.indices.astype(np.int64, copy=False)
        row = np.repeat(np.arange(mat.shape[0], dtype=np.int64),
                        np.diff(indptr))
        if not checked and col.shape[0] and \
                ((row[1:] == row[:-1]) & (col[1:] == col[:-1])).any():
            raise ValueError("duplicate coordinates; reduce with a semiring "
                             "first")
        out = cls(mat.shape, row, col,
                  mat.data.astype(np.int64, copy=False), checked=True)
        out._indptr = indptr
        return out

    def transpose(self) -> "CooMat":
        return CooMat((self.shape[1], self.shape[0]), self.col.copy(),
                      self.row.copy(), self.vals.copy())

    # -- slicing (block extraction) -------------------------------------------
    def submatrix(self, r0: int, r1: int, c0: int, c1: int) -> "CooMat":
        """Block ``[r0:r1, c0:c1]`` with local (shifted) coordinates."""
        m = (self.row >= r0) & (self.row < r1) & \
            (self.col >= c0) & (self.col < c1)
        return CooMat((r1 - r0, c1 - c0), self.row[m] - r0,
                      self.col[m] - c0, self.vals[m], checked=True)

    def select(self, mask: np.ndarray) -> "CooMat":
        """Entries where ``mask`` is true (order preserved)."""
        return CooMat(self.shape, self.row[mask], self.col[mask],
                      self.vals[mask], checked=True)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CooMat(shape={self.shape}, nnz={self.nnz}, nf={self.nfields})"
