"""Distributed sparse-matrix substrate (the CombBLAS substitution).

2D block-distributed matrices (:class:`~repro.dsparse.distmat.DistMat`) over
local COO blocks (:class:`~repro.dsparse.coomat.CooMat`), semiring algebra
(:mod:`~repro.dsparse.semiring`), vectorized local SpGEMM
(:mod:`~repro.dsparse.spgemm`), distributed Sparse SUMMA
(:mod:`~repro.dsparse.summa`) and the element-wise kernels of Algorithm 2
(:mod:`~repro.dsparse.elementwise`).
"""

from .coomat import CooMat
from .distmat import DistMat
from .semiring import Semiring, PlusTimes, MinPlus, BoolOr, INF
from .spgemm import spgemm_esc, spgemm_gustavson, multiway_merge
from .summa import summa
from .elementwise import (
    reduce_rows, apply_vector, dimapply_rows, ewise_compare_mask,
    prune_mask, apply_entries, prune_entries,
)
from .redistrib import to_2d_grid, to_block_rows

__all__ = [
    "CooMat", "DistMat",
    "Semiring", "PlusTimes", "MinPlus", "BoolOr", "INF",
    "spgemm_esc", "spgemm_gustavson", "multiway_merge", "summa",
    "reduce_rows", "apply_vector", "dimapply_rows", "ewise_compare_mask",
    "prune_mask", "apply_entries", "prune_entries",
    "to_2d_grid", "to_block_rows",
]
