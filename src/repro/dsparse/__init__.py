"""Distributed sparse-matrix substrate (the CombBLAS substitution).

2D block-distributed matrices (:class:`~repro.dsparse.distmat.DistMat`) over
local COO/CSR blocks (:class:`~repro.dsparse.coomat.CooMat`), semiring
algebra (:mod:`~repro.dsparse.semiring`), vectorized local SpGEMM
(:mod:`~repro.dsparse.spgemm`), distributed Sparse SUMMA
(:mod:`~repro.dsparse.summa`) and the element-wise kernels of Algorithm 2
(:mod:`~repro.dsparse.elementwise`).

Local kernels are pluggable: :mod:`~repro.dsparse.backend` routes every
block-level operation (SpGEMM, merge, filter, reduction, transpose) through
a registered :class:`~repro.dsparse.backend.Backend` — ``numpy`` (the ESC
reference), ``scipy`` (native CSR matmul for scalar semirings), or ``auto``
(the default per-call dispatch) — mirroring CombBLAS's per-block kernel
switching that the paper identifies as the runtime-dominating choice.
"""

from .coomat import CooMat
from .distmat import DistMat
from .semiring import Semiring, PlusTimes, MinPlus, BoolOr, INF
from .backend import (
    Backend, NumpyBackend, ScipyBackend, AutoBackend,
    get_backend, register_backend, available_backends, DEFAULT_BACKEND,
)
from .spgemm import expand_products, packed_order, spgemm_esc, \
    spgemm_gustavson, multiway_merge
from .masked import (
    SPGEMM_IMPLS, SPGEMM_IMPL_ENV, DEFAULT_SPGEMM_IMPL,
    resolve_spgemm_impl, mask_select, spgemm_esc_masked,
)
from .summa import summa
from .elementwise import (
    reduce_rows, apply_vector, dimapply_rows, ewise_compare_mask,
    prune_mask, apply_entries, prune_entries,
)
from .redistrib import to_2d_grid, to_block_rows

__all__ = [
    "CooMat", "DistMat",
    "Semiring", "PlusTimes", "MinPlus", "BoolOr", "INF",
    "Backend", "NumpyBackend", "ScipyBackend", "AutoBackend",
    "get_backend", "register_backend", "available_backends",
    "DEFAULT_BACKEND",
    "expand_products", "packed_order", "spgemm_esc", "spgemm_gustavson",
    "multiway_merge",
    "SPGEMM_IMPLS", "SPGEMM_IMPL_ENV", "DEFAULT_SPGEMM_IMPL",
    "resolve_spgemm_impl", "mask_select", "spgemm_esc_masked",
    "summa",
    "reduce_rows", "apply_vector", "dimapply_rows", "ewise_compare_mask",
    "prune_mask", "apply_entries", "prune_entries",
    "to_2d_grid", "to_block_rows",
]
