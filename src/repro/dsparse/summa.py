"""2D Sparse SUMMA with semiring support.

``C = A ⊗ B`` over a ``√P × √P`` grid proceeds in ``√P`` stages (paper
Section V-B): at stage ``k``, the owners of block column ``k`` of ``A``
broadcast their block along their **process row**, the owners of block row
``k`` of ``B`` broadcast theirs along their **process column**, and every
rank multiplies the received pair locally, accumulating partial results.
SUMMA is owner-computes — only inputs move, which is exactly why the paper's
2D bandwidth cost is ``am/√P`` versus the 1D outer-product's ``a²m/P``
(Table I).

The broadcasts run on sub-communicators of the simulated runtime so every
byte and message lands in the tracker under the caller's stage label, and
each stage's local multiplies run inside one :class:`~repro.mpisim.tracker.
StageTimer` superstep (critical-path max over ranks).
"""

from __future__ import annotations

from ..exec import Executor, SERIAL
from ..mpisim.comm import SimComm
from ..resilience.faults import maybe_fault
from ..mpisim.tracker import StageTimer
from .backend import Backend, get_backend
from .coomat import CooMat
from .distmat import DistMat
from .semiring import Semiring

__all__ = ["summa", "summa_comm_replay"]


def _spgemm_task(ctx, operands):
    """Executor task: one local block product (module-level for pickling).

    Returns ``(block, path)`` so process-pool workers carry the kernel path
    back to the parent for the per-stage dispatch counters.
    """
    backend, semiring = ctx
    a, b, m = operands
    maybe_fault("summa.block")
    return backend.spgemm_with_path(a, b, semiring, mask=m)


def _merge_task(ctx, task):
    """Executor task: one output block's partial-result accumulation."""
    backend, semiring = ctx
    parts, shape = task
    return backend.merge(parts, semiring, shape)


def _stage_broadcasts(A: DistMat, B: DistMat, k: int, comm: SimComm,
                      stage: str) -> tuple[list[list[CooMat]],
                                           list[list[CooMat]]]:
    """Stage ``k``'s row/column broadcasts (the whole of SUMMA's traffic).

    Both :func:`summa` and :func:`summa_comm_replay` issue their collectives
    through this one helper, so the replay's accounting cannot drift from
    the real product's.
    """
    grid = A.grid
    q = grid.q
    # Row broadcasts: A block (i, k) to all of process row i.
    recvA = [comm.sub(grid.row_ranks(i)).bcast(A.blocks[i][k], root=k,
                                               stage=stage)
             for i in range(q)]
    # Column broadcasts: B block (k, j) to all of process column j.
    recvB = [comm.sub(grid.col_ranks(j)).bcast(B.blocks[k][j], root=k,
                                               stage=stage)
             for j in range(q)]
    return recvA, recvB


def summa_comm_replay(A: DistMat, B: DistMat, comm: SimComm, stage: str
                      ) -> None:
    """Re-issue SUMMA's broadcasts for ``A ⊗ B`` without multiplying.

    The product's communication is a pure function of the operands' block
    sizes — stage ``k`` broadcasts A's block column ``k`` along process rows
    and B's block row ``k`` along process columns, whatever the semiring.
    The incremental service uses this to charge a refreshed dataset's exact
    ``SpGEMM``/``TrReduction``-shaped traffic when it already knows the
    product's value from a delta computation.  (Under the masked engine the
    count pass runs against a throwaway communicator, so one replay of the
    full operands covers both engines' recorded traffic.)
    """
    if A.grid.q != B.grid.q:
        raise ValueError("operands must share a process grid")
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    for k in range(A.grid.q):
        _stage_broadcasts(A, B, k, comm, stage)


def summa(A: DistMat, B: DistMat, semiring: Semiring, comm: SimComm,
          stage: str, timer: StageTimer | None = None,
          backend: Backend | str | None = None,
          executor: Executor | None = None,
          mask: DistMat | None = None) -> DistMat:
    """Distributed ``C = A ⊗ B`` via Sparse SUMMA.

    Parameters
    ----------
    A, B:
        Distributed operands on the same process grid (``A`` is
        ``n×m``-blocked, ``B`` ``m×l``; inner block bounds must agree).
    semiring:
        Scalar algebra for multiply/accumulate.
    comm:
        World communicator covering the grid (``comm.nprocs == P``).
    stage:
        Tracker stage label for all traffic and compute of this product.
    timer:
        Optional stage timer; local multiplies are charged per superstep.
    backend:
        Local-kernel backend (name or instance) for the block multiplies and
        the per-block accumulation; ``None`` selects the default
        (:data:`~repro.dsparse.backend.DEFAULT_BACKEND`) auto-dispatch.
    executor:
        :class:`~repro.exec.Executor` running the local block work (the
        ``q²`` multiplies per SUMMA stage, the ``q²`` final merges) in
        parallel; ``None`` runs them serially.  Output is byte-identical
        either way; per-block compute time is still charged to the owning
        simulated rank.
    mask:
        Optional output-pattern mask on the same grid as ``C``: the result
        is ``(A ⊗ B) ∩ mask``, with each rank pruning its local products to
        its own mask block before the sort/reduce (CombBLAS masked SpGEMM;
        the mask is already distributed, so no extra communication moves).

    Returns
    -------
    DistMat
        ``C`` distributed on the same grid.
    """
    if A.grid.q != B.grid.q:
        raise ValueError("operands must share a process grid")
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    grid = A.grid
    q = grid.q
    if comm.nprocs != grid.nprocs:
        raise ValueError("communicator size must match grid size")
    timer = timer if timer is not None else StageTimer()
    backend = get_backend(backend)
    executor = executor if executor is not None else SERIAL
    if mask is not None:
        if mask.grid.q != q:
            raise ValueError("mask must live on the operands' process grid")
        if mask.shape != (A.shape[0], B.shape[1]):
            raise ValueError(f"mask shape {mask.shape} != output shape "
                             f"{(A.shape[0], B.shape[1])}")
    ctx = (backend, semiring)
    ij = [(i, j) for i in range(q) for j in range(q)]

    # Partial products accumulated per output block.
    partials: list[list[list[CooMat]]] = [[[] for _ in range(q)] for _ in range(q)]

    for k in range(q):
        recvA, recvB = _stage_broadcasts(A, B, k, comm, stage)

        tasks = [(recvA[i][j], recvB[j][i],
                  mask.blocks[i][j] if mask is not None else None)
                 for i, j in ij]
        weights = [a.nnz + b.nnz for a, b, _m in tasks]
        with timer.superstep(stage) as step:
            results, secs = executor.run_timed(_spgemm_task, tasks,
                                               context=ctx, weights=weights)
            step.charge_many((grid.rank_of(i, j) for i, j in ij), secs)
            for (i, j), (part, path) in zip(ij, results):
                timer.count_kernel(stage, path)
                if part.nnz:
                    partials[i][j].append(part)

    # Final per-block accumulation (local, no communication).
    rb = grid.row_bounds(A.shape[0])
    cb = grid.col_bounds(B.shape[1])
    tasks = [(partials[i][j],
              (int(rb[i + 1] - rb[i]), int(cb[j + 1] - cb[j])))
             for i, j in ij]
    weights = [sum(p.nnz for p in plist) for plist, _ in tasks]
    with timer.superstep(stage) as step:
        merged, secs = executor.run_timed(_merge_task, tasks, context=ctx,
                                          weights=weights)
        step.charge_many((grid.rank_of(i, j) for i, j in ij), secs)
    blocks = [[merged[i * q + j] for j in range(q)] for i in range(q)]
    return DistMat((A.shape[0], B.shape[1]), grid, blocks, semiring.out_nfields)
