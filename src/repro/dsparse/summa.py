"""2D Sparse SUMMA with semiring support.

``C = A ⊗ B`` over a ``√P × √P`` grid proceeds in ``√P`` stages (paper
Section V-B): at stage ``k``, the owners of block column ``k`` of ``A``
broadcast their block along their **process row**, the owners of block row
``k`` of ``B`` broadcast theirs along their **process column**, and every
rank multiplies the received pair locally, accumulating partial results.
SUMMA is owner-computes — only inputs move, which is exactly why the paper's
2D bandwidth cost is ``am/√P`` versus the 1D outer-product's ``a²m/P``
(Table I).

The broadcasts run on sub-communicators of the simulated runtime so every
byte and message lands in the tracker under the caller's stage label, and
each stage's local multiplies run inside one :class:`~repro.mpisim.tracker.
StageTimer` superstep (critical-path max over ranks).
"""

from __future__ import annotations

from ..mpisim.comm import SimComm
from ..mpisim.tracker import StageTimer
from .backend import Backend, get_backend
from .coomat import CooMat
from .distmat import DistMat
from .semiring import Semiring

__all__ = ["summa"]


def summa(A: DistMat, B: DistMat, semiring: Semiring, comm: SimComm,
          stage: str, timer: StageTimer | None = None,
          backend: Backend | str | None = None) -> DistMat:
    """Distributed ``C = A ⊗ B`` via Sparse SUMMA.

    Parameters
    ----------
    A, B:
        Distributed operands on the same process grid (``A`` is
        ``n×m``-blocked, ``B`` ``m×l``; inner block bounds must agree).
    semiring:
        Scalar algebra for multiply/accumulate.
    comm:
        World communicator covering the grid (``comm.nprocs == P``).
    stage:
        Tracker stage label for all traffic and compute of this product.
    timer:
        Optional stage timer; local multiplies are charged per superstep.
    backend:
        Local-kernel backend (name or instance) for the block multiplies and
        the per-block accumulation; ``None`` selects the default
        (:data:`~repro.dsparse.backend.DEFAULT_BACKEND`) auto-dispatch.

    Returns
    -------
    DistMat
        ``C`` distributed on the same grid.
    """
    if A.grid.q != B.grid.q:
        raise ValueError("operands must share a process grid")
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions differ: {A.shape} x {B.shape}")
    grid = A.grid
    q = grid.q
    if comm.nprocs != grid.nprocs:
        raise ValueError("communicator size must match grid size")
    timer = timer if timer is not None else StageTimer()
    backend = get_backend(backend)

    # Partial products accumulated per output block.
    partials: list[list[list[CooMat]]] = [[[] for _ in range(q)] for _ in range(q)]

    for k in range(q):
        # Row broadcasts: A block (i, k) to all of process row i.
        recvA: list[list[CooMat]] = []
        for i in range(q):
            row_comm = comm.sub(grid.row_ranks(i))
            recvA.append(row_comm.bcast(A.blocks[i][k], root=k, stage=stage))
        # Column broadcasts: B block (k, j) to all of process column j.
        recvB: list[list[CooMat]] = []
        for j in range(q):
            col_comm = comm.sub(grid.col_ranks(j))
            recvB.append(col_comm.bcast(B.blocks[k][j], root=k, stage=stage))

        with timer.superstep(stage) as step:
            for i in range(q):
                for j in range(q):
                    rank = grid.rank_of(i, j)
                    with step.rank(rank):
                        part = backend.spgemm(recvA[i][j], recvB[j][i],
                                              semiring)
                        if part.nnz:
                            partials[i][j].append(part)

    # Final per-block accumulation (local, no communication).
    rb = grid.row_bounds(A.shape[0])
    cb = grid.col_bounds(B.shape[1])
    with timer.superstep(stage) as step:
        blocks: list[list[CooMat]] = []
        for i in range(q):
            brow: list[CooMat] = []
            for j in range(q):
                rank = grid.rank_of(i, j)
                with step.rank(rank):
                    shape = (int(rb[i + 1] - rb[i]), int(cb[j + 1] - cb[j]))
                    brow.append(backend.merge(partials[i][j], semiring,
                                              shape))
            blocks.append(brow)
    return DistMat((A.shape[0], B.shape[1]), grid, blocks, semiring.out_nfields)
