"""2D block-distributed sparse matrix.

A :class:`DistMat` mirrors CombBLAS's distribution (paper Section IV-D): the
``√P × √P`` process grid owns one block each, blocks use *local* coordinates,
and global index arithmetic goes through the grid's balanced block bounds.

Blocks are :class:`~repro.dsparse.coomat.CooMat`\\ s living in per-rank slots
of the simulated runtime.  Construction from global data models the initial
scatter; :meth:`to_global` gathers for verification (tests only — a real run
never materializes the global matrix, and neither do the pipeline stages).
"""

from __future__ import annotations

import numpy as np

from ..mpisim.grid import ProcessGrid2D
from .coomat import CooMat

__all__ = ["DistMat"]


class DistMat:
    """Sparse ``shape[0] × shape[1]`` matrix distributed over a 2D grid."""

    def __init__(self, shape: tuple[int, int], grid: ProcessGrid2D,
                 blocks: list[list[CooMat]], nfields: int) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.grid = grid
        self.blocks = blocks  # blocks[i][j] owned by rank grid.rank_of(i, j)
        self.nfields = nfields
        self.row_bounds = grid.row_bounds(self.shape[0])
        self.col_bounds = grid.col_bounds(self.shape[1])

    # -- construction ------------------------------------------------------
    @classmethod
    def from_coo(cls, shape: tuple[int, int], grid: ProcessGrid2D,
                 row: np.ndarray, col: np.ndarray, vals: np.ndarray
                 ) -> "DistMat":
        """Distribute global COO data onto the grid."""
        row = np.asarray(row, dtype=np.int64)
        col = np.asarray(col, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.int64)
        if vals.ndim == 1:
            vals = vals[:, None]
        q = grid.q
        rb = grid.row_bounds(shape[0])
        cb = grid.col_bounds(shape[1])
        bi = np.searchsorted(rb, row, side="right") - 1
        bj = np.searchsorted(cb, col, side="right") - 1
        blocks: list[list[CooMat]] = []
        for i in range(q):
            brow: list[CooMat] = []
            for j in range(q):
                m = (bi == i) & (bj == j)
                block = CooMat(
                    (int(rb[i + 1] - rb[i]), int(cb[j + 1] - cb[j])),
                    row[m] - rb[i], col[m] - cb[j], vals[m])
                brow.append(block)
            blocks.append(brow)
        return cls(shape, grid, blocks, vals.shape[1])

    @classmethod
    def empty(cls, shape: tuple[int, int], grid: ProcessGrid2D,
              nfields: int = 1) -> "DistMat":
        q = grid.q
        rb = grid.row_bounds(shape[0])
        cb = grid.col_bounds(shape[1])
        blocks = [[CooMat.empty((int(rb[i + 1] - rb[i]),
                                 int(cb[j + 1] - cb[j])), nfields)
                   for j in range(q)] for i in range(q)]
        return cls(shape, grid, blocks, nfields)

    # -- inspection ----------------------------------------------------------
    def nnz(self) -> int:
        """Global nonzero count (an ``MPI_Allreduce`` in a real run; the
        transitive-reduction loop's convergence test uses this)."""
        return sum(b.nnz for brow in self.blocks for b in brow)

    def block(self, i: int, j: int) -> CooMat:
        return self.blocks[i][j]

    def to_global(self) -> CooMat:
        """Gather all blocks into one global CooMat (verification only)."""
        rows, cols, vals = [], [], []
        for i in range(self.grid.q):
            for j in range(self.grid.q):
                b = self.blocks[i][j]
                rows.append(b.row + self.row_bounds[i])
                cols.append(b.col + self.col_bounds[j])
                vals.append(b.vals)
        if not rows:
            return CooMat.empty(self.shape, self.nfields)
        return CooMat(self.shape,
                      np.concatenate(rows) if rows else np.empty(0, np.int64),
                      np.concatenate(cols) if cols else np.empty(0, np.int64),
                      np.vstack(vals) if vals else np.empty((0, self.nfields)))

    # -- structural ops --------------------------------------------------------
    def transpose(self, backend=None) -> "DistMat":
        """Distributed transpose.

        Block ``(i, j)`` becomes block ``(j, i)`` transposed; on a real grid
        this is a pairwise exchange across the diagonal (the paper's
        ``TRANSPOSE(A)``, Algorithm 1 line 5).  ``backend`` (a
        :class:`~repro.dsparse.backend.Backend` instance or name) picks the
        local transpose kernel; ``None`` resolves to the default backend,
        matching every other backend seam.
        """
        from .backend import get_backend
        bk = get_backend(backend)
        q = self.grid.q
        blocks = [[bk.transpose(self.blocks[j][i]) for j in range(q)]
                  for i in range(q)]
        return DistMat((self.shape[1], self.shape[0]), self.grid, blocks,
                       self.nfields)

    def column_slice(self, lo: int, hi: int) -> "DistMat":
        """Columns ``[lo, hi)`` as a narrower DistMat on the same grid.

        The slice is re-blocked to the grid's balanced bounds for its new
        width — each destination block gathers from the source blocks its
        global column range overlaps (on a real grid, a block-row-local
        exchange).  This is the strip extraction of the blocked overlap
        mode: ``C[:, lo:hi] = A · Aᵀ.column_slice(lo, hi)``.
        """
        if not 0 <= lo <= hi <= self.shape[1]:
            raise ValueError(f"column slice [{lo}, {hi}) out of range for "
                             f"{self.shape[1]} columns")
        q = self.grid.q
        strip_cb = self.grid.col_bounds(hi - lo)
        blocks: list[list[CooMat]] = []
        for i in range(q):
            n_rows = int(self.row_bounds[i + 1] - self.row_bounds[i])
            brow: list[CooMat] = []
            for j in range(q):
                c0, c1 = int(strip_cb[j]), int(strip_cb[j + 1])
                # Global source columns of this destination block.
                g0, g1 = lo + c0, lo + c1
                rows, cols, vals = [], [], []
                for sj in range(q):
                    s0 = int(self.col_bounds[sj])
                    s1 = int(self.col_bounds[sj + 1])
                    o0, o1 = max(g0, s0), min(g1, s1)
                    if o0 >= o1:
                        continue
                    b = self.blocks[i][sj]
                    gcol = b.col + s0
                    m = (gcol >= o0) & (gcol < o1)
                    rows.append(b.row[m])
                    cols.append(gcol[m] - g0)
                    vals.append(b.vals[m])
                if rows:
                    brow.append(CooMat((n_rows, c1 - c0),
                                       np.concatenate(rows),
                                       np.concatenate(cols),
                                       np.vstack(vals)))
                else:
                    brow.append(CooMat.empty((n_rows, c1 - c0), self.nfields))
            blocks.append(brow)
        return DistMat((self.shape[0], hi - lo), self.grid, blocks,
                       self.nfields)

    def copy(self) -> "DistMat":
        q = self.grid.q
        blocks = [[CooMat(self.blocks[i][j].shape,
                          self.blocks[i][j].row.copy(),
                          self.blocks[i][j].col.copy(),
                          self.blocks[i][j].vals.copy(), checked=True)
                   for j in range(q)] for i in range(q)]
        return DistMat(self.shape, self.grid, blocks, self.nfields)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DistMat(shape={self.shape}, grid={self.grid.q}x{self.grid.q},"
                f" nnz={self.nnz()})")
