"""Element-wise and row-wise distributed kernels.

These are the CombBLAS primitives Algorithm 2 composes around the SpGEMM:

* ``REDUCE(Row, 0, max)``  → :func:`reduce_rows`
* ``APPLY(x, add)``        → :func:`apply_vector` (on the reduced vector)
* ``DIMAPPLY(Row, v, return2nd)`` → :func:`dimapply_rows`
* ``M ≥ N`` intersection   → :func:`ewise_compare_mask`
* ``R ← R ∘ ¬I``           → :func:`prune_mask` (set difference on patterns)
* in-place APPLY/PRUNE on entries → :func:`apply_entries`, :func:`prune_entries`

Row reductions need one allreduce per process row (a block row's nonzeros are
spread over ``√P`` ranks); everything else is embarrassingly local, which is
why the paper counts no communication for the element-wise parts of the
transitive reduction (Section V-D).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..mpisim.comm import SimComm
from .backend import Backend, get_backend
from .coomat import CooMat
from .distmat import DistMat

__all__ = [
    "reduce_rows",
    "apply_vector",
    "dimapply_rows",
    "ewise_compare_mask",
    "prune_mask",
    "apply_entries",
    "prune_entries",
]


def reduce_rows(A: DistMat, field: int, op_reduceat: Callable,
                identity: int, comm: SimComm | None = None,
                stage: str = "Reduce",
                backend: Backend | str | None = None) -> np.ndarray:
    """Row-wise reduction of one value field → global dense vector.

    ``op_reduceat`` is a numpy ufunc (e.g. ``np.maximum``) whose ``reduceat``
    folds each row's local entries (via the backend's row-reduction kernel);
    partial per-block-row vectors are then allreduced along each process row
    (charged to ``stage`` when ``comm`` is given).  Rows with no nonzeros
    hold ``identity``.
    """
    backend = get_backend(backend)
    q = A.grid.q
    out = np.full(A.shape[0], identity, dtype=np.int64)
    for i in range(q):
        r0, r1 = int(A.row_bounds[i]), int(A.row_bounds[i + 1])
        partials = [backend.row_reduce(A.blocks[i][j], field, op_reduceat,
                                       identity) for j in range(q)]
        if comm is not None:
            row_comm = comm.sub(A.grid.row_ranks(i))
            acc = row_comm.allreduce(partials, lambda a, b: op_reduceat(a, b),
                                     stage=stage)
        else:
            acc = partials[0]
            for p in partials[1:]:
                acc = op_reduceat(acc, p)
        out[r0:r1] = acc
    return out


def apply_vector(v: np.ndarray, f: Callable[[np.ndarray], np.ndarray]
                 ) -> np.ndarray:
    """``APPLY`` on a dense vector (Algorithm 2 line 6: add the fuzz x)."""
    return f(v)


def dimapply_rows(A: DistMat, v: np.ndarray, out_field: int = 0) -> DistMat:
    """``DIMAPPLY(Row, v, return2nd)``: replace every nonzero's value with
    its row's vector entry, keeping A's pattern (Algorithm 2 line 7 builds
    the maximal-suffix matrix M this way)."""
    q = A.grid.q
    blocks = []
    for i in range(q):
        r0 = int(A.row_bounds[i])
        brow = []
        for j in range(q):
            b = A.blocks[i][j]
            vals = np.empty((b.nnz, 1), dtype=np.int64)
            vals[:, 0] = v[b.row + r0]
            brow.append(CooMat(b.shape, b.row.copy(), b.col.copy(), vals,
                               checked=True))
        blocks.append(brow)
    return DistMat(A.shape, A.grid, blocks, 1)


def _match_mask(a: CooMat, b: CooMat) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays (into a and b) of their common coordinates."""
    ka, kb = a.keys(), b.keys()
    common = np.intersect1d(ka, kb, assume_unique=True)
    ia = np.searchsorted(ka, common)
    ib = np.searchsorted(kb, common)
    return ia, ib


def ewise_compare_mask(M: DistMat, N: DistMat,
                       predicate: Callable[[np.ndarray, np.ndarray], np.ndarray]
                       ) -> DistMat:
    """``I ← predicate(M, N)`` over the **intersection** of patterns.

    Returns a boolean-valued (0/1 single field) DistMat whose nonzeros are
    the intersection coordinates where the predicate holds — Algorithm 2
    line 8's ``I ← M ≥ N``, with the orientation checks folded into
    ``predicate`` by the caller.
    """
    if M.shape != N.shape:
        raise ValueError("shape mismatch")
    q = M.grid.q
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            mb, nb = M.blocks[i][j], N.blocks[i][j]
            im, inn = _match_mask(mb, nb)
            if im.shape[0] == 0:
                brow.append(CooMat.empty(mb.shape, 1))
                continue
            hold = predicate(mb.vals[im], nb.vals[inn])
            sel = np.flatnonzero(hold)
            vals = np.ones((sel.shape[0], 1), dtype=np.int64)
            brow.append(CooMat(mb.shape, mb.row[im[sel]], mb.col[im[sel]],
                               vals, checked=True))
        blocks.append(brow)
    return DistMat(M.shape, M.grid, blocks, 1)


def prune_mask(R: DistMat, I: DistMat,
               backend: Backend | str | None = None) -> DistMat:
    """``R ← R ∘ ¬I``: drop R's entries whose coordinate appears in I.

    The paper phrases this as element-wise multiply with the negation, i.e.
    the set difference ``nonzeros(R) \\ nonzeros(I)`` (Section IV-E).
    """
    if R.shape != I.shape:
        raise ValueError("shape mismatch")
    backend = get_backend(backend)
    q = R.grid.q
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            rb, ib = R.blocks[i][j], I.blocks[i][j]
            if ib.nnz == 0 or rb.nnz == 0:
                brow.append(rb)
                continue
            keep = ~np.isin(rb.keys(), ib.keys(), assume_unique=True)
            brow.append(backend.select(rb, keep))
        blocks.append(brow)
    return DistMat(R.shape, R.grid, blocks, R.nfields)


def apply_entries(A: DistMat, f: Callable[[np.ndarray], np.ndarray],
                  nfields: int | None = None) -> DistMat:
    """In-place-style APPLY over nonzero values (returns a new DistMat).

    ``f`` maps an ``(nnz, nf)`` value block to new values; the pattern is
    unchanged.  This models the paper's in-place alignment flagging on C
    (Section IV-D).
    """
    q = A.grid.q
    nf = nfields if nfields is not None else A.nfields
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            b = A.blocks[i][j]
            vals = f(b.vals) if b.nnz else np.empty((0, nf), dtype=np.int64)
            brow.append(CooMat(b.shape, b.row.copy(), b.col.copy(),
                               np.asarray(vals, dtype=np.int64), checked=True))
        blocks.append(brow)
    return DistMat(A.shape, A.grid, blocks, nf)


def prune_entries(A: DistMat, keep: Callable[[np.ndarray], np.ndarray],
                  backend: Backend | str | None = None) -> DistMat:
    """PRUNE: keep nonzeros where ``keep(vals)`` is true (Algorithm 1 line 8)."""
    backend = get_backend(backend)
    q = A.grid.q
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            b = A.blocks[i][j]
            if b.nnz == 0:
                brow.append(b)
                continue
            brow.append(backend.select(
                b, np.asarray(keep(b.vals), dtype=bool)))
        blocks.append(brow)
    return DistMat(A.shape, A.grid, blocks, A.nfields)
