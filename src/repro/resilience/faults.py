"""Deterministic fault injection keyed by named sites.

A :class:`FaultPlan` is a parsed fault spec — a ``;``-separated list of
clauses ``site:kind@counts``::

    exec.chunk:crash@3          # crash the worker on the 3rd exec.chunk check
    summa.block:exc@2,5         # raise on the 2nd and 5th block product
    service.refresh:exc@1+      # raise on every refresh from the 1st on
    exec.chunk:exc@*            # raise on every chunk submission

``site`` names the instrumented location (``exec.chunk``, ``summa.block``,
``service.refresh``, ``strip.checkpoint``); ``kind`` is ``exc`` (raise
:class:`FaultInjected`) or ``crash`` (kill the worker process with
``os._exit`` — from the parent process it degenerates to raising
:class:`InjectedWorkerCrash`, since the parent must survive to recover);
``counts`` selects which checks of that site fire, counted from 1 in
deterministic program order.

The plan is *armed* by installing it as the process-wide active plan
(:func:`active_plan`); every instrumented site calls :func:`maybe_fault`
(or :func:`check_fault` when the decision and the effect live in
different processes, as in the executor's chunk submissions).  With no
plan armed both are a single ``is None`` test — the hooks compile out of
the hot path.

Counters are plain per-site invocation counts held by the plan object, so
a given plan fires at exactly the same program points on every run of the
same configuration — which is what lets the chaos suite assert that a
faulted run's output is byte-identical to the fault-free golden run.
(Under a ``fork`` process pool, sites checked *inside* workers count per
worker process; the executor-level ``exec.chunk`` site avoids this by
deciding in the parent and shipping the verdict with the chunk.)
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager

__all__ = [
    "FAULT_SPEC_ENV", "FAULT_KINDS", "CRASH_EXIT_CODE",
    "FaultInjected", "InjectedWorkerCrash", "FaultPlan",
    "active_plan", "current_plan", "check_fault", "maybe_fault", "trip",
    "resolve_fault_plan",
]

#: Environment variable consulted by :func:`resolve_fault_plan` when no
#: explicit spec is given (mirrors ``REPRO_WORKERS`` & friends).
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: Injection kinds a clause may name.
FAULT_KINDS = ("exc", "crash")

#: Exit status used when ``crash`` kills a worker process — distinctive,
#: so a real segfault is never mistaken for an injected one.
CRASH_EXIT_CODE = 113


class FaultInjected(RuntimeError):
    """An injected fault (the ``exc`` kind, or ``crash`` in-process)."""

    def __init__(self, site: str, kind: str, count: int) -> None:
        super().__init__(f"injected fault: {kind} at {site} "
                         f"(check #{count})")
        self.site = site
        self.kind = kind
        self.count = count


class InjectedWorkerCrash(FaultInjected):
    """A ``crash`` injection hit in a context that cannot ``os._exit``
    (the main process, or a thread-pool worker sharing it)."""


def _parse_counts(text: str):
    """``counts`` matcher: explicit set, open range ``N+``, or ``*``."""
    text = text.strip()
    if text == "*":
        return lambda n: True
    if text.endswith("+"):
        start = int(text[:-1])
        if start < 1:
            raise ValueError("fault counts are 1-based")
        return lambda n: n >= start
    hits = frozenset(int(part) for part in text.split(","))
    if not hits or min(hits) < 1:
        raise ValueError("fault counts are 1-based")
    return lambda n: n in hits


class FaultPlan:
    """A parsed fault spec with its per-site invocation counters.

    The plan is mutable state (counters advance, fired faults are
    recorded in :attr:`fired`) — build a fresh one per run for per-run
    schedules, or keep one alive across calls for cross-call schedules
    like the service's per-ingest counter.
    """

    def __init__(self, spec: str = "") -> None:
        self.spec = spec
        self._actions: dict[str, list] = {}
        self._counts: dict[str, int] = {}
        #: Every fault this plan has fired, as ``(site, kind, count)``.
        self.fired: list[tuple[str, str, int]] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            try:
                site_kind, counts = clause.split("@", 1)
                site, kind = site_kind.rsplit(":", 1)
            except ValueError:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected "
                    f"'site:kind@counts' (e.g. 'exec.chunk:crash@3')"
                ) from None
            site, kind = site.strip(), kind.strip()
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in "
                                 f"{clause!r}; expected one of "
                                 f"{', '.join(FAULT_KINDS)}")
            self._actions.setdefault(site, []).append(
                (kind, _parse_counts(counts)))

    def check(self, site: str) -> str | None:
        """Advance ``site``'s counter; the kind to fire now, or ``None``."""
        actions = self._actions.get(site)
        if actions is None:
            return None
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for kind, matches in actions:
            if matches(count):
                self.fired.append((site, kind, count))
                return kind
        return None

    def sites(self) -> list[str]:
        """The site names this plan can fire at, sorted."""
        return sorted(self._actions)

    def __bool__(self) -> bool:
        return bool(self._actions)

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultPlan({self.spec!r})"


#: The armed plan; ``None`` keeps every hook a single attribute test.
_ACTIVE: FaultPlan | None = None


def current_plan() -> FaultPlan | None:
    """The armed plan, if any."""
    return _ACTIVE


@contextmanager
def active_plan(plan: FaultPlan | None):
    """Arm ``plan`` for the duration of the block (nestable).

    ``None`` leaves whatever is currently armed in place, so callers can
    pass their resolved-or-absent plan unconditionally.  An *empty*
    :class:`FaultPlan` shadows an armed one — the way a test pins a
    fault-free region while ``REPRO_FAULT_SPEC`` is set globally.
    """
    global _ACTIVE
    if plan is None:
        yield _ACTIVE
        return
    prev = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = prev


def check_fault(site: str) -> str | None:
    """Consult the armed plan at ``site`` without raising.

    Returns the kind to fire (``"exc"`` / ``"crash"``) or ``None``.  Use
    this when the decision must be made in one process and executed in
    another (the executor decides per chunk in the parent and ships the
    verdict to the worker) — pair it with :func:`trip`.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.check(site)


def trip(kind: str, site: str, count: int = 0) -> None:
    """Execute an injection verdict from :func:`check_fault`.

    ``crash`` kills the current process via ``os._exit`` when running as
    a worker (a real, unclean death: no cleanup handlers, the pool sees
    ``BrokenProcessPool``); in the parent process — which must survive to
    run the recovery — it raises :class:`InjectedWorkerCrash` instead.
    """
    if kind == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedWorkerCrash(site, kind, count)
    raise FaultInjected(site, kind, count)


def maybe_fault(site: str) -> None:
    """The standard injection hook: check ``site`` and fire in place."""
    plan = _ACTIVE
    if plan is None:
        return
    kind = plan.check(site)
    if kind is not None:
        trip(kind, site, plan._counts.get(site, 0))


def resolve_fault_plan(spec: str | None = None) -> FaultPlan | None:
    """A fresh plan from an explicit spec, else ``REPRO_FAULT_SPEC``.

    Returns ``None`` (no injection) when neither names any clause, so the
    result can be handed straight to :func:`active_plan`.
    """
    if spec:
        return FaultPlan(spec)
    env = os.environ.get(FAULT_SPEC_ENV, "").strip()
    if env:
        return FaultPlan(env)
    return None
