"""repro.resilience — deterministic fault injection and recovery.

The pipeline is a long-running job whose real deployments face worker
death, preemption, and partial failures.  This package supplies the
substrate that lets every layer survive them while staying byte-identical
to a fault-free run:

* :mod:`repro.resilience.faults` — a seeded, counter-keyed
  :class:`FaultPlan` (``"exec.chunk:crash@3;service.refresh:exc@2"``)
  whose injection hooks compile down to a single ``None`` check when no
  plan is armed.
* :mod:`repro.resilience.retry` — the bounded :class:`RetryPolicy`
  (attempt ceiling + deterministic backoff schedule) the executors and
  the service consult when a chunk or a refresh fails.
* :mod:`repro.resilience.checkpoint` — the crash-safe per-strip
  :class:`StripCheckpoint` store behind the blocked pipeline's
  ``--checkpoint-dir`` (atomic writes, versioned manifest, fingerprint
  refusal of mismatched configs).

The recovery paths themselves live where the failures happen — chunk
retry/pool respawn/degradation in :mod:`repro.exec.executor`, strip
resume in :mod:`repro.core.blocked`, transactional commits in
:mod:`repro.service.server`.
"""

from .checkpoint import CheckpointMismatch, StripCheckpoint
from .faults import (FAULT_KINDS, FAULT_SPEC_ENV, FaultInjected, FaultPlan,
                     InjectedWorkerCrash, active_plan, check_fault,
                     current_plan, maybe_fault, resolve_fault_plan, trip)
from .retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "FaultPlan", "FaultInjected", "InjectedWorkerCrash", "FAULT_SPEC_ENV",
    "FAULT_KINDS", "active_plan", "current_plan", "check_fault",
    "maybe_fault", "trip", "resolve_fault_plan",
    "RetryPolicy", "DEFAULT_RETRY",
    "StripCheckpoint", "CheckpointMismatch",
]
