"""Bounded retry with a deterministic backoff schedule.

:class:`RetryPolicy` is consulted by the executors (chunk failures, pool
breakage) and describes *how often* and *how patiently* to retry — never
*what* the retried work produces: tasks are pure functions of their
inputs, so a retried chunk returns byte-identical results and the ordered
reduction places them exactly where the first attempt would have.

The backoff schedule is a pure function of the attempt number
(``base · factor^(attempt-1)``, capped), so recovery traces are
reproducible.  By default the delays are **recorded, not slept**
(``sleep=False``): the local pools this library drives respawn
instantly, and the test suite asserts on the recorded schedule instead
of waiting it out.  Deployments fronting genuinely flaky resources can
flip ``sleep=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry failed work, and the backoff between tries.

    ``max_attempts`` bounds the attempts *per degradation tier* (an
    executor that degrades process → thread → serial grants each tier its
    own budget, so total attempts stay bounded by
    ``max_attempts · n_tiers``).  ``delay(attempt)`` is the scheduled
    pause after failed attempt ``attempt`` (1-based).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    sleep: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got "
                             f"{self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Backoff seconds scheduled after failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt numbers are 1-based, got {attempt}")
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                   self.backoff_max)

    def schedule(self) -> list[float]:
        """The full backoff schedule (one entry per retryable failure)."""
        return [self.delay(a) for a in range(1, self.max_attempts)]


#: The executors' default: three attempts, 50 ms doubling backoff,
#: recorded rather than slept.
DEFAULT_RETRY = RetryPolicy()
