"""Crash-safe per-strip checkpointing for the blocked pipeline.

A :class:`StripCheckpoint` directory holds one versioned ``manifest.json``
plus one payload file per completed strip.  Every write is atomic
(temp file in the same directory, ``fsync``, ``os.replace``), so a run
killed at *any* instant leaves either the old bytes or the new bytes on
disk — never a torn file — and a re-invoked run resumes from exactly the
strips whose payloads finished.

The manifest carries a **fingerprint** of everything the strip results
depend on (the A matrix's entries, the read bases, k, alignment mode and
parameters, the strip spans).  Resuming against a directory whose
fingerprint differs raises :class:`CheckpointMismatch` instead of
silently merging strips of a different run — the checkpoint equivalent of
the service's cross-scheme refusal.

Payloads are pickled verbatim (they are the strip tasks' return values:
COO arrays plus the strip's private timer/tracker), so a resumed run
merges byte-identical accounting and produces byte-identical R/S/tracker
output — the determinism contract every other axis of this codebase
already honors.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile

__all__ = ["CheckpointMismatch", "StripCheckpoint", "MANIFEST_VERSION",
           "atomic_write"]

#: Manifest format version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint directory belongs to a different run configuration."""


def atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a torn file.

    Shared by every durable artifact in the tree (strip checkpoints, the
    mmap read-store manifest and index arrays): temp file in the same
    directory, ``fsync``, ``os.replace`` — a reader observes either the old
    bytes or the new bytes, never a mix.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-",
                               suffix=os.path.basename(path))
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class StripCheckpoint:
    """One run's strip store: manifest + ``strip_<i>.pkl`` payloads."""

    def __init__(self, directory: str, fingerprint: str,
                 n_strips: int) -> None:
        self.directory = str(directory)
        self.fingerprint = fingerprint
        self.n_strips = int(n_strips)

    # -- layout ------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    def strip_path(self, index: int) -> str:
        return os.path.join(self.directory, f"strip_{int(index):05d}.pkl")

    # -- lifecycle ---------------------------------------------------------
    def open(self) -> "StripCheckpoint":
        """Create the directory + manifest, or validate an existing one.

        A fresh directory gets the manifest written first (atomically),
        so any strip payload on disk is always covered by a manifest.  An
        existing manifest must match this run's fingerprint and strip
        count exactly; anything else is refused.
        """
        os.makedirs(self.directory, exist_ok=True)
        if os.path.exists(self.manifest_path):
            with open(self.manifest_path, "r") as fh:
                manifest = json.load(fh)
            if manifest.get("format") != MANIFEST_VERSION:
                raise CheckpointMismatch(
                    f"checkpoint manifest format "
                    f"{manifest.get('format')!r} in {self.directory!r} "
                    f"(this version writes {MANIFEST_VERSION})")
            if manifest.get("fingerprint") != self.fingerprint or \
                    manifest.get("n_strips") != self.n_strips:
                raise CheckpointMismatch(
                    f"checkpoint in {self.directory!r} was written by a "
                    f"different run (fingerprint "
                    f"{manifest.get('fingerprint')!r} over "
                    f"{manifest.get('n_strips')} strips; this run is "
                    f"{self.fingerprint!r} over {self.n_strips}); point "
                    f"--checkpoint-dir at an empty directory or delete "
                    f"the stale checkpoint")
        else:
            atomic_write(self.manifest_path, json.dumps(
                {"format": MANIFEST_VERSION,
                 "fingerprint": self.fingerprint,
                 "n_strips": self.n_strips},
                indent=2).encode())
        return self

    # -- strips ------------------------------------------------------------
    def has(self, index: int) -> bool:
        return os.path.exists(self.strip_path(index))

    def completed(self) -> list[int]:
        """Indices of strips whose payloads are on disk, ascending."""
        return [i for i in range(self.n_strips) if self.has(i)]

    def save(self, index: int, payload) -> None:
        """Persist one strip's result atomically."""
        atomic_write(self.strip_path(index),
                      pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def load(self, index: int):
        with open(self.strip_path(index), "rb") as fh:
            return pickle.load(fh)
