"""FASTA input/output and parallel-I/O-style chunked reading.

The paper ingests reads with parallel MPI I/O: every processor reads an
equal-sized byte range of the FASTA file and parses the records that *start*
inside its range (Section IV-B).  :func:`chunked_read_ranges` reproduces that
partitioning rule exactly so the simulated ranks receive the same read
distribution a real MPI run would, which in turn drives the read-exchange
communication volumes of Table I.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .dna import encode, decode

__all__ = [
    "ReadSet",
    "write_fasta",
    "read_fasta",
    "chunked_read_ranges",
]


class ReadSet:
    """An in-memory set of reads (names + 2-bit code arrays).

    This is the unit of data handed to the pipeline.  Reads keep insertion
    order; their index is the row index of the ``A``/``C``/``R``/``S``
    matrices throughout the pipeline.
    """

    def __init__(self, names: list[str], seqs: list[np.ndarray]) -> None:
        if len(names) != len(seqs):
            raise ValueError("names and seqs must have equal length")
        self.names = names
        self.seqs = seqs
        # Lazily-built structure-of-arrays view (reads are immutable once
        # constructed): one concatenated code buffer + per-read offsets.
        self._soa: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.seqs)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.seqs[i]

    def soa(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(codes, offsets, lengths)`` structure-of-arrays view, cached.

        ``codes`` is every read concatenated (read ``i`` occupies
        ``codes[offsets[i]:offsets[i] + lengths[i]]``) — the shared buffer
        the batched alignment engine addresses by (offset, stride, length)
        views.  Built once per ReadSet; treat all three arrays as
        read-only.
        """
        if self._soa is None:
            lengths = np.array([s.shape[0] for s in self.seqs],
                               dtype=np.int64)
            offsets = np.zeros(lengths.shape[0], dtype=np.int64)
            if lengths.shape[0] > 1:
                np.cumsum(lengths[:-1], out=offsets[1:])
            codes = np.concatenate(self.seqs) if self.seqs else \
                np.empty(0, np.uint8)
            self._soa = (codes, offsets, lengths)
        return self._soa

    def soa_block(self, lo: int, hi: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """SoA view of the contiguous read block ``[lo, hi)``.

        Returns ``(codes, offsets, lengths)`` where ``codes`` covers *only*
        this block's bases and ``offsets`` are rebased onto it — the unit of
        work the batched k-mer engine hands an executor task, so a process
        pool ships each worker just its own reads instead of the whole
        concatenated buffer.  All three arrays are views/derived from the
        cached :meth:`soa` buffers; treat them as read-only.
        """
        codes, offsets, lengths = self.soa()
        if lo >= hi:
            return (np.empty(0, np.uint8), np.empty(0, np.int64),
                    np.empty(0, np.int64))
        base = offsets[lo]
        end = offsets[hi - 1] + lengths[hi - 1]
        return codes[base:end], offsets[lo:hi] - base, lengths[lo:hi]

    def extend(self, names: list[str], seqs: list[np.ndarray]) -> None:
        """Append reads in place, invalidating the cached SoA view.

        The ``(codes, offsets, lengths)`` view is built lazily and cached;
        mutating the read lists behind it would keep serving the stale
        buffers (wrong lengths, missing bases), so any append must drop the
        cache and let the next :meth:`soa` call rebuild it over the full
        set.  Existing read indices are stable — new reads take the next
        indices — which is what the incremental assembly service relies on.
        """
        if len(names) != len(seqs):
            raise ValueError("names and seqs must have equal length")
        self.names.extend(names)
        self.seqs.extend(seqs)
        self._soa = None

    def concat(self, other: "ReadSet") -> "ReadSet":
        """New ReadSet of this set's reads followed by ``other``'s.

        The per-read code arrays are shared, not copied — the copy-on-write
        append the service's versioned states use (every version keeps its
        own name/seq *lists*, so older snapshots never see later reads).
        """
        return ReadSet(self.names + other.names, self.seqs + other.seqs)

    def __getstate__(self):
        # Drop the SoA cache from pickles (executor workers rebuild it
        # lazily) so shipping a ReadSet never pays for the bases twice.
        state = self.__dict__.copy()
        state["_soa"] = None
        return state

    @property
    def lengths(self) -> np.ndarray:
        """``int64`` array of read lengths (cached; treat as read-only)."""
        return self.soa()[2]

    def total_bases(self) -> int:
        return int(self.lengths.sum())

    def subset(self, idx: np.ndarray) -> "ReadSet":
        """New ReadSet containing reads at positions ``idx`` (in order)."""
        return ReadSet([self.names[i] for i in idx], [self.seqs[i] for i in idx])

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReadSet(n={len(self)}, bases={self.total_bases()})"


def write_fasta(path: str | Path, reads: ReadSet, width: int = 80) -> None:
    """Write a ReadSet to a FASTA file with ``width``-column wrapping."""
    with open(path, "w") as fh:
        for name, codes in zip(reads.names, reads.seqs):
            fh.write(f">{name}\n")
            s = decode(codes)
            for off in range(0, len(s), width):
                fh.write(s[off:off + width])
                fh.write("\n")


def read_fasta(source: str | Path | io.TextIOBase) -> ReadSet:
    """Parse a FASTA file (or open text handle) into a ReadSet."""
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            return read_fasta(fh)
    names: list[str] = []
    seqs: list[np.ndarray] = []
    cur: list[str] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if names:
                seqs.append(encode("".join(cur)))
            names.append(line[1:].split()[0])
            cur = []
        else:
            cur.append(line)
    if names:
        seqs.append(encode("".join(cur)))
    if len(seqs) != len(names):
        raise ValueError("malformed FASTA: header without sequence")
    return ReadSet(names, seqs)


def chunked_read_ranges(record_starts: np.ndarray, file_size: int, nprocs: int
                        ) -> list[tuple[int, int]]:
    """Assign FASTA records to processors by equal byte ranges.

    Parameters
    ----------
    record_starts:
        Byte offset of each record's ``>`` character, ascending.
    file_size:
        Total file size in bytes.
    nprocs:
        Number of processors.

    Returns
    -------
    list of (lo, hi):
        For each processor, the half-open range of *record indices* it owns:
        the records whose start offset falls inside its byte chunk
        ``[p*file_size/nprocs, (p+1)*file_size/nprocs)``.
    """
    record_starts = np.asarray(record_starts, dtype=np.int64)
    bounds = (np.arange(nprocs + 1, dtype=np.int64) * file_size) // nprocs
    idx = np.searchsorted(record_starts, bounds, side="left")
    return [(int(idx[p]), int(idx[p + 1])) for p in range(nprocs)]
