"""FASTA input/output and parallel-I/O-style chunked reading.

The paper ingests reads with parallel MPI I/O: every processor reads an
equal-sized byte range of the FASTA file and parses the records that *start*
inside its range (Section IV-B).  :func:`chunked_read_ranges` reproduces that
partitioning rule exactly so the simulated ranks receive the same read
distribution a real MPI run would, which in turn drives the read-exchange
communication volumes of Table I.

A :class:`ReadSet` is backed either by in-memory per-read code arrays or by
an on-disk :class:`~repro.seqs.read_store.MmapReadStore` (the out-of-core
path): both serve the identical ``soa()``/``soa_block()`` contract, so
every downstream stage is backend-oblivious.  :func:`read_fasta_to_store`
streams a FASTA file straight into a store — at no point are all bases
resident — which is how the pipeline ingests inputs larger than memory.

The parser is strict: empty records, duplicate headers, nameless headers,
and sequence data before the first header all raise :class:`ValueError`
naming the offending record.  Zero-length reads would otherwise flow
silently into k-mer extraction and alignment as degenerate rows.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .dna import encode, decode
from .read_store import MmapReadStore, MmapStoreWriter, content_digest

__all__ = [
    "ReadSet",
    "write_fasta",
    "read_fasta",
    "read_fasta_to_store",
    "chunked_read_ranges",
]


class _StoreSeqs:
    """List-like facade over a store's per-read code slices.

    Lets store-backed ReadSets keep the ``reads.seqs[i]`` / iteration
    contract without materializing the concatenated buffer: each access
    slices the codes memmap, so only the touched pages are faulted in.
    """

    def __init__(self, store: MmapReadStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.n_reads

    def __getitem__(self, i: int) -> np.ndarray:
        codes, offsets, lengths = self._store.arrays()
        off = int(offsets[i])
        return codes[off:off + int(lengths[i])]

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class ReadSet:
    """A set of reads (names + 2-bit code arrays), in memory or on disk.

    This is the unit of data handed to the pipeline.  Reads keep insertion
    order; their index is the row index of the ``A``/``C``/``R``/``S``
    matrices throughout the pipeline.

    The default backend holds per-read arrays in memory; a store-backed
    set (:meth:`from_store`) serves the same interface from memmaps and
    pickles as just the store path + fingerprint, so process-executor
    workers reopen the files instead of receiving the bases over the pipe.
    """

    def __init__(self, names: list[str], seqs: list[np.ndarray]) -> None:
        if len(names) != len(seqs):
            raise ValueError("names and seqs must have equal length")
        self.names = names
        self.seqs = seqs
        self._store: MmapReadStore | None = None
        # Lazily-built structure-of-arrays view (reads are immutable once
        # constructed): one concatenated code buffer + per-read offsets.
        self._soa: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_store(cls, store: MmapReadStore, names: list[str]) -> "ReadSet":
        """ReadSet over an opened store (bases stay on disk)."""
        if len(names) != store.n_reads:
            raise ValueError(f"store holds {store.n_reads} reads but "
                             f"{len(names)} names were given")
        rs = cls.__new__(cls)
        rs.names = names
        rs.seqs = _StoreSeqs(store)
        rs._store = store
        rs._soa = None
        return rs

    @property
    def store(self) -> MmapReadStore | None:
        """The backing store, or ``None`` for an in-memory set."""
        return self._store

    def __len__(self) -> int:
        return len(self.seqs)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.seqs[i]

    def soa(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(codes, offsets, lengths)`` structure-of-arrays view, cached.

        ``codes`` is every read concatenated (read ``i`` occupies
        ``codes[offsets[i]:offsets[i] + lengths[i]]``) — the shared buffer
        the batched alignment engine addresses by (offset, stride, length)
        views.  In-memory sets build it once per ReadSet; store-backed sets
        return the store's memmaps, so the "concatenated buffer" is pages
        on disk, not resident bytes.  Treat all three arrays as read-only.
        """
        if self._store is not None:
            return self._store.arrays()
        if self._soa is None:
            lengths = np.array([s.shape[0] for s in self.seqs],
                               dtype=np.int64)
            offsets = np.zeros(lengths.shape[0], dtype=np.int64)
            if lengths.shape[0] > 1:
                np.cumsum(lengths[:-1], out=offsets[1:])
            codes = np.concatenate(self.seqs) if self.seqs else \
                np.empty(0, np.uint8)
            self._soa = (codes, offsets, lengths)
        return self._soa

    def soa_block(self, lo: int, hi: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """SoA view of the contiguous read block ``[lo, hi)``.

        Returns ``(codes, offsets, lengths)`` where ``codes`` covers *only*
        this block's bases and ``offsets`` are rebased onto it — the unit of
        work the batched k-mer engine hands an executor task, so a process
        pool ships each worker just its own reads instead of the whole
        concatenated buffer.  All three arrays are views/derived from the
        cached :meth:`soa` buffers; treat them as read-only.
        """
        codes, offsets, lengths = self.soa()
        if lo >= hi:
            return (np.empty(0, np.uint8), np.empty(0, np.int64),
                    np.empty(0, np.int64))
        base = offsets[lo]
        end = offsets[hi - 1] + lengths[hi - 1]
        return codes[base:end], offsets[lo:hi] - base, lengths[lo:hi]

    def extend(self, names: list[str], seqs: list[np.ndarray]) -> None:
        """Append reads in place, invalidating the cached SoA view.

        The ``(codes, offsets, lengths)`` view is built lazily and cached;
        mutating the read lists behind it would keep serving the stale
        buffers (wrong lengths, missing bases), so any append must drop the
        cache and let the next :meth:`soa` call rebuild it over the full
        set.  Existing read indices are stable — new reads take the next
        indices — which is what the incremental assembly service relies on.

        Store-backed sets are immutable (the on-disk buffer is sealed by
        its fingerprint); use :meth:`concat` to grow them.
        """
        if self._store is not None:
            raise ValueError("cannot extend a store-backed ReadSet "
                             "(the on-disk buffer is sealed); use concat()")
        if len(names) != len(seqs):
            raise ValueError("names and seqs must have equal length")
        self.names.extend(names)
        self.seqs.extend(seqs)
        self._soa = None

    def concat(self, other: "ReadSet") -> "ReadSet":
        """New ReadSet of this set's reads followed by ``other``'s.

        The per-read code arrays are shared, not copied — the copy-on-write
        append the service's versioned states use (every version keeps its
        own name/seq *lists*, so older snapshots never see later reads).
        The result is always in-memory-backed (store slices are views onto
        the mapped pages, still not copies of the whole buffer).
        """
        return ReadSet(list(self.names) + list(other.names),
                       list(self.seqs) + list(other.seqs))

    def __getstate__(self):
        # Drop the SoA cache from pickles (executor workers rebuild it
        # lazily) so shipping a ReadSet never pays for the bases twice.
        # Store-backed sets additionally drop the seqs facade: the store
        # itself pickles as (directory, fingerprint) and the facade is
        # rebuilt over the reopened store on the other side.
        state = self.__dict__.copy()
        state["_soa"] = None
        if self._store is not None:
            state["seqs"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self._store is not None and self.seqs is None:
            self.seqs = _StoreSeqs(self._store)

    def content_fingerprint(self) -> str:
        """SHA-256 of the code + length bytes (backend-invariant).

        Store-backed sets return the manifest fingerprint (computed once at
        write time over the identical byte stream); in-memory sets hash
        their SoA buffers with the same algorithm — so the resilience
        checkpoints that cover the read bases get the same fingerprint
        whether the reads live in RAM or on disk.
        """
        if self._store is not None:
            return self._store.fingerprint
        codes, _offsets, lengths = self.soa()
        return content_digest(codes, lengths)

    def to_store(self, directory: str) -> "ReadSet":
        """Persist this set into ``directory``; return a store-backed twin."""
        store = MmapReadStore.create(directory, self.seqs)
        return ReadSet.from_store(store, list(self.names))

    @property
    def lengths(self) -> np.ndarray:
        """``int64`` array of read lengths (cached; treat as read-only)."""
        return self.soa()[2]

    def total_bases(self) -> int:
        return int(self.lengths.sum())

    def subset(self, idx: np.ndarray) -> "ReadSet":
        """New ReadSet containing reads at positions ``idx`` (in order)."""
        return ReadSet([self.names[i] for i in idx], [self.seqs[i] for i in idx])

    def __repr__(self) -> str:  # pragma: no cover
        return f"ReadSet(n={len(self)}, bases={self.total_bases()})"


def write_fasta(path: str | Path | io.TextIOBase, reads: ReadSet,
                width: int = 80) -> None:
    """Write a ReadSet to a FASTA file (or open text handle) with
    ``width``-column wrapping."""
    if isinstance(path, (str, Path)):
        with open(path, "w") as fh:
            write_fasta(fh, reads, width=width)
        return
    fh = path
    for name, codes in zip(reads.names, reads.seqs):
        fh.write(f">{name}\n")
        s = decode(codes)
        for off in range(0, len(s), width):
            fh.write(s[off:off + width])
            fh.write("\n")


def _fasta_records(source):
    """Yield ``(name, sequence_string)`` per record, validating as it goes.

    Raises :class:`ValueError` naming the offending record for every
    malformed shape that would otherwise corrupt the read set silently:

    * a header immediately followed by another header or EOF (the record
      would become a zero-length read — the bug this replaces: the old
      ``len(seqs) != len(names)`` check could never fire because the empty
      record *was* appended),
    * a bare ``>`` with no name,
    * two records with the same name (row indices would silently alias),
    * sequence data before any header.
    """
    seen: set[str] = set()
    name: str | None = None
    cur: list[str] = []
    lineno = 0
    for line in source:
        lineno += 1
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                if not cur:
                    raise ValueError(f"malformed FASTA: record {name!r} "
                                     f"(line {lineno}) has no sequence")
                yield name, "".join(cur)
            fields = line[1:].split()
            if not fields:
                raise ValueError(f"malformed FASTA: header with no name "
                                 f"at line {lineno}")
            name = fields[0]
            if name in seen:
                raise ValueError(f"malformed FASTA: duplicate record name "
                                 f"{name!r} at line {lineno}")
            seen.add(name)
            cur = []
        else:
            if name is None:
                raise ValueError(f"malformed FASTA: sequence data before "
                                 f"any '>' header at line {lineno}")
            cur.append(line)
    if name is not None:
        if not cur:
            raise ValueError(f"malformed FASTA: record {name!r} at end of "
                             f"file has no sequence")
        yield name, "".join(cur)


def read_fasta(source: str | Path | io.TextIOBase) -> ReadSet:
    """Parse a FASTA file (or open text handle) into an in-memory ReadSet.

    Malformed input — empty records, duplicate or nameless headers,
    sequence before the first header — raises :class:`ValueError` naming
    the offending record.  An empty file parses as an empty ReadSet.
    """
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            return read_fasta(fh)
    names: list[str] = []
    seqs: list[np.ndarray] = []
    for name, seq in _fasta_records(source):
        names.append(name)
        seqs.append(encode(seq))
    return ReadSet(names, seqs)


def read_fasta_to_store(source: str | Path | io.TextIOBase,
                        directory: str) -> ReadSet:
    """Stream a FASTA file into an on-disk store; return the backed ReadSet.

    Each record's codes go straight from the parser to the store's code
    file, so the resident footprint is one read plus the name list — the
    ingest path for inputs larger than memory.  Validation is identical to
    :func:`read_fasta`; on any parse error the partial store build is
    discarded.
    """
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            return read_fasta_to_store(fh, directory)
    names: list[str] = []
    writer = MmapStoreWriter(directory)
    try:
        for name, seq in _fasta_records(source):
            names.append(name)
            writer.add_read(encode(seq))
    except BaseException:
        writer.abort()
        raise
    return ReadSet.from_store(writer.finish(), names)


def chunked_read_ranges(record_starts: np.ndarray, file_size: int, nprocs: int
                        ) -> list[tuple[int, int]]:
    """Assign FASTA records to processors by equal byte ranges.

    Parameters
    ----------
    record_starts:
        Byte offset of each record's ``>`` character, ascending.
    file_size:
        Total file size in bytes.
    nprocs:
        Number of processors.

    Returns
    -------
    list of (lo, hi):
        For each processor, the half-open range of *record indices* it owns:
        the records whose start offset falls inside its byte chunk
        ``[p*file_size/nprocs, (p+1)*file_size/nprocs)``.
    """
    record_starts = np.asarray(record_starts, dtype=np.int64)
    bounds = (np.arange(nprocs + 1, dtype=np.int64) * file_size) // nprocs
    idx = np.searchsorted(record_starts, bounds, side="left")
    return [(int(idx[p]), int(idx[p + 1])) for p in range(nprocs)]
