"""Two-pass distributed k-mer counting with a Bloom filter.

Reproduces diBELLA 2D's counter (paper Section IV-C, after HipMer): k-mers
are hashed to an owner rank; in the first pass every rank ships its k-mers to
their owners, who insert them into a local Bloom filter — a k-mer is admitted
to the local counting table only when the filter says it was seen before
(singleton elimination).  The second pass ships the k-mers again and
accumulates exact counts for admitted k-mers.  Both passes are
``MPI_Alltoallv`` exchanges; with ``batches`` rounds per pass the latency
cost is ``Y = bP`` (Table I).

Reliable-k-mer selection then discards k-mers outside
``[2, upper]`` where ``upper`` follows BELLA's dataset-specific model
(:func:`reliable_upper_bound`): with error rate ``e`` a k-mer instance is
error-free with probability ``(1-e)^k``, so correct k-mers have multiplicity
``≈ Poisson(d·(1-e)^k)`` and anything far above that quantile is a repeat or
artifact.  With the paper's CLR parameters (k=17, e≈0.15, d=10–40) this model
lands on the small cutoffs the paper reports (they use max frequency 4 for
H. sapiens).

Two interchangeable engines drive the per-rank work, selected by ``impl``
(:func:`resolve_kmer_impl`, mirroring the alignment engine's
``loop | batch | auto`` switch):

* ``"batch"`` — structure-of-arrays throughout: extraction is one
  :func:`~repro.seqs.kmers.read_kmers_batch` sweep per rank over its SoA
  read block, and the admission/count tables are **sorted arrays** updated
  by merge (``np.searchsorted`` membership, vectorized accumulate) — no
  per-key Python dict traffic anywhere.
* ``"loop"`` — the original per-read extraction and ``dict[int, int]``
  tables, kept as the reference oracle.

The resulting :class:`KmerTable` (and the communication records) are
byte-identical between the two — pinned by the parity and golden suites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exec import Executor, SERIAL
from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import StageTimer
from .bloom import BloomFilter
from .fasta import ReadSet
from .kmers import splitmix64
from .seeding import FullKScheme, SeedScheme

__all__ = ["KmerTable", "reliable_upper_bound", "count_kmers",
           "KMER_IMPLS", "KMER_IMPL_ENV", "DEFAULT_KMER_IMPL",
           "resolve_kmer_impl", "kmer_histogram", "merge_histograms",
           "table_from_histogram"]

STAGE = "CountKmer"

#: K-mer engine names accepted by ``PipelineConfig.kmer_impl`` (plus
#: ``"auto"``, which resolves through :func:`resolve_kmer_impl`).
KMER_IMPLS = ("loop", "batch")

#: Environment variable consulted by ``kmer_impl="auto"``.
KMER_IMPL_ENV = "REPRO_KMER_IMPL"

#: What ``"auto"`` resolves to when the environment does not override it.
DEFAULT_KMER_IMPL = "batch"


def resolve_kmer_impl(impl: str | None = None) -> str:
    """Resolve a k-mer engine name to ``"loop"`` or ``"batch"``.

    ``None`` and ``"auto"`` defer to the :data:`KMER_IMPL_ENV` environment
    variable when set (mirroring ``REPRO_ALIGN_IMPL`` / ``REPRO_EXECUTOR``),
    else pick :data:`DEFAULT_KMER_IMPL`; explicit names pass through
    validated.  Both engines produce byte-identical output — the switch is a
    pure performance axis, with ``loop`` kept as the reference oracle.
    """
    if impl is None:
        impl = "auto"
    if impl == "auto":
        env = os.environ.get(KMER_IMPL_ENV, "").strip().lower()
        impl = env if env and env != "auto" else DEFAULT_KMER_IMPL
    if impl not in KMER_IMPLS:
        raise ValueError(f"unknown kmer impl {impl!r}; expected one of "
                         f"{', '.join(KMER_IMPLS + ('auto',))}")
    return impl


# -- executor tasks (module-level so the process pool can pickle them) ------

def _extract_task(ctx, owned_idx):
    """One rank's seed extraction over its block of reads (loop engine)."""
    reads, scheme = ctx
    parts = [scheme.seeds_of_read(reads[int(i)])[0] for i in owned_idx]
    return np.concatenate(parts) if parts else np.empty(0, np.uint64)


def _extract_batch_task(ctx, task):
    """One rank's seed extraction as a single SoA sweep (batch engine).

    The task carries the rank's own ``(codes, offsets, lengths)`` block
    (:meth:`~repro.seqs.fasta.ReadSet.soa_block`), so a process pool ships
    each worker only its reads' bases.  Output order (read-major, window
    order within a read) matches the loop engine's concatenation exactly
    for every :class:`~repro.seqs.seeding.SeedScheme`.
    """
    scheme = ctx
    codes, offsets, lengths = task
    return scheme.seeds_of_block(codes, offsets, lengths)[0]


def _pass1_task(ctx, task):
    """First-pass handling at one owner rank: Bloom insert + admission.

    Takes and returns the rank's filter (the only cross-round state the
    pass needs — with a process pool it is shipped back mutated, with
    threads it is the same object) plus the keys the Bloom test admitted;
    the admission table itself stays in the parent so it is never
    pickled.
    """
    bloom, incoming = task
    seen = bloom.add_and_test(incoming)
    return bloom, incoming[seen]


def _pass1_batch_task(ctx, task):
    """First-pass handling at one owner rank, batch engine.

    Reduces the round's incoming k-mers to their ``(distinct key, count)``
    histogram once, probes/sets the Bloom filter once per *distinct* key
    (:meth:`~repro.seqs.bloom.BloomFilter.test_and_set`), and emits the
    admitted distinct keys — exactly the key set the loop engine's
    per-occurrence ``add_and_test`` + ``setdefault`` fold admits: a key is
    admitted iff the pre-round filter knew it or it occurs at least twice
    in the round.  The histogram rides back so pass 2 never recomputes it.
    """
    bloom, incoming = task
    uniq, cnt = np.unique(incoming, return_counts=True)
    pre = bloom.test_and_set(uniq)
    admitted = uniq[pre | (cnt >= 2)]
    return bloom, admitted, uniq, cnt


def _pass2_task(ctx, task):
    """Second-pass handling at one owner rank: exact counting.

    ``admitted_keys`` is the rank's sorted admitted-key array — a compact
    stand-in for the admission table, so membership is one vectorized
    searchsorted instead of a Python dict probe per k-mer.  Returns the
    (admitted key, count) arrays for the parent to fold into its table.
    """
    admitted_keys, incoming = task
    if admitted_keys.shape[0] == 0 or incoming.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    uniq, cnt = np.unique(incoming, return_counts=True)
    return _histogram_hits(admitted_keys, uniq, cnt)


def _pass2_batch_task(ctx, task):
    """Second-pass handling, batch engine: count from the cached histogram.

    The per-round incoming set is identical in both passes (same k-mers,
    same destinations, same round slicing), so the batch engine reuses the
    ``(uniq, cnt)`` histogram pass 1 computed instead of re-sorting the
    round's traffic — the exchange itself still runs for the communication
    accounting.
    """
    admitted_keys, uniq, cnt = task
    if admitted_keys.shape[0] == 0 or uniq.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    return _histogram_hits(admitted_keys, uniq, cnt)


def _histogram_hits(admitted_keys: np.ndarray, uniq: np.ndarray,
                    cnt: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Filter a sorted (key, count) histogram to the admitted keys."""
    idx = np.searchsorted(admitted_keys, uniq)
    idx = np.minimum(idx, admitted_keys.shape[0] - 1)
    hit = admitted_keys[idx] == uniq
    return uniq[hit], cnt[hit]


def _reliable_task(ctx, table):
    """Reliable selection at one owner rank (loop engine's dict table)."""
    lower, upper = ctx
    if not table:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    kk = np.fromiter(table.keys(), dtype=np.uint64, count=len(table))
    cc = np.fromiter(table.values(), dtype=np.int64, count=len(table))
    keep = (cc >= lower) & (cc <= upper)
    return kk[keep], cc[keep]


def _reliable_batch_task(ctx, table):
    """Reliable selection at one owner rank (batch engine's SoA table)."""
    lower, upper = ctx
    keys, counts = table
    keep = (counts >= lower) & (counts <= upper)
    return keys[keep], counts[keep]


def _merge_admitted(keys: np.ndarray, counts: np.ndarray,
                    cand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge newly admitted keys (sorted, distinct) into a SoA table.

    The vectorized ``setdefault``: keys already present keep their counts,
    unseen keys are spliced in (in sorted position) with count 0.  One
    merge per exchange round — never a per-key loop, and the table stays
    sorted incrementally so pass 2 needs no re-sort.
    """
    if cand.size == 0:
        return keys, counts
    if keys.shape[0]:
        idx = np.searchsorted(keys, cand)
        present = np.zeros(cand.shape[0], dtype=bool)
        inb = idx < keys.shape[0]
        present[inb] = keys[idx[inb]] == cand[inb]
        fresh = cand[~present]
        if fresh.size == 0:
            return keys, counts
        at = idx[~present]
        return (np.insert(keys, at, fresh),
                np.insert(counts, at, 0))
    return cand, np.zeros(cand.shape[0], dtype=np.int64)


def kmer_histogram(reads: ReadSet, k: int,
                   scheme: SeedScheme | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Exact global ``(keys, counts)`` histogram of canonical seed k-mers.

    One vectorized sweep over the whole read set; keys come back sorted
    ascending.  This is the *mergeable* form of the counting state the
    incremental service keeps per version: unlike the Bloom-filtered
    two-pass tables (whose admission decisions depend on how occurrences
    were batched), exact histograms of two read batches combine losslessly
    with :func:`merge_histograms`, and the reliable table is a pure filter
    of the merged histogram (:func:`table_from_histogram`).  Both
    properties hold for any :class:`~repro.seqs.seeding.SeedScheme` —
    schemes are pure per-read functions, so the seed multiset of a batch
    union is the union of the batches' seed multisets.
    """
    scheme = scheme if scheme is not None else FullKScheme(k)
    canon = scheme.seeds_of_block(*reads.soa())[0]
    if canon.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    keys, counts = np.unique(canon, return_counts=True)
    return keys, counts.astype(np.int64)


def merge_histograms(keys: np.ndarray, counts: np.ndarray,
                     new_keys: np.ndarray, new_counts: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted k-mer histograms: shared keys add, fresh keys splice.

    The PR-5 sorted-SoA merge (:func:`_merge_admitted`'s splice) extended
    with count accumulation: membership is one ``searchsorted``, present
    keys accumulate in place, absent keys are inserted at their sorted
    positions — the output stays sorted without a re-sort.  Returns new
    arrays; the inputs are never mutated (older service versions keep
    aliasing theirs).
    """
    if new_keys.size == 0:
        return keys, counts
    if keys.shape[0] == 0:
        return new_keys.copy(), new_counts.copy()
    idx = np.searchsorted(keys, new_keys)
    present = np.zeros(new_keys.shape[0], dtype=bool)
    inb = idx < keys.shape[0]
    present[inb] = keys[idx[inb]] == new_keys[inb]
    merged_counts = counts.copy()
    np.add.at(merged_counts, idx[present], new_counts[present])
    fresh = ~present
    if not fresh.any():
        return keys, merged_counts
    return (np.insert(keys, idx[fresh], new_keys[fresh]),
            np.insert(merged_counts, idx[fresh], new_counts[fresh]))


def table_from_histogram(keys: np.ndarray, counts: np.ndarray, k: int,
                         lower: int = 2, upper: int = 8) -> "KmerTable":
    """Reliable-k-mer table as a filter of an exact histogram.

    Byte-identical to :func:`count_kmers` on the same reads: the two-pass
    counter admits every key occurring at least twice (the Bloom filter's
    false positives only ever *add* singletons, which the ``lower`` bound
    then discards) and counts admitted keys exactly, so its final table is
    precisely ``{key: lower <= count <= upper}`` of the true histogram.
    """
    keep = (counts >= lower) & (counts <= upper)
    return KmerTable(k=k, kmers=keys[keep].copy(),
                     counts=counts[keep].copy(), lower=lower, upper=upper)


@dataclass
class KmerTable:
    """Result of distributed counting: the reliable k-mer dictionary.

    ``kmers`` is sorted ascending (packed canonical ``uint64``), so the
    global column id of a k-mer is its index — lookups are
    ``np.searchsorted``.  ``counts`` holds the total multiplicities.
    """

    k: int
    kmers: np.ndarray
    counts: np.ndarray
    lower: int
    upper: int

    def __len__(self) -> int:
        return int(self.kmers.shape[0])

    def lookup(self, kmers: np.ndarray) -> np.ndarray:
        """Column ids for the given packed k-mers; -1 if not reliable."""
        idx = np.searchsorted(self.kmers, kmers)
        idx = np.minimum(idx, len(self) - 1) if len(self) else np.zeros_like(idx)
        ok = (len(self) > 0) & (self.kmers[idx] == kmers) if len(self) else \
            np.zeros(kmers.shape[0], dtype=bool)
        return np.where(ok, idx, -1)


def reliable_upper_bound(depth: float, error_rate: float, k: int,
                         quantile: float = 0.998) -> int:
    """BELLA-style maximum reliable k-mer multiplicity.

    Mean multiplicity of a correct, unique-locus k-mer is
    ``μ = depth · (1 - e)^k``; the upper cutoff is the ``quantile`` point of
    ``Poisson(μ)`` plus one, and never below 4 (the floor the paper's runs
    effectively used).
    """
    mu = depth * (1.0 - error_rate) ** k
    upper = int(stats.poisson.ppf(quantile, mu))
    return max(4, upper)


def _partition_reads(reads: ReadSet, nprocs: int) -> list[np.ndarray]:
    """Balanced 1D block partition of read indices across ranks."""
    bounds = block_bounds(len(reads), nprocs)
    return [np.arange(bounds[p], bounds[p + 1], dtype=np.int64)
            for p in range(nprocs)]


def count_kmers(reads: ReadSet, k: int, comm: SimComm,
                timer: StageTimer | None = None, *,
                batches: int = 1, bloom_fp: float = 0.01,
                lower: int = 2, upper: int = 8,
                executor: Executor | None = None,
                impl: str | None = None,
                scheme: SeedScheme | None = None) -> KmerTable:
    """Distributed two-pass k-mer counting.

    Parameters
    ----------
    reads:
        The full read set (rank ``p`` processes its balanced block slice).
    k:
        K-mer length.
    comm:
        Simulated communicator (traffic charged to stage ``"CountKmer"``).
    timer:
        Optional stage timer (per-rank compute, max-reduced per superstep).
    batches:
        Number of exchange rounds per pass (``b`` in Table I's ``Y = bP``).
    bloom_fp:
        Bloom filter false-positive target.
    lower, upper:
        Reliable multiplicity range (inclusive); compute ``upper`` with
        :func:`reliable_upper_bound` for dataset-driven values.
    executor:
        :class:`~repro.exec.Executor` spreading each superstep's per-rank
        work (extraction, Bloom handling, counting, selection) over real
        workers; ``None`` keeps the serial reference loop.  The resulting
        table is byte-identical either way.
    impl:
        K-mer engine (:func:`resolve_kmer_impl`): ``"batch"`` extracts and
        counts through sorted structure-of-arrays tables, ``"loop"`` keeps
        the per-read / per-key dict reference.  Byte-identical output.
    scheme:
        :class:`~repro.seqs.seeding.SeedScheme` choosing which windows of
        each read are counted; ``None`` keeps the full-k default (every
        window — the paper's behavior, byte-identical to the historical
        hardwired path).

    Returns
    -------
    KmerTable
        The sorted reliable k-mer dictionary with counts.
    """
    P = comm.nprocs
    timer = timer if timer is not None else StageTimer()
    executor = executor if executor is not None else SERIAL
    impl = resolve_kmer_impl(impl)
    scheme = scheme if scheme is not None else FullKScheme(k)
    bounds = block_bounds(len(reads), P)

    # Extract (canonical) seed k-mers per rank once; reused by both passes.
    with timer.superstep(STAGE) as step:
        if impl == "batch":
            tasks = [reads.soa_block(int(bounds[p]), int(bounds[p + 1]))
                     for p in range(P)]
            rank_kmers, secs = executor.run_timed(
                _extract_batch_task, tasks, context=scheme,
                weights=[blk[0].shape[0] for blk in tasks])
        else:
            owned = _partition_reads(reads, P)
            rank_kmers, secs = executor.run_timed(
                _extract_task, owned, context=(reads, scheme),
                weights=[idx.shape[0] for idx in owned])
        step.charge_many(range(P), secs)

    dest = [(splitmix64(km) % np.uint64(P)).astype(np.int64)
            for km in rank_kmers]

    total_kmers = sum(km.shape[0] for km in rank_kmers)
    blooms = [BloomFilter(max(64, total_kmers // max(1, P)), bloom_fp)
              for _ in range(P)]

    def _group_by_dest_masks(sl: np.ndarray, dl: np.ndarray
                             ) -> list[np.ndarray]:
        """Reference send-list construction: one boolean mask per rank."""
        return [sl[dl == q] for q in range(P)]

    def _group_by_dest_sorted(sl: np.ndarray, dl: np.ndarray
                              ) -> list[np.ndarray]:
        """Batch engine's send-list construction: one stable sort.

        A stable sort by destination groups the k-mers per rank while
        preserving their original relative order, so every per-destination
        subarray is byte-identical to the mask-based reference — in one
        pass instead of ``P``.
        """
        order = np.argsort(dl, kind="stable")
        sl = sl[order]
        cuts = np.searchsorted(dl[order], np.arange(1, P, dtype=np.int64))
        return np.split(sl, cuts)

    group_by_dest = (_group_by_dest_sorted if impl == "batch"
                     else _group_by_dest_masks)
    # The batch engine builds each round's send lists once and replays them
    # in pass 2 (both passes ship exactly the same k-mers to the same
    # owners); the loop reference rebuilds them per pass.  The cache holds
    # one dest-grouped copy of the extracted k-mers (~8 bytes each) across
    # the stage — the price of skipping pass 2's regrouping sort.
    send_cache: dict[int, list[list[np.ndarray]]] = {}

    def exchange_rounds(run_round, *, cache_sends: bool = False,
                        need_incoming: bool = True) -> None:
        """One pass = ``batches`` alltoallv rounds + local handling."""
        for b in range(batches):
            send = send_cache.get(b)
            if send is None:
                send = []
                for p in range(P):
                    km = rank_kmers[p]
                    n = km.shape[0]
                    lo, hi = (n * b) // batches, (n * (b + 1)) // batches
                    send.append(group_by_dest(km[lo:hi], dest[p][lo:hi]))
                if cache_sends:
                    send_cache[b] = send
            recv = comm.alltoallv(send, stage=STAGE)
            incoming = [np.concatenate(recv[q]) if recv[q] else
                        np.empty(0, np.uint64) for q in range(P)] \
                if need_incoming else None
            run_round(b, incoming)

    def run_superstep(fn, tasks, weights):
        """One executor superstep charged to the owner ranks."""
        with timer.superstep(STAGE) as step:
            out, secs = executor.run_timed(fn, tasks, weights=weights)
            step.charge_many(range(P), secs)
        return out

    if impl == "batch":
        # Sorted-array SoA admission/count tables: setdefault is a merge,
        # accumulation a vectorized scatter-add — maintained incrementally
        # sorted, so no pass ever re-materializes key arrays.  Each round's
        # (distinct key, count) histogram from pass 1 is kept for pass 2.
        tab_keys = [np.empty(0, np.uint64) for _ in range(P)]
        tab_counts = [np.empty(0, np.int64) for _ in range(P)]
        histograms: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

        def pass1(b: int, incoming: list[np.ndarray]) -> None:
            out = run_superstep(
                _pass1_batch_task,
                [(blooms[q], incoming[q]) for q in range(P)],
                [inc.shape[0] for inc in incoming])
            histograms[b] = []
            for q, (bloom, admitted_q, uniq, cnt) in enumerate(out):
                blooms[q] = bloom
                histograms[b].append((uniq, cnt))
                tab_keys[q], tab_counts[q] = _merge_admitted(
                    tab_keys[q], tab_counts[q], admitted_q)

        def pass2(b: int, incoming) -> None:
            hist = histograms[b]
            out = run_superstep(
                _pass2_batch_task,
                [(tab_keys[q],) + hist[q] for q in range(P)],
                [hist[q][0].shape[0] for q in range(P)])
            for q, (hit_keys, cnt) in enumerate(out):
                if hit_keys.size:
                    # hit_keys are unique within a round, so a plain fancy
                    # add accumulates exactly once per key.
                    tab_counts[q][np.searchsorted(tab_keys[q],
                                                  hit_keys)] += cnt

        exchange_rounds(pass1, cache_sends=True)
        exchange_rounds(pass2, need_incoming=False)
        rel_tables: list = list(zip(tab_keys, tab_counts))
        rel_fn = _reliable_batch_task
        rel_weights = [kk.shape[0] for kk in tab_keys]
    else:
        admitted: list[dict[int, int]] = [dict() for _ in range(P)]

        def pass1(b: int, incoming: list[np.ndarray]) -> None:
            out = run_superstep(
                _pass1_task,
                [(blooms[q], incoming[q]) for q in range(P)],
                [inc.shape[0] for inc in incoming])
            for q, (bloom, new_keys) in enumerate(out):
                blooms[q] = bloom
                table = admitted[q]
                for kv in new_keys:
                    table.setdefault(int(kv), 0)

        def pass2(b: int, incoming: list[np.ndarray]) -> None:
            out = run_superstep(
                _pass2_task,
                [(pass2_keys[q], incoming[q]) for q in range(P)],
                [inc.shape[0] for inc in incoming])
            for q, (hit_keys, counts) in enumerate(out):
                table = admitted[q]
                for kv, c in zip(hit_keys, counts):
                    table[int(kv)] += int(c)

        exchange_rounds(pass1)
        # The admitted key sets are frozen once pass 1 completes, so the
        # sorted key arrays the pass-2 workers search are materialized
        # exactly once — not per exchange round (the old per-batch
        # ``np.fromiter`` rebuild was O(table) extra work per round).
        pass2_keys = [np.sort(np.fromiter(admitted[q].keys(),
                                          dtype=np.uint64,
                                          count=len(admitted[q])))
                      for q in range(P)]
        exchange_rounds(pass2)
        rel_tables = list(admitted)
        rel_fn = _reliable_task
        rel_weights = [len(t) for t in admitted]

    # Reliable selection + global dictionary assembly (an allgather of the
    # per-rank reliable sets; column ids are the sorted order).
    with timer.superstep(STAGE) as step:
        rel_parts, secs = executor.run_timed(
            rel_fn, rel_tables, context=(lower, upper),
            weights=rel_weights)
        step.charge_many(range(P), secs)
    comm.allgather([p[0] for p in rel_parts], stage=STAGE)
    all_k = np.concatenate([p[0] for p in rel_parts])
    all_c = np.concatenate([p[1] for p in rel_parts])
    order = np.argsort(all_k)
    return KmerTable(k=k, kmers=all_k[order], counts=all_c[order],
                     lower=lower, upper=upper)
