"""Two-pass distributed k-mer counting with a Bloom filter.

Reproduces diBELLA 2D's counter (paper Section IV-C, after HipMer): k-mers
are hashed to an owner rank; in the first pass every rank ships its k-mers to
their owners, who insert them into a local Bloom filter — a k-mer is admitted
to the local counting table only when the filter says it was seen before
(singleton elimination).  The second pass ships the k-mers again and
accumulates exact counts for admitted k-mers.  Both passes are
``MPI_Alltoallv`` exchanges; with ``batches`` rounds per pass the latency
cost is ``Y = bP`` (Table I).

Reliable-k-mer selection then discards k-mers outside
``[2, upper]`` where ``upper`` follows BELLA's dataset-specific model
(:func:`reliable_upper_bound`): with error rate ``e`` a k-mer instance is
error-free with probability ``(1-e)^k``, so correct k-mers have multiplicity
``≈ Poisson(d·(1-e)^k)`` and anything far above that quantile is a repeat or
artifact.  With the paper's CLR parameters (k=17, e≈0.15, d=10–40) this model
lands on the small cutoffs the paper reports (they use max frequency 4 for
H. sapiens).

Two interchangeable engines drive the per-rank work, selected by ``impl``
(:func:`resolve_kmer_impl`, mirroring the alignment engine's
``loop | batch | auto`` switch):

* ``"batch"`` — structure-of-arrays throughout: extraction is one
  :func:`~repro.seqs.kmers.read_kmers_batch` sweep per rank over its SoA
  read block, and the admission/count tables are **sorted arrays** updated
  by merge (``np.searchsorted`` membership, vectorized accumulate) — no
  per-key Python dict traffic anywhere.
* ``"loop"`` — the original per-read extraction and ``dict[int, int]``
  tables, kept as the reference oracle.

The resulting :class:`KmerTable` (and the communication records) are
byte-identical between the two — pinned by the parity and golden suites.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exec import Executor, SERIAL
from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import StageTimer
from .bloom import BloomFilter
from .fasta import ReadSet
from .kmers import splitmix64
from .seeding import FullKScheme, SeedScheme
from .spill import combine_histograms, merge_pair_runs, write_pair_run

__all__ = ["KmerTable", "reliable_upper_bound", "count_kmers",
           "KMER_IMPLS", "KMER_IMPL_ENV", "DEFAULT_KMER_IMPL",
           "resolve_kmer_impl", "kmer_histogram", "merge_histograms",
           "table_from_histogram"]

STAGE = "CountKmer"

#: K-mer engine names accepted by ``PipelineConfig.kmer_impl`` (plus
#: ``"auto"``, which resolves through :func:`resolve_kmer_impl`).
KMER_IMPLS = ("loop", "batch")

#: Environment variable consulted by ``kmer_impl="auto"``.
KMER_IMPL_ENV = "REPRO_KMER_IMPL"

#: What ``"auto"`` resolves to when the environment does not override it.
DEFAULT_KMER_IMPL = "batch"


def resolve_kmer_impl(impl: str | None = None) -> str:
    """Resolve a k-mer engine name to ``"loop"`` or ``"batch"``.

    ``None`` and ``"auto"`` defer to the :data:`KMER_IMPL_ENV` environment
    variable when set (mirroring ``REPRO_ALIGN_IMPL`` / ``REPRO_EXECUTOR``),
    else pick :data:`DEFAULT_KMER_IMPL`; explicit names pass through
    validated.  Both engines produce byte-identical output — the switch is a
    pure performance axis, with ``loop`` kept as the reference oracle.
    """
    if impl is None:
        impl = "auto"
    if impl == "auto":
        env = os.environ.get(KMER_IMPL_ENV, "").strip().lower()
        impl = env if env and env != "auto" else DEFAULT_KMER_IMPL
    if impl not in KMER_IMPLS:
        raise ValueError(f"unknown kmer impl {impl!r}; expected one of "
                         f"{', '.join(KMER_IMPLS + ('auto',))}")
    return impl


# -- executor tasks (module-level so the process pool can pickle them) ------

def _extract_task(ctx, owned_idx):
    """One rank's seed extraction over its block of reads (loop engine)."""
    reads, scheme = ctx
    parts = [scheme.seeds_of_read(reads[int(i)])[0] for i in owned_idx]
    return np.concatenate(parts) if parts else np.empty(0, np.uint64)


def _extract_batch_task(ctx, span):
    """One rank's seed extraction as a single SoA sweep (batch engine).

    The task is the rank's read span ``(lo, hi)``; the worker takes its
    ``(codes, offsets, lengths)`` block from the ReadSet in the context
    (:meth:`~repro.seqs.fasta.ReadSet.soa_block`).  With the mmap read
    store a process pool ships only the store path and each worker pages
    in its own block; in-memory sets ride along in the (pre-pickled)
    context.  Output order (read-major, window order within a read)
    matches the loop engine's concatenation exactly for every
    :class:`~repro.seqs.seeding.SeedScheme`.
    """
    scheme, reads = ctx
    lo, hi = span
    return scheme.seeds_of_block(*reads.soa_block(lo, hi))[0]


def _pass1_task(ctx, task):
    """First-pass handling at one owner rank: Bloom insert + admission.

    Takes and returns the rank's filter (the only cross-round state the
    pass needs — with a process pool it is shipped back mutated, with
    threads it is the same object) plus the keys the Bloom test admitted;
    the admission table itself stays in the parent so it is never
    pickled.
    """
    bloom, incoming = task
    seen = bloom.add_and_test(incoming)
    return bloom, incoming[seen]


def _pass1_batch_task(ctx, task):
    """First-pass handling at one owner rank, batch engine.

    Reduces the round's incoming k-mers to their ``(distinct key, count)``
    histogram once, probes/sets the Bloom filter once per *distinct* key
    (:meth:`~repro.seqs.bloom.BloomFilter.test_and_set`), and emits the
    admitted distinct keys — exactly the key set the loop engine's
    per-occurrence ``add_and_test`` + ``setdefault`` fold admits: a key is
    admitted iff the pre-round filter knew it or it occurs at least twice
    in the round.  The histogram rides back so pass 2 never recomputes it.
    """
    bloom, incoming = task
    uniq, cnt = np.unique(incoming, return_counts=True)
    pre = bloom.test_and_set(uniq)
    admitted = uniq[pre | (cnt >= 2)]
    return bloom, admitted, uniq, cnt


def _pass2_task(ctx, task):
    """Second-pass handling at one owner rank: exact counting.

    ``admitted_keys`` is the rank's sorted admitted-key array — a compact
    stand-in for the admission table, so membership is one vectorized
    searchsorted instead of a Python dict probe per k-mer.  Returns the
    (admitted key, count) arrays for the parent to fold into its table.
    """
    admitted_keys, incoming = task
    if admitted_keys.shape[0] == 0 or incoming.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    uniq, cnt = np.unique(incoming, return_counts=True)
    return _histogram_hits(admitted_keys, uniq, cnt)


def _pass2_batch_task(ctx, task):
    """Second-pass handling, batch engine: count from the cached histogram.

    The per-round incoming set is identical in both passes (same k-mers,
    same destinations, same round slicing), so the batch engine reuses the
    ``(uniq, cnt)`` histogram pass 1 computed instead of re-sorting the
    round's traffic — the exchange itself still runs for the communication
    accounting.
    """
    admitted_keys, uniq, cnt = task
    if admitted_keys.shape[0] == 0 or uniq.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    return _histogram_hits(admitted_keys, uniq, cnt)


def _histogram_hits(admitted_keys: np.ndarray, uniq: np.ndarray,
                    cnt: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Filter a sorted (key, count) histogram to the admitted keys."""
    idx = np.searchsorted(admitted_keys, uniq)
    idx = np.minimum(idx, admitted_keys.shape[0] - 1)
    hit = admitted_keys[idx] == uniq
    return uniq[hit], cnt[hit]


def _reliable_task(ctx, table):
    """Reliable selection at one owner rank (loop engine's dict table)."""
    lower, upper = ctx
    if not table:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    kk = np.fromiter(table.keys(), dtype=np.uint64, count=len(table))
    cc = np.fromiter(table.values(), dtype=np.int64, count=len(table))
    keep = (cc >= lower) & (cc <= upper)
    return kk[keep], cc[keep]


def _reliable_batch_task(ctx, table):
    """Reliable selection at one owner rank (batch engine's SoA table)."""
    lower, upper = ctx
    keys, counts = table
    keep = (counts >= lower) & (counts <= upper)
    return keys[keep], counts[keep]


def _merge_admitted(keys: np.ndarray, counts: np.ndarray,
                    cand: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge newly admitted keys (sorted, distinct) into a SoA table.

    The vectorized ``setdefault``: keys already present keep their counts,
    unseen keys are spliced in (in sorted position) with count 0.  One
    merge per exchange round — never a per-key loop, and the table stays
    sorted incrementally so pass 2 needs no re-sort.
    """
    if cand.size == 0:
        return keys, counts
    if keys.shape[0]:
        idx = np.searchsorted(keys, cand)
        present = np.zeros(cand.shape[0], dtype=bool)
        inb = idx < keys.shape[0]
        present[inb] = keys[idx[inb]] == cand[inb]
        fresh = cand[~present]
        if fresh.size == 0:
            return keys, counts
        at = idx[~present]
        return (np.insert(keys, at, fresh),
                np.insert(counts, at, 0))
    return cand, np.zeros(cand.shape[0], dtype=np.int64)


def _group_by_dest_masks(sl: np.ndarray, dl: np.ndarray, nprocs: int
                         ) -> list[np.ndarray]:
    """Reference send-list construction: one boolean mask per rank."""
    return [sl[dl == q] for q in range(nprocs)]


def _group_by_dest_sorted(sl: np.ndarray, dl: np.ndarray, nprocs: int
                          ) -> list[np.ndarray]:
    """Batch engine's send-list construction: one stable sort.

    A stable sort by destination groups the k-mers per rank while
    preserving their original relative order, so every per-destination
    subarray is byte-identical to the mask-based reference — in one
    pass instead of ``nprocs``.
    """
    order = np.argsort(dl, kind="stable")
    sl = sl[order]
    cuts = np.searchsorted(dl[order], np.arange(1, nprocs, dtype=np.int64))
    return np.split(sl, cuts)


# -- spillable (out-of-core) engine tasks -----------------------------------

def _seed_count_task(ctx, span):
    """Per-read seed counts over one rank's read span (spill engine).

    Swept in fixed sub-blocks so the transient extraction buffer stays
    bounded regardless of span size — the whole point of the budgeted
    path.  The counts feed the per-rank prefix sums that let each exchange
    round re-extract exactly its slice of the seed stream.
    """
    scheme, reads = ctx
    lo, hi = span
    counts = np.zeros(hi - lo, dtype=np.int64)
    for sub in range(lo, hi, 2048):
        sub_hi = min(sub + 2048, hi)
        keys, ridx = scheme.seeds_of_block(
            *reads.soa_block(sub, sub_hi))[:2]
        counts[sub - lo:sub_hi - lo] = np.bincount(
            ridx, minlength=sub_hi - sub)[:sub_hi - sub]
    return counts


def _round_extract_task(ctx, task):
    """One rank's send lists for one exchange round (spill engine).

    ``task = (r0, r1, skip, take)``: extract the seeds of reads
    ``[r0, r1)``, drop the first ``skip`` (they belong to earlier rounds)
    and keep ``take``.  Because seed extraction is read-major and
    :func:`~repro.seqs.kmers.splitmix64` is elementwise, slicing the
    re-extracted stream is byte-identical to slicing the resident engine's
    one-shot extraction — same keys, same destinations, same
    stable-sorted per-destination subarrays, hence the same alltoallv
    traffic.
    """
    scheme, reads, nprocs = ctx
    r0, r1, skip, take = task
    keys = scheme.seeds_of_block(*reads.soa_block(r0, r1))[0]
    keys = keys[skip:skip + take]
    dl = (splitmix64(keys) % np.uint64(nprocs)).astype(np.int64)
    return _group_by_dest_sorted(keys, dl, nprocs)


def _round_hist_task(ctx, incoming):
    """One owner rank's ``(distinct key, count)`` histogram of a round."""
    if incoming.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    uniq, cnt = np.unique(incoming, return_counts=True)
    return uniq, cnt.astype(np.int64)


def _reliable_spill_task(ctx, runs):
    """Reliable selection at one owner rank from its spill runs.

    A chunked k-way merge-sum of the rank's sorted runs yields the exact
    per-key totals in bounded memory; the ``[lower, upper]`` filter over
    them is the rank's reliable set (see :func:`table_from_histogram` for
    why that equals the two-pass Bloom-admitted tables when
    ``lower >= 2``).
    """
    lower, upper, chunk_items = ctx
    kparts: list[np.ndarray] = []
    cparts: list[np.ndarray] = []
    for keys, counts in merge_pair_runs(runs, chunk_items=chunk_items):
        keep = (counts >= lower) & (counts <= upper)
        if keep.any():
            kparts.append(keys[keep])
            cparts.append(counts[keep])
    if not kparts:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    return np.concatenate(kparts), np.concatenate(cparts)


def kmer_histogram(reads: ReadSet, k: int,
                   scheme: SeedScheme | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Exact global ``(keys, counts)`` histogram of canonical seed k-mers.

    One vectorized sweep over the whole read set; keys come back sorted
    ascending.  This is the *mergeable* form of the counting state the
    incremental service keeps per version: unlike the Bloom-filtered
    two-pass tables (whose admission decisions depend on how occurrences
    were batched), exact histograms of two read batches combine losslessly
    with :func:`merge_histograms`, and the reliable table is a pure filter
    of the merged histogram (:func:`table_from_histogram`).  Both
    properties hold for any :class:`~repro.seqs.seeding.SeedScheme` —
    schemes are pure per-read functions, so the seed multiset of a batch
    union is the union of the batches' seed multisets.
    """
    scheme = scheme if scheme is not None else FullKScheme(k)
    canon = scheme.seeds_of_block(*reads.soa())[0]
    if canon.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    keys, counts = np.unique(canon, return_counts=True)
    return keys, counts.astype(np.int64)


def merge_histograms(keys: np.ndarray, counts: np.ndarray,
                     new_keys: np.ndarray, new_counts: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted k-mer histograms: shared keys add, fresh keys splice.

    The PR-5 sorted-SoA merge (:func:`_merge_admitted`'s splice) extended
    with count accumulation: membership is one ``searchsorted``, present
    keys accumulate in place, absent keys are inserted at their sorted
    positions — the output stays sorted without a re-sort.  Returns new
    arrays; the inputs are never mutated (older service versions keep
    aliasing theirs).
    """
    if new_keys.size == 0:
        return keys, counts
    if keys.shape[0] == 0:
        return new_keys.copy(), new_counts.copy()
    idx = np.searchsorted(keys, new_keys)
    present = np.zeros(new_keys.shape[0], dtype=bool)
    inb = idx < keys.shape[0]
    present[inb] = keys[idx[inb]] == new_keys[inb]
    merged_counts = counts.copy()
    np.add.at(merged_counts, idx[present], new_counts[present])
    fresh = ~present
    if not fresh.any():
        return keys, merged_counts
    return (np.insert(keys, idx[fresh], new_keys[fresh]),
            np.insert(merged_counts, idx[fresh], new_counts[fresh]))


def table_from_histogram(keys: np.ndarray, counts: np.ndarray, k: int,
                         lower: int = 2, upper: int = 8) -> "KmerTable":
    """Reliable-k-mer table as a filter of an exact histogram.

    Byte-identical to :func:`count_kmers` on the same reads: the two-pass
    counter admits every key occurring at least twice (the Bloom filter's
    false positives only ever *add* singletons, which the ``lower`` bound
    then discards) and counts admitted keys exactly, so its final table is
    precisely ``{key: lower <= count <= upper}`` of the true histogram.
    """
    keep = (counts >= lower) & (counts <= upper)
    return KmerTable(k=k, kmers=keys[keep].copy(),
                     counts=counts[keep].copy(), lower=lower, upper=upper)


@dataclass
class KmerTable:
    """Result of distributed counting: the reliable k-mer dictionary.

    ``kmers`` is sorted ascending (packed canonical ``uint64``), so the
    global column id of a k-mer is its index — lookups are
    ``np.searchsorted``.  ``counts`` holds the total multiplicities.
    """

    k: int
    kmers: np.ndarray
    counts: np.ndarray
    lower: int
    upper: int

    def __len__(self) -> int:
        return int(self.kmers.shape[0])

    def lookup(self, kmers: np.ndarray) -> np.ndarray:
        """Column ids for the given packed k-mers; -1 if not reliable."""
        idx = np.searchsorted(self.kmers, kmers)
        idx = np.minimum(idx, len(self) - 1) if len(self) else np.zeros_like(idx)
        ok = (len(self) > 0) & (self.kmers[idx] == kmers) if len(self) else \
            np.zeros(kmers.shape[0], dtype=bool)
        return np.where(ok, idx, -1)


def reliable_upper_bound(depth: float, error_rate: float, k: int,
                         quantile: float = 0.998) -> int:
    """BELLA-style maximum reliable k-mer multiplicity.

    Mean multiplicity of a correct, unique-locus k-mer is
    ``μ = depth · (1 - e)^k``; the upper cutoff is the ``quantile`` point of
    ``Poisson(μ)`` plus one, and never below 4 (the floor the paper's runs
    effectively used).
    """
    mu = depth * (1.0 - error_rate) ** k
    upper = int(stats.poisson.ppf(quantile, mu))
    return max(4, upper)


def _partition_reads(reads: ReadSet, nprocs: int) -> list[np.ndarray]:
    """Balanced 1D block partition of read indices across ranks."""
    bounds = block_bounds(len(reads), nprocs)
    return [np.arange(bounds[p], bounds[p + 1], dtype=np.int64)
            for p in range(nprocs)]


def count_kmers(reads: ReadSet, k: int, comm: SimComm,
                timer: StageTimer | None = None, *,
                batches: int = 1, bloom_fp: float = 0.01,
                lower: int = 2, upper: int = 8,
                executor: Executor | None = None,
                impl: str | None = None,
                scheme: SeedScheme | None = None,
                table_budget: int | None = None,
                spill_dir: str | None = None) -> KmerTable:
    """Distributed two-pass k-mer counting.

    Parameters
    ----------
    reads:
        The full read set (rank ``p`` processes its balanced block slice).
    k:
        K-mer length.
    comm:
        Simulated communicator (traffic charged to stage ``"CountKmer"``).
    timer:
        Optional stage timer (per-rank compute, max-reduced per superstep).
    batches:
        Number of exchange rounds per pass (``b`` in Table I's ``Y = bP``).
    bloom_fp:
        Bloom filter false-positive target.
    lower, upper:
        Reliable multiplicity range (inclusive); compute ``upper`` with
        :func:`reliable_upper_bound` for dataset-driven values.
    executor:
        :class:`~repro.exec.Executor` spreading each superstep's per-rank
        work (extraction, Bloom handling, counting, selection) over real
        workers; ``None`` keeps the serial reference loop.  The resulting
        table is byte-identical either way.
    impl:
        K-mer engine (:func:`resolve_kmer_impl`): ``"batch"`` extracts and
        counts through sorted structure-of-arrays tables, ``"loop"`` keeps
        the per-read / per-key dict reference.  Byte-identical output.
    scheme:
        :class:`~repro.seqs.seeding.SeedScheme` choosing which windows of
        each read are counted; ``None`` keeps the full-k default (every
        window — the paper's behavior, byte-identical to the historical
        hardwired path).
    table_budget:
        Optional byte ceiling for the resident per-rank tables.  When set
        (and the batch engine with ``lower >= 2`` is active), counting
        runs the out-of-core engine: each rank buffers per-round
        histograms up to its ``table_budget / P`` share, spills them to
        sorted disk runs, and k-way merges the runs at reliable-selection
        time — byte-identical table and communication records, bounded
        memory.  ``lower < 2`` (or the ``loop`` oracle) ignores the budget
        and stays resident: below 2 the Bloom admission is not a pure
        histogram filter, and the oracle's job is to be simple.
    spill_dir:
        Directory under which the spill runs' temporary directory is
        created (``None`` = the system temp dir).  Always removed on exit.

    Returns
    -------
    KmerTable
        The sorted reliable k-mer dictionary with counts.
    """
    P = comm.nprocs
    timer = timer if timer is not None else StageTimer()
    executor = executor if executor is not None else SERIAL
    impl = resolve_kmer_impl(impl)
    scheme = scheme if scheme is not None else FullKScheme(k)
    if table_budget is not None and impl == "batch" and lower >= 2:
        return _count_kmers_spill(
            reads, k, comm, timer, batches=batches, lower=lower,
            upper=upper, executor=executor, scheme=scheme,
            table_budget=table_budget, spill_dir=spill_dir)
    bounds = block_bounds(len(reads), P)

    # Extract (canonical) seed k-mers per rank once; reused by both passes.
    with timer.superstep(STAGE) as step:
        if impl == "batch":
            spans = [(int(bounds[p]), int(bounds[p + 1]))
                     for p in range(P)]
            pre = np.concatenate(([0], np.cumsum(reads.lengths)))
            rank_kmers, secs = executor.run_timed(
                _extract_batch_task, spans, context=(scheme, reads),
                weights=[int(pre[hi] - pre[lo]) for lo, hi in spans])
        else:
            owned = _partition_reads(reads, P)
            rank_kmers, secs = executor.run_timed(
                _extract_task, owned, context=(reads, scheme),
                weights=[idx.shape[0] for idx in owned])
        step.charge_many(range(P), secs)

    dest = [(splitmix64(km) % np.uint64(P)).astype(np.int64)
            for km in rank_kmers]

    total_kmers = sum(km.shape[0] for km in rank_kmers)
    blooms = [BloomFilter(max(64, total_kmers // max(1, P)), bloom_fp)
              for _ in range(P)]

    def group_by_dest(sl: np.ndarray, dl: np.ndarray) -> list[np.ndarray]:
        if impl == "batch":
            return _group_by_dest_sorted(sl, dl, P)
        return _group_by_dest_masks(sl, dl, P)
    # The batch engine builds each round's send lists once and replays them
    # in pass 2 (both passes ship exactly the same k-mers to the same
    # owners); the loop reference rebuilds them per pass.  The cache holds
    # one dest-grouped copy of the extracted k-mers (~8 bytes each) across
    # the stage — the price of skipping pass 2's regrouping sort.
    send_cache: dict[int, list[list[np.ndarray]]] = {}

    def exchange_rounds(run_round, *, cache_sends: bool = False,
                        need_incoming: bool = True) -> None:
        """One pass = ``batches`` alltoallv rounds + local handling."""
        for b in range(batches):
            send = send_cache.get(b)
            if send is None:
                send = []
                for p in range(P):
                    km = rank_kmers[p]
                    n = km.shape[0]
                    lo, hi = (n * b) // batches, (n * (b + 1)) // batches
                    send.append(group_by_dest(km[lo:hi], dest[p][lo:hi]))
                if cache_sends:
                    send_cache[b] = send
            recv = comm.alltoallv(send, stage=STAGE)
            incoming = [np.concatenate(recv[q]) if recv[q] else
                        np.empty(0, np.uint64) for q in range(P)] \
                if need_incoming else None
            run_round(b, incoming)

    def run_superstep(fn, tasks, weights):
        """One executor superstep charged to the owner ranks."""
        with timer.superstep(STAGE) as step:
            out, secs = executor.run_timed(fn, tasks, weights=weights)
            step.charge_many(range(P), secs)
        return out

    if impl == "batch":
        # Sorted-array SoA admission/count tables: setdefault is a merge,
        # accumulation a vectorized scatter-add — maintained incrementally
        # sorted, so no pass ever re-materializes key arrays.  Each round's
        # (distinct key, count) histogram from pass 1 is kept for pass 2.
        tab_keys = [np.empty(0, np.uint64) for _ in range(P)]
        tab_counts = [np.empty(0, np.int64) for _ in range(P)]
        histograms: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}

        def pass1(b: int, incoming: list[np.ndarray]) -> None:
            out = run_superstep(
                _pass1_batch_task,
                [(blooms[q], incoming[q]) for q in range(P)],
                [inc.shape[0] for inc in incoming])
            histograms[b] = []
            for q, (bloom, admitted_q, uniq, cnt) in enumerate(out):
                blooms[q] = bloom
                histograms[b].append((uniq, cnt))
                tab_keys[q], tab_counts[q] = _merge_admitted(
                    tab_keys[q], tab_counts[q], admitted_q)

        def pass2(b: int, incoming) -> None:
            hist = histograms[b]
            out = run_superstep(
                _pass2_batch_task,
                [(tab_keys[q],) + hist[q] for q in range(P)],
                [hist[q][0].shape[0] for q in range(P)])
            for q, (hit_keys, cnt) in enumerate(out):
                if hit_keys.size:
                    # hit_keys are unique within a round, so a plain fancy
                    # add accumulates exactly once per key.
                    tab_counts[q][np.searchsorted(tab_keys[q],
                                                  hit_keys)] += cnt

        exchange_rounds(pass1, cache_sends=True)
        exchange_rounds(pass2, need_incoming=False)
        rel_tables: list = list(zip(tab_keys, tab_counts))
        rel_fn = _reliable_batch_task
        rel_weights = [kk.shape[0] for kk in tab_keys]
    else:
        admitted: list[dict[int, int]] = [dict() for _ in range(P)]

        def pass1(b: int, incoming: list[np.ndarray]) -> None:
            out = run_superstep(
                _pass1_task,
                [(blooms[q], incoming[q]) for q in range(P)],
                [inc.shape[0] for inc in incoming])
            for q, (bloom, new_keys) in enumerate(out):
                blooms[q] = bloom
                table = admitted[q]
                for kv in new_keys:
                    table.setdefault(int(kv), 0)

        def pass2(b: int, incoming: list[np.ndarray]) -> None:
            out = run_superstep(
                _pass2_task,
                [(pass2_keys[q], incoming[q]) for q in range(P)],
                [inc.shape[0] for inc in incoming])
            for q, (hit_keys, counts) in enumerate(out):
                table = admitted[q]
                for kv, c in zip(hit_keys, counts):
                    table[int(kv)] += int(c)

        exchange_rounds(pass1)
        # The admitted key sets are frozen once pass 1 completes, so the
        # sorted key arrays the pass-2 workers search are materialized
        # exactly once — not per exchange round (the old per-batch
        # ``np.fromiter`` rebuild was O(table) extra work per round).
        pass2_keys = [np.sort(np.fromiter(admitted[q].keys(),
                                          dtype=np.uint64,
                                          count=len(admitted[q])))
                      for q in range(P)]
        exchange_rounds(pass2)
        rel_tables = list(admitted)
        rel_fn = _reliable_task
        rel_weights = [len(t) for t in admitted]

    # Reliable selection + global dictionary assembly (an allgather of the
    # per-rank reliable sets; column ids are the sorted order).
    with timer.superstep(STAGE) as step:
        rel_parts, secs = executor.run_timed(
            rel_fn, rel_tables, context=(lower, upper),
            weights=rel_weights)
        step.charge_many(range(P), secs)
    comm.allgather([p[0] for p in rel_parts], stage=STAGE)
    all_k = np.concatenate([p[0] for p in rel_parts])
    all_c = np.concatenate([p[1] for p in rel_parts])
    order = np.argsort(all_k)
    return KmerTable(k=k, kmers=all_k[order], counts=all_c[order],
                     lower=lower, upper=upper)


def _count_kmers_spill(reads: ReadSet, k: int, comm: SimComm,
                       timer: StageTimer, *, batches: int, lower: int,
                       upper: int, executor: Executor, scheme: SeedScheme,
                       table_budget: int, spill_dir: str | None
                       ) -> KmerTable:
    """Out-of-core counting: spillable sorted-run tables, exact output.

    The resident batch engine holds three table-shaped giants: the full
    extracted seed stream, the cached per-round send lists, and the
    per-rank admission/count tables.  This engine bounds all three at a
    ``table_budget`` while producing the *identical* :class:`KmerTable`
    and the *identical* communication records:

    1. **Counting sweep** — per-read seed counts (bounded sub-blocks)
       give each rank a prefix array over its seed stream, so any round's
       slice ``[(n·b)/batches, (n·(b+1))/batches)`` maps to a read range
       plus skip/take offsets.
    2. **Pass 1, per round** — re-extract exactly that slice, hash and
       stable-group by owner (byte-identical send lists to the resident
       engine, see :func:`_round_extract_task`), exchange, and reduce each
       owner's incoming to its ``(distinct key, count)`` histogram.
       Owners buffer histograms up to their ``table_budget / P`` share,
       then merge-sum and flush a sorted run to disk
       (:func:`~repro.seqs.spill.write_pair_run`).
    3. **Pass 2** — the two-pass protocol's second exchange ships the
       same k-mers to the same owners, so its traffic is replayed from
       the recorded round sizes with placeholder payloads: the simulated
       communicator charges bytes and message counts from array sizes
       only, making the replayed accounting byte-identical while the
       placeholder pages are never even touched.
    4. **Reliable selection** — each rank k-way merge-sums its runs in
       bounded chunks and keeps keys with total count in
       ``[lower, upper]``.  For ``lower >= 2`` this is exactly the
       Bloom-admitted two-pass table (:func:`table_from_histogram`'s
       argument: admission only ever adds singletons beyond the
       ``count >= 2`` keys, and those fall to the lower bound), so no
       admission state needs to exist at all.

    The trade is one extra extraction sweep (the counting pass) for a
    resident footprint that no longer scales with the table size — the
    out-of-core half of the ROADMAP's "inputs ≫ RAM" item.
    """
    P = comm.nprocs
    bounds = block_bounds(len(reads), P)
    spans = [(int(bounds[p]), int(bounds[p + 1])) for p in range(P)]

    with timer.superstep(STAGE) as step:
        counts_out, secs = executor.run_timed(
            _seed_count_task, spans, context=(scheme, reads),
            weights=[hi - lo for lo, hi in spans])
        step.charge_many(range(P), secs)
    kcs = [np.concatenate(([0], np.cumsum(c))) for c in counts_out]

    share = max(1, int(table_budget) // P)
    if spill_dir is not None:
        os.makedirs(spill_dir, exist_ok=True)
    tmpdir = tempfile.mkdtemp(prefix="repro-kmer-spill-", dir=spill_dir)
    try:
        runs: list[list] = [[] for _ in range(P)]
        buffers: list[list] = [[] for _ in range(P)]
        live = [0] * P

        def flush(q: int) -> None:
            if not buffers[q]:
                return
            uniq, cnt = combine_histograms(buffers[q])
            path = os.path.join(tmpdir,
                                f"rank{q:03d}_run{len(runs[q]):04d}.bin")
            runs[q].append(write_pair_run(path, uniq, cnt))
            buffers[q].clear()
            live[q] = 0

        # Pass 1: extract-exchange-histogram one round at a time.
        sizes: list[list[list[int]]] = []
        for b in range(batches):
            tasks = []
            for p in range(P):
                kc = kcs[p]
                n = int(kc[-1])
                lo, hi = (n * b) // batches, (n * (b + 1)) // batches
                r0 = int(np.searchsorted(kc, lo, side="right")) - 1
                r1 = int(np.searchsorted(kc, hi, side="left"))
                tasks.append((spans[p][0] + r0, spans[p][0] + r1,
                              lo - int(kc[r0]), hi - lo))
            with timer.superstep(STAGE) as step:
                send, secs = executor.run_timed(
                    _round_extract_task, tasks, context=(scheme, reads, P),
                    weights=[t[3] for t in tasks])
                step.charge_many(range(P), secs)
            sizes.append([[int(arr.shape[0]) for arr in send[p]]
                          for p in range(P)])
            recv = comm.alltoallv(send, stage=STAGE)
            incoming = [np.concatenate(recv[q]) if recv[q] else
                        np.empty(0, np.uint64) for q in range(P)]
            with timer.superstep(STAGE) as step:
                hists, secs = executor.run_timed(
                    _round_hist_task, incoming,
                    weights=[inc.shape[0] for inc in incoming])
                step.charge_many(range(P), secs)
            for q, (uniq, cnt) in enumerate(hists):
                if uniq.shape[0] == 0:
                    continue
                buffers[q].append((uniq, cnt))
                live[q] += uniq.nbytes + cnt.nbytes
                if live[q] >= share:
                    flush(q)
        for q in range(P):
            flush(q)

        # Pass 2: replay the second exchange's traffic from the recorded
        # sizes.  The payload of a size-matched placeholder is never read
        # (pass 2 exists for the protocol's communication cost), so the
        # accounting is identical without re-extracting anything.
        for b in range(batches):
            send = [[np.empty(sizes[b][p][q], np.uint64)
                     for q in range(P)] for p in range(P)]
            comm.alltoallv(send, stage=STAGE)

        with timer.superstep(STAGE) as step:
            rel_parts, secs = executor.run_timed(
                _reliable_spill_task, runs,
                context=(lower, upper, 1 << 16),
                weights=[sum(r.n for r in rq) for rq in runs])
            step.charge_many(range(P), secs)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    comm.allgather([p[0] for p in rel_parts], stage=STAGE)
    all_k = np.concatenate([p[0] for p in rel_parts])
    all_c = np.concatenate([p[1] for p in rel_parts])
    order = np.argsort(all_k)
    return KmerTable(k=k, kmers=all_k[order], counts=all_c[order],
                     lower=lower, upper=upper)
