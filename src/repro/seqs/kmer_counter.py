"""Two-pass distributed k-mer counting with a Bloom filter.

Reproduces diBELLA 2D's counter (paper Section IV-C, after HipMer): k-mers
are hashed to an owner rank; in the first pass every rank ships its k-mers to
their owners, who insert them into a local Bloom filter — a k-mer is admitted
to the local counting table only when the filter says it was seen before
(singleton elimination).  The second pass ships the k-mers again and
accumulates exact counts for admitted k-mers.  Both passes are
``MPI_Alltoallv`` exchanges; with ``batches`` rounds per pass the latency
cost is ``Y = bP`` (Table I).

Reliable-k-mer selection then discards k-mers outside
``[2, upper]`` where ``upper`` follows BELLA's dataset-specific model
(:func:`reliable_upper_bound`): with error rate ``e`` a k-mer instance is
error-free with probability ``(1-e)^k``, so correct k-mers have multiplicity
``≈ Poisson(d·(1-e)^k)`` and anything far above that quantile is a repeat or
artifact.  With the paper's CLR parameters (k=17, e≈0.15, d=10–40) this model
lands on the small cutoffs the paper reports (they use max frequency 4 for
H. sapiens).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..exec import Executor, SERIAL
from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import StageTimer
from .bloom import BloomFilter
from .fasta import ReadSet
from .kmers import read_kmers, splitmix64

__all__ = ["KmerTable", "reliable_upper_bound", "count_kmers"]

STAGE = "CountKmer"


# -- executor tasks (module-level so the process pool can pickle them) ------

def _extract_task(ctx, owned_idx):
    """One rank's k-mer extraction over its block of reads."""
    reads, k = ctx
    parts = [read_kmers(reads[int(i)], k)[0] for i in owned_idx]
    return np.concatenate(parts) if parts else np.empty(0, np.uint64)


def _pass1_task(ctx, task):
    """First-pass handling at one owner rank: Bloom insert + admission.

    Takes and returns the rank's filter (the only cross-round state the
    pass needs — with a process pool it is shipped back mutated, with
    threads it is the same object) plus the keys the Bloom test admitted;
    the admission table itself stays in the parent so it is never
    pickled.
    """
    bloom, incoming = task
    seen = bloom.add_and_test(incoming)
    return bloom, incoming[seen]


def _pass2_task(ctx, task):
    """Second-pass handling at one owner rank: exact counting.

    ``admitted_keys`` is the rank's sorted admitted-key array — a compact
    stand-in for the admission dict, so membership is one vectorized
    searchsorted instead of a Python dict probe per k-mer.  Returns the
    (admitted key, count) arrays for the parent to fold into the dict.
    """
    admitted_keys, incoming = task
    if admitted_keys.shape[0] == 0 or incoming.size == 0:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    uniq, cnt = np.unique(incoming, return_counts=True)
    idx = np.searchsorted(admitted_keys, uniq)
    idx = np.minimum(idx, admitted_keys.shape[0] - 1)
    hit = admitted_keys[idx] == uniq
    return uniq[hit], cnt[hit]


def _reliable_task(ctx, table):
    """Reliable selection at one owner rank: multiplicity-range filter."""
    lower, upper = ctx
    if not table:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    kk = np.fromiter(table.keys(), dtype=np.uint64, count=len(table))
    cc = np.fromiter(table.values(), dtype=np.int64, count=len(table))
    keep = (cc >= lower) & (cc <= upper)
    return kk[keep], cc[keep]


@dataclass
class KmerTable:
    """Result of distributed counting: the reliable k-mer dictionary.

    ``kmers`` is sorted ascending (packed canonical ``uint64``), so the
    global column id of a k-mer is its index — lookups are
    ``np.searchsorted``.  ``counts`` holds the total multiplicities.
    """

    k: int
    kmers: np.ndarray
    counts: np.ndarray
    lower: int
    upper: int

    def __len__(self) -> int:
        return int(self.kmers.shape[0])

    def lookup(self, kmers: np.ndarray) -> np.ndarray:
        """Column ids for the given packed k-mers; -1 if not reliable."""
        idx = np.searchsorted(self.kmers, kmers)
        idx = np.minimum(idx, len(self) - 1) if len(self) else np.zeros_like(idx)
        ok = (len(self) > 0) & (self.kmers[idx] == kmers) if len(self) else \
            np.zeros(kmers.shape[0], dtype=bool)
        return np.where(ok, idx, -1)


def reliable_upper_bound(depth: float, error_rate: float, k: int,
                         quantile: float = 0.998) -> int:
    """BELLA-style maximum reliable k-mer multiplicity.

    Mean multiplicity of a correct, unique-locus k-mer is
    ``μ = depth · (1 - e)^k``; the upper cutoff is the ``quantile`` point of
    ``Poisson(μ)`` plus one, and never below 4 (the floor the paper's runs
    effectively used).
    """
    mu = depth * (1.0 - error_rate) ** k
    upper = int(stats.poisson.ppf(quantile, mu))
    return max(4, upper)


def _partition_reads(reads: ReadSet, nprocs: int) -> list[np.ndarray]:
    """Balanced 1D block partition of read indices across ranks."""
    bounds = block_bounds(len(reads), nprocs)
    return [np.arange(bounds[p], bounds[p + 1], dtype=np.int64)
            for p in range(nprocs)]


def count_kmers(reads: ReadSet, k: int, comm: SimComm,
                timer: StageTimer | None = None, *,
                batches: int = 1, bloom_fp: float = 0.01,
                lower: int = 2, upper: int = 8,
                executor: Executor | None = None) -> KmerTable:
    """Distributed two-pass k-mer counting.

    Parameters
    ----------
    reads:
        The full read set (rank ``p`` processes its balanced block slice).
    k:
        K-mer length.
    comm:
        Simulated communicator (traffic charged to stage ``"CountKmer"``).
    timer:
        Optional stage timer (per-rank compute, max-reduced per superstep).
    batches:
        Number of exchange rounds per pass (``b`` in Table I's ``Y = bP``).
    bloom_fp:
        Bloom filter false-positive target.
    lower, upper:
        Reliable multiplicity range (inclusive); compute ``upper`` with
        :func:`reliable_upper_bound` for dataset-driven values.
    executor:
        :class:`~repro.exec.Executor` spreading each superstep's per-rank
        work (extraction, Bloom handling, counting, selection) over real
        workers; ``None`` keeps the serial reference loop.  The resulting
        table is byte-identical either way.

    Returns
    -------
    KmerTable
        The sorted reliable k-mer dictionary with counts.
    """
    P = comm.nprocs
    timer = timer if timer is not None else StageTimer()
    executor = executor if executor is not None else SERIAL
    owned = _partition_reads(reads, P)

    # Extract (canonical) k-mers per rank once; reused by both passes.
    with timer.superstep(STAGE) as step:
        rank_kmers, secs = executor.run_timed(
            _extract_task, owned, context=(reads, k),
            weights=[idx.shape[0] for idx in owned])
        step.charge_many(range(P), secs)

    dest = [(splitmix64(km) % np.uint64(P)).astype(np.int64)
            for km in rank_kmers]

    total_kmers = sum(km.shape[0] for km in rank_kmers)
    blooms = [BloomFilter(max(64, total_kmers // max(1, P)), bloom_fp)
              for _ in range(P)]
    admitted: list[dict[int, int]] = [dict() for _ in range(P)]

    def exchange_rounds(run_round) -> None:
        """One pass = ``batches`` alltoallv rounds + local handling."""
        for b in range(batches):
            send: list[list[np.ndarray]] = []
            for p in range(P):
                km = rank_kmers[p]
                n = km.shape[0]
                lo, hi = (n * b) // batches, (n * (b + 1)) // batches
                sl, dl = km[lo:hi], dest[p][lo:hi]
                send.append([sl[dl == q] for q in range(P)])
            recv = comm.alltoallv(send, stage=STAGE)
            incoming = [np.concatenate(recv[q]) if recv[q] else
                        np.empty(0, np.uint64) for q in range(P)]
            run_round(incoming)

    # Pass 1: Bloom insertion; k-mers seen >= 2 enter the local table.
    def pass1(incoming: list[np.ndarray]) -> None:
        with timer.superstep(STAGE) as step:
            out, secs = executor.run_timed(
                _pass1_task,
                [(blooms[q], incoming[q]) for q in range(P)],
                weights=[inc.shape[0] for inc in incoming])
            step.charge_many(range(P), secs)
        for q, (bloom, new_keys) in enumerate(out):
            blooms[q] = bloom
            table = admitted[q]
            for kv in new_keys:
                table.setdefault(int(kv), 0)

    # Pass 2: exact counts for admitted k-mers.  Workers get each rank's
    # sorted key array (compact, vectorizable); the dicts never move.
    def pass2(incoming: list[np.ndarray]) -> None:
        keys = [np.sort(np.fromiter(admitted[q].keys(), dtype=np.uint64,
                                    count=len(admitted[q])))
                for q in range(P)]
        with timer.superstep(STAGE) as step:
            out, secs = executor.run_timed(
                _pass2_task,
                [(keys[q], incoming[q]) for q in range(P)],
                weights=[inc.shape[0] for inc in incoming])
            step.charge_many(range(P), secs)
        for q, (hit_keys, counts) in enumerate(out):
            table = admitted[q]
            for kv, c in zip(hit_keys, counts):
                table[int(kv)] += int(c)

    exchange_rounds(pass1)
    exchange_rounds(pass2)

    # Reliable selection + global dictionary assembly (an allgather of the
    # per-rank reliable sets; column ids are the sorted order).
    with timer.superstep(STAGE) as step:
        rel_parts, secs = executor.run_timed(
            _reliable_task, admitted, context=(lower, upper),
            weights=[len(t) for t in admitted])
        step.charge_many(range(P), secs)
    comm.allgather([p[0] for p in rel_parts], stage=STAGE)
    all_k = np.concatenate([p[0] for p in rel_parts])
    all_c = np.concatenate([p[1] for p in rel_parts])
    order = np.argsort(all_k)
    return KmerTable(k=k, kmers=all_k[order], counts=all_c[order],
                     lower=lower, upper=upper)
