"""Two-pass distributed k-mer counting with a Bloom filter.

Reproduces diBELLA 2D's counter (paper Section IV-C, after HipMer): k-mers
are hashed to an owner rank; in the first pass every rank ships its k-mers to
their owners, who insert them into a local Bloom filter — a k-mer is admitted
to the local counting table only when the filter says it was seen before
(singleton elimination).  The second pass ships the k-mers again and
accumulates exact counts for admitted k-mers.  Both passes are
``MPI_Alltoallv`` exchanges; with ``batches`` rounds per pass the latency
cost is ``Y = bP`` (Table I).

Reliable-k-mer selection then discards k-mers outside
``[2, upper]`` where ``upper`` follows BELLA's dataset-specific model
(:func:`reliable_upper_bound`): with error rate ``e`` a k-mer instance is
error-free with probability ``(1-e)^k``, so correct k-mers have multiplicity
``≈ Poisson(d·(1-e)^k)`` and anything far above that quantile is a repeat or
artifact.  With the paper's CLR parameters (k=17, e≈0.15, d=10–40) this model
lands on the small cutoffs the paper reports (they use max frequency 4 for
H. sapiens).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import StageTimer
from .bloom import BloomFilter
from .fasta import ReadSet
from .kmers import read_kmers, splitmix64

__all__ = ["KmerTable", "reliable_upper_bound", "count_kmers"]

STAGE = "CountKmer"


@dataclass
class KmerTable:
    """Result of distributed counting: the reliable k-mer dictionary.

    ``kmers`` is sorted ascending (packed canonical ``uint64``), so the
    global column id of a k-mer is its index — lookups are
    ``np.searchsorted``.  ``counts`` holds the total multiplicities.
    """

    k: int
    kmers: np.ndarray
    counts: np.ndarray
    lower: int
    upper: int

    def __len__(self) -> int:
        return int(self.kmers.shape[0])

    def lookup(self, kmers: np.ndarray) -> np.ndarray:
        """Column ids for the given packed k-mers; -1 if not reliable."""
        idx = np.searchsorted(self.kmers, kmers)
        idx = np.minimum(idx, len(self) - 1) if len(self) else np.zeros_like(idx)
        ok = (len(self) > 0) & (self.kmers[idx] == kmers) if len(self) else \
            np.zeros(kmers.shape[0], dtype=bool)
        return np.where(ok, idx, -1)


def reliable_upper_bound(depth: float, error_rate: float, k: int,
                         quantile: float = 0.998) -> int:
    """BELLA-style maximum reliable k-mer multiplicity.

    Mean multiplicity of a correct, unique-locus k-mer is
    ``μ = depth · (1 - e)^k``; the upper cutoff is the ``quantile`` point of
    ``Poisson(μ)`` plus one, and never below 4 (the floor the paper's runs
    effectively used).
    """
    mu = depth * (1.0 - error_rate) ** k
    upper = int(stats.poisson.ppf(quantile, mu))
    return max(4, upper)


def _partition_reads(reads: ReadSet, nprocs: int) -> list[np.ndarray]:
    """Balanced 1D block partition of read indices across ranks."""
    bounds = block_bounds(len(reads), nprocs)
    return [np.arange(bounds[p], bounds[p + 1], dtype=np.int64)
            for p in range(nprocs)]


def count_kmers(reads: ReadSet, k: int, comm: SimComm,
                timer: StageTimer | None = None, *,
                batches: int = 1, bloom_fp: float = 0.01,
                lower: int = 2, upper: int = 8) -> KmerTable:
    """Distributed two-pass k-mer counting.

    Parameters
    ----------
    reads:
        The full read set (rank ``p`` processes its balanced block slice).
    k:
        K-mer length.
    comm:
        Simulated communicator (traffic charged to stage ``"CountKmer"``).
    timer:
        Optional stage timer (per-rank compute, max-reduced per superstep).
    batches:
        Number of exchange rounds per pass (``b`` in Table I's ``Y = bP``).
    bloom_fp:
        Bloom filter false-positive target.
    lower, upper:
        Reliable multiplicity range (inclusive); compute ``upper`` with
        :func:`reliable_upper_bound` for dataset-driven values.

    Returns
    -------
    KmerTable
        The sorted reliable k-mer dictionary with counts.
    """
    P = comm.nprocs
    timer = timer if timer is not None else StageTimer()
    owned = _partition_reads(reads, P)

    # Extract (canonical) k-mers per rank once; reused by both passes.
    rank_kmers: list[np.ndarray] = []
    with timer.superstep(STAGE) as step:
        for p in range(P):
            with step.rank(p):
                parts = [read_kmers(reads[int(i)], k)[0] for i in owned[p]]
                km = np.concatenate(parts) if parts else np.empty(0, np.uint64)
                rank_kmers.append(km)

    dest = [(splitmix64(km) % np.uint64(P)).astype(np.int64)
            for km in rank_kmers]

    total_kmers = sum(km.shape[0] for km in rank_kmers)
    blooms = [BloomFilter(max(64, total_kmers // max(1, P)), bloom_fp)
              for _ in range(P)]
    admitted: list[dict[int, int]] = [dict() for _ in range(P)]

    def exchange_pass(handle) -> None:
        """One pass = ``batches`` alltoallv rounds + local handling."""
        for b in range(batches):
            send: list[list[np.ndarray]] = []
            for p in range(P):
                km = rank_kmers[p]
                n = km.shape[0]
                lo, hi = (n * b) // batches, (n * (b + 1)) // batches
                sl, dl = km[lo:hi], dest[p][lo:hi]
                send.append([sl[dl == q] for q in range(P)])
            recv = comm.alltoallv(send, stage=STAGE)
            with timer.superstep(STAGE) as step:
                for q in range(P):
                    with step.rank(q):
                        incoming = np.concatenate(recv[q]) if recv[q] else \
                            np.empty(0, np.uint64)
                        handle(q, incoming)

    # Pass 1: Bloom insertion; k-mers seen >= 2 enter the local table.
    def pass1(q: int, incoming: np.ndarray) -> None:
        seen = blooms[q].add_and_test(incoming)
        table = admitted[q]
        for kv in incoming[seen]:
            table.setdefault(int(kv), 0)

    # Pass 2: exact counts for admitted k-mers.
    def pass2(q: int, incoming: np.ndarray) -> None:
        table = admitted[q]
        if not table or incoming.size == 0:
            return
        uniq, cnt = np.unique(incoming, return_counts=True)
        for kv, c in zip(uniq, cnt):
            kv = int(kv)
            if kv in table:
                table[kv] += int(c)

    exchange_pass(pass1)
    exchange_pass(pass2)

    # Reliable selection + global dictionary assembly (an allgather of the
    # per-rank reliable sets; column ids are the sorted order).
    rel_parts = []
    with timer.superstep(STAGE) as step:
        for q in range(P):
            with step.rank(q):
                if admitted[q]:
                    kk = np.fromiter(admitted[q].keys(), dtype=np.uint64,
                                     count=len(admitted[q]))
                    cc = np.fromiter(admitted[q].values(), dtype=np.int64,
                                     count=len(admitted[q]))
                    keep = (cc >= lower) & (cc <= upper)
                    rel_parts.append((kk[keep], cc[keep]))
                else:
                    rel_parts.append((np.empty(0, np.uint64),
                                      np.empty(0, np.int64)))
    comm.allgather([p[0] for p in rel_parts], stage=STAGE)
    all_k = np.concatenate([p[0] for p in rel_parts])
    all_c = np.concatenate([p[1] for p in rel_parts])
    order = np.argsort(all_k)
    return KmerTable(k=k, kmers=all_k[order], counts=all_c[order],
                     lower=lower, upper=upper)
