"""Vectorized k-mer extraction, canonicalization, and hashing.

K-mers with ``k <= 31`` are packed into ``uint64`` values, two bits per base,
most-significant base first.  All operations are numpy-vectorized; a read of
length *l* yields its ``l - k + 1`` k-mers with no Python-level loop over
positions.

The functions here are the workhorses of both the k-mer counter
(:mod:`repro.seqs.kmer_counter`) and the construction of the ``A`` matrix
(:mod:`repro.core.overlap`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_K",
    "pack_kmers",
    "revcomp_kmers",
    "canonical_kmers",
    "read_kmers",
    "read_kmers_batch",
    "kmer_to_string",
    "string_to_kmer",
    "splitmix64",
]

MAX_K = 31


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")


def pack_kmers(codes: np.ndarray, k: int) -> np.ndarray:
    """Pack every length-``k`` window of a 2-bit code array into ``uint64``.

    Parameters
    ----------
    codes:
        ``uint8`` code array for one read.
    k:
        K-mer length (``<= 31`` so the packed value fits 62 bits).

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of length ``len(codes) - k + 1`` (empty if the read
        is shorter than ``k``).
    """
    _check_k(k)
    n = codes.shape[0]
    if n < k:
        return np.empty(0, dtype=np.uint64)
    windows = np.lib.stride_tricks.sliding_window_view(codes, k).astype(np.uint64)
    weights = (np.uint64(1) << (np.uint64(2) * np.arange(k - 1, -1, -1, dtype=np.uint64)))
    return windows @ weights


def revcomp_kmers(kmers: np.ndarray, k: int) -> np.ndarray:
    """Reverse-complement packed k-mers, vectorized with bit tricks.

    Complementing a 2-bit code ``c`` is ``3 - c``, which over the packed word
    is bitwise NOT restricted to the low ``2k`` bits.  Reversal of the k
    two-bit groups is done with the classic swap cascade (pairs, nibbles,
    bytes, ...) followed by a right shift to drop the unused high bits.
    """
    _check_k(k)
    x = (~kmers).astype(np.uint64)
    # Swap adjacent 2-bit groups' order progressively: 2-bit groups inside
    # 4-bit, then 4 inside 8, 8 inside 16, 16 inside 32, 32 inside 64.
    m = np.uint64
    x = ((x & m(0x3333333333333333)) << m(2)) | ((x >> m(2)) & m(0x3333333333333333))
    x = ((x & m(0x0F0F0F0F0F0F0F0F)) << m(4)) | ((x >> m(4)) & m(0x0F0F0F0F0F0F0F0F))
    x = ((x & m(0x00FF00FF00FF00FF)) << m(8)) | ((x >> m(8)) & m(0x00FF00FF00FF00FF))
    x = ((x & m(0x0000FFFF0000FFFF)) << m(16)) | ((x >> m(16)) & m(0x0000FFFF0000FFFF))
    x = (x << m(32)) | (x >> m(32))
    return x >> m(64 - 2 * k)


def canonical_kmers(kmers: np.ndarray, k: int) -> np.ndarray:
    """Canonical (lexicographically smaller of self / revcomp) packed k-mers.

    With the MSB-first 2-bit packing, integer order on packed words equals
    lexicographic order on the strings, so ``min`` suffices.
    """
    return np.minimum(kmers, revcomp_kmers(kmers, k))


def read_kmers(codes: np.ndarray, k: int, canonical: bool = True
               ) -> tuple[np.ndarray, np.ndarray]:
    """All k-mers of one read together with their positions.

    Returns
    -------
    (kmers, positions):
        ``uint64`` packed (canonical by default) k-mers and their ``int64``
        start offsets in the read.
    """
    km = pack_kmers(codes, k)
    pos = np.arange(km.shape[0], dtype=np.int64)
    if canonical:
        km = canonical_kmers(km, k)
    return km, pos


def _pack_all_windows(buf: np.ndarray, k: int) -> np.ndarray:
    """Pack every length-``k`` window of a contiguous code buffer.

    Binary-doubling sweep: width-``w`` packs combine pairwise into
    width-``2w`` packs, then the binary decomposition of ``k`` is stitched
    together — ``O(log k)`` full-buffer operations instead of ``k``, with
    exactly :func:`pack_kmers`' integer values (pure shifts and ORs).
    """
    n = buf.shape[0]
    val = buf.astype(np.uint64)
    packs = [(1, val)]
    w = 1
    while w * 2 <= k:
        val = (val[:n - 2 * w + 1] << np.uint64(2 * w)) | val[w:n - w + 1]
        w *= 2
        packs.append((w, val))
    cur: np.ndarray | None = None
    have = 0
    for w, val in reversed(packs):
        if have + w > k:
            continue
        if cur is None:
            cur = val
        else:
            keep = n - (have + w) + 1
            cur = (cur[:keep] << np.uint64(2 * w)) | val[have:have + keep]
        have += w
    return cur[:n - k + 1]


def read_kmers_batch(codes: np.ndarray, offsets: np.ndarray,
                     lengths: np.ndarray, k: int, canonical: bool = True
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """K-mers of *many* reads in one vectorized pass over a SoA view.

    The reads live in one shared ``codes`` buffer (read ``i`` occupies
    ``codes[offsets[i]:offsets[i] + lengths[i]]`` — the layout of
    :meth:`repro.seqs.fasta.ReadSet.soa`).  Every read's windows are packed,
    canonicalized, and position/flip-annotated as column operations over the
    whole batch: no Python-level dispatch per read.  Values are exactly those
    of calling :func:`read_kmers` per read and concatenating (same packing
    arithmetic, same canonical rule), in the same read-major order.

    Parameters
    ----------
    codes:
        ``uint8`` 2-bit code buffer shared by all addressed reads.
    offsets, lengths:
        Per-read start offsets into ``codes`` and read lengths (any subset
        or ordering of a ReadSet's rows; reads shorter than ``k`` simply
        contribute no windows).
    k:
        K-mer length.
    canonical:
        Canonicalize (and report which windows were flipped).

    Returns
    -------
    (kmers, read_idx, pos, flip):
        Packed ``uint64`` k-mers; the index **into** ``offsets``/``lengths``
        of each k-mer's read; the window start position within the read; and
        a boolean marking windows whose canonical form is the reverse
        complement (all ``False`` when ``canonical=False``).
    """
    _check_k(k)
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    n_win = np.maximum(lengths - (k - 1), 0)
    total = int(n_win.sum())
    if total == 0:
        return (np.empty(0, np.uint64), np.empty(0, np.int64),
                np.empty(0, np.int64), np.zeros(0, dtype=bool))
    read_idx = np.repeat(np.arange(lengths.shape[0], dtype=np.int64), n_win)
    first_slot = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(n_win[:-1], out=first_slot[1:])
    pos = np.arange(total, dtype=np.int64) - first_slot[read_idx]
    gstart = offsets[read_idx] + pos
    # Pack with a Horner sweep over the k base columns (exact integer
    # arithmetic — identical to pack_kmers' window/weight product).  When
    # the reads tile a contiguous stretch of ``codes`` (the SoA layout),
    # sweep the raw buffer with contiguous slices and gather the valid
    # window starts at the end; otherwise gather each window's bases first.
    lo, hi = int(offsets[0]), int(offsets[-1] + lengths[-1])
    contiguous = bool(np.all(offsets[1:] == offsets[:-1] + lengths[:-1]))
    if contiguous and hi - lo >= k:
        km = _pack_all_windows(codes[lo:hi], k)[gstart - lo]
    else:
        windows = codes[gstart[:, None]
                        + np.arange(k, dtype=np.int64)[None, :]]
        km = np.zeros(total, dtype=np.uint64)
        for j in range(k):
            km = (km << np.uint64(2)) | windows[:, j]
    if not canonical:
        return km, read_idx, pos, np.zeros(total, dtype=bool)
    canon = canonical_kmers(km, k)
    return canon, read_idx, pos, canon != km


def kmer_to_string(kmer: int, k: int) -> str:
    """Unpack a packed k-mer back into its ACGT string (for debugging)."""
    _check_k(k)
    out = []
    for shift in range(2 * (k - 1), -2, -2):
        out.append("ACGT"[(int(kmer) >> shift) & 3])
    return "".join(out)


def string_to_kmer(s: str) -> int:
    """Pack an ACGT string (``len(s) <= 31``) into its ``uint64`` value."""
    _check_k(len(s))
    val = 0
    for ch in s:
        val = (val << 2) | "ACGT".index(ch)
    return val


def splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer — a cheap, high-quality 64-bit mixer.

    Used to hash k-mers both for Bloom-filter probes and for the
    processor-assignment function of the distributed k-mer counter (the
    paper relies on the hash mapping k-mers "uniformly and randomly" across
    processors for its load-balance argument, Section V-A).
    """
    x = x.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x
