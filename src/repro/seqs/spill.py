"""Sorted spill runs for the out-of-core k-mer tables.

When a rank's buffered ``(key, count)`` histogram exceeds its share of the
``--memory-budget``, the k-mer counter flushes it to disk as one **sorted
run** (:func:`write_pair_run`) and frees the memory.  At
reliable-selection time the runs are replayed through
:func:`merge_pair_runs`, a chunked k-way merge-sum that yields the global
``(sorted unique keys, summed counts)`` stream while holding only
``O(runs × chunk)`` items resident — never the full table.

Equivalence to the resident tables is exact, not approximate: addition is
associative/commutative over however the rounds were cut, and each run is
itself sorted-unique, so the merged stream is byte-for-byte the histogram
an unbudgeted run would have built in memory.

The on-disk format is the numpy structured dtype :data:`PAIR_DTYPE`
written contiguously — readable back in arbitrary ``[lo, hi)`` windows via
``np.fromfile(offset=...)`` without loading the file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PAIR_DTYPE", "PairRun", "write_pair_run", "combine_histograms",
           "merge_pair_runs"]

#: One table entry on disk: the 64-bit canonical k-mer key + its count.
PAIR_DTYPE = np.dtype([("key", "<u8"), ("count", "<i8")])


@dataclass(frozen=True)
class PairRun:
    """One sorted-unique ``(key, count)`` run on disk."""

    path: str
    n: int

    def read(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Load entries ``[lo, hi)`` as ``(keys, counts)`` arrays."""
        lo = max(0, int(lo))
        hi = min(self.n, int(hi))
        if hi <= lo:
            return np.empty(0, np.uint64), np.empty(0, np.int64)
        rec = np.fromfile(self.path, dtype=PAIR_DTYPE, count=hi - lo,
                          offset=lo * PAIR_DTYPE.itemsize)
        return rec["key"].astype(np.uint64, copy=False), \
            rec["count"].astype(np.int64, copy=False)


def write_pair_run(path: str, keys: np.ndarray, counts: np.ndarray
                   ) -> PairRun:
    """Persist a sorted-unique ``(keys, counts)`` table as one run."""
    rec = np.empty(keys.shape[0], dtype=PAIR_DTYPE)
    rec["key"] = keys
    rec["count"] = counts
    rec.tofile(path)
    return PairRun(path=path, n=int(keys.shape[0]))


def combine_histograms(parts: list[tuple[np.ndarray, np.ndarray]]
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Merge-sum ``(keys, counts)`` parts into one sorted-unique table.

    The same splice the resident counter applies per exchange round:
    concatenate, stable-sort by key, collapse equal keys by summing their
    counts.  Works for any number of parts, each itself in any order.
    """
    if not parts:
        return np.empty(0, np.uint64), np.empty(0, np.int64)
    keys = np.concatenate([np.asarray(k, np.uint64) for k, _ in parts])
    counts = np.concatenate([np.asarray(c, np.int64) for _, c in parts])
    if keys.shape[0] == 0:
        return keys, counts
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    counts = counts[order]
    uniq, start = np.unique(keys, return_index=True)
    summed = np.add.reduceat(counts, start)
    return uniq, summed


def merge_pair_runs(runs: list[PairRun], chunk_items: int = 1 << 16):
    """K-way merge-sum of sorted runs, yielding bounded-size chunks.

    Yields ``(keys, counts)`` pairs whose key ranges are strictly
    increasing across yields (so no cross-yield deduplication is ever
    needed) and globally cover every key exactly once with its total
    count.

    The invariant that makes the chunked merge exact: each reader holds a
    buffer of up to ``chunk_items`` entries; any key still *unread* in a
    partially-loaded run is strictly greater than that run's buffered
    maximum.  Emitting only keys ``<= bound`` — the minimum buffered
    maximum over partially-loaded runs — therefore can never miss a
    contribution, and the run attaining the bound drains its whole buffer,
    so every iteration makes progress.
    """
    runs = [r for r in runs if r.n > 0]
    # (keys, counts, next_offset) per live run; next_offset == r.n means
    # the file is fully consumed and the buffer is all that remains.
    states = []
    for r in runs:
        keys, counts = r.read(0, chunk_items)
        states.append([r, keys, counts, keys.shape[0]])
    while states:
        bound = None
        for r, keys, _counts, nxt in states:
            if nxt < r.n:  # more on disk: cannot emit past the buffer max
                last = keys[-1]
                if bound is None or last < bound:
                    bound = last
        parts = []
        new_states = []
        for r, keys, counts, nxt in states:
            if bound is None:
                cut = keys.shape[0]
            else:
                cut = int(np.searchsorted(keys, bound, side="right"))
            if cut:
                parts.append((keys[:cut], counts[:cut]))
            keys = keys[cut:]
            counts = counts[cut:]
            if keys.shape[0] == 0 and nxt < r.n:
                keys, counts = r.read(nxt, nxt + chunk_items)
                nxt += keys.shape[0]
            if keys.shape[0] > 0:
                new_states.append([r, keys, counts, nxt])
        states = new_states
        if parts:
            yield combine_histograms(parts)
