"""Pluggable seeding layer: which k-mer windows seed the overlap graph.

The paper's pipeline seeds overlaps with *every* reliable k-mer, so nnz(A)
— and downstream nnz(C), alignment work, and service refresh cost — scales
with total read length.  minimap2 (Li 2018) shows that (w, k)-minimizer
sketching shrinks the seed set ~w× with negligible recall loss, and open
syncmers (Edgar 2021) achieve a similar density with better conservation
under mutation.  This module abstracts the choice behind a
:class:`SeedScheme`:

* :class:`FullKScheme` — every window, byte-identical to the historical
  hardwired path (``read_kmers`` / ``read_kmers_batch``).
* :class:`MinimizerScheme` — the hash-minimal canonical k-mer of every
  window of ``w`` consecutive k-mers, batched over a whole SoA block
  (exact per-read parity with :func:`repro.seqs.minimizers.minimizers`).
* :class:`SyncmerScheme` — open syncmers: a k-mer is a seed iff the
  hash-minimal canonical s-mer among its ``k - s + 1`` s-mers sits at the
  *start* of the k-mer's canonical orientation, with ``s = k - w + 1`` so
  the expected density is ``1/w``.  The orientation rule makes selection
  strand-symmetric: a window and its reverse complement are either both
  seeds or neither, so cross-strand overlaps keep their shared seeds.

Every scheme is a frozen (pickle-safe) dataclass whose extraction is a pure
per-read function — output is independent of how reads are blocked across
executors, strips, or service batches.  ``seeds_of_block`` mirrors
:func:`~repro.seqs.kmers.read_kmers_batch`'s return shape
``(keys, read_idx, pos, flip)`` in read-major, ascending-position order, so
the full-k scheme is an exact passthrough and every downstream consumer
(counting, A construction, occurrence tables) is scheme-agnostic.

The ``seed_mode`` axis resolves through :func:`resolve_seed_mode`
(``auto`` → :data:`SEED_MODE_ENV` → ``full``), mirroring the
``align_impl`` / ``kmer_impl`` / ``spgemm_impl`` switches.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass

import numpy as np

from .kmers import (canonical_kmers, pack_kmers, read_kmers_batch,
                    splitmix64)
from .minimizers import minimizers_batch

__all__ = ["SEED_MODES", "SEED_MODE_ENV", "DEFAULT_SEED_MODE",
           "DEFAULT_SEED_W", "resolve_seed_mode", "make_scheme",
           "SeedScheme", "FullKScheme", "MinimizerScheme", "SyncmerScheme"]

#: Seeding scheme names accepted by ``PipelineConfig.seed_mode`` (plus
#: ``"auto"``, which resolves through :func:`resolve_seed_mode`).
SEED_MODES = ("full", "minimizer", "syncmer")

#: Environment variable consulted by ``seed_mode="auto"``.
SEED_MODE_ENV = "REPRO_SEED_MODE"

#: What ``"auto"`` resolves to when the environment does not override it.
DEFAULT_SEED_MODE = "full"

#: Default window parameter for the sketched schemes (k-mers per minimizer
#: window; the syncmer submer length is derived as ``s = k - w + 1``).
DEFAULT_SEED_W = 8


def resolve_seed_mode(mode: str | None = None) -> str:
    """Resolve a seeding mode name to one of :data:`SEED_MODES`.

    ``None`` and ``"auto"`` defer to the :data:`SEED_MODE_ENV` environment
    variable when set (mirroring ``REPRO_ALIGN_IMPL`` / ``REPRO_KMER_IMPL``),
    else pick :data:`DEFAULT_SEED_MODE` (``full`` — the byte-identical
    paper behavior); explicit names pass through validated.
    """
    if mode is None:
        mode = "auto"
    if mode == "auto":
        env = os.environ.get(SEED_MODE_ENV, "").strip().lower()
        mode = env if env and env != "auto" else DEFAULT_SEED_MODE
    if mode not in SEED_MODES:
        raise ValueError(f"unknown seed mode {mode!r}; expected one of "
                         f"{', '.join(SEED_MODES + ('auto',))}")
    return mode


def make_scheme(mode: str | None, k: int, w: int = DEFAULT_SEED_W
                ) -> "SeedScheme":
    """Build the :class:`SeedScheme` for a (possibly ``auto``) mode name."""
    mode = resolve_seed_mode(mode)
    if mode == "full":
        return FullKScheme(k=k)
    if mode == "minimizer":
        return MinimizerScheme(k=k, w=w)
    return SyncmerScheme(k=k, w=w)


class SeedScheme(abc.ABC):
    """Which windows of a read contribute seeds to counting and A.

    Implementations are frozen dataclasses (pickle-safe executor context)
    and **pure per-read functions**: the seeds of a read depend only on its
    bases, never on how reads are blocked — so every executor, strip, and
    service batching produces the same seed stream.
    """

    k: int

    @property
    @abc.abstractmethod
    def scheme_id(self) -> str:
        """Stable identifier of scheme + parameters (service state tag)."""

    @property
    @abc.abstractmethod
    def expected_seed_fraction(self) -> float:
        """Expected fraction of k-mer windows selected (density model)."""

    @abc.abstractmethod
    def seeds_of_block(self, codes: np.ndarray, offsets: np.ndarray,
                       lengths: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
        """Seeds of a whole SoA block, as one vectorized pass.

        Mirrors :func:`~repro.seqs.kmers.read_kmers_batch`: returns
        ``(keys, read_idx, pos, flip)`` — canonical ``uint64`` seed
        k-mers, the index into ``offsets``/``lengths`` of each seed's
        read, the window start position within the read, and whether the
        canonical form is the reverse complement — in read-major,
        ascending-position order.
        """

    @abc.abstractmethod
    def seeds_of_read(self, codes: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Seeds of one read: ``(keys, pos, flip)`` in position order."""

    def estimate_seed_count(self, lengths: np.ndarray) -> int:
        """Expected total seed count of reads with the given lengths.

        The per-read seed budget for the BELLA/strip density model:
        ``nnz(A) ≈ sum(max(len - k + 1, 0)) · expected_seed_fraction``
        (an upper bound — A dedups repeated (read, k-mer) pairs and drops
        unreliable k-mers).
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        windows = int(np.maximum(lengths - (self.k - 1), 0).sum())
        return int(np.ceil(windows * self.expected_seed_fraction))


@dataclass(frozen=True)
class FullKScheme(SeedScheme):
    """Every k-mer window is a seed — the paper's hardwired behavior.

    ``seeds_of_block`` is a passthrough to
    :func:`~repro.seqs.kmers.read_kmers_batch`, so full mode is
    byte-identical to the pre-refactor pipeline at every layer.
    """

    k: int

    @property
    def scheme_id(self) -> str:
        return f"full:k={self.k}"

    @property
    def expected_seed_fraction(self) -> float:
        return 1.0

    def seeds_of_block(self, codes, offsets, lengths):
        return read_kmers_batch(codes, offsets, lengths, self.k)

    def seeds_of_read(self, codes):
        fwd = pack_kmers(codes, self.k)
        canon = canonical_kmers(fwd, self.k)
        pos = np.arange(fwd.shape[0], dtype=np.int64)
        return canon, pos, canon != fwd


@dataclass(frozen=True)
class MinimizerScheme(SeedScheme):
    """(w, k)-minimizers: the hash-minimal canonical k-mer per window.

    Exact batched counterpart of the per-read
    :func:`repro.seqs.minimizers.minimizers` extractor (same splitmix64
    order, same first-tie argmin, same position dedup) — pinned by the
    parity suite.  Expected density of a random-order minimizer scheme is
    ``2 / (w + 1)`` selected windows (Li 2018, Lemma 1).
    """

    k: int
    w: int = DEFAULT_SEED_W

    def __post_init__(self) -> None:
        if self.w < 1:
            raise ValueError(f"minimizer window must be >= 1, got {self.w}")

    @property
    def scheme_id(self) -> str:
        return f"minimizer:k={self.k},w={self.w}"

    @property
    def expected_seed_fraction(self) -> float:
        return min(1.0, 2.0 / (self.w + 1))

    def seeds_of_block(self, codes, offsets, lengths):
        return minimizers_batch(codes, offsets, lengths, self.k, self.w)

    def seeds_of_read(self, codes):
        codes = np.asarray(codes, dtype=np.uint8)
        keys, _ridx, pos, flip = minimizers_batch(
            codes, np.zeros(1, np.int64),
            np.array([codes.shape[0]], np.int64), self.k, self.w)
        return keys, pos, flip


@dataclass(frozen=True)
class SyncmerScheme(SeedScheme):
    """Open syncmers (Edgar 2021) over the hashed-canonical machinery.

    With submer length ``s = k - w + 1`` each k-mer window holds
    ``n_s = w`` s-mers; the window is a seed iff the s-mer at offset 0 of
    the window's canonical orientation (offset ``n_s - 1`` in read
    coordinates when the window is flipped) attains the window's minimal
    splitmix64 canonical s-mer hash.  Selection depends only on the window's
    own bases — strand-symmetric and context-free, with expected density
    ``1/w`` — unlike minimizers, whose selection depends on neighboring
    windows.
    """

    k: int
    w: int = DEFAULT_SEED_W

    def __post_init__(self) -> None:
        if not 1 <= self.w <= self.k:
            raise ValueError(
                f"syncmer window must be in [1, k={self.k}], got {self.w}")

    @property
    def s(self) -> int:
        """Submer length ``k - w + 1`` (so each window has ``w`` s-mers)."""
        return self.k - self.w + 1

    @property
    def scheme_id(self) -> str:
        return f"syncmer:k={self.k},s={self.s}"

    @property
    def expected_seed_fraction(self) -> float:
        return 1.0 / self.w

    def seeds_of_block(self, codes, offsets, lengths):
        k, s = self.k, self.s
        canon, ridx, pos, flip = read_kmers_batch(codes, offsets, lengths, k)
        if canon.shape[0] == 0 or s == k:
            # s == k: one s-mer per window, trivially minimal — full-k.
            return canon, ridx, pos, flip
        lengths = np.asarray(lengths, dtype=np.int64)
        # Hash every canonical s-mer of the block once; a k-window at read
        # position p covers the n_s consecutive s-windows starting at its
        # read's global s-slot offset + p.
        h = splitmix64(read_kmers_batch(codes, offsets, lengths, s)[0])
        n_swin = np.maximum(lengths - (s - 1), 0)
        s_first = np.zeros(lengths.shape[0], dtype=np.int64)
        np.cumsum(n_swin[:-1], out=s_first[1:])
        n_s = k - s + 1
        wmin = np.lib.stride_tricks.sliding_window_view(h, n_s).min(axis=1)
        g = s_first[ridx] + pos
        # "Attains the minimum" (not "is the argmin") keeps selection
        # reversal-invariant under tied hashes (repeated s-mers).
        keep = np.where(flip, h[g + n_s - 1], h[g]) == wmin[g]
        return canon[keep], ridx[keep], pos[keep], flip[keep]

    def seeds_of_read(self, codes):
        codes = np.asarray(codes, dtype=np.uint8)
        keys, _ridx, pos, flip = self.seeds_of_block(
            codes, np.zeros(1, np.int64),
            np.array([codes.shape[0]], np.int64))
        return keys, pos, flip
