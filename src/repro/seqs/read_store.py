"""Out-of-core read store: the 2-bit code buffer as disk-backed memmaps.

The paper's premise is assembling genomes whose working set exceeds a
node's memory.  Strip-mining (PR 3) bounded the candidate matrix, and the
spillable k-mer tables bound the counting stage — this module bounds the
third resident giant: the read bases themselves.

A :class:`MmapReadStore` directory persists the concatenated 2-bit code
buffer plus the per-read offset/length index once, then serves
``ReadSet.soa()``/``soa_block()`` as read-only ``np.memmap`` views: the
kernel pages bases in on demand and evicts them under pressure, so peak
RSS no longer scales with total input size.  The layout is deliberately
the SoA layout the pipeline already addresses::

    store.json    manifest {format, n_reads, total_bases, fingerprint}
    codes.bin     uint8[total_bases]   every read concatenated
    offsets.bin   int64[n_reads]      codes[offsets[i] : offsets[i]+lengths[i]]
    lengths.bin   int64[n_reads]

Every file is written atomically (the manifest last), so a crash mid-build
never leaves a directory that opens; the manifest's **fingerprint** is a
SHA-256 over the code and length bytes, which is exactly what the strip
checkpoints fingerprint — a stale or tampered store is refused with
:class:`StoreMismatch`, never silently assembled.

Pickling ships only ``(directory, fingerprint)``: process-executor workers
reopen the files by path instead of receiving the bases over the pipe,
which is also what makes the store cheap to fan out.

``resolve_read_store`` gives ``read_store="auto"`` the same environment
override pattern as every other engine axis (``REPRO_READ_STORE``), which
is how CI forces the whole suite through the mmap path.
"""

from __future__ import annotations

import array
import hashlib
import json
import os

import numpy as np

from ..resilience.checkpoint import atomic_write

__all__ = [
    "READ_STORES", "READ_STORE_ENV", "STORE_DIR_ENV", "DEFAULT_READ_STORE",
    "STORE_FORMAT", "StoreMismatch", "content_digest",
    "MmapReadStore", "MmapStoreWriter",
    "resolve_read_store", "resolve_store_dir",
]

#: Read-store backends accepted by ``PipelineConfig.read_store`` (plus
#: ``"auto"``, which resolves through :func:`resolve_read_store`).
READ_STORES = ("inmem", "mmap")

#: Environment variable consulted by ``read_store="auto"``.
READ_STORE_ENV = "REPRO_READ_STORE"

#: Environment variable consulted when no explicit store directory is
#: configured (mirrors ``REPRO_CHECKPOINT_DIR``).
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Backend used when neither the config nor the environment picks one.
DEFAULT_READ_STORE = "inmem"

#: Store layout version; bump on incompatible changes.
STORE_FORMAT = 1

_MANIFEST = "store.json"
_CODES = "codes.bin"
_OFFSETS = "offsets.bin"
_LENGTHS = "lengths.bin"

#: Chunk size for incremental hashing/IO over the code buffer.
_HASH_CHUNK = 16 * 2**20


class StoreMismatch(ValueError):
    """The store directory is stale, tampered, or of a foreign format."""


def content_digest(codes: np.ndarray, lengths: np.ndarray) -> str:
    """SHA-256 over the code bytes then the int64 length bytes.

    Chunked so a memmapped ``codes`` is streamed through the hash without
    ever being materialized; the same digest algorithm fingerprints both
    in-memory ReadSets and on-disk stores, so the strip-checkpoint
    fingerprint is backend-invariant.
    """
    h = hashlib.sha256()
    codes = np.ascontiguousarray(codes, dtype=np.uint8) if codes.dtype \
        != np.uint8 else codes
    for lo in range(0, codes.shape[0], _HASH_CHUNK):
        h.update(np.ascontiguousarray(codes[lo:lo + _HASH_CHUNK]).data)
    h.update(np.ascontiguousarray(lengths, dtype=np.int64).data)
    return h.hexdigest()


def resolve_read_store(name: str | None = None) -> str:
    """Resolve a read-store name to ``"inmem"`` or ``"mmap"``.

    ``None`` and ``"auto"`` defer to the :data:`READ_STORE_ENV` environment
    variable when set (mirroring ``REPRO_EXECUTOR``), else pick the
    in-memory default; explicit names pass through validated.
    """
    if name is None:
        name = "auto"
    if name == "auto":
        env = os.environ.get(READ_STORE_ENV, "").strip().lower()
        name = env if env and env != "auto" else DEFAULT_READ_STORE
    if name not in READ_STORES:
        raise ValueError(f"unknown read store {name!r}; expected one of "
                         f"{', '.join(READ_STORES + ('auto',))}")
    return name


def resolve_store_dir(directory: str | None = None) -> str | None:
    """Resolve the read-store directory, if any.

    An explicit ``directory`` wins; otherwise the :data:`STORE_DIR_ENV`
    environment variable is consulted, and ``None`` is the default — the
    pipeline then builds the store under a self-cleaning temporary
    directory.
    """
    if directory:
        return str(directory)
    env = os.environ.get(STORE_DIR_ENV, "").strip()
    return env or None


class MmapReadStore:
    """An opened on-disk read store serving memmap SoA views.

    Opening validates the manifest format and every file's size against
    the manifest before any array is mapped; :meth:`verify` additionally
    re-hashes the content.  The mapped arrays are cached and strictly
    read-only (``mode="r"``).
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        manifest_path = os.path.join(self.directory, _MANIFEST)
        try:
            with open(manifest_path, "r") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise StoreMismatch(f"no read store at {self.directory!r} "
                                f"(missing {_MANIFEST})") from None
        except (OSError, ValueError) as exc:
            raise StoreMismatch(f"unreadable read-store manifest in "
                                f"{self.directory!r}: {exc}") from None
        if manifest.get("format") != STORE_FORMAT:
            raise StoreMismatch(
                f"read-store format {manifest.get('format')!r} in "
                f"{self.directory!r} (this version reads {STORE_FORMAT})")
        self.n_reads = int(manifest["n_reads"])
        self.total_bases = int(manifest["total_bases"])
        self.fingerprint = str(manifest["fingerprint"])
        for fname, want in ((_CODES, self.total_bases),
                            (_OFFSETS, 8 * self.n_reads),
                            (_LENGTHS, 8 * self.n_reads)):
            path = os.path.join(self.directory, fname)
            try:
                size = os.path.getsize(path)
            except OSError:
                raise StoreMismatch(f"read store {self.directory!r} is "
                                    f"missing {fname}") from None
            if size != want:
                raise StoreMismatch(
                    f"read store {self.directory!r}: {fname} is {size} "
                    f"bytes, manifest expects {want} (stale or torn store)")
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def _map(self, fname: str, dtype, n: int) -> np.ndarray:
        if n == 0:
            # mmap of an empty file is an OS error; the empty array is the
            # correct (and only) view of it.
            return np.empty(0, dtype)
        return np.memmap(os.path.join(self.directory, fname), dtype=dtype,
                         mode="r", shape=(n,))

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(codes, offsets, lengths)`` read-only memmap views, cached."""
        if self._arrays is None:
            self._arrays = (self._map(_CODES, np.uint8, self.total_bases),
                            self._map(_OFFSETS, np.int64, self.n_reads),
                            self._map(_LENGTHS, np.int64, self.n_reads))
        return self._arrays

    def verify(self) -> None:
        """Re-hash the content; raise :class:`StoreMismatch` on any drift."""
        codes, _offsets, lengths = self.arrays()
        digest = content_digest(codes, lengths)
        if digest != self.fingerprint:
            raise StoreMismatch(
                f"read store {self.directory!r} content hash {digest} does "
                f"not match its manifest fingerprint {self.fingerprint} "
                f"(files were modified after the store was written)")

    # Pickling ships only the path + expected fingerprint: a process
    # worker reopens the files (a fresh, valid mapping in its own address
    # space) and refuses a directory that changed under it.
    def __getstate__(self):
        return {"directory": self.directory, "fingerprint": self.fingerprint}

    def __setstate__(self, state):
        self.__init__(state["directory"])
        if self.fingerprint != state["fingerprint"]:
            raise StoreMismatch(
                f"read store {self.directory!r} was rewritten since it was "
                f"pickled (fingerprint {self.fingerprint} on disk, "
                f"{state['fingerprint']} expected)")

    @classmethod
    def create(cls, directory: str, seqs) -> "MmapReadStore":
        """Build a store from an iterable of per-read code arrays."""
        writer = MmapStoreWriter(directory)
        try:
            for codes in seqs:
                writer.add_read(codes)
        except BaseException:
            writer.abort()
            raise
        return writer.finish()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"MmapReadStore(dir={self.directory!r}, n={self.n_reads}, "
                f"bases={self.total_bases})")


class MmapStoreWriter:
    """Streaming store builder: bases go straight to disk, never resident.

    ``add_read`` appends one read's codes to the growing ``codes.bin``
    (hashed incrementally as written); :meth:`finish` fsyncs the code file
    into place, writes the index arrays and the manifest **last** — so a
    crash at any instant leaves either no manifest (directory won't open)
    or a complete store.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._codes_tmp = os.path.join(self.directory, _CODES + ".tmp")
        self._fh = open(self._codes_tmp, "wb")
        self._hash = hashlib.sha256()
        self._lengths = array.array("q")
        self._total = 0
        self._done = False

    def add_read(self, codes: np.ndarray) -> None:
        buf = np.ascontiguousarray(codes, dtype=np.uint8)
        view = memoryview(buf).cast("B")
        self._fh.write(view)
        self._hash.update(view)
        self._lengths.append(buf.shape[0])
        self._total += buf.shape[0]

    def finish(self) -> MmapReadStore:
        if self._done:  # pragma: no cover - defensive
            raise RuntimeError("store writer already finished/aborted")
        self._done = True
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        os.replace(self._codes_tmp, os.path.join(self.directory, _CODES))
        lengths = np.asarray(self._lengths, dtype=np.int64)
        self._hash.update(np.ascontiguousarray(lengths).data)
        offsets = np.zeros(lengths.shape[0], dtype=np.int64)
        if lengths.shape[0] > 1:
            np.cumsum(lengths[:-1], out=offsets[1:])
        atomic_write(os.path.join(self.directory, _OFFSETS),
                     np.ascontiguousarray(offsets).tobytes())
        atomic_write(os.path.join(self.directory, _LENGTHS),
                     np.ascontiguousarray(lengths).tobytes())
        atomic_write(os.path.join(self.directory, _MANIFEST), json.dumps(
            {"format": STORE_FORMAT,
             "n_reads": int(lengths.shape[0]),
             "total_bases": int(self._total),
             "fingerprint": self._hash.hexdigest()},
            indent=2).encode())
        return MmapReadStore(self.directory)

    def abort(self) -> None:
        """Discard a partial build (close + delete the temp code file)."""
        if self._done:
            return
        self._done = True
        try:
            self._fh.close()
        except OSError:  # pragma: no cover
            pass
        try:
            os.unlink(self._codes_tmp)
        except OSError:
            pass
