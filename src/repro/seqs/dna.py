"""Low-level DNA sequence primitives.

Sequences are handled in two representations:

* **ASCII strings** over the alphabet ``ACGT`` (plus ``N`` on input, which is
  replaced by a random base at ingestion time, matching common long-read
  pipeline behaviour), and
* **2-bit code arrays**: ``numpy`` ``uint8`` arrays with ``A=0, C=1, G=2,
  T=3``.  All hot paths (k-mer extraction, reverse complement, hashing)
  operate on code arrays and are fully vectorized.

The module also provides genome generation with controlled repeat structure,
which drives the overlap-graph densities the paper reports in Table III.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ALPHABET",
    "encode",
    "decode",
    "revcomp_codes",
    "revcomp",
    "canonical",
    "random_genome",
    "GenomeSpec",
]

ALPHABET = "ACGT"

# ASCII byte -> 2-bit code lookup (255 = invalid).
_ENC = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(ALPHABET):
    _ENC[ord(_b)] = _i
    _ENC[ord(_b.lower())] = _i

_DEC = np.frombuffer(ALPHABET.encode(), dtype=np.uint8)


def encode(seq: str | bytes, rng: np.random.Generator | None = None) -> np.ndarray:
    """Encode an ACGT string into a 2-bit code array.

    ``N`` (or any non-ACGT byte) is replaced with a random base when ``rng``
    is given, otherwise with ``A``.  Long-read data contains occasional N
    calls; replacing them keeps every downstream array dense.

    Parameters
    ----------
    seq:
        Sequence as ``str`` or ``bytes``.
    rng:
        Optional generator used to fill non-ACGT positions.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of codes in ``{0, 1, 2, 3}``.
    """
    if isinstance(seq, str):
        seq = seq.encode()
    raw = np.frombuffer(seq, dtype=np.uint8)
    codes = _ENC[raw]
    bad = codes == 255
    if bad.any():
        if rng is None:
            codes = np.where(bad, np.uint8(0), codes)
        else:
            codes = codes.copy()
            codes[bad] = rng.integers(0, 4, size=int(bad.sum()), dtype=np.uint8)
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a 2-bit code array back into an ACGT string."""
    return _DEC[codes].tobytes().decode()


def revcomp_codes(codes: np.ndarray) -> np.ndarray:
    """Reverse complement of a 2-bit code array.

    With the ``A=0, C=1, G=2, T=3`` encoding the complement of code ``c`` is
    ``3 - c``, so the whole operation is a single vectorized expression.
    """
    return (np.uint8(3) - codes)[::-1]


def revcomp(seq: str) -> str:
    """Reverse complement of an ACGT string."""
    return decode(revcomp_codes(encode(seq)))


def canonical(seq: str) -> str:
    """Canonical form: the lexicographically smaller of ``seq`` and its
    reverse complement (the paper, Section II)."""
    rc = revcomp(seq)
    return seq if seq <= rc else rc


class GenomeSpec:
    """Specification for a synthetic genome with controlled repeats.

    Repeats are what make real overlap graphs denser than the ideal
    ``c = 2d`` bound (paper Table III's "inefficiency factor"), so the
    generator plants ``n_repeats`` copies of ``repeat_len``-long segments at
    random positions.

    Attributes
    ----------
    length:
        Genome length in bases.
    n_repeats:
        Number of *extra* copies of repeat segments to plant.
    repeat_len:
        Length of each repeated segment.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(self, length: int, n_repeats: int = 0, repeat_len: int = 0,
                 seed: int = 0) -> None:
        if length <= 0:
            raise ValueError("genome length must be positive")
        if n_repeats > 0 and not 0 < repeat_len <= length:
            raise ValueError("repeat_len must be in (0, length]")
        self.length = int(length)
        self.n_repeats = int(n_repeats)
        self.repeat_len = int(repeat_len)
        self.seed = int(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GenomeSpec(length={self.length}, n_repeats={self.n_repeats},"
                f" repeat_len={self.repeat_len}, seed={self.seed})")


def random_genome(spec: GenomeSpec) -> np.ndarray:
    """Generate a random genome as a 2-bit code array.

    A uniform random sequence of ``spec.length`` bases is drawn first; then
    ``spec.n_repeats`` times, a random ``repeat_len`` window is copied over
    another random location (possibly reverse-complemented, as real genomic
    repeats occur in both orientations).
    """
    rng = np.random.default_rng(spec.seed)
    genome = rng.integers(0, 4, size=spec.length, dtype=np.uint8)
    for _ in range(spec.n_repeats):
        src = int(rng.integers(0, spec.length - spec.repeat_len + 1))
        dst = int(rng.integers(0, spec.length - spec.repeat_len + 1))
        segment = genome[src:src + spec.repeat_len]
        if rng.random() < 0.5:
            segment = revcomp_codes(segment)
        genome[dst:dst + spec.repeat_len] = segment
    return genome
