"""Bloom filter over packed k-mers.

diBELLA 2D eliminates singleton k-mers with a Bloom filter during the first
pass of k-mer counting (paper Section IV-C, citing Melsted & Pritchard).  A
k-mer is only inserted into the counting hash table once it is seen for the
*second* time, so the vast majority of error k-mers (which occur once) never
occupy table memory.

The implementation keeps one byte per bit slot with ``n_hashes`` probes
derived from two independent splitmix64 mixes (Kirsch–Mitzenmacher double
hashing), all numpy-vectorized over batches of k-mers.  Two deliberate
representation trades against a textbook packed-bit filter:

* **one byte per slot** — 8× filter memory (still ~10 bytes per expected
  key) so probes are plain fancy indexing; scatter-inserts into packed
  words need ``np.bitwise_or.at``, which is orders of magnitude slower and
  was the counter's dominant cost at millions of k-mers;
* **power-of-two slot count** — probe reduction by bit mask instead of a
  64-bit modulo.

Both change *which* slots a key probes versus the old packed/modulo
variant, so the false-positive pattern differs from pre-PR-5 filters (the
rate only improves — ``m`` never shrinks).  That is observable only below
the counting pipeline's reliable-multiplicity floor: false positives admit
singleton k-mers, which reliable selection (``lower >= 2``) always
discards, so k-mer tables and everything downstream are unaffected.
"""

from __future__ import annotations

import math

import numpy as np

from .kmers import splitmix64

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-size Bloom filter for ``uint64`` keys.

    Parameters
    ----------
    capacity:
        Expected number of distinct keys.
    fp_rate:
        Target false-positive probability; sizes the bit array as
        ``m = -n ln p / (ln 2)^2`` and uses ``h = m/n ln 2`` hash probes.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        m = max(64, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        # Round the slot count up to a power of two: probe reduction becomes
        # a bit mask instead of a 64-bit modulo (the dominant hashing cost),
        # and the extra slots only lower the false-positive rate.
        self.n_bits = 1 << (int(m) - 1).bit_length()
        self.n_hashes = max(1, round(m / capacity * math.log(2)))
        self._slots = np.zeros(self.n_bits, dtype=np.uint8)
        self.capacity = capacity
        self.fp_rate = fp_rate

    # -- hashing ---------------------------------------------------------
    def _probe_positions(self, keys: np.ndarray) -> np.ndarray:
        """(len(keys), n_hashes) array of bit positions (double hashing)."""
        h1 = splitmix64(keys)
        h2 = splitmix64(keys ^ np.uint64(0xA5A5A5A5A5A5A5A5)) | np.uint64(1)
        i = np.arange(self.n_hashes, dtype=np.uint64)[None, :]
        return (h1[:, None] + i * h2[:, None]) & np.uint64(self.n_bits - 1)

    # -- operations ------------------------------------------------------
    def add(self, keys: np.ndarray) -> None:
        """Insert a batch of keys."""
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        self._slots[self._probe_positions(keys).ravel()] = 1

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Membership test for a batch of keys (vectorized).

        Returns a boolean array; true entries may include false positives at
        roughly the configured rate, never false negatives.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        return self._slots[self._probe_positions(keys)].all(axis=1)

    def add_and_test(self, keys: np.ndarray) -> np.ndarray:
        """Insert keys and report which were (probably) already present.

        This is the first-pass primitive of the two-pass counter: the
        returned mask marks k-mers seen at least twice, which are the only
        ones admitted to the counting table.  Duplicate keys *within* the
        batch are handled: the second and later occurrences in the batch
        report present.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        seen = np.zeros(keys.shape[0], dtype=bool)
        # Process in insertion order but vectorized: first test the whole
        # batch against the pre-batch filter, then account for intra-batch
        # duplicates via sorting (first occurrence of a duplicated key is
        # "new", later ones are "seen").
        pre = self.contains(keys)
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        dup_of_prev = np.zeros(sk.shape[0], dtype=bool)
        dup_of_prev[1:] = sk[1:] == sk[:-1]
        seen[order] = dup_of_prev
        seen |= pre
        self.add(keys)
        return seen

    def test_and_set(self, keys: np.ndarray) -> np.ndarray:
        """Pre-state membership plus insertion, one probe sweep per key.

        The batch k-mer engine's primitive: given the *distinct* keys of an
        exchange round it answers "was this key present before the round?"
        and inserts them, hashing each key exactly once (:meth:`add_and_test`
        probes twice — once to test, once to insert — and per occurrence).
        Equivalent filter state and answers: slot positions only depend on
        the key, and setting a slot twice is a no-op.  Callers handle
        intra-round duplicates themselves (a duplicated key is "seen" by
        definition, whatever the filter says).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._probe_positions(keys)
        pre = self._slots[pos].all(axis=1)
        self._slots[pos.ravel()] = 1
        return pre

    @property
    def fill_ratio(self) -> float:
        """Fraction of set slots (diagnostic; high values degrade accuracy)."""
        return float(self._slots.mean())
