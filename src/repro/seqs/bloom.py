"""Bloom filter over packed k-mers.

diBELLA 2D eliminates singleton k-mers with a Bloom filter during the first
pass of k-mer counting (paper Section IV-C, citing Melsted & Pritchard).  A
k-mer is only inserted into the counting hash table once it is seen for the
*second* time, so the vast majority of error k-mers (which occur once) never
occupy table memory.

The implementation is a plain bit array with ``n_hashes`` probes derived from
two independent splitmix64 mixes (Kirsch–Mitzenmacher double hashing), all
numpy-vectorized over batches of k-mers.
"""

from __future__ import annotations

import math

import numpy as np

from .kmers import splitmix64

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-size Bloom filter for ``uint64`` keys.

    Parameters
    ----------
    capacity:
        Expected number of distinct keys.
    fp_rate:
        Target false-positive probability; sizes the bit array as
        ``m = -n ln p / (ln 2)^2`` and uses ``h = m/n ln 2`` hash probes.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        m = max(64, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self.n_bits = int(m)
        self.n_hashes = max(1, round(m / capacity * math.log(2)))
        self._bits = np.zeros((self.n_bits + 63) // 64, dtype=np.uint64)
        self.capacity = capacity
        self.fp_rate = fp_rate

    # -- hashing ---------------------------------------------------------
    def _probe_positions(self, keys: np.ndarray) -> np.ndarray:
        """(len(keys), n_hashes) array of bit positions (double hashing)."""
        h1 = splitmix64(keys)
        h2 = splitmix64(keys ^ np.uint64(0xA5A5A5A5A5A5A5A5)) | np.uint64(1)
        i = np.arange(self.n_hashes, dtype=np.uint64)[None, :]
        return (h1[:, None] + i * h2[:, None]) % np.uint64(self.n_bits)

    # -- operations ------------------------------------------------------
    def add(self, keys: np.ndarray) -> None:
        """Insert a batch of keys."""
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        pos = self._probe_positions(keys).ravel()
        np.bitwise_or.at(self._bits, pos >> np.uint64(6),
                         np.uint64(1) << (pos & np.uint64(63)))

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Membership test for a batch of keys (vectorized).

        Returns a boolean array; true entries may include false positives at
        roughly the configured rate, never false negatives.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._probe_positions(keys)
        words = self._bits[pos >> np.uint64(6)]
        hit = (words >> (pos & np.uint64(63))) & np.uint64(1)
        return hit.all(axis=1)

    def add_and_test(self, keys: np.ndarray) -> np.ndarray:
        """Insert keys and report which were (probably) already present.

        This is the first-pass primitive of the two-pass counter: the
        returned mask marks k-mers seen at least twice, which are the only
        ones admitted to the counting table.  Duplicate keys *within* the
        batch are handled: the second and later occurrences in the batch
        report present.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        seen = np.zeros(keys.shape[0], dtype=bool)
        # Process in insertion order but vectorized: first test the whole
        # batch against the pre-batch filter, then account for intra-batch
        # duplicates via sorting (first occurrence of a duplicated key is
        # "new", later ones are "seen").
        pre = self.contains(keys)
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        dup_of_prev = np.zeros(sk.shape[0], dtype=bool)
        dup_of_prev[1:] = sk[1:] == sk[:-1]
        seen[order] = dup_of_prev
        seen |= pre
        self.add(keys)
        return seen

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostic; high values degrade accuracy)."""
        set_bits = int(np.bitwise_count(self._bits).sum())
        return set_bits / self.n_bits
