"""(w, k)-minimizer extraction for the minimap-like baseline.

minimap2 (Li 2018) indexes reads by minimizers — the smallest (by a hash
order) k-mer in every window of ``w`` consecutive k-mers — and estimates
pairwise similarity from shared minimizers without base-level alignment.
The paper compares diBELLA 2D against minimap2 on a single node
(Section VII-B); :mod:`repro.baselines.minimap_like` builds on this module.

Extraction is numpy-vectorized with a sliding-window argmin over the hashed
canonical k-mer sequence.
"""

from __future__ import annotations

import numpy as np

from .kmers import pack_kmers, canonical_kmers, splitmix64

__all__ = ["minimizers"]


def minimizers(codes: np.ndarray, k: int, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the (w, k)-minimizers of one read.

    Parameters
    ----------
    codes:
        2-bit code array of the read.
    k:
        K-mer length.
    w:
        Window size in k-mers; each window of ``w`` consecutive k-mers
        contributes its hash-minimal canonical k-mer.

    Returns
    -------
    (kmers, positions):
        Deduplicated ``uint64`` canonical minimizer k-mers and their start
        positions, in ascending position order.  A k-mer minimal in several
        overlapping windows is reported once per distinct position.
    """
    if w < 1:
        raise ValueError("w must be >= 1")
    km = pack_kmers(codes, k)
    if km.shape[0] == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    can = canonical_kmers(km, k)
    order = splitmix64(can)  # random order breaks lexicographic bias
    if order.shape[0] <= w:
        pos = np.array([int(np.argmin(order))], dtype=np.int64)
        return can[pos], pos
    windows = np.lib.stride_tricks.sliding_window_view(order, w)
    arg = windows.argmin(axis=1) + np.arange(windows.shape[0], dtype=np.int64)
    pos = np.unique(arg)
    return can[pos], pos
