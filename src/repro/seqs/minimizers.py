"""(w, k)-minimizer extraction — shared by the seeding layer and baseline.

minimap2 (Li 2018) indexes reads by minimizers — the smallest (by a hash
order) k-mer in every window of ``w`` consecutive k-mers — and estimates
pairwise similarity from shared minimizers without base-level alignment.
The paper compares diBELLA 2D against minimap2 on a single node
(Section VII-B).  Two consumers build on this module and must not drift:
:mod:`repro.baselines.minimap_like` and the pipeline's
:class:`~repro.seqs.seeding.MinimizerScheme` seed mode.

:func:`minimizers` extracts one read with a sliding-window argmin over the
hashed canonical k-mer sequence; :func:`minimizers_batch` is its exact
whole-block SoA counterpart (mirroring
:func:`~repro.seqs.kmers.read_kmers_batch`'s column-op style): one sliding
argmin over the concatenated hash stream with per-read window masking, and
a vectorized segment-argmin for reads with fewer than ``w`` windows.  The
batched output equals concatenating the per-read extractor over the block
— pinned by the parity suite.
"""

from __future__ import annotations

import numpy as np

from .kmers import pack_kmers, canonical_kmers, read_kmers_batch, splitmix64

__all__ = ["minimizers", "minimizers_batch"]


def minimizers(codes: np.ndarray, k: int, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the (w, k)-minimizers of one read.

    Parameters
    ----------
    codes:
        2-bit code array of the read.
    k:
        K-mer length.
    w:
        Window size in k-mers; each window of ``w`` consecutive k-mers
        contributes its hash-minimal canonical k-mer.

    Returns
    -------
    (kmers, positions):
        Deduplicated ``uint64`` canonical minimizer k-mers and their start
        positions, in ascending position order.  A k-mer minimal in several
        overlapping windows is reported once per distinct position.
    """
    if w < 1:
        raise ValueError("w must be >= 1")
    km = pack_kmers(codes, k)
    if km.shape[0] == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    can = canonical_kmers(km, k)
    order = splitmix64(can)  # random order breaks lexicographic bias
    if order.shape[0] <= w:
        pos = np.array([int(np.argmin(order))], dtype=np.int64)
        return can[pos], pos
    windows = np.lib.stride_tricks.sliding_window_view(order, w)
    arg = windows.argmin(axis=1) + np.arange(windows.shape[0], dtype=np.int64)
    pos = np.unique(arg)
    return can[pos], pos


def minimizers_batch(codes: np.ndarray, offsets: np.ndarray,
                     lengths: np.ndarray, k: int, w: int
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """(w, k)-minimizers of *many* reads in one vectorized pass.

    The reads live in one shared SoA buffer (the layout of
    :meth:`repro.seqs.fasta.ReadSet.soa`).  Values are exactly those of
    calling :func:`minimizers` per read and concatenating, in the same
    read-major ascending-position order — plus the per-seed ``flip``
    orientation bit the pipeline's A matrix needs.

    Returns
    -------
    (kmers, read_idx, pos, flip):
        Canonical ``uint64`` minimizer k-mers, the index into
        ``offsets``/``lengths`` of each minimizer's read, its window start
        position within the read, and whether the canonical form is the
        reverse complement (the shape of
        :func:`~repro.seqs.kmers.read_kmers_batch`).
    """
    if w < 1:
        raise ValueError("w must be >= 1")
    canon, ridx, pos, flip = read_kmers_batch(codes, offsets, lengths, k)
    total = canon.shape[0]
    if total == 0:
        return canon, ridx, pos, flip
    lengths = np.asarray(lengths, dtype=np.int64)
    n_win = np.maximum(lengths - (k - 1), 0)
    starts = np.zeros(n_win.shape[0] + 1, dtype=np.int64)
    np.cumsum(n_win, out=starts[1:])
    order = splitmix64(canon)
    keep = np.zeros(total, dtype=bool)
    if total >= w:
        # One sliding argmin over the concatenated hash stream.  A window
        # start g belongs to the read whose slot range contains it; it is a
        # real w-window of that read only when it also *ends* inside the
        # read — windows straddling a boundary are masked out.
        win = np.lib.stride_tricks.sliding_window_view(order, w)
        arg = win.argmin(axis=1) + np.arange(win.shape[0], dtype=np.int64)
        g = np.arange(win.shape[0], dtype=np.int64)
        gr = np.searchsorted(starts, g, side="right") - 1
        keep[arg[g + w <= starts[gr + 1]]] = True
        small = (n_win >= 1) & (n_win < w)
    else:
        small = n_win >= 1
    if small.any():
        # Reads with fewer than w windows contribute their single global
        # minimum (the per-read extractor's short-read branch): a segment
        # min per read, then the first position attaining it — np.argmin's
        # first-tie rule, vectorized.
        sel = small[ridx]
        seg_min = np.full(n_win.shape[0], np.uint64(0xFFFFFFFFFFFFFFFF),
                          dtype=np.uint64)
        np.minimum.at(seg_min, ridx[sel], order[sel])
        cand = np.flatnonzero(sel & (order == seg_min[ridx]))
        keep[cand[np.unique(ridx[cand], return_index=True)[1]]] = True
    return canon[keep], ridx[keep], pos[keep], flip[keep]
