"""Genomics substrate: DNA primitives, k-mers, Bloom filter, FASTA I/O,
read simulation, minimizers, and the distributed k-mer counter."""

from .dna import (ALPHABET, GenomeSpec, canonical, decode, encode,
                  random_genome, revcomp, revcomp_codes)
from .kmers import (MAX_K, canonical_kmers, kmer_to_string, pack_kmers,
                    read_kmers, revcomp_kmers, splitmix64, string_to_kmer)
from .bloom import BloomFilter
from .fasta import (ReadSet, chunked_read_ranges, read_fasta,
                    read_fasta_to_store, write_fasta)
from .read_store import (READ_STORES, MmapReadStore, MmapStoreWriter,
                         StoreMismatch, content_digest, resolve_read_store,
                         resolve_store_dir)
from .simulator import ErrorModel, ReadSimSpec, TrueLayout, simulate_reads
from .minimizers import minimizers, minimizers_batch
from .seeding import (SEED_MODES, FullKScheme, MinimizerScheme, SeedScheme,
                      SyncmerScheme, make_scheme, resolve_seed_mode)
from .kmer_counter import KmerTable, count_kmers, reliable_upper_bound

__all__ = [
    "ALPHABET", "GenomeSpec", "canonical", "decode", "encode",
    "random_genome", "revcomp", "revcomp_codes",
    "MAX_K", "canonical_kmers", "kmer_to_string", "pack_kmers", "read_kmers",
    "revcomp_kmers", "splitmix64", "string_to_kmer",
    "BloomFilter",
    "ReadSet", "chunked_read_ranges", "read_fasta", "read_fasta_to_store",
    "write_fasta",
    "READ_STORES", "MmapReadStore", "MmapStoreWriter", "StoreMismatch",
    "content_digest", "resolve_read_store", "resolve_store_dir",
    "ErrorModel", "ReadSimSpec", "TrueLayout", "simulate_reads",
    "minimizers", "minimizers_batch",
    "SEED_MODES", "SeedScheme", "FullKScheme", "MinimizerScheme",
    "SyncmerScheme", "make_scheme", "resolve_seed_mode",
    "KmerTable", "count_kmers", "reliable_upper_bound",
]
