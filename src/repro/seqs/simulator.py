"""Synthetic long-read simulator (PacBio CLR-like error model).

The paper evaluates on PacBio CLR read sets (Table IV: C. elegans at depth
40 / 13% error, H. sapiens at depth 10 / 15% error).  Those read sets are
tens of GB and not redistributable here, so this module generates the closest
synthetic equivalent:

* genome with controlled repeat content (:class:`repro.seqs.dna.GenomeSpec`),
* read lengths drawn from a clipped lognormal (CLR length distributions are
  heavy-tailed),
* per-base errors at a configurable rate split between substitutions,
  insertions and deletions (CLR errors are indel-dominated),
* both strands sampled uniformly.

Every read records its true genome interval and strand (:class:`TrueLayout`),
which downstream metrics use to score overlap detection against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .dna import GenomeSpec, random_genome, revcomp_codes
from .fasta import ReadSet

__all__ = ["ErrorModel", "ReadSimSpec", "TrueLayout", "simulate_reads"]


@dataclass(frozen=True)
class ErrorModel:
    """Per-base sequencing error model.

    Attributes
    ----------
    rate:
        Total per-base error probability.
    sub_frac, ins_frac, del_frac:
        How the error mass splits between substitutions, insertions and
        deletions; must sum to 1.  Defaults follow the CLR indel-dominated
        profile.
    """

    rate: float = 0.15
    sub_frac: float = 0.2
    ins_frac: float = 0.5
    del_frac: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("error rate must be in [0, 1)")
        total = self.sub_frac + self.ins_frac + self.del_frac
        if abs(total - 1.0) > 1e-9:
            raise ValueError("sub/ins/del fractions must sum to 1")


@dataclass(frozen=True)
class ReadSimSpec:
    """Full specification of a simulated read set.

    Attributes
    ----------
    genome:
        The underlying :class:`GenomeSpec`.
    depth:
        Target coverage depth ``d`` (reads are drawn until total bases reach
        ``depth * genome.length``).
    mean_len / sigma_len:
        Lognormal length parameters (mean of the *resulting* distribution and
        the underlying normal sigma).
    min_len:
        Reads shorter than this are redrawn (mirrors CLR length filtering).
    error:
        The :class:`ErrorModel`.
    seed:
        RNG seed for the read sampling (independent of the genome seed).
    """

    genome: GenomeSpec
    depth: float = 30.0
    mean_len: float = 1000.0
    sigma_len: float = 0.3
    min_len: int = 300
    error: ErrorModel = field(default_factory=ErrorModel)
    seed: int = 1


@dataclass
class TrueLayout:
    """Ground-truth placement of simulated reads on the genome.

    ``start``/``end`` are genome coordinates of the sampled (error-free)
    interval; ``strand`` is 0 for forward, 1 for reverse complement.
    """

    start: np.ndarray
    end: np.ndarray
    strand: np.ndarray

    def true_overlap(self, i: int, j: int) -> int:
        """Length (bp) of the genomic interval shared by reads i and j."""
        lo = max(int(self.start[i]), int(self.start[j]))
        hi = min(int(self.end[i]), int(self.end[j]))
        return max(0, hi - lo)

    def overlap_pairs(self, min_overlap: int) -> set[tuple[int, int]]:
        """All read pairs (i < j) with true overlap >= ``min_overlap``.

        Computed by sorting interval starts and sweeping, so it is
        near-linear in the number of reads plus output pairs.
        """
        order = np.argsort(self.start, kind="stable")
        starts = self.start[order]
        ends = self.end[order]
        pairs: set[tuple[int, int]] = set()
        import heapq

        active: list[tuple[int, int]] = []  # (end, original index)
        for pos in range(order.shape[0]):
            s, e, orig = int(starts[pos]), int(ends[pos]), int(order[pos])
            while active and active[0][0] - s < min_overlap:
                heapq.heappop(active)
            for ae, aorig in active:
                if min(ae, e) - s >= min_overlap:
                    a, b = (aorig, orig) if aorig < orig else (orig, aorig)
                    pairs.add((a, b))
            heapq.heappush(active, (e, orig))
        return pairs


def _apply_errors(codes: np.ndarray, model: ErrorModel,
                  rng: np.random.Generator) -> np.ndarray:
    """Apply the error model to one read, fully vectorized.

    Each position independently gets one of {keep, substitute, insert-before,
    delete}.  The output is assembled with a repeat-count trick: position
    output counts are 1 (keep/substitute), 0 (delete) or 2 (insert + keep),
    and ``np.repeat`` materializes the output index map in one shot.
    """
    if model.rate == 0.0 or codes.size == 0:
        return codes.copy()
    n = codes.shape[0]
    u = rng.random(n)
    p_sub = model.rate * model.sub_frac
    p_ins = model.rate * model.ins_frac
    p_del = model.rate * model.del_frac
    sub = u < p_sub
    ins = (u >= p_sub) & (u < p_sub + p_ins)
    dele = (u >= p_sub + p_ins) & (u < p_sub + p_ins + p_del)

    base = codes.copy()
    if sub.any():
        # Substitute with one of the three *other* bases.
        base[sub] = (base[sub] + rng.integers(1, 4, size=int(sub.sum()),
                                              dtype=np.uint8)) % 4
    counts = np.ones(n, dtype=np.int64)
    counts[dele] = 0
    counts[ins] = 2
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    out = base[src]
    # The first copy of each insertion position is the inserted random base.
    out_pos_of_first = np.cumsum(counts) - counts  # output offset per source pos
    ins_out = out_pos_of_first[ins]
    out[ins_out] = rng.integers(0, 4, size=ins_out.shape[0], dtype=np.uint8)
    return out


def simulate_reads(spec: ReadSimSpec) -> tuple[np.ndarray, ReadSet, TrueLayout]:
    """Generate a genome and a simulated read set over it.

    Returns
    -------
    (genome, reads, layout):
        The genome code array, the error-mutated :class:`ReadSet` and the
        ground-truth :class:`TrueLayout` (coordinates refer to the clean
        genome; layout order matches read order).
    """
    genome = random_genome(spec.genome)
    glen = genome.shape[0]
    rng = np.random.default_rng(spec.seed)
    target_bases = int(spec.depth * glen)

    mu = np.log(spec.mean_len) - spec.sigma_len ** 2 / 2.0
    starts: list[int] = []
    ends: list[int] = []
    strands: list[int] = []
    seqs: list[np.ndarray] = []
    names: list[str] = []
    total = 0
    i = 0
    while total < target_bases:
        length = int(rng.lognormal(mu, spec.sigma_len))
        length = min(max(length, spec.min_len), glen)
        start = int(rng.integers(0, glen - length + 1))
        strand = int(rng.integers(0, 2))
        clean = genome[start:start + length]
        if strand:
            clean = revcomp_codes(clean)
        noisy = _apply_errors(clean, spec.error, rng)
        starts.append(start)
        ends.append(start + length)
        strands.append(strand)
        seqs.append(noisy)
        names.append(f"read{i}_{start}_{start + length}_{strand}")
        total += length
        i += 1

    layout = TrueLayout(np.array(starts, dtype=np.int64),
                        np.array(ends, dtype=np.int64),
                        np.array(strands, dtype=np.int64))
    return genome, ReadSet(names, seqs), layout
