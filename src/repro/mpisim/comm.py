"""Simulated MPI communicator with exact traffic accounting.

:class:`SimComm` reproduces the data movement of the MPI collectives the
pipeline uses (``MPI_Alltoallv``, broadcast, allreduce, gather — Section IV
of the paper) inside a single process.  Per-rank payloads live in ordinary
Python lists indexed by rank; a collective call moves the data between those
per-rank slots *and* charges every rank's sent bytes/messages to a
:class:`~repro.mpisim.tracker.CommTracker` stage.

Self-messages (rank → itself) are moved but **not** charged, matching the
paper's accounting where each processor "keeps (1/P)th of the data for
itself and communicates the rest" (Section V-A).

The communicator also supports sub-communicators over arbitrary rank subsets
(:meth:`sub`), which Sparse SUMMA uses for its process-row and process-column
broadcasts.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .tracker import CommTracker

__all__ = ["SimComm", "nbytes_of"]


def nbytes_of(obj) -> int:
    """Best-effort payload size in bytes for accounting purposes.

    numpy arrays report their true buffer size; scipy sparse matrices the sum
    of their component arrays; ``bytes``/``str`` their encoded length;
    lists/tuples recurse; anything else is charged a nominal 8 bytes per
    object (the pipeline only ships arrays in practice).
    """
    if obj is None:
        return 0
    # True payload for raw byte/character buffers — checked before the
    # duck-typed array probes so they never fall through to the 8-byte
    # catch-all (an MPI rank would ship every one of these characters).
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, memoryview):
        return int(obj.nbytes)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    # CooMat-shaped objects: row/col index arrays + a vals field array.
    vrow = getattr(obj, "row", None)
    vcol = getattr(obj, "col", None)
    vvals = getattr(obj, "vals", None)
    if isinstance(vrow, np.ndarray) and isinstance(vcol, np.ndarray) \
            and isinstance(vvals, np.ndarray):
        return int(vrow.nbytes) + int(vcol.nbytes) + int(vvals.nbytes)
    data = getattr(obj, "data", None)
    indices = getattr(obj, "indices", None)
    indptr = getattr(obj, "indptr", None)
    if isinstance(data, np.ndarray) and isinstance(indices, np.ndarray):
        total = int(data.nbytes) + int(indices.nbytes)
        if isinstance(indptr, np.ndarray):
            total += int(indptr.nbytes)
        return total
    row = getattr(obj, "row", None)
    col = getattr(obj, "col", None)
    if isinstance(data, np.ndarray) and isinstance(row, np.ndarray) \
            and isinstance(col, np.ndarray):
        return int(data.nbytes) + int(row.nbytes) + int(col.nbytes)
    if isinstance(obj, (list, tuple)):
        return sum(nbytes_of(x) for x in obj)
    if isinstance(obj, dict):
        return sum(nbytes_of(v) for v in obj.values())
    return 8


class SimComm:
    """In-process stand-in for an MPI communicator of ``nprocs`` ranks."""

    def __init__(self, nprocs: int, tracker: CommTracker | None = None,
                 ranks: Sequence[int] | None = None) -> None:
        if nprocs <= 0:
            raise ValueError("nprocs must be positive")
        self.nprocs = nprocs
        self.tracker = tracker if tracker is not None else CommTracker(nprocs)
        # Global rank ids of this communicator's members (for accounting when
        # this is a sub-communicator of a larger world).
        self._global_ranks = list(ranks) if ranks is not None else list(range(nprocs))
        if len(self._global_ranks) != nprocs:
            raise ValueError("ranks must have nprocs entries")

    # -- sub-communicators ------------------------------------------------
    def sub(self, ranks: Sequence[int]) -> "SimComm":
        """Sub-communicator over the given *local* rank subset.

        Accounting still lands on the original global ranks, exactly like an
        ``MPI_Comm_split`` result sharing the parent's network.
        """
        global_subset = [self._global_ranks[r] for r in ranks]
        return SimComm(len(ranks), self.tracker, global_subset)

    def _charge(self, stage: str, local_rank: int, n_bytes: int, n_msgs: int
                ) -> None:
        self.tracker.record(stage, self._global_ranks[local_rank],
                            n_bytes, n_msgs)

    # -- collectives -------------------------------------------------------
    def alltoallv(self, send: list[list], stage: str) -> list[list]:
        """All-to-all variable exchange.

        ``send[p][q]`` is the payload rank ``p`` sends to rank ``q``; the
        result ``recv[q][p]`` is that same object (zero-copy hand-off, as the
        simulation shares one address space).  Each rank is charged one
        message per *non-empty* off-rank destination plus the payload bytes,
        matching ``MPI_Alltoallv``'s per-destination accounting.
        """
        P = self.nprocs
        if len(send) != P or any(len(row) != P for row in send):
            raise ValueError("send must be a PxP nested list")
        recv: list[list] = [[None] * P for _ in range(P)]
        for p in range(P):
            for q in range(P):
                payload = send[p][q]
                recv[q][p] = payload
                if p != q:
                    nb = nbytes_of(payload)
                    self._charge(stage, p, nb, 1 if nb > 0 else 0)
        return recv

    def bcast(self, obj, root: int, stage: str) -> list:
        """Broadcast from ``root``; returns the per-rank received list.

        Charged as ``P - 1`` messages and ``(P-1) * nbytes`` at the root —
        the volume a flat-tree broadcast injects; tree algorithms change
        constants, not the asymptotics the paper analyzes.
        """
        nb = nbytes_of(obj)
        if self.nprocs > 1:
            self._charge(stage, root, nb * (self.nprocs - 1), self.nprocs - 1)
        return [obj for _ in range(self.nprocs)]

    def allreduce(self, values: list, op, stage: str, item_bytes: int | None = None):
        """Allreduce of one value per rank; returns the reduced value.

        Charged as one message of the item size per rank (recursive-doubling
        volume is ``log P`` messages; we charge the dominant single-item
        volume per rank and one message, again preserving asymptotics).
        """
        if len(values) != self.nprocs:
            raise ValueError("one value per rank required")
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        nb = item_bytes if item_bytes is not None else nbytes_of(values[0])
        for p in range(self.nprocs):
            if self.nprocs > 1:
                self._charge(stage, p, nb, 1)
        return acc

    def gather(self, values: list, root: int, stage: str) -> list:
        """Gather one value per rank at ``root``."""
        if len(values) != self.nprocs:
            raise ValueError("one value per rank required")
        for p in range(self.nprocs):
            if p != root:
                self._charge(stage, p, nbytes_of(values[p]), 1)
        return list(values)

    def allgather(self, values: list, stage: str) -> list[list]:
        """Allgather: every rank receives every rank's value."""
        if len(values) != self.nprocs:
            raise ValueError("one value per rank required")
        for p in range(self.nprocs):
            nb = nbytes_of(values[p])
            if self.nprocs > 1:
                self._charge(stage, p, nb * (self.nprocs - 1), self.nprocs - 1)
        return [list(values) for _ in range(self.nprocs)]
