"""Simulated distributed-memory runtime.

This package is the substitution for MPI on Cori/Summit: an in-process SPMD
environment whose collectives move real data between per-rank slots and
account exact bytes/messages (:mod:`~repro.mpisim.comm`), a ``√P×√P`` logical
grid (:mod:`~repro.mpisim.grid`), α–β machine models for the two evaluation
platforms (:mod:`~repro.mpisim.machine`), and compute/communication stage
accounting (:mod:`~repro.mpisim.tracker`).  See DESIGN.md §2 for why this
substitution preserves the paper's measured quantities.
"""

from .comm import SimComm, nbytes_of
from .grid import ProcessGrid2D, block_bounds
from .machine import MachineModel, CORI_HASWELL, SUMMIT_CPU, MACHINES
from .tracker import CommTracker, StageTimer

__all__ = [
    "SimComm", "nbytes_of",
    "ProcessGrid2D", "block_bounds",
    "MachineModel", "CORI_HASWELL", "SUMMIT_CPU", "MACHINES",
    "CommTracker", "StageTimer",
]
