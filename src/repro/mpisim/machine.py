"""Machine models for communication/compute time estimation.

The paper evaluates on two systems (Table V): Cori Haswell (Cray XC40,
Aries dragonfly) and Summit CPU (IBM POWER9, InfiniBand fat tree).  We cannot
run on either, so each is represented by an **α–β (latency–bandwidth) model**
plus a relative compute-throughput factor:

``T_comm = α · messages + bytes / β``            (per rank, max over ranks)
``T_comp = compute_scale · measured_local_time`` (max over ranks)

The α/β values are representative published figures for the interconnects
(Aries: ~1.4 µs latency, ~10 GB/s injection; dual-rail EDR InfiniBand:
~1.1 µs, ~12 GB/s).  ``compute_scale`` encodes the paper's observation that
the same code ran somewhat slower per-core on POWER9 (SeqAn alignment was not
optimized for it, Section VII-A); the absolute value only shifts curves, not
their shape.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "CORI_HASWELL", "SUMMIT_CPU", "MACHINES"]


@dataclass(frozen=True)
class MachineModel:
    """α–β machine model.

    Attributes
    ----------
    name:
        Display name.
    cores_per_node:
        Physical cores per node (Table V).
    alpha:
        Per-message latency in seconds.
    beta:
        Bandwidth in bytes/second per rank.
    compute_scale:
        Multiplier applied to locally measured compute time to model this
        machine's per-core throughput relative to the host running the
        simulation.
    """

    name: str
    cores_per_node: int
    alpha: float
    beta: float
    compute_scale: float = 1.0

    def comm_time(self, n_bytes: float, n_messages: float) -> float:
        """Modeled communication time for a (bytes, messages) volume."""
        return self.alpha * n_messages + n_bytes / self.beta

    def nodes_for(self, nprocs: int, ranks_per_node: int = 32) -> float:
        """Node count used when reporting in the paper's per-node axes."""
        return max(1.0, nprocs / ranks_per_node)


#: Cori Haswell partition: 2x16-core Xeon E5-2698v3, Aries dragonfly.
CORI_HASWELL = MachineModel(
    name="Cori Haswell",
    cores_per_node=32,
    alpha=1.4e-6,
    beta=10e9,
    compute_scale=1.0,
)

#: Summit CPU-only: 2x22-core POWER9, EDR InfiniBand non-blocking fat tree.
SUMMIT_CPU = MachineModel(
    name="Summit CPU",
    cores_per_node=42,
    alpha=1.1e-6,
    beta=12e9,
    compute_scale=1.25,
)

MACHINES = {"cori": CORI_HASWELL, "summit": SUMMIT_CPU}
