"""Per-stage communication accounting and compute timing.

The paper's communication analysis (Section V, Table I) is stated in words
(bandwidth cost ``W``) and messages (latency cost ``Y``) **per process**.
:class:`CommTracker` records exactly those quantities for every pipeline
stage as collectives execute, and :class:`StageTimer` records wall-clock
compute per rank per superstep, reducing with ``max`` over ranks — the same
reduction a lock-step SPMD program's critical path performs.

Together they let a single-process simulation report both

* *measured* communication volumes (to validate Table I's formulas), and
* *modeled* runtimes on a given :class:`~repro.mpisim.machine.MachineModel`
  (to reproduce the scaling shapes of Figs. 4–9).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager

import numpy as np

from .machine import MachineModel

__all__ = ["CommRecord", "CommTracker", "StageTimer"]


class CommRecord:
    """Accumulated communication for one stage: per-rank bytes/messages."""

    def __init__(self, nprocs: int) -> None:
        self.bytes_per_rank = np.zeros(nprocs, dtype=np.float64)
        self.messages_per_rank = np.zeros(nprocs, dtype=np.float64)

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_per_rank.sum())

    @property
    def total_messages(self) -> float:
        return float(self.messages_per_rank.sum())

    @property
    def max_bytes(self) -> float:
        return float(self.bytes_per_rank.max())

    @property
    def max_messages(self) -> float:
        return float(self.messages_per_rank.max())


class CommTracker:
    """Collects per-stage :class:`CommRecord`\\ s from collectives."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.records: dict[str, CommRecord] = {}

    def record(self, stage: str, rank: int, n_bytes: float, n_messages: float
               ) -> None:
        """Attribute ``n_bytes`` sent and ``n_messages`` issued to ``rank``."""
        rec = self.records.get(stage)
        if rec is None:
            rec = self.records[stage] = CommRecord(self.nprocs)
        rec.bytes_per_rank[rank] += n_bytes
        rec.messages_per_rank[rank] += n_messages

    def stage_comm_time(self, stage: str, machine: MachineModel) -> float:
        """Modeled α–β communication time of one stage (critical rank)."""
        rec = self.records.get(stage)
        if rec is None:
            return 0.0
        return machine.comm_time(rec.max_bytes, rec.max_messages)

    def merge(self, other: "CommTracker") -> None:
        """Fold another tracker's records into this one (rank-wise sums).

        The blocked overlap mode runs each strip against a private tracker
        (so strips can execute on any :class:`~repro.exec.Executor`) and
        merges them back in strip order — making the accumulated records
        independent of how the strips were scheduled.
        """
        if other.nprocs != self.nprocs:
            raise ValueError(f"cannot merge trackers of {other.nprocs} and "
                             f"{self.nprocs} ranks")
        for stage, rec in other.records.items():
            mine = self.records.get(stage)
            if mine is None:
                mine = self.records[stage] = CommRecord(self.nprocs)
            mine.bytes_per_rank += rec.bytes_per_rank
            mine.messages_per_rank += rec.messages_per_rank

    def words(self, stage: str, word_bytes: int = 8) -> float:
        """Max per-rank word count for a stage (Table I's ``W``)."""
        rec = self.records.get(stage)
        return 0.0 if rec is None else rec.max_bytes / word_bytes

    def messages(self, stage: str) -> float:
        """Max per-rank message count for a stage (Table I's ``Y``)."""
        rec = self.records.get(stage)
        return 0.0 if rec is None else rec.max_messages

    def summary(self) -> dict[str, dict[str, float]]:
        """Dict of per-stage totals, for reports and tests."""
        return {
            stage: {
                "total_bytes": rec.total_bytes,
                "max_bytes": rec.max_bytes,
                "total_messages": rec.total_messages,
                "max_messages": rec.max_messages,
            }
            for stage, rec in self.records.items()
        }


class StageTimer:
    """Wall-clock compute timing with SPMD max-over-ranks semantics.

    Local compute of the simulated ranks executes sequentially in this
    process; what a real SPMD run would experience per superstep is the
    *maximum* over ranks.  Usage::

        with timer.superstep("SpGEMM") as step:
            for rank in range(P):
                with step.rank(rank):
                    ... local work of `rank` ...

    On superstep exit, ``max`` over per-rank durations is added to the
    stage's accumulated time.  :meth:`add` allows direct charging (e.g., for
    modeled components).

    The timer also tracks per-stage **live-matrix high-water marks**
    (:meth:`record_peak_bytes`): stages report the byte size of the largest
    matrix state they held at once, and the maximum per stage survives —
    the memory trajectory the paper's Section VIII memory-reduction plan
    targets.  Peaks follow the serial schedule's semantics: the blocked
    overlap mode records one strip at a time, so its SpGEMM peak is the
    largest single strip, not the whole candidate matrix.
    """

    def __init__(self) -> None:
        self.stage_seconds: dict[str, float] = defaultdict(float)
        self.stage_supersteps: dict[str, int] = defaultdict(int)
        self.stage_peak_bytes: dict[str, int] = {}
        self.stage_kernel_counts: dict[str, dict[str, int]] = {}

    @contextmanager
    def superstep(self, stage: str):
        step = _Superstep()
        yield step
        self.stage_seconds[stage] += step.max_rank_time()
        self.stage_supersteps[stage] += 1

    def add(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] += seconds

    def record_peak_bytes(self, stage: str, n_bytes: int) -> None:
        """Record live matrix bytes observed during ``stage`` (max wins)."""
        n_bytes = int(n_bytes)
        if n_bytes > self.stage_peak_bytes.get(stage, 0):
            self.stage_peak_bytes[stage] = n_bytes

    def peak_bytes(self) -> dict[str, int]:
        """Per-stage live-matrix high-water marks, in bytes."""
        return dict(self.stage_peak_bytes)

    def count_kernel(self, stage: str, path: str, n: int = 1) -> None:
        """Tally ``n`` block products of ``stage`` taking kernel ``path``.

        Paths are the :meth:`repro.dsparse.backend.Backend.spgemm_with_path`
        names (``"csr"``, ``"masked_csr"``, ``"esc"``, ``"masked_esc"``) —
        the per-stage dispatch breakdown ``repro stats`` prints so bench
        regressions are attributable to a routing change.
        """
        per_stage = self.stage_kernel_counts.setdefault(stage, {})
        per_stage[path] = per_stage.get(path, 0) + int(n)

    def kernel_counts(self) -> dict[str, dict[str, int]]:
        """Per-stage SpGEMM kernel-dispatch counters (copies)."""
        return {stage: dict(paths)
                for stage, paths in self.stage_kernel_counts.items()}

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer in: seconds/supersteps add, peaks take max.

        Counterpart of :meth:`CommTracker.merge` for the blocked mode's
        per-strip private timers; merging in strip order reproduces the
        serial schedule's accumulation.
        """
        for stage, secs in other.stage_seconds.items():
            self.stage_seconds[stage] += secs
        for stage, count in other.stage_supersteps.items():
            self.stage_supersteps[stage] += count
        for stage, peak in other.stage_peak_bytes.items():
            self.record_peak_bytes(stage, peak)
        for stage, paths in other.stage_kernel_counts.items():
            for path, n in paths.items():
                self.count_kernel(stage, path, n)

    def total(self) -> float:
        return float(sum(self.stage_seconds.values()))

    def breakdown(self) -> dict[str, float]:
        return dict(self.stage_seconds)


class _Superstep:
    def __init__(self) -> None:
        self._rank_times: dict[int, float] = defaultdict(float)

    @contextmanager
    def rank(self, rank: int):
        t0 = time.perf_counter()
        yield
        self._rank_times[rank] += time.perf_counter() - t0

    def charge(self, rank: int, seconds: float) -> None:
        """Directly attribute compute seconds to a rank."""
        self._rank_times[rank] += seconds

    def charge_many(self, ranks, seconds) -> None:
        """Attribute per-task compute to ranks pairwise (executor results)."""
        for rank, sec in zip(ranks, seconds):
            self._rank_times[rank] += sec

    def max_rank_time(self) -> float:
        return max(self._rank_times.values(), default=0.0)
