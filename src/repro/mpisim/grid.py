"""2D process grid used by the Sparse SUMMA decomposition.

CombBLAS organizes the ``P`` processes in a ``√P × √P`` logical grid; the
matrices are block-distributed so processor ``P_ij`` owns block ``(i, j)``
(paper Section V-B).  :class:`ProcessGrid2D` provides the rank ↔ (row, col)
mapping and the balanced block-boundary arithmetic used everywhere a global
index must be located on the grid.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ProcessGrid2D", "block_bounds"]


def block_bounds(n: int, parts: int) -> np.ndarray:
    """Balanced partition boundaries of ``range(n)`` into ``parts`` blocks.

    Returns an ``int64`` array ``b`` of length ``parts + 1`` with block ``i``
    spanning ``[b[i], b[i+1])``; the first ``n % parts`` blocks get one extra
    element (the standard balanced block distribution).
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, rem = divmod(n, parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:rem] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


class ProcessGrid2D:
    """A ``q × q`` logical grid over ``P = q²`` ranks (row-major)."""

    def __init__(self, nprocs: int) -> None:
        q = math.isqrt(nprocs)
        if q * q != nprocs:
            raise ValueError(f"2D grid needs a perfect-square process count, got {nprocs}")
        self.nprocs = nprocs
        self.q = q

    def rank_of(self, row: int, col: int) -> int:
        return row * self.q + col

    def coords_of(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.q)

    def row_ranks(self, row: int) -> list[int]:
        """Ranks in process-row ``row`` (a SUMMA row broadcast group)."""
        return [self.rank_of(row, c) for c in range(self.q)]

    def col_ranks(self, col: int) -> list[int]:
        """Ranks in process-column ``col`` (a SUMMA column broadcast group)."""
        return [self.rank_of(r, col) for r in range(self.q)]

    def row_bounds(self, n_rows: int) -> np.ndarray:
        """Global row boundaries of the grid's block rows."""
        return block_bounds(n_rows, self.q)

    def col_bounds(self, n_cols: int) -> np.ndarray:
        """Global column boundaries of the grid's block columns."""
        return block_bounds(n_cols, self.q)

    def owner_of(self, i: int, j: int, n_rows: int, n_cols: int) -> int:
        """Rank owning global entry ``(i, j)`` of an ``n_rows×n_cols`` matrix."""
        rb = self.row_bounds(n_rows)
        cb = self.col_bounds(n_cols)
        br = int(np.searchsorted(rb, i, side="right") - 1)
        bc = int(np.searchsorted(cb, j, side="right") - 1)
        return self.rank_of(br, bc)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ProcessGrid2D({self.q}x{self.q})"
