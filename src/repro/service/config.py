"""Service configuration and the ``refresh_mode`` correctness axis.

``refresh_mode`` mirrors the pipeline's ``align_impl`` / ``kmer_impl`` /
``spgemm_impl`` switches: two interchangeable engines with byte-identical
output, one fast (``incremental`` — fold the batch into the live state via
delta products) and one reference oracle (``recompute`` — rerun
:func:`~repro.core.pipeline.run_pipeline` from scratch on the concatenated
reads).  ``"auto"`` defers to the :data:`REFRESH_MODE_ENV` environment
variable so CI can pin either engine across a whole test leg.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.pipeline import PipelineConfig

__all__ = ["REFRESH_MODES", "REFRESH_MODE_ENV", "DEFAULT_REFRESH_MODE",
           "resolve_refresh_mode", "ServiceConfig"]

#: Refresh engine names accepted by ``ServiceConfig.refresh_mode`` (plus
#: ``"auto"``, which resolves through :func:`resolve_refresh_mode`).
REFRESH_MODES = ("incremental", "recompute")

#: Environment variable consulted by ``refresh_mode="auto"``.
REFRESH_MODE_ENV = "REPRO_REFRESH_MODE"

#: What ``"auto"`` resolves to when the environment does not override it.
DEFAULT_REFRESH_MODE = "incremental"


def resolve_refresh_mode(mode: str | None = None) -> str:
    """Resolve a refresh mode to ``"incremental"`` or ``"recompute"``.

    ``None`` and ``"auto"`` defer to :data:`REFRESH_MODE_ENV` when set, else
    pick :data:`DEFAULT_REFRESH_MODE`; explicit names pass through
    validated.  Both engines produce byte-identical states — the switch is
    a pure performance axis, with ``recompute`` kept as the oracle.
    """
    if mode is None:
        mode = "auto"
    if mode == "auto":
        env = os.environ.get(REFRESH_MODE_ENV, "").strip().lower()
        mode = env if env and env != "auto" else DEFAULT_REFRESH_MODE
    if mode not in REFRESH_MODES:
        raise ValueError(f"unknown refresh mode {mode!r}; expected one of "
                         f"{', '.join(REFRESH_MODES + ('auto',))}")
    return mode


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one incremental assembly service instance.

    ``pipeline`` carries the full :class:`PipelineConfig` axis set (k,
    nprocs, engines, executor...); whatever ``overlap_mode`` it names, the
    service runs the monolithic candidate path — the incremental engine
    splices delta rows into the *monolithic* R and the blocked mode is a
    batch-memory optimization with no meaning for delta-sized products.
    ``cache_entries`` bounds the query cache's LRU capacity.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    refresh_mode: str = "auto"
    cache_entries: int = 256
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
