"""The HTTP face of the incremental assembly service.

:class:`AssemblyService` is the transport-free core — ingest a batch,
answer overlap/contig/stats queries against the current version through
the cache — and :func:`make_server` wraps it in a stdlib
``ThreadingHTTPServer`` speaking JSON:

========  =================  ==========================================
method    path               effect
========  =================  ==========================================
``POST``  ``/reads``         ingest ``{"reads": [{"name", "seq"}, ...]}``
                             → refresh → version bump
``GET``   ``/version``       current dataset version + read count
``GET``   ``/overlaps/<i>``  read ``i``'s R row (cached)
``GET``   ``/contigs``       contig layout, largest first (cached)
``GET``   ``/stats``         counts, per-stage comm, cache counters
========  =================  ==========================================

Queries are served from whatever state is current when they arrive;
ingests serialize on a lock, refresh *outside* the store (readers keep
the old version meanwhile), then commit and sweep stale cache entries.
Commits are transactional: a refresh that fails for *any* reason —
including faults injected via a :class:`~repro.resilience.FaultPlan` —
leaves the store at the old version and the query cache unswept, and
surfaces as a structured ``503`` (:class:`RefreshFailed`) so clients can
retry the same batch against the unchanged state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.semirings import R_END_I, R_END_J, R_OLEN, R_SUFFIX
from ..resilience.faults import active_plan, resolve_fault_plan
from ..seqs.dna import encode
from ..seqs.fasta import ReadSet
from .config import ServiceConfig
from .incremental import refresh
from .query_cache import QueryCache
from .state import AssemblyState, SessionStore

__all__ = ["AssemblyService", "BadBatch", "RefreshFailed", "make_server",
           "MAX_BODY_BYTES"]

#: Largest ``POST /reads`` body the server will read (413 beyond this) —
#: far above any sane batch, present so a bogus Content-Length cannot make
#: the handler allocate unboundedly.
MAX_BODY_BYTES = 256 * 1024 * 1024


class BadBatch(ValueError):
    """The ingest payload itself is invalid (e.g. non-DNA characters) —
    a client error (HTTP 400), distinct from a state conflict (409)."""


class RefreshFailed(RuntimeError):
    """A refresh died mid-flight; nothing was committed (HTTP 503).

    The session store still holds the pre-ingest version and the query
    cache was not swept — retrying the same batch is safe.
    """

    def __init__(self, version: int, cause: BaseException) -> None:
        super().__init__(f"refresh failed, still at version {version}: "
                         f"{cause!r}")
        self.version = version
        self.cause = cause


class AssemblyService:
    """Session store + refresh engine + query cache, behind plain methods.

    ``fault_spec`` arms a *persistent* fault plan
    (:func:`repro.resilience.resolve_fault_plan` grammar; ``None`` defers
    to ``REPRO_FAULT_SPEC``) whose per-site counters live as long as the
    service — so ``service.refresh:exc@3`` fails exactly the third ingest
    of the process, whichever client sends it.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 fault_spec: str | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.store = SessionStore(AssemblyState.initial())
        self.cache = QueryCache(self.config.cache_entries)
        self.fault_plan = resolve_fault_plan(fault_spec)
        self._ingest_lock = threading.Lock()

    # -- mutation ----------------------------------------------------------
    def ingest(self, names: list[str], seqs: list[str]) -> dict:
        """Fold a batch of reads in; returns the new version's summary.

        All-or-nothing: the new state is built entirely outside the store,
        so a refresh failure (raised as :class:`RefreshFailed`) leaves the
        current version, its cache entries, and concurrent readers
        untouched.
        """
        try:
            batch = ReadSet(list(names), [encode(s) for s in seqs])
        except ValueError as exc:
            raise BadBatch(str(exc)) from exc
        with self._ingest_lock:
            old = self.store.current()
            try:
                with active_plan(self.fault_plan):
                    state = refresh(old, batch, self.config)
            except ValueError:
                # State conflicts (cross-scheme deltas) pass through: the
                # client must change its request, not retry it.
                raise
            except Exception as exc:
                raise RefreshFailed(old.version, exc) from exc
            self.store.commit(state)
            self.cache.invalidate_stale(state.version)
        return {"version": state.version, "ingested": len(batch),
                "refresh_mode": state.refresh_mode,
                "refresh_seconds": state.refresh_seconds,
                "counts": state.counts}

    # -- queries -----------------------------------------------------------
    def _cached(self, endpoint: str, params: dict, compute):
        state = self.store.current()
        key = self.cache.key(endpoint, params, state.version)
        result = self.cache.get(key)
        if result is None:
            result = compute(state)
            self.cache.put(key, result)
        return result

    def version(self) -> dict:
        state = self.store.current()
        return {"version": state.version,
                "n_reads": state.counts["n_reads"]}

    def overlaps(self, read: int) -> dict:
        def compute(state: AssemblyState) -> dict:
            out = []
            if state.R is not None:
                sel = state.R.row == read
                for col, vals in zip(state.R.col[sel].tolist(),
                                     state.R.vals[sel]):
                    out.append({"read": col,
                                "suffix": int(vals[R_SUFFIX]),
                                "end_i": int(vals[R_END_I]),
                                "end_j": int(vals[R_END_J]),
                                "overlap_len": int(vals[R_OLEN])})
            return {"version": state.version, "read": read,
                    "overlaps": out}
        return self._cached("overlaps", {"read": int(read)}, compute)

    def contigs(self) -> dict:
        def compute(state: AssemblyState) -> dict:
            ordered = sorted(state.contigs, key=len, reverse=True)
            return {"version": state.version,
                    "contigs": [{"reads": list(c.reads),
                                 "orientations": list(c.orientations)}
                                for c in ordered]}
        return self._cached("contigs", {}, compute)

    def stats(self) -> dict:
        def compute(state: AssemblyState) -> dict:
            comm = {}
            if state.tracker is not None:
                for stage, rec in sorted(state.tracker.records.items()):
                    comm[stage] = {"bytes": int(rec.total_bytes),
                                   "messages": int(rec.total_messages)}
            return {"version": state.version, "counts": state.counts,
                    "refresh_mode": state.refresh_mode,
                    "refresh_seconds": state.refresh_seconds,
                    "scheme": state.scheme_id,
                    "comm": comm}
        result = dict(self._cached("stats", {}, compute))
        # Cache counters ride on top uncached (they change on every query).
        result["cache"] = self.cache.stats()
        return result


class _Handler(BaseHTTPRequestHandler):
    """JSON request handler bound to one :class:`AssemblyService`."""

    service: AssemblyService  # set by make_server's subclass

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test output and demo terminals quiet

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, status: int, code: str, message: str) -> None:
        """Structured error body: machine-readable code + human message."""
        self._reply({"error": message, "code": code}, status)

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` after replying with the error.

        Socket-level malformations get precise statuses instead of a
        hang or a stack trace: missing Content-Length → 411, non-integer
        or negative → 400, absurdly large → 413, a body shorter than the
        header promised (client died mid-send) → 400.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            self._fail(411, "length-required",
                       "Content-Length header is required")
            return None
        try:
            length = int(raw)
        except ValueError:
            self._fail(400, "bad-content-length",
                       f"Content-Length must be an integer, got {raw!r}")
            return None
        if length < 0:
            self._fail(400, "bad-content-length",
                       f"Content-Length must be non-negative, got {length}")
            return None
        if length > MAX_BODY_BYTES:
            self._fail(413, "payload-too-large",
                       f"body of {length} bytes exceeds the "
                       f"{MAX_BODY_BYTES}-byte limit")
            return None
        body = self.rfile.read(length)
        if len(body) < length:
            self._fail(400, "truncated-body",
                       f"body ended after {len(body)} of the {length} "
                       f"bytes Content-Length promised")
            return None
        return body

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.rstrip("/") or "/"
        try:
            if path == "/version":
                self._reply(self.service.version())
            elif path == "/stats":
                self._reply(self.service.stats())
            elif path == "/contigs":
                self._reply(self.service.contigs())
            elif path.startswith("/overlaps/"):
                try:
                    read = int(path.rsplit("/", 1)[1])
                except ValueError:
                    self._reply({"error": "read id must be an integer"}, 400)
                    return
                self._reply(self.service.overlaps(read))
            else:
                self._reply({"error": f"unknown endpoint {path}"}, 404)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply({"error": str(exc)}, 500)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/reads":
            self._reply({"error": f"unknown endpoint {self.path}"}, 404)
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            self._fail(400, "bad-json", f"body is not valid JSON: {exc}")
            return
        try:
            if not isinstance(payload, dict):
                raise TypeError(f"expected a JSON object, got "
                                f"{type(payload).__name__}")
            reads = payload.get("reads", [])
            names = [str(r["name"]) for r in reads]
            seqs = [str(r["seq"]) for r in reads]
        except (ValueError, KeyError, TypeError) as exc:
            self._fail(400, "bad-batch", f"bad request body: {exc}")
            return
        try:
            self._reply(self.service.ingest(names, seqs))
        except BadBatch as exc:
            self._fail(400, "bad-batch", str(exc))
        except RefreshFailed as exc:
            # Nothing was committed; the client may retry the same batch.
            self._reply({"error": str(exc), "code": "refresh-failed",
                         "version": exc.version, "retryable": True}, 503)
        except ValueError as exc:
            # Refused ingests (e.g. a cross-scheme delta against the
            # session's seeding scheme) are a client-state conflict, not a
            # server fault.
            self._reply({"error": str(exc), "code": "conflict"}, 409)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply({"error": str(exc)}, 500)


def make_server(service: AssemblyService, host: str | None = None,
                port: int | None = None) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``service``.

    ``port=0`` asks the OS for a free port (the test suite's mode); the
    bound address is on ``server.server_address``.
    """
    host = host if host is not None else service.config.host
    port = port if port is not None else service.config.port

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    return ThreadingHTTPServer((host, port), BoundHandler)
