"""The HTTP face of the incremental assembly service.

:class:`AssemblyService` is the transport-free core — ingest a batch,
answer overlap/contig/stats queries against the current version through
the cache — and :func:`make_server` wraps it in a stdlib
``ThreadingHTTPServer`` speaking JSON:

========  =================  ==========================================
method    path               effect
========  =================  ==========================================
``POST``  ``/reads``         ingest ``{"reads": [{"name", "seq"}, ...]}``
                             → refresh → version bump
``GET``   ``/version``       current dataset version + read count
``GET``   ``/overlaps/<i>``  read ``i``'s R row (cached)
``GET``   ``/contigs``       contig layout, largest first (cached)
``GET``   ``/stats``         counts, per-stage comm, cache counters
========  =================  ==========================================

Queries are served from whatever state is current when they arrive;
ingests serialize on a lock, refresh *outside* the store (readers keep
the old version meanwhile), then commit and sweep stale cache entries.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.semirings import R_END_I, R_END_J, R_OLEN, R_SUFFIX
from ..seqs.dna import encode
from ..seqs.fasta import ReadSet
from .config import ServiceConfig
from .incremental import refresh
from .query_cache import QueryCache
from .state import AssemblyState, SessionStore

__all__ = ["AssemblyService", "make_server"]


class AssemblyService:
    """Session store + refresh engine + query cache, behind plain methods."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.store = SessionStore(AssemblyState.initial())
        self.cache = QueryCache(self.config.cache_entries)
        self._ingest_lock = threading.Lock()

    # -- mutation ----------------------------------------------------------
    def ingest(self, names: list[str], seqs: list[str]) -> dict:
        """Fold a batch of reads in; returns the new version's summary."""
        batch = ReadSet(list(names), [encode(s) for s in seqs])
        with self._ingest_lock:
            state = refresh(self.store.current(), batch, self.config)
            self.store.commit(state)
            self.cache.invalidate_stale(state.version)
        return {"version": state.version, "ingested": len(batch),
                "refresh_mode": state.refresh_mode,
                "refresh_seconds": state.refresh_seconds,
                "counts": state.counts}

    # -- queries -----------------------------------------------------------
    def _cached(self, endpoint: str, params: dict, compute):
        state = self.store.current()
        key = self.cache.key(endpoint, params, state.version)
        result = self.cache.get(key)
        if result is None:
            result = compute(state)
            self.cache.put(key, result)
        return result

    def version(self) -> dict:
        state = self.store.current()
        return {"version": state.version,
                "n_reads": state.counts["n_reads"]}

    def overlaps(self, read: int) -> dict:
        def compute(state: AssemblyState) -> dict:
            out = []
            if state.R is not None:
                sel = state.R.row == read
                for col, vals in zip(state.R.col[sel].tolist(),
                                     state.R.vals[sel]):
                    out.append({"read": col,
                                "suffix": int(vals[R_SUFFIX]),
                                "end_i": int(vals[R_END_I]),
                                "end_j": int(vals[R_END_J]),
                                "overlap_len": int(vals[R_OLEN])})
            return {"version": state.version, "read": read,
                    "overlaps": out}
        return self._cached("overlaps", {"read": int(read)}, compute)

    def contigs(self) -> dict:
        def compute(state: AssemblyState) -> dict:
            ordered = sorted(state.contigs, key=len, reverse=True)
            return {"version": state.version,
                    "contigs": [{"reads": list(c.reads),
                                 "orientations": list(c.orientations)}
                                for c in ordered]}
        return self._cached("contigs", {}, compute)

    def stats(self) -> dict:
        def compute(state: AssemblyState) -> dict:
            comm = {}
            if state.tracker is not None:
                for stage, rec in sorted(state.tracker.records.items()):
                    comm[stage] = {"bytes": int(rec.total_bytes),
                                   "messages": int(rec.total_messages)}
            return {"version": state.version, "counts": state.counts,
                    "refresh_mode": state.refresh_mode,
                    "refresh_seconds": state.refresh_seconds,
                    "scheme": state.scheme_id,
                    "comm": comm}
        result = dict(self._cached("stats", {}, compute))
        # Cache counters ride on top uncached (they change on every query).
        result["cache"] = self.cache.stats()
        return result


class _Handler(BaseHTTPRequestHandler):
    """JSON request handler bound to one :class:`AssemblyService`."""

    service: AssemblyService  # set by make_server's subclass

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test output and demo terminals quiet

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.rstrip("/") or "/"
        try:
            if path == "/version":
                self._reply(self.service.version())
            elif path == "/stats":
                self._reply(self.service.stats())
            elif path == "/contigs":
                self._reply(self.service.contigs())
            elif path.startswith("/overlaps/"):
                try:
                    read = int(path.rsplit("/", 1)[1])
                except ValueError:
                    self._reply({"error": "read id must be an integer"}, 400)
                    return
                self._reply(self.service.overlaps(read))
            else:
                self._reply({"error": f"unknown endpoint {path}"}, 404)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply({"error": str(exc)}, 500)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/reads":
            self._reply({"error": f"unknown endpoint {self.path}"}, 404)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            reads = payload.get("reads", [])
            names = [str(r["name"]) for r in reads]
            seqs = [str(r["seq"]) for r in reads]
        except (ValueError, KeyError, TypeError) as exc:
            self._reply({"error": f"bad request body: {exc}"}, 400)
            return
        try:
            self._reply(self.service.ingest(names, seqs))
        except ValueError as exc:
            # Refused ingests (e.g. a cross-scheme delta against the
            # session's seeding scheme) are a client-state conflict, not a
            # server fault.
            self._reply({"error": str(exc)}, 409)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply({"error": str(exc)}, 500)


def make_server(service: AssemblyService, host: str | None = None,
                port: int | None = None) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``service``.

    ``port=0`` asks the OS for a free port (the test suite's mode); the
    bound address is on ``server.server_address``.
    """
    host = host if host is not None else service.config.host
    port = port if port is not None else service.config.port

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    return ThreadingHTTPServer((host, port), BoundHandler)
