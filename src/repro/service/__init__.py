"""Incremental assembly service: versioned states, delta refresh, HTTP API.

The batch pipeline answers one question once; this package keeps an
assembly *alive*: a long-running server accepts read batches over HTTP,
folds each batch into the current :class:`~repro.service.state.AssemblyState`
with an incremental refresh (new k-mers merged into the sorted SoA
histogram, delta candidate products over only the affected read pairs,
spliced R rows, a re-run transitive reduction), bumps the dataset version,
and serves overlap/contig/stats queries through a cache keyed on that
version.

Layers
------
``config``
    :class:`ServiceConfig` + the ``refresh_mode`` axis
    (``incremental | recompute``, mirroring ``align_impl``/``kmer_impl``).
``state``
    Versioned, copy-on-write :class:`AssemblyState` snapshots and the
    thread-safe :class:`SessionStore` holding the current one.
``incremental``
    The refresh engine: :func:`refresh` produces version ``v+1`` from
    version ``v`` plus a read batch, byte-identical to a from-scratch
    :func:`~repro.core.pipeline.run_pipeline` either way (``recompute``
    *is* the scratch run — the oracle the incremental path is pinned to).
``query_cache`` / ``server``
    LRU result cache keyed on ``(endpoint, params, dataset_version)`` and
    the stdlib ``http.server`` JSON API around it.
"""

from .config import (DEFAULT_REFRESH_MODE, REFRESH_MODE_ENV, REFRESH_MODES,
                     ServiceConfig, resolve_refresh_mode)
from .incremental import refresh
from .query_cache import QueryCache
from .server import (AssemblyService, BadBatch, RefreshFailed, make_server)
from .state import AssemblyState, SessionStore

__all__ = [
    "ServiceConfig", "REFRESH_MODES", "REFRESH_MODE_ENV",
    "DEFAULT_REFRESH_MODE", "resolve_refresh_mode",
    "AssemblyState", "SessionStore", "refresh",
    "QueryCache", "AssemblyService", "make_server",
    "BadBatch", "RefreshFailed",
]
