"""Version-keyed LRU cache for query results.

Every cache key embeds the dataset version the result was computed
against: ``(endpoint, sorted params, version)``.  A refresh therefore
never has to *flush* anything — queries against the new version simply
miss, and :meth:`QueryCache.invalidate_stale` sweeps entries of older
versions out eagerly so the LRU capacity is spent on live results.  This
is exactly what makes caching safe next to incremental updates: a stale
hit is impossible by construction, because stale entries are unreachable
under the new version's keys.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Mapping

__all__ = ["QueryCache"]


class QueryCache:
    """Thread-safe LRU mapping ``(endpoint, params, version) -> result``."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key(endpoint: str, params: Mapping[str, Any], version: int) -> tuple:
        return (endpoint, tuple(sorted(params.items())), version)

    def get(self, key: tuple):
        """The cached result, or ``None`` on a miss (LRU-promoting hits)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: tuple, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_stale(self, current_version: int) -> int:
        """Drop every entry computed against a version other than current."""
        with self._lock:
            stale = [k for k in self._entries if k[2] != current_version]
            for k in stale:
                del self._entries[k]
            self.invalidations += len(stale)
            return len(stale)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses, "evictions": self.evictions,
                    "invalidations": self.invalidations}
