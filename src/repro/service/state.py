"""Versioned assembly sessions: immutable state snapshots + their store.

Every ingested batch produces a brand-new :class:`AssemblyState` with
``version + 1`` — copy-on-write, never mutation, so a request handler that
grabbed version ``v`` keeps a fully consistent view (reads, tables, R, S,
contigs all from the same refresh) while the next batch commits ``v + 1``
behind it.  The arrays inside a state are shared with its successor
wherever the refresh left them untouched (old read codes, unchanged
histogram prefixes), which is what keeps snapshots cheap.

:class:`SessionStore` is the one mutable cell: it holds the current state
behind a lock and hands out whatever version was current at call time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.contigs import Contig
from ..core.string_graph import StringGraph
from ..dsparse.coomat import CooMat
from ..mpisim.tracker import CommTracker, StageTimer
from ..seqs.fasta import ReadSet
from ..seqs.kmer_counter import KmerTable

__all__ = ["AssemblyState", "SessionStore"]


def _empty_u64() -> np.ndarray:
    return np.empty(0, np.uint64)


def _empty_i64() -> np.ndarray:
    return np.empty(0, np.int64)


@dataclass(frozen=True)
class AssemblyState:
    """One immutable version of the live assembly.

    Beyond the user-facing products (``S``, ``contigs``) the state carries
    exactly the intermediates the incremental refresh needs to fold the
    next batch in without recomputation:

    * ``hist_keys``/``hist_counts`` — the exact global k-mer histogram
      (sorted), the mergeable form of the counting state; the reliable
      table is a pure filter of it.
    * ``occ_*`` — the first-window occurrence per (read, distinct canonical
      k-mer), sorted by (k-mer key, read), *independent* of reliability; A
      for any version is the occurrence table filtered through that
      version's reliable set, so admission churn never forces a rescan of
      old reads.
    * ``R`` — the pre-reduction overlap matrix, which delta refreshes
      splice rows into.
    * ``c_ri``/``c_rj`` — the strict-upper candidate pair list (sorted
      lexicographically), so ``nnz_c`` stays exact without re-forming the
      full ``A·Aᵀ`` pattern each refresh.
    * ``route_counts`` — the ``(n_reads, P)`` CountKmer routing census:
      per read, how many of its k-mer windows hash to each owner rank.  A
      read's row never changes, so the census grows by appending the
      batch's rows, and the CountKmer traffic replay becomes prefix-sum
      arithmetic instead of re-extracting every old read's k-mers.
    * ``scheme_id`` — the seeding scheme
      (:attr:`repro.seqs.seeding.SeedScheme.scheme_id`) every cached
      intermediate was extracted under.  Histogram, occurrence table, and
      census are all seed streams of that scheme, so a delta refresh under
      a *different* scheme would splice incompatible state — the refresh
      engine refuses cross-scheme deltas (recompute rebuilds and re-tags).
    """

    version: int
    reads: ReadSet
    hist_keys: np.ndarray
    hist_counts: np.ndarray
    table: KmerTable | None
    occ_key: np.ndarray
    occ_read: np.ndarray
    occ_pos: np.ndarray
    occ_flip: np.ndarray
    R: CooMat | None
    S: CooMat | None
    graph: StringGraph | None
    contigs: list[Contig]
    c_ri: np.ndarray
    c_rj: np.ndarray
    route_counts: np.ndarray
    counts: dict[str, int]
    tracker: CommTracker | None
    timer: StageTimer | None
    refresh_mode: str
    refresh_seconds: float = 0.0
    scheme_id: str = ""

    @classmethod
    def initial(cls) -> "AssemblyState":
        """Version 0: the empty session every service starts from."""
        return cls(
            version=0, reads=ReadSet([], []),
            hist_keys=_empty_u64(), hist_counts=_empty_i64(),
            table=None,
            occ_key=_empty_u64(), occ_read=_empty_i64(),
            occ_pos=_empty_i64(), occ_flip=_empty_i64(),
            R=None, S=None, graph=None, contigs=[],
            c_ri=_empty_i64(), c_rj=_empty_i64(),
            route_counts=np.empty((0, 0), np.int64),
            counts={"n_reads": 0, "n_kmers": 0, "nnz_a": 0, "nnz_c": 0,
                    "nnz_r": 0, "nnz_s": 0, "tr_rounds": 0},
            tracker=None, timer=None, refresh_mode="none")


class SessionStore:
    """Thread-safe holder of the current :class:`AssemblyState`.

    ``commit`` enforces the version discipline (each commit must advance
    the version by exactly one) so two racing refreshes cannot silently
    drop one another's batches; the service serializes ingests with its own
    lock and this check is the backstop.
    """

    def __init__(self, state: AssemblyState | None = None,
                 keep_versions: int = 4) -> None:
        self._lock = threading.Lock()
        self._state = state if state is not None else AssemblyState.initial()
        self._keep = max(1, keep_versions)
        self._history: list[AssemblyState] = [self._state]

    def current(self) -> AssemblyState:
        with self._lock:
            return self._state

    def commit(self, state: AssemblyState) -> AssemblyState:
        with self._lock:
            if state.version != self._state.version + 1:
                raise ValueError(
                    f"stale commit: version {state.version} on top of "
                    f"{self._state.version}")
            self._state = state
            self._history.append(state)
            del self._history[:-self._keep]
            return state

    def history(self) -> list[AssemblyState]:
        """The retained trailing versions, oldest first (current last)."""
        with self._lock:
            return list(self._history)
