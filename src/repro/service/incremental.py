"""Incremental refresh: fold a read batch into an AssemblyState.

:func:`refresh` takes version ``v`` plus a batch and produces version
``v + 1``, byte-identical to running the whole pipeline from scratch on
the concatenated reads — for *every* field the batch pipeline produces
(S, R, contigs, the sparsity counts, and the per-stage communication
records).  ``refresh_mode="recompute"`` *is* that scratch run, kept as
the oracle; ``"incremental"`` earns the speedup by never re-aligning a
pair whose candidate evidence is unchanged.

Why the incremental path is exact
---------------------------------

* **Counting.**  The state keeps the exact global k-mer histogram, which
  merges losslessly with the batch's histogram
  (:func:`~repro.seqs.kmer_counter.merge_histograms`); the reliable table
  is a pure filter of it (:func:`~repro.seqs.kmer_counter.
  table_from_histogram` — provably equal to the two-pass Bloom counter's
  output).  Multiplicities only grow, so a key's reliability changes in
  exactly two ways: it enters ``[lower, upper]`` from below (**added**)
  or leaves above ``upper`` (**removed**).

* **A.**  The state keeps the reliability-independent occurrence table —
  first-window occurrence per (read, distinct canonical k-mer), sorted by
  (key, read) — so A for the new version is a filter of the merged table
  through the new reliable set.  The batch's occurrences splice in by
  sorted merge; new read indices exceed all old ones, so
  ``searchsorted(..., side="right")`` keeps ties in (key, read) order.

* **C.**  A pair's C entry is the ordered reduce over its shared reliable
  columns, and relabeling columns (sorted keys → sorted ids) preserves
  that order.  A pair's entry can therefore only change if it gains a
  shared **added** column, loses a shared **removed** column, or involves
  a **new** read — the affected set ``P₁ ∪ P₂ ∪ P₃``, computed by three
  scipy pattern products.  The delta product runs the *full* rows of A
  for the affected row coordinates against the full Aᵀ under the
  affected-pair mask, so each surviving entry reduces over exactly the
  same ordered product list as the monolithic product (PR 6 pinned
  masked ≡ unmasked ∩ mask).

* **R.**  Alignment is per-pair and deterministic, so R is determined by
  the set of C entries: drop old rows whose unordered pair is affected,
  append the delta alignment's rows, re-canonicalize.  An old pair
  outside the affected set still shares an unchanged reliable column
  (else it lost every shared column and is in ``P₂``), so it stays in C
  with an identical entry — keeping its R rows verbatim is exact.

* **S / contigs.**  Transitive reduction is re-run in full on the real
  communicator — it is global (any edge can unlock a reduction anywhere)
  and cheap relative to alignment, and running it for real makes S and
  the ``TrReduction`` records identical by construction.

* **Tracker.**  The other stages' traffic is *replayed* onto a fresh
  tracker from the merged state: the two ``CountKmer`` alltoallv passes
  and the reliable-set allgather (payload sizes come from the cached
  per-read routing census, so old reads' k-mers are never re-extracted),
  ``CreateSpMat`` entry routing, ``ExchangeRead``, and SUMMA's broadcast
  schedule (a pure function of the operand block sizes —
  :func:`~repro.dsparse.summa.summa_comm_replay`).  Replays cost array
  scans, not products.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
import scipy.sparse as sp

from ..align.batch import resolve_align_impl
from ..core.contigs import extract_contigs
from ..core.overlap import (align_candidates, charge_a_routing,
                            exchange_reads)
from ..core.pipeline import PipelineConfig, run_pipeline
from ..core.semirings import PositionsSemiring, R_NFIELDS
from ..core.string_graph import StringGraph
from ..core.transitive_reduction import transitive_reduction
from ..dsparse.backend import get_backend
from ..dsparse.coomat import CooMat
from ..dsparse.distmat import DistMat
from ..dsparse.masked import resolve_spgemm_impl
from ..dsparse.summa import summa, summa_comm_replay
from ..exec import get_executor, resolve_workers
from ..mpisim.comm import SimComm
from ..mpisim.grid import ProcessGrid2D, block_bounds
from ..mpisim.tracker import CommTracker, StageTimer
from ..resilience.faults import maybe_fault
from ..seqs.fasta import ReadSet
from ..seqs.kmer_counter import (kmer_histogram, merge_histograms,
                                 reliable_upper_bound, table_from_histogram)
from ..seqs.kmers import splitmix64
from ..seqs.seeding import FullKScheme, SeedScheme, make_scheme
from .config import ServiceConfig, resolve_refresh_mode
from .state import AssemblyState

__all__ = ["refresh", "batch_occurrences"]


def _resolved_upper(pcfg: PipelineConfig) -> int:
    if pcfg.kmer_upper is not None:
        return pcfg.kmer_upper
    return reliable_upper_bound(pcfg.depth_hint, pcfg.error_hint, pcfg.k)


def _scheme_of(pcfg: PipelineConfig) -> SeedScheme:
    """The seeding scheme a pipeline config resolves to."""
    return make_scheme(pcfg.seed_mode, pcfg.k, pcfg.seed_w)


def batch_occurrences(reads: ReadSet, k: int, row_offset: int = 0,
                      scheme: SeedScheme | None = None
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """First-window occurrence table of a read set, sorted by (key, read).

    One ``(key, read, pos, flip)`` row per (read, distinct canonical seed
    k-mer), keeping the earliest window — the dedup rule of the A scan
    (:func:`~repro.core.overlap.build_a_matrix`), applied *before* any
    reliability filter.  Reliability is a property of the k-mer value, so
    filtering the deduped table through a reliable set later yields
    exactly the A entries that scan would emit.  ``row_offset`` shifts
    read indices into the combined set's coordinates.  The splice logic is
    scheme-agnostic: a sketched scheme just feeds fewer ``(key, read,
    pos, flip)`` rows through the same sort/dedup.
    """
    scheme = scheme if scheme is not None else FullKScheme(k)
    canon, ridx, pos, flip = scheme.seeds_of_block(*reads.soa())
    if canon.size == 0:
        return (np.empty(0, np.uint64), np.empty(0, np.int64),
                np.empty(0, np.int64), np.empty(0, np.int64))
    order = np.lexsort((pos, ridx, canon))
    canon, ridx = canon[order], ridx[order]
    head = np.empty(canon.shape[0], dtype=bool)
    head[0] = True
    head[1:] = (canon[1:] != canon[:-1]) | (ridx[1:] != ridx[:-1])
    return (canon[head], ridx[head].astype(np.int64) + row_offset,
            pos[order][head].astype(np.int64),
            flip[order][head].astype(np.int64))


def _in_sorted(sorted_arr: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted array, as a boolean mask."""
    if sorted_arr.shape[0] == 0 or values.shape[0] == 0:
        return np.zeros(values.shape[0], dtype=bool)
    idx = np.minimum(np.searchsorted(sorted_arr, values),
                     sorted_arr.shape[0] - 1)
    return sorted_arr[idx] == values


def _a_entries(occ_key, occ_read, occ_pos, occ_flip, table
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A's global COO entries: the occurrence table filtered to ``table``."""
    col = table.lookup(occ_key)
    ok = col >= 0
    return occ_read[ok], col[ok], occ_pos[ok], occ_flip[ok]


def _pair_product(rA, cA, rB, cB, n: int, m: int) -> np.ndarray:
    """Packed strict-upper pairs ``lo·n + hi`` with a shared column.

    ``(i, j)`` is emitted when row ``i`` of the left pattern and row ``j``
    of the right pattern share a column — one scipy pattern product,
    canonicalized to unordered off-diagonal pairs.
    """
    if rA.shape[0] == 0 or rB.shape[0] == 0 or m == 0:
        return np.empty(0, np.int64)
    left = sp.csr_matrix((np.ones(rA.shape[0], np.int64), (rA, cA)),
                         shape=(n, m))
    right = sp.csr_matrix((np.ones(rB.shape[0], np.int64), (rB, cB)),
                          shape=(n, m))
    prod = (left @ right.T).tocoo()
    i = prod.row.astype(np.int64)
    j = prod.col.astype(np.int64)
    off = i != j
    i, j = i[off], j[off]
    return np.unique(np.minimum(i, j) * np.int64(n) + np.maximum(i, j))


def _affected_pairs(arow, acol, state: AssemblyState, table, n: int,
                    n_old: int) -> np.ndarray:
    """``P₁ ∪ P₂ ∪ P₃``: the pairs whose C entry may differ from version v.

    ``P₁`` — pairs sharing an **added** reliable column (count grew into
    range) in the new A; ``P₂`` — pairs sharing a **removed** column
    (count grew past ``upper``) in the *old* A; ``P₃`` — pairs involving a
    new read.  Counts only grow, so added/removed are disjoint and no
    other pair's ordered shared-column list changes.
    """
    old_table = state.table
    added_keys = table.kmers[old_table.lookup(table.kmers) < 0]
    removed_keys = old_table.kmers[table.lookup(old_table.kmers) < 0]

    parts = []
    if added_keys.shape[0]:
        added_cols = table.lookup(added_keys)
        sel = _in_sorted(added_cols, acol)
        compact = np.searchsorted(added_cols, acol[sel])
        parts.append(_pair_product(arow[sel], compact, arow[sel], compact,
                                   n, added_cols.shape[0]))
    if removed_keys.shape[0]:
        sel = _in_sorted(removed_keys, state.occ_key)
        r2 = state.occ_read[sel]
        c2 = np.searchsorted(removed_keys, state.occ_key[sel])
        parts.append(_pair_product(r2, c2, r2, c2, n,
                                   removed_keys.shape[0]))
    new_rows = arow >= n_old
    if new_rows.any():
        parts.append(_pair_product(arow[new_rows], acol[new_rows],
                                   arow, acol, n, len(table)))
    if not parts:
        return np.empty(0, np.int64)
    return np.unique(np.concatenate(parts))


def _route_census(reads: ReadSet, k: int, P: int,
                  scheme: SeedScheme | None = None) -> np.ndarray:
    """``(n_reads, P)`` counts of each read's seed k-mers per hash owner.

    Row ``r`` is a pure function of read ``r``'s bases (owner =
    ``splitmix64(canonical seed) mod P``; schemes are per-read pure), so
    censuses concatenate across batches and a version's census is its
    predecessor's rows plus the batch's.
    """
    scheme = scheme if scheme is not None else FullKScheme(k)
    n = len(reads)
    census = np.zeros((n, P), np.int64)
    if n == 0:
        return census
    canon, ridx, _pos, _flip = scheme.seeds_of_block(*reads.soa())
    if canon.size:
        dst = (splitmix64(canon) % np.uint64(P)).astype(np.int64)
        census = np.bincount(ridx.astype(np.int64) * np.int64(P) + dst,
                             minlength=n * P).reshape(n, P)
    return census


def _replay_count_kmers(reads: ReadSet, route_counts: np.ndarray, table,
                        comm: SimComm, batches: int,
                        scheme: SeedScheme | None = None) -> None:
    """Re-issue ``CountKmer``'s exact traffic from the routing census.

    Both counting passes ship the same per-rank seed streams (uint64
    keys) in the same ``batches`` round slices to the same hash owners,
    and the collective charges depend only on the per-destination payload
    *sizes* — which the census yields by prefix sums over each rank's
    read block.  A round boundary that falls mid-read needs that one
    read's within-read destination sequence, so only boundary reads (at
    most ``batches - 1`` per rank) ever get their seeds re-extracted —
    through the same ``scheme`` the census was built with, so the prefix
    slices land on the same keys.  The final reliable-dictionary
    allgather ships each owner's reliable keys (owner =
    ``splitmix64(key) mod P``).
    """
    scheme = scheme if scheme is not None else FullKScheme(table.k)
    P = comm.nprocs
    bounds = block_bounds(len(reads), P)
    per_rank: list[list[np.ndarray]] = []
    for p in range(P):
        blo, bhi = int(bounds[p]), int(bounds[p + 1])
        rc = route_counts[blo:bhi]
        cum = np.zeros(rc.shape[0] + 1, np.int64)
        np.cumsum(rc.sum(axis=1), out=cum[1:])
        cumdst = np.zeros((rc.shape[0] + 1, P), np.int64)
        np.cumsum(rc, axis=0, out=cumdst[1:])
        nkm = int(cum[-1])

        prefix_cache: dict[int, np.ndarray] = {}

        def counts_at(x: int) -> np.ndarray:
            """Destination counts of the rank stream's first ``x`` keys."""
            got = prefix_cache.get(x)
            if got is not None:
                return got
            i = int(np.searchsorted(cum, x, side="right")) - 1
            within = x - int(cum[i])
            if within == 0:
                res = cumdst[i]
            else:  # boundary splits read blo + i: count its seed prefix
                canon = scheme.seeds_of_block(
                    *reads.soa_block(blo + i, blo + i + 1))[0]
                dst = (splitmix64(canon[:within]) %
                       np.uint64(P)).astype(np.int64)
                res = cumdst[i] + np.bincount(dst, minlength=P)
            prefix_cache[x] = res
            return res

        rounds = []
        for b in range(batches):
            lo, hi = (nkm * b) // batches, (nkm * (b + 1)) // batches
            rounds.append(counts_at(hi) - counts_at(lo))
        per_rank.append(rounds)
    # Payload contents never reach the charge accounting — only nbytes do —
    # so uninitialized buffers of the right length and dtype are exact.
    for _pass in range(2):
        for b in range(batches):
            send = [[np.empty(int(per_rank[p][b][q]), np.uint64)
                     for q in range(P)] for p in range(P)]
            comm.alltoallv(send, stage="CountKmer")
    owner = (splitmix64(table.kmers) % np.uint64(P)).astype(np.int64)
    comm.allgather([table.kmers[owner == p] for p in range(P)],
                   stage="CountKmer")


def _bumped_empty(state: AssemblyState, mode: str) -> AssemblyState:
    empty = AssemblyState.initial()
    return replace(empty, version=state.version + 1, refresh_mode=mode)


def _counts(n, m, nnz_a, nnz_c, nnz_r, nnz_s, rounds) -> dict[str, int]:
    return {"n_reads": int(n), "n_kmers": int(m), "nnz_a": int(nnz_a),
            "nnz_c": int(nnz_c), "nnz_r": int(nnz_r), "nnz_s": int(nnz_s),
            "tr_rounds": int(rounds)}


def _recompute(state: AssemblyState, batch: ReadSet, pcfg: PipelineConfig
               ) -> AssemblyState:
    """The oracle: scratch pipeline run + derivation of the service layers."""
    combined = state.reads.concat(batch)
    n = len(combined)
    if n == 0:
        return _bumped_empty(state, "recompute")
    result = run_pipeline(combined, pcfg)
    k = pcfg.k
    scheme = _scheme_of(pcfg)
    hist_keys, hist_counts = kmer_histogram(combined, k, scheme=scheme)
    table = table_from_histogram(hist_keys, hist_counts, k, lower=2,
                                 upper=_resolved_upper(pcfg))
    occ = batch_occurrences(combined, k, scheme=scheme)
    arow, acol, _apos, _aflip = _a_entries(*occ, table)
    c_pack = _pair_product(arow, acol, arow, acol, n, len(table))
    graph = result.string_graph
    return AssemblyState(
        version=state.version + 1, reads=combined,
        hist_keys=hist_keys, hist_counts=hist_counts, table=table,
        occ_key=occ[0], occ_read=occ[1], occ_pos=occ[2], occ_flip=occ[3],
        R=result.R, S=result.S, graph=graph,
        contigs=extract_contigs(graph),
        c_ri=c_pack // np.int64(n), c_rj=c_pack % np.int64(n),
        route_counts=_route_census(combined, k, pcfg.nprocs,
                                   scheme=scheme),
        counts=_counts(n, result.n_kmers, result.nnz_a, result.nnz_c,
                       result.nnz_r, result.nnz_s, result.tr_rounds),
        tracker=result.tracker, timer=result.timer,
        refresh_mode="recompute", scheme_id=scheme.scheme_id)


def _incremental(state: AssemblyState, batch: ReadSet,
                 pcfg: PipelineConfig) -> AssemblyState:
    """Delta refresh of a non-empty state (see the module docstring)."""
    k = pcfg.k
    scheme = _scheme_of(pcfg)
    n_old = len(state.reads)
    combined = state.reads.concat(batch)
    n = len(combined)
    P = pcfg.nprocs
    backend = get_backend(pcfg.backend)
    grid = ProcessGrid2D(P)
    tracker = CommTracker(P)
    comm = SimComm(P, tracker)
    # Delta products run against a throwaway communicator: their traffic is
    # *not* the refreshed dataset's — the replays below charge that.
    shadow = SimComm(P, CommTracker(P))
    timer = StageTimer()

    # Counting state: histogram merge, reliable filter, occurrence splice.
    bk, bc = kmer_histogram(batch, k, scheme=scheme)
    hist_keys, hist_counts = merge_histograms(state.hist_keys,
                                              state.hist_counts, bk, bc)
    table = table_from_histogram(hist_keys, hist_counts, k, lower=2,
                                 upper=_resolved_upper(pcfg))
    nk, nr, npos, nflip = batch_occurrences(batch, k, row_offset=n_old,
                                            scheme=scheme)
    at = np.searchsorted(state.occ_key, nk, side="right")
    occ_key = np.insert(state.occ_key, at, nk)
    occ_read = np.insert(state.occ_read, at, nr)
    occ_pos = np.insert(state.occ_pos, at, npos)
    occ_flip = np.insert(state.occ_flip, at, nflip)

    arow, acol, apos, aflip = _a_entries(occ_key, occ_read, occ_pos,
                                         occ_flip, table)
    m = len(table)
    aff = _affected_pairs(arow, acol, state, table, n, n_old)

    if state.route_counts.shape == (n_old, P):
        route_counts = np.vstack([state.route_counts,
                                  _route_census(batch, k, P,
                                                scheme=scheme)])
    else:  # census missing or built for a different grid: rebuild once
        route_counts = _route_census(combined, k, P, scheme=scheme)

    A_full = DistMat.from_coo((n, m), grid, arow, acol,
                              np.stack([apos, aflip], axis=1))
    At = A_full.transpose(backend=backend)

    # Traffic replays for the stages the delta path skips (TrReduction runs
    # for real below and charges itself).
    _replay_count_kmers(combined, route_counts, table, comm,
                        pcfg.kmer_batches, scheme=scheme)
    charge_a_routing(arow, acol, n, m, grid, comm)
    exchange_reads(combined, grid, comm)
    summa_comm_replay(A_full, At, comm, "SpGEMM")

    old_r = state.R
    with get_executor(pcfg.executor, resolve_workers(pcfg.workers)) as ex:
        if aff.shape[0]:
            lo, hi = aff // np.int64(n), aff % np.int64(n)
            rows_aff = np.unique(lo)
            sel = _in_sorted(rows_aff, arow)
            A_aff = DistMat.from_coo(
                (n, m), grid, arow[sel], acol[sel],
                np.stack([apos[sel], aflip[sel]], axis=1))
            mask = DistMat.from_coo((n, n), grid, lo, hi,
                                    np.ones((lo.shape[0], 1), np.int64))
            Cd = summa(A_aff, At, PositionsSemiring(), shadow, "SpGEMM",
                       timer, backend=backend, executor=ex, mask=mask)
            Rd = align_candidates(Cd, combined, k, shadow, timer,
                                  mode=pcfg.align_mode,
                                  scoring=pcfg.scoring, filt=pcfg.filt,
                                  fuzz=pcfg.fuzz, executor=ex,
                                  impl=resolve_align_impl(pcfg.align_impl)
                                  ).to_global()
            cd_pack = Cd.to_global()
            cd_pack = cd_pack.row * np.int64(n) + cd_pack.col
        else:
            Rd = CooMat.empty((n, n), R_NFIELDS)
            cd_pack = np.empty(0, np.int64)

        # R splice: drop affected pairs' old rows, append the delta's.
        if old_r is not None and old_r.nnz:
            opack = np.minimum(old_r.row, old_r.col) * np.int64(n) + \
                np.maximum(old_r.row, old_r.col)
            keep = ~_in_sorted(aff, opack)
            r_row = np.concatenate([old_r.row[keep], Rd.row])
            r_col = np.concatenate([old_r.col[keep], Rd.col])
            r_vals = np.vstack([old_r.vals[keep], Rd.vals])
        else:
            r_row, r_col, r_vals = Rd.row, Rd.col, Rd.vals
        R_global = CooMat((n, n), r_row, r_col, r_vals)

        # Candidate-pair bookkeeping (nnz_c without re-forming A·Aᵀ).
        opc = state.c_ri * np.int64(n) + state.c_rj
        c_pack = np.unique(np.concatenate([opc[~_in_sorted(aff, opc)],
                                           cd_pack]))

        R_dist = DistMat.from_coo((n, n), grid, R_global.row, R_global.col,
                                  R_global.vals)
        tr = transitive_reduction(
            R_dist, comm, timer, fuzz=pcfg.fuzz,
            max_rounds=pcfg.max_tr_rounds, backend=backend, executor=ex,
            spgemm_impl=resolve_spgemm_impl(pcfg.spgemm_impl))

    S_global = tr.S.to_global()
    graph = StringGraph.from_coomat(S_global)
    return AssemblyState(
        version=state.version + 1, reads=combined,
        hist_keys=hist_keys, hist_counts=hist_counts, table=table,
        occ_key=occ_key, occ_read=occ_read, occ_pos=occ_pos,
        occ_flip=occ_flip,
        R=R_global, S=S_global, graph=graph,
        contigs=extract_contigs(graph),
        c_ri=c_pack // np.int64(n), c_rj=c_pack % np.int64(n),
        route_counts=route_counts,
        counts=_counts(n, m, arow.shape[0], c_pack.shape[0],
                       R_global.nnz, S_global.nnz, tr.rounds),
        tracker=tracker, timer=timer, refresh_mode="incremental",
        scheme_id=scheme.scheme_id)


def refresh(state: AssemblyState, batch: ReadSet,
            config: ServiceConfig | None = None,
            mode: str | None = None) -> AssemblyState:
    """Version ``v + 1`` from version ``v`` plus a read batch.

    ``mode`` overrides the config's ``refresh_mode`` (both resolve through
    :func:`~repro.service.config.resolve_refresh_mode`, so ``"auto"``
    honors ``REPRO_REFRESH_MODE``).  Whatever the pipeline config's
    ``overlap_mode`` says, the candidate path is monolithic — the blocked
    mode strip-mines a batch-sized product that the incremental engine
    never forms.  An empty initial state always bootstraps through the
    scratch run (there is nothing to be incremental against).

    Cross-scheme deltas are refused: the state's cached histogram,
    occurrence table, and routing census are seed streams of the scheme
    tagged in ``state.scheme_id``, so an incremental refresh under a
    different ``seed_mode``/``seed_w`` raises ``ValueError`` instead of
    splicing incompatible state.  A ``recompute`` refresh rebuilds from
    scratch under the new scheme and re-tags the state.
    """
    config = config if config is not None else ServiceConfig()
    mode = resolve_refresh_mode(mode if mode is not None
                                else config.refresh_mode)
    # Pin the in-memory read backend too: the service's versioned states
    # extend/concat their ReadSets across refreshes, and a per-refresh
    # store rebuild would put an ingest-sized disk write on every delta.
    pcfg = replace(config.pipeline, overlap_mode="monolithic",
                   read_store="inmem")
    # Injection point for the chaos suite: fires before any new state is
    # built, so a failed refresh leaves nothing half-made to roll back.
    maybe_fault("service.refresh")
    t0 = time.perf_counter()
    if len(state.reads) == 0 and len(batch) == 0:
        new = _bumped_empty(state, mode)
    elif mode == "recompute" or len(state.reads) == 0:
        new = _recompute(state, batch, pcfg)
    else:
        scheme_id = _scheme_of(pcfg).scheme_id
        if state.scheme_id and state.scheme_id != scheme_id:
            raise ValueError(
                f"cross-scheme delta refused: state v{state.version} was "
                f"built with seeding scheme {state.scheme_id!r} but the "
                f"config resolves to {scheme_id!r}; refresh with "
                f"mode='recompute' to rebuild under the new scheme")
        new = _incremental(state, batch, pcfg)
    return replace(new, refresh_seconds=time.perf_counter() - t0)
