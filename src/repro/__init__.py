"""repro — reproduction of diBELLA 2D (IPDPS 2021).

Parallel string graph construction and transitive reduction for de novo
genome assembly, built on 2D distributed sparse matrices with custom
semirings over a simulated distributed-memory runtime.

Quick start::

    from repro import PipelineConfig, run_pipeline
    from repro.seqs import GenomeSpec, ReadSimSpec, simulate_reads

    genome, reads, layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=50_000, seed=0), depth=20))
    result = run_pipeline(reads, PipelineConfig(k=17, nprocs=4))
    print(result.string_graph, result.tr_rounds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (AlignmentFilter, Contig, PipelineConfig, PipelineResult,
                   STAGES, StringGraph, best_overlap_cleaning,
                   extract_contigs, run_pipeline,
                   run_pipeline_from_fasta, transitive_reduction)
from .mpisim import CORI_HASWELL, MACHINES, SUMMIT_CPU

__version__ = "1.0.0"

__all__ = [
    "AlignmentFilter", "Contig", "PipelineConfig", "PipelineResult",
    "STAGES", "StringGraph", "best_overlap_cleaning",
    "extract_contigs", "run_pipeline",
    "run_pipeline_from_fasta", "transitive_reduction",
    "CORI_HASWELL", "MACHINES", "SUMMIT_CPU",
    "__version__",
]
