"""Seed-and-extend x-drop pairwise alignment.

diBELLA 2D runs a seed-and-extend alignment (SeqAn's x-drop) on every
candidate pair from ``C`` (paper Section IV-D): starting from a shared k-mer
seed, extend left and right with banded dynamic programming and stop a
direction once its running best score drops more than ``x`` below the best
seen.  The returned score and updated coordinates feed the score threshold
prune and, crucially, the overhang/orientation computation of the transitive
reduction.

The DP here processes one antidiagonal at a time as a numpy vector over the
surviving cell window, so cost is O(extension · band) with no Python-level
cell loop.  A cheap *chain* mode (:func:`chain_extend`) estimates
coordinates from the seed diagonal alone — the same role minimap2's
alignment-free scoring plays — and is the default for the large benchmark
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Scoring", "AlignmentResult", "xdrop_extend", "xdrop_extend_dp",
           "seed_extend_align", "chain_extend", "LV_NEG", "SNAKE_CHUNK"]

_NEG = np.int64(-(2 ** 40))

#: "Dead cell" sentinel of the greedy LV engines: far below any reachable
#: furthest point or match count, far above int64 overflow even after the
#: recurrence adds small offsets.  Shared with the batched 2D engine
#: (:mod:`repro.align.batch`) so both prune on identical values.
LV_NEG = np.int64(-(2 ** 50))

#: Characters compared per snake-slide gulp (both engines).
SNAKE_CHUNK = 16


@dataclass(frozen=True)
class Scoring:
    """Alignment scoring scheme (defaults follow BELLA: 1/-1/-1, x=50)."""

    match: int = 1
    mismatch: int = -1
    gap: int = -1
    xdrop: int = 50


@dataclass
class AlignmentResult:
    """Outcome of a seed-and-extend alignment of reads *a* and *b*.

    ``(ba, ea)`` / ``(bb, eb)`` are the half-open aligned ranges on *a* and
    on the *oriented* *b* (reverse-complemented when ``strand == 1``).
    """

    score: int
    ba: int
    ea: int
    bb: int
    eb: int
    strand: int


def xdrop_extend(s: np.ndarray, t: np.ndarray, sc: Scoring
                 ) -> tuple[int, int, int]:
    """Extend an alignment from position 0 of both sequences, rightward.

    Returns ``(best_score, ext_s, ext_t)``: the best score over all
    alignments starting at the origin and the extension lengths on ``s`` and
    ``t`` achieving it.  Diagonals whose running score falls below
    ``best - xdrop`` are pruned; the scan ends when no diagonal survives.

    This is the fast engine: a greedy furthest-reaching diagonal scheme
    (Landau–Vishkin / Myers O(ND)) where iteration ``e`` advances every live
    diagonal by one edit and then slides its exact-match snake, all
    vectorized across diagonals.  For the unit scoring scheme
    (match ≥ 0 ≥ mismatch/gap) the greedy furthest points dominate, so the
    returned score matches the exact DP (:func:`xdrop_extend_dp`, kept as
    the reference oracle).
    """
    return _xdrop_extend_lv(s, t, sc)


def _slide_snakes(s: np.ndarray, t: np.ndarray, F: np.ndarray,
                  diag: np.ndarray, live: np.ndarray) -> np.ndarray:
    """Advance furthest points along exact-match runs, vectorized.

    ``F[d]`` is the furthest ``i`` on diagonal ``diag[d]`` (``j = i - diag``).
    Compares ``SNAKE_CHUNK`` characters at a time for all live diagonals;
    only diagonals that matched a full chunk iterate again, so the expected
    number of rounds is the longest snake / chunk.
    """
    m, n = s.shape[0], t.shape[0]
    ext = np.zeros_like(F)
    active = live.copy()
    offs = np.arange(SNAKE_CHUNK, dtype=np.int64)
    while active.any():
        idx = np.flatnonzero(active)
        i0 = F[idx] + ext[idx]
        j0 = i0 - diag[idx]
        # Remaining run room on each diagonal.
        room = np.minimum(m - i0, n - j0)
        cap = np.minimum(room, SNAKE_CHUNK)
        si = np.minimum(i0[:, None] + offs, m - 1)
        tj = np.minimum(j0[:, None] + offs, n - 1)
        eq = (s[si] == t[tj]) & (offs < cap[:, None])
        # Length of the leading all-match run within the chunk.
        run = np.where(eq.all(axis=1), cap,
                       np.argmin(np.where(offs < cap[:, None], eq, False),
                                 axis=1))
        # argmin on an all-False row returns 0, which is correct (no match).
        run = np.where(cap > 0, run, 0)
        ext[idx] += run
        cont = (run == SNAKE_CHUNK) & (room > SNAKE_CHUNK)
        active[:] = False
        active[idx[cont]] = True
    return ext


def _xdrop_extend_lv(s: np.ndarray, t: np.ndarray, sc: Scoring
                     ) -> tuple[int, int, int]:
    """Greedy O(ND) x-drop extension (see :func:`xdrop_extend`)."""
    m, n = int(s.shape[0]), int(t.shape[0])
    if m == 0 or n == 0:
        return 0, 0, 0
    NEG = LV_NEG
    # Diagonal window [dlo, dhi] (d = i - j), arrays indexed d - dlo.
    dlo = dhi = 0
    F = np.array([0], dtype=np.int64)      # furthest i per diagonal
    M = np.array([0], dtype=np.int64)      # matches along that path
    diag = np.array([0], dtype=np.int64)
    live = np.array([True])
    ext = _slide_snakes(s, t, F, diag, live)
    F = F + ext
    M = M + ext
    best = int(M[0]) * sc.match
    best_i, best_j = int(F[0]), int(F[0])
    if F[0] >= m or F[0] >= n:
        return best, best_i, best_j
    max_edits = m + n
    for _e in range(1, max_edits + 1):
        # Grow the window by one diagonal on each side.
        dlo -= 1
        dhi += 1
        size = dhi - dlo + 1
        diag = np.arange(dlo, dhi + 1, dtype=np.int64)
        Fp = np.full(size, NEG, dtype=np.int64)
        Mp = np.full(size, NEG, dtype=np.int64)
        Fp[1:-1] = F
        Mp[1:-1] = M
        # Candidates: substitution (same d, i+1), insertion in s (from d-1,
        # i+1), deletion (from d+1, i unchanged).  Manual 3-way max keeps the
        # M values paired with their F winners without argmax/gather.
        f_sub = Fp + 1
        f_ins = np.empty_like(Fp); f_ins[0] = NEG; f_ins[1:] = Fp[:-1] + 1
        f_del = np.empty_like(Fp); f_del[-1] = NEG; f_del[:-1] = Fp[1:]
        m_ins = np.empty_like(Mp); m_ins[0] = NEG; m_ins[1:] = Mp[:-1]
        m_del = np.empty_like(Mp); m_del[-1] = NEG; m_del[:-1] = Mp[1:]
        F = f_sub
        M = Mp.copy()
        take = f_ins > F
        F = np.where(take, f_ins, F)
        M = np.where(take, m_ins, M)
        take = f_del > F
        F = np.where(take, f_del, F)
        M = np.where(take, m_del, M)
        # Bounds: i <= m and j = i - d <= n; kill out-of-range diagonals.
        jv = F - diag
        valid = (F >= 0) & (F <= m) & (jv >= 0) & (jv <= n) & (M > NEG // 2)
        F = np.where(valid, F, NEG)
        live = valid.copy()
        if live.any():
            ext = _slide_snakes(s, t, np.where(live, F, 0), diag, live)
            F = np.where(live, F + ext, F)
            M = np.where(live, M + ext, M)
        # Score = matches·match + edits·penalty (every edit is one mismatch
        # or one gap; with equal penalties the score is exact, otherwise a
        # lower bound using the worse penalty).
        penalty = min(sc.mismatch, sc.gap)
        scores = np.where(live, M * sc.match + _e * penalty, NEG)
        sbest = int(scores.max(initial=NEG))
        if sbest > best:
            # Tie-break equal scores toward the farthest-reaching cell
            # (largest i + j), matching the exact DP's endpoint choice.
            ties = np.flatnonzero(scores == sbest)
            reach = 2 * F[ties] - diag[ties]
            kbest = int(ties[int(np.argmax(reach))])
            best = sbest
            best_i = int(F[kbest])
            best_j = int(F[kbest] - diag[kbest])
        # X-drop prune.
        live &= scores >= best - sc.xdrop
        if not live.any():
            break
        F = np.where(live, F, NEG)
        M = np.where(live, M, NEG)
        # Shrink the window to the live span to keep iterations cheap.
        alive_idx = np.flatnonzero(live)
        lo, hi = int(alive_idx[0]), int(alive_idx[-1])
        F = F[lo:hi + 1]
        M = M[lo:hi + 1]
        dlo, dhi = dlo + lo, dlo + hi
        # Reached an end of either sequence on every live diagonal: the
        # x-drop will terminate shortly; rely on bounds pruning above.
    return best, best_i, best_j


def xdrop_extend_dp(s: np.ndarray, t: np.ndarray, sc: Scoring
                    ) -> tuple[int, int, int]:
    """Exact antidiagonal DP x-drop extension (reference oracle).

    Same contract as :func:`xdrop_extend`; O(len·band) with a Python-level
    antidiagonal loop, used in tests and the SpGEMM/alignment ablation.
    """
    m, n = s.shape[0], t.shape[0]
    if m == 0 or n == 0:
        return 0, 0, 0
    best = 0
    best_i = 0
    best_d = 0
    # Window of surviving i values on the current antidiagonal d (= i + j).
    lo, hi = 0, 0  # inclusive bounds of i on antidiag d
    prev = np.zeros(1, dtype=np.int64)          # scores on antidiag d
    prev2 = np.empty(0, dtype=np.int64)         # scores on antidiag d-1
    plo, p2lo = 0, 0
    d = 0
    while True:
        d += 1
        nlo = max(lo, d - n)       # j = d - i <= n
        nhi = min(hi + 1, m)       # i <= m
        if nlo > nhi:
            break
        size = nhi - nlo + 1
        cand = np.full(size, _NEG, dtype=np.int64)
        ii = np.arange(nlo, nhi + 1, dtype=np.int64)

        # Gap from (d-1, i): consume t char (j grows).
        src = ii - plo
        okg = (src >= 0) & (src < prev.shape[0]) & (ii <= m) & (d - ii >= 1)
        np.maximum(cand, np.where(okg, prev[np.clip(src, 0, prev.shape[0] - 1)]
                                  + sc.gap, _NEG), out=cand)
        # Gap from (d-1, i-1): consume s char.
        src = ii - 1 - plo
        okg = (src >= 0) & (src < prev.shape[0]) & (ii >= 1)
        np.maximum(cand, np.where(okg, prev[np.clip(src, 0, prev.shape[0] - 1)]
                                  + sc.gap, _NEG), out=cand)
        # Diagonal from (d-2, i-1): consume one char of each.
        if d >= 2 and prev2.shape[0]:
            src = ii - 1 - p2lo
            okd = (src >= 0) & (src < prev2.shape[0]) & (ii >= 1) & (d - ii >= 1)
            si = np.clip(ii - 1, 0, m - 1)
            tj = np.clip(d - ii - 1, 0, n - 1)
            sub = np.where(s[si] == t[tj], sc.match, sc.mismatch)
            np.maximum(cand, np.where(
                okd, prev2[np.clip(src, 0, prev2.shape[0] - 1)] + sub, _NEG),
                out=cand)
        elif d == 1:
            pass  # only gap moves from the origin

        # Base case for d == 1 handled by gap moves from prev=[0].
        dbest = int(cand.max(initial=_NEG))
        if dbest > best:
            k = int(cand.argmax())
            best = dbest
            best_i = nlo + k
            best_d = d
        # X-drop prune.
        alive = cand >= best - sc.xdrop
        if not alive.any():
            break
        first = int(np.argmax(alive))
        last = size - 1 - int(np.argmax(alive[::-1]))
        prev2, p2lo = prev, plo
        prev = cand[first:last + 1]
        plo = nlo + first
        lo, hi = nlo + first, nlo + last
        if lo > m or (d - hi) > n:
            break
    return best, best_i, best_d - best_i


def seed_extend_align(a: np.ndarray, b: np.ndarray, seed_a: int, seed_b: int,
                      k: int, strand: int, sc: Scoring | None = None
                      ) -> AlignmentResult:
    """Full seed-and-extend alignment of reads ``a`` and ``b``.

    ``seed_a``/``seed_b`` are the seed k-mer start positions on ``a`` and on
    the **forward** ``b``; when ``strand == 1`` the function orients ``b`` by
    reverse complement (and maps the seed) before extending both directions.
    """
    sc = sc if sc is not None else Scoring()
    if strand:
        b = (np.uint8(3) - b)[::-1]
        seed_b = b.shape[0] - k - seed_b
    # Seed score: count matches inside the seed (should be k for exact seeds).
    seg_a = a[seed_a:seed_a + k]
    seg_b = b[seed_b:seed_b + k]
    kl = min(seg_a.shape[0], seg_b.shape[0])
    seed_score = int((seg_a[:kl] == seg_b[:kl]).sum()) * sc.match
    # Right extension from the seed end.
    r_score, r_ea, r_eb = xdrop_extend(a[seed_a + k:], b[seed_b + k:], sc)
    # Left extension: reverse the prefixes.
    l_score, l_ea, l_eb = xdrop_extend(a[:seed_a][::-1], b[:seed_b][::-1], sc)
    return AlignmentResult(
        score=seed_score + r_score + l_score,
        ba=seed_a - l_ea, ea=seed_a + k + r_ea,
        bb=seed_b - l_eb, eb=seed_b + k + r_eb,
        strand=strand)


def chain_extend(a_len: int, b_len: int, seed_a: int, seed_b: int, k: int,
                 strand: int, identity: float = 0.85) -> AlignmentResult:
    """Alignment-free coordinate estimate from the seed diagonal.

    Projects the seed's diagonal to the read ends: the implied aligned range
    is the maximal co-linear extension, and the score is the implied overlap
    length scaled by an identity estimate.  This is the minimap2-style
    shortcut (no base-level alignment) and the fast mode for large runs.
    """
    sb = b_len - k - seed_b if strand else seed_b
    left = min(seed_a, sb)
    right = min(a_len - seed_a, b_len - sb)
    ba, bb = seed_a - left, sb - left
    ea, eb = seed_a + right, sb + right
    score = int((ea - ba) * max(0.0, 2.0 * identity - 1.0))
    return AlignmentResult(score=score, ba=ba, ea=ea, bb=bb, eb=eb,
                           strand=strand)
