"""Batched structure-of-arrays x-drop alignment engine.

:mod:`repro.align.xdrop` vectorizes one pair's extension over its *diagonals*
— which still leaves the pipeline issuing one Python call (and dozens of tiny
numpy kernels) per candidate pair.  This module adds the second vectorization
axis: every function here operates on **whole batches of extension problems
at once**, advancing all of them in lockstep so each edit round is a handful
of large ``(problems × diagonals)`` kernel calls instead of thousands of
small ones.

Sequences are never copied or padded per problem.  A batch references one
shared ``codes`` buffer (all reads concatenated) through structure-of-arrays
views: per problem a base offset, a stride (``+1`` forward, ``-1`` for the
reversed prefixes of left extensions), a length, and an XOR mask (``3``
complements a 2-bit DNA code, so reverse-complemented sequences are plain
strided reads of the forward buffer — no oriented copy is materialized).

The sweep mirrors :func:`repro.align.xdrop.xdrop_extend` *exactly*: the same
greedy Landau–Vishkin recurrence, the same chunked snake slide, the same
score/tie-break/x-drop rules — only run over a 2D ``(problem, diagonal)``
state with per-problem live masks.  Problems retire from the working set as
their diagonal sets die, so the arrays shrink as the batch drains and the
cost converges to the serial engine's per-problem work.  The per-pair path
stays the reference oracle behind the ``loop | batch | auto`` switch
(:func:`resolve_align_impl`), and the parity suite pins byte-identical
results between the two.
"""

from __future__ import annotations

import os

import numpy as np

from .xdrop import LV_NEG, SNAKE_CHUNK, Scoring

__all__ = [
    "ALIGN_IMPLS", "ALIGN_IMPL_ENV", "DEFAULT_ALIGN_IMPL",
    "resolve_align_impl",
    "xdrop_extend_batch", "extend_seeds_xdrop_batch", "chain_extend_batch",
]

#: Alignment-engine names accepted by ``PipelineConfig.align_impl`` (plus
#: ``"auto"``, which resolves through :func:`resolve_align_impl`).
ALIGN_IMPLS = ("loop", "batch")

#: Environment variable consulted by ``align_impl="auto"``.
ALIGN_IMPL_ENV = "REPRO_ALIGN_IMPL"

#: What ``"auto"`` resolves to when the environment does not override it.
DEFAULT_ALIGN_IMPL = "batch"

#: Sentinel for masked cells in the tie-break reach comparison — below any
#: real ``2·F - d`` (bounded by read lengths) but far from int64 overflow.
_REACH_NEG = np.int64(-(2 ** 60))


def resolve_align_impl(impl: str | None = None) -> str:
    """Resolve an alignment-engine name to ``"loop"`` or ``"batch"``.

    ``None`` and ``"auto"`` defer to the :data:`ALIGN_IMPL_ENV` environment
    variable when set (mirroring ``REPRO_EXECUTOR`` / ``REPRO_OVERLAP_MODE``),
    else pick :data:`DEFAULT_ALIGN_IMPL`; explicit names pass through
    validated.  Both engines produce byte-identical output — the switch is a
    pure performance axis, with ``loop`` kept as the reference oracle.
    """
    if impl is None:
        impl = "auto"
    if impl == "auto":
        env = os.environ.get(ALIGN_IMPL_ENV, "").strip().lower()
        impl = env if env and env != "auto" else DEFAULT_ALIGN_IMPL
    if impl not in ALIGN_IMPLS:
        raise ValueError(f"unknown align impl {impl!r}; expected one of "
                         f"{', '.join(ALIGN_IMPLS + ('auto',))}")
    return impl


def _slide_snakes_2d(codes: np.ndarray,
                     s_base: np.ndarray, s_step: np.ndarray, s_len: np.ndarray,
                     t_base: np.ndarray, t_step: np.ndarray, t_len: np.ndarray,
                     t_xor: np.ndarray, F: np.ndarray, dlo: int,
                     live: np.ndarray) -> np.ndarray:
    """Batched exact-match snake slide over live ``(problem, diagonal)`` cells.

    The 2D counterpart of :func:`repro.align.xdrop._slide_snakes`: ``F[p, w]``
    is the furthest ``i`` of problem ``p`` on diagonal ``dlo + w``; characters
    are fetched through the strided SoA views (``codes[base + i·step] ^ xor``)
    in :data:`~repro.align.xdrop.SNAKE_CHUNK`-character gulps, and only cells
    that matched a full chunk iterate again.
    """
    ext = np.zeros_like(F)
    pp, ww = np.nonzero(live)
    offs = np.arange(SNAKE_CHUNK, dtype=np.int64)
    while pp.size:
        i0 = F[pp, ww] + ext[pp, ww]
        j0 = i0 - (dlo + ww)
        m = s_len[pp]
        n = t_len[pp]
        room = np.minimum(m - i0, n - j0)
        cap = np.minimum(room, SNAKE_CHUNK)
        si = np.minimum(i0[:, None] + offs, (m - 1)[:, None])
        tj = np.minimum(j0[:, None] + offs, (n - 1)[:, None])
        sch = codes[s_base[pp, None] + si * s_step[pp, None]]
        tch = codes[t_base[pp, None] + tj * t_step[pp, None]] ^ \
            t_xor[pp, None]
        inb = offs < cap[:, None]
        eq = sch == tch
        eq &= inb
        run = np.where(eq.all(axis=1), cap,
                       np.argmin(np.where(inb, eq, False), axis=1))
        run = np.where(cap > 0, run, 0)
        ext[pp, ww] += run
        cont = (run == SNAKE_CHUNK) & (room > SNAKE_CHUNK)
        pp = pp[cont]
        ww = ww[cont]
    return ext


def xdrop_extend_batch(codes: np.ndarray,
                       s_base: np.ndarray, s_step: np.ndarray,
                       s_len: np.ndarray,
                       t_base: np.ndarray, t_step: np.ndarray,
                       t_len: np.ndarray, t_xor: np.ndarray,
                       sc: Scoring
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched greedy x-drop extension: all problems in one lockstep sweep.

    Problem ``p`` extends ``s_p`` against ``t_p`` rightward from the origin,
    where ``s_p[i] = codes[s_base[p] + i·s_step[p]]`` for ``i < s_len[p]``
    and ``t_p[j] = codes[t_base[p] + j·t_step[p]] ^ t_xor[p]`` — the strided
    SoA views that make forward suffixes, reversed prefixes, and
    reverse-complemented sequences all zero-copy.  Returns per-problem
    ``(best_score, ext_s, ext_t)`` arrays, each element exactly equal to
    :func:`repro.align.xdrop.xdrop_extend` on the materialized pair.

    Each edit round processes the whole batch as ``(live problems × window)``
    arrays sharing one diagonal axis; the per-problem x-drop prune retires
    problems whose diagonal sets die, shrinking the working set as the batch
    drains, and the shared window is trimmed to the union of live spans.
    """
    n_prob = int(s_base.shape[0])
    out_best = np.zeros(n_prob, dtype=np.int64)
    out_i = np.zeros(n_prob, dtype=np.int64)
    out_j = np.zeros(n_prob, dtype=np.int64)
    if n_prob == 0:
        return out_best, out_i, out_j
    # Empty-side problems return (0, 0, 0) like the serial engine.
    ids = np.flatnonzero((s_len > 0) & (t_len > 0))
    if ids.size == 0:
        return out_best, out_i, out_j
    sb = s_base[ids].astype(np.int64)
    ss = s_step[ids].astype(np.int64)
    m = s_len[ids].astype(np.int64)
    tb = t_base[ids].astype(np.int64)
    ts = t_step[ids].astype(np.int64)
    n = t_len[ids].astype(np.int64)
    tx = np.asarray(t_xor, dtype=codes.dtype)[ids]

    # Round 0: the single seed diagonal, slide its snake.
    F = np.zeros((ids.size, 1), dtype=np.int64)
    M = np.zeros((ids.size, 1), dtype=np.int64)
    live = np.ones((ids.size, 1), dtype=bool)
    dlo = 0
    ext = _slide_snakes_2d(codes, sb, ss, m, tb, ts, n, tx, F, dlo, live)
    F += ext
    M += ext
    best = M[:, 0] * sc.match
    best_i = F[:, 0].copy()
    best_j = F[:, 0].copy()
    done = (F[:, 0] >= m) | (F[:, 0] >= n)
    if done.any():
        out_best[ids[done]] = best[done]
        out_i[ids[done]] = best_i[done]
        out_j[ids[done]] = best_j[done]
        keep = ~done
        ids, sb, ss, m, tb, ts, n, tx = (x[keep] for x in
                                         (ids, sb, ss, m, tb, ts, n, tx))
        F, M = F[keep], M[keep]
        best, best_i, best_j = best[keep], best_i[keep], best_j[keep]

    penalty = min(sc.mismatch, sc.gap)
    e = 0
    while ids.size:
        e += 1
        rows = ids.size
        width = F.shape[1]
        # Grow the shared window by one diagonal on each side.
        Fp = np.full((rows, width + 2), LV_NEG, dtype=np.int64)
        Mp = np.full((rows, width + 2), LV_NEG, dtype=np.int64)
        Fp[:, 1:-1] = F
        Mp[:, 1:-1] = M
        dlo -= 1
        diag = dlo + np.arange(width + 2, dtype=np.int64)
        # Substitution / insertion / deletion candidates; manual 3-way max
        # keeps M paired with its F winner (same scheme as the 1D engine).
        F = Fp + 1
        M = Mp.copy()
        f_ins = np.empty_like(Fp)
        f_ins[:, 0] = LV_NEG
        f_ins[:, 1:] = Fp[:, :-1] + 1
        m_ins = np.empty_like(Mp)
        m_ins[:, 0] = LV_NEG
        m_ins[:, 1:] = Mp[:, :-1]
        take = f_ins > F
        F = np.where(take, f_ins, F)
        M = np.where(take, m_ins, M)
        f_del = np.empty_like(Fp)
        f_del[:, -1] = LV_NEG
        f_del[:, :-1] = Fp[:, 1:]
        m_del = np.empty_like(Mp)
        m_del[:, -1] = LV_NEG
        m_del[:, :-1] = Mp[:, 1:]
        take = f_del > F
        F = np.where(take, f_del, F)
        M = np.where(take, m_del, M)
        # Bounds: i <= m and j = i - d <= n per problem.
        jv = F - diag[None, :]
        valid = (F >= 0) & (F <= m[:, None]) & (jv >= 0) & \
            (jv <= n[:, None]) & (M > LV_NEG // 2)
        F = np.where(valid, F, LV_NEG)
        live = valid
        if live.any():
            ext = _slide_snakes_2d(codes, sb, ss, m, tb, ts, n, tx,
                                   np.where(live, F, 0), dlo, live)
            F = np.where(live, F + ext, F)
            M = np.where(live, M + ext, M)
        scores = np.where(live, M * sc.match + e * penalty, LV_NEG)
        sbest = scores.max(axis=1)
        upd = np.flatnonzero(sbest > best)
        if upd.size:
            # Tie-break equal scores toward the farthest-reaching cell
            # (largest i + j), first in diagonal order — as the 1D engine.
            reach = np.where(scores[upd] == sbest[upd, None],
                             2 * F[upd] - diag[None, :], _REACH_NEG)
            kb = np.argmax(reach, axis=1)
            best[upd] = sbest[upd]
            best_i[upd] = F[upd, kb]
            best_j[upd] = F[upd, kb] - diag[kb]
        # X-drop prune, then retire problems whose diagonal sets died (or
        # that exhausted the serial engine's m + n edit-round budget).
        live &= scores >= (best - sc.xdrop)[:, None]
        F = np.where(live, F, LV_NEG)
        M = np.where(live, M, LV_NEG)
        alive = live.any(axis=1) & (e < m + n)
        if not alive.all():
            dead = ~alive
            out_best[ids[dead]] = best[dead]
            out_i[ids[dead]] = best_i[dead]
            out_j[ids[dead]] = best_j[dead]
            ids, sb, ss, m, tb, ts, n, tx = (x[alive] for x in
                                             (ids, sb, ss, m, tb, ts, n, tx))
            F, M, live = F[alive], M[alive], live[alive]
            best, best_i, best_j = best[alive], best_i[alive], best_j[alive]
            if not ids.size:
                break
        # Trim the shared window to the union of live diagonal spans.
        col_live = live.any(axis=0)
        lo = int(np.argmax(col_live))
        hi = col_live.shape[0] - 1 - int(np.argmax(col_live[::-1]))
        if lo > 0 or hi < col_live.shape[0] - 1:
            F = F[:, lo:hi + 1]
            M = M[:, lo:hi + 1]
            dlo += lo
    return out_best, out_i, out_j


def _seed_scores_batch(codes: np.ndarray, a_base: np.ndarray,
                       a_len: np.ndarray, b_base: np.ndarray,
                       b_len: np.ndarray, pa: np.ndarray, pbo: np.ndarray,
                       strand: np.ndarray, k: int, match: int) -> np.ndarray:
    """Matches inside each seed k-mer (× ``match``), vectorized over pairs.

    ``pbo`` is the seed start on the *oriented* ``b``; strand-1 characters
    are read back-to-front off the forward buffer and complemented by XOR.
    Seed windows clipped by a sequence end are scored over the shared prefix,
    exactly like the per-pair engine.
    """
    la = np.clip(a_len - pa, 0, k)
    lb = np.clip(b_len - pbo, 0, k)
    kl = np.minimum(la, lb)
    offs = np.arange(k, dtype=np.int64)
    in_seed = offs[None, :] < kl[:, None]
    ai = np.minimum(pa[:, None] + offs, np.maximum(a_len, 1)[:, None] - 1)
    ach = codes[a_base[:, None] + ai]
    jo = np.minimum(pbo[:, None] + offs, np.maximum(b_len, 1)[:, None] - 1)
    rc = strand[:, None] != 0
    bi = np.where(rc, b_len[:, None] - 1 - jo, jo)
    bch = codes[b_base[:, None] + bi] ^ \
        (3 * strand[:, None]).astype(codes.dtype)
    return ((ach == bch) & in_seed).sum(axis=1).astype(np.int64) * match


def extend_seeds_xdrop_batch(codes: np.ndarray, a_base: np.ndarray,
                             a_len: np.ndarray, b_base: np.ndarray,
                             b_len: np.ndarray, pa: np.ndarray,
                             pb: np.ndarray, strand: np.ndarray, k: int,
                             sc: Scoring
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray, np.ndarray]:
    """Batched :func:`~repro.align.xdrop.seed_extend_align` over seed arrays.

    ``pa`` / ``pb`` are seed k-mer starts on each pair's read ``a`` and on
    the **forward** read ``b``; strand-1 seeds are mapped onto the oriented
    ``b`` without materializing a reverse complement.  Left and right
    extensions of every seed enter one :func:`xdrop_extend_batch` sweep
    (reversed-prefix left problems are just ``step = -1`` views).  Returns
    per-seed ``(score, ba, ea, bb, eb)`` with coordinates on ``a`` and the
    oriented ``b``, element-wise equal to the per-pair engine.
    """
    n_seed = int(pa.shape[0])
    pbo = np.where(strand != 0, b_len - k - pb, pb)
    seed_score = _seed_scores_batch(codes, a_base, a_len, b_base, b_len,
                                    pa, pbo, strand, k, sc.match)
    rc = strand != 0
    ones = np.ones(n_seed, dtype=np.int64)
    # Right extension: suffixes from the seed end (oriented-b suffixes of a
    # strand-1 pair are reversed, complemented walks of the forward buffer).
    s_base = np.concatenate([a_base + pa + k, a_base + pa - 1])
    s_step = np.concatenate([ones, -ones])
    s_len = np.concatenate([np.maximum(0, a_len - pa - k),
                            np.minimum(pa, a_len)])
    t_base = np.concatenate([
        np.where(rc, b_base + b_len - 1 - pbo - k, b_base + pbo + k),
        np.where(rc, b_base + b_len - pbo, b_base + pbo - 1)])
    t_step = np.concatenate([np.where(rc, -ones, ones),
                             np.where(rc, ones, -ones)])
    t_len = np.concatenate([np.maximum(0, b_len - pbo - k),
                            np.minimum(pbo, b_len)])
    t_xor = np.concatenate([3 * strand, 3 * strand])
    bests, ext_s, ext_t = xdrop_extend_batch(
        codes, s_base, s_step, s_len, t_base, t_step, t_len, t_xor, sc)
    r_sc, r_ea, r_eb = bests[:n_seed], ext_s[:n_seed], ext_t[:n_seed]
    l_sc, l_ea, l_eb = bests[n_seed:], ext_s[n_seed:], ext_t[n_seed:]
    score = seed_score + r_sc + l_sc
    ba = pa - l_ea
    ea = pa + k + r_ea
    bb = pbo - l_eb
    eb = pbo + k + r_eb
    return score, ba, ea, bb, eb


def chain_extend_batch(a_len: np.ndarray, b_len: np.ndarray, pa: np.ndarray,
                       pb: np.ndarray, strand: np.ndarray, k: int,
                       identity: float = 0.85
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray]:
    """Batched :func:`~repro.align.xdrop.chain_extend` over seed arrays.

    Pure column arithmetic — the seed diagonal projected to the read ends,
    scored by the implied overlap length × identity estimate.  Returns the
    same ``(score, ba, ea, bb, eb)`` tuple as the x-drop variant.
    """
    sb = np.where(strand != 0, b_len - k - pb, pb)
    left = np.minimum(pa, sb)
    right = np.minimum(a_len - pa, b_len - sb)
    ba = pa - left
    bb = sb - left
    ea = pa + right
    eb = sb + right
    scale = max(0.0, 2.0 * identity - 1.0)
    score = ((ea - ba) * scale).astype(np.int64)
    return score, ba, ea, bb, eb
