"""Pairwise alignment substrate: x-drop seed-and-extend (per-pair and
batched structure-of-arrays engines) and overlap classification into
bidirected string-graph edges."""

from .xdrop import (AlignmentResult, Scoring, chain_extend, seed_extend_align,
                    xdrop_extend)
from .batch import (ALIGN_IMPLS, ALIGN_IMPL_ENV, chain_extend_batch,
                    extend_seeds_xdrop_batch, resolve_align_impl,
                    xdrop_extend_batch)
from .overlapper import (B_END, E_END, OverlapClass, classify_overlap,
                         classify_overlap_batch)

__all__ = [
    "AlignmentResult", "Scoring", "chain_extend", "seed_extend_align",
    "xdrop_extend",
    "ALIGN_IMPLS", "ALIGN_IMPL_ENV", "resolve_align_impl",
    "xdrop_extend_batch", "extend_seeds_xdrop_batch", "chain_extend_batch",
    "B_END", "E_END", "OverlapClass", "classify_overlap",
    "classify_overlap_batch",
]
