"""Pairwise alignment substrate: x-drop seed-and-extend and overlap
classification into bidirected string-graph edges."""

from .xdrop import (AlignmentResult, Scoring, chain_extend, seed_extend_align,
                    xdrop_extend)
from .overlapper import B_END, E_END, OverlapClass, classify_overlap

__all__ = [
    "AlignmentResult", "Scoring", "chain_extend", "seed_extend_align",
    "xdrop_extend",
    "B_END", "E_END", "OverlapClass", "classify_overlap",
]
