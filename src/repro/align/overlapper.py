"""Overlap classification: alignments → bidirected string-graph edges.

Given a pairwise alignment of reads *i* and *j* (coordinates on *i* and on
the *oriented* *j*), this module derives everything the transitive reduction
needs (paper Sections II and IV-E):

* the **overlap class** — dovetail (one of the four types of Fig. 1) or
  contained (one read's aligned region spans the whole read);
* the **overhang (suffix) lengths** in both walk directions;
* the **end attachments**: which end (Begin=0 / End=1) of each read the edge
  attaches to.  This encodes the bidirected heads of Fig. 1: a walk may pass
  through a read only by entering at one attachment end and leaving via an
  edge attached at the *other* end, which is exactly the paper's
  "heads next to the middle node have opposite orientation" rule.

End-attachment map (derived in DESIGN.md §5):

=========================  =========  =========
overlap                    end_i      end_j
=========================  =========  =========
fwd-fwd, i first           E (1)      B (0)
fwd-fwd, j first           B (0)      E (1)
fwd-rc,  i first           E (1)      E (1)
fwd-rc,  j first (rc-fwd)  B (0)      B (0)
=========================  =========  =========
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .xdrop import AlignmentResult

__all__ = ["OverlapClass", "classify_overlap", "classify_overlap_batch"]

B_END = 0
E_END = 1


@dataclass
class OverlapClass:
    """Classified overlap between reads *i* and *j*.

    Attributes
    ----------
    kind:
        ``"dovetail"``, ``"contained_i"``, ``"contained_j"`` or ``"internal"``
        (an alignment that stops mid-read on both sides — a false or broken
        overlap that the pipeline discards).
    suffix_ij / suffix_ji:
        Overhang length walking i→j and j→i (valid for dovetails).
    end_i / end_j:
        End attachments (0 = Begin, 1 = End) of the edge at *i* and *j*.
    overlap_len:
        Aligned span on read *i* (proxy for overlap length).
    """

    kind: str
    suffix_ij: int = 0
    suffix_ji: int = 0
    end_i: int = 0
    end_j: int = 0
    overlap_len: int = 0


def classify_overlap(len_i: int, len_j: int, aln: AlignmentResult,
                     fuzz: int = 100) -> OverlapClass:
    """Classify an alignment into a dovetail/contained/internal overlap.

    ``aln`` coordinates refer to read *i* (``ba..ea``) and the *oriented*
    read *j* (``bb..eb``; already reverse-complemented when
    ``aln.strand == 1``).  ``fuzz`` tolerates unaligned read tips caused by
    sequencing errors (same role as the paper's scalar ``x``).
    """
    left_i = aln.ba
    right_i = len_i - aln.ea
    left_j = aln.bb
    right_j = len_j - aln.eb
    overlap_len = aln.ea - aln.ba

    i_contained = left_i <= fuzz and right_i <= fuzz
    j_contained = left_j <= fuzz and right_j <= fuzz
    if i_contained and j_contained:
        # Near-equal reads: call the shorter one contained.
        if len_i <= len_j:
            return OverlapClass("contained_i", overlap_len=overlap_len)
        return OverlapClass("contained_j", overlap_len=overlap_len)
    if i_contained:
        return OverlapClass("contained_i", overlap_len=overlap_len)
    if j_contained:
        return OverlapClass("contained_j", overlap_len=overlap_len)

    if left_i >= left_j and right_j >= right_i:
        # i sticks out left, oriented-j sticks out right: i comes first.
        if left_j > fuzz or right_i > fuzz:
            return OverlapClass("internal", overlap_len=overlap_len)
        suffix_ij = max(1, right_j - right_i)
        suffix_ji = max(1, left_i - left_j)
        end_i = E_END
        end_j = B_END if aln.strand == 0 else E_END
        return OverlapClass("dovetail", suffix_ij, suffix_ji, end_i, end_j,
                            overlap_len)
    if left_j >= left_i and right_i >= right_j:
        # Oriented-j comes first.
        if left_i > fuzz or right_j > fuzz:
            return OverlapClass("internal", overlap_len=overlap_len)
        suffix_ij = max(1, left_j - left_i)
        suffix_ji = max(1, right_i - right_j)
        end_i = B_END
        end_j = E_END if aln.strand == 0 else B_END
        return OverlapClass("dovetail", suffix_ij, suffix_ji, end_i, end_j,
                            overlap_len)
    return OverlapClass("internal", overlap_len=overlap_len)


def classify_overlap_batch(len_i: np.ndarray, len_j: np.ndarray,
                           ba: np.ndarray, ea: np.ndarray, bb: np.ndarray,
                           eb: np.ndarray, strand: np.ndarray, fuzz: int
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`classify_overlap` over alignment-coordinate columns.

    Same decision tree as the scalar version — containment first (shorter
    read wins near-equal pairs), then the two dovetail orderings with the
    ``i sticks out left`` branch taking precedence on ties — evaluated as
    pure column operations.  Returns
    ``(dovetail, suffix_ij, suffix_ji, end_i, end_j, overlap_len)`` arrays;
    the suffix/end columns are only meaningful where ``dovetail`` is true
    (contained and internal overlaps are discarded by the caller either way).
    """
    left_i = ba
    right_i = len_i - ea
    left_j = bb
    right_j = len_j - eb
    overlap_len = ea - ba

    contained = ((left_i <= fuzz) & (right_i <= fuzz)) | \
                ((left_j <= fuzz) & (right_j <= fuzz))
    first_i = ~contained & (left_i >= left_j) & (right_j >= right_i)
    dove_i = first_i & ~((left_j > fuzz) | (right_i > fuzz))
    first_j = ~contained & ~first_i & (left_j >= left_i) & \
        (right_i >= right_j)
    dove_j = first_j & ~((left_i > fuzz) | (right_j > fuzz))
    dovetail = dove_i | dove_j

    one = np.int64(1)
    suffix_ij = np.where(dove_i, np.maximum(one, right_j - right_i),
                         np.maximum(one, left_j - left_i))
    suffix_ji = np.where(dove_i, np.maximum(one, left_i - left_j),
                         np.maximum(one, right_i - right_j))
    end_i = np.where(dove_i, np.int64(E_END), np.int64(B_END))
    end_j = np.where(strand == 0,
                     np.where(dove_i, np.int64(B_END), np.int64(E_END)),
                     np.where(dove_i, np.int64(E_END), np.int64(B_END)))
    return dovetail, suffix_ij, suffix_ji, end_i, end_j, overlap_len
