"""The diBELLA 2D pipeline (paper Algorithm 1).

:func:`run_pipeline` wires the stages end to end on the simulated runtime:

``ReadFastq → CountKmer → CreateSpMat → SpGEMM (C = A·Aᵀ) → ExchangeRead →
Alignment → TrReduction``

using the same stage names as the paper's runtime-breakdown figures
(Figs. 5–8), so the benchmark harness can print the identical layers.  The
result object carries the string matrix, the per-stage compute times
(critical-path max over simulated ranks), the communication records, and the
sparsity statistics of Table III; :meth:`PipelineResult.modeled_time`
evaluates the α–β machine models to produce the runtimes the scaling figures
plot.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..align.batch import resolve_align_impl
from ..align.xdrop import Scoring
from ..dsparse.backend import get_backend
from ..dsparse.coomat import CooMat
from ..dsparse.masked import resolve_spgemm_impl
from ..exec import get_executor, resolve_workers
from ..mpisim.comm import SimComm
from ..mpisim.grid import ProcessGrid2D
from ..mpisim.machine import MachineModel
from ..mpisim.tracker import CommTracker, StageTimer
from ..resilience.faults import (FaultPlan, active_plan, current_plan,
                                 resolve_fault_plan)
from ..seqs.fasta import ReadSet, read_fasta, read_fasta_to_store
from ..seqs.kmer_counter import (count_kmers, reliable_upper_bound,
                                 resolve_kmer_impl)
from ..seqs.read_store import resolve_read_store, resolve_store_dir
from ..seqs.seeding import DEFAULT_SEED_W, make_scheme, resolve_seed_mode
from .blocked import candidate_overlaps_blocked
from .memory import (apportion_budget, plan_strips, resolve_checkpoint_dir,
                     resolve_overlap_mode)
from .overlap import (AlignmentFilter, align_candidates, build_a_matrix,
                      candidate_overlaps, exchange_reads)
from .string_graph import StringGraph
from .transitive_reduction import transitive_reduction

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline",
           "run_pipeline_from_fasta", "STAGES"]

#: Stage names in the paper's breakdown order (Figs. 5–8, bottom to top).
STAGES = ["Alignment", "ReadFastq", "CountKmer", "CreateSpMat", "SpGEMM",
          "ExchangeRead", "TrReduction"]


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable parameters of a diBELLA 2D run.

    Defaults mirror the paper's settings (k = 17; reliable k-mer ceiling from
    the BELLA model; x-drop alignment).  ``nprocs`` must be a perfect square
    (the 2D grid); ``align_mode='chain'`` switches to the alignment-free
    coordinate estimate for large runs.  ``backend`` names the local
    sparse-kernel backend (:func:`repro.dsparse.get_backend`): ``"auto"``
    routes scalar semirings onto scipy CSR kernels and multi-field
    semirings onto the numpy ESC reference; results are byte-identical
    across backends.

    ``workers`` / ``executor`` select the shared-memory execution engine
    (:func:`repro.exec.get_executor`) that actually parallelizes the
    simulated ranks' local work: ``workers=None`` reads ``REPRO_WORKERS``
    (default 1), ``executor="auto"`` picks the serial reference for one
    worker and the process pool otherwise.  Like ``backend``, this is a
    pure performance axis — output is byte-identical for every executor
    and worker count.

    ``align_impl`` selects the alignment engine for the x-drop/chain
    stage (:func:`repro.align.resolve_align_impl`): ``"batch"`` packs all
    candidate pairs into structure-of-arrays buffers and extends them in
    lockstep batched kernel sweeps (the fast path), ``"loop"`` dispatches
    one Python call per pair (the reference oracle), ``"auto"`` honors the
    ``REPRO_ALIGN_IMPL`` environment variable, else runs ``batch``.  Output
    is byte-identical across engines.

    ``spgemm_impl`` selects the engine for the two multi-field semiring
    products (:func:`repro.dsparse.masked.resolve_spgemm_impl`):
    ``"masked"`` decomposes ``C = A·Aᵀ`` into a native scalar count product
    plus a mask-pruned ESC seed pass, and squares ``R`` under its own
    pattern in transitive reduction; ``"esc"`` runs the monolithic
    expand-sort-compress reference; ``"auto"`` honors
    ``REPRO_SPGEMM_IMPL``, else runs ``masked``.  C, R, S, and the
    communication records are byte-identical across engines (only the
    ``TrReduction`` live-set peak differs — the masked ``N`` genuinely
    holds fewer entries).

    ``kmer_impl`` does the same for the k-mer stages
    (:func:`repro.seqs.kmer_counter.resolve_kmer_impl`): ``"batch"`` runs
    ``CountKmer`` extraction/admission/counting over sorted
    structure-of-arrays tables and the ``CreateSpMat`` scan as one
    vectorized pass per rank; ``"loop"`` keeps the per-read / per-key dict
    reference oracle; ``"auto"`` honors ``REPRO_KMER_IMPL``, else runs
    ``batch``.  The k-mer table, A, and everything downstream are
    byte-identical across engines.

    ``overlap_mode`` selects the candidate-formation path: ``"monolithic"``
    forms all of ``C = A·Aᵀ`` at once, ``"blocked"`` strip-mines it
    (paper Section VIII) so peak candidate memory drops by ~``n_strips``
    while S stays byte-identical; ``"auto"`` honors the
    ``REPRO_OVERLAP_MODE`` environment variable, else runs monolithic.  In
    blocked mode an explicit ``n_strips`` wins; otherwise ``memory_budget``
    (bytes the live candidate strip may occupy — see
    :func:`repro.core.memory.plan_strips`) picks the count from the
    measured ``nnz(A)`` and the BELLA density model.

    ``seed_mode`` selects the seeding scheme
    (:func:`repro.seqs.seeding.resolve_seed_mode`): ``"full"`` seeds with
    every reliable k-mer window (the paper's behavior, byte-identical to
    the historical hardwired path), ``"minimizer"`` / ``"syncmer"`` sketch
    each read down to ~``2/(w+1)`` / ``1/w`` of its windows before
    counting and A construction — shrinking nnz(A), nnz(C), alignment
    work, and service refresh cost at a small recall cost measured by
    ``benchmarks/bench_seed_mode.py``; ``"auto"`` honors
    ``REPRO_SEED_MODE``, else runs ``full``.  ``seed_w`` is the window
    parameter of the sketched schemes (ignored by ``full``).  Unlike the
    ``*_impl`` axes this one intentionally changes output — but for a
    fixed mode it stays byte-identical across executors, engines, strip
    counts, and service batchings (schemes are pure per-read functions).

    ``fault_plan`` arms deterministic fault injection for the run
    (:class:`repro.resilience.FaultPlan` spec grammar, e.g.
    ``"exec.chunk:crash@3;summa.block:exc@2"``); ``None`` defers to
    ``REPRO_FAULT_SPEC`` when no plan is already armed, and an empty
    string pins the run fault-free regardless of the environment.  The
    recovery machinery re-runs only lost work, so every surviving run is
    byte-identical to a fault-free one.  ``checkpoint_dir`` enables
    crash-safe per-strip checkpointing on the blocked overlap path
    (``None`` defers to ``REPRO_CHECKPOINT_DIR``): a killed run
    re-invoked with the same directory resumes at the last completed
    strip.

    ``read_store`` selects the read-base backend
    (:func:`repro.seqs.read_store.resolve_read_store`): ``"inmem"`` keeps
    per-read code arrays resident (the historical behavior), ``"mmap"``
    persists the concatenated 2-bit buffer plus offsets/lengths to disk
    once and serves every ``soa``/``soa_block`` view as a read-only
    ``np.memmap`` — process workers reopen the store by path instead of
    receiving the bases over the pipe, and peak RSS stops scaling with
    input size; ``"auto"`` honors ``REPRO_READ_STORE``, else runs
    in-memory.  Output is byte-identical across backends.  ``store_dir``
    places the store files (``None`` defers to ``REPRO_STORE_DIR``, else
    a self-cleaning temporary directory).  When a ``memory_budget`` is
    set it is apportioned across the big consumers
    (:func:`repro.core.memory.apportion_budget`): half drives the blocked
    candidate strip count, a quarter caps the k-mer counter's resident
    tables (sorted runs spill to disk beyond it), the rest is headroom.
    """

    k: int = 17
    nprocs: int = 1
    align_mode: str = "xdrop"
    align_impl: str = "auto"
    kmer_impl: str = "auto"
    spgemm_impl: str = "auto"
    scoring: Scoring = field(default_factory=Scoring)
    filt: AlignmentFilter = field(default_factory=AlignmentFilter)
    fuzz: int = 150
    kmer_batches: int = 1
    kmer_upper: int | None = None
    depth_hint: float = 30.0
    error_hint: float = 0.15
    max_tr_rounds: int = 32
    backend: str = "auto"
    workers: int | None = None
    executor: str = "auto"
    overlap_mode: str = "auto"
    n_strips: int | None = None
    memory_budget: int | None = None
    seed_mode: str = "auto"
    seed_w: int = DEFAULT_SEED_W
    fault_plan: str | None = None
    checkpoint_dir: str | None = None
    read_store: str = "auto"
    store_dir: str | None = None


@dataclass
class PipelineResult:
    """Everything a diBELLA 2D run produces (matrices, stats, accounting)."""

    config: PipelineConfig
    n_reads: int
    n_kmers: int
    string_graph: StringGraph
    S: CooMat
    nnz_a: int
    nnz_c: int
    nnz_r: int
    nnz_s: int
    tr_rounds: int
    timer: StageTimer
    tracker: CommTracker
    overlap_mode: str = "monolithic"
    n_strips: int = 1
    align_impl: str = "batch"
    kmer_impl: str = "batch"
    spgemm_impl: str = "masked"
    seed_mode: str = "full"
    read_store: str = "inmem"
    #: The pre-reduction overlap matrix (global, canonical order).  The
    #: incremental assembly service splices delta rows into it on refresh;
    #: batch callers may ignore it.
    R: CooMat | None = None

    @property
    def spgemm_paths(self) -> dict[str, dict[str, int]]:
        """Per-stage SpGEMM kernel-dispatch counters (``repro stats``)."""
        return self.timer.kernel_counts()

    # -- paper statistics ---------------------------------------------------
    @property
    def a_density(self) -> float:
        """A nonzeros per k-mer column (Table II's ``a = nnz(A)/m``)."""
        return self.nnz_a / max(1, self.n_kmers)

    @property
    def c_density(self) -> float:
        """C nonzeros per row (Table III's ``c``; counts both triangles)."""
        return 2.0 * self.nnz_c / max(1, self.n_reads)

    @property
    def r_density(self) -> float:
        """R directed entries per row (Table III's ``r``)."""
        return self.nnz_r / max(1, self.n_reads)

    @property
    def s_density(self) -> float:
        """S directed entries per row (Table II's ``s``)."""
        return self.nnz_s / max(1, self.n_reads)

    def inefficiency(self, depth: float) -> float:
        """The overlapper inefficiency factor ``c / 2d`` (Table III)."""
        return self.c_density / (2.0 * depth)

    # -- memory trajectory --------------------------------------------------
    @property
    def peak_bytes(self) -> dict[str, int]:
        """Per-stage live-matrix high-water marks in bytes.

        ``SpGEMM`` is the candidate-matrix peak — the quantity the blocked
        mode divides by its strip count (Section VIII's memory reduction).
        """
        return self.timer.peak_bytes()

    @property
    def peak_candidate_bytes(self) -> int:
        """Candidate-matrix (SpGEMM stage) memory high-water mark."""
        return self.peak_bytes.get("SpGEMM", 0)

    # -- modeled runtimes ------------------------------------------------------
    def stage_compute(self) -> dict[str, float]:
        """Measured per-stage critical-path compute seconds."""
        return self.timer.breakdown()

    def modeled_time(self, machine: MachineModel,
                     include_alignment: bool = True) -> dict[str, float]:
        """Per-stage modeled runtime on ``machine`` (compute + α–β comm)."""
        out: dict[str, float] = {}
        for stage in STAGES:
            if not include_alignment and stage == "Alignment":
                continue
            comp = self.timer.stage_seconds.get(stage, 0.0)
            comm = self.tracker.stage_comm_time(stage, machine)
            total = comp * machine.compute_scale + comm
            if total > 0.0:
                out[stage] = total
        return out

    def modeled_total(self, machine: MachineModel,
                      include_alignment: bool = True) -> float:
        return sum(self.modeled_time(machine, include_alignment).values())


def _require_nonempty_reads(reads: ReadSet) -> None:
    """Refuse zero-length reads before they reach k-mer extraction.

    A zero-length read contributes no k-mers but still occupies a matrix
    row, silently skewing densities and layouts; strict FASTA parsing
    already refuses them at ingest, so one arriving here means a caller
    constructed it directly — name it instead of propagating the skew.
    """
    lengths = reads.lengths
    if lengths.shape[0] and int(lengths.min()) <= 0:
        i = int(np.argmin(lengths))
        raise ValueError(
            f"read {reads.names[i]!r} (index {i}) has length 0; "
            f"zero-length reads cannot enter k-mer extraction")


def run_pipeline(reads: ReadSet, config: PipelineConfig | None = None, *,
                 read_fastq_seconds: float = 0.0) -> PipelineResult:
    """Run overlap detection + transitive reduction on a ReadSet.

    ``read_fastq_seconds`` lets :func:`run_pipeline_from_fasta` charge the
    parse time it measured to the ``ReadFastq`` stage.  With
    ``read_store="mmap"`` an in-memory ReadSet is persisted to an on-disk
    store first (under ``store_dir`` when set, else a temporary directory
    removed when the run finishes); store-backed ReadSets pass through
    unchanged.
    """
    config = config if config is not None else PipelineConfig()
    backend = get_backend(config.backend)
    overlap_mode = resolve_overlap_mode(config.overlap_mode)
    align_impl = resolve_align_impl(config.align_impl)
    kmer_impl = resolve_kmer_impl(config.kmer_impl)
    spgemm_impl = resolve_spgemm_impl(config.spgemm_impl)
    seed_mode = resolve_seed_mode(config.seed_mode)
    scheme = make_scheme(seed_mode, config.k, config.seed_w)
    checkpoint_dir = resolve_checkpoint_dir(config.checkpoint_dir)
    read_store = resolve_read_store(config.read_store)
    _require_nonempty_reads(reads)
    store_dir = resolve_store_dir(config.store_dir)
    tmp_store: str | None = None
    if read_store == "mmap" and reads.store is None:
        if store_dir is not None:
            os.makedirs(store_dir, exist_ok=True)
            reads = reads.to_store(os.path.join(store_dir, "reads"))
        else:
            tmp_store = tempfile.mkdtemp(prefix="repro-read-store-")
            reads = reads.to_store(tmp_store)
    elif reads.store is not None:
        read_store = "mmap"
    try:
        return _run_pipeline_inner(
            reads, config, backend, overlap_mode, align_impl, kmer_impl,
            spgemm_impl, seed_mode, scheme, checkpoint_dir, read_store,
            store_dir, read_fastq_seconds)
    finally:
        if tmp_store is not None:
            shutil.rmtree(tmp_store, ignore_errors=True)


def _run_pipeline_inner(reads, config, backend, overlap_mode, align_impl,
                        kmer_impl, spgemm_impl, seed_mode, scheme,
                        checkpoint_dir, read_store, store_dir,
                        read_fastq_seconds):
    # Fault-plan precedence: an explicit config spec always arms a fresh
    # plan ("" pins the run fault-free); otherwise an already-armed plan
    # (e.g. the service's persistent cross-ingest plan) is left in place,
    # and only then does REPRO_FAULT_SPEC get a say.
    if config.fault_plan is not None:
        plan = FaultPlan(config.fault_plan)
    elif current_plan() is None:
        plan = resolve_fault_plan(None)
    else:
        plan = None
    grid = ProcessGrid2D(config.nprocs)
    tracker = CommTracker(config.nprocs)
    comm = SimComm(config.nprocs, tracker)
    timer = StageTimer()
    if read_fastq_seconds:
        timer.add("ReadFastq", read_fastq_seconds)

    upper = config.kmer_upper
    if upper is None:
        upper = reliable_upper_bound(config.depth_hint, config.error_hint,
                                     config.k)
    # One --memory-budget covers the big consumers (see apportion_budget):
    # the candidate share drives the strip count below, the table share
    # caps the k-mer counter's resident tables.  The split is applied for
    # every read-store backend so a budgeted run stays byte-identical
    # between inmem and mmap.
    budget = (apportion_budget(config.memory_budget)
              if config.memory_budget is not None else None)
    with active_plan(plan), \
            get_executor(config.executor,
                         resolve_workers(config.workers)) as ex:
        table = count_kmers(reads, config.k, comm, timer,
                            batches=config.kmer_batches, upper=upper,
                            executor=ex, impl=kmer_impl, scheme=scheme,
                            table_budget=(budget.tables if budget else None),
                            spill_dir=store_dir)

        A = build_a_matrix(reads, table, grid, comm, timer, executor=ex,
                           impl=kmer_impl, scheme=scheme)
        nnz_a = A.nnz()
        # Read exchange is issued right after partitioning so it overlaps
        # with counting and SpGEMM (paper Section IV-D); accounting order is
        # equivalent.
        exchange_reads(reads, grid, comm)
        if overlap_mode == "blocked":
            plan = plan_strips(nnz_a, len(table), len(reads),
                               memory_budget=(budget.candidate if budget
                                              else None),
                               n_strips=config.n_strips)
            blk = candidate_overlaps_blocked(
                A, reads, config.k, comm, plan.n_strips, timer,
                mode=config.align_mode, scoring=config.scoring,
                filt=config.filt, fuzz=config.fuzz, backend=backend,
                executor=ex, align_impl=align_impl,
                spgemm_impl=spgemm_impl, checkpoint_dir=checkpoint_dir)
            nnz_c, R, n_strips = blk.nnz_c, blk.R, blk.n_strips
        else:
            C = candidate_overlaps(A, comm, timer, backend=backend,
                                   executor=ex, spgemm_impl=spgemm_impl)
            nnz_c = C.nnz()
            R = align_candidates(C, reads, config.k, comm, timer,
                                 mode=config.align_mode,
                                 scoring=config.scoring,
                                 filt=config.filt, fuzz=config.fuzz,
                                 executor=ex, impl=align_impl)
            n_strips = 1
        nnz_r = R.nnz()
        tr = transitive_reduction(R, comm, timer, fuzz=config.fuzz,
                                  max_rounds=config.max_tr_rounds,
                                  backend=backend, executor=ex,
                                  spgemm_impl=spgemm_impl)
    S_global = tr.S.to_global()
    return PipelineResult(
        config=config, n_reads=len(reads), n_kmers=len(table),
        string_graph=StringGraph.from_coomat(S_global), S=S_global,
        nnz_a=nnz_a, nnz_c=nnz_c, nnz_r=nnz_r, nnz_s=tr.S.nnz(),
        tr_rounds=tr.rounds, timer=timer, tracker=tracker,
        overlap_mode=overlap_mode, n_strips=n_strips,
        align_impl=align_impl, kmer_impl=kmer_impl,
        spgemm_impl=spgemm_impl, seed_mode=seed_mode,
        read_store=read_store, R=R.to_global())


def run_pipeline_from_fasta(path, config: PipelineConfig | None = None
                            ) -> PipelineResult:
    """Run the pipeline on a FASTA file, timing the parse as ``ReadFastq``.

    With ``read_store="mmap"`` the FASTA is streamed straight into the
    on-disk store (:func:`~repro.seqs.fasta.read_fasta_to_store`) — the
    bases are never all resident, which is the ingest path for inputs
    larger than memory.
    """
    cfg = config if config is not None else PipelineConfig()
    tmp_store: str | None = None
    try:
        t0 = time.perf_counter()
        if resolve_read_store(cfg.read_store) == "mmap":
            store_dir = resolve_store_dir(cfg.store_dir)
            if store_dir is not None:
                os.makedirs(store_dir, exist_ok=True)
                target = os.path.join(store_dir, "reads")
            else:
                tmp_store = tempfile.mkdtemp(prefix="repro-read-store-")
                target = tmp_store
            reads = read_fasta_to_store(path, target)
        else:
            reads = read_fasta(path)
        parse_seconds = time.perf_counter() - t0
        # Parallel MPI-IO splits the parse across ranks; charge the share.
        return run_pipeline(reads, cfg,
                            read_fastq_seconds=parse_seconds / cfg.nprocs)
    finally:
        if tmp_store is not None:
            shutil.rmtree(tmp_store, ignore_errors=True)
