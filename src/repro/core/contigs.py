"""Contig extraction from the string graph.

The paper stops at the layout step ("This conversion makes it easier to
cluster sections of the graph into contigs", Section I); this module provides
that downstream clustering as a usable extension: maximal unbranched walks of
the bidirected string graph become contigs.

A read end is *unbranched* when exactly one string-graph edge attaches to it.
A contig is a maximal valid walk through unbranched interior ends; each read
appears in one contig (or as a singleton).  The walk respects bidirected
semantics: it enters each read at one end and leaves from the other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .string_graph import StringGraph

__all__ = ["Contig", "best_overlap_cleaning", "extract_contigs"]


@dataclass
class Contig:
    """A maximal unbranched walk: ordered reads with their orientations.

    ``orientations[t]`` is 0 when read ``reads[t]`` is traversed forward
    (entered at its Begin end), 1 when traversed reverse.
    """

    reads: list[int]
    orientations: list[int]

    def __len__(self) -> int:
        return len(self.reads)


def best_overlap_cleaning(graph: StringGraph) -> StringGraph:
    """Keep only mutual-best edges per read end (miniasm-style cleaning).

    Even a correctly reduced string graph keeps more than one edge per read
    end wherever containment gaps break two-hop paths (a contained overlap
    carries no edge, so the transitivity witness is missing).  The standard
    remedy before contig walking: at every (read, end) attachment keep the
    edge with the *smallest suffix* (longest overlap), and keep an overlap
    only when both endpoints choose it — the Best Overlap Graph.
    """
    best: dict[tuple[int, int], int] = {}
    for e in range(graph.n_edges):
        key = (int(graph.src[e]), int(graph.end_src[e]))
        if key not in best or graph.suffix[e] < graph.suffix[best[key]]:
            best[key] = e
    chosen = set(best.values())
    keep: list[int] = []
    for e in chosen:
        # The reverse entry of the same physical overlap.
        rev_key = (int(graph.dst[e]), int(graph.end_dst[e]))
        rev = best.get(rev_key)
        if rev is not None and int(graph.dst[rev]) == int(graph.src[e]) \
                and int(graph.end_dst[rev]) == int(graph.end_src[e]):
            keep.append(e)
    keep_arr = np.array(sorted(keep), dtype=np.int64)
    if keep_arr.shape[0] == 0:
        return StringGraph(graph.n_reads, *(np.empty(0, np.int64)
                                            for _ in range(5)))
    return StringGraph(graph.n_reads, graph.src[keep_arr],
                       graph.dst[keep_arr], graph.suffix[keep_arr],
                       graph.end_src[keep_arr], graph.end_dst[keep_arr],
                       graph.overlap_len[keep_arr])


def _attachment_index(graph: StringGraph) -> dict[tuple[int, int], list[int]]:
    """Map (read, end) -> list of edge indices attached to that read end."""
    att: dict[tuple[int, int], list[int]] = {}
    for e in range(graph.n_edges):
        att.setdefault((int(graph.src[e]), int(graph.end_src[e])), []).append(e)
    return att


def extract_contigs(graph: StringGraph, clean: bool = True) -> list[Contig]:
    """Greedy maximal unbranched walks over the string graph.

    Each physical overlap contributes directed entries in both orientations,
    so following out-edges with the opposite-end rule walks the bidirected
    graph correctly.  Walks stop at branch points (an end with ≠ 1 attached
    edge) and at already-visited reads; every read lands in exactly one
    contig.  With ``clean=True`` (default) the graph first goes through
    :func:`best_overlap_cleaning`.
    """
    if clean:
        graph = best_overlap_cleaning(graph)
    att = _attachment_index(graph)
    visited = np.zeros(graph.n_reads, dtype=bool)
    contigs: list[Contig] = []

    def walk(start: int, leave_end: int) -> tuple[list[int], list[int]]:
        """Walk from ``start`` leaving via ``leave_end``; returns the chain
        of (read, orientation) pairs after ``start``."""
        chain_reads: list[int] = []
        chain_orient: list[int] = []
        cur = start
        cur_leave = leave_end
        while True:
            edges = att.get((cur, cur_leave), [])
            if len(edges) != 1:
                break
            e = edges[0]
            nxt = int(graph.dst[e])
            enter = int(graph.end_dst[e])
            if visited[nxt]:
                break
            # The incoming attachment must also be unambiguous for the walk
            # to be unbranched from the next read's perspective.
            back = att.get((nxt, enter), [])
            if len(back) != 1:
                break
            visited[nxt] = True
            # Entering at Begin means forward traversal.
            chain_reads.append(nxt)
            chain_orient.append(0 if enter == 0 else 1)
            cur = nxt
            cur_leave = 1 - enter
        return chain_reads, chain_orient

    for v in range(graph.n_reads):
        if visited[v]:
            continue
        visited[v] = True
        # Extend in both directions: leaving via End (forward) and Begin.
        fwd_reads, fwd_orient = walk(v, 1)
        bwd_reads, bwd_orient = walk(v, 0)
        # Reverse the backward chain and flip orientations.
        reads = [r for r in reversed(bwd_reads)]
        orients = [1 - o for o in reversed(bwd_orient)]
        reads.append(v)
        orients.append(0)
        reads.extend(fwd_reads)
        orients.extend(fwd_orient)
        contigs.append(Contig(reads, orients))
    return contigs
