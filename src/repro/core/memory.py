"""Memory-budget planning for the strip-mined (blocked) overlap mode.

The paper's Section VIII names strip-mined candidate-matrix formation as
*the* memory-reduction path for large genomes at low concurrency: form only
one column strip of ``C = A·Aᵀ`` at a time, align it, prune it, move on.
What that section leaves open is **how many strips** — this module answers
it from a byte budget.

The estimate uses the measured ``nnz(A)`` and the BELLA density model the
paper builds its Table II/III statistics on: with the reliable-k-mer ceiling
applied, the average A-column density is ``a = nnz(A)/m`` (nonzeros per
k-mer), each column contributes ``~a²`` SUMMA products, and the strict upper
triangle halves them — so the candidate matrix tops out near
``m·a²/2`` entries of ``(2 + nfields)·8`` bytes each (COO row + col + the
:class:`~repro.core.semirings.PositionsSemiring` payload).  Duplicate seed
pairs merge during accumulation, so this is a deliberate over-estimate: a
budget chosen with it is safe, not merely likely.

:func:`plan_strips` turns the estimate into a strip count:
``n_strips = ceil(estimated_bytes / budget)``, clamped to ``[1, n_reads]``.
:func:`resolve_overlap_mode` gives the pipeline's ``overlap_mode="auto"``
the same environment override pattern as the execution engine
(``REPRO_OVERLAP_MODE``), which is how CI forces the whole suite through
the blocked path.
"""

from __future__ import annotations

import math
import os
import re
from dataclasses import dataclass

from .semirings import C_NFIELDS

__all__ = [
    "OVERLAP_MODES", "OVERLAP_MODE_ENV", "DEFAULT_N_STRIPS",
    "CHECKPOINT_DIR_ENV",
    "coo_nbytes", "estimate_candidate_nnz", "estimate_a_nnz",
    "StripPlan", "plan_strips",
    "BudgetPlan", "apportion_budget",
    "parse_bytes", "format_bytes", "resolve_overlap_mode",
    "resolve_checkpoint_dir",
]

#: Overlap-path names accepted by ``PipelineConfig.overlap_mode`` (plus
#: ``"auto"``, which resolves through :func:`resolve_overlap_mode`).
OVERLAP_MODES = ("monolithic", "blocked")

#: Environment variable consulted by ``overlap_mode="auto"``.
OVERLAP_MODE_ENV = "REPRO_OVERLAP_MODE"

#: Strip count used in blocked mode when neither ``n_strips`` nor a
#: ``memory_budget`` is given.
DEFAULT_N_STRIPS = 4

#: Environment variable consulted when no explicit checkpoint directory is
#: configured (mirrors :data:`OVERLAP_MODE_ENV`).
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"


def coo_nbytes(nnz: int, nfields: int) -> int:
    """Bytes of an ``nnz``-entry COO matrix with ``nfields`` value fields.

    Every array is int64: one row index, one column index, ``nfields``
    payload fields per entry — the storage layout of
    :class:`~repro.dsparse.coomat.CooMat`.
    """
    return int(nnz) * 8 * (2 + int(nfields))


def estimate_candidate_nnz(nnz_a: int, n_kmers: int) -> int:
    """BELLA-model upper estimate of ``nnz(C)`` for ``C = A·Aᵀ``.

    ``m`` columns of average density ``a = nnz(A)/m`` yield ``~m·a²``
    products; the strict upper triangle keeps half.  Merging of duplicate
    (read, read) pairs only shrinks the true count, so this bounds the
    expansion peak the SpGEMM must hold.  Because it starts from the
    *measured* ``nnz(A)``, the estimate is self-correcting under sketched
    seeding (``seed_mode=minimizer|syncmer``): a scheme that keeps a
    fraction ``f`` of the windows shrinks ``a`` by ``~f`` and the modeled
    candidate count by ``~f²`` — use :func:`estimate_a_nnz` when planning
    *before* A exists.
    """
    if nnz_a <= 0 or n_kmers <= 0:
        return 0
    a = nnz_a / n_kmers
    return int(math.ceil(n_kmers * a * a / 2.0))


def estimate_a_nnz(lengths, k: int, seed_fraction: float = 1.0) -> int:
    """Pre-scan upper estimate of ``nnz(A)`` from read lengths alone.

    Each read of length ``l`` has ``max(l - k + 1, 0)`` k-mer windows, of
    which the seeding scheme selects an expected ``seed_fraction``
    (:attr:`repro.seqs.seeding.SeedScheme.expected_seed_fraction`: 1 for
    full-k, ``~2/(w+1)`` for minimizers, ``1/w`` for open syncmers).
    Per-(read, k-mer) dedup and the reliable-multiplicity filter only
    remove entries, so this bounds the real ``nnz(A)`` — the pre-run
    counterpart of the measured value :func:`plan_strips` consumes.
    """
    windows = sum(max(int(l) - (k - 1), 0) for l in lengths)
    return int(math.ceil(windows * float(seed_fraction)))


@dataclass(frozen=True)
class StripPlan:
    """A scheduler decision: how many strips, and why.

    Attributes
    ----------
    n_strips:
        Chosen strip count (``>= 1``, ``<= n_reads``).
    est_candidate_nnz:
        Model estimate of the monolithic candidate-matrix entry count.
    est_candidate_bytes:
        The same estimate in bytes (:func:`coo_nbytes` of the C payload).
    memory_budget:
        The byte budget the plan honored, or ``None`` when the count came
        from an explicit ``n_strips`` or the default.
    """

    n_strips: int
    est_candidate_nnz: int
    est_candidate_bytes: int
    memory_budget: int | None

    @property
    def est_strip_bytes(self) -> int:
        """Expected per-strip candidate bytes under this plan."""
        return -(-self.est_candidate_bytes // self.n_strips)


def plan_strips(nnz_a: int, n_kmers: int, n_reads: int, *,
                memory_budget: int | None = None,
                n_strips: int | None = None,
                nfields: int = C_NFIELDS) -> StripPlan:
    """Pick a strip count for the blocked overlap mode.

    Precedence: an explicit ``n_strips`` wins; otherwise ``memory_budget``
    (bytes the live candidate strip may occupy) drives
    ``ceil(estimate / budget)``; otherwise :data:`DEFAULT_N_STRIPS`.  The
    result is clamped to ``[1, n_reads]`` — more strips than matrix columns
    only add empty SUMMA launches.
    """
    est_nnz = estimate_candidate_nnz(nnz_a, n_kmers)
    est_bytes = coo_nbytes(est_nnz, nfields)
    if n_strips is not None:
        chosen = int(n_strips)
        budget = None
    elif memory_budget is not None:
        if memory_budget <= 0:
            raise ValueError(f"memory_budget must be positive, got "
                             f"{memory_budget}")
        chosen = -(-est_bytes // memory_budget) if est_bytes else 1
        budget = int(memory_budget)
    else:
        chosen = DEFAULT_N_STRIPS
        budget = None
    chosen = max(1, min(chosen, max(1, int(n_reads))))
    return StripPlan(n_strips=chosen, est_candidate_nnz=est_nnz,
                     est_candidate_bytes=est_bytes, memory_budget=budget)


_BYTES_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([kmgt]?)i?b?\s*$",
                       re.IGNORECASE)
_BYTES_SCALE = {"": 1, "k": 2**10, "m": 2**20, "g": 2**30, "t": 2**40}


def parse_bytes(text: str | int) -> int:
    """Parse a byte count like ``"64M"``, ``"1.5GiB"``, or a plain int.

    Suffixes are binary (K/M/G/T = 2¹⁰/2²⁰/2³⁰/2⁴⁰), case-insensitive,
    with optional ``iB``/``B``.
    """
    if isinstance(text, int):
        return text
    m = _BYTES_RE.match(text)
    if m is None:
        raise ValueError(f"cannot parse byte count {text!r} "
                         f"(expected e.g. 67108864, 64M, 1.5G)")
    return int(float(m.group(1)) * _BYTES_SCALE[m.group(2).lower()])


def format_bytes(n_bytes: int) -> str:
    """Human-readable binary-suffixed rendering (inverse of parse_bytes).

    Covers every tier :func:`parse_bytes` accepts — through TiB — so the
    round trip ``parse_bytes(format_bytes(n))`` always lands within the
    one-decimal rendering error (``format_bytes(parse_bytes("1.5T"))`` is
    ``"1.5 TiB"``, not ``"1536.0 GiB"``).
    """
    n = float(n_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024 or suffix == "TiB":
            return f"{n:.0f} {suffix}" if suffix == "B" else f"{n:.1f} {suffix}"
        n /= 1024
    return f"{n:.1f} TiB"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class BudgetPlan:
    """How one ``--memory-budget`` is apportioned across the big consumers.

    The three resident giants of a run are the live candidate strip, the
    per-rank k-mer tables, and everything else (matrices under SpGEMM,
    alignment scratch, the interpreter).  One budget covers all three:

    ==========  =====  ================================================
    share       split  enforced by
    ==========  =====  ================================================
    candidate    1/2   :func:`plan_strips` (strip count ceil(est/share))
    tables       1/4   spill threshold in ``count_kmers`` (per-rank)
    headroom    rest   unmanaged slack for transient scratch
    ==========  =====  ================================================

    The split is deliberately static (not measured): both enforcement
    mechanisms are safe-side — a smaller candidate share only adds strips,
    a smaller table share only adds spill runs — and a static split keeps
    the plan deterministic across backends, which the byte-identity
    contract requires.
    """

    total: int
    candidate: int
    tables: int

    @property
    def headroom(self) -> int:
        """Bytes left unassigned for transient scratch."""
        return self.total - self.candidate - self.tables


def apportion_budget(total: int) -> BudgetPlan:
    """Split one byte budget across candidate strip + k-mer tables.

    Candidate gets half, tables a quarter, the rest is headroom; every
    share is at least one byte so the downstream ceilings stay positive.
    """
    total = int(total)
    if total <= 0:
        raise ValueError(f"memory budget must be positive, got {total}")
    return BudgetPlan(total=total, candidate=max(1, total // 2),
                      tables=max(1, total // 4))


def resolve_overlap_mode(mode: str | None = None) -> str:
    """Resolve an overlap-mode name to ``"monolithic"`` or ``"blocked"``.

    ``None`` and ``"auto"`` defer to the :data:`OVERLAP_MODE_ENV`
    environment variable when set (mirroring ``REPRO_EXECUTOR``), else pick
    the monolithic default; explicit names pass through validated.
    """
    if mode is None:
        mode = "auto"
    if mode == "auto":
        env = os.environ.get(OVERLAP_MODE_ENV, "").strip().lower()
        mode = env if env and env != "auto" else "monolithic"
    if mode not in OVERLAP_MODES:
        raise ValueError(f"unknown overlap mode {mode!r}; expected one of "
                         f"{', '.join(OVERLAP_MODES + ('auto',))}")
    return mode


def resolve_checkpoint_dir(directory: str | None = None) -> str | None:
    """Resolve the strip-checkpoint directory, if any.

    An explicit ``directory`` wins; otherwise the
    :data:`CHECKPOINT_DIR_ENV` environment variable is consulted, and
    ``None`` (checkpointing off) is the default — strip checkpointing only
    applies on the blocked overlap path.
    """
    if directory:
        return str(directory)
    env = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    return env or None
