"""Blocked (strip-mined) overlap detection — the paper's future-work mode.

Section VIII: *"we can form only a part of the candidate overlap matrix in
each time step, aligning only sequences belonging to this part, and removing
the spurious entries before moving on to the next region of the output
matrix"* — the memory-reduction plan that lets large genomes run at low
concurrency.

:func:`candidate_overlaps_blocked` implements exactly that: ``C = A·Aᵀ`` is
computed in ``n_strips`` column strips ``C[:, lo:hi] = A · Aᵀ[:, lo:hi]``;
each strip is aligned and pruned to its R entries immediately, so at no
point does more than one strip of candidate entries exist.  The union of
strip results is bit-identical to the monolithic path (tested), while peak
candidate-matrix memory drops by ~``n_strips``.

Strips are mutually independent, so they double as coarse-grained work
units for the shared-memory execution engine (:mod:`repro.exec`): each
strip runs its SUMMA + alignment against a **private** tracker and timer,
and the per-strip accounting is merged back in strip order — the ordered
deterministic reduction that keeps R, the communication records, and the
peak-memory marks byte-identical for every executor and worker count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..align.batch import resolve_align_impl
from ..align.xdrop import Scoring
from ..dsparse.backend import Backend, get_backend
from ..dsparse.distmat import DistMat
from ..dsparse.masked import resolve_spgemm_impl
from ..exec import Executor, SERIAL
from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import CommTracker, StageTimer
from ..resilience.checkpoint import StripCheckpoint
from ..resilience.faults import maybe_fault
from ..seqs.fasta import ReadSet
from .memory import coo_nbytes
from .overlap import AlignmentFilter, align_candidates, summa_positions
from .semirings import R_NFIELDS

__all__ = ["BlockedOverlapResult", "candidate_overlaps_blocked"]


@dataclass
class BlockedOverlapResult:
    """Outcome of strip-mined overlap detection.

    Attributes
    ----------
    R:
        The overlap matrix (identical to the monolithic pipeline's R).
    nnz_c:
        Total candidate entries over all strips (equals monolithic nnz(C)).
    peak_strip_nnz:
        Largest per-strip candidate count — the actual memory high-water
        mark, to compare against ``nnz_c``.
    n_strips:
        Number of strips executed.
    peak_strip_bytes:
        Byte size of the largest live candidate strip (measured before the
        upper-triangle prune — the true expansion peak), as recorded in the
        timer's ``SpGEMM`` high-water mark.
    """

    R: DistMat
    nnz_c: int
    peak_strip_nnz: int
    n_strips: int
    peak_strip_bytes: int = 0


def _strip_task(ctx, task):
    """Executor task: one strip's SUMMA + triangle prune + alignment.

    Runs against a private communicator/timer so strips can execute on any
    worker; returns the strip's global R entries plus its accounting for
    the parent to merge in strip order.  The task carries its own narrow
    ``Aᵀ`` strip (sliced in the parent), so a process pool never ships the
    full transpose to a worker.
    """
    A, reads, k, nprocs, mode, scoring, filt, fuzz, backend, align_impl, \
        spgemm_impl = ctx
    lo, hi, At_strip = task
    backend = get_backend(backend)
    tracker = CommTracker(nprocs)
    comm = SimComm(nprocs, tracker)
    timer = StageTimer()
    n = A.shape[0]

    # The strip product (the expansion peak — the strip as SUMMA produced
    # it, before pruning — is recorded inside, from the count pattern when
    # the masked engine decomposes the product with the strip's column
    # offset in its triangle mask).
    C_strip = summa_positions(A, At_strip, comm, timer, backend, None,
                              spgemm_impl, col_offset=lo)
    # Keep the strict upper triangle in *global* coordinates.
    q = C_strip.grid.q
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            b = C_strip.blocks[i][j]
            gr = b.row + C_strip.row_bounds[i]
            gc = b.col + C_strip.col_bounds[j] + lo
            brow.append(backend.select(b, gr < gc))
        blocks.append(brow)
    C_strip = DistMat(C_strip.shape, C_strip.grid, blocks, C_strip.nfields)
    strip_nnz = C_strip.nnz()

    # Align and prune this strip immediately (the memory saver): the
    # aligner works in global row coordinates; shift columns back.
    shifted = _shift_columns(C_strip, lo, n)
    R_strip = align_candidates(shifted, reads, k, comm, timer,
                               mode=mode, scoring=scoring, filt=filt,
                               fuzz=fuzz, impl=align_impl)
    g = R_strip.to_global()
    coo = (g.row, g.col, g.vals) if g.nnz else None
    return coo, strip_nnz, timer, tracker


def _strip_fingerprint(A: DistMat, reads: ReadSet, k: int, nprocs: int,
                       mode: str, scoring, filt, fuzz: int,
                       align_impl: str, spgemm_impl: str,
                       spans: list[tuple[int, int]]) -> str:
    """SHA-256 over everything a strip's result depends on.

    Stored in the checkpoint manifest so a resume against a directory
    written by a different input set / parameterization / strip layout is
    refused instead of silently merged.
    """
    h = hashlib.sha256()
    g = A.to_global()
    for arr in (g.row, g.col, g.vals):
        h.update(np.ascontiguousarray(arr).tobytes())
    # Backend-invariant read fingerprint: the mmap store returns its
    # manifest digest, in-memory sets hash the same byte stream in
    # bounded chunks — either way the bases are never materialized here.
    h.update(reads.content_fingerprint().encode())
    h.update(repr((A.shape, A.grid.q, k, nprocs, mode, scoring, filt, fuzz,
                   align_impl, spgemm_impl, spans)).encode())
    return h.hexdigest()


def candidate_overlaps_blocked(A: DistMat, reads: ReadSet, k: int,
                               comm: SimComm, n_strips: int,
                               timer: StageTimer | None = None, *,
                               mode: str = "chain",
                               scoring: Scoring | None = None,
                               filt: AlignmentFilter | None = None,
                               fuzz: int = 100,
                               backend: Backend | str | None = None,
                               executor: Executor | None = None,
                               align_impl: str | None = None,
                               spgemm_impl: str | None = None,
                               checkpoint_dir: str | None = None
                               ) -> BlockedOverlapResult:
    """Strip-mined ``C = A·Aᵀ`` with per-strip alignment and pruning.

    Parameters mirror :func:`~repro.core.overlap.candidate_overlaps` +
    :func:`~repro.core.overlap.align_candidates`; ``n_strips`` controls the
    peak-memory / latency trade-off (each strip is one Sparse SUMMA over a
    narrower ``Aᵀ``); ``backend`` selects the local kernels; ``align_impl``
    the per-strip alignment engine (resolved once here so every strip task
    runs the same engine regardless of worker environment).  ``executor``
    spreads whole strips over workers — each strip's private accounting is
    merged back in strip order, so results, communication records, and
    peak-memory marks are byte-identical for every executor.

    ``checkpoint_dir`` enables crash-safe strip checkpointing: each
    completed strip's result is persisted atomically to that directory
    (under a fingerprint-stamped manifest), and a re-invoked run with the
    same directory skips the strips already on disk — resuming a killed
    run at the last completed strip with byte-identical output.  A
    directory written by a different configuration is refused
    (:class:`~repro.resilience.checkpoint.CheckpointMismatch`).
    """
    timer = timer if timer is not None else StageTimer()
    executor = executor if executor is not None else SERIAL
    backend = get_backend(backend)
    scoring = scoring if scoring is not None else Scoring()
    filt = filt if filt is not None else AlignmentFilter()
    align_impl = resolve_align_impl(align_impl)
    spgemm_impl = resolve_spgemm_impl(spgemm_impl)
    n = A.shape[0]
    At = A.transpose(backend=backend)
    bounds = block_bounds(n, n_strips)
    spans = [(int(bounds[s]), int(bounds[s + 1])) for s in range(n_strips)
             if bounds[s] < bounds[s + 1]]
    # Slice the strips up front and let At go: together the strips hold
    # exactly At's entries, and each worker only ever receives its own.
    tasks = [(lo, hi, At.column_slice(lo, hi)) for lo, hi in spans]
    del At

    ctx = (A, reads, k, comm.nprocs, mode, scoring, filt, fuzz, backend,
           align_impl, spgemm_impl)
    # Weight by the strip's At entries — the SUMMA flops and downstream
    # candidate count scale with them, while block_bounds makes the column
    # widths near-uniform and thus balance-blind under skew.
    weights = [max(1, strip.nnz()) for _lo, _hi, strip in tasks]
    if checkpoint_dir is None:
        results, _secs = executor.run_timed(_strip_task, tasks, context=ctx,
                                            weights=weights)
    else:
        results = _run_checkpointed(executor, tasks, ctx, weights,
                                    checkpoint_dir, A, reads, k, comm.nprocs,
                                    mode, scoring, filt, fuzz, align_impl,
                                    spgemm_impl, spans)

    nnz_c = 0
    peak = 0
    peak_bytes = 0
    partial_R: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    # Ordered merge: strip order, independent of the execution schedule.
    for coo, strip_nnz, strip_timer, strip_tracker in results:
        nnz_c += strip_nnz
        peak = max(peak, strip_nnz)
        peak_bytes = max(peak_bytes,
                         strip_timer.stage_peak_bytes.get("SpGEMM", 0))
        timer.merge(strip_timer)
        comm.tracker.merge(strip_tracker)
        if coo is not None:
            partial_R.append(coo)

    if partial_R:
        rows = np.concatenate([p[0] for p in partial_R])
        cols = np.concatenate([p[1] for p in partial_R])
        vals = np.vstack([p[2] for p in partial_R])
    else:
        rows = cols = np.empty(0, np.int64)
        vals = np.empty((0, R_NFIELDS), np.int64)
    # The assembled R is the same matrix as the monolithic path's, so the
    # Alignment-stage high-water mark must not pretend to be per-strip:
    # strip-mining shrinks the candidate peak (SpGEMM), never R's.
    timer.record_peak_bytes("Alignment", coo_nbytes(rows.shape[0], R_NFIELDS))
    R = DistMat.from_coo((n, n), A.grid, rows, cols, vals)
    return BlockedOverlapResult(R=R, nnz_c=nnz_c, peak_strip_nnz=peak,
                                n_strips=n_strips,
                                peak_strip_bytes=peak_bytes)


def _run_checkpointed(executor: Executor, tasks: list, ctx, weights,
                      checkpoint_dir: str, A: DistMat, reads: ReadSet,
                      k: int, nprocs: int, mode: str, scoring, filt,
                      fuzz: int, align_impl: str, spgemm_impl: str,
                      spans: list[tuple[int, int]]) -> list:
    """Run strips with per-strip persistence, resuming completed ones.

    Strips execute in waves of ``executor.workers`` so each result lands
    on disk shortly after it completes (one big ``run_timed`` would hold
    everything in memory until the last strip finished, leaving a killed
    run with nothing to resume from).  Already-persisted strips are loaded
    instead of recomputed; the returned list is in strip order either way,
    so the caller's ordered merge — and thus R/S/tracker bytes — cannot
    tell a resumed run from a straight-through one.
    """
    fingerprint = _strip_fingerprint(A, reads, k, nprocs, mode, scoring,
                                     filt, fuzz, align_impl, spgemm_impl,
                                     spans)
    ckpt = StripCheckpoint(checkpoint_dir, fingerprint, len(tasks)).open()
    pending = [i for i in range(len(tasks)) if not ckpt.has(i)]
    wave_size = max(1, executor.workers)
    for w in range(0, len(pending), wave_size):
        wave = pending[w:w + wave_size]
        wave_results, _secs = executor.run_timed(
            _strip_task, [tasks[i] for i in wave], context=ctx,
            weights=[weights[i] for i in wave])
        for i, result in zip(wave, wave_results):
            # Fires *before* the save: an injected crash here models dying
            # mid-checkpoint — the strip is lost, the directory stays
            # consistent, and a resume recomputes exactly this strip.
            maybe_fault("strip.checkpoint")
            ckpt.save(i, result)
    return [ckpt.load(i) for i in range(len(tasks))]


def _shift_columns(C: DistMat, offset: int, n_cols: int) -> DistMat:
    """Re-embed a column strip into the full ``n×n`` coordinate space."""
    g = C.to_global()
    return DistMat.from_coo((C.shape[0], n_cols), C.grid, g.row,
                            g.col + offset, g.vals)
