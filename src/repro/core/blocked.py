"""Blocked (strip-mined) overlap detection — the paper's future-work mode.

Section VIII: *"we can form only a part of the candidate overlap matrix in
each time step, aligning only sequences belonging to this part, and removing
the spurious entries before moving on to the next region of the output
matrix"* — the memory-reduction plan that lets large genomes run at low
concurrency.

:func:`candidate_overlaps_blocked` implements exactly that: ``C = A·Aᵀ`` is
computed in ``n_strips`` column strips ``C[:, lo:hi] = A · Aᵀ[:, lo:hi]``;
each strip is aligned and pruned to its R entries immediately, so at no
point does more than one strip of candidate entries exist.  The union of
strip results is bit-identical to the monolithic path (tested), while peak
candidate-matrix memory drops by ~``n_strips``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.xdrop import Scoring
from ..dsparse.backend import Backend, get_backend
from ..dsparse.coomat import CooMat
from ..dsparse.distmat import DistMat
from ..dsparse.summa import summa
from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import StageTimer
from ..seqs.fasta import ReadSet
from .overlap import AlignmentFilter, align_candidates
from .semirings import PositionsSemiring

__all__ = ["BlockedOverlapResult", "candidate_overlaps_blocked"]


@dataclass
class BlockedOverlapResult:
    """Outcome of strip-mined overlap detection.

    Attributes
    ----------
    R:
        The overlap matrix (identical to the monolithic pipeline's R).
    nnz_c:
        Total candidate entries over all strips (equals monolithic nnz(C)).
    peak_strip_nnz:
        Largest per-strip candidate count — the actual memory high-water
        mark, to compare against ``nnz_c``.
    n_strips:
        Number of strips executed.
    """

    R: DistMat
    nnz_c: int
    peak_strip_nnz: int
    n_strips: int


def _column_strip(At: DistMat, lo: int, hi: int) -> DistMat:
    """Columns ``[lo, hi)`` of a distributed matrix as a narrower DistMat."""
    grid = At.grid
    q = grid.q
    strip_cb = grid.col_bounds(hi - lo)
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            c0, c1 = int(strip_cb[j]), int(strip_cb[j + 1])
            # Global source columns of this strip block.
            g0, g1 = lo + c0, lo + c1
            # Collect from the source blocks overlapping [g0, g1).
            rows, cols, vals = [], [], []
            for sj in range(q):
                s0, s1 = int(At.col_bounds[sj]), int(At.col_bounds[sj + 1])
                o0, o1 = max(g0, s0), min(g1, s1)
                if o0 >= o1:
                    continue
                b = At.blocks[i][sj]
                gcol = b.col + s0
                m = (gcol >= o0) & (gcol < o1)
                rows.append(b.row[m])
                cols.append(gcol[m] - g0)
                vals.append(b.vals[m])
            if rows:
                brow.append(CooMat(
                    (int(At.row_bounds[i + 1] - At.row_bounds[i]), c1 - c0),
                    np.concatenate(rows), np.concatenate(cols),
                    np.vstack(vals)))
            else:
                brow.append(CooMat.empty(
                    (int(At.row_bounds[i + 1] - At.row_bounds[i]), c1 - c0),
                    At.nfields))
        blocks.append(brow)
    return DistMat((At.shape[0], hi - lo), grid, blocks, At.nfields)


def candidate_overlaps_blocked(A: DistMat, reads: ReadSet, k: int,
                               comm: SimComm, n_strips: int,
                               timer: StageTimer | None = None, *,
                               mode: str = "chain",
                               scoring: Scoring | None = None,
                               filt: AlignmentFilter | None = None,
                               fuzz: int = 100,
                               backend: Backend | str | None = None
                               ) -> BlockedOverlapResult:
    """Strip-mined ``C = A·Aᵀ`` with per-strip alignment and pruning.

    Parameters mirror :func:`~repro.core.overlap.candidate_overlaps` +
    :func:`~repro.core.overlap.align_candidates`; ``n_strips`` controls the
    peak-memory / latency trade-off (each strip is one Sparse SUMMA over a
    narrower ``Aᵀ``); ``backend`` selects the local kernels.
    """
    timer = timer if timer is not None else StageTimer()
    backend = get_backend(backend)
    n = A.shape[0]
    At = A.transpose(backend=backend)
    strips = block_bounds(n, n_strips)

    nnz_c = 0
    peak = 0
    partial_R: list[CooMat] = []
    for s in range(n_strips):
        lo, hi = int(strips[s]), int(strips[s + 1])
        if lo == hi:
            continue
        At_strip = _column_strip(At, lo, hi)
        C_strip = summa(A, At_strip, PositionsSemiring(), comm,
                        "SpGEMM", timer, backend=backend)
        # Keep the strict upper triangle in *global* coordinates.
        q = C_strip.grid.q
        blocks = []
        for i in range(q):
            brow = []
            for j in range(q):
                b = C_strip.blocks[i][j]
                gr = b.row + C_strip.row_bounds[i]
                gc = b.col + C_strip.col_bounds[j] + lo
                brow.append(backend.select(b, gr < gc))
            blocks.append(brow)
        C_strip = DistMat(C_strip.shape, C_strip.grid, blocks,
                          C_strip.nfields)
        strip_nnz = C_strip.nnz()
        nnz_c += strip_nnz
        peak = max(peak, strip_nnz)

        # Align and prune this strip immediately (the memory saver): the
        # aligner works in global row coordinates; shift columns back.
        shifted = _shift_columns(C_strip, lo, n)
        R_strip = align_candidates(shifted, reads, k, comm, timer,
                                   mode=mode, scoring=scoring, filt=filt,
                                   fuzz=fuzz)
        g = R_strip.to_global()
        if g.nnz:
            partial_R.append(g)

    if partial_R:
        rows = np.concatenate([p.row for p in partial_R])
        cols = np.concatenate([p.col for p in partial_R])
        vals = np.vstack([p.vals for p in partial_R])
    else:
        rows = cols = np.empty(0, np.int64)
        vals = np.empty((0, 4), np.int64)
    R = DistMat.from_coo((n, n), A.grid, rows, cols, vals)
    return BlockedOverlapResult(R=R, nnz_c=nnz_c, peak_strip_nnz=peak,
                                n_strips=n_strips)


def _shift_columns(C: DistMat, offset: int, n_cols: int) -> DistMat:
    """Re-embed a column strip into the full ``n×n`` coordinate space."""
    g = C.to_global()
    return DistMat.from_coo((C.shape[0], n_cols), C.grid, g.row,
                            g.col + offset, g.vals)
