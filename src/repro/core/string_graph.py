"""Bidirected string graph model and walk semantics.

The layout step's output is a *string graph* (paper Section II): vertices
are reads, edges are overlap **suffixes** (overhangs) with a bidirected head
at each end.  We encode heads as *end attachments* — which end of the read
(Begin=0 / End=1, in the read's forward orientation) the edge joins — which
is equivalent to the arrow-head formulation (DESIGN.md §5) and makes the
walk rules mechanical:

* a walk ``… → k → …`` is **valid** iff the edge arriving at ``k`` and the
  edge leaving ``k`` attach to *opposite* ends of ``k`` (Fig. 2's rule);
* edge ``i→j`` is a **transitive candidate** of path ``i→k→j`` iff the path's
  end attachments at ``i`` and ``j`` equal the direct edge's (rules (b), (c)
  of Section II).

:class:`StringGraph` is the friendly array view of the ``R``/``S`` matrices
used by baselines, metrics, examples and tests; the pipeline itself operates
on distributed matrices and converts at the edges of the API.
"""

from __future__ import annotations

import numpy as np

from ..dsparse.coomat import CooMat
from .semirings import R_END_I, R_END_J, R_OLEN, R_SUFFIX

__all__ = ["StringGraph"]


class StringGraph:
    """Directed-pair view of a bidirected overlap/string graph.

    Every physical overlap appears as two directed entries, ``(i, j)`` and
    ``(j, i)``, whose suffixes are the two walk directions' overhangs —
    exactly the symmetric ``R`` matrix of the pipeline.
    """

    def __init__(self, n_reads: int, src: np.ndarray, dst: np.ndarray,
                 suffix: np.ndarray, end_src: np.ndarray, end_dst: np.ndarray,
                 overlap_len: np.ndarray | None = None) -> None:
        self.n_reads = int(n_reads)
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.suffix = np.asarray(suffix, dtype=np.int64)
        self.end_src = np.asarray(end_src, dtype=np.int64)
        self.end_dst = np.asarray(end_dst, dtype=np.int64)
        self.overlap_len = (np.asarray(overlap_len, dtype=np.int64)
                            if overlap_len is not None
                            else np.zeros_like(self.suffix))

    # -- conversions -------------------------------------------------------
    @classmethod
    def from_coomat(cls, mat: CooMat) -> "StringGraph":
        if mat.shape[0] != mat.shape[1]:
            raise ValueError("string graph matrix must be square")
        return cls(mat.shape[0], mat.row, mat.col,
                   mat.vals[:, R_SUFFIX], mat.vals[:, R_END_I],
                   mat.vals[:, R_END_J], mat.vals[:, R_OLEN])

    def to_coomat(self) -> CooMat:
        vals = np.stack([self.suffix, self.end_src, self.end_dst,
                         self.overlap_len], axis=1)
        return CooMat((self.n_reads, self.n_reads), self.src, self.dst, vals)

    # -- basic queries -----------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Directed entry count (2× the physical overlap count)."""
        return int(self.src.shape[0])

    def edge_set(self) -> set[tuple[int, int]]:
        return set(zip(self.src.tolist(), self.dst.tolist()))

    def out_edges(self, v: int) -> np.ndarray:
        """Indices (into the edge arrays) of entries with source ``v``."""
        return np.flatnonzero(self.src == v)

    def degree_histogram(self) -> dict[int, int]:
        deg = np.bincount(self.src, minlength=self.n_reads)
        uniq, cnt = np.unique(deg, return_counts=True)
        return {int(u): int(c) for u, c in zip(uniq, cnt)}

    def density(self) -> float:
        """Average nonzeros per row (the paper's per-row density r/s)."""
        return self.n_edges / max(1, self.n_reads)

    # -- walk semantics ----------------------------------------------------
    def is_valid_walk(self, edge_indices: list[int]) -> bool:
        """Check Fig. 2's validity for a sequence of edge-array indices.

        Consecutive edges must chain (``dst`` of one is ``src`` of the next)
        and attach to opposite ends of every intermediate read.
        """
        for a, b in zip(edge_indices, edge_indices[1:]):
            if self.dst[a] != self.src[b]:
                return False
            if self.end_dst[a] == self.end_src[b]:
                return False
        return True

    def transitive_edges_bruteforce(self, fuzz: int = 0,
                                    use_rowmax: bool = True
                                    ) -> set[tuple[int, int]]:
        """Reference transitive-edge enumeration (O(E·deg), tests only).

        For every two-edge valid walk ``i→k→j`` with end attachments matching
        a direct edge ``i→j``, mark the direct edge transitive when the walk
        suffix sum is at most the tolerance bound: the direct edge's own
        suffix + ``fuzz`` (Myers' rule, ``use_rowmax=False``) or row i's max
        suffix + ``fuzz`` (the paper's Algorithm 2, ``use_rowmax=True``).
        """
        by_src: dict[int, list[int]] = {}
        for idx in range(self.n_edges):
            by_src.setdefault(int(self.src[idx]), []).append(idx)
        direct: dict[tuple[int, int], int] = {
            (int(self.src[e]), int(self.dst[e])): e
            for e in range(self.n_edges)}
        rowmax: dict[int, int] = {}
        for e in range(self.n_edges):
            s = int(self.src[e])
            rowmax[s] = max(rowmax.get(s, 0), int(self.suffix[e]))
        marked: set[tuple[int, int]] = set()
        for e1 in range(self.n_edges):
            i, k = int(self.src[e1]), int(self.dst[e1])
            for e2 in by_src.get(k, ()):
                j = int(self.dst[e2])
                if j == i:
                    continue
                if self.end_dst[e1] == self.end_src[e2]:
                    continue  # invalid walk through k
                d = direct.get((i, j))
                if d is None:
                    continue
                if self.end_src[d] != self.end_src[e1]:
                    continue
                if self.end_dst[d] != self.end_dst[e2]:
                    continue
                bound = (rowmax[i] if use_rowmax else int(self.suffix[d])) + fuzz
                if int(self.suffix[e1]) + int(self.suffix[e2]) <= bound:
                    marked.add((i, j))
        return marked

    def subgraph_without(self, edges: set[tuple[int, int]]) -> "StringGraph":
        """New graph dropping the listed directed entries."""
        keep = np.array([(int(s), int(d)) not in edges
                         for s, d in zip(self.src, self.dst)], dtype=bool)
        return StringGraph(self.n_reads, self.src[keep], self.dst[keep],
                           self.suffix[keep], self.end_src[keep],
                           self.end_dst[keep], self.overlap_len[keep])

    def __repr__(self) -> str:  # pragma: no cover
        return f"StringGraph(n={self.n_reads}, entries={self.n_edges})"
