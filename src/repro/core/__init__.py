"""diBELLA 2D core: semirings, overlap detection, transitive reduction,
string graph, pipeline and contig extraction."""

from .semirings import (A_FLIP, A_NFIELDS, A_POS, BidirectedMinPlus, C_COUNT,
                        C_NFIELDS, C_PA1, C_PA2, C_PB1, C_PB2, C_STRAND1,
                        C_STRAND2, PositionsSemiring, R_END_I, R_END_J,
                        R_NFIELDS, R_OLEN, R_SUFFIX, n_slot)
from .memory import (DEFAULT_N_STRIPS, OVERLAP_MODES, StripPlan,
                     estimate_candidate_nnz, format_bytes, parse_bytes,
                     plan_strips, resolve_overlap_mode)
from .string_graph import StringGraph
from .overlap import (AlignmentFilter, align_candidates, build_a_matrix,
                      candidate_overlaps, exchange_reads)
from .transitive_reduction import (TransitiveReductionResult,
                                   transitive_reduction)
from .pipeline import (STAGES, PipelineConfig, PipelineResult, run_pipeline,
                       run_pipeline_from_fasta)
from .contigs import Contig, best_overlap_cleaning, extract_contigs
from .blocked import BlockedOverlapResult, candidate_overlaps_blocked

__all__ = [
    "A_FLIP", "A_NFIELDS", "A_POS", "BidirectedMinPlus", "C_COUNT",
    "C_NFIELDS", "C_PA1", "C_PA2", "C_PB1", "C_PB2", "C_STRAND1",
    "C_STRAND2", "PositionsSemiring",
    "R_END_I", "R_END_J", "R_NFIELDS", "R_OLEN", "R_SUFFIX", "n_slot",
    "DEFAULT_N_STRIPS", "OVERLAP_MODES", "StripPlan",
    "estimate_candidate_nnz", "format_bytes", "parse_bytes",
    "plan_strips", "resolve_overlap_mode",
    "StringGraph",
    "AlignmentFilter", "align_candidates", "build_a_matrix",
    "candidate_overlaps", "exchange_reads",
    "TransitiveReductionResult", "transitive_reduction",
    "STAGES", "PipelineConfig", "PipelineResult", "run_pipeline",
    "run_pipeline_from_fasta",
    "Contig", "best_overlap_cleaning", "extract_contigs",
    "BlockedOverlapResult", "candidate_overlaps_blocked",
]
