"""diBELLA 2D core: semirings, overlap detection, transitive reduction,
string graph, pipeline and contig extraction."""

from .semirings import (A_FLIP, A_POS, BidirectedMinPlus, C_COUNT, C_PA1,
                        C_PA2, C_PB1, C_PB2, C_STRAND1, C_STRAND2,
                        PositionsSemiring, R_END_I, R_END_J, R_OLEN, R_SUFFIX,
                        n_slot)
from .string_graph import StringGraph
from .overlap import (AlignmentFilter, align_candidates, build_a_matrix,
                      candidate_overlaps, exchange_reads)
from .transitive_reduction import (TransitiveReductionResult,
                                   transitive_reduction)
from .pipeline import (STAGES, PipelineConfig, PipelineResult, run_pipeline,
                       run_pipeline_from_fasta)
from .contigs import Contig, best_overlap_cleaning, extract_contigs
from .blocked import BlockedOverlapResult, candidate_overlaps_blocked

__all__ = [
    "A_FLIP", "A_POS", "BidirectedMinPlus", "C_COUNT", "C_PA1", "C_PA2",
    "C_PB1", "C_PB2", "C_STRAND1", "C_STRAND2", "PositionsSemiring",
    "R_END_I", "R_END_J", "R_OLEN", "R_SUFFIX", "n_slot",
    "StringGraph",
    "AlignmentFilter", "align_candidates", "build_a_matrix",
    "candidate_overlaps", "exchange_reads",
    "TransitiveReductionResult", "transitive_reduction",
    "STAGES", "PipelineConfig", "PipelineResult", "run_pipeline",
    "run_pipeline_from_fasta",
    "Contig", "best_overlap_cleaning", "extract_contigs",
    "BlockedOverlapResult", "candidate_overlaps_blocked",
]
