"""Distributed overlap detection: A construction, C = A·Aᵀ, alignment, R.

This module covers Algorithm 1 lines 4–8:

* :func:`build_a_matrix` — the |reads|×|k-mers| matrix ``A`` (one nonzero per
  (read, reliable k-mer) occurrence carrying the position and the
  canonical-flip bit), distributed on the 2D grid with the construction
  traffic charged to ``CreateSpMat``;
* :func:`candidate_overlaps` — ``C = A·Aᵀ`` by Sparse SUMMA under the
  :class:`~repro.core.semirings.PositionsSemiring` (stage ``SpGEMM``),
  restricted to the strict upper triangle (each pair aligned once);
* :func:`exchange_reads` — the read exchange: every grid rank fetches the
  full row-range and column-range of sequences it may align, charged to
  ``ExchangeRead`` (the paper's eager option (b), Section IV-D, which is what
  makes the 2D volume ``2nl/√P``);
* :func:`align_candidates` — seed-and-extend alignment (x-drop or chain
  mode) on every C nonzero, score pruning, overlap classification, and
  assembly of the symmetric overlap matrix ``R`` with
  ``[suffix, end_i, end_j, overlap_len]`` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.batch import (chain_extend_batch, extend_seeds_xdrop_batch,
                           resolve_align_impl)
from ..align.overlapper import (OverlapClass, classify_overlap,
                                classify_overlap_batch)
from ..align.xdrop import AlignmentResult, Scoring, chain_extend, \
    seed_extend_align
from ..dsparse.backend import Backend, get_backend
from ..dsparse.coomat import CooMat
from ..dsparse.distmat import DistMat
from ..dsparse.masked import resolve_spgemm_impl
from ..dsparse.semiring import PlusTimes
from ..dsparse.summa import summa
from ..exec import Executor, SERIAL
from ..exec.partition import weighted_chunks
from ..mpisim.comm import SimComm
from ..mpisim.grid import ProcessGrid2D, block_bounds
from ..mpisim.tracker import CommTracker, StageTimer
from ..seqs.fasta import ReadSet
from ..seqs.kmer_counter import KmerTable, resolve_kmer_impl
from ..seqs.seeding import FullKScheme, SeedScheme
from .memory import coo_nbytes
from .semirings import (A_FLIP, A_POS, C_COUNT, C_NFIELDS, C_PA1, C_PA2,
                        C_PB1, C_PB2, C_STRAND1, C_STRAND2,
                        PositionsSemiring, R_END_I, R_END_J, R_NFIELDS,
                        R_OLEN, R_SUFFIX)

__all__ = ["AlignmentFilter", "build_a_matrix", "charge_a_routing",
           "candidate_overlaps", "exchange_reads", "align_candidates"]


@dataclass(frozen=True)
class AlignmentFilter:
    """Score-threshold policy for pruning candidate overlaps.

    An alignment passes when ``score >= max(min_score, ratio·overlap_len)``
    and the aligned span is at least ``min_overlap`` — the BELLA-style
    adaptive threshold ``t`` of Algorithm 1 line 8.
    """

    min_score: int = 50
    min_overlap: int = 200
    ratio: float = 0.4

    def passes(self, score: int, overlap_len: int) -> bool:
        if overlap_len < self.min_overlap:
            return False
        return score >= max(self.min_score, int(self.ratio * overlap_len))


def _a_scan_task(ctx, span):
    """Executor task: one 1D rank's (read, seed k-mer) entry scan."""
    reads, table, scheme = ctx
    lo, hi = span
    rr, cc, vv = [], [], []
    for gi in range(lo, hi):
        keys, seed_pos, seed_flip = scheme.seeds_of_read(reads[gi])
        if keys.shape[0] == 0:
            continue
        col = table.lookup(keys)
        ok = col >= 0
        if not ok.any():
            continue
        pos = seed_pos[ok]
        col = col[ok]
        flip = seed_flip[ok].astype(np.int64)
        # Keep the first occurrence per (read, k-mer).
        _, first = np.unique(col, return_index=True)
        rr.append(np.full(first.shape[0], gi, dtype=np.int64))
        cc.append(col[first])
        vv.append(np.stack([pos[first], flip[first]], axis=1))
    if not rr:
        return None
    return np.concatenate(rr), np.concatenate(cc), np.vstack(vv)


def _a_scan_batch_task(ctx, task):
    """Executor task: one 1D rank's (read, k-mer) scan as pure column ops.

    The task is the rank's global read span ``(lo, hi)``; the worker takes
    its SoA block from the ReadSet in the context
    (:meth:`~repro.seqs.fasta.ReadSet.soa_block`), so a store-backed set
    ships only its path and each worker pages in its own block.
    Extraction, dictionary lookup, and first-occurrence dedup all run over
    the whole block at once.  Output entries are ordered by (read, column)
    with the first-occurrence position/flip per (read, k-mer) — exactly
    the loop task's order.
    """
    table, scheme, reads = ctx
    lo, hi = task
    codes, offsets, lengths = reads.soa_block(lo, hi)
    canon, ridx, pos, flip = scheme.seeds_of_block(codes, offsets, lengths)
    col = table.lookup(canon)
    ok = col >= 0
    if not ok.any():
        return None
    ridx, col, pos = ridx[ok], col[ok], pos[ok]
    flip = flip[ok].astype(np.int64)
    # Keep the first occurrence per (read, k-mer): entries arrive in
    # (read, pos) order, so np.unique's first-occurrence index over the
    # composite (read, col) key lands on the earliest window — and its
    # ascending value order is exactly the loop task's (read, ascending
    # col) emission order.
    comp = ridx * np.int64(len(table)) + col
    _, first = np.unique(comp, return_index=True)
    ridx, col, pos, flip = ridx[first], col[first], pos[first], flip[first]
    return ridx + lo, col, np.stack([pos, flip], axis=1)


def build_a_matrix(reads: ReadSet, table: KmerTable, grid: ProcessGrid2D,
                   comm: SimComm, timer: StageTimer | None = None,
                   executor: Executor | None = None,
                   impl: str | None = None,
                   scheme: SeedScheme | None = None) -> DistMat:
    """Construct the distributed |reads|×|k-mers| matrix ``A``.

    Each 1D source rank scans its block of reads, looks its seed k-mers up
    in the reliable dictionary (a distributed-hash lookup in a real run)
    and routes the resulting ``(read, column, pos, flip)`` entries to their
    2D block owners; that routing is the ``CreateSpMat`` traffic.  The
    per-rank scans are independent and run on ``executor``.

    ``impl`` selects the scan engine (:func:`resolve_kmer_impl`):
    ``"batch"`` runs each rank's scan as one vectorized
    :meth:`~repro.seqs.seeding.SeedScheme.seeds_of_block` pass with
    column-op lookup and dedup; ``"loop"`` scans read by read (the
    reference oracle).  A is byte-identical either way.  ``scheme`` picks
    which windows seed A (``None`` = full-k, the paper's every-window
    behavior); sparse schemes shrink nnz(A) by their seed density while
    the entry layout (first occurrence per (read, k-mer), position/flip
    payload) is unchanged.
    """
    timer = timer if timer is not None else StageTimer()
    executor = executor if executor is not None else SERIAL
    impl = resolve_kmer_impl(impl)
    scheme = scheme if scheme is not None else FullKScheme(table.k)
    stage = "CreateSpMat"
    P = comm.nprocs
    n = len(reads)
    m = len(table)
    bounds = block_bounds(n, P)

    spans = [(int(bounds[p]), int(bounds[p + 1])) for p in range(P)]
    with timer.superstep(stage) as step:
        if impl == "batch":
            pre = np.concatenate(([0], np.cumsum(reads.lengths)))
            parts, secs = executor.run_timed(
                _a_scan_batch_task, spans, context=(table, scheme, reads),
                weights=[int(pre[hi] - pre[lo]) for lo, hi in spans])
        else:
            parts, secs = executor.run_timed(
                _a_scan_task, spans, context=(reads, table, scheme),
                weights=[hi - lo for lo, hi in spans])
        step.charge_many(range(P), secs)
    rows_parts = [part[0] for part in parts if part is not None]
    cols_parts = [part[1] for part in parts if part is not None]
    vals_parts = [part[2] for part in parts if part is not None]

    if rows_parts:
        row = np.concatenate(rows_parts)
        col = np.concatenate(cols_parts)
        vals = np.vstack(vals_parts)
    else:
        row = col = np.empty(0, np.int64)
        vals = np.empty((0, 2), np.int64)

    charge_a_routing(row, col, n, m, grid, comm, stage=stage)

    timer.record_peak_bytes(stage, coo_nbytes(row.shape[0], vals.shape[1]))
    return DistMat.from_coo((n, m), grid, row, col, vals)


def charge_a_routing(row: np.ndarray, col: np.ndarray, n_reads: int,
                     n_kmers: int, grid: ProcessGrid2D, comm: SimComm,
                     stage: str = "CreateSpMat") -> None:
    """Charge the ``CreateSpMat`` routing of global A entries to the grid.

    Every entry moves from its 1D source rank (the balanced block owner of
    its read) to the 2D grid owner of its ``(row, col)`` block; off-rank
    entries cost ``8 * 4`` bytes each (row, col, pos, flip) and one message
    per distinct destination.  Factored out of :func:`build_a_matrix` so
    the incremental service can replay the stage's exact traffic from the
    merged entry arrays without re-running the scan.
    """
    P = comm.nprocs
    bounds = block_bounds(n_reads, P)
    rb = grid.row_bounds(n_reads)
    cb = grid.col_bounds(n_kmers)
    bi = np.searchsorted(rb, row, side="right") - 1
    bj = np.searchsorted(cb, col, side="right") - 1
    dest = bi * grid.q + bj
    src = np.searchsorted(bounds, row, side="right") - 1
    entry_bytes = 8 * 4  # row, col, pos, flip
    for p in range(P):
        mine = src == p
        offrank = dest[mine] != p
        n_off = int(offrank.sum())
        if n_off:
            n_dests = int(np.unique(dest[mine][offrank]).shape[0])
            comm.tracker.record(stage, p, n_off * entry_bytes, n_dests)


def _pattern_of(M: DistMat) -> DistMat:
    """``M``'s pattern with unit values (blocks share M's index arrays)."""
    blocks = [[CooMat(b.shape, b.row, b.col,
                      np.ones((b.nnz, 1), dtype=np.int64), checked=True)
               for b in brow] for brow in M.blocks]
    return DistMat(M.shape, M.grid, blocks, 1)


def _upper_triangle_mask(count: DistMat, col_offset: int = 0) -> DistMat:
    """Strict-upper-triangle subset of ``count``'s pattern.

    ``col_offset`` shifts local columns into global coordinates for the
    blocked mode's strips (strip columns start at ``lo``).
    """
    q = count.grid.q
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            b = count.blocks[i][j]
            gr = b.row + count.row_bounds[i]
            gc = b.col + count.col_bounds[j] + col_offset
            brow.append(b.select(gr < gc))
        blocks.append(brow)
    return DistMat(count.shape, count.grid, blocks, 1)


def summa_positions(A: DistMat, At: DistMat, comm: SimComm,
                    timer: StageTimer, backend: Backend,
                    executor: Executor | None, spgemm_impl: str,
                    col_offset: int = 0) -> DistMat:
    """The candidate product ``C = A·Aᵀ`` under the positions semiring.

    ``spgemm_impl="esc"`` runs the monolithic 7-field product.
    ``"masked"`` decomposes it (the tentpole's CombBLAS-style split):

    1. the **count field** runs as a scalar PlusTimes product over the
       operands' unit-valued patterns — ``A``'s pattern is all-ones, so the
       native CSR lowering applies exactly and produces the same nonzero
       set as the full product (the positions multiply has no validity
       mask);
    2. the strict upper triangle of that pattern (shifted by
       ``col_offset`` for blocked strips) becomes the output mask;
    3. the multi-field seed-gathering ESC pass runs **masked** to the
       surviving coordinates — roughly the diagonal plus half the
       off-diagonal products never reach the sort.

    A fused implementation broadcasts each A/At block once per SUMMA stage
    and computes both sub-products from the received pair, so the count
    pass adds no traffic: it runs against a throwaway communicator, and the
    masked pass — broadcasting the same full 2-field blocks as the
    monolithic product — carries the stage's entire (identical) volume.
    Output, entry order, and the recorded SpGEMM peak (the full product's
    footprint, which the count pattern sizes exactly) are all byte-identical
    between the two engines.
    """
    if spgemm_impl == "masked":
        count = summa(_pattern_of(A), _pattern_of(At), PlusTimes(),
                      SimComm(comm.nprocs, CommTracker(comm.nprocs)),
                      "SpGEMM", timer, backend=backend, executor=executor)
        timer.record_peak_bytes("SpGEMM",
                                coo_nbytes(count.nnz(), C_NFIELDS))
        mask = _upper_triangle_mask(count, col_offset)
        return summa(A, At, PositionsSemiring(), comm, "SpGEMM", timer,
                     backend=backend, executor=executor, mask=mask)
    C = summa(A, At, PositionsSemiring(), comm, "SpGEMM", timer,
              backend=backend, executor=executor)
    # The candidate-matrix high-water mark: the full product as SUMMA
    # produced it, before the triangle prune (what the blocked mode divides
    # by its strip count).
    timer.record_peak_bytes("SpGEMM", coo_nbytes(C.nnz(), C.nfields))
    return C


def candidate_overlaps(A: DistMat, comm: SimComm,
                       timer: StageTimer | None = None,
                       backend: Backend | str | None = None,
                       executor: Executor | None = None,
                       spgemm_impl: str | None = None) -> DistMat:
    """``C = A·Aᵀ`` via Sparse SUMMA, upper-triangle only.

    The product is symmetric (shared k-mer counts), so only ``i < j`` entries
    are kept for alignment; the symmetric R entries are regenerated after
    alignment.  Diagonal entries (a read with itself) are discarded.
    ``backend`` selects the local kernels (transpose, SpGEMM, filter);
    ``executor`` parallelizes SUMMA's local block work; ``spgemm_impl``
    (:func:`~repro.dsparse.masked.resolve_spgemm_impl`) picks the product
    engine — ``"masked"`` decomposes count and seed passes
    (:func:`summa_positions`), ``"esc"`` is the monolithic oracle.
    """
    timer = timer if timer is not None else StageTimer()
    backend = get_backend(backend)
    spgemm_impl = resolve_spgemm_impl(spgemm_impl)
    At = A.transpose(backend=backend)
    C = summa_positions(A, At, comm, timer, backend, executor, spgemm_impl)
    q = C.grid.q
    rb, cbb = C.row_bounds, C.col_bounds
    blocks = []
    for i in range(q):
        brow = []
        for j in range(q):
            b = C.blocks[i][j]
            gr = b.row + rb[i]
            gc = b.col + cbb[j]
            brow.append(backend.select(b, gr < gc))
        blocks.append(brow)
    return DistMat(C.shape, C.grid, blocks, C.nfields)


def exchange_reads(reads: ReadSet, grid: ProcessGrid2D, comm: SimComm,
                   bytes_per_base: int = 1) -> None:
    """Charge the 2D read exchange (paper Section V-C).

    Every grid rank needs the sequences of its block-row range and its
    block-column range — ``2n/√P`` reads, ``2nl/√P`` bytes — shipped from the
    1D owners determined by the initial parallel I/O partition.  The data is
    already shared in-process; only the accounting moves.
    """
    stage = "ExchangeRead"
    n = len(reads)
    lengths = reads.lengths
    P = comm.nprocs
    owner_bounds = block_bounds(n, P)
    prefix = np.concatenate([[0], np.cumsum(lengths)])

    def range_bytes(lo: int, hi: int) -> int:
        return int(prefix[hi] - prefix[lo]) * bytes_per_base

    rb = grid.row_bounds(n)
    cb = grid.col_bounds(n)
    for rank in range(P):
        i, j = grid.coords_of(rank)
        needed: list[tuple[int, int]] = [(int(rb[i]), int(rb[i + 1])),
                                         (int(cb[j]), int(cb[j + 1]))]
        for lo, hi in needed:
            # Source ranks are the 1D owners intersecting [lo, hi).
            p0 = int(np.searchsorted(owner_bounds, lo, side="right")) - 1
            p1 = int(np.searchsorted(owner_bounds, hi, side="left"))
            for p in range(p0, p1):
                s_lo = max(lo, int(owner_bounds[p]))
                s_hi = min(hi, int(owner_bounds[p + 1]))
                if s_hi <= s_lo or p == rank:
                    continue
                comm.tracker.record(stage, p, range_bytes(s_lo, s_hi), 1)


def _align_one(reads: ReadSet, gi: int, gj: int, cval: np.ndarray,
               k: int, mode: str, scoring: Scoring) -> AlignmentResult | None:
    """Align one candidate pair using its stored seeds (best of up to two)."""
    a, b = reads[gi], reads[gj]
    best: AlignmentResult | None = None
    seeds = [(int(cval[C_PA1]), int(cval[C_PB1]), int(cval[C_STRAND1]))]
    if cval[C_PA2] >= 0:
        seeds.append((int(cval[C_PA2]), int(cval[C_PB2]), int(cval[C_STRAND2])))
    for pa, pb, strand in seeds:
        if mode == "chain":
            res = chain_extend(a.shape[0], b.shape[0], pa, pb, k, strand)
        else:
            res = seed_extend_align(a, b, pa, pb, k, strand, scoring)
        if best is None or res.score > best.score:
            best = res
    return best


def _dedup_second_seeds(cvals: np.ndarray, b_len: np.ndarray, k: int,
                        mode: str) -> np.ndarray:
    """Drop redundant second seeds so each pair extends the minimum needed.

    A second seed is provably redundant — the per-pair loop would compute an
    identical :class:`~repro.align.xdrop.AlignmentResult` for it and discard
    it on the strictly-greater score test — when it **equals** the first
    (same ``pa/pb/strand``), or, in chain mode, when it shares the first
    seed's strand and oriented diagonal (the chain estimate depends on the
    seed only through that diagonal).  X-drop extensions from *different*
    positions on one diagonal can genuinely differ, so the diagonal rule is
    chain-only.  Returns ``cvals`` with redundant second seeds cleared to
    ``-1`` (a copy when anything changes); R is unchanged by construction.
    """
    if cvals.shape[0] == 0:
        return cvals
    has2 = cvals[:, C_PA2] >= 0
    redundant = has2 & (cvals[:, C_PA2] == cvals[:, C_PA1]) & \
        (cvals[:, C_PB2] == cvals[:, C_PB1]) & \
        (cvals[:, C_STRAND2] == cvals[:, C_STRAND1])
    if mode == "chain":
        same_strand = has2 & (cvals[:, C_STRAND2] == cvals[:, C_STRAND1])
        sb1 = np.where(cvals[:, C_STRAND1] != 0,
                       b_len - k - cvals[:, C_PB1], cvals[:, C_PB1])
        sb2 = np.where(cvals[:, C_STRAND2] != 0,
                       b_len - k - cvals[:, C_PB2], cvals[:, C_PB2])
        redundant |= same_strand & \
            (cvals[:, C_PA1] - sb1 == cvals[:, C_PA2] - sb2)
    if not redundant.any():
        return cvals
    cvals = cvals.copy()
    cvals[redundant, C_PA2] = -1
    cvals[redundant, C_PB2] = -1
    cvals[redundant, C_STRAND2] = -1
    return cvals


def _align_task(ctx, task):
    """Executor task: align one candidate pair, filter, classify.

    Returns the two directed R payload rows of a surviving dovetail overlap,
    or ``None`` for pairs pruned by score or classification.
    """
    reads, k, mode, scoring, filt, fuzz = ctx
    gi, gj, cval = task
    res = _align_one(reads, gi, gj, cval, k, mode, scoring)
    if res is None:
        return None
    olen = res.ea - res.ba
    if not filt.passes(res.score, olen):
        return None
    oc = classify_overlap(reads[gi].shape[0], reads[gj].shape[0], res, fuzz)
    if oc.kind != "dovetail":
        return None
    return ((oc.suffix_ij, oc.end_i, oc.end_j, oc.overlap_len),
            (oc.suffix_ji, oc.end_j, oc.end_i, oc.overlap_len))


#: Ceiling on candidate pairs per batch-kernel call (the ``max_items`` cap
#: handed to the nnz-weighted partitioner).  Chunks this size keep the
#: lockstep sweep's ``(problems × window)`` state in bounded memory while
#: still amortizing dispatch over thousands of pairs.
_MAX_BATCH_PAIRS = 4096


def _gather_pairs(C: DistMat, lengths: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                             np.ndarray]:
    """Flatten C's nonzeros into pair arrays, in canonical block order.

    Pure array operations over each block's COO storage — no per-entry
    Python loop.  Returns ``(gi, gj, cvals, ranks, weights)`` where
    ``ranks`` is each pair's owning grid rank (for compute charging) and
    ``weights`` the two-read-length cost estimate driving chunk balance.
    """
    q = C.grid.q
    gi_parts: list[np.ndarray] = []
    gj_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    rank_parts: list[np.ndarray] = []
    for i in range(q):
        for j in range(q):
            b = C.blocks[i][j]
            if b.nnz == 0:
                continue
            gi_parts.append(b.row + int(C.row_bounds[i]))
            gj_parts.append(b.col + int(C.col_bounds[j]))
            val_parts.append(b.vals)
            rank_parts.append(np.full(b.nnz, C.grid.rank_of(i, j),
                                      dtype=np.int64))
    if not gi_parts:
        empty = np.empty(0, np.int64)
        return empty, empty, np.empty((0, C_NFIELDS), np.int64), empty, empty
    gi = np.concatenate(gi_parts)
    gj = np.concatenate(gj_parts)
    cvals = np.vstack(val_parts)
    ranks = np.concatenate(rank_parts)
    weights = lengths[gi] + lengths[gj]
    return gi, gj, cvals, ranks, weights


def _align_pairs_batch(codes: np.ndarray, offsets: np.ndarray,
                       lengths: np.ndarray, gi: np.ndarray, gj: np.ndarray,
                       cvals: np.ndarray, k: int, mode: str,
                       scoring: Scoring
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray, np.ndarray, np.ndarray]:
    """Best-seed alignment coordinates for a batch of candidate pairs.

    Extends seed 1 of every pair and seed 2 of the pairs that carry one
    (post-dedup) through the batched engines, then keeps seed 2's result
    exactly where its score is strictly greater — the same strictly-greater
    rule as the per-pair loop's seed iteration.  Returns per-pair
    ``(score, ba, ea, bb, eb, strand)`` columns.
    """
    a_len = lengths[gi]
    b_len = lengths[gj]
    a_off = offsets[gi]
    b_off = offsets[gj]

    def one_seed(sel, pa, pb, strand):
        if mode == "chain":
            return chain_extend_batch(a_len[sel], b_len[sel], pa, pb,
                                      strand, k)
        return extend_seeds_xdrop_batch(codes, a_off[sel], a_len[sel],
                                        b_off[sel], b_len[sel], pa, pb,
                                        strand, k, scoring)

    every = slice(None)
    score, ba, ea, bb, eb = one_seed(every, cvals[:, C_PA1],
                                     cvals[:, C_PB1], cvals[:, C_STRAND1])
    strand = cvals[:, C_STRAND1].copy()
    idx2 = np.flatnonzero(cvals[:, C_PA2] >= 0)
    if idx2.size:
        s2 = one_seed(idx2, cvals[idx2, C_PA2], cvals[idx2, C_PB2],
                      cvals[idx2, C_STRAND2])
        better = s2[0] > score[idx2]
        upd = idx2[better]
        for dst, src in zip((score, ba, ea, bb, eb), s2):
            dst[upd] = src[better]
        strand[upd] = cvals[upd, C_STRAND2]
    return score, ba, ea, bb, eb, strand


def _align_chunk_task(ctx, task):
    """Executor task: align one chunk of pairs with the batched engine.

    One batch-kernel invocation covers the whole chunk: seed extension,
    score filter, and overlap classification all run as column operations,
    and the surviving dovetails come back as ready-to-concatenate R COO
    arrays (two directed rows per pair, in chunk order).  The context
    carries the ReadSet itself (not its SoA arrays): a store-backed set
    ships as just the store path, and each worker's ``soa()`` call maps
    the shared on-disk buffer instead of receiving the bases.
    """
    reads, k, mode, scoring, filt, fuzz = ctx
    codes, offsets, lengths = reads.soa()
    gi, gj, cvals = task
    score, ba, ea, bb, eb, strand = _align_pairs_batch(
        codes, offsets, lengths, gi, gj, cvals, k, mode, scoring)
    olen = ea - ba
    passes = (olen >= filt.min_overlap) & \
        (score >= np.maximum(np.int64(filt.min_score),
                             (filt.ratio * olen).astype(np.int64)))
    dovetail, suffix_ij, suffix_ji, end_i, end_j, olen = \
        classify_overlap_batch(lengths[gi], lengths[gj], ba, ea, bb, eb,
                               strand, fuzz)
    sel = passes & dovetail
    n_hit = int(sel.sum())
    rows = np.empty(2 * n_hit, dtype=np.int64)
    cols = np.empty(2 * n_hit, dtype=np.int64)
    vals = np.empty((2 * n_hit, R_NFIELDS), dtype=np.int64)
    rows[0::2] = gi[sel]
    rows[1::2] = gj[sel]
    cols[0::2] = gj[sel]
    cols[1::2] = gi[sel]
    vals[0::2, R_SUFFIX] = suffix_ij[sel]
    vals[0::2, R_END_I] = end_i[sel]
    vals[0::2, R_END_J] = end_j[sel]
    vals[1::2, R_SUFFIX] = suffix_ji[sel]
    vals[1::2, R_END_I] = end_j[sel]
    vals[1::2, R_END_J] = end_i[sel]
    vals[:, R_OLEN] = np.repeat(olen[sel], 2)
    return rows, cols, vals


def align_candidates(C: DistMat, reads: ReadSet, k: int, comm: SimComm,
                     timer: StageTimer | None = None, *,
                     mode: str = "xdrop",
                     scoring: Scoring | None = None,
                     filt: AlignmentFilter | None = None,
                     fuzz: int = 100,
                     executor: Executor | None = None,
                     impl: str | None = None) -> DistMat:
    """Pairwise-align all C nonzeros and build the overlap matrix ``R``.

    Alignment is the element-wise APPLY on C; score pruning is the PRUNE
    (Algorithm 1 lines 7–8).  Dovetail survivors contribute both directed
    entries of ``R``; contained and internal overlaps are discarded here
    (the paper discards contained overlaps at the transitive-reduction
    boundary regardless of score, Section IV-D).

    ``impl`` selects the alignment engine (:func:`resolve_align_impl`):

    * ``"batch"`` (the ``auto`` default) packs the candidate pairs into
      structure-of-arrays buffers and aligns **nnz-weighted chunks of
      pairs** per executor task — one lockstep batched x-drop sweep per
      chunk instead of one Python dispatch per pair; chunk compute time is
      charged to the grid ranks owning each chunk's pairs in proportion to
      their weight share.
    * ``"loop"`` runs one executor task per pair (weighted by the two read
      lengths — the x-drop cost driver), charged to the owning rank
      exactly; it is the reference oracle the batch engine is pinned
      against.

    Either way survivors are appended in C's canonical block/entry order,
    so R is byte-identical for every engine, executor, and worker count.
    """
    timer = timer if timer is not None else StageTimer()
    scoring = scoring if scoring is not None else Scoring()
    filt = filt if filt is not None else AlignmentFilter()
    executor = executor if executor is not None else SERIAL
    impl = resolve_align_impl(impl)
    stage = "Alignment"
    n = C.shape[0]
    lengths = reads.lengths

    gi, gj, cvals, ranks, weights = _gather_pairs(C, lengths)
    cvals = _dedup_second_seeds(cvals, lengths[gj], k, mode)

    if impl == "batch":
        row, col, vals = _run_batch_impl(reads, gi, gj, cvals, ranks,
                                         weights, k, mode, scoring, filt,
                                         fuzz, executor, timer, stage)
    else:
        row, col, vals = _run_loop_impl(reads, gi, gj, cvals, ranks,
                                        weights, k, mode, scoring, filt,
                                        fuzz, executor, timer, stage)
    timer.record_peak_bytes(stage, coo_nbytes(row.shape[0], R_NFIELDS))
    return DistMat.from_coo((n, n), C.grid, row, col, vals)


def _run_loop_impl(reads, gi, gj, cvals, ranks, weights, k, mode, scoring,
                   filt, fuzz, executor, timer, stage):
    """Per-pair reference engine: one executor task per candidate pair."""
    tasks = list(zip(gi.tolist(), gj.tolist(), cvals))
    ctx = (reads, k, mode, scoring, filt, fuzz)
    with timer.superstep(stage) as step:
        results, secs = executor.run_timed(_align_task, tasks, context=ctx,
                                           weights=weights.tolist())
        step.charge_many(ranks.tolist(), secs)

    rows: list[int] = []
    cols: list[int] = []
    val_rows: list[tuple] = []
    for (pair_i, pair_j, _), hit in zip(tasks, results):
        if hit is None:
            continue
        rows.extend((pair_i, pair_j))
        cols.extend((pair_j, pair_i))
        val_rows.extend(hit)
    if rows:
        return (np.array(rows, dtype=np.int64),
                np.array(cols, dtype=np.int64),
                np.array(val_rows, dtype=np.int64))
    return (np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty((0, R_NFIELDS), np.int64))


def _run_batch_impl(reads, gi, gj, cvals, ranks, weights, k, mode, scoring,
                    filt, fuzz, executor, timer, stage):
    """Batched engine: nnz-weighted chunks of pairs per executor task."""
    n_pairs = gi.shape[0]
    if n_pairs == 0:
        with timer.superstep(stage):
            pass
        return (np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty((0, R_NFIELDS), np.int64))
    # All reads in one shared SoA buffer (cached on the ReadSet, so blocked
    # mode's per-strip calls reuse it; a store-backed set maps it from
    # disk): the batch kernels address sequences by (offset, stride,
    # length) views into it, so neither the chunks nor the oriented
    # sequences are ever copied out per pair.  Warmed here once so serial
    # and thread executors never rebuild it per chunk.
    reads.soa()

    spans = weighted_chunks(weights, executor.workers * 2,
                            max_items=_MAX_BATCH_PAIRS)
    tasks = [(gi[lo:hi], gj[lo:hi], cvals[lo:hi]) for lo, hi in spans]
    ctx = (reads, k, mode, scoring, filt, fuzz)
    with timer.superstep(stage) as step:
        results, secs = executor.run_timed(
            _align_chunk_task, tasks, context=ctx,
            weights=[float(weights[lo:hi].sum()) for lo, hi in spans])
        # Charge each chunk's measured compute to the grid ranks owning its
        # pairs, split by weight share (the loop engine's per-pair charging,
        # aggregated per rank).
        for (lo, hi), sec in zip(spans, secs):
            w = weights[lo:hi].astype(np.float64)
            total = float(w.sum())
            if total <= 0.0:
                w = np.ones(hi - lo)
                total = float(hi - lo)
            uniq, inv = np.unique(ranks[lo:hi], return_inverse=True)
            for rank, share in zip(uniq,
                                   np.bincount(inv, weights=w) / total):
                step.charge(int(rank), sec * float(share))

    return (np.concatenate([r[0] for r in results]),
            np.concatenate([r[1] for r in results]),
            np.vstack([r[2] for r in results]))
