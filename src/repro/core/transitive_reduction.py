"""Distributed transitive reduction (paper Algorithm 2).

The loop body, expressed with the dsparse primitives:

====  ==========================================  =============================
line  paper                                        here
====  ==========================================  =============================
4     ``N ← R²`` (MinPlus semiring, Alg. 3)        :func:`~repro.dsparse.summa.summa`
                                                   with :class:`~repro.core.
                                                   semirings.BidirectedMinPlus`
5     ``v ← R.REDUCE(Row, 0, max)``                :func:`~repro.dsparse.
                                                   elementwise.reduce_rows`
6     ``v ← v.APPLY(x, add)``                      vector add of the fuzz ``x``
7     ``M ← R.DIMAPPLY(Row, v, return2nd)``        folded into the mask step
                                                   (M has R's pattern with v
                                                   values, so the comparison
                                                   only needs v)
8     ``I ← M ≥ N`` (+ end-orientation checks)     :func:`_transitive_mask`
9     ``R ← R ∘ ¬I``                               :func:`~repro.dsparse.
                                                   elementwise.prune_mask`
11    loop until nnz fixed                         :func:`transitive_reduction`
====  ==========================================  =============================

The orientation checks: products inside ``N = R²`` are masked unless the two
attachments at the middle read are opposite ends (valid walk — rule (a));
the mask step compares the direct edge's end pair against the same-slot
minimum of ``N`` (rules (b) and (c)), because ``N`` keeps one minimum per
(end_i, end_j) combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsparse.backend import Backend, get_backend
from ..dsparse.coomat import CooMat
from ..dsparse.distmat import DistMat
from ..dsparse.elementwise import prune_mask, reduce_rows
from ..dsparse.summa import summa
from ..exec import Executor
from ..mpisim.comm import SimComm
from ..mpisim.tracker import StageTimer
from .memory import coo_nbytes
from .semirings import BidirectedMinPlus, R_END_I, R_END_J, R_SUFFIX, n_slot

__all__ = ["TransitiveReductionResult", "transitive_reduction"]

STAGE = "TrReduction"


@dataclass
class TransitiveReductionResult:
    """Output of the transitive-reduction loop.

    Attributes
    ----------
    S:
        The string matrix (transitively reduced overlap matrix).
    rounds:
        Iterations until the nonzero count stabilized (the small constant
        ``t`` in Table I's latency ``t√P``).
    removed:
        Total directed entries pruned.
    """

    S: DistMat
    rounds: int
    removed: int


def _transitive_mask(R: DistMat, N: DistMat, v: np.ndarray) -> DistMat:
    """``I ← M ≥ N`` with end-orientation agreement (Algorithm 2 line 8).

    For each coordinate in ``nonzeros(R) ∩ nonzeros(N)``, the direct edge
    (with ends ``(e_i, e_j)``) is transitive iff the minimum valid two-hop
    suffix in slot ``(e_i, e_j)`` is at most ``M_ij = v[i] = rowmax_i + x``.
    """
    q = R.grid.q
    blocks = []
    for i in range(q):
        r0 = int(R.row_bounds[i])
        brow = []
        for j in range(q):
            rb, nb = R.blocks[i][j], N.blocks[i][j]
            if rb.nnz == 0 or nb.nnz == 0:
                brow.append(CooMat.empty(rb.shape, 1))
                continue
            rk, nk = rb.keys(), nb.keys()
            common = np.intersect1d(rk, nk, assume_unique=True)
            if common.shape[0] == 0:
                brow.append(CooMat.empty(rb.shape, 1))
                continue
            ir = np.searchsorted(rk, common)
            inn = np.searchsorted(nk, common)
            ends_i = rb.vals[ir, R_END_I]
            ends_j = rb.vals[ir, R_END_J]
            slots = n_slot(ends_i, ends_j)
            path_min = nb.vals[inn, slots]
            bound = v[rb.row[ir] + r0]
            transitive = path_min <= bound
            sel = np.flatnonzero(transitive)
            brow.append(CooMat(rb.shape, rb.row[ir[sel]], rb.col[ir[sel]],
                               np.ones((sel.shape[0], 1), dtype=np.int64),
                               checked=True))
        blocks.append(brow)
    return DistMat(R.shape, R.grid, blocks, 1)


def transitive_reduction(R: DistMat, comm: SimComm,
                         timer: StageTimer | None = None, *,
                         fuzz: int = 150, max_rounds: int = 32,
                         backend: Backend | str | None = None,
                         executor: Executor | None = None
                         ) -> TransitiveReductionResult:
    """Iterated distributed transitive reduction of the overlap matrix.

    Parameters
    ----------
    R:
        Symmetric overlap matrix with ``[suffix, end_i, end_j, olen]``
        payloads (contained overlaps already removed).
    comm:
        Simulated communicator; all traffic lands in stage ``TrReduction``.
    timer:
        Optional stage timer.
    fuzz:
        The scalar ``x`` of Algorithm 2 line 6 — tolerance for
        sequencing-error-induced endpoint shifts.
    max_rounds:
        Safety bound on iterations (the paper observes a small constant).
    backend:
        Local-kernel backend for the squaring, reduction, and pruning
        (``N = R²`` is a 4-field MinPlus product, so every backend runs it
        on the ESC kernel; the seam is still threaded for future kernels).
    executor:
        :class:`~repro.exec.Executor` parallelizing each round's repeated
        SUMMA products (the runtime-dominating part of the loop); ``None``
        runs them serially.
    """
    timer = timer if timer is not None else StageTimer()
    backend = get_backend(backend)
    initial = R.nnz()
    rounds = 0
    while rounds < max_rounds:
        prev = R.nnz()
        if prev == 0:
            break
        rounds += 1
        N = summa(R, R, BidirectedMinPlus(), comm, STAGE, timer,
                  backend=backend, executor=executor)
        # Live set while masking: the round's R plus its two-hop product N.
        timer.record_peak_bytes(STAGE, coo_nbytes(prev, R.nfields) +
                                coo_nbytes(N.nnz(), N.nfields))
        v = reduce_rows(R, R_SUFFIX, np.maximum, 0, comm, STAGE,
                        backend=backend)
        v = v + np.int64(fuzz)
        import time as _time
        t0 = _time.perf_counter()
        I = _transitive_mask(R, N, v)
        R = prune_mask(R, I, backend=backend)
        elapsed = _time.perf_counter() - t0
        with timer.superstep(STAGE) as step:
            # Mask + prune are embarrassingly parallel local block ops (no
            # communication, Section V-D); the critical-path share of the
            # serially-measured time is 1/P of it.
            step.charge(0, elapsed / comm.nprocs)
        # Convergence test is an allreduce on the nonzero count.
        nnz_now = comm.allreduce([b.nnz for brow in R.blocks for b in brow],
                                 lambda a, b: a + b, stage=STAGE, item_bytes=8)
        if nnz_now == prev:
            break
    return TransitiveReductionResult(S=R, rounds=rounds,
                                     removed=initial - R.nnz())
