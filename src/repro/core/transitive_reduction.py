"""Distributed transitive reduction (paper Algorithm 2).

The loop body, expressed with the dsparse primitives:

====  ==========================================  =============================
line  paper                                        here
====  ==========================================  =============================
4     ``N ← R²`` (MinPlus semiring, Alg. 3)        :func:`~repro.dsparse.summa.summa`
                                                   with :class:`~repro.core.
                                                   semirings.BidirectedMinPlus`
5     ``v ← R.REDUCE(Row, 0, max)``                :func:`~repro.dsparse.
                                                   elementwise.reduce_rows`
6     ``v ← v.APPLY(x, add)``                      vector add of the fuzz ``x``
7     ``M ← R.DIMAPPLY(Row, v, return2nd)``        folded into the mask step
                                                   (M has R's pattern with v
                                                   values, so the comparison
                                                   only needs v)
8     ``I ← M ≥ N`` (+ end-orientation checks)     :func:`_mask_prune_task`
9     ``R ← R ∘ ¬I``                               fused into the same
                                                   per-block executor task
11    loop until nnz fixed                         :func:`transitive_reduction`
====  ==========================================  =============================

The orientation checks: products inside ``N = R²`` are masked unless the two
attachments at the middle read are opposite ends (valid walk — rule (a));
the mask step compares the direct edge's end pair against the same-slot
minimum of ``N`` (rules (b) and (c)), because ``N`` keeps one minimum per
(end_i, end_j) combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsparse.backend import Backend, get_backend
from ..dsparse.distmat import DistMat
from ..dsparse.elementwise import reduce_rows
from ..dsparse.masked import resolve_spgemm_impl
from ..dsparse.summa import summa
from ..exec import Executor, SERIAL
from ..mpisim.comm import SimComm
from ..mpisim.tracker import StageTimer
from .memory import coo_nbytes
from .semirings import BidirectedMinPlus, R_END_I, R_END_J, R_SUFFIX, n_slot

__all__ = ["TransitiveReductionResult", "transitive_reduction"]

STAGE = "TrReduction"


@dataclass
class TransitiveReductionResult:
    """Output of the transitive-reduction loop.

    Attributes
    ----------
    S:
        The string matrix (transitively reduced overlap matrix).
    rounds:
        Iterations until the nonzero count stabilized (the small constant
        ``t`` in Table I's latency ``t√P``).
    removed:
        Total directed entries pruned.
    """

    S: DistMat
    rounds: int
    removed: int


def _mask_prune_task(ctx, task):
    """Executor task: one block's fused transitive mask + prune.

    ``I ← M ≥ N`` with end-orientation agreement (Algorithm 2 line 8)
    composed with ``R ← R ∘ ¬I`` (line 9), per block: for each coordinate in
    ``nonzeros(R) ∩ nonzeros(N)``, the direct edge (with ends
    ``(e_i, e_j)``) is transitive — and dropped — iff the minimum valid
    two-hop suffix in slot ``(e_i, e_j)`` is at most
    ``M_ij = v[i] = rowmax_i + x``.  ``bound`` carries ``v`` gathered at the
    block's entries, so the task needs no global vector.  Fusing the two
    element-wise steps skips materializing ``I`` and lets blocks run as
    independent executor tasks, each charged to its owning grid rank.
    """
    backend = ctx
    rb, nb, bound = task
    if rb.nnz == 0 or nb.nnz == 0:
        return rb
    rk, nk = rb.keys(), nb.keys()
    common = np.intersect1d(rk, nk, assume_unique=True)
    if common.shape[0] == 0:
        return rb
    ir = np.searchsorted(rk, common)
    inn = np.searchsorted(nk, common)
    slots = n_slot(rb.vals[ir, R_END_I], rb.vals[ir, R_END_J])
    transitive = nb.vals[inn, slots] <= bound[ir]
    if not transitive.any():
        return rb
    keep = np.ones(rb.nnz, dtype=bool)
    keep[ir[transitive]] = False
    return backend.select(rb, keep)


def transitive_reduction(R: DistMat, comm: SimComm,
                         timer: StageTimer | None = None, *,
                         fuzz: int = 150, max_rounds: int = 32,
                         backend: Backend | str | None = None,
                         executor: Executor | None = None,
                         spgemm_impl: str | None = None
                         ) -> TransitiveReductionResult:
    """Iterated distributed transitive reduction of the overlap matrix.

    Parameters
    ----------
    R:
        Symmetric overlap matrix with ``[suffix, end_i, end_j, olen]``
        payloads (contained overlaps already removed).
    comm:
        Simulated communicator; all traffic lands in stage ``TrReduction``.
    timer:
        Optional stage timer.
    fuzz:
        The scalar ``x`` of Algorithm 2 line 6 — tolerance for
        sequencing-error-induced endpoint shifts.
    max_rounds:
        Safety bound on iterations (the paper observes a small constant).
    backend:
        Local-kernel backend for the squaring, reduction, and pruning
        (``N = R²`` is a 4-field MinPlus product, so every backend runs it
        on the ESC kernel — masked to ``R``'s pattern under the masked
        engine; the seam is still threaded for future kernels).
    executor:
        :class:`~repro.exec.Executor` parallelizing each round's repeated
        SUMMA products (the runtime-dominating part of the loop) and the
        per-block mask + prune tasks; ``None`` runs them serially.
    spgemm_impl:
        SpGEMM engine (:func:`~repro.dsparse.masked.resolve_spgemm_impl`).
        The transitive mask only consults ``N`` at ``nonzeros(R) ∩
        nonzeros(N)``, so under ``"masked"`` the squaring passes ``R``'s own
        pattern as the output mask — every product landing outside it is
        wasted work, and on the symmetric overlap graph that is the
        overwhelming majority.  Round counts and the surviving ``S`` are
        byte-identical; only the recorded ``TrReduction`` live-set peak
        shrinks (``N`` genuinely holds fewer entries).
    """
    timer = timer if timer is not None else StageTimer()
    backend = get_backend(backend)
    executor = executor if executor is not None else SERIAL
    spgemm_impl = resolve_spgemm_impl(spgemm_impl)
    grid = R.grid
    q = grid.q
    ij = [(i, j) for i in range(q) for j in range(q)]
    initial = R.nnz()
    rounds = 0
    while rounds < max_rounds:
        prev = R.nnz()
        if prev == 0:
            break
        rounds += 1
        N = summa(R, R, BidirectedMinPlus(), comm, STAGE, timer,
                  backend=backend, executor=executor,
                  mask=R if spgemm_impl == "masked" else None)
        # Live set while masking: the round's R plus its two-hop product N.
        timer.record_peak_bytes(STAGE, coo_nbytes(prev, R.nfields) +
                                coo_nbytes(N.nnz(), N.nfields))
        v = reduce_rows(R, R_SUFFIX, np.maximum, 0, comm, STAGE,
                        backend=backend)
        v = v + np.int64(fuzz)
        # Mask + prune are embarrassingly parallel local block ops (no
        # communication, Section V-D): one executor task per block, with
        # in-worker compute charged to the owning rank — the SUMMA
        # charging convention.
        tasks = [(R.blocks[i][j], N.blocks[i][j],
                  v[R.blocks[i][j].row + int(R.row_bounds[i])])
                 for i, j in ij]
        weights = [rb.nnz + nb.nnz for rb, nb, _bound in tasks]
        with timer.superstep(STAGE) as step:
            pruned, secs = executor.run_timed(_mask_prune_task, tasks,
                                              context=backend,
                                              weights=weights)
            step.charge_many((grid.rank_of(i, j) for i, j in ij), secs)
        R = DistMat(R.shape, grid,
                    [[pruned[i * q + j] for j in range(q)] for i in range(q)],
                    R.nfields)
        # Convergence test is an allreduce on the nonzero count.
        nnz_now = comm.allreduce([b.nnz for brow in R.blocks for b in brow],
                                 lambda a, b: a + b, stage=STAGE, item_bytes=8)
        if nnz_now == prev:
            break
    return TransitiveReductionResult(S=R, rounds=rounds,
                                     removed=initial - R.nnz())
