"""The paper's custom semirings.

Two semirings drive diBELLA 2D (Algorithms 1 and 3):

* :class:`PositionsSemiring` — overloads SpGEMM for ``C = A·Aᵀ``: multiply
  pairs the positions of a shared k-mer in the two reads (plus the relative
  strand derived from the canonical-form flip bits), and add counts common
  k-mers while concatenating up to two seed position pairs (the paper stores
  two positions per read pair, Section IV-D).
* :class:`BidirectedMinPlus` — the MinPlus semiring of Algorithm 3 for
  ``N = R²``: multiply sums overhang suffixes **only for valid bidirected
  walks** (the two heads at the middle node must attach to opposite read
  ends, otherwise the product is the semiring identity, i.e. dropped), and
  add takes the minimum.  The output keeps the minimum **per (end_i, end_j)
  orientation slot** because the transitive-edge test must compare paths
  against the direct edge *with matching end orientations* (transitivity
  rules (b) and (c) in Section II).

Value field layouts (all ``int64``):

=====================  =============================================
matrix                 fields
=====================  =============================================
``A`` (reads×k-mers)   ``[pos, flipped]``
``C`` (candidates)     ``[count, pA1, pB1, strand1, pA2, pB2, strand2]``
``R``/``S`` (overlap)  ``[suffix, end_i, end_j, overlap_len]``
``N`` (two-hop)        ``[min_suffix[slot] for slot in (B,B),(B,E),(E,B),(E,E)]``
=====================  =============================================
"""

from __future__ import annotations

import numpy as np

from ..dsparse.semiring import INF, Semiring

__all__ = [
    "A_POS", "A_FLIP", "A_NFIELDS",
    "C_COUNT", "C_PA1", "C_PB1", "C_STRAND1", "C_PA2", "C_PB2", "C_STRAND2",
    "C_NFIELDS",
    "R_SUFFIX", "R_END_I", "R_END_J", "R_OLEN", "R_NFIELDS",
    "n_slot",
    "PositionsSemiring", "BidirectedMinPlus",
]

# A-matrix fields.
A_POS, A_FLIP = 0, 1
# C-matrix fields.
C_COUNT, C_PA1, C_PB1, C_STRAND1, C_PA2, C_PB2, C_STRAND2 = range(7)
# R-matrix fields.
R_SUFFIX, R_END_I, R_END_J, R_OLEN = range(4)

#: Field counts derived from the layout constants above — the single source
#: of truth for code that must build empty/estimated matrices of these
#: types (an ``np.empty((0, 4))`` literal silently desyncs the moment a
#: field is added to the semiring; these cannot).
A_NFIELDS = A_FLIP + 1
C_NFIELDS = C_STRAND2 + 1
R_NFIELDS = R_OLEN + 1


def n_slot(end_i: np.ndarray | int, end_j: np.ndarray | int):
    """Slot index of an (end_i, end_j) orientation combination in N values."""
    return 2 * end_i + end_j


class PositionsSemiring(Semiring):
    """Semiring for ``C = A·Aᵀ`` (count + up to two seed position pairs).

    ``multiply`` turns an A-nonzero ``(pos_i, flip_i)`` and an Aᵀ-nonzero
    ``(pos_j, flip_j)`` into a 1-count C value carrying one seed
    ``(pos_i, pos_j, strand = flip_i XOR flip_j)``; ``reduce`` sums counts and
    keeps the first two seeds of each group.  Reduce is composable: partial
    SUMMA results (already holding counts > 1 and stored seeds) merge
    correctly because counts add and missing second seeds are back-filled
    from the next contribution.
    """

    out_nfields = 7

    #: A freshly multiplied group's reduce reads only its first two products
    #: (the stored seed pair) and its size (the count field — every product
    #: carries count 1), so the masked ESC kernel may multiply just two
    #: products per output coordinate.  See Semiring.reduce_truncated.
    product_reduce_depth = 2

    def multiply(self, avals, bvals):
        n = avals.shape[0]
        out = np.full((n, 7), -1, dtype=np.int64)
        out[:, C_COUNT] = 1
        out[:, C_PA1] = avals[:, A_POS]
        out[:, C_PB1] = bvals[:, A_POS]
        out[:, C_STRAND1] = avals[:, A_FLIP] ^ bvals[:, A_FLIP]
        return out, None

    def reduce(self, vals, starts, counts):
        out = vals[starts].copy()
        out[:, C_COUNT] = np.add.reduceat(vals[:, C_COUNT], starts)
        # Back-fill the second seed from the following group row when the
        # leading row carries only one seed.
        need2 = (out[:, C_PA2] < 0) & (counts >= 2)
        src = starts + 1
        out[need2, C_PA2] = vals[src[need2], C_PA1]
        out[need2, C_PB2] = vals[src[need2], C_PB1]
        out[need2, C_STRAND2] = vals[src[need2], C_STRAND1]
        return out

    def reduce_truncated(self, vals, starts, counts):
        # Same fold over groups clipped to their first two products: the
        # count field is the true group size (every fresh product carries
        # count 1, so the full reduce's segment sum equals it) and the
        # second seed comes from the group's second product when present.
        out = vals[starts].copy()
        out[:, C_COUNT] = counts
        need2 = counts >= 2
        src = starts + 1
        out[need2, C_PA2] = vals[src[need2], C_PA1]
        out[need2, C_PB2] = vals[src[need2], C_PB1]
        out[need2, C_STRAND2] = vals[src[need2], C_STRAND1]
        return out


class BidirectedMinPlus(Semiring):
    """Algorithm 3's MinPlus semiring with bidirected-walk validity.

    Operands are R-typed values ``[suffix, end_i, end_k]`` /
    ``[suffix, end_k, end_j]``; a product is a valid two-edge walk iff the
    two attachments at the middle read ``k`` are **opposite ends**
    (``ISDIROK``, Algorithm 3 line 5) — entering k at one end means the walk
    traverses k and must leave from the other end.  The product value is the
    path suffix sum placed in the ``(end_i, end_j)`` slot; reduce is a
    columnwise (per-slot) minimum.
    """

    out_nfields = 4

    def multiply(self, avals, bvals):
        n = avals.shape[0]
        valid = avals[:, R_END_J] != bvals[:, R_END_I]
        out = np.full((n, 4), INF, dtype=np.int64)
        slots = n_slot(avals[:, R_END_I], bvals[:, R_END_J])
        rows = np.arange(n)
        total = avals[:, R_SUFFIX] + bvals[:, R_SUFFIX]
        out[rows, slots] = total
        return out, valid

    def reduce(self, vals, starts, counts):
        out = np.empty((starts.shape[0], 4), dtype=np.int64)
        for s in range(4):
            out[:, s] = np.minimum.reduceat(vals[:, s], starts)
        return out
