"""minimap2-like shared-memory overlapper (minimizer based).

minimap2 (Li 2018) finds overlaps by indexing (w, k)-minimizers and
estimating pairwise similarity from shared minimizers — *no base-level
alignment* — which is why it is much faster per core than diBELLA but
single-node only (paper Section VII-B: minimap2 wins at 1 node, diBELLA
overtakes at higher concurrency).

The implementation reproduces the algorithmic skeleton: build a hash index
of minimizers over all reads, stream each read's minimizers through the
index, collect per-pair hits, keep pairs whose chained co-linear hits imply
an overlap of sufficient length.  Runtime is measured (single "node"), and
:func:`modeled_threads_time` divides the indexing+query work across OpenMP
threads the way the paper runs it (32 threads).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..seqs.fasta import ReadSet
from ..seqs.minimizers import minimizers_batch

__all__ = ["MinimapLikeResult", "run_minimap_like"]


@dataclass
class MinimapLikeResult:
    """Output of the minimizer overlapper."""

    n_reads: int
    n_pairs: int
    pairs: set[tuple[int, int]]
    index_seconds: float
    query_seconds: float

    def total_seconds(self) -> float:
        return self.index_seconds + self.query_seconds

    def modeled_threads_time(self, threads: int = 32,
                             efficiency: float = 0.8) -> float:
        """Single-node multithreaded runtime (the paper's 32-thread runs).

        Indexing and querying parallelize over reads; ``efficiency``
        reflects hash-table contention.
        """
        return self.total_seconds() / max(1, threads * efficiency)


def run_minimap_like(reads: ReadSet, k: int = 15, w: int = 10, *,
                     min_shared: int = 4, min_span: int = 200
                     ) -> MinimapLikeResult:
    """Find overlap candidate pairs from shared minimizers.

    Parameters
    ----------
    reads:
        The read set.
    k, w:
        Minimizer parameters (minimap2's long-read defaults are k=15, w=10).
    min_shared:
        Minimum shared minimizers for a pair to count.
    min_span:
        Minimum spanned length (max hit position - min hit position on the
        query) — the cheap stand-in for minimap2's chaining score cutoff.
    """
    t0 = time.perf_counter()
    # One shared batched extraction over the whole read set — the same
    # extractor the pipeline's minimizer seed mode uses
    # (:class:`repro.seqs.seeding.MinimizerScheme`), so baseline and
    # pipeline sketching cannot drift.
    km_all, ridx_all, pos_all, _flip = minimizers_batch(*reads.soa(), k, w)
    counts = np.bincount(ridx_all, minlength=len(reads))
    cuts = np.cumsum(counts[:-1]) if len(reads) else np.empty(0, np.int64)
    per_read: list[tuple[np.ndarray, np.ndarray]] = list(
        zip(np.split(km_all, cuts), np.split(pos_all, cuts)))
    index: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for rid, kv, pv in zip(ridx_all.tolist(), km_all.tolist(),
                           pos_all.tolist()):
        index[kv].append((rid, pv))
    index_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    pairs: set[tuple[int, int]] = set()
    for rid in range(len(reads)):
        km, pos = per_read[rid]
        hits: dict[int, list[int]] = defaultdict(list)
        for kv, pv in zip(km.tolist(), pos.tolist()):
            for other, _opos in index[kv]:
                if other > rid:
                    hits[other].append(pv)
        for other, positions in hits.items():
            if len(positions) < min_shared:
                continue
            if max(positions) - min(positions) < min_span:
                continue
            pairs.add((rid, other))
    query_seconds = time.perf_counter() - t1
    return MinimapLikeResult(n_reads=len(reads), n_pairs=len(pairs),
                             pairs=pairs, index_seconds=index_seconds,
                             query_seconds=query_seconds)
