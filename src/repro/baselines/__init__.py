"""Baselines the paper compares against: Myers' sequential transitive
reduction, SORA (Spark/GraphX) TR, diBELLA 1D overlap detection, and a
minimap2-like minimizer overlapper."""

from .myers import myers_transitive_reduction
from .sora import SoraResult, SparkCostModel, sora_transitive_reduction
from .dibella1d import Dibella1DResult, run_dibella1d
from .minimap_like import MinimapLikeResult, run_minimap_like

__all__ = [
    "myers_transitive_reduction",
    "SoraResult", "SparkCostModel", "sora_transitive_reduction",
    "Dibella1DResult", "run_dibella1d",
    "MinimapLikeResult", "run_minimap_like",
]
