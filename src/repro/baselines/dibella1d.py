"""diBELLA 1D: overlap detection with distributed hash tables.

The paper's prior distributed design (Ellis et al. 2019) distributes k-mers
to owner ranks, generates candidate read pairs *locally per k-mer owner*
(the outer product ``C = Σ_i A_:i·Aᵀ_i:``), then globally reduces duplicate
pairs to the block-row owner of the first read — communication
``W = a²m/P`` words with ``Y = P`` messages, versus the 2D algorithm's
``am/√P`` and ``√P`` (Table I, Section V-B).  It performs no transitive
reduction.

This implementation executes that data flow on the simulated runtime so
Fig. 9's comparison and Table I's 1D column come from measured code:

1. k-mer counting (shared with the 2D pipeline — identical cost),
2. local pair generation at each k-mer owner (stage ``Overlap1D`` compute),
3. alltoallv of candidate pairs to block-row owners + duplicate reduction
   (stage ``Overlap1D`` traffic — this is the ``a²m/P`` term),
4. read exchange: one read per nonzero where the aligning rank lacks it
   (stage ``ExchangeRead1D``, ``W = cnl/P``),
5. pairwise alignment (same kernel as the 2D pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.xdrop import Scoring
from ..core.overlap import AlignmentFilter, _align_one
from ..core.semirings import C_PA1, C_PB1, C_STRAND1
from ..align.overlapper import classify_overlap
from ..dsparse.backend import Backend, get_backend
from ..dsparse.coomat import CooMat
from ..mpisim.comm import SimComm
from ..mpisim.grid import block_bounds
from ..mpisim.tracker import CommTracker, StageTimer
from ..seqs.fasta import ReadSet
from ..seqs.kmer_counter import count_kmers, reliable_upper_bound
from ..seqs.kmers import canonical_kmers, pack_kmers, splitmix64

__all__ = ["Dibella1DResult", "run_dibella1d"]


@dataclass
class Dibella1DResult:
    """Outcome of the 1D pipeline (overlap detection only, no TR)."""

    n_reads: int
    n_kmers: int
    n_candidate_pairs: int
    n_overlaps: int
    timer: StageTimer
    tracker: CommTracker

    def modeled_time(self, machine, include_alignment: bool = True
                     ) -> dict[str, float]:
        """Per-stage modeled runtime (compute·scale + α–β comm)."""
        out: dict[str, float] = {}
        for stage in ("ReadFastq", "CountKmer", "Overlap1D", "ExchangeRead1D",
                      "Alignment"):
            if not include_alignment and stage == "Alignment":
                continue
            comp = self.timer.stage_seconds.get(stage, 0.0)
            comm = self.tracker.stage_comm_time(stage, machine)
            total = comp * machine.compute_scale + comm
            if total > 0.0:
                out[stage] = total
        return out

    def modeled_total(self, machine, include_alignment: bool = True) -> float:
        return sum(self.modeled_time(machine, include_alignment).values())


def run_dibella1d(reads: ReadSet, k: int = 17, nprocs: int = 1, *,
                  align_mode: str = "xdrop", scoring: Scoring | None = None,
                  filt: AlignmentFilter | None = None, fuzz: int = 100,
                  depth_hint: float = 30.0, error_hint: float = 0.15,
                  kmer_upper: int | None = None,
                  backend: Backend | str | None = None) -> Dibella1DResult:
    """Run the 1D overlap-detection pipeline (Fig. 9's comparator).

    ``backend`` selects the local sparse kernels used for each owner's
    outer product (the expansion primitive shared with the 2D SpGEMM).
    """
    scoring = scoring if scoring is not None else Scoring()
    filt = filt if filt is not None else AlignmentFilter()
    backend = get_backend(backend)
    tracker = CommTracker(nprocs)
    comm = SimComm(nprocs, tracker)
    timer = StageTimer()
    P = nprocs

    upper = kmer_upper if kmer_upper is not None else \
        reliable_upper_bound(depth_hint, error_hint, k)
    table = count_kmers(reads, k, comm, timer, upper=upper)

    n = len(reads)
    stage = "Overlap1D"

    # Build the k-mer owners' posting lists (owner = hash(kmer) mod P):
    # arrays of (kmer column, read, pos, flip), vectorized per source rank.
    # The shipping of these postings shares the counting pass's exchange.
    owner = (splitmix64(table.kmers) % np.uint64(P)).astype(np.int64)
    read_bounds = block_bounds(n, P)
    post_cols: list[np.ndarray] = []
    post_reads: list[np.ndarray] = []
    post_pos: list[np.ndarray] = []
    post_flip: list[np.ndarray] = []
    with timer.superstep(stage) as step:
        for p in range(P):
            with step.rank(p):
                for gi in range(int(read_bounds[p]), int(read_bounds[p + 1])):
                    codes = reads[gi]
                    fwd = pack_kmers(codes, k)
                    if fwd.shape[0] == 0:
                        continue
                    canon = canonical_kmers(fwd, k)
                    col = table.lookup(canon)
                    ok = col >= 0
                    if not ok.any():
                        continue
                    pos = np.flatnonzero(ok)
                    col = col[ok]
                    flip = (canon[ok] != fwd[ok]).astype(np.int64)
                    _, first = np.unique(col, return_index=True)
                    post_cols.append(col[first])
                    post_reads.append(np.full(first.shape[0], gi, np.int64))
                    post_pos.append(pos[first])
                    post_flip.append(flip[first])

    if post_cols:
        cols = np.concatenate(post_cols)
        rds = np.concatenate(post_reads)
        poss = np.concatenate(post_pos)
        flips = np.concatenate(post_flip)
    else:
        cols = rds = poss = flips = np.empty(0, np.int64)

    # Local outer product at each owner: all read pairs sharing a k-mer.
    # Each owner's postings form a reads × k-mers block A_q, and the pairs
    # are the expansion half of the semiring SpGEMM A_q·A_qᵀ — the same
    # backend kernel the 2D pipeline multiplies with, but *without* the
    # compress step: every per-k-mer duplicate ships, which is exactly the
    # 1D algorithm's a²m/P candidate volume that must then be reduced.
    empty_payload = np.empty((0, 5), dtype=np.int64)
    pair_send: list[list[np.ndarray]] = [[empty_payload for _ in range(P)]
                                         for _ in range(P)]
    m = len(table)
    with timer.superstep(stage) as step:
        for q in range(P):
            with step.rank(q):
                mine = owner[cols] == q
                if not mine.any():
                    continue
                Aq = CooMat((n, m), rds[mine], cols[mine],
                            np.stack([poss[mine], flips[mine]], axis=1))
                Atq = backend.transpose(Aq)
                a_idx, b_idx = backend.expand(Aq, Atq)
                if a_idx.shape[0] == 0:
                    continue
                ri = Aq.row[a_idx]
                rj = Atq.col[b_idx]
                # The product is symmetric; keep each unordered pair once
                # per shared k-mer (ri < rj also drops the diagonal).
                # Expanding both triangles and filtering matches the 2D
                # path's cost structure (candidate_overlaps also computes
                # the full A·Aᵀ before its upper-triangle filter), keeping
                # the Fig. 9 compute comparison like-for-like.
                keep = ri < rj
                if not keep.any():
                    continue
                a_idx, b_idx = a_idx[keep], b_idx[keep]
                ri, rj = ri[keep], rj[keep]
                pi = Aq.vals[a_idx, 0]
                pj = Atq.vals[b_idx, 0]
                st = Aq.vals[a_idx, 1] ^ Atq.vals[b_idx, 1]
                dest = np.searchsorted(read_bounds, ri, side="right") - 1
                payload = np.stack([ri, rj, pi, pj, st], axis=1)
                for d in range(P):
                    sel = dest == d
                    if sel.any():
                        pair_send[q][d] = payload[sel]

    # Global reduction of duplicate pairs at the block-row owners: this
    # exchange is the 1D algorithm's a²m/P-word bottleneck.
    recv = comm.alltoallv(pair_send, stage=stage)

    candidates: list[dict[tuple[int, int], tuple[int, int, int]]] = []
    with timer.superstep(stage) as step:
        for p in range(P):
            with step.rank(p):
                arrs = [a for a in recv[p]
                        if a is not None and a.shape[0] > 0]
                table_p: dict[tuple[int, int], tuple[int, int, int]] = {}
                if arrs:
                    allp = np.vstack(arrs)
                    keys = allp[:, 0] * np.int64(n) + allp[:, 1]
                    _, first = np.unique(keys, return_index=True)
                    uniq = allp[first]
                    table_p = {(int(a), int(b)): (int(x), int(y), int(s))
                               for a, b, x, y, s in uniq}
                candidates.append(table_p)

    n_pairs = sum(len(c) for c in candidates)

    # Read exchange: an alignment task sits at the row owner of read i,
    # which owns i but may lack j — at most one read per nonzero (W=cnl/P).
    ex_stage = "ExchangeRead1D"
    lengths = reads.lengths
    for p in range(P):
        lo, hi = int(read_bounds[p]), int(read_bounds[p + 1])
        needed_j = {rj for (_, rj) in candidates[p] if not lo <= rj < hi}
        # Aggregate per source rank: one message per (src -> p) pair with
        # all its reads batched (Table I's Y = min{cnl/P, P}).
        per_src: dict[int, int] = {}
        for rj in needed_j:
            src = int(np.searchsorted(read_bounds, rj, side="right")) - 1
            per_src[src] = per_src.get(src, 0) + int(lengths[rj])
        for src, nbytes in per_src.items():
            comm.tracker.record(ex_stage, src, nbytes, 1)

    # Alignment (same kernel as 2D).
    n_overlaps = 0
    with timer.superstep("Alignment") as step:
        for p in range(P):
            with step.rank(p):
                for (ri, rj), (pi, pj, s) in candidates[p].items():
                    cval = np.full(7, -1, dtype=np.int64)
                    cval[C_PA1], cval[C_PB1], cval[C_STRAND1] = pi, pj, s
                    res = _align_one(reads, ri, rj, cval, k, align_mode,
                                     scoring)
                    if res is None:
                        continue
                    olen = res.ea - res.ba
                    if not filt.passes(res.score, olen):
                        continue
                    oc = classify_overlap(reads[ri].shape[0],
                                          reads[rj].shape[0], res, fuzz)
                    if oc.kind == "dovetail":
                        n_overlaps += 1

    return Dibella1DResult(n_reads=n, n_kmers=len(table),
                           n_candidate_pairs=n_pairs, n_overlaps=n_overlaps,
                           timer=timer, tracker=tracker)
